// Package catalog implements the two global catalogs of the sqalpel
// platform: the DBMS catalog describing every database system considered in
// experiments (product, version, dialect, configuration knobs) and the
// hardware platform catalog describing the machines experiments ran on. Both
// can be extended freely by registered users, exactly like the paper's
// top-menu catalogs.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DBMS describes one database system entry of the global DBMS catalog.
type DBMS struct {
	// Name is the product name, e.g. "columba" or "MonetDB".
	Name string `json:"name"`
	// Version identifies the release.
	Version string `json:"version"`
	// Vendor is the producing organisation.
	Vendor string `json:"vendor"`
	// Dialect is the SQL dialect tag used to pick dialect-specific grammar
	// literals.
	Dialect string `json:"dialect"`
	// Description is free text shown on the catalog page.
	Description string `json:"description"`
	// Knobs documents the configuration parameters relevant for performance
	// interpretation (buffer sizes, parallelism, compression, ...); the
	// paper stresses that reporting them is essential for meaningful
	// experiments.
	Knobs map[string]string `json:"knobs,omitempty"`
}

// Key returns the canonical catalog key ("name-version", lower case).
func (d DBMS) Key() string {
	return strings.ToLower(d.Name) + "-" + d.Version
}

// Platform describes one hardware platform entry.
type Platform struct {
	// Name is the short host identifier, e.g. "xeon-e5" or "raspberry-pi-4".
	Name string `json:"name"`
	// CPU describes the processor.
	CPU string `json:"cpu"`
	// Cores is the number of hardware threads.
	Cores int `json:"cores"`
	// MemoryGB is the installed memory in gigabytes.
	MemoryGB int `json:"memory_gb"`
	// Description is free text (storage, OS, special configuration).
	Description string `json:"description"`
}

// Key returns the canonical catalog key.
func (p Platform) Key() string { return strings.ToLower(p.Name) }

// Catalog holds both global catalogs; it is safe for concurrent use.
type Catalog struct {
	mu        sync.RWMutex
	dbms      map[string]DBMS
	platforms map[string]Platform
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{dbms: map[string]DBMS{}, platforms: map[string]Platform{}}
}

// Bootstrap returns a catalog pre-populated with the built-in engines and
// the platforms the demo mentions (a Raspberry Pi class machine up to a
// large Xeon server).
func Bootstrap() *Catalog {
	c := New()
	c.AddDBMS(DBMS{
		Name: "tuplestore", Version: "1.0", Vendor: "sqalpel", Dialect: "tuplestore",
		Description: "Tuple-at-a-time row store: full-width scans, short-circuit filters, early LIMIT exit.",
		Knobs:       map[string]string{"execution_model": "tuple-at-a-time", "intermediates": "none"},
	})
	c.AddDBMS(DBMS{
		Name: "columba", Version: "1.0", Vendor: "sqalpel", Dialect: "columba",
		Description: "Column-at-a-time engine with materialised intermediates and overflow-guarding casts.",
		Knobs:       map[string]string{"execution_model": "column-at-a-time", "guard_casts": "on"},
	})
	c.AddDBMS(DBMS{
		Name: "columba", Version: "2.0", Vendor: "sqalpel", Dialect: "columba",
		Description: "Column-at-a-time engine, new release without the overflow-guard widening pass.",
		Knobs:       map[string]string{"execution_model": "column-at-a-time", "guard_casts": "off"},
	})
	c.AddDBMS(DBMS{
		Name: "vektor", Version: "1.0", Vendor: "sqalpel", Dialect: "vektor",
		Description: "Batch-vectorized engine: typed unboxed vectors, selection-vector filters, 1024-row pipelines.",
		Knobs:       map[string]string{"execution_model": "batch-at-a-time", "batch_size": "1024"},
	})
	c.AddDBMS(DBMS{
		Name: "vektor", Version: "2.0", Vendor: "sqalpel", Dialect: "vektor",
		Description: "Batch-vectorized engine, new release with quadrupled 4096-row batches.",
		Knobs:       map[string]string{"execution_model": "batch-at-a-time", "batch_size": "4096"},
	})
	c.AddDBMS(DBMS{
		Name: "fusil", Version: "1.0", Vendor: "sqalpel", Dialect: "fusil",
		Description: "Data-centric compiled engine: per-query closure chains, fused scan+filter pipelines, no batch handoffs.",
		Knobs:       map[string]string{"execution_model": "data-centric compiled", "pipelines": "fused"},
	})
	c.AddPlatform(Platform{Name: "raspberry-pi-4", CPU: "ARM Cortex-A72", Cores: 4, MemoryGB: 4,
		Description: "Small single-board computer used for the low end of the spectrum."})
	c.AddPlatform(Platform{Name: "xeon-e5-4657l", CPU: "Intel Xeon E5-4657L", Cores: 48, MemoryGB: 1024,
		Description: "Large shared-memory server with 1TB RAM used in the demo projects."})
	c.AddPlatform(Platform{Name: "laptop", CPU: "generic x86-64", Cores: 8, MemoryGB: 16,
		Description: "Developer laptop; the default platform for locally contributed results."})
	return c
}

// AddDBMS registers or updates a DBMS entry; name and version are required.
func (c *Catalog) AddDBMS(d DBMS) error {
	if d.Name == "" || d.Version == "" {
		return fmt.Errorf("dbms catalog entries need a name and a version")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dbms[d.Key()] = d
	return nil
}

// AddPlatform registers or updates a platform entry.
func (c *Catalog) AddPlatform(p Platform) error {
	if p.Name == "" {
		return fmt.Errorf("platform catalog entries need a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.platforms[p.Key()] = p
	return nil
}

// DBMS returns the entry with the given key, if present.
func (c *Catalog) DBMS(key string) (DBMS, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.dbms[strings.ToLower(key)]
	return d, ok
}

// Platform returns the entry with the given key, if present.
func (c *Catalog) Platform(key string) (Platform, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.platforms[strings.ToLower(key)]
	return p, ok
}

// ListDBMS returns all DBMS entries sorted by key.
func (c *Catalog) ListDBMS() []DBMS {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.dbms))
	for k := range c.dbms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]DBMS, 0, len(keys))
	for _, k := range keys {
		out = append(out, c.dbms[k])
	}
	return out
}

// ListPlatforms returns all platform entries sorted by key.
func (c *Catalog) ListPlatforms() []Platform {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.platforms))
	for k := range c.platforms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Platform, 0, len(keys))
	for _, k := range keys {
		out = append(out, c.platforms[k])
	}
	return out
}

// Snapshot returns copies of both catalogs for JSON serialisation.
func (c *Catalog) Snapshot() (dbms []DBMS, platforms []Platform) {
	return c.ListDBMS(), c.ListPlatforms()
}

// Restore replaces the catalog contents with the given entries.
func (c *Catalog) Restore(dbms []DBMS, platforms []Platform) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dbms = map[string]DBMS{}
	c.platforms = map[string]Platform{}
	for _, d := range dbms {
		c.dbms[d.Key()] = d
	}
	for _, p := range platforms {
		c.platforms[p.Key()] = p
	}
}
