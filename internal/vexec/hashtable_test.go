package vexec

import (
	"fmt"
	"testing"
)

// TestHashTableTypedInt locks in the int fast path: dense first-seen group
// ids, duplicate detection across growth, and NULL keys grouping together.
func TestHashTableTypedInt(t *testing.T) {
	ht := newHashTable(4)
	keys := []int64{7, 3, 7, 11, 3, 7}
	wantGroups := []int{0, 1, 0, 2, 1, 0}
	for i, k := range keys {
		g, isNew := ht.getOrInsertInt(k)
		if g != wantGroups[i] {
			t.Errorf("key %d: group = %d, want %d", k, g, wantGroups[i])
		}
		if isNew != (i == 0 || i == 1 || i == 3) {
			t.Errorf("key %d at %d: isNew = %v", k, i, isNew)
		}
	}
	if ht.numGroups() != 3 {
		t.Fatalf("groups = %d, want 3", ht.numGroups())
	}
	if g := ht.lookupInt(11); g != 2 {
		t.Errorf("lookup 11 = %d, want 2", g)
	}
	if g := ht.lookupInt(999); g != -1 {
		t.Errorf("lookup miss = %d, want -1", g)
	}

	// NULL keys are one group of their own.
	g1, isNew := ht.getOrInsertNull()
	if !isNew || g1 != 3 {
		t.Errorf("first null: group %d new %v", g1, isNew)
	}
	if g2, again := ht.getOrInsertNull(); again || g2 != g1 {
		t.Errorf("second null: group %d new %v", g2, again)
	}
}

// TestHashTableGrowth drives the table through many doublings; every key
// must keep its insertion-order group id.
func TestHashTableGrowth(t *testing.T) {
	ht := newHashTable(2)
	const n = 50000
	for i := 0; i < n; i++ {
		g, isNew := ht.getOrInsertInt(int64(i * 31))
		if !isNew || g != i {
			t.Fatalf("insert %d: group %d new %v", i, g, isNew)
		}
	}
	for i := 0; i < n; i++ {
		if g := ht.lookupInt(int64(i * 31)); g != i {
			t.Fatalf("lookup %d: group %d", i, g)
		}
	}
	if ht.numGroups() != n {
		t.Fatalf("groups = %d", ht.numGroups())
	}

	hs := newHashTable(2)
	for i := 0; i < 10000; i++ {
		g, isNew := hs.getOrInsertStr(fmt.Sprintf("k%d", i))
		if !isNew || g != i {
			t.Fatalf("str insert %d: group %d new %v", i, g, isNew)
		}
	}
	if g := hs.lookupStr("k123"); g != 123 {
		t.Fatalf("str lookup = %d", g)
	}
}

// TestHashTableByteMode exercises compound keys: reused scratch encodings,
// arena-stored keys, and the '|' separator keeping [ab, c] and [a, bc]
// apart.
func TestHashTableByteMode(t *testing.T) {
	ht := newByteKeyTable(4)
	a := strVec("ab", "a", "ab")
	b := strVec("c", "bc", "c")
	kc := keyCoder{mode: modeBytes}
	g0, new0 := kc.getOrInsert(ht, []*Vector{a, b}, 0)
	g1, new1 := kc.getOrInsert(ht, []*Vector{a, b}, 1)
	g2, new2 := kc.getOrInsert(ht, []*Vector{a, b}, 2)
	if !new0 || !new1 || new2 {
		t.Errorf("newness = %v %v %v", new0, new1, new2)
	}
	if g0 != 0 || g1 != 1 || g2 != 0 {
		t.Errorf("groups = %d %d %d", g0, g1, g2)
	}
}

// TestHashTableMigration starts a group table on typed int keys, then
// feeds a float batch: the table must migrate to the byte encoding and
// keep matching int-valued floats onto the integer groups, mirroring the
// old string-key normalization.
func TestHashTableMigration(t *testing.T) {
	ht := newHashTable(4)
	ints := intVec(1, 2, 3)
	kc := ht.prepare([]*Vector{ints})
	for i := 0; i < 3; i++ {
		if g, _ := kc.getOrInsert(ht, []*Vector{ints}, i); g != i {
			t.Fatalf("int row %d: group %d", i, g)
		}
	}
	floats := floatVec(2.0, 2.5, 1.0)
	kc = ht.prepare([]*Vector{floats})
	if ht.mode != modeBytes {
		t.Fatalf("mode after float batch = %v, want byte mode", ht.mode)
	}
	g, isNew := kc.getOrInsert(ht, []*Vector{floats}, 0)
	if isNew || g != 1 {
		t.Errorf("float 2.0: group %d new %v, want group 1 (int 2)", g, isNew)
	}
	g, isNew = kc.getOrInsert(ht, []*Vector{floats}, 1)
	if !isNew || g != 3 {
		t.Errorf("float 2.5: group %d new %v, want new group 3", g, isNew)
	}
	g, _ = kc.getOrInsert(ht, []*Vector{floats}, 2)
	if g != 0 {
		t.Errorf("float 1.0: group %d, want group 0 (int 1)", g)
	}
}

// TestHashTableNullMigration checks the typed NULL group survives the
// migration to byte mode and keeps matching encoded NULL rows.
func TestHashTableNullMigration(t *testing.T) {
	ht := newHashTable(4)
	k := intVec(5, 0)
	k.SetNull(1)
	kc := ht.prepare([]*Vector{k})
	kc.getOrInsert(ht, []*Vector{k}, 0) // group 0: int 5
	gNull, _ := kc.getOrInsert(ht, []*Vector{k}, 1)
	if gNull != 1 {
		t.Fatalf("null group = %d", gNull)
	}
	s := strVec("x")
	kc = ht.prepare([]*Vector{s}) // migrates
	nk := NewNullVector(1)
	kc2 := ht.prepare([]*Vector{nk})
	if g, isNew := kc2.getOrInsert(ht, []*Vector{nk}, 0); isNew || g != gNull {
		t.Errorf("encoded null: group %d new %v, want group %d", g, isNew, gNull)
	}
}

// TestJointMode pins down the mode decision across join sides.
func TestJointMode(t *testing.T) {
	iv, sv, fv := intVec(1), strVec("a"), floatVec(1.5)
	dv := NewVector(KindDate, 1)
	nv := NewNullVector(1)
	cases := []struct {
		sides []([]*Vector)
		want  keyMode
	}{
		{[][]*Vector{{iv}, {iv}}, modeInt},
		{[][]*Vector{{sv}, {sv}}, modeStr},
		{[][]*Vector{{iv}, {dv}}, modeBytes}, // num vs date class never matches
		{[][]*Vector{{iv}, {fv}}, modeBytes}, // floats need the normalizing encoding
		{[][]*Vector{{iv}, {nv}}, modeInt},   // all-NULL side is a wildcard
		{[][]*Vector{{nv}, {nv}}, modeInt},
		{[][]*Vector{{iv, sv}}, modeBytes}, // compound keys
	}
	for i, tc := range cases {
		if mode, _, _ := jointMode(tc.sides...); mode != tc.want {
			t.Errorf("case %d: mode = %v, want %v", i, mode, tc.want)
		}
	}
}

// TestGetOrInsertKeyOf merges typed and byte tables the way parallel
// aggregation does, across same-mode and mixed-mode morsels.
func TestGetOrInsertKeyOf(t *testing.T) {
	// Two int morsel tables with overlapping keys.
	a, b := newHashTable(4), newHashTable(4)
	av, bv := intVec(10, 20), intVec(20, 30)
	kcA := a.prepare([]*Vector{av})
	kcB := b.prepare([]*Vector{bv})
	kcA.getOrInsert(a, []*Vector{av}, 0)
	kcA.getOrInsert(a, []*Vector{av}, 1)
	kcB.getOrInsert(b, []*Vector{bv}, 0)
	kcB.getOrInsert(b, []*Vector{bv}, 1)

	global := newHashTable(4)
	var buf []byte
	var got []int
	for _, src := range []*hashTable{a, b} {
		for g := 0; g < src.numGroups(); g++ {
			var gg int
			gg, _, buf = global.getOrInsertKeyOf(src, g, buf)
			got = append(got, gg)
		}
	}
	want := []int{0, 1, 1, 2} // 10, 20, 20 (dup), 30 in morsel order
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge groups = %v, want %v", got, want)
		}
	}

	// A byte-mode morsel (float keys) merging into the int global table
	// must migrate it and still unify int-valued floats.
	c := newHashTable(4)
	cv := floatVec(20.0, 2.5)
	kcC := c.prepare([]*Vector{cv})
	kcC.getOrInsert(c, []*Vector{cv}, 0)
	kcC.getOrInsert(c, []*Vector{cv}, 1)
	var gg int
	var isNew bool
	gg, isNew, buf = global.getOrInsertKeyOf(c, 0, buf)
	if isNew || gg != 1 {
		t.Errorf("float 20.0 merge: group %d new %v, want group 1", gg, isNew)
	}
	gg, isNew, _ = global.getOrInsertKeyOf(c, 1, buf)
	if !isNew || gg != 3 {
		t.Errorf("float 2.5 merge: group %d new %v, want new group 3", gg, isNew)
	}
}
