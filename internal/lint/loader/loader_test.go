package loader

import "testing"

func TestSmokeLoad(t *testing.T) {
	pkgs, err := LoadPackages("/root/repo", "./internal/sqlsem", "./internal/plan")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		t.Logf("pkg %s files=%d typeerrs=%d", p.Path, len(p.Files), len(p.Errors))
		for _, e := range p.Errors {
			t.Errorf("type error: %v", e)
		}
	}
	if len(pkgs) != 2 {
		t.Fatalf("want 2 pkgs, got %d", len(pkgs))
	}
}
