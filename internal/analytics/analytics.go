// Package analytics implements the built-in visual-analytics computations of
// the sqalpel platform: the experiment history with morph annotations
// (Figure 7 of the paper), the dominant-component analysis of lexical terms
// (Figure 2), relative speedups between systems, versions or database sizes
// (Figure 3), query differentials (Figure 4) and CSV export for off-line
// post-processing.
//
// The package is deliberately independent of the repository and engine
// layers: it operates on plain Run records, which both the platform server
// and the benchmark harness can produce.
package analytics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Run is one measured execution of one query variant on one target system.
type Run struct {
	// QueryID is the pool-local id of the query variant.
	QueryID int
	// SQL is the query text.
	SQL string
	// Strategy records how the variant was created (baseline, random,
	// alter, expand, prune).
	Strategy string
	// ParentID is the variant this one was morphed from (0 for seeds).
	ParentID int
	// Components is the number of lexical components of the variant.
	Components int
	// Terms are the lexical literal texts the variant contains; used by the
	// dominant-component analysis.
	Terms []string
	// Target identifies the system (and version / host / database size) the
	// run was measured on.
	Target string
	// Seconds is the representative wall-clock time; ignored when Error is
	// set.
	Seconds float64
	// Error carries the failure message of queries that did not execute.
	Error string
}

// Failed reports whether the run errored.
func (r Run) Failed() bool { return r.Error != "" }

// HistoryPoint is one node of the experiment-history plot: execution time
// per query, coloured by morph action, sized by the number of components,
// with failed queries flagged.
type HistoryPoint struct {
	Seq        int
	QueryID    int
	ParentID   int
	Strategy   string
	Components int
	Seconds    float64
	IsError    bool
	SQL        string
}

// History builds the experiment-history series for one target: queries in
// pool order, each annotated with its morph action and provenance edge.
func History(runs []Run, target string) []HistoryPoint {
	var filtered []Run
	for _, r := range runs {
		if r.Target == target {
			filtered = append(filtered, r)
		}
	}
	sort.SliceStable(filtered, func(i, j int) bool { return filtered[i].QueryID < filtered[j].QueryID })
	out := make([]HistoryPoint, 0, len(filtered))
	for i, r := range filtered {
		out = append(out, HistoryPoint{
			Seq:        i + 1,
			QueryID:    r.QueryID,
			ParentID:   r.ParentID,
			Strategy:   r.Strategy,
			Components: r.Components,
			Seconds:    r.Seconds,
			IsError:    r.Failed(),
			SQL:        r.SQL,
		})
	}
	return out
}

// Component is the cost attribution of one lexical term.
type Component struct {
	// Term is the lexical literal text.
	Term string
	// WithMean and WithoutMean are the mean execution times of the queries
	// containing and not containing the term.
	WithMean    float64
	WithoutMean float64
	// Delta is WithMean - WithoutMean: the marginal cost attributed to the
	// term. The larger, the more dominant the component.
	Delta float64
	// Queries is the number of successful runs containing the term.
	Queries int
}

// Components attributes execution time to lexical terms for one target. Two
// estimators are combined:
//
//  1. Paired differences: whenever two measured variants differ by exactly
//     one term (the natural outcome of the expand/prune morphing
//     strategies), the time difference is a direct sample of that term's
//     marginal cost. This is the primary estimator.
//  2. With/without means: for terms without such pairs, the mean runtime of
//     the variants containing the term is compared against the variants not
//     containing it.
//
// The result is sorted by descending marginal cost, so the first entry is
// the dominant component (the paper's example: the sum_charge expression of
// TPC-H Q1 on a column store).
func Components(runs []Run, target string) []Component {
	type sample struct {
		terms   map[string]bool
		sig     string
		seconds float64
	}
	var samples []sample
	bySig := map[string][]float64{}
	terms := map[string]bool{}
	for _, r := range runs {
		if r.Target != target || r.Failed() {
			continue
		}
		set := map[string]bool{}
		for _, t := range r.Terms {
			set[t] = true
			terms[t] = true
		}
		s := sample{terms: set, sig: termSignature(set, ""), seconds: r.Seconds}
		samples = append(samples, s)
		bySig[s.sig] = append(bySig[s.sig], r.Seconds)
	}

	var out []Component
	for term := range terms {
		c := Component{Term: term}
		var with, without, paired []float64
		for _, s := range samples {
			if !s.terms[term] {
				without = append(without, s.seconds)
				continue
			}
			with = append(with, s.seconds)
			// A paired sample exists when some other variant has exactly the
			// same term set minus this term.
			if peers, ok := bySig[termSignature(s.terms, term)]; ok && len(peers) > 0 {
				paired = append(paired, s.seconds-mean(peers))
			}
		}
		c.Queries = len(with)
		c.WithMean = mean(with)
		c.WithoutMean = mean(without)
		switch {
		case len(paired) > 0:
			c.Delta = mean(paired)
		case len(with) > 0 && len(without) > 0:
			c.Delta = c.WithMean - c.WithoutMean
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Delta != out[j].Delta {
			return out[i].Delta > out[j].Delta
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// termSignature builds a canonical key for a term set, optionally excluding
// one term (used to find the "same query minus this term" peers).
func termSignature(set map[string]bool, exclude string) string {
	keys := make([]string, 0, len(set))
	for t := range set {
		if t == exclude {
			continue
		}
		keys = append(keys, t)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x00")
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var total float64
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// SpeedupPoint is the relative performance of one query variant between two
// targets (different systems, versions or database sizes).
type SpeedupPoint struct {
	QueryID    int
	Components int
	// BaseSeconds and OtherSeconds are the times on the two targets.
	BaseSeconds  float64
	OtherSeconds float64
	// Factor is OtherSeconds / BaseSeconds: how many times slower the other
	// target is (values below 1 mean it is faster).
	Factor float64
}

// SpeedupSummary aggregates a speedup series.
type SpeedupSummary struct {
	Points []SpeedupPoint
	// BaselineFactor is the factor of the baseline query (query id 1) when
	// present, the number the paper quotes ("the baseline query runs about a
	// factor 8 slower on a 10 times larger instance").
	BaselineFactor float64
	Min, Max       float64
	Median         float64
}

// Speedup matches runs of the same query id on two targets and computes the
// per-query factor plus the spread summary.
func Speedup(runs []Run, baseTarget, otherTarget string) SpeedupSummary {
	base := map[int]Run{}
	other := map[int]Run{}
	for _, r := range runs {
		if r.Failed() {
			continue
		}
		switch r.Target {
		case baseTarget:
			base[r.QueryID] = r
		case otherTarget:
			other[r.QueryID] = r
		}
	}
	var sum SpeedupSummary
	var factors []float64
	ids := make([]int, 0, len(base))
	for id := range base {
		if _, ok := other[id]; ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		b, o := base[id], other[id]
		if b.Seconds <= 0 {
			continue
		}
		p := SpeedupPoint{
			QueryID:      id,
			Components:   b.Components,
			BaseSeconds:  b.Seconds,
			OtherSeconds: o.Seconds,
			Factor:       o.Seconds / b.Seconds,
		}
		sum.Points = append(sum.Points, p)
		factors = append(factors, p.Factor)
		if id == 1 {
			sum.BaselineFactor = p.Factor
		}
	}
	if len(factors) == 0 {
		return sum
	}
	sorted := append([]float64(nil), factors...)
	sort.Float64s(sorted)
	sum.Min = sorted[0]
	sum.Max = sorted[len(sorted)-1]
	sum.Median = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		sum.Median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	return sum
}

// Differential is the paper's query-differential page: the token-level
// difference between two query formulations plus their performance on every
// target both were measured on.
type Differential struct {
	QueryA, QueryB int
	// OnlyA and OnlyB are the tokens appearing in only one of the two
	// queries.
	OnlyA []string
	OnlyB []string
	// Times maps target name to the pair of times [timeA, timeB].
	Times map[string][2]float64
}

// Diff computes the differential between two query variants given all runs.
func Diff(runs []Run, idA, idB int) (Differential, error) {
	var sqlA, sqlB string
	times := map[string][2]float64{}
	var foundA, foundB bool
	for _, r := range runs {
		switch r.QueryID {
		case idA:
			sqlA = r.SQL
			foundA = true
			if !r.Failed() {
				pair := times[r.Target]
				pair[0] = r.Seconds
				times[r.Target] = pair
			}
		case idB:
			sqlB = r.SQL
			foundB = true
			if !r.Failed() {
				pair := times[r.Target]
				pair[1] = r.Seconds
				times[r.Target] = pair
			}
		}
	}
	if !foundA || !foundB {
		return Differential{}, fmt.Errorf("queries %d and %d are not both present in the runs", idA, idB)
	}
	onlyA, onlyB := tokenDiff(sqlA, sqlB)
	return Differential{QueryA: idA, QueryB: idB, OnlyA: onlyA, OnlyB: onlyB, Times: times}, nil
}

// tokenDiff returns the whitespace-separated tokens unique to each side,
// treating the token lists as multisets.
func tokenDiff(a, b string) (onlyA, onlyB []string) {
	countA := tokenCounts(a)
	countB := tokenCounts(b)
	for tok, n := range countA {
		if n > countB[tok] {
			for i := 0; i < n-countB[tok]; i++ {
				onlyA = append(onlyA, tok)
			}
		}
	}
	for tok, n := range countB {
		if n > countA[tok] {
			for i := 0; i < n-countA[tok]; i++ {
				onlyB = append(onlyB, tok)
			}
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB
}

func tokenCounts(s string) map[string]int {
	out := map[string]int{}
	token := ""
	flush := func() {
		if token != "" {
			out[token]++
			token = ""
		}
	}
	for _, r := range s {
		switch r {
		case ' ', '\t', '\n', ',', '(', ')':
			flush()
		default:
			token += string(r)
		}
	}
	flush()
	return out
}

// WriteCSV exports runs in the platform's CSV format for off-line
// post-processing.
func WriteCSV(w io.Writer, runs []Run) error {
	cw := csv.NewWriter(w)
	header := []string{"query_id", "parent_id", "strategy", "components", "target", "seconds", "error", "sql"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range runs {
		rec := []string{
			strconv.Itoa(r.QueryID),
			strconv.Itoa(r.ParentID),
			r.Strategy,
			strconv.Itoa(r.Components),
			r.Target,
			formatSeconds(r.Seconds, r.Failed()),
			r.Error,
			r.SQL,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatSeconds(s float64, failed bool) string {
	if failed || math.IsNaN(s) {
		return ""
	}
	return strconv.FormatFloat(s, 'f', 6, 64)
}
