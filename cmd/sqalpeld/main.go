// Command sqalpeld runs the sqalpel platform server: the web application
// that manages users, catalogs, performance projects, query pools, the task
// queue and the result analytics. State is persisted as JSON in the data
// directory and reloaded on restart.
//
// Usage:
//
//	sqalpeld -addr :8080 -data ./sqalpel-data
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sqalpel/internal/repository"
	"sqalpel/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "sqalpel-data", "directory for the JSON persistence")
	taskTimeout := flag.Duration("task-timeout", 10*time.Minute, "requeue tasks whose results were not delivered within this interval")
	saveEvery := flag.Duration("save-every", time.Minute, "interval between automatic snapshots")
	flag.Parse()

	store, err := repository.Load(*dataDir)
	if err != nil {
		log.Fatalf("loading store from %s: %v", *dataDir, err)
	}
	store.TaskTimeout = *taskTimeout
	srv := server.New(server.Options{Store: store})

	httpServer := &http.Server{Addr: *addr, Handler: srv}

	// Periodic maintenance: expire stuck tasks and snapshot the store.
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*saveEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n := store.ExpireTasks(); n > 0 {
					log.Printf("requeued %d stuck tasks", n)
				}
				if err := store.Save(*dataDir); err != nil {
					log.Printf("snapshot failed: %v", err)
				}
			case <-stop:
				return
			}
		}
	}()

	// Graceful shutdown on SIGINT/SIGTERM.
	go func() {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		<-sigs
		close(stop)
		if err := store.Save(*dataDir); err != nil {
			log.Printf("final snapshot failed: %v", err)
		}
		_ = httpServer.Close()
	}()

	fmt.Printf("sqalpel platform listening on %s (data in %s)\n", *addr, *dataDir)
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
