package trace

import (
	"encoding/json"
	"sort"
	"strings"

	"sqalpel/internal/plan"
	"sqalpel/internal/sqlparser"
)

// PlanDoc is the EXPLAIN plan-JSON document: a stable, schema-versioned
// rendering of the physical plan. Operators form a flat list in pipeline
// order; tree structure is encoded in the operator ids (nested plans extend
// the id prefix, see ids.go). The document is a pure function of the plan,
// so two engines executing the same plan explain identically.
type PlanDoc struct {
	SchemaVersion int    `json:"schema_version"`
	SQL           string `json:"sql,omitempty"`
	Normalized    string `json:"normalized_sql,omitempty"`
	// Vectorizable is the plan's precomputed verdict; Reason says why a
	// statement is outside the vectorized subset.
	Vectorizable bool     `json:"vectorizable"`
	Reason       string   `json:"not_vectorizable_reason,omitempty"`
	Operators    []PlanOp `json:"operators"`
}

// PlanOp describes one operator of the plan. Fields are populated per kind;
// absent fields are omitted from the JSON so golden files stay readable.
type PlanOp struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Table/Alias name the base table of a scan.
	Table string `json:"table,omitempty"`
	Alias string `json:"alias,omitempty"`
	// Columns are the pruned needed columns of a scan, or the output
	// columns of a projection.
	Columns []string `json:"columns,omitempty"`
	// Predicates are the filter conjuncts (canonical SQL text).
	Predicates []string `json:"predicates,omitempty"`
	// Pushdown marks a filter the vectorized engines evaluate below the
	// joins; the interpreters fold it into the residual filter.
	Pushdown bool `json:"pushdown,omitempty"`
	// Right names the right input of a join step; LeftKeys/RightKeys are
	// its equi-join key expressions.
	Right     string   `json:"right,omitempty"`
	LeftKeys  []string `json:"left_keys,omitempty"`
	RightKeys []string `json:"right_keys,omitempty"`
	// GroupBy and Aggregates describe the aggregation operator.
	GroupBy    []string `json:"group_by,omitempty"`
	Aggregates []string `json:"aggregates,omitempty"`
	// SortKeys are the ORDER BY expressions with direction suffixes.
	SortKeys []string `json:"sort_keys,omitempty"`
	Limit    *int64   `json:"limit,omitempty"`
	Offset   *int64   `json:"offset,omitempty"`
	// Correlated is the sub-query classification (uncorrelated sub-queries
	// are executed once and cached).
	Correlated *bool `json:"correlated,omitempty"`
	// SetOp is the set operation joining a branch to the chain.
	SetOp string `json:"set_op,omitempty"`
}

// Explain renders the plan-JSON document of one planned query.
func Explain(p *plan.Plan, sql string) *PlanDoc {
	doc := &PlanDoc{
		SchemaVersion: SchemaVersion,
		SQL:           sql,
		Normalized:    plan.Normalize(sql),
		Vectorizable:  p.Vectorizable,
		Reason:        p.NotVectorizableReason,
	}
	emitStatement(doc, p, p.Root, "")
	return doc
}

// JSON renders the document with indentation for the explain subcommand and
// the golden files; struct field order keeps the output stable.
func (d *PlanDoc) JSON() ([]byte, error) { return json.MarshalIndent(d, "", "  ") }

// OperatorIDs returns the set of operator ids in the document; the
// differential tests assert every engine's span ids are a subset.
func (d *PlanDoc) OperatorIDs() map[string]bool {
	ids := make(map[string]bool, len(d.Operators))
	for _, op := range d.Operators {
		ids[op.ID] = true
	}
	return ids
}

// emitStatement emits one statement chain: the head core plus its
// set-operation branches, mirroring the executors' executeSelect loop.
func emitStatement(doc *PlanDoc, p *plan.Plan, sp *plan.Select, prefix string) {
	emitCore(doc, p, sp, prefix)
	j := 1
	for cur := sp; cur.SetNext != nil; cur = cur.SetNext {
		doc.Operators = append(doc.Operators, PlanOp{ID: SetID(prefix, j), Kind: KindSet, SetOp: cur.Stmt.SetOp})
		emitCore(doc, p, cur.SetNext, SetPrefix(prefix, j))
		j++
	}
}

// emitCore emits the operators of one SELECT core in pipeline order:
// inputs (with pushed-down filters), join steps, residual filter,
// aggregation, projection, distinct, sort, limit, then the core's nested
// sub-queries.
func emitCore(doc *PlanDoc, p *plan.Plan, sp *plan.Select, prefix string) {
	stmt := sp.Stmt
	for i, in := range sp.From {
		switch {
		case in.Join != nil:
			doc.Operators = append(doc.Operators, PlanOp{
				ID: InputID(prefix, i), Kind: KindJoinTree,
				Predicates: sqlList(in.Join.AllConds),
			})
		case in.Derived != nil:
			doc.Operators = append(doc.Operators, PlanOp{ID: InputID(prefix, i), Kind: KindDerived, Alias: in.Alias})
			emitStatement(doc, p, in.Derived, DerivedPrefix(prefix, i))
		default:
			doc.Operators = append(doc.Operators, PlanOp{
				ID: ScanID(prefix, i), Kind: KindScan,
				Table: in.Table, Alias: in.Alias,
				Columns: neededColumns(sp, in.Alias),
			})
		}
		if i < len(sp.VexecPushdown) && len(sp.VexecPushdown[i]) > 0 {
			doc.Operators = append(doc.Operators, PlanOp{
				ID: PushFilterID(prefix, i), Kind: KindFilter,
				Predicates: sqlList(sp.VexecPushdown[i]), Pushdown: true,
			})
		}
	}
	for k, step := range sp.JoinSteps {
		op := PlanOp{
			ID: JoinID(prefix, k), Kind: KindHashJoin,
			Right:    rightInputID(sp, prefix, step.Right),
			LeftKeys: sqlList(step.LeftKeys), RightKeys: sqlList(step.RightKeys),
		}
		if step.Cross {
			op.Kind = KindCross
			op.LeftKeys, op.RightKeys = nil, nil
		}
		doc.Operators = append(doc.Operators, op)
	}
	if len(sp.Residual) > 0 {
		doc.Operators = append(doc.Operators, PlanOp{ID: FilterID(prefix), Kind: KindFilter, Predicates: sqlList(sp.Residual)})
	}
	if sp.Grouped {
		doc.Operators = append(doc.Operators, PlanOp{
			ID: AggID(prefix), Kind: KindAgg,
			GroupBy: sqlList(stmt.GroupBy), Aggregates: aggregateList(stmt),
		})
	}
	doc.Operators = append(doc.Operators, PlanOp{ID: ProjectID(prefix), Kind: KindProject, Columns: outputColumns(sp)})
	if stmt.Distinct {
		doc.Operators = append(doc.Operators, PlanOp{ID: DistinctID(prefix), Kind: KindDistinct})
	}
	if len(stmt.OrderBy) > 0 {
		doc.Operators = append(doc.Operators, PlanOp{ID: SortID(prefix), Kind: KindSort, SortKeys: orderList(stmt)})
	}
	if stmt.Limit != nil || stmt.Offset != nil {
		doc.Operators = append(doc.Operators, PlanOp{ID: LimitID(prefix), Kind: KindLimit, Limit: stmt.Limit, Offset: stmt.Offset})
	}
	k := 0
	for _, sub := range CoreSubqueries(stmt) {
		nested := p.Sub(sub)
		if nested == nil {
			continue
		}
		corr := p.Correlated(sub)
		doc.Operators = append(doc.Operators, PlanOp{ID: SubID(prefix, k), Kind: KindSubquery, Correlated: &corr})
		emitStatement(doc, p, nested, SubPrefix(prefix, k))
		k++
	}
}

// rightInputID names the operator feeding a join step's right side.
func rightInputID(sp *plan.Select, prefix string, right int) string {
	if right < len(sp.From) && sp.From[right].Table != "" {
		return ScanID(prefix, right)
	}
	return InputID(prefix, right)
}

// neededColumns lists the pruned column set of one scan alias, sorted.
func neededColumns(sp *plan.Select, alias string) []string {
	set := sp.Needed[strings.ToLower(alias)]
	if len(set) == 0 {
		return nil
	}
	cols := make([]string, 0, len(set))
	for c := range set {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// outputColumns lists the statement's output column names in order.
func outputColumns(sp *plan.Select) []string {
	if len(sp.OutSchema) == 0 {
		return nil
	}
	cols := make([]string, len(sp.OutSchema))
	for i, c := range sp.OutSchema {
		cols[i] = c.Name
	}
	return cols
}

// aggregateList renders the distinct aggregate calls of the projection,
// HAVING and ORDER BY clauses, in first-sight order.
func aggregateList(stmt *sqlparser.SelectStatement) []string {
	var out []string
	seen := map[string]bool{}
	walk := func(e sqlparser.Expr) {
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			if f, ok := x.(*sqlparser.FuncCall); ok && f.IsAggregate() {
				if key := f.SQL(); !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
				return false
			}
			return true
		})
	}
	for _, p := range stmt.Projection {
		walk(p.Expr)
	}
	walk(stmt.Having)
	for _, o := range stmt.OrderBy {
		walk(o.Expr)
	}
	return out
}

// orderList renders the ORDER BY keys with direction suffixes.
func orderList(stmt *sqlparser.SelectStatement) []string {
	out := make([]string, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		out[i] = o.Expr.SQL()
		if o.Desc {
			out[i] += " DESC"
		}
	}
	return out
}

// sqlList renders expressions to their canonical SQL texts.
func sqlList(exprs []sqlparser.Expr) []string {
	if len(exprs) == 0 {
		return nil
	}
	out := make([]string, len(exprs))
	for i, e := range exprs {
		out[i] = e.SQL()
	}
	return out
}
