// Package webui renders the server-side HTML pages of the sqalpel platform:
// the project index, the project page with its synopsis and experiments, the
// grammar page (the demo's "query sqalpel" screen), the query-pool page with
// its steering controls, the experiment-history page with morph annotations,
// the query-differential page, and the operator-trace page that lays the
// span trees of every traced target side by side, keyed to the shared plan
// operator ids. Pages are generated on the server, as in the paper's
// prototype; no JavaScript framework is required to inspect a project.
package webui

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"sort"

	"sqalpel/internal/analytics"
	"sqalpel/internal/catalog"
	"sqalpel/internal/repository"
	"sqalpel/internal/trace"
)

// Renderer renders the HTML pages from pre-parsed templates.
type Renderer struct {
	tmpl *template.Template
}

// New parses the built-in templates.
func New() (*Renderer, error) {
	t := template.New("sqalpel").Funcs(template.FuncMap{
		"seconds": func(v float64) string { return fmt.Sprintf("%.4f", v) },
		"millis":  func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) },
		"ratio": func(v float64) string {
			if math.IsNaN(v) {
				return "—"
			}
			return fmt.Sprintf("%.2fx", v)
		},
	})
	var err error
	for name, text := range pages {
		t, err = t.New(name).Parse(text)
		if err != nil {
			return nil, fmt.Errorf("parsing template %s: %w", name, err)
		}
	}
	return &Renderer{tmpl: t}, nil
}

// IndexData feeds the landing page.
type IndexData struct {
	Viewer    string
	Projects  []*repository.Project
	DBMS      []catalog.DBMS
	Platforms []catalog.Platform
}

// ProjectData feeds the project page.
type ProjectData struct {
	Viewer   string
	Project  *repository.Project
	Results  []*repository.Result
	Comments []*repository.Comment
	Tasks    []*repository.Task
}

// GrammarData feeds the grammar ("query sqalpel") page.
type GrammarData struct {
	Project    *repository.Project
	Experiment *repository.Experiment
}

// PoolData feeds the query pool page.
type PoolData struct {
	Project    *repository.Project
	Experiment *repository.Experiment
}

// HistoryData feeds the experiment history page.
type HistoryData struct {
	Project *repository.Project
	Target  string
	Targets []string
	Points  []analytics.HistoryPoint
}

// DiffData feeds the query differential page.
type DiffData struct {
	Project *repository.Project
	Diff    analytics.Differential
	SQLA    string
	SQLB    string
}

// TraceData feeds the operator-trace page: one query's per-operator span
// trees on every traced target, laid side by side keyed to the shared plan
// operator ids, plus the operator-level ratio table between the first two
// targets.
type TraceData struct {
	Project *repository.Project
	QueryID int
	SQL     string
	// Targets are the traced target labels; Rows[i].Spans is parallel to it.
	Targets []string
	Rows    []trace.CompareRow
	// TargetA/TargetB name the pair the ratio table compares; empty when
	// fewer than two targets carry traces.
	TargetA string
	TargetB string
	Ratios  []TraceRatio
}

// TraceRatio is one row of the operator-level ratio table: the wall-clock
// time two targets spent in one operator kind.
type TraceRatio struct {
	Kind    string
	NanosA  int64
	NanosB  int64
	RatioAB float64
}

// TraceRatios aggregates the comparison rows per operator kind for the first
// two targets and ranks the kinds by how lopsided the time ratio is, the
// per-query sibling of the search's operator attribution table.
func TraceRatios(targets []string, rows []trace.CompareRow) (a, b string, out []TraceRatio) {
	if len(targets) < 2 {
		return "", "", nil
	}
	a, b = targets[0], targets[1]
	byKind := map[string]*TraceRatio{}
	for _, row := range rows {
		r := byKind[row.Kind]
		if r == nil {
			r = &TraceRatio{Kind: row.Kind, RatioAB: math.NaN()}
			byKind[row.Kind] = r
		}
		if sa := row.Spans[0]; sa != nil {
			r.NanosA += sa.WallNS
		}
		if sb := row.Spans[1]; sb != nil {
			r.NanosB += sb.WallNS
		}
	}
	for _, r := range byKind {
		if r.NanosA > 0 && r.NanosB > 0 {
			r.RatioAB = float64(r.NanosA) / float64(r.NanosB)
		}
		out = append(out, *r)
	}
	lopsided := func(v float64) float64 {
		if math.IsNaN(v) {
			return 0
		}
		return math.Max(v, 1/v)
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := lopsided(out[i].RatioAB), lopsided(out[j].RatioAB)
		if li != lj {
			return li > lj
		}
		return out[i].Kind < out[j].Kind
	})
	return a, b, out
}

// Index renders the landing page.
func (r *Renderer) Index(w io.Writer, data IndexData) error {
	return r.tmpl.ExecuteTemplate(w, "index", data)
}

// Project renders the project page.
func (r *Renderer) Project(w io.Writer, data ProjectData) error {
	return r.tmpl.ExecuteTemplate(w, "project", data)
}

// Grammar renders the grammar page.
func (r *Renderer) Grammar(w io.Writer, data GrammarData) error {
	return r.tmpl.ExecuteTemplate(w, "grammar", data)
}

// Pool renders the query pool page.
func (r *Renderer) Pool(w io.Writer, data PoolData) error {
	return r.tmpl.ExecuteTemplate(w, "pool", data)
}

// History renders the experiment history page.
func (r *Renderer) History(w io.Writer, data HistoryData) error {
	return r.tmpl.ExecuteTemplate(w, "history", data)
}

// Diff renders the query differential page.
func (r *Renderer) Diff(w io.Writer, data DiffData) error {
	return r.tmpl.ExecuteTemplate(w, "diff", data)
}

// Trace renders the operator-trace page.
func (r *Renderer) Trace(w io.Writer, data TraceData) error {
	return r.tmpl.ExecuteTemplate(w, "trace", data)
}

// pages holds the HTML templates, keyed by name.
var pages = map[string]string{
	"layout_head": `<!DOCTYPE html>
<html><head><title>sqalpel</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #bbb; padding: 0.3em 0.7em; text-align: left; }
pre { background: #f4f4f4; padding: 1em; overflow-x: auto; }
.strategy-baseline { color: #444; }
.strategy-random { color: #888; }
.strategy-alter { color: purple; }
.strategy-expand { color: green; }
.strategy-prune { color: blue; }
.error { color: #b58900; font-weight: bold; }
nav a { margin-right: 1em; }
</style></head><body>
<nav><a href="/">projects</a><a href="/catalog">catalogs</a></nav>`,

	"layout_foot": `</body></html>`,

	"index": `{{template "layout_head" .}}
<h1>sqalpel — a database performance platform</h1>
{{if .Viewer}}<p>signed in as <b>{{.Viewer}}</b></p>{{else}}<p>browsing anonymously; register via the API to create projects</p>{{end}}
<h2>Projects</h2>
<table><tr><th>id</th><th>name</th><th>owner</th><th>visibility</th><th>experiments</th></tr>
{{range .Projects}}<tr><td>{{.ID}}</td><td><a href="/projects/{{.ID}}">{{.Name}}</a></td><td>{{.Owner}}</td>
<td>{{if .Public}}public{{else}}private{{end}}</td><td>{{len .Experiments}}</td></tr>{{end}}
</table>
<h2>DBMS catalog</h2>
<table><tr><th>name</th><th>version</th><th>vendor</th><th>dialect</th><th>description</th></tr>
{{range .DBMS}}<tr><td>{{.Name}}</td><td>{{.Version}}</td><td>{{.Vendor}}</td><td>{{.Dialect}}</td><td>{{.Description}}</td></tr>{{end}}
</table>
<h2>Platform catalog</h2>
<table><tr><th>name</th><th>cpu</th><th>cores</th><th>memory (GB)</th><th>description</th></tr>
{{range .Platforms}}<tr><td>{{.Name}}</td><td>{{.CPU}}</td><td>{{.Cores}}</td><td>{{.MemoryGB}}</td><td>{{.Description}}</td></tr>{{end}}
</table>
{{template "layout_foot" .}}`,

	"project": `{{template "layout_head" .}}
<h1>Project: {{.Project.Name}}</h1>
<p>{{.Project.Synopsis}}</p>
{{if .Project.Attribution}}<p><i>Attribution: {{.Project.Attribution}}</i></p>{{end}}
<p>owner <b>{{.Project.Owner}}</b> — {{if .Project.Public}}public{{else}}private{{end}} project
— contributors: {{range .Project.Contributors}}{{.Nickname}} {{end}}</p>
<h2>Experiments</h2>
<table><tr><th>id</th><th>title</th><th>queries</th><th>pages</th></tr>
{{$pid := .Project.ID}}
{{range .Project.Experiments}}<tr><td>{{.ID}}</td><td>{{.Title}}</td><td>{{len .Queries}}</td>
<td><a href="/projects/{{$pid}}/experiments/{{.ID}}/grammar">grammar</a>
<a href="/projects/{{$pid}}/experiments/{{.ID}}/pool">pool</a>
<a href="/projects/{{$pid}}/history">history</a></td></tr>{{end}}
</table>
<h2>Results ({{len .Results}})</h2>
<table><tr><th>id</th><th>experiment</th><th>query</th><th>dbms</th><th>platform</th><th>best time (s)</th><th>trace</th><th>error</th></tr>
{{range .Results}}<tr><td>{{.ID}}</td><td>{{.ExperimentID}}</td><td>{{.QueryID}}</td><td>{{.DBMSKey}}</td><td>{{.PlatformKey}}</td>
<td>{{if .Failed}}<span class="error">—</span>{{else}}{{seconds .MinSeconds}}{{end}}</td>
<td>{{if .Trace}}<a href="/projects/{{$pid}}/trace?query={{.QueryID}}">trace</a>{{end}}</td><td>{{.Error}}</td></tr>{{end}}
</table>
<h2>Execution queue</h2>
<table><tr><th>task</th><th>query</th><th>dbms</th><th>platform</th><th>status</th></tr>
{{range .Tasks}}<tr><td>{{.ID}}</td><td>{{.QueryID}}</td><td>{{.DBMSKey}}</td><td>{{.PlatformKey}}</td><td>{{.Status}}</td></tr>{{end}}
</table>
<h2>Comments</h2>
{{range .Comments}}<p><b>{{.Author}}</b>: {{.Text}}</p>{{end}}
{{template "layout_foot" .}}`,

	"grammar": `{{template "layout_head" .}}
<h1>Query sqalpel — {{.Project.Name}} / {{.Experiment.Title}}</h1>
<h2>Baseline query</h2>
<pre>{{.Experiment.BaselineSQL}}</pre>
<h2>Derived grammar</h2>
<pre>{{.Experiment.GrammarText}}</pre>
{{template "layout_foot" .}}`,

	"pool": `{{template "layout_head" .}}
<h1>Query pool — {{.Project.Name}} / {{.Experiment.Title}}</h1>
<p>{{len .Experiment.Queries}} queries. Strategies: <span class="strategy-alter">alter</span>,
<span class="strategy-expand">expand</span>, <span class="strategy-prune">prune</span>.</p>
<table><tr><th>id</th><th>strategy</th><th>parent</th><th>components</th><th>query</th></tr>
{{range .Experiment.Queries}}<tr><td>{{.ID}}</td><td class="strategy-{{.Strategy}}">{{.Strategy}}</td>
<td>{{if .ParentID}}{{.ParentID}}{{end}}</td><td>{{.Components}}</td><td><code>{{.SQL}}</code></td></tr>{{end}}
</table>
{{template "layout_foot" .}}`,

	"history": `{{template "layout_head" .}}
<h1>Experiment history — {{.Project.Name}}</h1>
<p>target: <b>{{.Target}}</b>{{if .Targets}} (available: {{range .Targets}}{{.}} {{end}}){{end}}</p>
<table><tr><th>#</th><th>query</th><th>morphed from</th><th>strategy</th><th>components</th><th>time (s)</th></tr>
{{range .Points}}<tr><td>{{.Seq}}</td><td>{{.QueryID}}</td><td>{{if .ParentID}}{{.ParentID}}{{end}}</td>
<td class="strategy-{{.Strategy}}">{{.Strategy}}</td><td>{{.Components}}</td>
<td>{{if .IsError}}<span class="error">error</span>{{else}}{{seconds .Seconds}}{{end}}</td></tr>{{end}}
</table>
{{template "layout_foot" .}}`,

	"diff": `{{template "layout_head" .}}
<h1>Query differential — {{.Project.Name}}</h1>
<h2>Query {{.Diff.QueryA}}</h2><pre>{{.SQLA}}</pre>
<h2>Query {{.Diff.QueryB}}</h2><pre>{{.SQLB}}</pre>
<h2>Differences</h2>
<p>only in query {{.Diff.QueryA}}: {{range .Diff.OnlyA}}<code>{{.}}</code> {{end}}</p>
<p>only in query {{.Diff.QueryB}}: {{range .Diff.OnlyB}}<code>{{.}}</code> {{end}}</p>
<h2>Performance</h2>
<table><tr><th>target</th><th>query {{.Diff.QueryA}} (s)</th><th>query {{.Diff.QueryB}} (s)</th></tr>
{{range $target, $pair := .Diff.Times}}<tr><td>{{$target}}</td><td>{{seconds (index $pair 0)}}</td><td>{{seconds (index $pair 1)}}</td></tr>{{end}}
</table>
{{template "layout_foot" .}}`,

	"trace": `{{template "layout_head" .}}
<h1>Operator trace — {{.Project.Name}} / query {{.QueryID}}</h1>
{{if .SQL}}<pre>{{.SQL}}</pre>{{end}}
{{if not .Targets}}<p>No traced results for this query yet; run the driver with tracing enabled.</p>{{else}}
<p>Per-operator spans of every traced target, keyed to the shared plan operator ids
(see the EXPLAIN plan-JSON of the query). A dash means the target's execution
strategy has no such operator. Scan spans of the typed engines additionally
report the zone-map blocks they skipped ("+N skipped").</p>
<table><tr><th>operator</th><th>kind</th>{{range .Targets}}<th>{{.}} (ms / rows)</th>{{end}}</tr>
{{range .Rows}}<tr><td><code>{{.OpID}}</code></td><td>{{.Kind}}</td>
{{range .Spans}}<td>{{if .}}{{millis .WallNS}} / {{.Rows}}{{if .BlocksSkipped}} / +{{.BlocksSkipped}} skipped{{end}}{{else}}—{{end}}</td>{{end}}</tr>{{end}}
</table>
{{if .Ratios}}
<h2>Operator-level ratio: {{.TargetA}} vs {{.TargetB}}</h2>
<table><tr><th>kind</th><th>{{.TargetA}} (ms)</th><th>{{.TargetB}} (ms)</th><th>ratio</th></tr>
{{range .Ratios}}<tr><td>{{.Kind}}</td><td>{{millis .NanosA}}</td><td>{{millis .NanosB}}</td><td>{{ratio .RatioAB}}</td></tr>{{end}}
</table>
{{end}}
{{end}}
{{template "layout_foot" .}}`,
}
