// Package sqalpel is a Go reproduction of "SQALPEL: A database performance
// platform" (CIDR 2019): discriminative performance benchmarking driven by a
// query-space grammar, plus the platform to collect, manage and share the
// resulting performance facts.
//
// The implementation lives under internal/:
//
//   - internal/core is the public façade (projects, pools, targets, search,
//     analytics); start there.
//   - internal/grammar, internal/derive and internal/pool implement the
//     query-space DSL, the SQL-to-grammar conversion and the alter / expand /
//     prune morphing strategies.
//   - internal/engine, internal/vexec, internal/datagen and
//     internal/workload are the execution substrate: three SQL execution
//     paradigms with genuinely different performance profiles
//     (tuple-at-a-time, column-at-a-time and the batch-vectorized vektor
//     engine built on internal/vexec), deterministic TPC-H / SSB /
//     airtraffic data generators and the corresponding query workloads.
//   - internal/server, internal/webui, internal/repository, internal/catalog
//     and internal/driver form the sharing platform (projects, access
//     control, task queue, results, analytics pages) and its experiment
//     driver.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper; EXPERIMENTS.md records the measured outcomes next to the published
// ones.
package sqalpel
