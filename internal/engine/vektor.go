package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sqalpel/internal/sqlparser"
	"sqalpel/internal/vexec"
)

// vektorEngine is the third execution paradigm next to the row and column
// interpreters: the batch-vectorized executor of internal/vexec ("vektor"),
// working on typed unboxed vectors with selection vectors. The adapter owns
// the column-import shim — engine.Database stores boxed []Value columns,
// which are decoded into typed vectors once per table and cached — and falls
// back to the column interpreter for statements outside the vectorized
// subset (sub-queries, outer joins, derived tables, set operations).
type vektorEngine struct {
	name      string
	version   string
	dialect   string
	batchSize int
	fallback  *baseEngine

	mu    sync.Mutex
	cache map[*Table]*typedTableEntry
}

type typedTableEntry struct {
	rows int
	vt   *vexec.Table
}

// VektorOptions tune the vectorized engine variant.
type VektorOptions struct {
	// Version overrides the reported version string.
	Version string
	// BatchSize overrides the pipeline batch size (default 1024); the 2.0
	// release quadruples it, trading per-batch overhead against cache
	// residency the way columba 2.0 drops its guard casts.
	BatchSize int
}

// NewVektorEngine returns the batch-vectorized engine ("vektor 1.0"):
// typed columnar vectors, selection-vector filters, batch-at-a-time
// pull-based pipelines of 1024 rows.
func NewVektorEngine() Engine {
	return NewVektorEngineWithOptions(VektorOptions{})
}

// NewVektorEngineWithOptions returns a tuned vectorized engine variant,
// used to compare two releases of the same system.
func NewVektorEngineWithOptions(opts VektorOptions) Engine {
	version := opts.Version
	if version == "" {
		version = "1.0"
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = vexec.DefaultBatchSize
	}
	return &vektorEngine{
		name:      "vektor",
		version:   version,
		dialect:   "vektor",
		batchSize: batchSize,
		fallback:  &baseEngine{name: "vektor", version: version, dialect: "vektor", mode: ModeColumn},
		cache:     map[*Table]*typedTableEntry{},
	}
}

func (e *vektorEngine) Name() string    { return e.name }
func (e *vektorEngine) Version() string { return e.version }
func (e *vektorEngine) Dialect() string { return e.dialect }

// Execute parses and runs the query through the vectorized executor,
// falling back to the column interpreter when the statement (or a runtime
// value shape) is outside the vectorized subset.
func (e *vektorEngine) Execute(db *Database, sql string, opts ExecOptions) (*Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("%s: parse error: %w", e.name, err)
	}
	vopts := vexec.Options{BatchSize: e.batchSize, MaxJoinRows: opts.MaxJoinRows}
	if opts.Timeout > 0 {
		vopts.Deadline = time.Now().Add(opts.Timeout)
	}
	res, err := vexec.Execute(&typedCatalog{eng: e, db: db}, stmt, vopts)
	if err != nil {
		if errors.Is(err, vexec.ErrUnsupported) {
			return e.fallback.Execute(db, sql, opts)
		}
		return nil, fmt.Errorf("%s: %w", e.name, err)
	}

	out := &Result{
		Columns: res.Columns,
		Stats: Stats{
			RowsScanned:  res.Stats.RowsScanned,
			Batches:      res.Stats.Batches,
			FilterPasses: res.Stats.FilterPasses,
			HashJoins:    res.Stats.HashJoins,
			LoopJoins:    res.Stats.LoopJoins,
			Groups:       res.Stats.Groups,
			RowsReturned: res.Stats.RowsReturned,
		},
	}
	n := res.NumRows()
	out.Rows = make([][]Value, n)
	for i := 0; i < n; i++ {
		row := make([]Value, len(res.Cols))
		for c, vec := range res.Cols {
			kind, iv, fv, sv := vec.ValueAt(i)
			switch kind {
			case vexec.KindNull:
				row[c] = Null()
			case vexec.KindBool:
				row[c] = Value{Kind: KindBool, I: iv}
			case vexec.KindInt:
				row[c] = NewInt(iv)
			case vexec.KindFloat:
				row[c] = NewFloat(fv)
			case vexec.KindString:
				row[c] = NewString(sv)
			case vexec.KindDate:
				row[c] = NewDate(iv)
			}
		}
		out.Rows[i] = row
	}
	return out, nil
}

// typedCatalog adapts an engine.Database to vexec's catalog, decoding boxed
// columns into typed vectors through the engine's per-table cache.
type typedCatalog struct {
	eng *vektorEngine
	db  *Database
}

// VTable returns the typed form of the named table.
func (c *typedCatalog) VTable(name string) (*vexec.Table, error) {
	t := c.db.Table(name)
	if t == nil {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return c.eng.typedTable(t)
}

// typedTable converts a boxed table into typed vectors, caching the result
// until the table grows (tables are append-only).
func (e *vektorEngine) typedTable(t *Table) (*vexec.Table, error) {
	e.mu.Lock()
	entry, ok := e.cache[t]
	e.mu.Unlock()
	if ok && entry.rows == t.NumRows() {
		return entry.vt, nil
	}
	cols := make([]vexec.TableColumn, len(t.Columns))
	for ci, col := range t.Columns {
		vec, err := typedColumn(t.ColumnValues(ci))
		if err != nil {
			return nil, fmt.Errorf("%w: table %s column %s: %v", vexec.ErrUnsupported, t.Name, col.Name, err)
		}
		cols[ci] = vexec.TableColumn{Name: col.Name, Vec: vec}
	}
	vt := vexec.NewTable(t.Name, cols...)
	e.mu.Lock()
	e.cache[t] = &typedTableEntry{rows: t.NumRows(), vt: vt}
	e.mu.Unlock()
	return vt, nil
}

// typedColumn decodes one boxed column into a typed vector through vexec's
// value builder, so boxed-storage decoding and the executor's own kind
// promotion (including the per-row int/float duality a float column may
// legally carry) share one algorithm. All-NULL columns become KindNull
// vectors, which behave identically to typed all-NULL vectors. Columns
// mixing incompatible kinds report ErrUnsupported, routing such databases
// to the interpreter.
func typedColumn(vals []Value) (*vexec.Vector, error) {
	vb := vexec.NewValueBuilder(len(vals))
	for _, v := range vals {
		switch v.Kind {
		case KindNull:
			vb.AppendNull()
		case KindBool:
			vb.Append(vexec.KindBool, v.I, 0, "")
		case KindInt:
			vb.Append(vexec.KindInt, v.I, 0, "")
		case KindFloat:
			vb.Append(vexec.KindFloat, 0, v.F, "")
		case KindString:
			vb.Append(vexec.KindString, 0, 0, v.S)
		case KindDate:
			vb.Append(vexec.KindDate, v.I, 0, "")
		default:
			vb.AppendNull()
		}
	}
	return vb.Finalize()
}
