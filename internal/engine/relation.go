package engine

import (
	"fmt"
	"strings"
)

// relColumn is one column of an intermediate relation: the table alias it
// came from (empty for computed columns), its name, and the values.
type relColumn struct {
	table string
	name  string
	vals  []Value
}

// relation is the runtime representation flowing between operators:
// column-major, with enough naming metadata to resolve qualified and
// unqualified column references.
type relation struct {
	cols []*relColumn
	n    int
}

func newRelation() *relation { return &relation{} }

// addColumn appends a column; all columns must have the same length.
func (r *relation) addColumn(table, name string, vals []Value) {
	r.cols = append(r.cols, &relColumn{table: strings.ToLower(table), name: strings.ToLower(name), vals: vals})
	if len(r.cols) == 1 {
		r.n = len(vals)
	}
}

// numRows returns the number of rows.
func (r *relation) numRows() int { return r.n }

// findColumn resolves a (possibly qualified) column reference. It returns
// the column index, or an error when the reference is unknown or ambiguous.
func (r *relation) findColumn(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, c := range r.cols {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			// Qualified lookups matching multiple columns of the same alias
			// should not happen; unqualified lookups over self-joined tables
			// are genuinely ambiguous.
			return -1, fmt.Errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		return -1, errColumnNotFound
	}
	return found, nil
}

// errColumnNotFound is a sentinel distinguishing "not in this relation"
// (so outer scopes should be consulted) from true ambiguity errors.
var errColumnNotFound = fmt.Errorf("column not found")

// value returns the value at (row, col).
func (r *relation) value(row, col int) Value { return r.cols[col].vals[row] }

// project returns a new relation with only the rows whose indexes are given,
// copying the values (the cost of tuple reconstruction).
func (r *relation) selectRows(rows []int) *relation {
	out := &relation{n: len(rows)}
	for _, c := range r.cols {
		vals := make([]Value, len(rows))
		for i, ri := range rows {
			vals[i] = c.vals[ri]
		}
		out.cols = append(out.cols, &relColumn{table: c.table, name: c.name, vals: vals})
	}
	return out
}

// appendColumns appends columns to r (used when stitching join outputs); the
// new columns must have the same row count as r.
func (r *relation) appendColumns(cols []*relColumn) {
	r.cols = append(r.cols, cols...)
}

// tableRelation builds a relation over a base table. When needed is non-nil
// only the listed column names are included (column pruning); otherwise all
// columns are included. When copy is true the column vectors are copied,
// modelling a row store that reconstructs full tuples from its pages; when
// false the relation aliases the table storage directly.
func tableRelation(t *Table, alias string, needed map[string]bool, copyCols bool, stats *Stats) *relation {
	if alias == "" {
		alias = t.Name
	}
	rel := &relation{n: t.NumRows()}
	for i, c := range t.Columns {
		lname := strings.ToLower(c.Name)
		if needed != nil && !needed[lname] && !needed["*"] {
			continue
		}
		vals := t.ColumnValues(i)
		if copyCols {
			cp := make([]Value, len(vals))
			copy(cp, vals)
			vals = cp
			if stats != nil {
				stats.TuplesMaterialized += int64(len(cp))
			}
		}
		rel.cols = append(rel.cols, &relColumn{table: strings.ToLower(alias), name: lname, vals: vals})
	}
	if stats != nil {
		stats.RowsScanned += int64(t.NumRows())
	}
	return rel
}

// renameTables stamps every column of the relation with a new table alias;
// used for derived tables where the outer query sees only the alias.
func (r *relation) renameTables(alias string) {
	alias = strings.ToLower(alias)
	for _, c := range r.cols {
		c.table = alias
	}
}

// columnNames returns the output column names in order.
func (r *relation) columnNames() []string {
	out := make([]string, len(r.cols))
	for i, c := range r.cols {
		out[i] = c.name
	}
	return out
}
