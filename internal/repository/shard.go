package repository

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
)

// shard is one partition of the store: every project whose id hashes to the
// shard lives here together with all of its experiments, results, comments
// and tasks, guarded by the shard's own lock and logged to the shard's own
// write-ahead log. Task leasing, result appends and persistence of
// different shards therefore never contend on a shared lock.
type shard struct {
	store *Store
	idx   int

	mu       sync.RWMutex
	projects map[int]*Project
	results  []*Result
	comments []*Comment
	tasks    map[int]*Task

	// wal is nil for purely in-memory stores (NewStore); durable stores
	// (Open) append+fsync every mutation record here before applying it.
	wal *walWriter
}

func newShard(s *Store, idx int) *shard {
	return &shard{
		store:    s,
		idx:      idx,
		projects: map[int]*Project{},
		tasks:    map[int]*Task{},
	}
}

// shardFor routes a project id to its shard.
func (s *Store) shardFor(projectID int) *shard {
	idx := projectID % len(s.shards)
	if idx < 0 {
		idx += len(s.shards)
	}
	return s.shards[idx]
}

// logApply is the write path contract: marshal the logical record, make it
// durable (when a WAL is attached), then apply it to memory via the same
// switch recovery uses. Callers hold the shard lock and have fully
// validated the mutation, so apply cannot fail for semantic reasons; a
// failed append leaves memory untouched and surfaces the error.
func (sh *shard) logApply(op string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("encoding %s record: %w", op, err)
	}
	rec := walRecord{Op: op, Data: data}
	if sh.wal != nil {
		rec.LSN = sh.wal.lsn + 1
		if err := sh.wal.append(rec); err != nil {
			return err
		}
	}
	return sh.apply(rec)
}

// apply mutates the shard from one decoded record. It runs with the shard
// lock held (or single-threaded during recovery) and performs no
// validation: records describe state changes that already happened.
func (sh *shard) apply(rec walRecord) error {
	switch rec.Op {
	case opProject:
		var p Project
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		sh.projects[p.ID] = &p
	case opVisibility:
		var v walVisibility
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		if p := sh.projects[v.ProjectID]; p != nil {
			p.Public = v.Public
		}
	case opSynopsis:
		var v walSynopsis
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		if p := sh.projects[v.ProjectID]; p != nil {
			p.Synopsis = v.Synopsis
			p.Attribution = v.Attribution
		}
	case opCatalogs:
		var v walCatalogs
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		if p := sh.projects[v.ProjectID]; p != nil {
			p.DBMSKeys = v.DBMSKeys
			p.PlatformKeys = v.PlatformKeys
		}
	case opInvite:
		var v walInvite
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		if p := sh.projects[v.ProjectID]; p != nil && p.contributor(v.Contributor.Nickname) == nil {
			p.Contributors = append(p.Contributors, v.Contributor)
		}
	case opExperiment:
		var v walExperiment
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		if p := sh.projects[v.ProjectID]; p != nil {
			p.Experiments = append(p.Experiments, v.Experiment)
		}
	case opQueriesReplace, opQueriesAppend:
		var v walQueries
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		p := sh.projects[v.ProjectID]
		if p == nil {
			return nil
		}
		e := p.Experiment(v.ExperimentID)
		if e == nil {
			return nil
		}
		if rec.Op == opQueriesReplace {
			e.Queries = append([]QueryRecord(nil), v.Queries...)
		} else {
			e.Queries = append(e.Queries, v.Queries...)
		}
	case opResult:
		var r Result
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		sh.results = append(sh.results, &r)
	case opResultHide:
		var v walResultMod
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		for _, r := range sh.results {
			if r.ID == v.ResultID {
				r.Hidden = v.Hidden
				break
			}
		}
	case opResultDelete:
		var v walResultMod
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		for i, r := range sh.results {
			if r.ID == v.ResultID {
				sh.results = append(sh.results[:i], sh.results[i+1:]...)
				break
			}
		}
	case opComment:
		var c Comment
		if err := json.Unmarshal(rec.Data, &c); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		sh.comments = append(sh.comments, &c)
	case opTaskLease:
		var ts []*Task
		if err := json.Unmarshal(rec.Data, &ts); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		for _, t := range ts {
			sh.tasks[t.ID] = t
		}
	case opTaskComplete:
		var v walTaskComplete
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		if t := sh.tasks[v.TaskID]; t != nil {
			t.Status = v.Status
			t.Finished = v.Finished
		}
		if v.Result != nil {
			sh.results = append(sh.results, v.Result)
		}
	case opTaskKill:
		var v walTaskKill
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		if t := sh.tasks[v.TaskID]; t != nil {
			t.Status = TaskKilled
			t.Finished = v.Finished
		}
	default:
		return fmt.Errorf("unknown wal op %q", rec.Op)
	}
	return nil
}

// roleOfLocked computes the viewer's role for a project of this shard; the
// caller holds the shard lock.
func (sh *shard) roleOfLocked(nickname string, projectID int) Role {
	p := sh.projects[projectID]
	if p == nil {
		return RoleNone
	}
	if nickname != "" && p.Owner == nickname {
		return RoleOwner
	}
	if nickname != "" && p.contributor(nickname) != nil {
		return RoleContributor
	}
	if p.Public {
		return RoleReader
	}
	return RoleNone
}

// projectByNameLocked returns the shard's project with the given name, or
// nil; the caller holds the shard lock.
func (sh *shard) projectByNameLocked(name string) *Project {
	for _, p := range sh.projects {
		if strings.EqualFold(p.Name, name) {
			return p
		}
	}
	return nil
}

// snapshotLocked builds the shard's persistent image; the caller holds the
// shard lock. The slices alias the live objects, so marshalling must also
// happen under the lock (see persist.go).
func (sh *shard) snapshotLocked() snapshot {
	snap := snapshot{
		Results:  sh.results,
		Comments: sh.comments,
		SavedAt:  sh.store.now(),
	}
	if sh.wal != nil {
		snap.WALLSN = sh.wal.lsn
	}
	for _, p := range sh.projects {
		snap.Projects = append(snap.Projects, p)
	}
	for _, t := range sh.tasks {
		snap.Tasks = append(snap.Tasks, t)
	}
	return snap
}
