// discriminative hunts for discriminative queries between the built-in
// engines on a real TPC-H workload: it derives the grammar of TPC-H Q1 and
// Q6, grows their pools with the guided random walk and reports which query
// variants run relatively better on the column store and which on the row
// store — together with the dominant-component analysis that explains why
// (the paper's Figure 2 observation about the sum_charge expression) and
// the three-paradigm discrimination matrix that adds the batch-vectorized
// vektor engine to the comparison.
//
// Run with:
//
//	go run ./examples/discriminative
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"sqalpel/internal/core"
	"sqalpel/internal/datagen"
	"sqalpel/internal/engine"
	"sqalpel/internal/workload"
)

func main() {
	db := datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.01})
	colKey := "columba-1.0"
	rowKey := "tuplestore-1.0"
	vekKey := "vektor-1.0"

	for _, id := range []string{"Q1", "Q6"} {
		q, err := workload.TPCHQuery(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== TPC-H %s: %s ===\n", q.ID, q.Name)

		// The search fans the pool's (query, target) cells across a worker
		// pool; the findings are identical at any parallelism, only the
		// wall-clock changes (see EXPERIMENTS.md for the scaling table).
		project, err := core.NewProject("tpch-"+q.ID, q.SQL, core.ProjectOptions{
			Runs:        3,
			Parallelism: runtime.GOMAXPROCS(0),
			Timeout:     30 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		project.AddEngineTarget(colKey, engine.NewColEngine(), db)
		project.AddEngineTarget(rowKey, engine.NewRowEngine(), db)
		project.AddEngineTarget(vekKey, engine.NewVektorEngine(), db)

		if err := project.SeedPool(10); err != nil {
			log.Fatal(err)
		}
		project.GrowPool(15)
		if err := project.Run(2, colKey, rowKey); err != nil {
			log.Fatal(err)
		}
		fmt.Println(project.Summary())

		better, err := project.Discriminative(rowKey, colKey, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nvariants relatively better on the row store:\n")
		for _, f := range better {
			fmt.Printf("  %.2fx  #%d [%s] components=%d\n", f.Ratio, f.Outcome.Entry.ID, f.Outcome.Entry.Strategy, f.Outcome.Entry.Components)
		}
		betterCol, err := project.Discriminative(colKey, rowKey, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("variants relatively better on the column store:\n")
		for _, f := range betterCol {
			fmt.Printf("  %.2fx  #%d [%s] components=%d\n", f.Ratio, f.Outcome.Entry.ID, f.Outcome.Entry.Strategy, f.Outcome.Entry.Components)
		}

		fmt.Printf("\ndominant lexical components on the column store (marginal seconds):\n")
		for i, c := range project.Components(colKey) {
			if i >= 5 {
				break
			}
			fmt.Printf("  %+0.4fs  %s\n", c.Delta, c.Term)
		}

		fmt.Printf("\nthree-paradigm discrimination matrix (best ratio per pair):\n")
		cells, err := project.Matrix()
		if err != nil {
			log.Fatal(err)
		}
		for _, cell := range cells {
			if cell.Best == nil {
				fmt.Printf("  %-16s > %-16s  (no separating query)\n", cell.Fast, cell.Slow)
				continue
			}
			fmt.Printf("  %-16s > %-16s  %.2fx on #%d (%d queries)\n",
				cell.Fast, cell.Slow, cell.Best.Ratio, cell.Best.Outcome.Entry.ID, cell.Count)
		}
		fmt.Println()
	}
}
