package vexec

import (
	"fmt"
	"strings"
)

// colMeta names one column of a batch: the table alias it came from (empty
// for computed columns) and the column name, both lower case.
type colMeta struct {
	table string
	name  string
}

// Batch is the unit of data flowing between operators: a set of typed
// vectors of equal physical length plus an optional selection vector. When
// sel is non-nil only the listed row indexes are live; filters shrink sel
// instead of copying the payload vectors.
type Batch struct {
	cols []*Vector
	meta []colMeta
	sel  []int
	n    int // physical rows in the vectors
	// selBuf is recycled capacity for the first selection pass; scan
	// operators that reuse their output frame park the previous batch's
	// sel here so steady-state filtering stops allocating per batch.
	selBuf []int
}

// newBatch builds a batch over dense vectors.
func newBatch(n int) *Batch { return &Batch{n: n} }

// addCol appends a column.
func (b *Batch) addCol(table, name string, v *Vector) {
	b.cols = append(b.cols, v)
	b.meta = append(b.meta, colMeta{table: strings.ToLower(table), name: strings.ToLower(name)})
}

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// physRow maps live row i to its physical row index.
func (b *Batch) physRow(i int) int {
	if b.sel != nil {
		return b.sel[i]
	}
	return i
}

// errColumnNotFound distinguishes "not in this batch" from ambiguity.
var errColumnNotFound = fmt.Errorf("column not found")

// findColumn resolves a possibly qualified column reference with the same
// rules as the interpreter's relation: unqualified lookups over columns of
// the same name in different tables are ambiguous.
func (b *Batch) findColumn(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, m := range b.meta {
		if m.name != name {
			continue
		}
		if table != "" && m.table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		return -1, errColumnNotFound
	}
	return found, nil
}

// dense returns column i as a dense vector over the live rows: the column
// itself when no selection is active (zero copy), a gathered copy otherwise.
func (b *Batch) dense(i int) *Vector {
	if b.sel == nil {
		return b.cols[i]
	}
	return b.cols[i].Gather(b.sel)
}

// compact applies the selection vector, turning the batch into a dense one.
func (b *Batch) compact() *Batch {
	if b.sel == nil {
		return b
	}
	out := &Batch{n: len(b.sel), meta: b.meta}
	out.cols = make([]*Vector, len(b.cols))
	for i, c := range b.cols {
		out.cols[i] = c.Gather(b.sel)
	}
	return out
}

// gatherRows builds a dense batch containing the given physical row indexes.
func (b *Batch) gatherRows(rows []int) *Batch {
	out := &Batch{n: len(rows), meta: b.meta}
	out.cols = make([]*Vector, len(b.cols))
	for i, c := range b.cols {
		out.cols[i] = c.Gather(rows)
	}
	return out
}

// gatherRowsNullable is gatherRows with index -1 producing an all-NULL row —
// the null-extension of outer joins.
func (b *Batch) gatherRowsNullable(rows []int) *Batch {
	out := &Batch{n: len(rows), meta: b.meta}
	out.cols = make([]*Vector, len(b.cols))
	for i, c := range b.cols {
		out.cols[i] = c.GatherNullable(rows)
	}
	return out
}

// concatBatches stitches dense copies of the batches into one dense batch.
// All batches must share the same column layout; a nil result means zero
// batches were supplied.
func concatBatches(batches []*Batch) *Batch {
	if len(batches) == 0 {
		return nil
	}
	first := batches[0]
	total := 0
	for _, b := range batches {
		total += b.Len()
	}
	out := &Batch{n: total, meta: first.meta}
	out.cols = make([]*Vector, len(first.cols))
	for ci := range first.cols {
		out.cols[ci] = concatVectors(batches, ci, total)
	}
	return out
}

// concatVectors concatenates column ci of the batches (dense views) into one
// vector. The column kind is uniform across batches of one pipeline — all
// slices of one scan or gathers of one join share it — except that KindNull
// (empty) chunks and float chunks with/without the IsInt mask may mix.
func concatVectors(batches []*Batch, ci, total int) *Vector {
	kind := KindNull
	anyIsInt := false
	var dict *Dictionary
	dictOK := true
	for _, b := range batches {
		c := b.cols[ci]
		if c.Kind != KindNull {
			kind = c.Kind
			// chunks stay dictionary-coded only when every string chunk
			// shares one dictionary; mixed encodings fall back to raw
			if c.Kind == KindString {
				if c.Dict == nil || (dict != nil && c.Dict != dict) {
					dictOK = false
				} else {
					dict = c.Dict
				}
			}
		}
		if c.IsInt != nil {
			anyIsInt = true
		}
	}
	var out *Vector
	if kind == KindString && dictOK && dict != nil {
		out = &Vector{Kind: KindString, n: total, Dict: dict, Codes: make([]uint32, total)}
	} else {
		out = NewVector(kind, total)
	}
	if kind == KindFloat && anyIsInt {
		out.Ints = make([]int64, total)
		out.IsInt = make([]bool, total)
	}
	pos := 0
	for _, b := range batches {
		v := b.dense(ci)
		for i := 0; i < v.Len(); i++ {
			if v.IsNull(i) {
				out.SetNull(pos)
				pos++
				continue
			}
			switch kind {
			case KindInt, KindDate, KindBool:
				out.Ints[pos] = v.Ints[i]
			case KindFloat:
				out.Floats[pos] = v.Floats[i]
				if v.IsInt != nil && v.IsInt[i] {
					out.Ints[pos] = v.Ints[i]
					out.IsInt[pos] = true
				}
			case KindString:
				if out.Codes != nil {
					out.Codes[pos] = v.Codes[i]
				} else {
					out.Strs[pos] = v.StrAt(i)
				}
			}
			pos++
		}
	}
	return out
}
