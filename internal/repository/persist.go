package repository

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// snapshot is the on-disk JSON representation of a store.
type snapshot struct {
	Users    []*User    `json:"users"`
	Projects []*Project `json:"projects"`
	Results  []*Result  `json:"results"`
	Comments []*Comment `json:"comments"`
	Tasks    []*Task    `json:"tasks"`

	NextProjectID int `json:"next_project_id"`
	NextResultID  int `json:"next_result_id"`
	NextCommentID int `json:"next_comment_id"`
	NextTaskID    int `json:"next_task_id"`

	TaskTimeoutSeconds int       `json:"task_timeout_seconds"`
	SavedAt            time.Time `json:"saved_at"`
}

// Save writes the store to <dir>/sqalpel.json, creating the directory when
// needed. The write is atomic (temp file + rename). Marshalling happens
// under the read lock: the snapshot slices hold the live *Project/*Task/
// *Result pointers, so encoding after unlocking would race with concurrent
// mutators (AppendQueries, AddResult, task leasing) walking the same
// objects. Only the filesystem writes run unlocked.
func (s *Store) Save(dir string) error {
	s.mu.RLock()
	snap := snapshot{
		Results:            s.results,
		Comments:           s.comments,
		NextProjectID:      s.nextProjectID,
		NextResultID:       s.nextResultID,
		NextCommentID:      s.nextCommentID,
		NextTaskID:         s.nextTaskID,
		TaskTimeoutSeconds: int(s.TaskTimeout.Seconds()),
		SavedAt:            s.now(),
	}
	for _, u := range s.users {
		snap.Users = append(snap.Users, u)
	}
	for _, p := range s.projects {
		snap.Projects = append(snap.Projects, p)
	}
	for _, t := range s.tasks {
		snap.Tasks = append(snap.Tasks, t)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("encoding store: %w", err)
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating store directory: %w", err)
	}
	tmp := filepath.Join(dir, "sqalpel.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("writing store: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, "sqalpel.json"))
}

// Load reads a store previously written by Save. A missing file yields an
// empty store rather than an error, so a fresh deployment just works.
func Load(dir string) (*Store, error) {
	s := NewStore()
	data, err := os.ReadFile(filepath.Join(dir, "sqalpel.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, fmt.Errorf("reading store: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("decoding store: %w", err)
	}
	for _, u := range snap.Users {
		s.users[u.Nickname] = u
	}
	for _, p := range snap.Projects {
		s.projects[p.ID] = p
	}
	s.results = snap.Results
	s.comments = snap.Comments
	for _, t := range snap.Tasks {
		s.tasks[t.ID] = t
	}
	if snap.NextProjectID > 0 {
		s.nextProjectID = snap.NextProjectID
	}
	if snap.NextResultID > 0 {
		s.nextResultID = snap.NextResultID
	}
	if snap.NextCommentID > 0 {
		s.nextCommentID = snap.NextCommentID
	}
	if snap.NextTaskID > 0 {
		s.nextTaskID = snap.NextTaskID
	}
	if snap.TaskTimeoutSeconds > 0 {
		s.TaskTimeout = time.Duration(snap.TaskTimeoutSeconds) * time.Second
	}
	return s, nil
}
