package engine_test

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"sqalpel/internal/datagen"
	"sqalpel/internal/engine"
	"sqalpel/internal/plan"
	"sqalpel/internal/workload"
)

// TestTPCHFullyVectorized is the acceptance gate of the sub-query work:
// every TPC-H query must carry a vectorizable plan verdict AND run through
// the native batch pipeline at runtime (a zero batch counter would mean the
// adapter silently fell back to the interpreter). Failures list every
// offending query with the plan's reason or the runtime symptom.
func TestTPCHFullyVectorized(t *testing.T) {
	vek := engine.NewVektorEngine()
	opts := engine.ExecOptions{Timeout: 2 * time.Minute}
	var offenders []string
	for _, q := range workload.TPCH() {
		p, err := plan.Build(tpchDB, q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if !p.Vectorizable {
			offenders = append(offenders, fmt.Sprintf("%s: plan verdict: %s", q.ID, p.NotVectorizableReason))
			continue
		}
		res, err := vek.Execute(tpchDB, q.SQL, opts)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if res.Stats.Batches == 0 {
			offenders = append(offenders, q.ID+": runtime fell back to the interpreter (zero batches)")
		}
	}
	if len(offenders) > 0 {
		t.Errorf("queries outside the native vectorized path:\n  %s", strings.Join(offenders, "\n  "))
	}
}

// TestTPCHThreeParadigmsAgree is the conformance test of the third
// execution paradigm: every TPC-H query must produce identical
// (order-insensitive) results on the tuple-at-a-time, column-at-a-time and
// batch-vectorized engines, in both vektor releases (1024- and 4096-row
// batches, so batch-boundary splits differ between the two).
func TestTPCHThreeParadigmsAgree(t *testing.T) {
	engines := []engine.Engine{
		engine.NewRowEngine(),
		engine.NewColEngine(),
		engine.NewVektorEngine(),
		engine.NewVektorEngineWithOptions(engine.VektorOptions{Version: "2.0", BatchSize: 4096}),
	}
	opts := engine.ExecOptions{Timeout: 2 * time.Minute}
	for _, q := range workload.TPCH() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			var baseline string
			for i, eng := range engines {
				res, err := eng.Execute(tpchDB, q.SQL, opts)
				if err != nil {
					t.Fatalf("%s-%s: %v", eng.Name(), eng.Version(), err)
				}
				if i == 0 {
					baseline = res.Fingerprint()
					continue
				}
				if res.Fingerprint() != baseline {
					t.Errorf("%s-%s disagrees with %s on %s (%d rows)",
						eng.Name(), eng.Version(), engines[0].Name(), q.ID, res.NumRows())
				}
			}
		})
	}
}

// TestSSBAndAirtrafficVektorAgrees runs the other two bootstrap workloads
// through the vectorized engine against the column interpreter.
func TestSSBAndAirtrafficVektorAgrees(t *testing.T) {
	ssbDB := datagen.SSB(datagen.SSBOptions{ScaleFactor: 0.0003})
	airDB := datagen.Airtraffic(datagen.AirtrafficOptions{Flights: 2000})
	col := engine.NewColEngine()
	vek := engine.NewVektorEngine()
	opts := engine.ExecOptions{Timeout: time.Minute}
	for _, tc := range []struct {
		db      *engine.Database
		queries []workload.Query
	}{
		{ssbDB, workload.SSB()},
		{airDB, workload.Airtraffic()},
	} {
		for _, q := range tc.queries {
			r1, err := col.Execute(tc.db, q.SQL, opts)
			if err != nil {
				t.Fatalf("%s col: %v", q.ID, err)
			}
			r2, err := vek.Execute(tc.db, q.SQL, opts)
			if err != nil {
				t.Fatalf("%s vektor: %v", q.ID, err)
			}
			if r1.Fingerprint() != r2.Fingerprint() {
				t.Errorf("%s: vektor disagrees with columba", q.ID)
			}
		}
	}
}

// TestVektorNativeAndFallback checks the execution-path split: scan-heavy
// aggregation queries run natively through the batch pipeline (visible as a
// non-zero batch counter), while sub-query statements fall back to the
// interpreter and report zero batches — but stay correct either way.
func TestVektorNativeAndFallback(t *testing.T) {
	vek := engine.NewVektorEngine()
	opts := engine.ExecOptions{Timeout: 2 * time.Minute}

	for _, id := range []string{"Q1", "Q3", "Q6"} {
		q, _ := workload.TPCHQuery(id)
		res, err := vek.Execute(tpchDB, q.SQL, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Stats.Batches == 0 {
			t.Errorf("%s should run through the native batch pipeline", id)
		}
		if res.Stats.RowsScanned == 0 {
			t.Errorf("%s should report scanned rows", id)
		}
	}

	// Q2 carries a correlated scalar sub-query: decorrelated into a hash
	// probe, it runs through the native batch pipeline and reports the
	// sub-query build as an execution.
	q2, _ := workload.TPCHQuery("Q2")
	res, err := vek.Execute(tpchDB, q2.SQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Batches == 0 {
		t.Error("Q2 should run through the native batch pipeline")
	}
	if res.Stats.SubqueryExecutions == 0 {
		t.Error("Q2 should count its decorrelated sub-query build")
	}
	col, err := engine.NewColEngine().Execute(tpchDB, q2.SQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint() != col.Fingerprint() {
		t.Error("native sub-query result disagrees with columba")
	}
}

// TestVektorAgreesOnTrickyShapes pins down two divergences found in
// review: eager vectorized evaluation of CASE arms and OR operands must not
// surface type errors the interpreters' short-circuiting never reaches
// (those statements defer to the interpreter), and ORDER BY on a projection
// alias combined with a star projection must sort by the aliased column on
// every engine.
func TestVektorAgreesOnTrickyShapes(t *testing.T) {
	db := engine.NewDatabase("tricky")
	tbl := engine.NewTable("t",
		engine.Column{Name: "k", Type: engine.TypeString},
		engine.Column{Name: "x", Type: engine.TypeInt},
		engine.Column{Name: "y", Type: engine.TypeInt},
		engine.Column{Name: "s", Type: engine.TypeString},
	)
	for i, y := range []int64{10, 30, 20} {
		tbl.MustAppendRow(engine.NewString("num"), engine.NewInt(1), engine.NewInt(y),
			engine.NewString(string(rune('a'+i))))
	}
	db.AddTable(tbl)

	engines := []engine.Engine{
		engine.NewRowEngine(),
		engine.NewColEngine(),
		engine.NewVektorEngine(),
	}
	for _, sql := range []string{
		// The ELSE arm is a type error on every row, but no row reaches it.
		"SELECT CASE WHEN k = 'num' THEN x + 1 ELSE s + 1 END AS v FROM t WHERE k = 'num'",
		// The right OR arm is a type error, but the left arm always holds.
		"SELECT x FROM t WHERE x = 1 OR x + s > 0",
		// Star block plus aliased computed column: the alias must drive the sort.
		"SELECT *, y + 0 AS a FROM t ORDER BY a DESC LIMIT 2",
	} {
		var baseline *engine.Result
		for _, eng := range engines {
			res, err := eng.Execute(db, sql, engine.ExecOptions{})
			if err != nil {
				t.Fatalf("%s-%s on %q: %v", eng.Name(), eng.Version(), sql, err)
			}
			if baseline == nil {
				baseline = res
				continue
			}
			if res.Fingerprint() != baseline.Fingerprint() {
				t.Errorf("%s-%s disagrees on %q:\n%s\nvs\n%s",
					eng.Name(), eng.Version(), sql, res.Fingerprint(), baseline.Fingerprint())
			}
		}
	}

	// The alias sort must pick the aliased column, not a star column.
	res, err := engine.NewColEngine().Execute(db, "SELECT *, y + 0 AS a FROM t ORDER BY a DESC LIMIT 2", engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][4].Int() != 30 || res.Rows[1][4].Int() != 20 {
		t.Errorf("alias sort picked the wrong column: %v", res.Rows)
	}
}

// TestVektorParallelDeterminism is the conformance test of morsel-driven
// intra-query parallelism: every workload query (TPC-H, SSB, airtraffic)
// must produce bit-identical results — same rows, same order, same value
// kinds, floats equal to the last bit — at Parallelism 1 and 8. The
// parallel executor guarantees this by merging every morsel stage in
// morsel order and folding aggregate groups in serial row order.
func TestVektorParallelDeterminism(t *testing.T) {
	ssbDB := datagen.SSB(datagen.SSBOptions{ScaleFactor: 0.0003})
	airDB := datagen.Airtraffic(datagen.AirtrafficOptions{Flights: 2000})
	serial := engine.NewVektorEngine()
	parallel := engine.NewVektorEngineWithOptions(engine.VektorOptions{Parallelism: 8})
	opts := engine.ExecOptions{Timeout: 2 * time.Minute}
	for _, tc := range []struct {
		db      *engine.Database
		queries []workload.Query
	}{
		{tpchDB, workload.TPCH()},
		{ssbDB, workload.SSB()},
		{airDB, workload.Airtraffic()},
	} {
		for _, q := range tc.queries {
			r1, err := serial.Execute(tc.db, q.SQL, opts)
			if err != nil {
				t.Fatalf("%s serial: %v", q.ID, err)
			}
			// Per-execution override on the serial engine must behave like
			// the engine-level default.
			r8, err := serial.Execute(tc.db, q.SQL, engine.ExecOptions{Timeout: 2 * time.Minute, Parallelism: 8})
			if err != nil {
				t.Fatalf("%s parallel(exec): %v", q.ID, err)
			}
			rEng, err := parallel.Execute(tc.db, q.SQL, opts)
			if err != nil {
				t.Fatalf("%s parallel(engine): %v", q.ID, err)
			}
			for _, r := range []*engine.Result{r8, rEng} {
				if len(r.Rows) != len(r1.Rows) {
					t.Fatalf("%s: %d rows parallel vs %d serial", q.ID, len(r.Rows), len(r1.Rows))
				}
				for i := range r.Rows {
					for c := range r.Rows[i] {
						a, b := r1.Rows[i][c], r.Rows[i][c]
						if a.Kind != b.Kind || a.I != b.I || math.Float64bits(a.F) != math.Float64bits(b.F) || a.S != b.S {
							t.Fatalf("%s row %d col %d: serial %#v parallel %#v", q.ID, i, c, a, b)
						}
					}
				}
			}
		}
	}
}

// TestRegistryParadigms locks in the engine matrix the discriminative
// search runs over: at least six engines spanning four paradigm families.
func TestRegistryParadigms(t *testing.T) {
	reg := engine.NewRegistry()
	if len(reg.Keys()) < 6 {
		t.Fatalf("registry keys = %v, want at least 6", reg.Keys())
	}
	families := map[string]bool{}
	for _, e := range reg.Engines() {
		families[e.Name()] = true
	}
	for _, want := range []string{"tuplestore", "columba", "vektor", "fusil"} {
		if !families[want] {
			t.Errorf("registry misses the %s family: %v", want, reg.Keys())
		}
	}
	if reg.Get(engine.EngineKey("vektor", "1.0")) == nil || reg.Get(engine.EngineKey("vektor", "2.0")) == nil {
		t.Error("both vektor releases must be registered")
	}
	if eng := reg.Get("vektor-1.0"); eng != nil && eng.Dialect() != "vektor" {
		t.Errorf("vektor dialect = %q", eng.Dialect())
	}
	if eng := reg.Get(engine.EngineKey("fusil", "1.0")); eng == nil {
		t.Error("the compiled engine must be registered")
	} else if eng.Dialect() != "fusil" {
		t.Errorf("fusil dialect = %q", eng.Dialect())
	}
}

// TestVektorStatsDiffer confirms the vectorized engine's counters separate
// it from the interpreters on the same query — the raw material of the
// platform's per-engine analytics.
func TestVektorStatsDiffer(t *testing.T) {
	q6, _ := workload.TPCHQuery("Q6")
	vek, err := engine.NewVektorEngine().Execute(tpchDB, q6.SQL, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := engine.NewColEngine().Execute(tpchDB, q6.SQL, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vek.Stats.Batches == 0 || col.Stats.Batches != 0 {
		t.Errorf("batches: vektor=%d columba=%d", vek.Stats.Batches, col.Stats.Batches)
	}
	if vek.Stats.TuplesMaterialized != 0 {
		t.Errorf("vektor materialised %d boxed tuple values", vek.Stats.TuplesMaterialized)
	}
	m := vek.Stats.Map()
	if _, ok := m["batches"]; !ok {
		t.Error("stats map misses the batches counter")
	}
	if !strings.Contains(strings.Join(vek.Columns, ","), "revenue") {
		t.Errorf("Q6 columns = %v", vek.Columns)
	}
}
