// Package analysistest runs an analyzer over packages in a testdata/src
// tree and checks its diagnostics against the x/tools-style "// want"
// expectations embedded in the fixture sources:
//
//	for k := range m { // want `iteration over map`
//
// Each want comment carries one or more back-quoted or double-quoted
// regular expressions; every expectation must be matched by a diagnostic
// on that line, and every diagnostic must match an expectation. Fixture
// packages must type-check — a broken fixture fails the test rather than
// silently testing nothing.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"sqalpel/internal/lint/analysis"
	"sqalpel/internal/lint/loader"
)

// expectation is one want pattern at a file position.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted patterns of one want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants scans a file's comments for // want expectations.
func parseWants(t *testing.T, fset *token.FileSet, file *ast.File) []*expectation {
	var wants []*expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") && text != "want" {
				continue
			}
			pos := fset.Position(c.Pos())
			matches := wantRE.FindAllStringSubmatch(strings.TrimPrefix(text, "want"), -1)
			if len(matches) == 0 {
				t.Errorf("%s:%d: malformed want comment (no quoted pattern): %s", pos.Filename, pos.Line, text)
				continue
			}
			for _, m := range matches {
				raw := m[1]
				if raw == "" {
					raw = m[2]
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					continue
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return wants
}

// Run loads the fixture packages under dir/src by import path, applies the
// analyzer to each, and diffs diagnostics against the want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := loader.LoadFixtures(dir+"/src", paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			t.Errorf("fixture %s does not type-check: %v", pkg.Path, e)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: running %s: %v", pkg.Path, a.Name, err)
		}

		var wants []*expectation
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, pkg.Fset, f)...)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			matched := false
			for _, w := range wants {
				if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
					w.matched = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: %s", fmt.Sprintf("%s:%d", pos.Filename, pos.Line), d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
			}
		}
	}
}
