package engine_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sqalpel/internal/datagen"
	"sqalpel/internal/engine"
	"sqalpel/internal/plan"
	"sqalpel/internal/workload"
)

// TestPlanCacheDifferentialAllWorkloads is the conformance test of the
// shared logical-plan layer: every workload query must produce bit-identical
// results on all five registry engines, (a) planned fresh with caching
// disabled, (b) on a cold shared cache, and (c) on a warm shared cache —
// so neither plan sharing nor cache state can change an answer.
func TestPlanCacheDifferentialAllWorkloads(t *testing.T) {
	ssbDB := datagen.SSB(datagen.SSBOptions{ScaleFactor: 0.0003})
	airDB := datagen.Airtraffic(datagen.AirtrafficOptions{Flights: 2000})
	opts := engine.ExecOptions{Timeout: 2 * time.Minute}
	workloads := []struct {
		name    string
		db      *engine.Database
		queries []workload.Query
	}{
		{"tpch", tpchDB, workload.TPCH()},
		{"ssb", ssbDB, workload.SSB()},
		{"airtraffic", airDB, workload.Airtraffic()},
	}

	cached := engine.NewRegistry() // shares one plan cache across engines
	fresh := engine.NewRegistry()
	for _, e := range fresh.Engines() {
		e.(engine.PlanCached).SetPlanCache(nil) // re-plan on every execution
	}

	for _, wl := range workloads {
		for _, q := range wl.queries {
			q := q
			t.Run(wl.name+"/"+q.ID, func(t *testing.T) {
				baseline := ""
				for _, key := range cached.Keys() {
					uncached, err := fresh.Get(key).Execute(wl.db, q.SQL, opts)
					if err != nil {
						t.Fatalf("%s uncached: %v", key, err)
					}
					cold, err := cached.Get(key).Execute(wl.db, q.SQL, opts)
					if err != nil {
						t.Fatalf("%s cold cache: %v", key, err)
					}
					warm, err := cached.Get(key).Execute(wl.db, q.SQL, opts)
					if err != nil {
						t.Fatalf("%s warm cache: %v", key, err)
					}
					fp := uncached.Fingerprint()
					if cold.Fingerprint() != fp || warm.Fingerprint() != fp {
						t.Fatalf("%s: cached and uncached executions disagree on %s", key, q.ID)
					}
					if baseline == "" {
						baseline = fp
						continue
					}
					if fp != baseline {
						t.Errorf("%s disagrees with the first engine on %s", key, q.ID)
					}
				}
			})
		}
	}
}

// TestPlanCacheEliminatesFrontendWork locks in the tentpole's point: after
// the first execution of a query, repetitions (on any engine sharing the
// cache) do zero parsing and analysis — every further lookup is a hit.
func TestPlanCacheEliminatesFrontendWork(t *testing.T) {
	reg := engine.NewRegistry()
	q1, _ := workload.TPCHQuery("Q1")
	opts := engine.ExecOptions{Timeout: time.Minute}
	const reps = 4
	for _, key := range reg.Keys() {
		for i := 0; i < reps; i++ {
			if _, err := reg.Get(key).Execute(tpchDB, q1.SQL, opts); err != nil {
				t.Fatalf("%s: %v", key, err)
			}
		}
	}
	hits, misses := reg.PlanCache().Stats()
	if misses != 1 {
		t.Errorf("plan built %d times for one query, want 1", misses)
	}
	// 6 engines x 4 repetitions share one plan; all but the first lookup hit.
	if want := uint64(len(reg.Keys())*reps - 1); hits != want {
		t.Errorf("plan cache hits = %d, want %d", hits, want)
	}

	// Whitespace-morphed SQL collapses onto the same normalized key.
	if _, err := reg.Get(reg.Keys()[0]).Execute(tpchDB, "  "+q1.SQL+"\n\t;", opts); err != nil {
		t.Fatal(err)
	}
	if _, misses = reg.PlanCache().Stats(); misses != 1 {
		t.Errorf("normalized rewrite re-planned (misses = %d)", misses)
	}
}

// TestPlanCacheInvalidationOnMutation mutates a table after the plan and
// typed-column caches are warm: every engine (including vektor's typed
// import) must see the new data, not a stale cache entry.
func TestPlanCacheInvalidationOnMutation(t *testing.T) {
	db := engine.NewDatabase("mut")
	tbl := engine.NewTable("t",
		engine.Column{Name: "id", Type: engine.TypeInt},
		engine.Column{Name: "v", Type: engine.TypeInt},
	)
	for i := 1; i <= 4; i++ {
		tbl.MustAppendRow(engine.NewInt(int64(i)), engine.NewInt(int64(10*i)))
	}
	db.AddTable(tbl)

	reg := engine.NewRegistry()
	const sql = "SELECT sum(v) AS s FROM t"
	opts := engine.ExecOptions{Timeout: time.Minute}

	sum := func(key string) int64 {
		t.Helper()
		res, err := reg.Get(key).Execute(db, sql, opts)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		return res.Rows[0][0].Int()
	}

	for _, key := range reg.Keys() {
		if got := sum(key); got != 100 {
			t.Fatalf("%s: warm-up sum = %d, want 100", key, got)
		}
	}

	// In-place update: same row count, so only the data version betrays it.
	if err := tbl.SetValue(0, 1, engine.NewInt(1010)); err != nil {
		t.Fatal(err)
	}
	for _, key := range reg.Keys() {
		if got := sum(key); got != 1100 {
			t.Errorf("%s: sum after SetValue = %d, want 1100 (stale cache?)", key, got)
		}
	}

	// Append: grows the table.
	tbl.MustAppendRow(engine.NewInt(5), engine.NewInt(900))
	for _, key := range reg.Keys() {
		if got := sum(key); got != 2000 {
			t.Errorf("%s: sum after append = %d, want 2000 (stale cache?)", key, got)
		}
	}

	// Reload: replacing the table must bump the database version too.
	fresh := engine.NewTable("t",
		engine.Column{Name: "id", Type: engine.TypeInt},
		engine.Column{Name: "v", Type: engine.TypeInt},
	)
	fresh.MustAppendRow(engine.NewInt(1), engine.NewInt(7))
	before := db.Version()
	db.AddTable(fresh)
	if db.Version() <= before {
		t.Fatalf("database version did not advance on table reload")
	}
	for _, key := range reg.Keys() {
		if got := sum(key); got != 7 {
			t.Errorf("%s: sum after reload = %d, want 7 (stale cache?)", key, got)
		}
	}
}

// TestPlanCacheConcurrentExecutions hammers one shared plan cache from many
// goroutines across all six engines and a mix of queries; run under
// -race in CI, it is the in-process half of the concurrency satellite (the
// scheduler-level half lives in internal/core).
func TestPlanCacheConcurrentExecutions(t *testing.T) {
	reg := engine.NewRegistry()
	queries := []string{}
	for _, id := range []string{"Q1", "Q3", "Q6", "Q12", "Q14", "Q19"} {
		q, err := workload.TPCHQuery(id)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q.SQL)
	}
	opts := engine.ExecOptions{Timeout: time.Minute}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			keys := reg.Keys()
			for i := 0; i < 6; i++ {
				key := keys[(w+i)%len(keys)]
				sql := queries[(w*3+i)%len(queries)]
				if _, err := reg.Get(key).Execute(tpchDB, sql, opts); err != nil {
					errs <- fmt.Errorf("%s: %w", key, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hits, misses := reg.PlanCache().Stats()
	if hits == 0 {
		t.Error("concurrent executions never hit the shared plan cache")
	}
	if misses == 0 {
		t.Error("plan cache reported zero misses for a cold start")
	}
}

// TestVektorTypedCacheInvalidation pins the typed-column import cache to the
// table data version: an in-place mutation that keeps the row count constant
// must still invalidate the typed vectors (the pre-version cache keyed on
// row count would have served stale data here).
func TestVektorTypedCacheInvalidation(t *testing.T) {
	db := engine.NewDatabase("typed")
	tbl := engine.NewTable("m", engine.Column{Name: "x", Type: engine.TypeInt})
	tbl.MustAppendRow(engine.NewInt(1))
	tbl.MustAppendRow(engine.NewInt(2))
	db.AddTable(tbl)

	vek := engine.NewVektorEngine()
	opts := engine.ExecOptions{Timeout: time.Minute}
	res, err := vek.Execute(db, "SELECT sum(x) AS s FROM m", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 3 {
		t.Fatalf("warm-up sum = %d, want 3", got)
	}
	if err := tbl.SetValue(1, 0, engine.NewInt(40)); err != nil {
		t.Fatal(err)
	}
	res, err = vek.Execute(db, "SELECT sum(x) AS s FROM m", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 41 {
		t.Errorf("sum after in-place mutation = %d, want 41 (stale typed columns)", got)
	}
}

// TestPlanCacheSharedNormalization double-checks the scheduler contract: the
// plan cache keys on the same normalization the sched result cache uses.
func TestPlanCacheSharedNormalization(t *testing.T) {
	a := plan.Normalize("SELECT  x\nFROM t;")
	b := plan.Normalize("SELECT x FROM t")
	if a != b {
		t.Errorf("Normalize mismatch: %q vs %q", a, b)
	}
	if plan.Normalize("SELECT ' a  b '") != "SELECT ' a  b '" {
		t.Error("Normalize touched a string literal")
	}
}
