// Quickstart: derive a query-space grammar from a baseline query, grow a
// query pool with the alter/expand/prune morphing strategies, measure every
// variant on the two built-in engines and print the discriminative queries
// plus the analytics the sqalpel platform visualises.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"sqalpel/internal/core"
	"sqalpel/internal/datagen"
	"sqalpel/internal/engine"
	"sqalpel/internal/workload"
)

func main() {
	// 1. A baseline query taken from the application: the Figure 1 example
	//    over the TPC-H nation table.
	baseline := workload.NationBaselineQuery
	fmt.Println("baseline query:")
	fmt.Println("  " + baseline)

	// 2. Derive the sqalpel grammar and inspect the query space.
	project, err := core.NewProject("quickstart", baseline, core.ProjectOptions{Runs: 3})
	if err != nil {
		log.Fatal(err)
	}
	space, err := project.Space()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderived grammar (%d lexical tags, %d templates, %d concrete queries):\n\n%s\n",
		space.Tags, space.Templates, space.Space, project.GrammarText())

	// 3. Register two target systems: the column store and the row store,
	//    both over the same generated TPC-H instance.
	db := datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.01})
	project.AddEngineTarget("", engine.NewColEngine(), db)
	project.AddEngineTarget("", engine.NewRowEngine(), db)

	// 4. Grow the query pool and run the guided discriminative search.
	if err := project.SeedPool(8); err != nil {
		log.Fatal(err)
	}
	project.GrowPool(10)
	if err := project.Run(2); err != nil {
		log.Fatal(err)
	}
	fmt.Println(project.Summary())

	// 5. Report the discriminative queries in both directions.
	for _, pair := range [][2]string{
		{"columba-1.0", "tuplestore-1.0"},
		{"tuplestore-1.0", "columba-1.0"},
	} {
		findings, err := project.Discriminative(pair[0], pair[1], 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nqueries relatively better on %s (vs %s):\n", pair[0], pair[1])
		if len(findings) == 0 {
			fmt.Println("  none found")
		}
		for _, f := range findings {
			fmt.Printf("  %.2fx  #%d [%s]  %s\n", f.Ratio, f.Outcome.Entry.ID, f.Outcome.Entry.Strategy, f.Outcome.Entry.SQL)
		}
	}

	// 6. Export the raw results the way the platform does.
	fmt.Println("\nCSV export of all measurements:")
	if err := project.ExportCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
