package vexec

import (
	"fmt"
	"strings"
	"time"

	"sqalpel/internal/sqlparser"
	"sqalpel/internal/trace"
)

// operator is a pull-based batch producer: next returns nil at end of
// stream. schema describes the output columns without pulling data, so the
// planner can resolve references and detect join edges up front.
type operator interface {
	next() (*Batch, error)
	schema() []colMeta
}

// --- scan --------------------------------------------------------------------

// scanOp emits fixed-size windows over a typed base table. The windows are
// zero-copy slices of the table's vectors. With zone predicates attached
// (pushed-down conjuncts over a block-aligned batch size) each window is
// split into its maximal runs of satisfiable blocks and the rest is never
// read; the same run segmentation is reproduced by the morsel-parallel
// path, so stats and traces stay identical at every worker count.
type scanOp struct {
	ex     *executor
	table  *Table
	alias  string
	meta   []colMeta
	pos    int
	zones  []ZonePred
	runs   [][2]int // kept runs of the current window, [lo, hi) row ranges
	runIdx int
	span   *trace.Span // nil when tracing is off

	// reuse arms the single-frame fast path: the scan overwrites one Batch
	// (and its Vector structs) in place instead of allocating per window.
	// Only enabled for pipelines that fully consume each batch before the
	// next pull and retain nothing but boxed scalars — the serial
	// aggregation loop.
	reuse     bool
	frame     Batch
	frameCols []Vector
}

func newScanOp(ex *executor, t *Table, alias string) *scanOp {
	if alias == "" {
		alias = t.Name
	}
	meta := make([]colMeta, len(t.Cols))
	for i, c := range t.Cols {
		meta[i] = colMeta{table: strings.ToLower(alias), name: strings.ToLower(c.Name)}
	}
	return &scanOp{ex: ex, table: t, alias: alias, meta: meta}
}

func (s *scanOp) schema() []colMeta { return s.meta }

// keptRuns appends the maximal runs of zone-satisfiable blocks within
// window [lo, hi) — block-aligned at lo by construction — and returns the
// number of skipped blocks. Without zone predicates the window is one run.
func keptRuns(runs [][2]int, t *Table, zones []ZonePred, lo, hi int) ([][2]int, int64) {
	if len(zones) == 0 {
		return append(runs, [2]int{lo, hi}), 0
	}
	var skipped int64
	runStart := -1
	for b := lo / ZoneBlockRows; b*ZoneBlockRows < hi; b++ {
		blo := b * ZoneBlockRows
		if t.BlockMayMatch(zones, b) {
			if runStart < 0 {
				runStart = blo
			}
			continue
		}
		skipped++
		if runStart >= 0 {
			runs = append(runs, [2]int{runStart, blo})
			runStart = -1
		}
	}
	if runStart >= 0 {
		runs = append(runs, [2]int{runStart, hi})
	}
	return runs, skipped
}

func (s *scanOp) next() (*Batch, error) {
	for {
		if s.runIdx >= len(s.runs) {
			if s.pos >= s.table.NumRows() {
				return nil, nil
			}
			if err := s.ex.checkDeadline(); err != nil {
				return nil, err
			}
			hi := s.pos + s.ex.opts.BatchSize
			if hi > s.table.NumRows() {
				hi = s.table.NumRows()
			}
			var skipped int64
			s.runs, skipped = keptRuns(s.runs[:0], s.table, s.zones, s.pos, hi)
			s.runIdx = 0
			s.pos = hi
			if skipped > 0 {
				s.ex.stats.BlocksSkipped += skipped
				if s.span != nil {
					s.span.BlocksSkipped += skipped
				}
			}
			continue
		}
		r := s.runs[s.runIdx]
		s.runIdx++
		var t0 time.Time
		if s.span != nil {
			t0 = time.Now()
		}
		lo, hi := r[0], r[1]
		var b *Batch
		if s.reuse {
			b = s.frameBatch(lo, hi)
		} else {
			b = &Batch{n: hi - lo, meta: s.meta}
			b.cols = make([]*Vector, len(s.table.Cols))
			for i, c := range s.table.Cols {
				b.cols[i] = c.Vec.Slice(lo, hi)
			}
		}
		s.ex.stats.RowsScanned += int64(hi - lo)
		s.ex.stats.Batches++
		if s.span != nil {
			s.span.WallNS += time.Since(t0).Nanoseconds()
			s.span.Rows += int64(hi - lo)
			s.span.Batches++
		}
		return b, nil
	}
}

// frameBatch overwrites the scan's reusable frame with window [lo, hi).
// The previous batch's selection capacity is parked in selBuf so the first
// filter pass stops allocating too.
func (s *scanOp) frameBatch(lo, hi int) *Batch {
	b := &s.frame
	if s.frameCols == nil {
		s.frameCols = make([]Vector, len(s.table.Cols))
		b.cols = make([]*Vector, len(s.table.Cols))
		for i := range s.frameCols {
			b.cols[i] = &s.frameCols[i]
		}
		b.meta = s.meta
	}
	if b.sel != nil {
		b.selBuf = b.sel[:0]
		b.sel = nil
	}
	b.n = hi - lo
	for i, c := range s.table.Cols {
		sliceInto(&s.frameCols[i], c.Vec, lo, hi)
	}
	return b
}

// markScanReuse arms frame reuse on the scan under a chain of filters; the
// caller guarantees each batch is fully consumed before the next pull.
func markScanReuse(op operator) {
	for {
		switch o := op.(type) {
		case *filterOp:
			op = o.child
		case *scanOp:
			o.reuse = true
			return
		default:
			return
		}
	}
}

// dualOp emits a single one-row, zero-column batch: the FROM-less SELECT.
type dualOp struct {
	done bool
}

func (d *dualOp) schema() []colMeta { return nil }

func (d *dualOp) next() (*Batch, error) {
	if d.done {
		return nil, nil
	}
	d.done = true
	return &Batch{n: 1}, nil
}

// --- filter ------------------------------------------------------------------

// filterOp applies conjuncts one pass at a time, shrinking the batch's
// selection vector; payload columns are never copied. Batches filtered down
// to zero rows are skipped.
type filterOp struct {
	ex        *executor
	child     operator
	conjuncts []sqlparser.Expr
	span      *trace.Span // nil when tracing is off
}

func (f *filterOp) schema() []colMeta { return f.child.schema() }

func (f *filterOp) next() (*Batch, error) {
	for {
		b, err := f.child.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		var t0 time.Time
		if f.span != nil {
			t0 = time.Now()
		}
		if err := applyConjuncts(f.ex, b, f.conjuncts, &f.ex.stats); err != nil {
			return nil, err
		}
		if f.span != nil {
			// Every batch that enters the filter is recorded, surviving rows
			// only — the same accounting the morsel-parallel path's span
			// deltas reproduce, so traces match at every worker count.
			f.span.WallNS += time.Since(t0).Nanoseconds()
			f.span.Rows += int64(b.Len())
			f.span.Batches++
		}
		if b.Len() > 0 {
			return b, nil
		}
	}
}

// applyConjuncts filters a batch one conjunct pass at a time, shrinking its
// selection vector. The first pass allocates the batch's selection scratch;
// later passes compact it in place (the write index never overtakes the
// read index), so a k-conjunct filter costs one allocation, not k. Stats
// are accumulated into st so morsel workers can keep thread-local counters.
func applyConjuncts(ex *executor, b *Batch, conjuncts []sqlparser.Expr, st *Stats) error {
	if len(conjuncts) == 0 {
		return nil
	}
	ctx := &evalCtx{ex: ex, batch: b}
	for _, c := range conjuncts {
		st.FilterPasses++
		pred, err := ctx.eval(c)
		if err != nil {
			// Pushed-down conjuncts run over rows the interpreter's
			// post-join filter never evaluates; runtime errors here must
			// defer to the interpreter.
			return deferToFallback(err)
		}
		// The empty selection must stay non-nil: a nil selection vector
		// means "all rows live".
		if b.sel == nil {
			sel := b.selBuf // recycled capacity from a reused frame, if any
			if sel == nil {
				sel = make([]int, 0, b.n)
			} else {
				sel = sel[:0]
				b.selBuf = nil
			}
			for i := 0; i < b.n; i++ {
				if !pred.IsNull(i) && truthy(pred, i) {
					sel = append(sel, i)
				}
			}
			b.sel = sel
		} else {
			sel := b.sel[:0]
			for j, ri := range b.sel {
				if !pred.IsNull(j) && truthy(pred, j) {
					sel = append(sel, ri)
				}
			}
			b.sel = sel
		}
		if len(b.sel) == 0 {
			break
		}
	}
	return nil
}

// --- materialization ---------------------------------------------------------

// matOp re-emits a dense batch in fixed-size windows, bridging materialized
// intermediates (join results) back into the batch pipeline.
type matOp struct {
	ex  *executor
	b   *Batch
	pos int
}

func (m *matOp) schema() []colMeta { return m.b.meta }

func (m *matOp) next() (*Batch, error) {
	if m.pos >= m.b.n {
		return nil, nil
	}
	if err := m.ex.checkDeadline(); err != nil {
		return nil, err
	}
	hi := m.pos + m.ex.opts.BatchSize
	if hi > m.b.n {
		hi = m.b.n
	}
	out := &Batch{n: hi - m.pos, meta: m.b.meta}
	out.cols = make([]*Vector, len(m.b.cols))
	for i, c := range m.b.cols {
		out.cols[i] = c.Slice(m.pos, hi)
	}
	m.ex.stats.Batches++
	m.pos = hi
	return out, nil
}

// materialize drains a pipeline into one dense batch. An empty stream yields
// a zero-row batch with the pipeline's schema.
func materialize(op operator) (*Batch, error) {
	var batches []*Batch
	for {
		b, err := op.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		batches = append(batches, b)
	}
	if len(batches) == 0 {
		meta := op.schema()
		out := &Batch{n: 0, meta: meta}
		out.cols = make([]*Vector, len(meta))
		for i := range out.cols {
			out.cols[i] = NewNullVector(0)
		}
		return out, nil
	}
	if len(batches) == 1 {
		return batches[0].compact(), nil
	}
	return concatBatches(batches), nil
}

// --- joins -------------------------------------------------------------------

// keyVectors evaluates the key expressions over a dense batch into one
// vector per key; the hash table consumes the unboxed payloads directly.
func (ex *executor) keyVectors(b *Batch, keys []sqlparser.Expr) ([]*Vector, error) {
	ctx := &evalCtx{ex: ex, batch: b}
	vecs := make([]*Vector, len(keys))
	for i, k := range keys {
		v, err := ctx.eval(k)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	return vecs, nil
}

// hashJoin joins two dense batches on the given key expression lists,
// mirroring the interpreter's join exactly: build on the smaller side, probe
// in input order, matches in build insertion order.
func (ex *executor) hashJoin(left, right *Batch, leftKeys, rightKeys []sqlparser.Expr) (*Batch, error) {
	ex.stats.HashJoins++
	build, probe := right, left
	buildKeys, probeKeys := rightKeys, leftKeys
	swapped := false
	if left.Len() < right.Len() {
		build, probe = left, right
		buildKeys, probeKeys = leftKeys, rightKeys
		swapped = true
	}
	bVecs, err := ex.keyVectors(build, buildKeys)
	if err != nil {
		return nil, err
	}
	pVecs, err := ex.keyVectors(probe, probeKeys)
	if err != nil {
		return nil, err
	}
	var probeIdx, buildIdx []int
	if ex.parallelism() > 1 && probe.Len() >= 2*ex.opts.BatchSize {
		probeIdx, buildIdx, err = ex.parallelJoinPairs(build.Len(), probe.Len(), bVecs, pVecs)
	} else {
		probeIdx, buildIdx, err = ex.joinPairs(build.Len(), probe.Len(), bVecs, pVecs)
	}
	if err != nil {
		return nil, err
	}
	if err := ex.checkDeadline(); err != nil {
		return nil, err
	}
	leftIdx, rightIdx := probeIdx, buildIdx
	if swapped {
		leftIdx, rightIdx = buildIdx, probeIdx
	}
	out := left.gatherRows(leftIdx)
	rightPart := right.gatherRows(rightIdx)
	out.cols = append(out.cols, rightPart.cols...)
	out.meta = append(append([]colMeta(nil), left.meta...), right.meta...)
	return out, nil
}

// joinLists are the per-key build-row chains of a join table: head/tail
// index the first and last build row of each group, next links build rows
// of one key in insertion order — the order the old per-key slices kept.
type joinLists struct {
	head, tail, next []int32
}

func newJoinLists(nBuild int) joinLists {
	next := make([]int32, nBuild)
	for i := range next {
		next[i] = -1
	}
	return joinLists{next: next}
}

// insert appends build row i to group g (isNew reports first sight).
func (jl *joinLists) insert(g int, i int32, isNew bool) {
	if isNew {
		jl.head = append(jl.head, i)
		jl.tail = append(jl.tail, i)
		return
	}
	jl.next[jl.tail[g]] = i
	jl.tail[g] = i
}

// nullKeyRow reports a NULL among the join-key slots of row i. Equality
// with a NULL operand is UNKNOWN under the ternary contract
// (internal/sqlsem), so such rows can never satisfy an equi-join — they
// must be skipped on both sides, never bucketed together. Grouping and
// DISTINCT deliberately keep the opposite behaviour (NULLs collapse into
// one group); only joins use this guard.
func nullKeyRow(vecs []*Vector, i int) bool {
	for _, v := range vecs {
		if v.IsNull(i) {
			return true
		}
	}
	return false
}

// joinPairs builds the hash table over the build side and probes it in
// probe-row order, emitting the matching (probe, build) row pairs.
func (ex *executor) joinPairs(nBuild, nProbe int, bVecs, pVecs []*Vector) (probeIdx, buildIdx []int, err error) {
	ht := newHashTable(nBuild)
	kc := ht.prepare(bVecs, pVecs)
	jl := newJoinLists(nBuild)
	var buildRows, probeRows int64
	for i := 0; i < nBuild; i++ {
		if nullKeyRow(bVecs, i) {
			continue
		}
		buildRows++
		g, isNew := kc.getOrInsert(ht, bVecs, i)
		jl.insert(g, int32(i), isNew)
	}
	for i := 0; i < nProbe; i++ {
		if nullKeyRow(pVecs, i) {
			continue
		}
		probeRows++
		g := kc.lookup(ht, pVecs, i)
		if g < 0 {
			continue
		}
		for r := jl.head[g]; r >= 0; r = jl.next[r] {
			probeIdx = append(probeIdx, i)
			buildIdx = append(buildIdx, int(r))
			if len(probeIdx) > ex.opts.MaxJoinRows {
				return nil, nil, fmt.Errorf("join result exceeds %d rows", ex.opts.MaxJoinRows)
			}
		}
	}
	ex.stats.JoinBuildRows += buildRows
	ex.stats.JoinProbeRows += probeRows
	return probeIdx, buildIdx, nil
}

// crossJoin builds the cartesian product of two dense batches, guarded by
// the join-size limit.
func (ex *executor) crossJoin(left, right *Batch) (*Batch, error) {
	ex.stats.LoopJoins++
	nl, nr := left.Len(), right.Len()
	// Divide before multiplying: nl*nr can wrap around before the guard
	// comparison on pathological inputs.
	if nl > 0 && nr > 0 && nl > ex.opts.MaxJoinRows/nr {
		return nil, fmt.Errorf("cross product of %d x %d rows exceeds the %d row limit",
			nl, nr, ex.opts.MaxJoinRows)
	}
	total := nl * nr
	leftIdx := make([]int, 0, total)
	rightIdx := make([]int, 0, total)
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, j)
		}
	}
	out := left.gatherRows(leftIdx)
	rightPart := right.gatherRows(rightIdx)
	out.cols = append(out.cols, rightPart.cols...)
	out.meta = append(append([]colMeta(nil), left.meta...), right.meta...)
	return out, nil
}

// pairBatch gathers candidate (left, right) row pairs into one combined
// dense batch — left columns then right columns — the evaluation context of
// per-pair join and correlation predicates. The index slices are physical
// row indexes.
func pairBatch(left *Batch, leftIdx []int, right *Batch, rightIdx []int) *Batch {
	out := left.gatherRows(leftIdx)
	rightPart := right.gatherRows(rightIdx)
	out.cols = append(out.cols, rightPart.cols...)
	out.meta = append(append([]colMeta(nil), left.meta...), right.meta...)
	return out
}

// leftJoin implements LEFT [OUTER] JOIN over dense batches, mirroring the
// interpreter's algorithm exactly: hash the right side by the equi keys (a
// single bucket when keyless, NULL-key build rows skipped), probe the left
// rows in order, apply the residual ON conjuncts per candidate pair with
// two-valued truth, and null-extend the right columns of unmatched left
// rows.
func (ex *executor) leftJoin(left, right *Batch, leftKeys, rightKeys, residual []sqlparser.Expr) (*Batch, error) {
	nl, nr := left.Len(), right.Len()
	var rVecs, lVecs []*Vector
	var err error
	if len(rightKeys) > 0 {
		if rVecs, err = ex.keyVectors(right, rightKeys); err != nil {
			return nil, err
		}
		if lVecs, err = ex.keyVectors(left, leftKeys); err != nil {
			return nil, err
		}
	}
	buckets := map[string][]int32{}
	var buf []byte
	var buildRows int64
	for i := 0; i < nr; i++ {
		key := ""
		if rVecs != nil {
			if nullKeyRow(rVecs, i) {
				// NULL = anything is UNKNOWN: the row cannot match.
				continue
			}
			buf = encodeRowKey(buf[:0], rVecs, i)
			key = string(buf)
		}
		buildRows++
		buckets[key] = append(buckets[key], int32(i))
	}
	ex.stats.HashJoins++
	ex.stats.JoinBuildRows += buildRows
	ex.stats.JoinProbeRows += int64(nl)

	// Candidate pairs in probe order (bucket order is right-row order). A
	// NULL left key never matches; the row survives null-extended below.
	var candL, candR []int
	off := make([]int, nl+1)
	for i := 0; i < nl; i++ {
		keyNull := false
		key := ""
		if lVecs != nil {
			if nullKeyRow(lVecs, i) {
				keyNull = true
			} else {
				buf = encodeRowKey(buf[:0], lVecs, i)
				key = string(buf)
			}
		}
		if !keyNull {
			for _, ri := range buckets[key] {
				candL = append(candL, i)
				candR = append(candR, int(ri))
			}
		}
		off[i+1] = len(candL)
	}

	// Residual ON conjuncts filter the candidate pairs with two-valued
	// truth, like the interpreter's per-pair check. Evaluation errors defer
	// to the interpreter so it reports them in its own order.
	pass := make([]bool, len(candL))
	for i := range pass {
		pass[i] = true
	}
	if len(residual) > 0 && len(candL) > 0 {
		ctx := &evalCtx{ex: ex, batch: pairBatch(left, candL, right, candR)}
		for _, c := range residual {
			v, err := ctx.eval(c)
			if err != nil {
				return nil, deferToFallback(err)
			}
			for k := range pass {
				if pass[k] && (v.IsNull(k) || !truthy(v, k)) {
					pass[k] = false
				}
			}
		}
	}

	var outL, outR []int
	for i := 0; i < nl; i++ {
		matched := false
		for k := off[i]; k < off[i+1]; k++ {
			if pass[k] {
				matched = true
				outL = append(outL, candL[k])
				outR = append(outR, candR[k])
			}
		}
		if !matched {
			outL = append(outL, i)
			outR = append(outR, -1)
		}
	}
	out := left.gatherRows(outL)
	rightPart := right.gatherRowsNullable(outR)
	out.cols = append(out.cols, rightPart.cols...)
	out.meta = append(append([]colMeta(nil), left.meta...), right.meta...)
	return out, nil
}

// applyFilterBatch filters a dense batch with the conjuncts (one selection
// pass per conjunct over a single reused selection buffer) and compacts the
// result.
func (ex *executor) applyFilterBatch(b *Batch, conjuncts []sqlparser.Expr) (*Batch, error) {
	if err := applyConjuncts(ex, b, conjuncts, &ex.stats); err != nil {
		return nil, err
	}
	return b.compact(), nil
}

// --- hash aggregation --------------------------------------------------------

// aggSpec is one distinct aggregate call of the statement.
type aggSpec struct {
	call *sqlparser.FuncCall
	key  string // canonical SQL text
}

// aggAcc accumulates one aggregate for one group, mirroring the
// interpreter's fold (distinct sets, int-preserving sums, scalar min/max).
// The distinct set is a byte-keyed hash table with a reusable encoding
// buffer: seen values cost no allocation at all, new ones only grow the
// table's arena.
type aggAcc struct {
	count       int64
	sumI        int64
	sumF        float64
	sumIsInt    bool
	minV        scalar
	maxV        scalar
	distinct    *hashTable
	distinctBuf []byte
}

func (a *aggAcc) fold(val scalar, distinct bool) {
	if val.isNull() {
		return
	}
	if distinct {
		a.distinctBuf = appendScalarKey(a.distinctBuf[:0], val)
		if _, isNew := a.distinct.getOrInsertBytes(a.distinctBuf); !isNew {
			return
		}
	}
	a.count++
	if val.kind == KindInt {
		a.sumI += val.i
	} else {
		a.sumIsInt = false
	}
	a.sumF += val.floatVal()
	if a.minV.kind == KindNull || compareScalars(val, a.minV) < 0 {
		a.minV = val
	}
	if a.maxV.kind == KindNull || compareScalars(val, a.maxV) > 0 {
		a.maxV = val
	}
}

func (a *aggAcc) finalize(name string, star bool, groupRows int64) (scalar, error) {
	switch name {
	case "count":
		if star {
			return scalar{kind: KindInt, i: groupRows}, nil
		}
		return scalar{kind: KindInt, i: a.count}, nil
	case "sum":
		if a.count == 0 {
			return nullScalar, nil
		}
		if a.sumIsInt {
			return scalar{kind: KindInt, i: a.sumI}, nil
		}
		return scalar{kind: KindFloat, f: a.sumF}, nil
	case "avg":
		if a.count == 0 {
			return nullScalar, nil
		}
		return scalar{kind: KindFloat, f: a.sumF / float64(a.count)}, nil
	case "min":
		if a.count == 0 {
			return nullScalar, nil
		}
		return a.minV, nil
	case "max":
		if a.count == 0 {
			return nullScalar, nil
		}
		return a.maxV, nil
	default:
		return scalar{}, fmt.Errorf("unknown aggregate %q", name)
	}
}

// aggState is the running state of one group.
type aggState struct {
	rows   int64
	accs   []aggAcc
	firsts []scalar
}

// aggResult is the output of hash aggregation: one logical row per group.
type aggResult struct {
	n    int
	aggs map[string]*Vector // canonical aggregate SQL -> per-group values
	refs map[string]*Vector // column reference key -> first-row values
}

// collectAggregates gathers the distinct aggregate calls of the statement's
// projection, HAVING and ORDER BY.
func collectAggregates(stmt *sqlparser.SelectStatement) ([]aggSpec, error) {
	var specs []aggSpec
	seen := map[string]bool{}
	walk := func(e sqlparser.Expr) {
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			if f, ok := x.(*sqlparser.FuncCall); ok && f.IsAggregate() {
				key := f.SQL()
				if !seen[key] {
					seen[key] = true
					specs = append(specs, aggSpec{call: f, key: key})
				}
				return false
			}
			return true
		})
	}
	for _, p := range stmt.Projection {
		walk(p.Expr)
	}
	walk(stmt.Having)
	for _, o := range stmt.OrderBy {
		walk(o.Expr)
	}
	for _, s := range specs {
		name := strings.ToLower(s.call.Name)
		if s.call.Star && name != "count" {
			return nil, fmt.Errorf("%s(*) is not valid", name)
		}
		if !s.call.Star && len(s.call.Args) != 1 {
			return nil, fmt.Errorf("aggregate %s expects exactly 1 argument", name)
		}
	}
	return specs, nil
}

// collectCarriedRefs gathers the column references of projection, HAVING and
// ORDER BY that sit outside aggregate arguments; their first-row values per
// group reproduce the interpreter's "plain columns resolve against the first
// row of the group" behaviour. ORDER BY items that resolve as projection
// aliases sort by the output column instead and are not carried.
func collectCarriedRefs(stmt *sqlparser.SelectStatement) []*sqlparser.ColumnRef {
	var refs []*sqlparser.ColumnRef
	seen := map[string]bool{}
	walk := func(e sqlparser.Expr) {
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			if f, ok := x.(*sqlparser.FuncCall); ok && f.IsAggregate() {
				return false
			}
			if c, ok := x.(*sqlparser.ColumnRef); ok {
				key := refKey(c.Table, c.Column)
				if !seen[key] {
					seen[key] = true
					refs = append(refs, c)
				}
			}
			return true
		})
	}
	itemNames := map[string]bool{}
	for _, p := range stmt.Projection {
		if p.Star {
			continue
		}
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = p.Expr.SQL()
			}
		}
		itemNames[strings.ToLower(name)] = true
	}
	for _, p := range stmt.Projection {
		walk(p.Expr)
	}
	walk(stmt.Having)
	for _, o := range stmt.OrderBy {
		if cr, ok := o.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" && itemNames[strings.ToLower(cr.Column)] {
			continue
		}
		walk(o.Expr)
	}
	return refs
}

// newAggState allocates the accumulators of one group.
func newAggState(specs []aggSpec, carried []*sqlparser.ColumnRef) *aggState {
	st := &aggState{accs: make([]aggAcc, len(specs)), firsts: make([]scalar, len(carried))}
	for i := range st.accs {
		st.accs[i].sumIsInt = true
		if specs[i].call.Distinct {
			st.accs[i].distinct = newByteKeyTable(8)
		}
	}
	return st
}

// aggBatchVectors evaluates the grouping keys, aggregate arguments and
// carried references over one batch.
func aggBatchVectors(ex *executor, b *Batch, stmt *sqlparser.SelectStatement, specs []aggSpec, carried []*sqlparser.ColumnRef) (keyVecs, argVecs, refVecs []*Vector, err error) {
	ctx := &evalCtx{ex: ex, batch: b}
	keyVecs = make([]*Vector, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		if keyVecs[i], err = ctx.eval(g); err != nil {
			return nil, nil, nil, err
		}
	}
	argVecs = make([]*Vector, len(specs))
	for i, s := range specs {
		if s.call.Star {
			continue
		}
		if argVecs[i], err = ctx.eval(s.call.Args[0]); err != nil {
			return nil, nil, nil, err
		}
	}
	refVecs = make([]*Vector, len(carried))
	for i, r := range carried {
		if refVecs[i], err = ctx.resolveColumn(r); err != nil {
			return nil, nil, nil, err
		}
	}
	return keyVecs, argVecs, refVecs, nil
}

// buildAggResult finalizes the per-group accumulators into the aggregate
// and carried-reference columns.
func buildAggResult(specs []aggSpec, carried []*sqlparser.ColumnRef, order []*aggState) (*aggResult, error) {
	res := &aggResult{n: len(order), aggs: map[string]*Vector{}, refs: map[string]*Vector{}}
	for ai, s := range specs {
		bld := newBuilder(len(order))
		name := strings.ToLower(s.call.Name)
		for _, st := range order {
			val, err := st.accs[ai].finalize(name, s.call.Star, st.rows)
			if err != nil {
				return nil, err
			}
			bld.append(val)
		}
		vec, err := bld.finalize()
		if err != nil {
			return nil, err
		}
		res.aggs[s.key] = vec
	}
	for ri, r := range carried {
		bld := newBuilder(len(order))
		for _, st := range order {
			bld.append(st.firsts[ri])
		}
		vec, err := bld.finalize()
		if err != nil {
			return nil, err
		}
		res.refs[refKey(r.Table, r.Column)] = vec
	}
	return res, nil
}

// hashAggregate drains the pipeline into per-group accumulators: the
// streaming pipeline breaker of grouped queries. Groups live in the typed
// hash table — dense ids in first-seen order index the order slice
// directly — so the per-row cost is one unboxed hash probe, not a string
// key build. With intra-query parallelism enabled and a morsel-splittable
// pipeline below, the work fans out across the morsel pool instead.
func (ex *executor) hashAggregate(child operator, stmt *sqlparser.SelectStatement) (*aggResult, error) {
	specs, err := collectAggregates(stmt)
	if err != nil {
		return nil, err
	}
	carried := collectCarriedRefs(stmt)

	if ex.parallelism() > 1 {
		// Single-morsel inputs skip the 3-phase machinery: its thread-local
		// tables and remap passes only pay off with morsels to fan out.
		if src, layers, ok := splitPipeline(child); ok && src.rows > ex.opts.BatchSize {
			return ex.parallelHashAggregate(src, layers, stmt, specs, carried)
		}
	}

	// The serial drain fully consumes each batch before pulling the next
	// and retains only boxed scalars, so the scan can recycle one frame.
	markScanReuse(child)

	ht := newHashTable(64)
	var order []*aggState
	if len(stmt.GroupBy) == 0 {
		// Aggregates without GROUP BY form one global group even over an
		// empty input.
		order = append(order, newAggState(specs, carried))
	}

	for {
		b, err := child.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if err := ex.checkDeadline(); err != nil {
			return nil, err
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		ex.stats.AggRows += int64(n)
		keyVecs, argVecs, refVecs, err := aggBatchVectors(ex, b, stmt, specs, carried)
		if err != nil {
			return nil, err
		}
		var kc keyCoder
		if len(stmt.GroupBy) > 0 {
			kc = ht.prepare(keyVecs)
		}
		for j := 0; j < n; j++ {
			var st *aggState
			if len(stmt.GroupBy) == 0 {
				st = order[0]
			} else {
				g, isNew := kc.getOrInsert(ht, keyVecs, j)
				if isNew {
					st = newAggState(specs, carried)
					order = append(order, st)
					for ri, rv := range refVecs {
						st.firsts[ri] = rv.At(j)
					}
				} else {
					st = order[g]
				}
			}
			if len(stmt.GroupBy) == 0 && st.rows == 0 {
				for ri, rv := range refVecs {
					st.firsts[ri] = rv.At(j)
				}
			}
			st.rows++
			for ai := range specs {
				if specs[ai].call.Star {
					continue
				}
				st.accs[ai].fold(argVecs[ai].At(j), specs[ai].call.Distinct)
			}
		}
	}
	ex.stats.Groups += int64(len(order))
	return buildAggResult(specs, carried, order)
}
