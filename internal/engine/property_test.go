package engine

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestPropertyEnginesAgreeOnRandomQueries is differential testing in the
// spirit of the paper's related work (RAGS, SQLsmith): random simple queries
// over the mini database must produce identical results on the row and the
// column engine. Any divergence is a correctness bug in one of the two
// execution models.
func TestPropertyEnginesAgreeOnRandomQueries(t *testing.T) {
	db := miniDB()
	row := NewRowEngine()
	col := NewColEngine()

	columns := []string{"n_nationkey", "n_name", "n_regionkey"}
	aggregates := []string{"count(*)", "min(n_nationkey)", "max(n_regionkey)", "sum(n_nationkey)", "avg(n_nationkey)"}
	comparisons := []string{"<", "<=", "=", ">=", ">", "<>"}

	build := func(projIdx, aggIdx, cmpIdx, threshold, limit uint8, useAgg, useFilter, useOrder, desc, distinct bool) string {
		proj := columns[int(projIdx)%len(columns)]
		if useAgg {
			proj = aggregates[int(aggIdx)%len(aggregates)]
		} else if distinct {
			proj = "DISTINCT " + proj
		}
		sql := "SELECT " + proj + " FROM nation"
		if useFilter {
			sql += fmt.Sprintf(" WHERE n_nationkey %s %d", comparisons[int(cmpIdx)%len(comparisons)], int(threshold)%10)
		}
		if useOrder && !useAgg {
			sql += " ORDER BY " + columns[int(projIdx)%len(columns)]
			if desc {
				sql += " DESC"
			}
		}
		if limit%4 == 0 && !useAgg {
			sql += fmt.Sprintf(" LIMIT %d", int(limit)%7+1)
		}
		return sql
	}

	f := func(projIdx, aggIdx, cmpIdx, threshold, limit uint8, useAgg, useFilter, useOrder, desc, distinct bool) bool {
		sql := build(projIdx, aggIdx, cmpIdx, threshold, limit, useAgg, useFilter, useOrder, desc, distinct)
		r1, err1 := row.Execute(db, sql, ExecOptions{})
		r2, err2 := col.Execute(db, sql, ExecOptions{})
		if (err1 == nil) != (err2 == nil) {
			t.Logf("divergent errors for %q: row=%v col=%v", sql, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if r1.Fingerprint() != r2.Fingerprint() {
			t.Logf("divergent results for %q", sql)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyJoinsAgree extends the differential check to two-table joins
// with grouping.
func TestPropertyJoinsAgree(t *testing.T) {
	db := miniDB()
	row := NewRowEngine()
	col := NewColEngine()
	f := func(threshold uint8, groupByRegion, countStar bool) bool {
		agg := "sum(o_total)"
		if countStar {
			agg = "count(*)"
		}
		group := "n_name"
		if groupByRegion {
			group = "n_regionkey"
		}
		sql := fmt.Sprintf(
			"SELECT %s, %s FROM nation, orders WHERE o_nationkey = n_nationkey AND o_total > %d GROUP BY %s ORDER BY %s",
			group, agg, int(threshold)%200, group, group)
		r1, err1 := row.Execute(db, sql, ExecOptions{})
		r2, err2 := col.Execute(db, sql, ExecOptions{})
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Fingerprint() == r2.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLimitNeverExceeds checks the LIMIT invariant on both engines
// for arbitrary limits.
func TestPropertyLimitNeverExceeds(t *testing.T) {
	db := miniDB()
	engines := []Engine{NewRowEngine(), NewColEngine()}
	f := func(limit uint8) bool {
		n := int(limit)%25 + 1
		sql := fmt.Sprintf("SELECT o_orderkey FROM orders LIMIT %d", n)
		for _, e := range engines {
			res, err := e.Execute(db, sql, ExecOptions{})
			if err != nil {
				return false
			}
			if res.NumRows() > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
