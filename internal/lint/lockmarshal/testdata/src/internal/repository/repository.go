// Package repository is the lockmarshal fixture: a miniature of the real
// store — write locks, a WAL writer, the blessed logApply seam, and a
// one-hop I/O helper — exercising every flag/exempt decision the analyzer
// makes.
package repository

import (
	"encoding/json"
	"os"
	"sync"
)

type walSink interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type walWriter struct{ sink walSink }

// append frames, writes and fsyncs one record: I/O by definition.
func (w *walWriter) append(rec []byte) error {
	if _, err := w.sink.Write(rec); err != nil {
		return err
	}
	return w.sink.Sync()
}

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	wal  *walWriter
	data map[string]int
}

// logApply is the blessed WAL seam: marshal+append+fsync under the data
// lock is the durability discipline itself (log order equals apply order).
//
//lint:iolocked WAL seam: append+fsync must happen under the same lock as the in-memory apply
func (s *store) logApply(op string, payload any) error {
	b, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	return s.wal.append(b)
}

// writeFileAtomic performs direct I/O, making it a one-hop I/O callee.
func writeFileAtomic(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// marshalUnderLock is the PR 5 race shape verbatim.
func (s *store) marshalUnderLock() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(s.data) // want `json.Marshal while write lock s.mu is held`
}

// helperUnderLock: the one-hop propagation catches local helpers too.
func (s *store) helperUnderLock(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeFileAtomic(path, nil) // want `writeFileAtomic while write lock s.mu is held`
}

// walAppendUnderLock: direct WAL writer use outside logApply is flagged.
func (s *store) walAppendUnderLock(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.append(rec) // want `s.wal.append while write lock s.mu is held`
}

// viaLogApply: the blessed seam is exempt at its call sites.
func (s *store) viaLogApply() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data["k"]++
	return s.logApply("inc", s.data)
}

// underReadLock is the PR 5 *fix*: marshalling under RLock admits
// concurrent readers and is explicitly allowed.
func (s *store) underReadLock() ([]byte, error) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return json.Marshal(s.data)
}

// afterUnlock: sequential Unlock releases; I/O after it is fine.
func (s *store) afterUnlock() ([]byte, error) {
	s.mu.Lock()
	snapshot := make(map[string]int, len(s.data))
	for k, v := range s.data {
		snapshot[k] = v
	}
	s.mu.Unlock()
	return json.Marshal(snapshot)
}

// checkpoint carries the justified suppression of the checkpoint seam.
func (s *store) checkpoint(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := json.Marshal(s.data) // want `json.Marshal while write lock s.mu is held`
	if err != nil {
		return err
	}
	//lint:iolocked checkpoint seam: the snapshot aliases live objects, so the write must finish under the lock
	return writeFileAtomic(path, b)
}
