// Package tpcsurvey reproduces Table 1 of the paper: the census of publicly
// available TPC benchmark results (number of published reports per benchmark
// and the systems they cover) that motivates sqalpel's public performance
// repository. The census itself is survey data taken from tpc.org as of the
// paper's writing; this package ships it as structured data together with
// the report generator that prints the table.
package tpcsurvey

import (
	"fmt"
	"strings"
)

// Entry is one row of the census.
type Entry struct {
	// Benchmark is the TPC benchmark (and scale-factor bracket for TPC-H).
	Benchmark string
	// Reports is the number of publicly accessible result publications.
	Reports int
	// Systems lists the database systems appearing in those publications.
	Systems []string
}

// census is Table 1 of the paper.
var census = []Entry{
	{"TPC-C", 368, []string{"Oracle", "IBM DB2", "MS SQLserver", "Sybase", "SymfoWARE"}},
	{"TPC-DI", 0, nil},
	{"TPC-DS", 1, []string{"Intel"}},
	{"TPC-E", 77, []string{"MS SQLserver"}},
	{"TPC-H <= SF-300", 252, []string{"MS SQLserver", "Oracle", "EXASOL", "Actian Vector 5.0", "Sybase", "IBM DB2", "Informix", "Teradata", "Paraccel"}},
	{"TPC-H SF-1000", 4, []string{"MS SQLserver"}},
	{"TPC-H SF-3000", 6, []string{"MS SQLserver", "Actian Vector 5.0"}},
	{"TPC-H SF-10000", 9, []string{"MS SQLserver"}},
	{"TPC-H SF-30000", 1, []string{"MS SQLserver"}},
	{"TPC-VMS", 0, nil},
	{"TPCx-BB", 4, []string{"Cloudera"}},
	{"TPCx-HCI", 0, nil},
	{"TPCx-HS", 0, nil},
	{"TPCx-IoT", 1, []string{"Hbase"}},
}

// Census returns the census rows in the paper's order.
func Census() []Entry {
	out := make([]Entry, len(census))
	copy(out, census)
	return out
}

// TotalReports returns the total number of published reports across all
// benchmarks.
func TotalReports() int {
	total := 0
	for _, e := range census {
		total += e.Reports
	}
	return total
}

// BenchmarksWithoutResults returns the benchmarks that have no publicly
// accessible results at all — the observation the paper leads with.
func BenchmarksWithoutResults() []string {
	var out []string
	for _, e := range census {
		if e.Reports == 0 {
			out = append(out, e.Benchmark)
		}
	}
	return out
}

// DistinctSystems returns the distinct systems mentioned across the census.
func DistinctSystems() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range census {
		for _, s := range e.Systems {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// Render prints the census in the layout of the paper's Table 1.
func Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %-8s %s\n", "benchmark", "reports", "systems reported")
	for _, e := range census {
		fmt.Fprintf(&sb, "%-18s %-8d %s\n", e.Benchmark, e.Reports, strings.Join(e.Systems, ", "))
	}
	fmt.Fprintf(&sb, "total reports: %d, distinct systems: %d, benchmarks without public results: %d\n",
		TotalReports(), len(DistinctSystems()), len(BenchmarksWithoutResults()))
	return sb.String()
}
