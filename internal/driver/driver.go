// Package driver is the Go counterpart of the paper's sqalpel.py experiment
// driver: a small client that is locally controlled through a configuration
// file, asks the platform web server for tasks from a project's query pool,
// executes them against the locally available DBMS (five repetitions by
// default), and reports the wall-clock times, the CPU load averages around
// the run and an open-ended key/value list of extra indicators back to the
// server. The contributor is identified only by a separately supplied key.
//
// With workers > 1 the driver leases tasks in batches (the `max` parameter
// of POST /api/task/request) and measures them on a local worker pool, so a
// handful of drivers — possibly on different machines — can crowd-source
// one experiment concurrently; the server's per-lease deadlines guarantee
// that no query is measured twice and that the leases of a crashed driver
// are handed out again.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqalpel/internal/metrics"
	"sqalpel/internal/repository"
)

// Config is the locally controlled driver configuration.
type Config struct {
	// Server is the base URL of the sqalpel platform.
	Server string
	// Key is the contributor key identifying the source of the results
	// without disclosing the contributor's identity.
	Key string
	// DBMS and Platform are the catalog keys of the system and host used.
	DBMS     string
	Platform string
	// Experiment is the experiment id within the contributor's project.
	Experiment int
	// Runs is the number of repetitions per query (default 5).
	Runs int
	// Timeout bounds a single query execution.
	Timeout time.Duration
	// Workers is the number of concurrent measurement workers (default 1 =
	// serial). With more than one worker the target must be safe for
	// concurrent use, which the built-in engines are.
	Workers int
	// Batch is how many tasks to lease per request; zero defaults to the
	// worker count so a full batch keeps every worker busy.
	Batch int
	// Trace asks the target for per-operator traces (targets that support
	// toggling expose SetTrace, e.g. the built-in engine targets) and
	// forwards them to the server with each result.
	Trace bool
}

// ParseConfig parses the driver configuration format: one `key = value` pair
// per line, with '#' comments, mirroring the paper's description of a simple
// local configuration file.
func ParseConfig(text string) (Config, error) {
	cfg := Config{Runs: metrics.DefaultRuns, Timeout: time.Minute, Workers: 1}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return cfg, fmt.Errorf("line %d: expected key = value, got %q", lineNo+1, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		switch strings.ToLower(key) {
		case "server":
			cfg.Server = val
		case "key":
			cfg.Key = val
		case "dbms":
			cfg.DBMS = val
		case "platform", "host":
			cfg.Platform = val
		case "experiment":
			n, err := strconv.Atoi(val)
			if err != nil {
				return cfg, fmt.Errorf("line %d: experiment must be a number", lineNo+1)
			}
			cfg.Experiment = n
		case "runs":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("line %d: runs must be a positive number", lineNo+1)
			}
			cfg.Runs = n
		case "timeout_seconds":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("line %d: timeout_seconds must be a positive number", lineNo+1)
			}
			cfg.Timeout = time.Duration(n) * time.Second
		case "workers":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("line %d: workers must be a positive number", lineNo+1)
			}
			cfg.Workers = n
		case "batch":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("line %d: batch must be a positive number", lineNo+1)
			}
			cfg.Batch = n
		case "trace":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return cfg, fmt.Errorf("line %d: trace must be a boolean", lineNo+1)
			}
			cfg.Trace = b
		default:
			return cfg, fmt.Errorf("line %d: unknown configuration key %q", lineNo+1, key)
		}
	}
	return cfg, cfg.Validate()
}

// LoadConfig reads and parses a configuration file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	return ParseConfig(string(data))
}

// Validate checks that the mandatory fields are present.
func (c Config) Validate() error {
	switch {
	case c.Server == "":
		return fmt.Errorf("driver config: server is required")
	case c.Key == "":
		return fmt.Errorf("driver config: key is required")
	case c.DBMS == "":
		return fmt.Errorf("driver config: dbms is required")
	case c.Platform == "":
		return fmt.Errorf("driver config: platform is required")
	case c.Experiment <= 0:
		return fmt.Errorf("driver config: experiment is required")
	}
	return nil
}

// Client talks to the platform server.
type Client struct {
	cfg  Config
	http *http.Client
}

// NewClient builds a client from a validated configuration.
func NewClient(cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Client{cfg: cfg, http: &http.Client{Timeout: 2 * cfg.Timeout}}, nil
}

// Config returns the client configuration.
func (c *Client) Config() Config { return c.cfg }

func (c *Client) post(path string, body any, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Post(strings.TrimSuffix(c.cfg.Server, "/")+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return resp.StatusCode, fmt.Errorf("server returned %d: %s", resp.StatusCode, apiErr.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding server response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

// RequestTask asks the server for the next query to run. It returns nil when
// the pool is exhausted for this DBMS + platform combination.
func (c *Client) RequestTask() (*repository.Task, error) {
	req := map[string]any{
		"key":           c.cfg.Key,
		"experiment_id": c.cfg.Experiment,
		"dbms":          c.cfg.DBMS,
		"platform":      c.cfg.Platform,
	}
	var task repository.Task
	status, err := c.post("/api/task/request", req, &task)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &task, nil
}

// RequestTasks leases up to max tasks in one round trip. An empty slice
// means the pool is exhausted for this DBMS + platform combination.
func (c *Client) RequestTasks(max int) ([]*repository.Task, error) {
	if max <= 1 {
		task, err := c.RequestTask()
		if err != nil || task == nil {
			return nil, err
		}
		return []*repository.Task{task}, nil
	}
	req := map[string]any{
		"key":           c.cfg.Key,
		"experiment_id": c.cfg.Experiment,
		"dbms":          c.cfg.DBMS,
		"platform":      c.cfg.Platform,
		"max":           max,
	}
	var resp struct {
		Tasks []*repository.Task `json:"tasks"`
	}
	status, err := c.post("/api/task/request", req, &resp)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return resp.Tasks, nil
}

// Report sends a finished measurement back to the server.
func (c *Client) Report(taskID int, m *metrics.Measurement) error {
	_, err := c.report(taskID, m)
	return err
}

// report is Report exposing the HTTP status, so the run loops can tell a
// lost lease (409, skip and carry on) from a real failure.
func (c *Client) report(taskID int, m *metrics.Measurement) (int, error) {
	req := map[string]any{
		"key":     c.cfg.Key,
		"task_id": taskID,
		"seconds": m.Seconds(),
		"error":   m.Err,
		"extra":   m.Extra,
	}
	if m.Trace != nil {
		req["trace"] = m.Trace
	}
	return c.post("/api/task/complete", req, nil)
}

// enableTrace switches per-operator tracing on for targets that support
// toggling it; targets without the hook are measured untraced.
func (c *Client) enableTrace(target metrics.Target) {
	if !c.cfg.Trace {
		return
	}
	if t, ok := target.(interface{ SetTrace(bool) }); ok {
		t.SetTrace(true)
	}
}

// measure runs one task's query on the target with the configured
// repetitions and per-repetition timeout.
func (c *Client) measure(target metrics.Target, task *repository.Task) *metrics.Measurement {
	return metrics.Measure(target, task.SQL, metrics.Options{Runs: c.cfg.Runs, Timeout: c.cfg.Timeout})
}

// RunOnce requests one task, measures it on the target and reports the
// result. It returns false when no task was available. A report rejected
// because the lease was lost in the meantime (expired and re-queued to
// another driver) is not an error: the result is dropped and the loop
// carries on — that is the designed recovery path, not a driver failure.
func (c *Client) RunOnce(target metrics.Target) (bool, error) {
	c.enableTrace(target)
	task, err := c.RequestTask()
	if err != nil {
		return false, err
	}
	if task == nil {
		return false, nil
	}
	if status, err := c.report(task.ID, c.measure(target, task)); err != nil && status != http.StatusConflict {
		return true, err
	}
	return true, nil
}

// RunAll keeps requesting and measuring tasks until the pool is exhausted or
// maxTasks have been processed (0 means no limit). It returns the number of
// tasks processed. With Config.Workers > 1 tasks are leased in batches and
// measured concurrently on a local worker pool; the target must then be
// safe for concurrent use.
func (c *Client) RunAll(target metrics.Target, maxTasks int) (int, error) {
	if c.cfg.Workers <= 1 {
		done := 0
		for maxTasks == 0 || done < maxTasks {
			more, err := c.RunOnce(target)
			if err != nil {
				return done, err
			}
			if !more {
				return done, nil
			}
			done++
		}
		return done, nil
	}
	return c.runAllParallel(target, maxTasks)
}

// runAllParallel is the batch-leasing worker-pool loop behind RunAll.
func (c *Client) runAllParallel(target metrics.Target, maxTasks int) (int, error) {
	c.enableTrace(target)
	batch := c.cfg.Batch
	if batch <= 0 {
		batch = c.cfg.Workers
	}
	done := 0
	for maxTasks == 0 || done < maxTasks {
		want := batch
		if maxTasks > 0 && maxTasks-done < want {
			want = maxTasks - done
		}
		tasks, err := c.RequestTasks(want)
		if err != nil {
			return done, err
		}
		if len(tasks) == 0 {
			return done, nil
		}

		workers := c.cfg.Workers
		if workers > len(tasks) {
			workers = len(tasks)
		}
		taskCh := make(chan *repository.Task)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		var aborted atomic.Bool
		completed := 0
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for task := range taskCh {
					// After the first error the batch is doomed (the leases
					// will expire and re-queue); drain instead of burning
					// measurement time on reports that cannot land.
					if aborted.Load() {
						continue
					}
					status, err := c.report(task.ID, c.measure(target, task))
					if err != nil && status == http.StatusConflict {
						// Lease lost to another driver after expiry — the
						// query is covered, just not by us. Skip it.
						continue
					}
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
						aborted.Store(true)
					}
					if err == nil {
						completed++
					}
					mu.Unlock()
				}
			}()
		}
		for _, task := range tasks {
			taskCh <- task
		}
		close(taskCh)
		wg.Wait()
		done += completed
		if firstErr != nil {
			return done, firstErr
		}
	}
	return done, nil
}
