package repository

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// Legacy migration: a pre-WAL store is a single sqalpel.json document. Open
// must load it transparently, re-persist it as a generation, and park the
// original under sqalpel.json.migrated — and the migrated store must be
// deep-equal to what Load sees in the legacy file.

// storeImage flattens a store into deterministically ordered, deep-
// comparable state: exactly what must survive any persistence round trip.
type storeImage struct {
	Users    []*User
	Projects []*Project
	Results  []*Result
	Comments []*Comment
	Tasks    []*Task
}

func imageOf(s *Store) storeImage {
	var img storeImage
	img.Users = s.Users() // sorted by nickname already
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, p := range sh.projects {
			img.Projects = append(img.Projects, p)
		}
		img.Results = append(img.Results, sh.results...)
		img.Comments = append(img.Comments, sh.comments...)
		for _, task := range sh.tasks {
			img.Tasks = append(img.Tasks, task)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(img.Projects, func(i, j int) bool { return img.Projects[i].ID < img.Projects[j].ID })
	sort.Slice(img.Results, func(i, j int) bool { return img.Results[i].ID < img.Results[j].ID })
	sort.Slice(img.Comments, func(i, j int) bool { return img.Comments[i].ID < img.Comments[j].ID })
	sort.Slice(img.Tasks, func(i, j int) bool { return img.Tasks[i].ID < img.Tasks[j].ID })
	return img
}

// writeLegacyStore serialises a store into the pre-WAL single-document
// format, exactly as the old Save wrote it.
func writeLegacyStore(t *testing.T, s *Store, dir string) {
	t.Helper()
	img := imageOf(s)
	snap := snapshot{
		Users:         img.Users,
		Projects:      img.Projects,
		Results:       img.Results,
		Comments:      img.Comments,
		Tasks:         img.Tasks,
		NextProjectID: s.nextProjectID,
		NextResultID:  int(s.nextResultID.Load()) + 1,
		NextCommentID: int(s.nextCommentID.Load()) + 1,
		NextTaskID:    int(s.nextTaskID.Load()) + 1,
		SavedAt:       s.now(),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, legacyFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyStoreMigratesToWAL(t *testing.T) {
	// A populated store: projects on several shards, results (one traced),
	// comments, finished and running tasks.
	seed, pub, priv := fixture(t)
	ownerKey := seed.Project(pub.ID).Contributors[0].Key
	if _, err := seed.AddResultTraced(ownerKey, 1, 1, "vektor-1.0", "laptop", []float64{0.1, 0.09}, "", map[string]string{"warm": "yes"}, sampleTrace(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.AddComment("ying", pub.ID, "looks right"); err != nil {
		t.Fatal(err)
	}
	task, err := seed.RequestTask(ownerKey, 1, "columba-1.0", "laptop")
	if err != nil || task == nil {
		t.Fatalf("lease: %v %v", task, err)
	}
	if _, err := seed.CompleteTask(task.ID, ownerKey, []float64{0.2}, "", nil); err != nil {
		t.Fatal(err)
	}
	if task, err = seed.RequestTask(ownerKey, 1, "vektor-1.0", "jetson"); err != nil || task == nil {
		t.Fatalf("lease: %v %v", task, err)
	}
	_ = priv

	dir := t.TempDir()
	writeLegacyStore(t, seed, dir)

	// What the legacy reader sees is the reference.
	legacy, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := imageOf(legacy)

	// Open migrates: different shard count than the seed on purpose.
	migrated, err := open(dir, 3, quietLogf, nosyncFactory)
	if err != nil {
		t.Fatal(err)
	}
	if got := imageOf(migrated); !reflect.DeepEqual(got, want) {
		t.Fatalf("migrated store differs from legacy load:\n got %+v\nwant %+v", got, want)
	}

	// The legacy file is parked, a generation is authoritative.
	if _, err := os.Stat(filepath.Join(dir, legacyFile)); !os.IsNotExist(err) {
		t.Fatalf("legacy file still present after migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, migratedFile)); err != nil {
		t.Fatalf("parked legacy file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, currentFile)); err != nil {
		t.Fatalf("CURRENT missing after migration: %v", err)
	}

	// New work lands in the WAL; id allocation continues past the legacy
	// counters instead of reusing ids.
	r, err := migrated.AddResult(ownerKey, 1, 2, "columba-1.0", "laptop", []float64{0.3}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range want.Results {
		if old.ID == r.ID {
			t.Fatalf("migrated store reused result id %d", r.ID)
		}
	}
	if err := migrated.Close(); err != nil {
		t.Fatal(err)
	}

	// The reopened store (now from the generation, not the legacy file)
	// still matches, plus the post-migration result.
	reopened, err := open(dir, 3, quietLogf, nosyncFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got := imageOf(reopened)
	if len(got.Results) != len(want.Results)+1 {
		t.Fatalf("reopened store has %d results, want %d", len(got.Results), len(want.Results)+1)
	}
	got.Results = got.Results[:len(want.Results)]
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened store differs from legacy load:\n got %+v\nwant %+v", got, want)
	}

	// And a plain Load still reads the generation layout too.
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(imageOf(loaded).Results) != len(want.Results)+1 {
		t.Fatal("Load does not read the generation layout")
	}
}
