package engine

import (
	"errors"
	"fmt"
	"time"

	"sqalpel/internal/cexec"
	"sqalpel/internal/plan"
	"sqalpel/internal/vexec"
)

// fusilEngine is the fourth execution paradigm: the data-centric compiled
// engine of internal/cexec ("fusil"), which fuses each plan pipeline into
// a chain of Go closures and pushes rows through them with no pull-based
// batch handoffs. It shares the typed-table import shim with the
// vectorized adapter (one decode per table data version, served from a
// per-engine cache) and routes on the same precomputed plan verdict: the
// compilable subset is exactly the vectorizable subset, so one analysis
// pass steers both engines. Runtime value shapes outside the typed subset
// defer to the column interpreter, re-using the plan.
type fusilEngine struct {
	name     string
	version  string
	dialect  string
	fallback *baseEngine
	plans    *plan.Cache
	typed    *typedCache
}

// NewFusilEngine returns the compiled engine ("fusil 1.0"): per-query
// closure compilation, fused scan-filter push loops, materializing only at
// pipeline breakers.
func NewFusilEngine() Engine {
	return &fusilEngine{
		name:     "fusil",
		version:  "1.0",
		dialect:  "fusil",
		fallback: &baseEngine{name: "fusil", version: "1.0", dialect: "fusil", mode: ModeColumn},
		plans:    plan.NewCache(0),
		typed:    newTypedCache(),
	}
}

func (e *fusilEngine) Name() string    { return e.name }
func (e *fusilEngine) Version() string { return e.version }
func (e *fusilEngine) Dialect() string { return e.dialect }

// SetPlanCache implements PlanCached.
func (e *fusilEngine) SetPlanCache(c *plan.Cache) { e.plans = c }

// PlanCacheStats implements PlanCached.
func (e *fusilEngine) PlanCacheStats() (hits, misses uint64) {
	if e.plans == nil {
		return 0, 0
	}
	return e.plans.Stats()
}

// Execute resolves the shared logical plan and routes on its verdict:
// supported statements compile into closure pipelines, everything else
// goes straight to the column interpreter on the same plan.
func (e *fusilEngine) Execute(db *Database, sql string, opts ExecOptions) (*Result, error) {
	p, err := planFor(e.plans, db, sql)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.name, err)
	}
	if !p.Vectorizable {
		return e.fallback.ExecutePlan(db, p, opts)
	}
	copts := cexec.Options{MaxJoinRows: opts.MaxJoinRows, Tracer: opts.Tracer}
	if opts.Timeout > 0 {
		copts.Deadline = time.Now().Add(opts.Timeout)
	}
	res, err := cexec.ExecutePlan(&typedCatalog{cache: e.typed, db: db}, p, copts)
	if err != nil {
		if errors.Is(err, cexec.ErrUnsupported) {
			// Runtime value shapes outside the typed subset defer to the
			// interpreter, re-using the plan. An aborted compiled attempt may
			// have recorded partial spans; drop them so the trace reflects
			// the run that actually produced the result.
			opts.Tracer.Reset()
			return e.fallback.ExecutePlan(db, p, opts)
		}
		return nil, fmt.Errorf("%s: %w", e.name, err)
	}

	out := &Result{
		Columns: res.Columns,
		Stats: Stats{
			// No Batches and no FilterPasses: the compiled paradigm has no
			// batch handoffs and fuses filters into its push loops — the
			// distinguishing cost signature of the paradigm.
			RowsScanned:        res.Stats.RowsScanned,
			HashJoins:          res.Stats.HashJoins,
			JoinBuildRows:      res.Stats.JoinBuildRows,
			JoinProbeRows:      res.Stats.JoinProbeRows,
			LoopJoins:          res.Stats.LoopJoins,
			Groups:             res.Stats.Groups,
			AggRows:            res.Stats.AggRows,
			RowsReturned:       res.Stats.RowsReturned,
			SubqueryExecutions: res.Stats.SubqueryExecutions,
			BlocksSkipped:      res.Stats.BlocksSkipped,
		},
	}
	n := res.NumRows()
	out.Rows = make([][]Value, n)
	for i := 0; i < n; i++ {
		row := make([]Value, len(res.Cols))
		for c, col := range res.Cols {
			kind, iv, fv, sv := col[i].Payload()
			switch kind {
			case vexec.KindNull:
				row[c] = Null()
			case vexec.KindBool:
				row[c] = Value{Kind: KindBool, I: iv}
			case vexec.KindInt:
				row[c] = NewInt(iv)
			case vexec.KindFloat:
				row[c] = NewFloat(fv)
			case vexec.KindString:
				row[c] = NewString(sv)
			case vexec.KindDate:
				row[c] = NewDate(iv)
			}
		}
		out.Rows[i] = row
	}
	return out, nil
}
