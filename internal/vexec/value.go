package vexec

import (
	"strconv"
	"strings"
	"time"
)

// This file reproduces the scalar SQL value semantics of internal/engine
// over the unboxed scalar type: comparison, hash-key encoding, rendering and
// the date/LIKE helpers. The two implementations must agree exactly — the
// differential tests in internal/engine hold the vektor engines to the
// interpreters' answers bit for bit.

// boolVal reports the two-valued truth of a scalar: NULL and non-numeric
// values are false.
func (s scalar) boolVal() bool {
	switch s.kind {
	case KindBool, KindInt, KindDate:
		return s.i != 0
	case KindFloat:
		return s.f != 0
	default:
		return false
	}
}

// floatVal converts the scalar for numeric operations.
func (s scalar) floatVal() float64 {
	switch s.kind {
	case KindInt, KindBool, KindDate:
		return float64(s.i)
	case KindFloat:
		return s.f
	case KindString:
		f, _ := strconv.ParseFloat(s.s, 64)
		return f
	default:
		return 0
	}
}

// intVal converts the scalar to an integer.
func (s scalar) intVal() int64 {
	switch s.kind {
	case KindInt, KindBool, KindDate:
		return s.i
	case KindFloat:
		return int64(s.f)
	case KindString:
		i, _ := strconv.ParseInt(s.s, 10, 64)
		return i
	default:
		return 0
	}
}

// isNull reports whether the scalar is SQL NULL.
func (s scalar) isNull() bool { return s.kind == KindNull }

// isNumeric reports whether the scalar participates in numeric arithmetic.
func (s scalar) isNumeric() bool {
	return s.kind == KindInt || s.kind == KindFloat || s.kind == KindBool
}

// render prints the scalar the way result tables do.
func (s scalar) render() string {
	switch s.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if s.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(s.i, 10)
	case KindFloat:
		return strconv.FormatFloat(s.f, 'f', -1, 64)
	case KindString:
		return s.s
	case KindDate:
		return formatDate(s.i)
	default:
		return "?"
	}
}

// compareScalars returns -1, 0 or 1 with SQL ordering semantics: NULL sorts
// below everything, strings compare lexicographically only against strings,
// everything else goes through the numeric path.
func compareScalars(a, b scalar) int {
	if a.isNull() || b.isNull() {
		switch {
		case a.isNull() && b.isNull():
			return 0
		case a.isNull():
			return -1
		default:
			return 1
		}
	}
	if a.kind == KindString && b.kind == KindString {
		return strings.Compare(a.s, b.s)
	}
	af, bf := a.floatVal(), b.floatVal()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// equalScalars is SQL equality: NULL never equals anything.
func equalScalars(a, b scalar) bool {
	if a.isNull() || b.isNull() {
		return false
	}
	return compareScalars(a, b) == 0
}

// The hash-key encoding of scalars and vector rows (matching
// engine.Value.Key) lives in hashtable.go as appendScalarKey and
// appendVecKey: the hash table's byte mode encodes rows into reusable
// buffers instead of building per-row strings.

// --- dates -------------------------------------------------------------------

var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// parseDate converts an ISO yyyy-mm-dd string into days since the epoch.
func parseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, err
	}
	return int64(t.Sub(epoch).Hours() / 24), nil
}

// formatDate renders days since the epoch as yyyy-mm-dd.
func formatDate(days int64) string {
	return epoch.AddDate(0, 0, int(days)).Format("2006-01-02")
}

// dateParts returns the year, month and day of a day number.
func dateParts(days int64) (year, month, day int) {
	t := epoch.AddDate(0, 0, int(days))
	return t.Year(), int(t.Month()), t.Day()
}

// addInterval adds n DAY/MONTH/YEAR units to a day number.
func addInterval(days, n int64, unit string) (int64, bool) {
	t := epoch.AddDate(0, 0, int(days))
	switch strings.ToUpper(unit) {
	case "DAY":
		t = t.AddDate(0, 0, int(n))
	case "MONTH":
		t = t.AddDate(0, int(n), 0)
	case "YEAR":
		t = t.AddDate(int(n), 0, 0)
	default:
		return 0, false
	}
	return int64(t.Sub(epoch).Hours() / 24), true
}

// likeMatch implements SQL LIKE with % and _ wildcards (greedy two-pointer
// algorithm, the same one the interpreters use).
func likeMatch(s, p string) bool {
	var si, pi int
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
