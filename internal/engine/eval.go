package engine

import (
	"fmt"
	"strings"

	"sqalpel/internal/sqlparser"
	"sqalpel/internal/sqlsem"
)

// tri lifts a runtime value into the shared ternary-logic domain: NULL is
// UNKNOWN, everything else its two-valued truth.
func tri(v Value) sqlsem.Tri {
	if v.IsNull() {
		return sqlsem.Unknown
	}
	return sqlsem.Of(v.Bool())
}

// triValue lowers a ternary truth value back into the value domain: UNKNOWN
// becomes NULL. Predicate consumers (filters, HAVING, CASE arms, join
// conditions) never see the NULL — they collapse it with Value.Bool — but a
// predicate in projection position surfaces it.
func triValue(t sqlsem.Tri) Value {
	if !t.Known() {
		return Null()
	}
	return NewBool(t == sqlsem.True)
}

// scope is one level of column visibility: a relation plus the current row,
// chained to the enclosing query's scope for correlated sub-queries.
type scope struct {
	rel   *relation
	row   int
	outer *scope
}

// evaluator evaluates scalar expressions against a scope chain. When group
// is non-nil the evaluator is in aggregate context: aggregate function calls
// are computed over the listed row indexes of the scope relation, and plain
// column references resolve against the first row of the group.
type evaluator struct {
	ex    *executor
	sc    *scope
	group []int
}

// errEval wraps evaluation failures with the failing expression.
func errEval(e sqlparser.Expr, err error) error {
	return fmt.Errorf("evaluating %q: %w", e.SQL(), err)
}

// resolve looks a column reference up in the scope chain.
func (ev *evaluator) resolve(table, name string) (Value, error) {
	for s := ev.sc; s != nil; s = s.outer {
		idx, err := s.rel.findColumn(table, name)
		if err == nil {
			return s.rel.value(s.row, idx), nil
		}
		if err != errColumnNotFound {
			return Value{}, err
		}
	}
	if table != "" {
		return Value{}, fmt.Errorf("unknown column %s.%s", table, name)
	}
	return Value{}, fmt.Errorf("unknown column %s", name)
}

// eval evaluates an expression to a single value.
func (ev *evaluator) eval(e sqlparser.Expr) (Value, error) {
	switch v := e.(type) {
	case *sqlparser.NumberLit:
		return parseNumber(v.Value), nil
	case *sqlparser.StringLit:
		return NewString(v.Value), nil
	case *sqlparser.BoolLit:
		return NewBool(v.Value), nil
	case *sqlparser.NullLit:
		return Null(), nil
	case *sqlparser.DateLit:
		d, err := ParseDate(v.Value)
		if err != nil {
			return Value{}, errEval(e, err)
		}
		return NewDate(d), nil
	case *sqlparser.IntervalLit:
		// Bare intervals only appear as the right operand of date arithmetic
		// which is handled in the BinaryExpr case; evaluating one directly
		// yields its numeric count (used for day intervals).
		return parseNumber(v.Value), nil
	case *sqlparser.ColumnRef:
		return ev.resolve(v.Table, v.Column)
	case *sqlparser.ParenExpr:
		return ev.eval(v.Expr)
	case *sqlparser.UnaryExpr:
		return ev.evalUnary(v)
	case *sqlparser.BinaryExpr:
		return ev.evalBinary(v)
	case *sqlparser.FuncCall:
		return ev.evalFunc(v)
	case *sqlparser.CaseExpr:
		return ev.evalCase(v)
	case *sqlparser.BetweenExpr:
		return ev.evalBetween(v)
	case *sqlparser.InExpr:
		return ev.evalIn(v)
	case *sqlparser.ExistsExpr:
		rel, err := ev.ex.executeSubquery(v.Subquery, ev.sc)
		if err != nil {
			return Value{}, errEval(e, err)
		}
		if v.Not {
			return NewBool(rel.numRows() == 0), nil
		}
		return NewBool(rel.numRows() > 0), nil
	case *sqlparser.IsNullExpr:
		val, err := ev.eval(v.Expr)
		if err != nil {
			return Value{}, err
		}
		if v.Not {
			return NewBool(!val.IsNull()), nil
		}
		return NewBool(val.IsNull()), nil
	case *sqlparser.SubqueryExpr:
		rel, err := ev.ex.executeSubquery(v.Select, ev.sc)
		if err != nil {
			return Value{}, errEval(e, err)
		}
		if rel.numRows() == 0 || len(rel.cols) == 0 {
			return Null(), nil
		}
		return rel.value(0, 0), nil
	case *sqlparser.ExtractExpr:
		val, err := ev.eval(v.From)
		if err != nil {
			return Value{}, err
		}
		if val.IsNull() {
			return Null(), nil
		}
		if val.Kind != KindDate {
			return Value{}, errEval(e, fmt.Errorf("EXTRACT requires a date, got %s", val.Kind))
		}
		y, m, d := DateParts(val.I)
		switch v.Unit {
		case "YEAR":
			return NewInt(int64(y)), nil
		case "MONTH":
			return NewInt(int64(m)), nil
		default:
			return NewInt(int64(d)), nil
		}
	case *sqlparser.SubstringExpr:
		return ev.evalSubstring(v)
	case *sqlparser.CastExpr:
		return ev.evalCast(v)
	case *sqlparser.ParamRef:
		return Value{}, fmt.Errorf("unresolved template parameter ${%s}", v.Name)
	default:
		return Value{}, fmt.Errorf("unsupported expression %T", e)
	}
}

func parseNumber(s string) Value {
	if !strings.ContainsAny(s, ".eE") {
		var n int64
		neg := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if i == 0 && (c == '-' || c == '+') {
				neg = c == '-'
				continue
			}
			if c < '0' || c > '9' {
				return NewFloat(atof(s))
			}
			n = n*10 + int64(c-'0')
		}
		if neg {
			n = -n
		}
		return NewInt(n)
	}
	return NewFloat(atof(s))
}

func atof(s string) float64 {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	if err != nil {
		return 0
	}
	return f
}

func (ev *evaluator) evalUnary(v *sqlparser.UnaryExpr) (Value, error) {
	val, err := ev.eval(v.Expr)
	if err != nil {
		return Value{}, err
	}
	switch v.Op {
	case "NOT":
		return triValue(sqlsem.Not(tri(val))), nil
	case "-":
		if val.IsNull() {
			return Null(), nil
		}
		if val.Kind == KindInt {
			return NewInt(-val.I), nil
		}
		return NewFloat(-val.Float()), nil
	case "+":
		return val, nil
	default:
		return Value{}, fmt.Errorf("unknown unary operator %q", v.Op)
	}
}

func (ev *evaluator) evalBinary(v *sqlparser.BinaryExpr) (Value, error) {
	switch v.Op {
	case "AND":
		l, err := ev.eval(v.Left)
		if err != nil {
			return Value{}, err
		}
		lt := tri(l)
		if lt == sqlsem.False {
			// Definite FALSE short-circuits; UNKNOWN must still see the
			// right side (UNKNOWN AND FALSE is FALSE, not UNKNOWN).
			return NewBool(false), nil
		}
		r, err := ev.eval(v.Right)
		if err != nil {
			return Value{}, err
		}
		return triValue(sqlsem.And(lt, tri(r))), nil
	case "OR":
		l, err := ev.eval(v.Left)
		if err != nil {
			return Value{}, err
		}
		lt := tri(l)
		if lt == sqlsem.True {
			return NewBool(true), nil
		}
		r, err := ev.eval(v.Right)
		if err != nil {
			return Value{}, err
		}
		return triValue(sqlsem.Or(lt, tri(r))), nil
	}

	// Date +/- INTERVAL handled before generic arithmetic.
	if iv, ok := v.Right.(*sqlparser.IntervalLit); ok && (v.Op == "+" || v.Op == "-") {
		l, err := ev.eval(v.Left)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() {
			return Null(), nil
		}
		n := parseNumber(iv.Value).Int()
		if v.Op == "-" {
			n = -n
		}
		if l.Kind != KindDate {
			return Value{}, fmt.Errorf("interval arithmetic requires a date, got %s", l.Kind)
		}
		d, err := AddInterval(l.I, n, iv.Unit)
		if err != nil {
			return Value{}, err
		}
		return NewDate(d), nil
	}

	l, err := ev.eval(v.Left)
	if err != nil {
		return Value{}, err
	}
	r, err := ev.eval(v.Right)
	if err != nil {
		return Value{}, err
	}
	switch v.Op {
	case "+", "-", "*", "/", "%", "||":
		val, err := Arithmetic(v.Op, l, r)
		if err != nil {
			return Value{}, errEval(v, err)
		}
		return val, nil
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return triValue(sqlsem.Unknown), nil
		}
		return triValue(sqlsem.Compare(v.Op, Compare(l, r))), nil
	case "LIKE", "NOT LIKE":
		eitherNull := l.IsNull() || r.IsNull()
		matched := false
		if !eitherNull {
			matched = Like(l.String(), r.String())
		}
		return triValue(sqlsem.Like(eitherNull, matched, v.Op == "NOT LIKE")), nil
	default:
		return Value{}, fmt.Errorf("unknown binary operator %q", v.Op)
	}
}

func (ev *evaluator) evalCase(v *sqlparser.CaseExpr) (Value, error) {
	var operand Value
	var err error
	if v.Operand != nil {
		operand, err = ev.eval(v.Operand)
		if err != nil {
			return Value{}, err
		}
	}
	for _, w := range v.Whens {
		cond, err := ev.eval(w.When)
		if err != nil {
			return Value{}, err
		}
		matched := false
		if v.Operand != nil {
			matched = Equal(operand, cond)
		} else {
			matched = cond.Bool()
		}
		if matched {
			return ev.eval(w.Then)
		}
	}
	if v.Else != nil {
		return ev.eval(v.Else)
	}
	return Null(), nil
}

func (ev *evaluator) evalBetween(v *sqlparser.BetweenExpr) (Value, error) {
	val, err := ev.eval(v.Expr)
	if err != nil {
		return Value{}, err
	}
	lo, err := ev.eval(v.Lo)
	if err != nil {
		return Value{}, err
	}
	hi, err := ev.eval(v.Hi)
	if err != nil {
		return Value{}, err
	}
	geLo := sqlsem.CompareNullable(">=", val.IsNull() || lo.IsNull(), compareNonNull(val, lo))
	leHi := sqlsem.CompareNullable("<=", val.IsNull() || hi.IsNull(), compareNonNull(val, hi))
	return triValue(sqlsem.Between(geLo, leHi, v.Not)), nil
}

// compareNonNull compares two values when neither is NULL; with a NULL
// operand the result is unused (CompareNullable short-circuits to UNKNOWN)
// and zero is returned.
func compareNonNull(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		return 0
	}
	return Compare(a, b)
}

func (ev *evaluator) evalIn(v *sqlparser.InExpr) (Value, error) {
	val, err := ev.eval(v.Expr)
	if err != nil {
		return Value{}, err
	}
	var found, listHasNull, listEmpty bool
	if v.Subquery != nil {
		set, hasNull, err := ev.ex.subquerySet(v.Subquery, ev.sc)
		if err != nil {
			return Value{}, err
		}
		found = !val.IsNull() && set[val.Key()]
		listHasNull = hasNull
		listEmpty = len(set) == 0 && !hasNull
	} else {
		// An explicit IN list is never empty. A found match still
		// short-circuits (TRUE dominates any NULL in the list), preserving
		// the interpreter's error-evaluation order.
		for _, item := range v.List {
			iv, err := ev.eval(item)
			if err != nil {
				return Value{}, err
			}
			if Equal(val, iv) {
				found = true
				break
			}
			if iv.IsNull() {
				listHasNull = true
			}
		}
	}
	t := sqlsem.In(val.IsNull(), found, listHasNull, listEmpty)
	if v.Not {
		t = sqlsem.Not(t)
	}
	return triValue(t), nil
}

func (ev *evaluator) evalSubstring(v *sqlparser.SubstringExpr) (Value, error) {
	s, err := ev.eval(v.Expr)
	if err != nil {
		return Value{}, err
	}
	if s.IsNull() {
		return Null(), nil
	}
	start, err := ev.eval(v.Start)
	if err != nil {
		return Value{}, err
	}
	str := s.String()
	from := int(start.Int()) - 1
	if from < 0 {
		from = 0
	}
	if from > len(str) {
		from = len(str)
	}
	to := len(str)
	if v.Length != nil {
		length, err := ev.eval(v.Length)
		if err != nil {
			return Value{}, err
		}
		to = from + int(length.Int())
		if to > len(str) {
			to = len(str)
		}
		if to < from {
			to = from
		}
	}
	return NewString(str[from:to]), nil
}

func (ev *evaluator) evalCast(v *sqlparser.CastExpr) (Value, error) {
	val, err := ev.eval(v.Expr)
	if err != nil {
		return Value{}, err
	}
	if val.IsNull() {
		return Null(), nil
	}
	switch strings.ToLower(v.Type) {
	case "integer", "int", "bigint", "smallint":
		return NewInt(val.Int()), nil
	case "double", "float", "real", "decimal", "numeric":
		return NewFloat(val.Float()), nil
	case "varchar", "char", "text", "string":
		return NewString(val.String()), nil
	case "date":
		if val.Kind == KindDate {
			return val, nil
		}
		d, err := ParseDate(val.String())
		if err != nil {
			return Value{}, err
		}
		return NewDate(d), nil
	default:
		return Value{}, fmt.Errorf("unsupported cast target %q", v.Type)
	}
}

// evalFunc evaluates scalar functions and, in aggregate context, aggregate
// functions over the current group.
func (ev *evaluator) evalFunc(v *sqlparser.FuncCall) (Value, error) {
	if v.IsAggregate() {
		if ev.group == nil {
			return Value{}, fmt.Errorf("aggregate %s used outside GROUP BY context", v.Name)
		}
		return ev.evalAggregate(v)
	}
	args := make([]Value, len(v.Args))
	for i, a := range v.Args {
		val, err := ev.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = val
	}
	switch v.Name {
	case "abs":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("abs expects 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		f := args[0].Float()
		if f < 0 {
			f = -f
		}
		if args[0].Kind == KindInt {
			return NewInt(int64(f)), nil
		}
		return NewFloat(f), nil
	case "length", "char_length":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("%s expects 1 argument", v.Name)
		}
		return NewInt(int64(len(args[0].String()))), nil
	case "upper":
		return NewString(strings.ToUpper(args[0].String())), nil
	case "lower":
		return NewString(strings.ToLower(args[0].String())), nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "round":
		if len(args) == 0 {
			return Value{}, fmt.Errorf("round expects at least 1 argument")
		}
		f := args[0].Float()
		scale := 0
		if len(args) > 1 {
			scale = int(args[1].Int())
		}
		mult := 1.0
		for i := 0; i < scale; i++ {
			mult *= 10
		}
		rounded := float64(int64(f*mult+copySign(0.5, f))) / mult
		return NewFloat(rounded), nil
	default:
		return Value{}, fmt.Errorf("unknown function %q", v.Name)
	}
}

func copySign(mag, sign float64) float64 {
	if sign < 0 {
		return -mag
	}
	return mag
}

// evalAggregate computes an aggregate over the evaluator's group rows.
// The column-at-a-time engine first materialises the argument vector (plus
// an overflow-guarding widened copy for multiplicative expressions); the
// row engine folds values directly into the accumulator.
func (ev *evaluator) evalAggregate(v *sqlparser.FuncCall) (Value, error) {
	name := strings.ToLower(v.Name)
	if v.Star {
		if name != "count" {
			return Value{}, fmt.Errorf("%s(*) is not valid", name)
		}
		return NewInt(int64(len(ev.group))), nil
	}
	if len(v.Args) != 1 {
		return Value{}, fmt.Errorf("aggregate %s expects exactly 1 argument", name)
	}
	arg := v.Args[0]

	var vals []Value
	if ev.ex.mode == ModeColumn {
		vec, err := ev.materializeVector(arg)
		if err != nil {
			return Value{}, err
		}
		vals = vec
	}

	var (
		count    int64
		sum      float64
		sumIsInt = true
		sumInt   int64
		min, max Value
		distinct map[string]bool
	)
	if v.Distinct {
		distinct = map[string]bool{}
	}
	fold := func(val Value) {
		if val.IsNull() {
			return
		}
		if v.Distinct {
			k := val.Key()
			if distinct[k] {
				return
			}
			distinct[k] = true
		}
		count++
		if val.Kind == KindInt {
			sumInt += val.I
		} else {
			sumIsInt = false
		}
		sum += val.Float()
		if min.Kind == KindNull || Compare(val, min) < 0 {
			min = val
		}
		if max.Kind == KindNull || Compare(val, max) > 0 {
			max = val
		}
	}

	if vals != nil {
		for _, val := range vals {
			fold(val)
		}
	} else {
		child := &evaluator{ex: ev.ex, sc: &scope{rel: ev.sc.rel, outer: ev.sc.outer}}
		for _, ri := range ev.group {
			child.sc.row = ri
			val, err := child.eval(arg)
			if err != nil {
				return Value{}, err
			}
			fold(val)
		}
	}

	switch name {
	case "count":
		return NewInt(count), nil
	case "sum":
		if count == 0 {
			return Null(), nil
		}
		if sumIsInt {
			return NewInt(sumInt), nil
		}
		return NewFloat(sum), nil
	case "avg":
		if count == 0 {
			return Null(), nil
		}
		return NewFloat(sum / float64(count)), nil
	case "min":
		if count == 0 {
			return Null(), nil
		}
		return min, nil
	case "max":
		if count == 0 {
			return Null(), nil
		}
		return max, nil
	default:
		return Value{}, fmt.Errorf("unknown aggregate %q", name)
	}
}

// materializeVector evaluates the expression for every row of the group into
// a freshly allocated vector, recursively materialising the operands of
// arithmetic expressions first — the column-at-a-time execution model. For
// multiplicative expressions over column data an additional widened copy is
// made, modelling the overflow-guarding type casts the paper identifies as
// the dominant cost of TPC-H Q1 on MonetDB.
func (ev *evaluator) materializeVector(e sqlparser.Expr) ([]Value, error) {
	rows := ev.group
	stats := ev.ex.stats
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		if isArithmeticOp(v.Op) {
			left, err := ev.materializeVector(v.Left)
			if err != nil {
				return nil, err
			}
			right, err := ev.materializeVector(v.Right)
			if err != nil {
				return nil, err
			}
			if v.Op == "*" && ev.ex.guardCasts {
				// Overflow guard: widen both operand vectors before the
				// multiplication, costing an extra copy of each.
				left = widenVector(left, stats)
				right = widenVector(right, stats)
			}
			out := make([]Value, len(rows))
			for i := range rows {
				val, err := Arithmetic(v.Op, left[i], right[i])
				if err != nil {
					return nil, errEval(v, err)
				}
				out[i] = val
			}
			if stats != nil {
				stats.IntermediatesMaterialized += int64(len(out))
			}
			return out, nil
		}
	case *sqlparser.ParenExpr:
		return ev.materializeVector(v.Expr)
	case *sqlparser.ColumnRef:
		out := make([]Value, len(rows))
		child := &evaluator{ex: ev.ex, sc: &scope{rel: ev.sc.rel, outer: ev.sc.outer}}
		for i, ri := range rows {
			child.sc.row = ri
			val, err := child.eval(v)
			if err != nil {
				return nil, err
			}
			out[i] = val
		}
		if stats != nil {
			stats.IntermediatesMaterialized += int64(len(out))
		}
		return out, nil
	case *sqlparser.NumberLit, *sqlparser.StringLit, *sqlparser.DateLit:
		child := &evaluator{ex: ev.ex, sc: ev.sc}
		val, err := child.eval(e)
		if err != nil {
			return nil, err
		}
		out := make([]Value, len(rows))
		for i := range out {
			out[i] = val
		}
		return out, nil
	}
	// Fallback: evaluate row-at-a-time into a materialised vector.
	out := make([]Value, len(rows))
	child := &evaluator{ex: ev.ex, sc: &scope{rel: ev.sc.rel, outer: ev.sc.outer}, group: ev.group}
	for i, ri := range rows {
		child.sc.row = ri
		val, err := (&evaluator{ex: ev.ex, sc: child.sc}).eval(e)
		if err != nil {
			return nil, err
		}
		out[i] = val
	}
	if stats != nil {
		stats.IntermediatesMaterialized += int64(len(out))
	}
	return out, nil
}

func isArithmeticOp(op string) bool {
	switch op {
	case "+", "-", "*", "/", "%":
		return true
	}
	return false
}

// widenVector copies a vector into its "wider" representation (floats),
// accounting the copy as materialised intermediates.
func widenVector(in []Value, stats *Stats) []Value {
	out := make([]Value, len(in))
	for i, v := range in {
		if v.IsNull() {
			out[i] = v
			continue
		}
		if v.Kind == KindString || v.Kind == KindDate {
			out[i] = v
			continue
		}
		out[i] = NewFloat(v.Float())
	}
	if stats != nil {
		stats.IntermediatesMaterialized += int64(len(out))
		stats.GuardCasts += int64(len(out))
	}
	return out
}
