// Package lintutil holds the helpers shared by sqalpel's analyzers: the
// //lint: suppression-comment scanner, package-path classification, and
// type/callee matching on go/types information.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PathMatches reports whether a package import path denotes the package
// marker (e.g. "internal/plan"): the path equals the marker, ends with it,
// or contains it as a full path segment sequence. Both the real module
// paths ("sqalpel/internal/plan") and analyzer fixtures loaded by their
// testdata-relative paths ("internal/plan") match.
func PathMatches(pkgPath, marker string) bool {
	return pkgPath == marker ||
		strings.HasSuffix(pkgPath, "/"+marker) ||
		strings.HasPrefix(pkgPath, marker+"/") ||
		strings.Contains(pkgPath, "/"+marker+"/")
}

// PathMatchesAny reports whether the path matches any of the markers.
func PathMatchesAny(pkgPath string, markers ...string) bool {
	for _, m := range markers {
		if PathMatches(pkgPath, m) {
			return true
		}
	}
	return false
}

// Suppressions indexes the //lint:<token> <reason> comments of a package.
// A suppression covers findings on the comment's own line (trailing
// comment) and on the line directly below it (standalone comment above the
// offending statement). The reason is mandatory: a bare //lint:token does
// not suppress, so every deliberate exception is forced to document itself.
type Suppressions struct {
	// tokens maps file name -> line -> suppression tokens active there.
	tokens map[string]map[int]map[string]bool
}

// NewSuppressions scans the files' comments for //lint: annotations.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{tokens: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				rest := strings.TrimPrefix(text, "lint:")
				tok, reason, _ := strings.Cut(rest, " ")
				if tok == "" || strings.TrimSpace(reason) == "" {
					continue // undocumented suppressions are inert
				}
				pos := fset.Position(c.Pos())
				byLine := s.tokens[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					s.tokens[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][tok] = true
				}
			}
		}
	}
	return s
}

// Suppressed reports whether a finding at pos is covered by a //lint:token
// annotation.
func (s *Suppressions) Suppressed(fset *token.FileSet, pos token.Pos, token string) bool {
	p := fset.Position(pos)
	return s.tokens[p.Filename][p.Line][token]
}

// Deref strips pointer indirections from a type.
func Deref(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// NamedIn reports whether t (possibly behind pointers) is the named type
// with the given name declared in a package matching the marker path.
func NamedIn(t types.Type, marker, name string) bool {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Name() != name {
		return false
	}
	pkg := obj.Pkg()
	return pkg != nil && PathMatches(pkg.Path(), marker)
}

// IsMutex reports whether t (possibly behind pointers) is sync.Mutex or
// sync.RWMutex.
func IsMutex(t types.Type) bool {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// CalleeFunc resolves the called function or method object of a call
// expression, or nil (calls through function values, built-ins, or type
// conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgCall reports whether the call invokes one of the named package-level
// functions of a package matching the marker path ("" matches the standard
// library path exactly, e.g. "encoding/json").
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath && !PathMatches(fn.Pkg().Path(), pkgPath) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsMethodCall reports whether the call invokes one of the named methods on
// a receiver whose type is the named type from a package matching the
// marker path.
func IsMethodCall(info *types.Info, call *ast.CallExpr, marker, typeName string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	if !NamedIn(sig.Recv().Type(), marker, typeName) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// ExprString renders a (small) expression for diagnostics: identifiers and
// selector chains come out as written, everything else as a placeholder.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return ExprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	default:
		return "expr"
	}
}
