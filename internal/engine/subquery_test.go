package engine

import "testing"

// subqueryDB is a small two-table database for pinning sub-query edge
// cases on every engine: an outer table with nullable columns and an
// inner table whose filtered views can be empty, NULL-bearing, or carry
// several rows per correlation key.
//
//	outer: id | k | a          inner: ik | v    | w
//	        1 | 1 | 10                  1 | 100  | 7
//	        2 | 2 | NULL                1 | 200  | NULL
//	        3 | 3 | 30                  2 | 300  | 9
//	        4 | 1 | 40                  9 | NULL | 5
func subqueryDB() *Database {
	db := NewDatabase("subq")
	outer := NewTable("outer_t",
		Column{Name: "id", Type: TypeInt},
		Column{Name: "k", Type: TypeInt},
		Column{Name: "a", Type: TypeInt},
	)
	outer.MustAppendRow(NewInt(1), NewInt(1), NewInt(10))
	outer.MustAppendRow(NewInt(2), NewInt(2), Null())
	outer.MustAppendRow(NewInt(3), NewInt(3), NewInt(30))
	outer.MustAppendRow(NewInt(4), NewInt(1), NewInt(40))
	db.AddTable(outer)

	inner := NewTable("inner_t",
		Column{Name: "ik", Type: TypeInt},
		Column{Name: "v", Type: TypeInt},
		Column{Name: "w", Type: TypeInt},
	)
	inner.MustAppendRow(NewInt(1), NewInt(100), NewInt(7))
	inner.MustAppendRow(NewInt(1), NewInt(200), Null())
	inner.MustAppendRow(NewInt(2), NewInt(300), NewInt(9))
	inner.MustAppendRow(NewInt(9), Null(), NewInt(5))
	db.AddTable(inner)
	return db
}

// TestSubqueryEmptyResult pins the empty-sub-query contract on every
// engine: a scalar sub-query over no rows is NULL (so comparisons against
// it are UNKNOWN, not errors), IN over an empty set is plain FALSE (and
// NOT IN plain TRUE, even for NULL probes — the empty set short-circuits
// the ternary rule), and EXISTS is FALSE.
func TestSubqueryEmptyResult(t *testing.T) {
	db := subqueryDB()

	sql := "SELECT id, (SELECT MIN(v) FROM inner_t WHERE ik = 42) AS m FROM outer_t ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1|NULL", "2|NULL", "3|NULL", "4|NULL"})

	sql = "SELECT id FROM outer_t WHERE a > (SELECT v FROM inner_t WHERE ik = 42) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{})

	sql = "SELECT id, a IN (SELECT v FROM inner_t WHERE ik = 42) AS p FROM outer_t ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1|false", "2|false", "3|false", "4|false"})

	sql = "SELECT id FROM outer_t WHERE a NOT IN (SELECT v FROM inner_t WHERE ik = 42) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1", "2", "3", "4"})

	sql = "SELECT id FROM outer_t WHERE EXISTS (SELECT 1 FROM inner_t WHERE ik = 42) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{})
}

// TestScalarSubqueryMultiRowParity pins the scalar-sub-query cardinality
// behaviour across paradigms: a scalar sub-query returning several rows
// is answered from its first row on every engine — the differential
// matrix only works if the engines agree on the lenient behaviour, not
// each pick their own.
func TestScalarSubqueryMultiRowParity(t *testing.T) {
	db := subqueryDB()

	// ik = 1 has two rows (v = 100, 200) in insertion order.
	sql := "SELECT id, a + (SELECT v FROM inner_t WHERE ik = 1) AS p FROM outer_t ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1|110", "2|NULL", "3|130", "4|140"})

	sql = "SELECT id FROM outer_t WHERE a < (SELECT v FROM inner_t) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1", "3", "4"})
}

// TestNullBearingInSubquery pins the ternary IN contract against
// NULL-bearing sub-query sets: a probe that misses a set containing NULL
// is UNKNOWN (rejected by WHERE, NULL in projection), and NOT IN against
// such a set can never be TRUE.
func TestNullBearingInSubquery(t *testing.T) {
	db := subqueryDB()

	// SELECT v WHERE ik <> 2 yields {100, 200, NULL}.
	sql := "SELECT id, a IN (SELECT v FROM inner_t WHERE ik <> 2) AS p FROM outer_t ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1|NULL", "2|NULL", "3|NULL", "4|NULL"})

	sql = "SELECT id FROM outer_t WHERE a NOT IN (SELECT v FROM inner_t WHERE ik <> 2) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{})

	// Against the NULL-free view {100, 300} the same probes decide cleanly.
	sql = "SELECT id FROM outer_t WHERE a NOT IN (SELECT v FROM inner_t WHERE w > 6) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1", "3", "4"})
}

// TestCorrelatedExistsEmptyOuter pins correlated EXISTS/NOT EXISTS and
// correlated scalar aggregates when the outer side is empty after
// filtering: the decorrelated engines must not trip over building an
// apply state nobody probes, and all engines return zero rows without
// error.
func TestCorrelatedExistsEmptyOuter(t *testing.T) {
	db := subqueryDB()

	sql := "SELECT id FROM outer_t WHERE id > 90 AND EXISTS (SELECT 1 FROM inner_t WHERE ik = k) ORDER BY id"
	res := runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{})

	sql = "SELECT id FROM outer_t WHERE id > 90 AND a < (SELECT SUM(v) FROM inner_t WHERE ik = k) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{})

	// The non-degenerate run of the same correlated shapes, for contrast:
	// k = 1 and 2 have inner matches, k = 3 has none; outer row 2 probes
	// with a = NULL.
	sql = "SELECT id FROM outer_t WHERE EXISTS (SELECT 1 FROM inner_t WHERE ik = k) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1", "2", "4"})

	sql = "SELECT id FROM outer_t WHERE NOT EXISTS (SELECT 1 FROM inner_t WHERE ik = k) ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"3"})

	sql = "SELECT id, (SELECT COUNT(v) FROM inner_t WHERE ik = k) AS c FROM outer_t ORDER BY id"
	res = runAllEngines(t, db, sql)
	expectRows(t, sql, res, []string{"1|2", "2|1", "3|0", "4|2"})
}
