// Package sqalpel is a Go reproduction of "SQALPEL: A database performance
// platform" (CIDR 2019): discriminative performance benchmarking driven by a
// query-space grammar, plus the platform to collect, manage and share the
// resulting performance facts.
//
// The implementation lives under internal/ (ARCHITECTURE.md maps each paper
// section onto the packages):
//
//   - internal/core is the public façade (projects, pools, targets, search,
//     analytics); start there.
//   - internal/grammar, internal/derive and internal/pool implement the
//     query-space DSL, the SQL-to-grammar conversion and the alter / expand /
//     prune morphing strategies.
//   - internal/metrics and internal/sched form the measurement plane:
//     repetition discipline with context cancellation and per-repetition
//     timeouts, fanned out across a worker pool with a result cache keyed by
//     (target, normalized SQL). The guided search is deterministic at any
//     worker count — parallelism changes wall-clock, never the findings.
//   - internal/engine, internal/vexec, internal/cexec, internal/datagen and
//     internal/workload are the execution substrate: the engine registry
//     spans six engines across four SQL execution paradigms with genuinely
//     different performance profiles — tuplestore 1.0 (tuple-at-a-time),
//     columba 1.0/2.0 (column-at-a-time), vektor 1.0/2.0 (the
//     batch-vectorized executor built on internal/vexec) and fusil 1.0 (the
//     data-centric compiled executor built on internal/cexec) — plus
//     deterministic TPC-H / SSB / airtraffic data generators and the
//     corresponding query workloads. The typed data layer the vectorized
//     and compiled engines scan is encoded at import: dictionary-encoded
//     string columns (predicates, joins and group-bys run on integer
//     codes) and per-block zone maps that let every scan skip blocks its
//     pushed-down predicates prove empty, deterministically at any worker
//     count.
//   - internal/trace is the observability plane: the EXPLAIN plan-JSON
//     document and the plan-derived operator-id scheme every engine keys its
//     execution spans by, so traces from different paradigms compare
//     operator by operator (sqalpel explain -run prints them; the webui
//     renders them side by side; tracing is opt-in and allocation-free when
//     off).
//   - internal/server, internal/webui, internal/repository, internal/catalog
//     and internal/driver form the sharing platform (projects, access
//     control, the task queue with batch leasing and lease-expiry re-queue,
//     results, analytics pages) and its experiment driver, which pulls task
//     batches and measures them on its own worker pool so many drivers can
//     crowd-source one experiment without double-measuring. The repository
//     is a sharded, write-ahead-logged store: mutations are fsynced to
//     their project shard's log before they return, restart recovers from
//     snapshot plus log replay, and a crash-point fault-injection harness
//     proves that kill -9 at any record boundary loses no acknowledged
//     measurement and double-leases no task.
//   - internal/lint and cmd/sqalpel-vet are the enforced-invariants plane:
//     five go/analysis-style analyzers (mapiterdet, lockmarshal,
//     sqlsemroute, tracenilalloc, walack) that mechanically hold the tree
//     to the determinism, lock-discipline, NULL-semantics, trace-seam and
//     WAL-durability contracts the earlier PRs established, as a blocking
//     CI gate (scripts/lint.sh, or go vet -vettool). See ARCHITECTURE.md,
//     "Enforced invariants".
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper plus the scheduler scaling table; EXPERIMENTS.md records the
// measured outcomes next to the published ones.
package sqalpel
