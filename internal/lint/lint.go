// Package lint is the project-specific static-analysis suite: five
// analyzers on the go/analysis model that mechanically enforce invariants
// this repository has already paid for once in bug-hunt time. Each
// analyzer encodes the contract that a past PR established and a past bug
// violated:
//
//	mapiterdet    determinism   plans/traces/fingerprints must not depend
//	                            on map iteration order (PR 6's
//	                            liftCommonOrConjuncts bug class)
//	lockmarshal   concurrency   no marshalling/file I/O under a write lock
//	                            in the repository outside the WAL and
//	                            checkpoint seams (PR 5's Save race class)
//	sqlsemroute   NULL logic    executors route ternary comparisons and
//	                            connectives through internal/sqlsem (PR 5)
//	tracenilalloc perf          trace ids/spans built only behind a tracer
//	                            nil-check, keeping the disabled path at
//	                            zero allocations (PR 6's seam contract)
//	walack        durability    repository mutations acknowledge success
//	                            only after WAL append+fsync (PR 7)
//
// The analysis framework itself (internal/lint/analysis, loader,
// analysistest, lintutil) is a small stdlib-only re-implementation of the
// golang.org/x/tools/go/analysis surface these analyzers need, because
// this build environment has no module network access. Each analyzer's
// Run takes the same *Pass shape as the real framework, so porting to
// x/tools is a one-line import change per file.
//
// Every analyzer honours an inline suppression comment of the form
// //lint:<token> <reason> on the flagged line or the line above it. The
// reason is mandatory: a bare token is ignored, so every suppression in
// the tree documents *why* the invariant is deliberately waived there.
package lint

import (
	"sqalpel/internal/lint/analysis"
	"sqalpel/internal/lint/lockmarshal"
	"sqalpel/internal/lint/mapiterdet"
	"sqalpel/internal/lint/sqlsemroute"
	"sqalpel/internal/lint/tracenilalloc"
	"sqalpel/internal/lint/walack"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapiterdet.Analyzer,
		lockmarshal.Analyzer,
		sqlsemroute.Analyzer,
		tracenilalloc.Analyzer,
		walack.Analyzer,
	}
}
