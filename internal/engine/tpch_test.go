package engine_test

import (
	"testing"
	"time"

	"sqalpel/internal/datagen"
	"sqalpel/internal/engine"
	"sqalpel/internal/workload"
)

// tpchDB is built once for the whole test package; SF 0.001 keeps the
// correlated TPC-H queries comfortably fast while still exercising joins of
// thousands of rows.
var tpchDB = datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.001, Seed: 7})

// TestTPCHBothEnginesAgree runs all 22 TPC-H queries on the row and the
// column engine and requires identical (order-insensitive) results. This is
// the core conformance test of the execution substrate: sqalpel's
// discriminative benchmarking is only meaningful when the systems under
// comparison compute the same answers.
func TestTPCHBothEnginesAgree(t *testing.T) {
	row := engine.NewRowEngine()
	col := engine.NewColEngine()
	opts := engine.ExecOptions{Timeout: 2 * time.Minute}
	for _, q := range workload.TPCH() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			resRow, err := row.Execute(tpchDB, q.SQL, opts)
			if err != nil {
				t.Fatalf("row engine: %v", err)
			}
			resCol, err := col.Execute(tpchDB, q.SQL, opts)
			if err != nil {
				t.Fatalf("col engine: %v", err)
			}
			if resRow.Fingerprint() != resCol.Fingerprint() {
				t.Errorf("engines disagree on %s:\nrow engine (%d rows)\ncol engine (%d rows)",
					q.ID, resRow.NumRows(), resCol.NumRows())
			}
		})
	}
}

// TestTPCHResultShapes spot-checks well understood properties of individual
// TPC-H answers so that agreement between engines cannot hide a shared bug.
func TestTPCHResultShapes(t *testing.T) {
	col := engine.NewColEngine()
	opts := engine.ExecOptions{Timeout: 2 * time.Minute}

	q1, _ := workload.TPCHQuery("Q1")
	res, err := col.Execute(tpchDB, q1.SQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Q1 groups by (returnflag, linestatus): at most 6 combinations exist
	// and at least 3 are always populated.
	if res.NumRows() < 3 || res.NumRows() > 6 {
		t.Errorf("Q1 groups = %d, want between 3 and 6", res.NumRows())
	}
	if len(res.Columns) != 10 {
		t.Errorf("Q1 columns = %d, want 10", len(res.Columns))
	}
	// sum_charge >= sum_disc_price >= 0 for every group.
	for _, r := range res.Rows {
		discPrice := r[4].Float()
		charge := r[5].Float()
		if charge < discPrice || discPrice <= 0 {
			t.Errorf("Q1 invariant violated: disc_price=%f charge=%f", discPrice, charge)
		}
		// avg_qty must be within the quantity domain.
		if r[6].Float() < 1 || r[6].Float() > 50 {
			t.Errorf("Q1 avg_qty out of range: %v", r[6])
		}
	}

	q3, _ := workload.TPCHQuery("Q3")
	res, err = col.Execute(tpchDB, q3.SQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() > 10 {
		t.Errorf("Q3 has LIMIT 10, got %d rows", res.NumRows())
	}
	// Revenue must be sorted descending.
	for i := 1; i < res.NumRows(); i++ {
		if res.Rows[i][1].Float() > res.Rows[i-1][1].Float()+0.0001 {
			t.Error("Q3 revenue not sorted descending")
		}
	}

	q6, _ := workload.TPCHQuery("Q6")
	res, err = col.Execute(tpchDB, q6.SQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("Q6 rows = %d, want 1", res.NumRows())
	}
	if res.Rows[0][0].IsNull() || res.Rows[0][0].Float() <= 0 {
		t.Errorf("Q6 revenue should be positive, got %v", res.Rows[0][0])
	}

	q4, _ := workload.TPCHQuery("Q4")
	res, err = col.Execute(tpchDB, q4.SQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() > 5 {
		t.Errorf("Q4 groups by order priority (5 values), got %d rows", res.NumRows())
	}

	q13, _ := workload.TPCHQuery("Q13")
	res, err = col.Execute(tpchDB, q13.SQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Q13 is a left join: customers without orders must contribute a
	// c_count = 0 bucket.
	foundZero := false
	var total int64
	for _, r := range res.Rows {
		if r[0].Int() == 0 {
			foundZero = true
		}
		total += r[1].Int()
	}
	if !foundZero {
		t.Error("Q13 should have a zero-orders bucket")
	}
	if total != int64(tpchDB.Table("customer").NumRows()) {
		t.Errorf("Q13 customer distribution sums to %d, want %d", total, tpchDB.Table("customer").NumRows())
	}

	q22, _ := workload.TPCHQuery("Q22")
	res, err = col.Execute(tpchDB, q22.SQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() > 7 {
		t.Errorf("Q22 groups by 7 country codes at most, got %d", res.NumRows())
	}
}

// TestTPCHColumnPruningHelps confirms the column engine touches fewer tuple
// values than the row engine on a narrow projection over the wide lineitem
// table — the structural reason the two engines discriminate.
func TestTPCHColumnPruningHelps(t *testing.T) {
	q6, _ := workload.TPCHQuery("Q6")
	row, err := engine.NewRowEngine().Execute(tpchDB, q6.SQL, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := engine.NewColEngine().Execute(tpchDB, q6.SQL, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats.TuplesMaterialized == 0 {
		t.Fatal("row engine should materialise tuples")
	}
	if col.Stats.TuplesMaterialized != 0 {
		t.Errorf("column engine materialised %d tuple values on a pruned scan", col.Stats.TuplesMaterialized)
	}
}

// TestSSBAndAirtrafficRun executes the other two bootstrap workloads on both
// engines.
func TestSSBAndAirtrafficRun(t *testing.T) {
	ssbDB := datagen.SSB(datagen.SSBOptions{ScaleFactor: 0.0003})
	airDB := datagen.Airtraffic(datagen.AirtrafficOptions{Flights: 2000})
	row := engine.NewRowEngine()
	col := engine.NewColEngine()
	opts := engine.ExecOptions{Timeout: time.Minute}
	for _, q := range workload.SSB() {
		r1, err := row.Execute(ssbDB, q.SQL, opts)
		if err != nil {
			t.Fatalf("%s row: %v", q.ID, err)
		}
		r2, err := col.Execute(ssbDB, q.SQL, opts)
		if err != nil {
			t.Fatalf("%s col: %v", q.ID, err)
		}
		if r1.Fingerprint() != r2.Fingerprint() {
			t.Errorf("%s: engines disagree", q.ID)
		}
	}
	for _, q := range workload.Airtraffic() {
		r1, err := row.Execute(airDB, q.SQL, opts)
		if err != nil {
			t.Fatalf("%s row: %v", q.ID, err)
		}
		r2, err := col.Execute(airDB, q.SQL, opts)
		if err != nil {
			t.Fatalf("%s col: %v", q.ID, err)
		}
		if r1.Fingerprint() != r2.Fingerprint() {
			t.Errorf("%s: engines disagree", q.ID)
		}
	}
}
