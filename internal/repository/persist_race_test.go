package repository

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sqalpel/internal/trace"
)

// sampleTrace builds a small but representative QueryTrace for persistence
// tests.
func sampleTrace(i int) *trace.QueryTrace {
	return &trace.QueryTrace{
		SchemaVersion: trace.SchemaVersion,
		Engine:        "vektor-1.0",
		Spans: []trace.Span{
			{OpID: "scan.0", Kind: trace.KindScan, WallNS: int64(1000 + i), Rows: 59986, Batches: 59},
			{OpID: "filter.0", Kind: trace.KindFilter, WallNS: int64(500 + i), Rows: 114, Batches: 59},
			{OpID: "aggregate", Kind: trace.KindAgg, WallNS: 200, Rows: 4, Calls: 1, AllocBytes: 2048},
		},
	}
}

// TestSaveConcurrentWithMutators hammers Save against the mutators that
// write through the shared *Project/*Task/*Result pointers the snapshot
// holds. Before Save marshalled under the read lock, json.MarshalIndent ran
// after RUnlock and raced with AppendQueries/AddResult/RequestTask; run
// with -race this test pins the fix.
func TestSaveConcurrentWithMutators(t *testing.T) {
	s, pub, _ := fixture(t)
	ownerKey := s.Project(pub.ID).Contributors[0].Key
	dir := t.TempDir()

	const rounds = 50
	var wg sync.WaitGroup
	wg.Add(5)

	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := s.Save(dir); err != nil {
				t.Errorf("Save: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			err := s.AppendQueries("martin", pub.ID, 1, []QueryRecord{
				{ID: 100 + i, SQL: fmt.Sprintf("SELECT %d FROM nation", i), Strategy: "random", Components: 2},
			})
			if err != nil {
				t.Errorf("AppendQueries: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := s.AddResult(ownerKey, 1, 1, "columba-1.0", "laptop", []float64{0.1}, "", map[string]string{"i": fmt.Sprint(i)}); err != nil {
				t.Errorf("AddResult: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		// Trace-bearing submissions walk the same shared *Result pointers the
		// snapshot marshals; appending them during Save exercises the
		// trace field under -race too.
		for i := 0; i < rounds; i++ {
			if _, err := s.AddResultTraced(ownerKey, 1, 1, "vektor-1.0", "laptop", []float64{0.05}, "", nil, sampleTrace(i)); err != nil {
				t.Errorf("AddResultTraced: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			// Task leasing mutates *Task fields (status, lease deadline)
			// reachable from the snapshot too.
			task, err := s.RequestTask(ownerKey, 1, "columba-1.0", "laptop")
			if err != nil {
				t.Errorf("RequestTask: %v", err)
				return
			}
			if task == nil {
				continue
			}
			if _, err := s.CompleteTask(task.ID, ownerKey, []float64{0.2}, "", nil); err != nil && err != ErrLeaseLost {
				t.Errorf("CompleteTask: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// The store must still round-trip cleanly after the stampede.
	if err := s.Save(dir); err != nil {
		t.Fatalf("final Save: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after concurrent saves: %v", err)
	}
	if loaded.Project(pub.ID) == nil {
		t.Error("loaded store lost the project")
	}
}

// TestTraceSurvivesSaveLoad pins the persistence of operator traces: a
// trace-bearing result must come back span for span after a Save/Load round
// trip, and untraced results must stay untraced.
func TestTraceSurvivesSaveLoad(t *testing.T) {
	s, pub, _ := fixture(t)
	ownerKey := s.Project(pub.ID).Contributors[0].Key
	dir := t.TempDir()

	want := sampleTrace(7)
	traced, err := s.AddResultTraced(ownerKey, 1, 1, "vektor-1.0", "laptop", []float64{0.05, 0.04}, "", nil, want)
	if err != nil {
		t.Fatal(err)
	}
	untraced, err := s.AddResult(ownerKey, 1, 1, "columba-1.0", "laptop", []float64{0.2}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var gotTraced, gotUntraced *Result
	for _, r := range loaded.Results("martin", pub.ID) {
		switch r.ID {
		case traced.ID:
			gotTraced = r
		case untraced.ID:
			gotUntraced = r
		}
	}
	if gotTraced == nil || gotUntraced == nil {
		t.Fatal("results lost in the round trip")
	}
	if gotTraced.Trace == nil {
		t.Fatal("trace lost in the round trip")
	}
	if !reflect.DeepEqual(gotTraced.Trace, want) {
		t.Errorf("trace changed in the round trip:\n got %+v\nwant %+v", gotTraced.Trace, want)
	}
	if gotUntraced.Trace != nil {
		t.Errorf("untraced result grew a trace: %+v", gotUntraced.Trace)
	}
}

// TestCheckpointConcurrentWithMutators is the sharded-durable-store version
// of the stampede above: drivers hammer several projects (hence several
// shards and several WALs) while checkpoints snapshot and compact each
// partition in place. Run with -race this pins that marshalling still
// happens under the partition locks and that the WAL append path does not
// race with compaction's sink swap. The store must recover completely
// afterwards.
func TestCheckpointConcurrentWithMutators(t *testing.T) {
	dir := t.TempDir()
	s, err := open(dir, 4, quietLogf, nosyncFactory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterUser("martin", "martin@example.org"); err != nil {
		t.Fatal(err)
	}
	type target struct {
		projectID, expID int
		key              string
	}
	var targets []target
	for i := 0; i < 4; i++ {
		p, err := s.CreateProject("martin", fmt.Sprintf("stampede-%d", i), "", true)
		if err != nil {
			t.Fatal(err)
		}
		e, err := s.AddExperiment("martin", p.ID, "exp", "SELECT 1", "")
		if err != nil {
			t.Fatal(err)
		}
		var qs []QueryRecord
		for q := 1; q <= 64; q++ {
			qs = append(qs, QueryRecord{ID: q, SQL: fmt.Sprintf("SELECT %d", q)})
		}
		if err := s.ReplaceQueries("martin", p.ID, e.ID, qs); err != nil {
			t.Fatal(err)
		}
		targets = append(targets, target{p.ID, e.ID, p.Contributors[0].Key})
	}

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(len(targets) + 2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Errorf("Checkpoint: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tg := targets[i%len(targets)]
			if _, err := s.AddResultTraced(tg.key, tg.expID, 1, "vektor-1.0", "cloud", []float64{0.05}, "", nil, sampleTrace(i)); err != nil {
				t.Errorf("AddResultTraced: %v", err)
				return
			}
		}
	}()
	for _, tg := range targets {
		go func(tg target) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tasks, err := s.RequestTasks(tg.key, tg.expID, "columba-1.0", "laptop", 2)
				if err != nil {
					t.Errorf("RequestTasks: %v", err)
					return
				}
				for _, task := range tasks {
					if _, err := s.CompleteTask(task.ID, tg.key, []float64{0.2}, "", nil); err != nil {
						t.Errorf("CompleteTask: %v", err)
						return
					}
				}
			}
		}(tg)
	}
	wg.Wait()

	// Every acknowledged mutation must come back after a reopen.
	wantResults := map[int]int{}
	for _, tg := range targets {
		wantResults[tg.projectID] = len(s.Results("martin", tg.projectID))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := open(dir, 4, quietLogf, nosyncFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	for _, tg := range targets {
		if got := len(recovered.Results("martin", tg.projectID)); got != wantResults[tg.projectID] {
			t.Errorf("project %d: recovered %d results, want %d", tg.projectID, got, wantResults[tg.projectID])
		}
	}
}
