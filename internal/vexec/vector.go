package vexec

import "fmt"

// Kind enumerates the vector element kinds. They mirror the runtime value
// kinds of internal/engine so results can be converted loss-free.
type Kind uint8

// Vector kinds.
const (
	KindNull   Kind = iota // every row is NULL; no payload slice
	KindBool               // Ints holds 0/1
	KindInt                // Ints
	KindFloat              // Floats (plus optional per-row IsInt duality mask)
	KindString             // Strs
	KindDate               // Ints holds days since 1970-01-01
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	default:
		return "unknown"
	}
}

// Vector is one typed column of a batch. Exactly one payload slice is
// populated according to Kind; Nulls is nil when no row is NULL.
//
// A KindFloat vector may additionally carry an IsInt mask: rows flagged
// there are semantically SQL integers (their exact value lives in Ints[i]).
// This per-row duality is what lets integer-preserving division and CASE
// expressions over mixed numeric arms reproduce the boxed-value semantics of
// internal/engine without giving up unboxed storage for the common case.
// A KindString vector may instead be dictionary-encoded: Dict holds the
// sorted distinct values and Codes the per-row indexes into it (Strs is nil
// then). Code order equals value order, so comparison, grouping and sorting
// can run on codes; StrAt and At materialize strings lazily. Null rows keep
// code 0 so Codes is always indexable.
type Vector struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool
	IsInt  []bool
	Dict   *Dictionary
	Codes  []uint32
	n      int
	// constVal marks a vector broadcast from a single literal (or a
	// materialized uncorrelated scalar sub-query): every row carries the
	// same value, which unlocks the dictionary fast paths in cmpVec,
	// likeVec and IN-list evaluation.
	constVal bool
}

// NewVector allocates a vector of the given kind and length with all payload
// cells zeroed.
func NewVector(kind Kind, n int) *Vector {
	v := &Vector{Kind: kind, n: n}
	switch kind {
	case KindInt, KindDate, KindBool:
		v.Ints = make([]int64, n)
	case KindFloat:
		v.Floats = make([]float64, n)
	case KindString:
		v.Strs = make([]string, n)
	}
	return v
}

// NewNullVector returns an all-NULL vector of length n.
func NewNullVector(n int) *Vector { return &Vector{Kind: KindNull, n: n} }

// Len returns the number of rows.
func (v *Vector) Len() int { return v.n }

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool {
	if v.Kind == KindNull {
		return true
	}
	return v.Nulls != nil && v.Nulls[i]
}

// SetNull marks row i as NULL, allocating the bitmap lazily.
func (v *Vector) SetNull(i int) {
	if v.Nulls == nil {
		v.Nulls = make([]bool, v.n)
	}
	v.Nulls[i] = true
}

// HasNulls reports whether any row is NULL.
func (v *Vector) HasNulls() bool {
	if v.Kind == KindNull {
		return v.n > 0
	}
	for _, b := range v.Nulls {
		if b {
			return true
		}
	}
	return false
}

// rowIsInt reports whether row i is semantically a SQL integer.
func (v *Vector) rowIsInt(i int) bool {
	if v.Kind == KindInt {
		return true
	}
	return v.Kind == KindFloat && v.IsInt != nil && v.IsInt[i]
}

// Gather builds a new vector containing the rows of v listed in sel.
func (v *Vector) Gather(sel []int) *Vector {
	out := &Vector{Kind: v.Kind, n: len(sel)}
	switch v.Kind {
	case KindNull:
		return out
	case KindInt, KindDate, KindBool:
		out.Ints = make([]int64, len(sel))
		for i, ri := range sel {
			out.Ints[i] = v.Ints[ri]
		}
	case KindFloat:
		out.Floats = make([]float64, len(sel))
		for i, ri := range sel {
			out.Floats[i] = v.Floats[ri]
		}
		if v.IsInt != nil {
			out.IsInt = make([]bool, len(sel))
			out.Ints = make([]int64, len(sel))
			for i, ri := range sel {
				out.IsInt[i] = v.IsInt[ri]
				out.Ints[i] = v.Ints[ri]
			}
		}
	case KindString:
		if v.Dict != nil {
			out.Dict = v.Dict
			out.Codes = make([]uint32, len(sel))
			for i, ri := range sel {
				out.Codes[i] = v.Codes[ri]
			}
			break
		}
		out.Strs = make([]string, len(sel))
		for i, ri := range sel {
			out.Strs[i] = v.Strs[ri]
		}
	}
	if v.Nulls != nil {
		out.Nulls = make([]bool, len(sel))
		for i, ri := range sel {
			out.Nulls[i] = v.Nulls[ri]
		}
	}
	return out
}

// GatherNullable is Gather where index -1 yields a NULL row — the
// null-extended side of outer joins.
func (v *Vector) GatherNullable(sel []int) *Vector {
	out := &Vector{Kind: v.Kind, n: len(sel)}
	switch v.Kind {
	case KindInt, KindDate, KindBool:
		out.Ints = make([]int64, len(sel))
	case KindFloat:
		out.Floats = make([]float64, len(sel))
		if v.IsInt != nil {
			out.IsInt = make([]bool, len(sel))
			out.Ints = make([]int64, len(sel))
		}
	case KindString:
		if v.Dict != nil {
			out.Dict = v.Dict
			out.Codes = make([]uint32, len(sel))
		} else {
			out.Strs = make([]string, len(sel))
		}
	}
	for i, ri := range sel {
		if ri < 0 || v.IsNull(ri) {
			out.SetNull(i)
			continue
		}
		switch v.Kind {
		case KindInt, KindDate, KindBool:
			out.Ints[i] = v.Ints[ri]
		case KindFloat:
			out.Floats[i] = v.Floats[ri]
			if v.IsInt != nil && v.IsInt[ri] {
				out.IsInt[i] = true
				out.Ints[i] = v.Ints[ri]
			}
		case KindString:
			if v.Dict != nil {
				out.Codes[i] = v.Codes[ri]
			} else {
				out.Strs[i] = v.Strs[ri]
			}
		}
	}
	return out
}

// Slice returns a zero-copy window [lo, hi) of the vector; the payload
// slices are shared with v, which is safe because vectors are immutable once
// published.
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{Kind: v.Kind, n: hi - lo}
	if v.Ints != nil {
		out.Ints = v.Ints[lo:hi]
	}
	if v.Floats != nil {
		out.Floats = v.Floats[lo:hi]
	}
	if v.Strs != nil {
		out.Strs = v.Strs[lo:hi]
	}
	if v.Codes != nil {
		out.Dict = v.Dict
		out.Codes = v.Codes[lo:hi]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	if v.IsInt != nil {
		out.IsInt = v.IsInt[lo:hi]
	}
	return out
}

// sliceInto overwrites dst with the zero-copy window [lo, hi) of src — the
// allocation-free form of Slice used by the scan's reusable frame.
func sliceInto(dst, src *Vector, lo, hi int) {
	*dst = Vector{Kind: src.Kind, n: hi - lo}
	if src.Ints != nil {
		dst.Ints = src.Ints[lo:hi]
	}
	if src.Floats != nil {
		dst.Floats = src.Floats[lo:hi]
	}
	if src.Strs != nil {
		dst.Strs = src.Strs[lo:hi]
	}
	if src.Codes != nil {
		dst.Dict = src.Dict
		dst.Codes = src.Codes[lo:hi]
	}
	if src.Nulls != nil {
		dst.Nulls = src.Nulls[lo:hi]
	}
	if src.IsInt != nil {
		dst.IsInt = src.IsInt[lo:hi]
	}
}

// scalar is one SQL value extracted from a vector row: the boxed form used
// at the block boundaries of the executor (group accumulators, sort keys,
// result conversion). kindNull is represented by Kind == KindNull.
type scalar struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

var nullScalar = scalar{kind: KindNull}

// At extracts row i as a scalar.
func (v *Vector) At(i int) scalar {
	if v.IsNull(i) {
		return nullScalar
	}
	switch v.Kind {
	case KindInt, KindDate, KindBool:
		return scalar{kind: v.Kind, i: v.Ints[i]}
	case KindFloat:
		if v.IsInt != nil && v.IsInt[i] {
			return scalar{kind: KindInt, i: v.Ints[i]}
		}
		return scalar{kind: KindFloat, f: v.Floats[i]}
	case KindString:
		if v.Dict != nil {
			return scalar{kind: KindString, s: v.Dict.Vals[v.Codes[i]]}
		}
		return scalar{kind: KindString, s: v.Strs[i]}
	default:
		return nullScalar
	}
}

// ValueAt decomposes row i into its effective kind and payload, the form
// consumers box back into their own value type. NULL rows report KindNull;
// rows of a float vector flagged in the IsInt duality mask report KindInt
// with their exact integer payload.
func (v *Vector) ValueAt(i int) (Kind, int64, float64, string) {
	s := v.At(i)
	return s.kind, s.i, s.f, s.s
}

// ValueBuilder accumulates decomposed values of possibly mixed numeric
// kinds and finalizes them into one typed vector. It is the exported face
// of the internal builder, used by the engine adapter's column-import shim
// so decoding boxed storage and merging expression results share a single
// kind-promotion algorithm.
type ValueBuilder struct {
	b builder
}

// NewValueBuilder creates a builder for the given expected row count.
func NewValueBuilder(capacity int) *ValueBuilder {
	return &ValueBuilder{b: builder{vals: make([]scalar, 0, capacity)}}
}

// Append adds one value in ValueAt's decomposed form; the payload slot
// matching the kind is read, the others are ignored.
func (vb *ValueBuilder) Append(kind Kind, i int64, f float64, s string) {
	switch kind {
	case KindInt, KindDate, KindBool:
		vb.b.append(scalar{kind: kind, i: i})
	case KindFloat:
		vb.b.append(scalar{kind: kind, f: f})
	case KindString:
		vb.b.append(scalar{kind: kind, s: s})
	default:
		vb.b.append(nullScalar)
	}
}

// AppendNull adds a NULL row.
func (vb *ValueBuilder) AppendNull() { vb.b.append(nullScalar) }

// Finalize builds the typed vector; mixed incompatible kinds report
// ErrUnsupported.
func (vb *ValueBuilder) Finalize() (*Vector, error) { return vb.b.finalize() }

// builder accumulates scalars of possibly mixed numeric kinds and finalizes
// them into one typed vector, promoting {int,float} mixes to a KindFloat
// vector with an IsInt duality mask. Incompatible mixes (string next to
// numeric, bool next to int, ...) report ErrUnsupported so the caller can
// fall back to the interpreter.
type builder struct {
	vals []scalar
}

func newBuilder(capacity int) *builder {
	return &builder{vals: make([]scalar, 0, capacity)}
}

func (b *builder) append(s scalar) { b.vals = append(b.vals, s) }

func (b *builder) len() int { return len(b.vals) }

// finalize builds the vector.
func (b *builder) finalize() (*Vector, error) {
	var hasInt, hasFloat, hasStr, hasDate, hasBool bool
	for _, s := range b.vals {
		switch s.kind {
		case KindInt:
			hasInt = true
		case KindFloat:
			hasFloat = true
		case KindString:
			hasStr = true
		case KindDate:
			hasDate = true
		case KindBool:
			hasBool = true
		}
	}
	classes := 0
	for _, c := range []bool{hasInt || hasFloat, hasStr, hasDate, hasBool} {
		if c {
			classes++
		}
	}
	if classes > 1 {
		return nil, fmt.Errorf("%w: mixed value kinds in one column", ErrUnsupported)
	}
	n := len(b.vals)
	var kind Kind
	switch {
	case hasStr:
		kind = KindString
	case hasDate:
		kind = KindDate
	case hasBool:
		kind = KindBool
	case hasFloat:
		kind = KindFloat
	case hasInt:
		kind = KindInt
	default:
		return NewNullVector(n), nil
	}
	out := NewVector(kind, n)
	mixed := hasInt && hasFloat
	if mixed {
		out.Ints = make([]int64, n)
		out.IsInt = make([]bool, n)
	}
	for i, s := range b.vals {
		if s.kind == KindNull {
			out.SetNull(i)
			continue
		}
		switch kind {
		case KindInt, KindDate, KindBool:
			out.Ints[i] = s.i
		case KindFloat:
			if s.kind == KindInt {
				out.Floats[i] = float64(s.i)
				if mixed {
					out.Ints[i] = s.i
					out.IsInt[i] = true
				}
			} else {
				out.Floats[i] = s.f
			}
		case KindString:
			out.Strs[i] = s.s
		}
	}
	return out, nil
}
