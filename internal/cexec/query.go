package cexec

import (
	"fmt"
	"sort"
	"strings"

	"sqalpel/internal/sqlparser"
	"sqalpel/internal/trace"
	"sqalpel/internal/vexec"
)

// This file finishes a pipeline: projection, hash aggregation (folded
// directly inside the push loop's consumer — the aggregation IS the
// pipeline's terminal closure), HAVING, and the shared DISTINCT / ORDER BY
// / LIMIT epilogue. Resolution rules, evaluation order and error
// surfacing mirror the vectorized executor's.

// projItem is one resolved projection element.
type projItem struct {
	name string
	expr sqlparser.Expr
	star bool
}

// expandProjection resolves the projection list against the input schema.
func expandProjection(stmt *sqlparser.SelectStatement, meta []colMeta) ([]projItem, []int) {
	var items []projItem
	var starCols []int
	for _, p := range stmt.Projection {
		if p.Star {
			items = append(items, projItem{star: true})
			for ci, m := range meta {
				if p.Qualifier == "" || strings.EqualFold(p.Qualifier, m.table) {
					starCols = append(starCols, ci)
				}
			}
			continue
		}
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = strings.ToLower(p.Expr.SQL())
			}
		}
		items = append(items, projItem{name: strings.ToLower(name), expr: p.Expr})
	}
	return items, starCols
}

// runRows executes a non-grouped query: drain the pipeline into rows,
// project column at a time, then run the shared epilogue. The pipeline is
// drained BEFORE the projection closures run — filter errors (which defer
// to the interpreter) must surface before projection errors (which are the
// query's own), exactly as in the vectorized executor, where the streaming
// filters run during materialization.
func (ex *executor) runRows(stmt *sqlparser.SelectStatement, pipe *pipeline, prefix string) (*Result, error) {
	var src [][]Scalar
	if err := pipe.run(func(row []Scalar) error {
		src = append(src, row)
		return nil
	}); err != nil {
		return nil, err
	}
	n := len(src)
	items, starCols := expandProjection(stmt, pipe.meta)
	sc := &scope{meta: pipe.meta}

	var tm trace.Timer
	if ex.traceOn(prefix) {
		tm = ex.tracer.Span(trace.ProjectID(prefix), trace.KindProject).Start()
	}
	var cols [][]Scalar
	var names []string
	for _, ci := range starCols {
		col := make([]Scalar, n)
		for r := 0; r < n; r++ {
			col[r] = src[r][ci]
		}
		cols = append(cols, col)
		names = append(names, pipe.meta[ci].name)
	}
	for _, it := range items {
		if it.star {
			continue
		}
		col, err := ex.projectCol(it.expr, sc, src)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		names = append(names, it.name)
	}
	tm.Done(int64(n))
	sortKeys, err := ex.orderKeys(stmt, items, cols, sc, src)
	if err != nil {
		return nil, err
	}
	return ex.epilogue(stmt, names, cols, sortKeys, n, prefix)
}

// projectCol compiles one expression and evaluates it over all rows.
// Errors are plain: projection is an unconditional context.
func (ex *executor) projectCol(e sqlparser.Expr, sc *scope, src [][]Scalar) ([]Scalar, error) {
	fn, err := ex.compile(e, sc)
	if err != nil {
		return nil, err
	}
	col := make([]Scalar, len(src))
	for r, row := range src {
		if col[r], err = fn(row); err != nil {
			return nil, err
		}
	}
	return col, nil
}

// aggSpec is one distinct aggregate call of the statement.
type aggSpec struct {
	call *sqlparser.FuncCall
	key  string
}

// collectAggregates gathers the distinct aggregate calls of the statement's
// projection, HAVING and ORDER BY.
func collectAggregates(stmt *sqlparser.SelectStatement) ([]aggSpec, error) {
	var specs []aggSpec
	seen := map[string]bool{}
	walk := func(e sqlparser.Expr) {
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			if f, ok := x.(*sqlparser.FuncCall); ok && f.IsAggregate() {
				key := f.SQL()
				if !seen[key] {
					seen[key] = true
					specs = append(specs, aggSpec{call: f, key: key})
				}
				return false
			}
			return true
		})
	}
	for _, p := range stmt.Projection {
		walk(p.Expr)
	}
	walk(stmt.Having)
	for _, o := range stmt.OrderBy {
		walk(o.Expr)
	}
	for _, s := range specs {
		name := strings.ToLower(s.call.Name)
		if s.call.Star && name != "count" {
			return nil, fmt.Errorf("%s(*) is not valid", name)
		}
		if !s.call.Star && len(s.call.Args) != 1 {
			return nil, fmt.Errorf("aggregate %s expects exactly 1 argument", name)
		}
	}
	return specs, nil
}

// collectCarriedRefs gathers the column references of projection, HAVING and
// ORDER BY that sit outside aggregate arguments; their first-row values per
// group reproduce the interpreter's "plain columns resolve against the first
// row of the group" behaviour. ORDER BY items that resolve as projection
// aliases sort by the output column instead and are not carried.
func collectCarriedRefs(stmt *sqlparser.SelectStatement) []*sqlparser.ColumnRef {
	var refs []*sqlparser.ColumnRef
	seen := map[string]bool{}
	walk := func(e sqlparser.Expr) {
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			if f, ok := x.(*sqlparser.FuncCall); ok && f.IsAggregate() {
				return false
			}
			if c, ok := x.(*sqlparser.ColumnRef); ok {
				key := refKey(c.Table, c.Column)
				if !seen[key] {
					seen[key] = true
					refs = append(refs, c)
				}
			}
			return true
		})
	}
	itemNames := map[string]bool{}
	for _, p := range stmt.Projection {
		if p.Star {
			continue
		}
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = p.Expr.SQL()
			}
		}
		itemNames[strings.ToLower(name)] = true
	}
	for _, p := range stmt.Projection {
		walk(p.Expr)
	}
	walk(stmt.Having)
	for _, o := range stmt.OrderBy {
		if cr, ok := o.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" && itemNames[strings.ToLower(cr.Column)] {
			continue
		}
		walk(o.Expr)
	}
	return refs
}

// groupState is the running state of one group.
type groupState struct {
	rows   int64
	accs   []*vexec.AggAccum
	firsts []Scalar
}

func newGroupState(specs []aggSpec, carried []*sqlparser.ColumnRef) *groupState {
	st := &groupState{accs: make([]*vexec.AggAccum, len(specs)), firsts: make([]Scalar, len(carried))}
	for i := range st.accs {
		st.accs[i] = vexec.NewAggAccum(specs[i].call.Distinct)
	}
	return st
}

// runGrouped executes a grouped query: the pipeline's consumer folds every
// row straight into its group's accumulators (no materialized input), then
// HAVING filters the groups, the groups project, and the shared epilogue
// finishes. Group rows are laid out [aggregates..., carried firsts...]
// with the scope mapping canonical aggregate SQL and reference keys to
// slots.
func (ex *executor) runGrouped(stmt *sqlparser.SelectStatement, pipe *pipeline, prefix string) (*Result, error) {
	var atm trace.Timer
	if ex.traceOn(prefix) {
		atm = ex.tracer.Span(trace.AggID(prefix), trace.KindAgg).Start()
	}
	specs, err := collectAggregates(stmt)
	if err != nil {
		return nil, err
	}
	carried := collectCarriedRefs(stmt)

	// The grouping keys, aggregate arguments and carried references compile
	// against the pipeline's row scope; their compile errors are plain but
	// LAZY — the vectorized executor only evaluates these expressions over
	// non-empty batches, so an empty pipeline must not surface them.
	rowSc := &scope{meta: pipe.meta}
	keyFns := make([]rowFn, len(stmt.GroupBy))
	var inErr error
	for i, g := range stmt.GroupBy {
		if keyFns[i], inErr = ex.compile(g, rowSc); inErr != nil {
			break
		}
	}
	argFns := make([]rowFn, len(specs))
	if inErr == nil {
		for i, s := range specs {
			if s.call.Star {
				continue
			}
			if argFns[i], inErr = ex.compile(s.call.Args[0], rowSc); inErr != nil {
				break
			}
		}
	}
	refFns := make([]rowFn, len(carried))
	if inErr == nil {
		for i, r := range carried {
			if refFns[i], inErr = ex.compileColumn(r, rowSc); inErr != nil {
				break
			}
		}
	}

	groups := map[string]int32{}
	var order []*groupState
	if len(stmt.GroupBy) == 0 {
		// Aggregates without GROUP BY form one global group even over an
		// empty input.
		order = append(order, newGroupState(specs, carried))
	}
	var buf []byte
	keyVals := make([]Scalar, len(keyFns))
	refVals := make([]Scalar, len(refFns))
	err = pipe.run(func(row []Scalar) error {
		if inErr != nil {
			return inErr
		}
		ex.stats.AggRows++
		for i, fn := range keyFns {
			var err error
			if keyVals[i], err = fn(row); err != nil {
				return err
			}
		}
		argVals := make([]Scalar, len(argFns))
		for i, fn := range argFns {
			if fn == nil {
				continue
			}
			var err error
			if argVals[i], err = fn(row); err != nil {
				return err
			}
		}
		for i, fn := range refFns {
			var err error
			if refVals[i], err = fn(row); err != nil {
				return err
			}
		}
		var st *groupState
		if len(stmt.GroupBy) == 0 {
			st = order[0]
		} else {
			buf = buf[:0]
			for _, kv := range keyVals {
				buf = vexec.AppendScalarKey(buf, kv)
				buf = append(buf, '|')
			}
			g, ok := groups[string(buf)]
			if !ok {
				g = int32(len(order))
				groups[string(buf)] = g
				st = newGroupState(specs, carried)
				copy(st.firsts, refVals)
				order = append(order, st)
			} else {
				st = order[g]
			}
		}
		if len(stmt.GroupBy) == 0 && st.rows == 0 {
			copy(st.firsts, refVals)
		}
		st.rows++
		for ai := range specs {
			if specs[ai].call.Star {
				continue
			}
			st.accs[ai].Fold(argVals[ai], specs[ai].call.Distinct)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ex.stats.Groups += int64(len(order))

	gRows, gsc, err := buildAggRows(specs, carried, order)
	if err != nil {
		return nil, err
	}
	atm.Done(int64(len(gRows)))
	n := len(gRows)

	if stmt.Having != nil {
		fn, err := ex.compile(stmt.Having, gsc)
		if err != nil {
			return nil, err
		}
		keep := make([][]Scalar, 0, n)
		for _, gr := range gRows {
			v, err := fn(gr)
			if err != nil {
				return nil, err
			}
			if !v.IsNull() && v.Truthy() {
				keep = append(keep, gr)
			}
		}
		gRows = keep
		n = len(keep)
	}

	items, _ := expandProjection(stmt, nil)
	for _, it := range items {
		if it.star {
			return nil, fmt.Errorf("SELECT * is not supported with GROUP BY or aggregates")
		}
	}
	var tm trace.Timer
	if ex.traceOn(prefix) {
		tm = ex.tracer.Span(trace.ProjectID(prefix), trace.KindProject).Start()
	}
	var cols [][]Scalar
	var names []string
	for _, it := range items {
		col, err := ex.projectCol(it.expr, gsc, gRows)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		names = append(names, it.name)
	}
	tm.Done(int64(n))
	sortKeys, err := ex.orderKeys(stmt, items, cols, gsc, gRows)
	if err != nil {
		return nil, err
	}
	return ex.epilogue(stmt, names, cols, sortKeys, n, prefix)
}

// buildAggRows finalizes the groups into rows of [aggregates..., carried
// firsts...] plus the scope that resolves against that layout.
func buildAggRows(specs []aggSpec, carried []*sqlparser.ColumnRef, order []*groupState) ([][]Scalar, *scope, error) {
	rows := make([][]Scalar, len(order))
	for gi, st := range order {
		row := make([]Scalar, len(specs)+len(carried))
		for ai, s := range specs {
			val, err := st.accs[ai].Finalize(strings.ToLower(s.call.Name), s.call.Star, st.rows)
			if err != nil {
				return nil, nil, err
			}
			row[ai] = val
		}
		copy(row[len(specs):], st.firsts)
		rows[gi] = row
	}
	sc := &scope{aggs: map[string]int{}, refs: map[string]int{}}
	for ai, s := range specs {
		sc.aggs[s.key] = ai
	}
	for ri, r := range carried {
		sc.refs[refKey(r.Table, r.Column)] = len(specs) + ri
	}
	return rows, sc, nil
}

// orderKeys evaluates the ORDER BY expressions: a bare reference naming a
// projection alias sorts by that output column, a numeric literal in range
// sorts by ordinal, everything else is evaluated in the current context.
func (ex *executor) orderKeys(stmt *sqlparser.SelectStatement, items []projItem, cols [][]Scalar, sc *scope, src [][]Scalar) ([][]Scalar, error) {
	if len(stmt.OrderBy) == 0 {
		return nil, nil
	}
	// Map projection item index to output column index (stars expand ahead
	// of the computed columns).
	itemCol := make([]int, len(items))
	base := 0
	for _, it := range items {
		if it.star {
			base = -1 // star present: computed columns start after the star block
		}
	}
	if base == 0 {
		for i := range items {
			itemCol[i] = i
		}
	} else {
		starWidth := len(cols)
		nonStar := 0
		for _, it := range items {
			if !it.star {
				nonStar++
			}
		}
		starWidth -= nonStar
		next := starWidth
		for i, it := range items {
			if it.star {
				itemCol[i] = -1
				continue
			}
			itemCol[i] = next
			next++
		}
	}

	keys := make([][]Scalar, len(stmt.OrderBy))
	for oi, ob := range stmt.OrderBy {
		if cr, ok := ob.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			matched := false
			for ii, it := range items {
				if !it.star && it.name == strings.ToLower(cr.Column) {
					keys[oi] = cols[itemCol[ii]]
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		if num, ok := ob.Expr.(*sqlparser.NumberLit); ok {
			if ns, err := vexec.ParseNumber(num.Value); err == nil {
				if idx := int(ns.Int()) - 1; idx >= 0 && idx < len(cols) {
					keys[oi] = cols[idx]
					continue
				}
			}
		}
		col, err := ex.projectCol(ob.Expr, sc, src)
		if err != nil {
			return nil, err
		}
		keys[oi] = col
	}
	return keys, nil
}

// epilogue applies DISTINCT, ORDER BY and LIMIT/OFFSET to the projected
// columns and finishes the result.
func (ex *executor) epilogue(stmt *sqlparser.SelectStatement, names []string, cols [][]Scalar, sortKeys [][]Scalar, n int, prefix string) (*Result, error) {
	if stmt.Distinct {
		var tm trace.Timer
		if ex.traceOn(prefix) {
			tm = ex.tracer.Span(trace.DistinctID(prefix), trace.KindDistinct).Start()
		}
		seen := make(map[string]struct{}, min(n, 4096))
		var keep []int
		var buf []byte
		for i := 0; i < n; i++ {
			buf = encodeKeyAt(buf[:0], cols, i)
			if _, dup := seen[string(buf)]; !dup {
				seen[string(buf)] = struct{}{}
				keep = append(keep, i)
			}
		}
		if len(keep) < n {
			cols = gatherCols(cols, keep)
			sortKeys = gatherCols(sortKeys, keep)
			n = len(keep)
		}
		tm.Done(int64(n))
	}

	if len(stmt.OrderBy) > 0 {
		var tm trace.Timer
		if ex.traceOn(prefix) {
			tm = ex.tracer.Span(trace.SortID(prefix), trace.KindSort).Start()
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		descs := make([]bool, len(stmt.OrderBy))
		for i := range stmt.OrderBy {
			descs[i] = stmt.OrderBy[i].Desc
		}
		// CompareScalars places NULL below everything and compares numerics
		// in the float domain — the interpreters' sort order.
		sort.SliceStable(idx, func(a, b int) bool {
			ra, rb := idx[a], idx[b]
			for i, key := range sortKeys {
				c := vexec.CompareScalars(key[ra], key[rb])
				if c == 0 {
					continue
				}
				if descs[i] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := false
		for i := range idx {
			if idx[i] != i {
				sorted = true
				break
			}
		}
		if sorted {
			cols = gatherCols(cols, idx)
		}
		tm.Done(int64(n))
	}

	if stmt.Limit != nil || stmt.Offset != nil {
		var tm trace.Timer
		if ex.traceOn(prefix) {
			tm = ex.tracer.Span(trace.LimitID(prefix), trace.KindLimit).Start()
		}
		start := 0
		if stmt.Offset != nil {
			start = int(*stmt.Offset)
		}
		end := n
		if stmt.Limit != nil && start+int(*stmt.Limit) < end {
			end = start + int(*stmt.Limit)
		}
		if start > n {
			start = n
		}
		keep := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			keep = append(keep, i)
		}
		cols = gatherCols(cols, keep)
		n = len(keep)
		tm.Done(int64(n))
	}

	ex.stats.RowsReturned += int64(n)
	return &Result{Columns: names, Cols: cols}, nil
}

func gatherCols(cols [][]Scalar, rows []int) [][]Scalar {
	if cols == nil {
		return nil
	}
	out := make([][]Scalar, len(cols))
	for ci, col := range cols {
		g := make([]Scalar, len(rows))
		for i, r := range rows {
			g[i] = col[r]
		}
		out[ci] = g
	}
	return out
}
