package vexec

import "strconv"

// This file implements the hash table shared by the hash join, hash
// aggregation and DISTINCT operators: open addressing with linear probing
// over power-of-two slot arrays, 64-bit hashes computed directly over the
// unboxed vector payloads, and dense group ids handed out in insertion
// order — the property that keeps join match order, group output order and
// DISTINCT survivor order bit-identical to the interpreters.
//
// Keys come in three storage modes. Single int-backed keys (int, bool, date)
// and single string keys take typed fast paths that hash the payload value
// without any encoding. Everything else — compound keys, float keys with
// their int/float duality, mixed-kind join sides — is encoded row by row
// into a reusable []byte buffer using exactly the byte scheme of the old
// string keys (and of engine.Value.Key): kind-class prefixes keep 1 and '1'
// apart, int-valued floats normalize to the integer digits so mixed numeric
// keys still meet, and '|' terminates each key of a compound row. Because
// the typed modes are injective refinements of that encoding, a table can
// migrate mid-stream: when a later batch disagrees with the stored mode
// (an expression key that flips from int to float between batches), the
// stored keys are re-encoded once and the table continues in byte mode.

// keyMode selects the key storage of a hash table.
type keyMode uint8

const (
	modeUnset keyMode = iota
	modeInt           // single int-backed key vector: unboxed int64 keys
	modeStr           // single string key vector: string keys
	modeDict          // single dictionary-coded string key vector: codes as int64 keys
	modeBytes         // compound or mixed keys: row encodings in a byte arena
)

// Key-class prefix bytes of the byte encoding, shared with the old
// strings.Builder scheme (and engine.Value.Key): kinds must never collide.
const (
	classStr  byte = 0x01
	classDate byte = 0x02
	classNum  byte = 0x03
)

// classWild marks an all-NULL key vector: it joins and groups only through
// its NULL rows, so it is compatible with every typed mode.
const classWild byte = 0xff

// nullKeyHash is the slot hash of the NULL key in the typed modes (NULL
// keys hash equal so NULL groups with NULL, mirroring the \x00N encoding).
const nullKeyHash uint64 = 0x9e3779b97f4a7c15

// hashTable maps keys to dense group ids 0..n-1 in first-insertion order.
type hashTable struct {
	mode     keyMode
	intClass byte // classNum or classDate while mode == modeInt

	// Open addressing: slots holds group id + 1 (0 = empty), hashes the
	// full 64-bit hash of the occupying key so growth never re-hashes and
	// probe misses rarely touch key storage.
	slots  []int32
	hashes []uint64
	mask   int

	// Per-group key storage; exactly one is live according to mode. keyOff
	// has n+1 entries: group g's encoding is arena[keyOff[g]:keyOff[g+1]].
	// modeDict stores dictionary codes in intKeys and decodes them through
	// dict only at migration/merge boundaries; code equality is value
	// equality because the codes of one dictionary are injective.
	intKeys []int64
	strKeys []string
	keyOff  []uint32
	arena   []byte
	dict    *Dictionary // modeDict: the single dictionary the codes index

	nullGroup int32 // typed modes: group id of the NULL key; -1 = none
	n         int
}

// newHashTable returns a table sized for about capHint groups; the mode is
// fixed by the first prepare (or getOrInsert*) call.
func newHashTable(capHint int) *hashTable {
	size := 16
	for size < capHint*2 {
		size *= 2
	}
	return &hashTable{
		slots:     make([]int32, size),
		hashes:    make([]uint64, size),
		mask:      size - 1,
		nullGroup: -1,
	}
}

// newByteKeyTable returns a table pinned to the byte-encoding mode, used
// where keys arrive as scalars of varying kinds (DISTINCT aggregates).
func newByteKeyTable(capHint int) *hashTable {
	ht := newHashTable(capHint)
	ht.mode = modeBytes
	ht.keyOff = append(ht.keyOff, 0)
	return ht
}

// numGroups returns how many distinct keys the table has seen.
func (ht *hashTable) numGroups() int { return ht.n }

// mix64 is the splitmix64 finalizer: the integer-key hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashString is FNV-1a over the string bytes, finalized with mix64 so the
// low slot-index bits depend on every input byte.
func hashString(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return mix64(h)
}

// hashBytes is hashString over a byte slice.
func hashBytes(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return mix64(h)
}

// grow doubles the slot arrays, relocating occupied slots by their stored
// hashes; key storage is untouched.
func (ht *hashTable) grow() {
	oldSlots, oldHashes := ht.slots, ht.hashes
	ht.slots = make([]int32, len(oldSlots)*2)
	ht.hashes = make([]uint64, len(oldSlots)*2)
	ht.mask = len(ht.slots) - 1
	for si, s := range oldSlots {
		if s == 0 {
			continue
		}
		h := oldHashes[si]
		i := int(h) & ht.mask
		for ht.slots[i] != 0 {
			i = (i + 1) & ht.mask
		}
		ht.slots[i] = s
		ht.hashes[i] = h
	}
}

// maybeGrow keeps the load factor under 3/4.
func (ht *hashTable) maybeGrow() {
	if ht.n*4 >= len(ht.slots)*3 {
		ht.grow()
	}
}

// getOrInsertInt returns the group of an int-backed key, creating it on
// first sight; isNew reports creation.
func (ht *hashTable) getOrInsertInt(v int64) (int, bool) {
	return ht.getOrInsertIntH(v, mix64(uint64(v)))
}

// getOrInsertIntH is getOrInsertInt with the key's hash precomputed (the
// partitioned join build reuses the routing pass's hashes).
func (ht *hashTable) getOrInsertIntH(v int64, h uint64) (int, bool) {
	i := int(h) & ht.mask
	for {
		s := ht.slots[i]
		if s == 0 {
			ht.slots[i] = int32(ht.n) + 1
			ht.hashes[i] = h
			ht.intKeys = append(ht.intKeys, v)
			ht.n++
			ht.maybeGrow()
			return ht.n - 1, true
		}
		if ht.hashes[i] == h && ht.intKeys[s-1] == v {
			return int(s - 1), false
		}
		i = (i + 1) & ht.mask
	}
}

// lookupInt returns the group of an int-backed key or -1.
func (ht *hashTable) lookupInt(v int64) int {
	return ht.lookupIntH(v, mix64(uint64(v)))
}

// lookupIntH is lookupInt with the key's hash precomputed.
func (ht *hashTable) lookupIntH(v int64, h uint64) int {
	i := int(h) & ht.mask
	for {
		s := ht.slots[i]
		if s == 0 {
			return -1
		}
		if ht.hashes[i] == h && ht.intKeys[s-1] == v {
			return int(s - 1)
		}
		i = (i + 1) & ht.mask
	}
}

// getOrInsertStr returns the group of a string key, creating it on first
// sight. The string header is retained; its bytes are shared with the
// source vector, which is immutable once published.
func (ht *hashTable) getOrInsertStr(v string) (int, bool) {
	return ht.getOrInsertStrH(v, hashString(v))
}

// getOrInsertStrH is getOrInsertStr with the key's hash precomputed.
func (ht *hashTable) getOrInsertStrH(v string, h uint64) (int, bool) {
	i := int(h) & ht.mask
	for {
		s := ht.slots[i]
		if s == 0 {
			ht.slots[i] = int32(ht.n) + 1
			ht.hashes[i] = h
			ht.strKeys = append(ht.strKeys, v)
			ht.n++
			ht.maybeGrow()
			return ht.n - 1, true
		}
		if ht.hashes[i] == h && ht.strKeys[s-1] == v {
			return int(s - 1), false
		}
		i = (i + 1) & ht.mask
	}
}

// lookupStr returns the group of a string key or -1.
func (ht *hashTable) lookupStr(v string) int {
	return ht.lookupStrH(v, hashString(v))
}

// lookupStrH is lookupStr with the key's hash precomputed.
func (ht *hashTable) lookupStrH(v string, h uint64) int {
	i := int(h) & ht.mask
	for {
		s := ht.slots[i]
		if s == 0 {
			return -1
		}
		if ht.hashes[i] == h && ht.strKeys[s-1] == v {
			return int(s - 1)
		}
		i = (i + 1) & ht.mask
	}
}

// getOrInsertBytes returns the group of an encoded key, copying the bytes
// into the table's arena on first sight. The caller may reuse key.
func (ht *hashTable) getOrInsertBytes(key []byte) (int, bool) {
	return ht.getOrInsertBytesH(key, hashBytes(key))
}

// getOrInsertBytesH is getOrInsertBytes with the key's hash precomputed.
func (ht *hashTable) getOrInsertBytesH(key []byte, h uint64) (int, bool) {
	i := int(h) & ht.mask
	for {
		s := ht.slots[i]
		if s == 0 {
			ht.slots[i] = int32(ht.n) + 1
			ht.hashes[i] = h
			ht.arena = append(ht.arena, key...)
			ht.keyOff = append(ht.keyOff, uint32(len(ht.arena)))
			ht.n++
			ht.maybeGrow()
			return ht.n - 1, true
		}
		if ht.hashes[i] == h && string(ht.arena[ht.keyOff[s-1]:ht.keyOff[s]]) == string(key) {
			return int(s - 1), false
		}
		i = (i + 1) & ht.mask
	}
}

// lookupBytes returns the group of an encoded key or -1.
func (ht *hashTable) lookupBytes(key []byte) int {
	return ht.lookupBytesH(key, hashBytes(key))
}

// lookupBytesH is lookupBytes with the key's hash precomputed.
func (ht *hashTable) lookupBytesH(key []byte, h uint64) int {
	i := int(h) & ht.mask
	for {
		s := ht.slots[i]
		if s == 0 {
			return -1
		}
		if ht.hashes[i] == h && string(ht.arena[ht.keyOff[s-1]:ht.keyOff[s]]) == string(key) {
			return int(s - 1)
		}
		i = (i + 1) & ht.mask
	}
}

// getOrInsertNull returns the NULL-key group of a typed-mode table,
// creating it on first sight. It occupies no slot; key storage gets a
// placeholder so group ids stay aligned.
func (ht *hashTable) getOrInsertNull() (int, bool) {
	if ht.nullGroup >= 0 {
		return int(ht.nullGroup), false
	}
	ht.nullGroup = int32(ht.n)
	if ht.mode == modeStr {
		ht.strKeys = append(ht.strKeys, "")
	} else {
		ht.intKeys = append(ht.intKeys, 0)
	}
	ht.n++
	return int(ht.nullGroup), true
}

// lookupNull returns the NULL-key group of a typed-mode table or -1.
func (ht *hashTable) lookupNull() int {
	if ht.nullGroup >= 0 {
		return int(ht.nullGroup)
	}
	return -1
}

// setMode pins a freshly created table to its first batch's mode; dict is
// the shared dictionary for modeDict and nil otherwise.
func (ht *hashTable) setMode(mode keyMode, class byte, dict *Dictionary) {
	ht.mode = mode
	ht.intClass = class
	ht.dict = dict
	if mode == modeBytes && len(ht.keyOff) == 0 {
		ht.keyOff = append(ht.keyOff, 0)
	}
}

// appendGroupKey appends the byte encoding of group g's key, the bridge
// between the typed storage modes and the byte mode (used by migration and
// by cross-table merges). The trailing '|' separator is included so the
// result matches what encodeRowKey produces for a single-key row.
func (ht *hashTable) appendGroupKey(buf []byte, g int) []byte {
	if int32(g) == ht.nullGroup && ht.mode != modeBytes {
		return append(buf, 0x00, 'N', '|')
	}
	switch ht.mode {
	case modeInt:
		buf = append(buf, ht.intClass)
		buf = strconv.AppendInt(buf, ht.intKeys[g], 10)
		return append(buf, '|')
	case modeStr:
		buf = append(buf, classStr)
		buf = append(buf, ht.strKeys[g]...)
		return append(buf, '|')
	case modeDict:
		// decode to the modeStr byte form so dict- and raw-keyed tables
		// produce identical encodings and can merge
		buf = append(buf, classStr)
		buf = append(buf, ht.dict.Vals[ht.intKeys[g]]...)
		return append(buf, '|')
	default:
		return append(buf, ht.arena[ht.keyOff[g]:ht.keyOff[g+1]]...)
	}
}

// migrateToBytes re-encodes every stored key into the byte arena and
// rebuilds the slot index; group ids are preserved, so payloads attached to
// them stay valid.
func (ht *hashTable) migrateToBytes() {
	if ht.mode == modeBytes {
		return
	}
	arena := make([]byte, 0, ht.n*8)
	keyOff := make([]uint32, 1, ht.n+1)
	for g := 0; g < ht.n; g++ {
		arena = ht.appendGroupKey(arena, g)
		keyOff = append(keyOff, uint32(len(arena)))
	}
	ht.arena, ht.keyOff = arena, keyOff
	ht.intKeys, ht.strKeys = nil, nil
	ht.mode = modeBytes
	ht.dict = nil
	ht.nullGroup = -1
	for i := range ht.slots {
		ht.slots[i] = 0
	}
	for ht.n*4 >= len(ht.slots)*3 {
		ht.slots = make([]int32, len(ht.slots)*2)
		ht.hashes = make([]uint64, len(ht.hashes)*2)
	}
	ht.mask = len(ht.slots) - 1
	for g := 0; g < ht.n; g++ {
		h := hashBytes(ht.arena[ht.keyOff[g]:ht.keyOff[g+1]])
		i := int(h) & ht.mask
		for ht.slots[i] != 0 {
			i = (i + 1) & ht.mask
		}
		ht.slots[i] = int32(g) + 1
		ht.hashes[i] = h
	}
}

// getOrInsertKeyOf inserts the key of group g of another table, the merge
// primitive behind parallel aggregation: thread-local tables fold into one
// global table without re-evaluating any key expression. Typed keys
// transfer directly when the modes agree; any disagreement drops the
// receiving table to byte mode first.
func (ht *hashTable) getOrInsertKeyOf(other *hashTable, g int, buf []byte) (group int, isNew bool, scratch []byte) {
	if ht.mode == modeUnset {
		ht.setMode(other.mode, other.intClass, other.dict)
	}
	compatible := ht.mode == other.mode
	if compatible && ht.mode == modeDict && ht.dict != other.dict {
		// codes of different dictionaries are not comparable
		compatible = false
	}
	if compatible && ht.mode == modeInt && ht.intClass != other.intClass {
		switch {
		case ht.intClass == classWild:
			// Only the NULL group is stored here: adopt the other's class.
			ht.intClass = other.intClass
		case other.intClass == classWild:
			// The other table holds only the NULL group; any class matches.
		default:
			compatible = false
		}
	}
	if !compatible {
		switch {
		case ht.mode == modeInt && ht.intClass == classWild && other.mode == modeDict:
			// Only the NULL group is stored here (int placeholder, same
			// layout modeDict uses): adopt the other's dictionary keying.
			ht.mode, ht.intClass, ht.dict = modeDict, classStr, other.dict
			compatible = true
		case ht.mode == modeDict && other.mode == modeInt && other.intClass == classWild:
			// A wildcard table only ever holds the NULL group, which the
			// null branch below transfers without touching key payloads.
			compatible = true
		}
	}
	if compatible {
		if int32(g) == other.nullGroup && other.mode != modeBytes {
			group, isNew = ht.getOrInsertNull()
			return group, isNew, buf
		}
		switch ht.mode {
		case modeInt, modeDict:
			group, isNew = ht.getOrInsertInt(other.intKeys[g])
		case modeStr:
			group, isNew = ht.getOrInsertStr(other.strKeys[g])
		default:
			group, isNew = ht.getOrInsertBytes(other.arena[other.keyOff[g]:other.keyOff[g+1]])
		}
		return group, isNew, buf
	}
	ht.migrateToBytes()
	buf = other.appendGroupKey(buf[:0], g)
	group, isNew = ht.getOrInsertBytes(buf)
	return group, isNew, buf
}

// --- row keying ---------------------------------------------------------------

// keyCoder maps batch rows onto hash-table keys: it fixes the key mode for
// one table plus one set (or, for joins, two sets) of key vectors and owns
// the scratch buffer the byte mode encodes rows into. A keyCoder is a
// value: copies are independent, which is what lets parallel probe workers
// share one read-only table with private scratch space.
type keyCoder struct {
	mode keyMode
	buf  []byte
}

// vecMode classifies one key vector: the mode its kind supports and the
// key class its non-NULL rows encode under.
func vecMode(v *Vector) (keyMode, byte) {
	switch v.Kind {
	case KindInt, KindBool:
		return modeInt, classNum
	case KindDate:
		return modeInt, classDate
	case KindString:
		return modeStr, classStr
	case KindNull:
		// All rows NULL: compatible with any typed mode.
		return modeInt, classWild
	default:
		// Floats carry the int/float duality; only the byte encoding
		// normalizes them against integer keys.
		return modeBytes, 0
	}
}

// jointMode reconciles the key-vector sides of one table (one side for
// grouping and DISTINCT, build plus probe for joins) into a single mode.
// When every string side carries the same dictionary, the mode refines to
// modeDict and the shared dictionary is returned: hashing and equality then
// run on the integer codes. Mixed dictionaries or a raw string side fall
// back to modeStr (StrAt decodes per row), which keeps correctness without
// any cross-dictionary code translation.
func jointMode(sides ...[]*Vector) (keyMode, byte, *Dictionary) {
	mode, class := modeUnset, classWild
	var dict *Dictionary
	dictOK := true
	for _, vecs := range sides {
		if len(vecs) != 1 {
			return modeBytes, 0, nil
		}
		m, c := vecMode(vecs[0])
		if c == classWild {
			continue
		}
		if m == modeStr {
			if d := vecs[0].Dict; d == nil || (dict != nil && d != dict) {
				dictOK = false
			} else {
				dict = d
			}
		}
		if mode == modeUnset {
			mode, class = m, c
			continue
		}
		if m != mode || c != class {
			return modeBytes, 0, nil
		}
	}
	if mode == modeUnset {
		// Every side is all-NULL: any typed mode works, ints are cheapest;
		// the wildcard class keeps the table adoptable by later batches.
		return modeInt, classWild, nil
	}
	if mode == modeStr && dictOK && dict != nil {
		return modeDict, classStr, dict
	}
	return mode, class, nil
}

// prepare reconciles the table's storage mode with the key vectors of the
// next batch (or join side pair), migrating the stored keys to the byte
// encoding when they disagree, and returns the coder to use for those rows.
func (ht *hashTable) prepare(sides ...[]*Vector) keyCoder {
	mode, class, dict := jointMode(sides...)
	switch {
	case ht.mode == modeUnset:
		ht.setMode(mode, class, dict)
	case ht.mode == modeStr && mode == modeDict:
		// Raw string keys are stored; dict-coded rows decode through StrAt
		// under the modeStr coder, so nothing needs to migrate.
	case ht.mode == modeDict && mode == modeDict && ht.dict != dict:
		ht.migrateToBytes()
	case ht.mode != mode:
		ht.migrateToBytes()
	case mode == modeInt && ht.intClass != class:
		switch {
		case ht.intClass == classWild:
			// The stored keys are all NULL: adopt the batch's class.
			ht.intClass = class
		case class == classWild:
			// The batch is all NULL: compatible with any stored class.
		default:
			ht.migrateToBytes()
		}
	}
	return keyCoder{mode: ht.mode}
}

// encodeRowKey appends the byte encoding of row i of the key vectors: one
// kind-prefixed key per vector, each terminated by '|'. It reproduces the
// old strings.Builder scheme byte for byte (see appendVecKey).
func encodeRowKey(buf []byte, vecs []*Vector, i int) []byte {
	for _, v := range vecs {
		buf = appendVecKey(buf, v, i)
		buf = append(buf, '|')
	}
	return buf
}

// appendVecKey appends the hash-key encoding of row i of the vector,
// matching engine.Value.Key: kinds stay separate so 1 and '1' never
// collide, but int-valued floats normalize to the integer digits so mixed
// numeric join and group keys match.
func appendVecKey(buf []byte, v *Vector, i int) []byte {
	if v.IsNull(i) {
		return append(buf, 0x00, 'N')
	}
	switch v.Kind {
	case KindString:
		buf = append(buf, classStr)
		return append(buf, v.StrAt(i)...)
	case KindDate:
		buf = append(buf, classDate)
		return strconv.AppendInt(buf, v.Ints[i], 10)
	case KindInt, KindBool:
		buf = append(buf, classNum)
		return strconv.AppendInt(buf, v.Ints[i], 10)
	case KindFloat:
		buf = append(buf, classNum)
		if v.IsInt != nil && v.IsInt[i] {
			return strconv.AppendInt(buf, v.Ints[i], 10)
		}
		f := v.Floats[i]
		if f == float64(int64(f)) {
			return strconv.AppendInt(buf, int64(f), 10)
		}
		return strconv.AppendFloat(buf, f, 'g', -1, 64)
	}
	return buf
}

// appendScalarKey appends the hash-key encoding of one boxed scalar, the
// byte form of the old appendKey (used by DISTINCT aggregates).
func appendScalarKey(buf []byte, s scalar) []byte {
	switch s.kind {
	case KindNull:
		return append(buf, 0x00, 'N')
	case KindString:
		buf = append(buf, classStr)
		return append(buf, s.s...)
	case KindDate:
		buf = append(buf, classDate)
		return strconv.AppendInt(buf, s.i, 10)
	case KindFloat:
		buf = append(buf, classNum)
		if s.f == float64(int64(s.f)) {
			return strconv.AppendInt(buf, int64(s.f), 10)
		}
		return strconv.AppendFloat(buf, s.f, 'g', -1, 64)
	default:
		buf = append(buf, classNum)
		return strconv.AppendInt(buf, s.i, 10)
	}
}

// getOrInsert maps row i of the key vectors to its group, creating the
// group on first sight.
func (kc *keyCoder) getOrInsert(ht *hashTable, vecs []*Vector, i int) (int, bool) {
	switch kc.mode {
	case modeInt:
		if vecs[0].IsNull(i) {
			return ht.getOrInsertNull()
		}
		return ht.getOrInsertInt(vecs[0].Ints[i])
	case modeDict:
		if vecs[0].IsNull(i) {
			return ht.getOrInsertNull()
		}
		return ht.getOrInsertInt(int64(vecs[0].Codes[i]))
	case modeStr:
		if vecs[0].IsNull(i) {
			return ht.getOrInsertNull()
		}
		return ht.getOrInsertStr(vecs[0].StrAt(i))
	default:
		kc.buf = encodeRowKey(kc.buf[:0], vecs, i)
		return ht.getOrInsertBytes(kc.buf)
	}
}

// lookup maps row i of the key vectors to its group or -1. It never
// mutates the table, so concurrent lookups against one table are safe as
// long as each goroutine uses its own coder.
func (kc *keyCoder) lookup(ht *hashTable, vecs []*Vector, i int) int {
	switch kc.mode {
	case modeInt:
		if vecs[0].IsNull(i) {
			return ht.lookupNull()
		}
		return ht.lookupInt(vecs[0].Ints[i])
	case modeDict:
		if vecs[0].IsNull(i) {
			return ht.lookupNull()
		}
		return ht.lookupInt(int64(vecs[0].Codes[i]))
	case modeStr:
		if vecs[0].IsNull(i) {
			return ht.lookupNull()
		}
		return ht.lookupStr(vecs[0].StrAt(i))
	default:
		kc.buf = encodeRowKey(kc.buf[:0], vecs, i)
		return ht.lookupBytes(kc.buf)
	}
}

// hash returns the partition hash of row i of the key vectors: equal keys
// hash equal across the build and probe sides of a join, which is what
// routes them to the same partition of a partitioned build. In byte mode
// the row's encoding stays in kc.buf for lookupHashed to reuse.
func (kc *keyCoder) hash(vecs []*Vector, i int) uint64 {
	switch kc.mode {
	case modeInt:
		if vecs[0].IsNull(i) {
			return nullKeyHash
		}
		return mix64(uint64(vecs[0].Ints[i]))
	case modeDict:
		if vecs[0].IsNull(i) {
			return nullKeyHash
		}
		return mix64(uint64(vecs[0].Codes[i]))
	case modeStr:
		if vecs[0].IsNull(i) {
			return nullKeyHash
		}
		return hashString(vecs[0].StrAt(i))
	default:
		kc.buf = encodeRowKey(kc.buf[:0], vecs, i)
		return hashBytes(kc.buf)
	}
}

// getOrInsertHashed is getOrInsert with the row's hash precomputed by any
// coder's hash (possibly another worker's during partition routing). NULL
// rows route to the typed null group regardless of h; byte mode re-encodes
// the row (the encoding may have been produced by a different coder) but
// skips re-hashing it.
func (kc *keyCoder) getOrInsertHashed(ht *hashTable, vecs []*Vector, i int, h uint64) (int, bool) {
	switch kc.mode {
	case modeInt:
		if vecs[0].IsNull(i) {
			return ht.getOrInsertNull()
		}
		return ht.getOrInsertIntH(vecs[0].Ints[i], h)
	case modeDict:
		if vecs[0].IsNull(i) {
			return ht.getOrInsertNull()
		}
		return ht.getOrInsertIntH(int64(vecs[0].Codes[i]), h)
	case modeStr:
		if vecs[0].IsNull(i) {
			return ht.getOrInsertNull()
		}
		return ht.getOrInsertStrH(vecs[0].StrAt(i), h)
	default:
		kc.buf = encodeRowKey(kc.buf[:0], vecs, i)
		return ht.getOrInsertBytesH(kc.buf, h)
	}
}

// lookupHashed is lookup with the row's hash precomputed. h must come from
// kc.hash(vecs, i) on this same coder with no intervening coder calls: in
// byte mode the row encoding still sitting in kc.buf is reused, so a probe
// row is encoded exactly once.
func (kc *keyCoder) lookupHashed(ht *hashTable, vecs []*Vector, i int, h uint64) int {
	switch kc.mode {
	case modeInt:
		if vecs[0].IsNull(i) {
			return ht.lookupNull()
		}
		return ht.lookupIntH(vecs[0].Ints[i], h)
	case modeDict:
		if vecs[0].IsNull(i) {
			return ht.lookupNull()
		}
		return ht.lookupIntH(int64(vecs[0].Codes[i]), h)
	case modeStr:
		if vecs[0].IsNull(i) {
			return ht.lookupNull()
		}
		return ht.lookupStrH(vecs[0].StrAt(i), h)
	default:
		return ht.lookupBytesH(kc.buf, h)
	}
}
