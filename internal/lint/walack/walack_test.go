package walack_test

import (
	"testing"

	"sqalpel/internal/lint/analysistest"
	"sqalpel/internal/lint/walack"
)

func TestWALAck(t *testing.T) {
	analysistest.Run(t, "testdata", walack.Analyzer, "internal/repository")
}
