package plan

import "sync"

// DefaultCacheEntries bounds a cache created with NewCache(0). Query pools
// of a discriminative search hold a few hundred variants; one slot per
// variant per database leaves generous headroom.
const DefaultCacheEntries = 4096

// CacheKey identifies one cached plan: the catalog identity (comparable —
// the engines use the *Database pointer), the catalog's schema/data version
// at build time, and the normalized SQL text. A schema or data mutation
// bumps the version, so stale plans are never served; they simply stop
// being referenced and age out through the size cap.
type CacheKey struct {
	Catalog any
	Version uint64
	SQL     string
}

// Key builds a cache key, normalizing the SQL text.
func Key(catalog any, version uint64, sql string) CacheKey {
	return CacheKey{Catalog: catalog, Version: version, SQL: Normalize(sql)}
}

// Cache is a concurrency-safe plan cache. Build failures (parse errors,
// unsupported constructs) are cached too: a failing variant re-measured by
// the scheduler should not re-parse either.
type Cache struct {
	mu      sync.Mutex
	entries map[CacheKey]cacheEntry
	cap     int
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	p   *Plan
	err error
}

// NewCache creates a plan cache holding at most capEntries plans (0 means
// DefaultCacheEntries).
func NewCache(capEntries int) *Cache {
	if capEntries <= 0 {
		capEntries = DefaultCacheEntries
	}
	return &Cache{entries: map[CacheKey]cacheEntry{}, cap: capEntries}
}

// GetOrBuild returns the cached plan for the key, building and inserting it
// on a miss. The build runs outside the lock; concurrent misses on the same
// key may build twice and the last insert wins — plans are immutable and
// equivalent, so sharing either is correct.
func (c *Cache) GetOrBuild(key CacheKey, build func() (*Plan, error)) (*Plan, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return e.p, e.err
	}
	c.misses++
	c.mu.Unlock()

	p, err := build()

	c.mu.Lock()
	// A miss with a newer catalog version means every entry of the same
	// catalog at an older version is permanently unreachable (keys embed the
	// version); drop them now instead of letting them pin the catalog's data
	// until cap-driven eviction gets around to it.
	//lint:ordered order-insensitive purge by key predicate; only cache residency is affected
	for k := range c.entries {
		if k.Catalog == key.Catalog && k.Version < key.Version {
			delete(c.entries, k)
		}
	}
	if len(c.entries) >= c.cap {
		// Coarse eviction: drop an arbitrary entry per overflowing insert.
		// The cache exists to absorb the repetition discipline (the same few
		// hundred variants measured over and over), not to be an LRU.
		//lint:ordered eviction victim is documented as arbitrary; plans are rebuilt identically on re-miss
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
	c.entries[key] = cacheEntry{p: p, err: err}
	c.mu.Unlock()
	return p, err
}

// DropCatalog removes every entry of the given catalog, releasing the
// catalog (and the data reachable through it) from the cache's keys. Call
// it when retiring a database from a long-lived registry or project; a
// dropped catalog never misses again, so the stale-version purge in
// GetOrBuild alone would keep its last-version entries alive until cap
// eviction.
func (c *Cache) DropCatalog(catalog any) {
	c.mu.Lock()
	//lint:ordered order-insensitive purge by key predicate; only cache residency is affected
	for k := range c.entries {
		if k.Catalog == catalog {
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
}

// Stats returns how many lookups hit and missed since the cache was created.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
