// Command spacecalc regenerates the paper's tables from the command line:
//
//	spacecalc            # Table 2: the TPC-H query space per query
//	spacecalc -table1    # Table 1: the TPC benchmark result census
//	spacecalc -query Q6  # one TPC-H query in detail (grammar + space)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sqalpel/internal/derive"
	"sqalpel/internal/grammar"
	"sqalpel/internal/tpcsurvey"
	"sqalpel/internal/workload"
)

func main() {
	table1 := flag.Bool("table1", false, "print the TPC benchmark census (Table 1)")
	query := flag.String("query", "", "show the derived grammar and space of a single TPC-H query (e.g. Q6)")
	cap := flag.Int("cap", grammar.DefaultTemplateCap, "hard limit on the number of derived query templates")
	joins := flag.Bool("explicit-joins", true, "keep join paths explicit (the recommended manual grammar edit)")
	flag.Parse()

	if *table1 {
		fmt.Print(tpcsurvey.Render())
		return
	}

	opts := derive.DefaultOptions()
	opts.ExplicitJoinPaths = *joins
	enumOpts := grammar.EnumerateOptions{TemplateCap: *cap, LiteralOnce: true}

	if *query != "" {
		q, err := workload.TPCHQuery(*query)
		if err != nil {
			log.Fatal(err)
		}
		g, err := derive.FromSQL(q.SQL, opts)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := g.Space(enumOpts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %s: %s\n\n%s\n", q.ID, q.Name, g.String())
		fmt.Printf("tags %d, templates %d, space %s (capped: %v)\n",
			sum.Tags, sum.Templates, grammar.FormatSpace(sum.Space), sum.Capped)
		return
	}

	fmt.Printf("%-5s %-6s %-10s %s\n", "query", "tags", "templates", "space")
	for _, id := range workload.TPCHIDs() {
		q, _ := workload.TPCHQuery(id)
		sum, err := derive.Summary(q.SQL, opts, enumOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			continue
		}
		// Saturated uint64 space counts are lower bounds, not exact numbers;
		// report them as such instead of printing MaxUint64 verbatim.
		space := grammar.FormatSpace(sum.Space)
		templates := fmt.Sprintf("%d", sum.Templates)
		if sum.Capped {
			templates = fmt.Sprintf(">%d", sum.Templates)
			space = "-"
		}
		fmt.Printf("%-5s %-6d %-10s %s\n", id, sum.Tags, templates, space)
	}
}
