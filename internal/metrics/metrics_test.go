package metrics

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func fixedTarget(delay time.Duration, rows int) Target {
	return TargetFunc(func(query string) (int, map[string]string, error) {
		time.Sleep(delay)
		return rows, map[string]string{"engine": "fake"}, nil
	})
}

func TestMeasureDefaults(t *testing.T) {
	m := Measure(fixedTarget(time.Millisecond, 7), "SELECT 1", Options{})
	if m.Failed() {
		t.Fatalf("unexpected failure: %s", m.Err)
	}
	if len(m.Runs) != DefaultRuns {
		t.Errorf("runs = %d, want %d", len(m.Runs), DefaultRuns)
	}
	if m.Rows != 7 {
		t.Errorf("rows = %d, want 7", m.Rows)
	}
	if m.Min() <= 0 || m.Max() < m.Min() || m.Mean() < m.Min() || m.Mean() > m.Max() {
		t.Errorf("summary stats inconsistent: min=%v mean=%v max=%v", m.Min(), m.Mean(), m.Max())
	}
	if m.Extra["engine"] != "fake" {
		t.Errorf("extras = %v", m.Extra)
	}
	if _, ok := m.Extra["before_load_avg_1"]; !ok {
		t.Error("load averages should be attached to extras")
	}
	if len(m.Seconds()) != DefaultRuns {
		t.Error("Seconds() length mismatch")
	}
	if !strings.Contains(m.String(), "5 runs") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMeasureCustomRunsAndWarmup(t *testing.T) {
	calls := 0
	target := TargetFunc(func(query string) (int, map[string]string, error) {
		calls++
		return 1, nil, nil
	})
	m := Measure(target, "SELECT 1", Options{Runs: 3, WarmupRuns: 2})
	if len(m.Runs) != 3 {
		t.Errorf("runs = %d, want 3", len(m.Runs))
	}
	if calls != 5 {
		t.Errorf("target calls = %d, want 5 (2 warmup + 3 measured)", calls)
	}
}

func TestMeasureFailure(t *testing.T) {
	target := TargetFunc(func(query string) (int, map[string]string, error) {
		return 0, nil, errors.New("syntax error near FROM")
	})
	m := Measure(target, "SELECT", Options{})
	if !m.Failed() {
		t.Fatal("expected failure")
	}
	if len(m.Runs) != 0 {
		t.Error("failed measurements must not carry timings")
	}
	if m.Min() != 0 || m.Mean() != 0 || m.Median() != 0 {
		t.Error("summary of a failed measurement should be zero")
	}
	if !strings.Contains(m.String(), "error") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMeasureWarmupFailure(t *testing.T) {
	calls := 0
	target := TargetFunc(func(query string) (int, map[string]string, error) {
		calls++
		return 0, nil, errors.New("boom")
	})
	m := Measure(target, "SELECT 1", Options{Runs: 3, WarmupRuns: 1})
	if !m.Failed() || calls != 1 {
		t.Errorf("warmup failure should abort immediately (calls=%d)", calls)
	}
}

func TestSummaryStatistics(t *testing.T) {
	m := &Measurement{Runs: []time.Duration{
		40 * time.Millisecond,
		10 * time.Millisecond,
		20 * time.Millisecond,
		30 * time.Millisecond,
		50 * time.Millisecond,
	}}
	if m.Min() != 10*time.Millisecond {
		t.Errorf("min = %v", m.Min())
	}
	if m.Max() != 50*time.Millisecond {
		t.Errorf("max = %v", m.Max())
	}
	if m.Mean() != 30*time.Millisecond {
		t.Errorf("mean = %v", m.Mean())
	}
	if m.Median() != 30*time.Millisecond {
		t.Errorf("median = %v", m.Median())
	}
	if m.Stddev() <= 0 {
		t.Errorf("stddev = %v", m.Stddev())
	}
	even := &Measurement{Runs: []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}}
	if even.Median() != 15*time.Millisecond {
		t.Errorf("even median = %v", even.Median())
	}
}
