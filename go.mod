module sqalpel

go 1.22
