package vexec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sqalpel/internal/plan"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/trace"
)

// ErrUnsupported marks statements (or runtime value shapes) outside the
// vectorized subset; the engine-level adapter falls back to the interpreter
// when it sees this error.
var ErrUnsupported = errors.New("vexec: unsupported construct")

// DefaultBatchSize is the number of rows per pipeline batch.
const DefaultBatchSize = 1024

const defaultMaxJoinRows = 4_000_000

// Options configure one execution.
type Options struct {
	// BatchSize is the pipeline batch size (default 1024).
	BatchSize int
	// MaxJoinRows guards intermediate join sizes (default 4,000,000).
	MaxJoinRows int
	// Deadline aborts the query when passed; zero means no deadline.
	Deadline time.Time
	// Parallelism caps the morsel worker pool for intra-query parallelism
	// (parallel scan→filter pipelines, partitioned hash-join builds,
	// thread-local aggregation); 0 or 1 executes serially. Results are
	// bit-identical at every worker count.
	Parallelism int
	// Tracer collects per-operator spans keyed by the plan's operator ids;
	// nil disables tracing at zero cost (every operator's span pointer is
	// nil and the hot paths reduce to one pointer comparison). Traces are
	// bit-identical at every worker count: morsel workers accumulate
	// thread-local span deltas that merge in morsel order.
	Tracer *trace.Tracer
}

// Stats are the execution counters of one run.
type Stats struct {
	RowsScanned  int64
	Batches      int64
	FilterPasses int64
	HashJoins    int64
	LoopJoins    int64
	Groups       int64
	RowsReturned int64
	// JoinBuildRows/JoinProbeRows count the non-NULL-key rows inserted into
	// and probed against hash-join tables; identical at every worker count
	// (NULL-key rows are skipped on both paths).
	JoinBuildRows int64
	JoinProbeRows int64
	// AggRows counts the rows folded into groups by hash aggregation.
	AggRows int64
	// SubqueryExecutions counts the sub-query plans materialized: once per
	// uncorrelated sub-query and once per decorrelated (hash-built)
	// correlated sub-query — probes against the built state are not
	// executions.
	SubqueryExecutions int64
	// BlocksSkipped counts zone-map blocks the scans proved unsatisfiable
	// under their pushed-down conjuncts and never read. Deterministic at
	// every worker count: the decision depends only on per-block statistics
	// and the plan.
	BlocksSkipped int64
}

// Result is a finished query: named, typed output columns.
type Result struct {
	Columns []string
	Cols    []*Vector
	Stats   Stats
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// executor runs one statement.
type executor struct {
	cat   Catalog
	opts  Options
	stats Stats
	// p is the logical plan being executed; nested pipelines (derived
	// tables, sub-queries) look their sub-plans and decorrelation recipes up
	// here.
	p *plan.Plan
	// subs holds the per-execution sub-query states, keyed by the nested
	// statement: uncorrelated sub-queries materialize once into a constant
	// scalar / EXISTS flag / IN membership set, correlated ones into a
	// decorrelated hash-join build over their own FROM pipeline. States are
	// built before the enclosing pipeline runs and are read-only afterwards,
	// so filter probes are safe under morsel parallelism.
	subs map[*sqlparser.SelectStatement]*subState
	// tracer is the per-operator span collector; nil when tracing is off.
	// Operator ids are keyed by the plan's prefix scheme: "" at the root,
	// trace.DerivedPrefix/SubPrefix below, noTracePrefix for pipelines the
	// prefix walk does not enumerate.
	tracer *trace.Tracer
}

// noTracePrefix marks execution contexts without an operator id — the
// operands of explicit JOIN trees (traced as one input operator) and nested
// statements the prefix walk does not enumerate. Span emission is skipped
// under it, mirroring the interpreters' untraced prefix.
const noTracePrefix = "\x00"

// traceOn reports whether spans should be emitted for the given prefix.
func (ex *executor) traceOn(prefix string) bool {
	return ex.tracer != nil && !strings.HasPrefix(prefix, noTracePrefix)
}

// Execute runs a parsed SELECT against the catalog, planning it on the fly.
// The engine-level adapter uses ExecutePlan instead, handing in the shared
// plan so no per-execution analysis happens here.
func Execute(cat Catalog, stmt *sqlparser.SelectStatement, opts Options) (*Result, error) {
	p, err := plan.BuildStmt(schemaCatalog{cat}, stmt)
	if err != nil {
		return nil, err
	}
	return ExecutePlan(cat, p, opts)
}

// ExecutePlan runs a planned SELECT against the catalog. Statements outside
// the vectorized subset were identified at plan time; the precomputed
// verdict replaces the runtime probe.
func ExecutePlan(cat Catalog, p *plan.Plan, opts Options) (*Result, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.MaxJoinRows <= 0 {
		opts.MaxJoinRows = defaultMaxJoinRows
	}
	if !p.Vectorizable {
		return nil, fmt.Errorf("%w: %s", ErrUnsupported, p.NotVectorizableReason)
	}
	ex := &executor{
		cat:    cat,
		opts:   opts,
		p:      p,
		subs:   map[*sqlparser.SelectStatement]*subState{},
		tracer: opts.Tracer,
	}
	res, err := ex.run(p.Root, "")
	if err != nil {
		return nil, err
	}
	// Late materialization ends here: dictionary-coded result columns decode
	// to raw strings only at the query boundary.
	for i, c := range res.Cols {
		res.Cols[i] = c.decode()
	}
	res.Stats = ex.stats
	return res, nil
}

// schemaCatalog adapts vexec's typed catalog to the planner's schema-only
// view; unknown tables resolve to no columns so execution reports the error.
type schemaCatalog struct{ cat Catalog }

// TableColumns implements plan.Catalog.
func (c schemaCatalog) TableColumns(name string) ([]string, bool) {
	t, err := c.cat.VTable(name)
	if err != nil {
		return nil, false
	}
	out := make([]string, len(t.Cols))
	for i, col := range t.Cols {
		out[i] = col.Name
	}
	return out, true
}

// checkDeadline aborts overdue queries; called once per batch.
func (ex *executor) checkDeadline() error {
	if ex.opts.Deadline.IsZero() {
		return nil
	}
	if time.Now().After(ex.opts.Deadline) {
		return fmt.Errorf("query exceeded its time budget")
	}
	return nil
}

// --- planning ----------------------------------------------------------------
//
// The per-execution analysis that used to live here — the supported-subset
// probe, conjunct splitting with the common-OR lift, pushdown targeting and
// the greedy join-order search — moved to the shared logical-plan layer
// (internal/plan); the executor now compiles its pipeline directly from the
// plan's classified conjuncts and join steps.

// run executes one SELECT core. prefix keys the statement's operator spans:
// "" at the root, a derived/sub prefix below, noTracePrefix to disable.
func (ex *executor) run(sp *plan.Select, prefix string) (*Result, error) {
	stmt := sp.Stmt
	if len(stmt.Projection) == 0 {
		return nil, fmt.Errorf("query has no projection")
	}
	// Materialize the statement's sub-query states before its pipeline runs:
	// filters probe them read-only.
	if err := ex.prepareSubqueries(stmt, prefix); err != nil {
		return nil, err
	}
	pipe, err := ex.buildFrom(sp, prefix)
	if err != nil {
		return nil, err
	}
	if sp.Grouped {
		return ex.runGrouped(stmt, pipe, prefix)
	}
	return ex.runRows(stmt, pipe, prefix)
}

// runBatch executes a nested SELECT core and re-frames its projected output
// as a batch carrying the given schema — the shape derived-table inputs and
// sub-query materialization consume.
func (ex *executor) runBatch(sp *plan.Select, schema []plan.ColumnMeta, prefix string) (*Batch, error) {
	res, err := ex.run(sp, prefix)
	if err != nil {
		return nil, err
	}
	b := &Batch{n: res.NumRows(), cols: res.Cols, meta: make([]colMeta, len(res.Cols))}
	for i := range res.Cols {
		if i < len(schema) {
			b.meta[i] = colMeta{table: schema[i].Table, name: schema[i].Name}
		} else if i < len(res.Columns) {
			b.meta[i] = colMeta{name: strings.ToLower(res.Columns[i])}
		}
	}
	return b, nil
}

// buildFrom assembles the scan/filter/join pipeline from the plan: pushdown
// conjuncts filter the input pipelines below the joins (a selection the
// interpreter does not perform — the result set is provably identical),
// the precomputed JoinSteps stitch the materialized inputs, and the
// residual conjuncts filter after the joins.
func (ex *executor) buildFrom(sp *plan.Select, prefix string) (operator, error) {
	if len(sp.From) == 0 {
		var op operator = &dualOp{}
		if len(sp.VexecResidual) > 0 {
			f := &filterOp{ex: ex, child: op, conjuncts: sp.VexecResidual}
			if ex.traceOn(prefix) {
				f.span = ex.tracer.Span(trace.FilterID(prefix), trace.KindFilter)
			}
			op = f
		}
		return op, nil
	}

	pipes := make([]operator, len(sp.From))
	for i, in := range sp.From {
		p, err := ex.buildInput(in, i, prefix)
		if err != nil {
			return nil, err
		}
		if len(sp.VexecPushdown[i]) > 0 {
			// A scan under pushdown conjuncts can consult the table's zone
			// maps and skip whole blocks; only batch sizes aligned to the
			// block grid keep serial and morsel segmentation identical.
			if sc, ok := p.(*scanOp); ok && ex.opts.BatchSize%ZoneBlockRows == 0 {
				sc.zones = sc.table.ZonePreds(sc.alias, sp.VexecPushdown[i])
			}
			f := &filterOp{ex: ex, child: p, conjuncts: sp.VexecPushdown[i]}
			if ex.traceOn(prefix) {
				f.span = ex.tracer.Span(trace.PushFilterID(prefix, i), trace.KindFilter)
			}
			p = f
		}
		pipes[i] = p
	}

	var current operator
	if len(pipes) == 1 {
		current = pipes[0]
	} else {
		// Multiple FROM items: materialize and stitch along the plan's join
		// order, which mirrors the interpreter's.
		mats := make([]*Batch, len(pipes))
		for i, p := range pipes {
			m, err := ex.materializeOp(p)
			if err != nil {
				return nil, err
			}
			mats[i] = m
		}
		cur := mats[0]
		for k, step := range sp.JoinSteps {
			var tm trace.Timer
			if ex.traceOn(prefix) {
				kind := trace.KindHashJoin
				if step.Cross {
					kind = trace.KindCross
				}
				tm = ex.tracer.Span(trace.JoinID(prefix, k), kind).Start()
			}
			var err error
			if step.Cross {
				cur, err = ex.crossJoin(cur, mats[step.Right])
			} else {
				cur, err = ex.hashJoin(cur, mats[step.Right], step.LeftKeys, step.RightKeys)
			}
			if err != nil {
				return nil, err
			}
			tm.Done(int64(cur.Len()))
		}
		current = &matOp{ex: ex, b: cur}
	}

	if len(sp.VexecResidual) > 0 {
		f := &filterOp{ex: ex, child: current, conjuncts: sp.VexecResidual}
		if ex.traceOn(prefix) {
			f.span = ex.tracer.Span(trace.FilterID(prefix), trace.KindFilter)
		}
		current = f
	}
	return current, nil
}

// buildInput builds the pipeline of one planned FROM input. idx is the
// input's FROM position, keying its trace span; the operands of explicit
// JOIN trees pass -1 (the whole tree is traced as one input operator).
func (ex *executor) buildInput(in *plan.Input, idx int, prefix string) (operator, error) {
	switch {
	case in.Join != nil:
		var tm trace.Timer
		if ex.traceOn(prefix) && idx >= 0 {
			tm = ex.tracer.Span(trace.InputID(prefix, idx), trace.KindJoinTree).Start()
		}
		b, err := ex.buildJoinBatch(in.Join)
		if err != nil {
			return nil, err
		}
		tm.Done(int64(b.Len()))
		return &matOp{ex: ex, b: b}, nil
	case in.Derived != nil:
		// A derived table runs its sub-plan to completion and feeds the
		// result in as a dense input batch, renamed to the derived alias.
		// Only top-level FROM positions have an operator id; operands of
		// explicit JOIN trees run untraced, like the interpreters.
		childPrefix := noTracePrefix
		var tm trace.Timer
		if idx >= 0 && ex.traceOn(prefix) {
			childPrefix = trace.DerivedPrefix(prefix, idx)
			tm = ex.tracer.Span(trace.InputID(prefix, idx), trace.KindDerived).Start()
		}
		b, err := ex.runBatch(in.Derived, in.Schema, childPrefix)
		if err != nil {
			return nil, err
		}
		tm.Done(int64(b.Len()))
		return &matOp{ex: ex, b: b}, nil
	default:
		table, err := ex.cat.VTable(in.Table)
		if err != nil {
			return nil, err
		}
		op := newScanOp(ex, table, in.Alias)
		if ex.traceOn(prefix) && idx >= 0 {
			op.span = ex.tracer.Span(trace.ScanID(prefix, idx), trace.KindScan)
		}
		return op, nil
	}
}

// buildJoinBatch materializes an explicit JOIN tree whose ON condition the
// plan already classified. The operands carry no operator ids of their own
// (idx -1): the whole tree is traced as one input operator.
func (ex *executor) buildJoinBatch(j *plan.Join) (*Batch, error) {
	leftOp, err := ex.buildInput(j.Left, -1, noTracePrefix)
	if err != nil {
		return nil, err
	}
	left, err := ex.materializeOp(leftOp)
	if err != nil {
		return nil, err
	}
	rightOp, err := ex.buildInput(j.Right, -1, noTracePrefix)
	if err != nil {
		return nil, err
	}
	right, err := ex.materializeOp(rightOp)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case "CROSS":
		return ex.crossJoin(left, right)
	case "INNER":
		if len(j.LeftKeys) == 0 {
			// Arbitrary join condition: cartesian product plus a filter over
			// every conjunct.
			ex.stats.LoopJoins++
			joined, err := ex.crossJoin(left, right)
			if err != nil {
				return nil, err
			}
			return ex.applyFilterBatch(joined, j.AllConds)
		}
		joined, err := ex.hashJoin(left, right, j.LeftKeys, j.RightKeys)
		if err != nil {
			return nil, err
		}
		if len(j.Residual) > 0 {
			return ex.applyFilterBatch(joined, j.Residual)
		}
		return joined, nil
	case "LEFT":
		return ex.leftJoin(left, right, j.LeftKeys, j.RightKeys, j.Residual)
	default:
		return nil, fmt.Errorf("%w: %s join", ErrUnsupported, j.Kind)
	}
}

// --- projection and epilogue -------------------------------------------------

// projItem is one resolved projection element.
type projItem struct {
	name string
	expr sqlparser.Expr
	star bool
}

// expandProjection resolves the projection list against the input schema.
func expandProjection(stmt *sqlparser.SelectStatement, meta []colMeta) ([]projItem, []int) {
	var items []projItem
	var starCols []int
	for _, p := range stmt.Projection {
		if p.Star {
			items = append(items, projItem{star: true})
			for ci, m := range meta {
				if p.Qualifier == "" || strings.EqualFold(p.Qualifier, m.table) {
					starCols = append(starCols, ci)
				}
			}
			continue
		}
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = strings.ToLower(p.Expr.SQL())
			}
		}
		items = append(items, projItem{name: strings.ToLower(name), expr: p.Expr})
	}
	return items, starCols
}

// runRows executes a non-grouped query: drain the pipeline, project, then
// run the shared epilogue.
func (ex *executor) runRows(stmt *sqlparser.SelectStatement, pipe operator, prefix string) (*Result, error) {
	b, err := ex.materializeOp(pipe)
	if err != nil {
		return nil, err
	}
	items, starCols := expandProjection(stmt, b.meta)
	ctx := &evalCtx{ex: ex, batch: b}

	var tm trace.Timer
	if ex.traceOn(prefix) {
		tm = ex.tracer.Span(trace.ProjectID(prefix), trace.KindProject).Start()
	}
	var cols []*Vector
	var names []string
	for _, ci := range starCols {
		cols = append(cols, b.dense(ci))
		names = append(names, b.meta[ci].name)
	}
	for _, it := range items {
		if it.star {
			continue
		}
		v, err := ctx.eval(it.expr)
		if err != nil {
			return nil, err
		}
		cols = append(cols, v)
		names = append(names, it.name)
	}
	tm.Done(int64(b.Len()))
	sortKeys, err := ex.orderKeyVectors(stmt, items, cols, ctx)
	if err != nil {
		return nil, err
	}
	return ex.epilogue(stmt, names, cols, sortKeys, b.Len(), prefix)
}

// runGrouped executes a grouped query: hash-aggregate the pipeline, apply
// HAVING, project the groups, then run the shared epilogue.
func (ex *executor) runGrouped(stmt *sqlparser.SelectStatement, pipe operator, prefix string) (*Result, error) {
	var atm trace.Timer
	if ex.traceOn(prefix) {
		atm = ex.tracer.Span(trace.AggID(prefix), trace.KindAgg).Start()
	}
	agg, err := ex.hashAggregate(pipe, stmt)
	if err != nil {
		return nil, err
	}
	atm.Done(int64(agg.n))
	n := agg.n
	ctx := &evalCtx{ex: ex, batch: &Batch{n: n}, aggs: agg.aggs, refs: agg.refs}

	if stmt.Having != nil {
		pred, err := ctx.eval(stmt.Having)
		if err != nil {
			return nil, err
		}
		var sel []int
		for i := 0; i < n; i++ {
			if !pred.IsNull(i) && truthy(pred, i) {
				sel = append(sel, i)
			}
		}
		if len(sel) < n {
			for k, v := range agg.aggs {
				agg.aggs[k] = v.Gather(sel)
			}
			for k, v := range agg.refs {
				agg.refs[k] = v.Gather(sel)
			}
			n = len(sel)
			ctx = &evalCtx{ex: ex, batch: &Batch{n: n}, aggs: agg.aggs, refs: agg.refs}
		}
	}

	items, _ := expandProjection(stmt, nil)
	for _, it := range items {
		if it.star {
			return nil, fmt.Errorf("SELECT * is not supported with GROUP BY or aggregates")
		}
	}
	var tm trace.Timer
	if ex.traceOn(prefix) {
		tm = ex.tracer.Span(trace.ProjectID(prefix), trace.KindProject).Start()
	}
	var cols []*Vector
	var names []string
	for _, it := range items {
		v, err := ctx.eval(it.expr)
		if err != nil {
			return nil, err
		}
		cols = append(cols, v)
		names = append(names, it.name)
	}
	tm.Done(int64(n))
	sortKeys, err := ex.orderKeyVectors(stmt, items, cols, ctx)
	if err != nil {
		return nil, err
	}
	return ex.epilogue(stmt, names, cols, sortKeys, n, prefix)
}

// orderKeyVectors evaluates the ORDER BY expressions: a bare reference
// naming a projection alias sorts by that output column, a numeric literal
// in range sorts by ordinal, everything else is evaluated in the current
// context.
func (ex *executor) orderKeyVectors(stmt *sqlparser.SelectStatement, items []projItem, cols []*Vector, ctx *evalCtx) ([]*Vector, error) {
	if len(stmt.OrderBy) == 0 {
		return nil, nil
	}
	// Map projection item index to output column index (stars expand ahead
	// of the computed columns).
	itemCol := make([]int, len(items))
	base := 0
	for _, it := range items {
		if it.star {
			base = -1 // star present: computed columns start after the star block
		}
	}
	if base == 0 {
		for i := range items {
			itemCol[i] = i
		}
	} else {
		starWidth := len(cols)
		nonStar := 0
		for _, it := range items {
			if !it.star {
				nonStar++
			}
		}
		starWidth -= nonStar
		next := starWidth
		for i, it := range items {
			if it.star {
				itemCol[i] = -1
				continue
			}
			itemCol[i] = next
			next++
		}
	}

	keys := make([]*Vector, len(stmt.OrderBy))
	for oi, ob := range stmt.OrderBy {
		if cr, ok := ob.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			matched := false
			for ii, it := range items {
				if !it.star && it.name == strings.ToLower(cr.Column) {
					keys[oi] = cols[itemCol[ii]]
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		if num, ok := ob.Expr.(*sqlparser.NumberLit); ok {
			if ns, err := parseNumberScalar(num.Value); err == nil {
				if idx := int(ns.intVal()) - 1; idx >= 0 && idx < len(cols) {
					keys[oi] = cols[idx]
					continue
				}
			}
		}
		v, err := ctx.eval(ob.Expr)
		if err != nil {
			return nil, err
		}
		keys[oi] = v
	}
	return keys, nil
}

// epilogue applies DISTINCT, ORDER BY and LIMIT/OFFSET to the projected
// columns and finishes the result.
func (ex *executor) epilogue(stmt *sqlparser.SelectStatement, names []string, cols []*Vector, sortKeys []*Vector, n int, prefix string) (*Result, error) {
	if stmt.Distinct {
		var tm trace.Timer
		if ex.traceOn(prefix) {
			tm = ex.tracer.Span(trace.DistinctID(prefix), trace.KindDistinct).Start()
		}
		// First-seen survivors through the typed hash table: a fresh group
		// id means an unseen row.
		ht := newHashTable(min(n, 4096))
		kc := ht.prepare(cols)
		var keep []int
		for i := 0; i < n; i++ {
			if _, isNew := kc.getOrInsert(ht, cols, i); isNew {
				keep = append(keep, i)
			}
		}
		if len(keep) < n {
			cols = gatherAll(cols, keep)
			sortKeys = gatherAll(sortKeys, keep)
			n = len(keep)
		}
		tm.Done(int64(n))
	}

	if len(stmt.OrderBy) > 0 {
		var tm trace.Timer
		if ex.traceOn(prefix) {
			tm = ex.tracer.Span(trace.SortID(prefix), trace.KindSort).Start()
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		// The multi-key comparator is compiled once per query: one
		// kind-specialized closure per sort key instead of boxing two
		// scalars per comparison.
		cmps := make([]func(a, b int) int, len(stmt.OrderBy))
		descs := make([]bool, len(stmt.OrderBy))
		for i := range stmt.OrderBy {
			cmps[i] = compiledCmp(sortKeys[i])
			descs[i] = stmt.OrderBy[i].Desc
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ra, rb := idx[a], idx[b]
			for i, cmp := range cmps {
				c := cmp(ra, rb)
				if c == 0 {
					continue
				}
				if descs[i] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := false
		for i := range idx {
			if idx[i] != i {
				sorted = true
				break
			}
		}
		if sorted {
			cols = gatherAll(cols, idx)
		}
		tm.Done(int64(n))
	}

	if stmt.Limit != nil || stmt.Offset != nil {
		var tm trace.Timer
		if ex.traceOn(prefix) {
			tm = ex.tracer.Span(trace.LimitID(prefix), trace.KindLimit).Start()
		}
		start := 0
		if stmt.Offset != nil {
			start = int(*stmt.Offset)
		}
		end := n
		if stmt.Limit != nil && start+int(*stmt.Limit) < end {
			end = start + int(*stmt.Limit)
		}
		if start > n {
			start = n
		}
		keep := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			keep = append(keep, i)
		}
		cols = gatherAll(cols, keep)
		n = len(keep)
		tm.Done(int64(n))
	}

	ex.stats.RowsReturned += int64(n)
	return &Result{Columns: names, Cols: cols}, nil
}

func gatherAll(cols []*Vector, rows []int) []*Vector {
	if cols == nil {
		return nil
	}
	out := make([]*Vector, len(cols))
	for i, c := range cols {
		out[i] = c.Gather(rows)
	}
	return out
}

// compiledCmp builds the comparison closure of one sort key vector,
// specialized to its kind. Every branch reproduces compareScalars over the
// boxed At values exactly — including its float-domain comparison of
// integer keys — so the compiled sort orders rows identically to the
// scalar path (and to the interpreters).
func compiledCmp(v *Vector) func(a, b int) int {
	nulls := v.Nulls
	switch v.Kind {
	case KindNull:
		// All rows NULL: every pair ties.
		return func(a, b int) int { return 0 }
	case KindString:
		if v.Dict != nil {
			// The dictionary is sorted and deduplicated, so code order is
			// exactly strings.Compare order.
			codes := v.Codes
			return func(a, b int) int {
				if c, done := nullCmp(nulls, a, b); done {
					return c
				}
				switch {
				case codes[a] < codes[b]:
					return -1
				case codes[a] > codes[b]:
					return 1
				default:
					return 0
				}
			}
		}
		strs := v.Strs
		return func(a, b int) int {
			if c, done := nullCmp(nulls, a, b); done {
				return c
			}
			return strings.Compare(strs[a], strs[b])
		}
	case KindFloat:
		// Under the int/float duality mask a flagged row's float payload
		// is the exact float64 image of its integer, which is what the
		// scalar path compares too.
		fl := v.Floats
		return func(a, b int) int {
			if c, done := nullCmp(nulls, a, b); done {
				return c
			}
			return cmpFloat(fl[a], fl[b])
		}
	default: // KindInt, KindDate, KindBool
		// compareScalars compares numeric scalars in the float64 domain;
		// keep exactly that (not int64 order) so ties beyond 2^53 break
		// identically.
		ints := v.Ints
		return func(a, b int) int {
			if c, done := nullCmp(nulls, a, b); done {
				return c
			}
			return cmpFloat(float64(ints[a]), float64(ints[b]))
		}
	}
}

// nullCmp resolves comparisons involving NULL rows: NULL sorts below
// everything and ties with NULL. done is false when neither row is NULL.
func nullCmp(nulls []bool, a, b int) (c int, done bool) {
	if nulls == nil {
		return 0, false
	}
	an, bn := nulls[a], nulls[b]
	switch {
	case !an && !bn:
		return 0, false
	case an && bn:
		return 0, true
	case an:
		return -1, true
	default:
		return 1, true
	}
}

func cmpFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}
