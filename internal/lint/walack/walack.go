// Package walack enforces the repository's durability contract: a mutation
// method must not acknowledge success to its caller before the operation
// has been appended to the write-ahead log and fsynced. PR 7 replaced
// whole-file persistence with the sharded WAL precisely so that an
// acknowledged mutation survives a crash; a `return nil` (or `return
// result, nil`) on a path that skipped logApply/metaLogApply reintroduces
// the pre-PR 7 failure mode — the caller observes success, the process
// dies, and recovery replays a log that never heard of the operation.
//
// The analyzer examines every internal/repository function that calls one
// of the WAL append seams (logApply, metaLogApply, or walWriter.append
// directly) — such a function is by construction a mutation path — and
// walks its statements in source order tracking whether an append has
// happened yet. A return whose error result is the literal nil before any
// append is flagged. `return sh.logApply(...)` and friends count as the
// append itself. State set inside a conditional branch does not leak past
// it (conservative: the branch may not be taken), but an append in an if
// *init* statement — the idiomatic `if err := sh.logApply(op, p); err !=
// nil` — propagates, since the init always executes.
//
// Early-out success returns that deliberately skip the WAL (no-op
// mutations, empty leases, derived state) must say so inline:
// //lint:acked <reason>.
package walack

import (
	"go/ast"

	"sqalpel/internal/lint/analysis"
	"sqalpel/internal/lint/lintutil"
)

// Marker restricts the analyzer to the repository package.
const Marker = "internal/repository"

// Token is the suppression token: //lint:acked <reason>.
const Token = "acked"

// appendCallees are the WAL append seams. A call to any of them marks the
// path as durable.
var appendCallees = map[string]bool{"logApply": true, "metaLogApply": true, "append": true}

var Analyzer = &analysis.Analyzer{
	Name: "walack",
	Doc: "flag success returns in internal/repository mutation methods not preceded by a WAL " +
		"append (logApply/metaLogApply); suppress deliberate non-durable acks with //lint:acked <reason>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PathMatches(pass.Pkg.Path(), Marker) {
		return nil, nil
	}
	sup := lintutil.NewSuppressions(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !callsAppendSeam(pass, fd.Body) {
				continue
			}
			if appendCallees[fd.Name.Name] {
				// The seams themselves (and walWriter.append) are the
				// discipline, not subject to it.
				continue
			}
			walkStmts(pass, sup, fd.Body.List, false)
		}
	}
	return nil, nil
}

// callsAppendSeam reports whether the body contains a call to any WAL
// append seam — the signal that this function is a mutation path.
func callsAppendSeam(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isAppendCall(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// isAppendCall matches calls to logApply / metaLogApply / walWriter.append
// defined in the repository package.
func isAppendCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !lintutil.PathMatches(fn.Pkg().Path(), Marker) {
		return false
	}
	return appendCallees[fn.Name()]
}

// walkStmts walks a statement list in source order. appended means a WAL
// append dominates the current position. The per-list state is returned so
// sequential statements see appends made by earlier ones, while branch
// bodies cannot leak state to their join point.
func walkStmts(pass *analysis.Pass, sup *lintutil.Suppressions, stmts []ast.Stmt, appended bool) bool {
	for _, s := range stmts {
		appended = walkStmt(pass, sup, s, appended)
	}
	return appended
}

// walkStmt processes one statement and returns the appended state for the
// statements after it.
func walkStmt(pass *analysis.Pass, sup *lintutil.Suppressions, s ast.Stmt, appended bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if !appended && acksSuccess(pass, s) && !sup.Suppressed(pass.Fset, s.Pos(), Token) {
			pass.Reportf(s.Pos(),
				"success return before WAL append: the caller observes an acknowledged mutation "+
					"that a crash would erase; append via logApply/metaLogApply first, or annotate "+
					"//lint:%s <reason> if this path deliberately mutates nothing durable", Token)
		}
		return appended
	case *ast.IfStmt:
		if s.Init != nil {
			appended = walkStmt(pass, sup, s.Init, appended)
		}
		if containsAppend(pass, s.Cond) {
			appended = true
		}
		walkStmts(pass, sup, s.Body.List, appended)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			walkStmts(pass, sup, e.List, appended)
		case *ast.IfStmt:
			walkStmt(pass, sup, e, appended)
		}
		return appended
	case *ast.BlockStmt:
		// A bare block shares the enclosing control flow; its appends count.
		return walkStmts(pass, sup, s.List, appended)
	case *ast.ForStmt:
		walkStmts(pass, sup, s.Body.List, appended)
		return appended
	case *ast.RangeStmt:
		walkStmts(pass, sup, s.Body.List, appended)
		return appended
	case *ast.SwitchStmt:
		if s.Init != nil {
			appended = walkStmt(pass, sup, s.Init, appended)
		}
		walkCaseBodies(pass, sup, s.Body, appended)
		return appended
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			appended = walkStmt(pass, sup, s.Init, appended)
		}
		walkCaseBodies(pass, sup, s.Body, appended)
		return appended
	case *ast.SelectStmt:
		walkCaseBodies(pass, sup, s.Body, appended)
		return appended
	case *ast.LabeledStmt:
		return walkStmt(pass, sup, s.Stmt, appended)
	default:
		if containsAppend(pass, s) {
			return true
		}
		return appended
	}
}

// walkCaseBodies walks each case/comm clause body with a copy of the
// incoming state (no clause can leak appends to the join point).
func walkCaseBodies(pass *analysis.Pass, sup *lintutil.Suppressions, body *ast.BlockStmt, appended bool) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			walkStmts(pass, sup, cc.Body, appended)
		case *ast.CommClause:
			walkStmts(pass, sup, cc.Body, appended)
		}
	}
}

// containsAppend reports whether the node contains a WAL append call
// (function literals excluded — a closure may never run).
func containsAppend(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok && isAppendCall(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// acksSuccess reports whether the return acknowledges success: its final
// (error-position) result is the literal nil. `return sh.logApply(...)`
// does not match — the append is the result. Naked returns are skipped
// (named results would need value tracking).
func acksSuccess(pass *analysis.Pass, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	id, ok := last.(*ast.Ident)
	return ok && id.Name == "nil"
}
