package cexec

import (
	"errors"
	"fmt"
	"strings"

	"sqalpel/internal/sqlparser"
	"sqalpel/internal/sqlsem"
	"sqalpel/internal/vexec"
)

// This file is the expression compiler: it turns an AST expression into a
// single Go closure over one pipeline row. Compilation mirrors the
// vectorized executor's evaluator case for case — the same resolution
// rules, the same NULL semantics (through the shared sqlsem kernels), the
// same error texts, and the same split between errors that are statement
// properties (unknown columns, malformed literals — raised at compile
// time, which is where vexec raises them even over empty inputs) and
// errors that are data properties (type mismatches — raised from inside
// the closure, only when a row actually exhibits them).
//
// One structural rule keeps the engines' observable behaviour aligned:
// vexec evaluates every sub-expression eagerly over the whole batch, so
// the compiled closures also evaluate all children before applying the
// operator — no short-circuiting in AND/OR/CASE/IN — and the contexts
// vexec wraps with deferToFallback (AND/OR arms, CASE arms, IN list
// items) defer here too, at compile time and at run time alike.

func refKey(table, col string) string {
	return strings.ToLower(table) + "." + strings.ToLower(col)
}

// errEval wraps evaluation failures with the failing expression.
func errEval(e sqlparser.Expr, err error) error {
	return fmt.Errorf("evaluating %q: %w", e.SQL(), err)
}

// deferToFallback marks errors raised in conditionally-evaluated contexts
// as ErrUnsupported: compiled evaluation (like vectorized evaluation) is
// eager, so it can raise errors the interpreters' short-circuiting never
// reaches — those statements fall back to the interpreter, which owns the
// decision whether the query errors.
func deferToFallback(err error) error {
	if err == nil || errors.Is(err, ErrUnsupported) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrUnsupported, err)
}

// constFn lifts a constant into a rowFn.
func constFn(s Scalar) rowFn {
	return func([]Scalar) (Scalar, error) { return s, nil }
}

// compile builds the closure for one expression against a scope.
func (ex *executor) compile(e sqlparser.Expr, sc *scope) (rowFn, error) {
	ex.stats.ClosuresCompiled++
	switch v := e.(type) {
	case *sqlparser.NumberLit:
		s, err := vexec.ParseNumber(v.Value)
		if err != nil {
			return nil, err
		}
		return constFn(s), nil
	case *sqlparser.StringLit:
		return constFn(vexec.StringScalar(v.Value)), nil
	case *sqlparser.BoolLit:
		return constFn(vexec.BoolScalar(v.Value)), nil
	case *sqlparser.NullLit:
		return constFn(vexec.NullScalar()), nil
	case *sqlparser.DateLit:
		d, err := vexec.ParseDateDays(v.Value)
		if err != nil {
			return nil, errEval(e, fmt.Errorf("invalid date %q: %w", v.Value, err))
		}
		return constFn(vexec.DateScalar(d)), nil
	case *sqlparser.IntervalLit:
		// Bare intervals evaluate to their numeric count; date arithmetic
		// with a unit is handled in the BinaryExpr case.
		s, err := vexec.ParseNumber(v.Value)
		if err != nil {
			return nil, err
		}
		return constFn(s), nil
	case *sqlparser.ColumnRef:
		return ex.compileColumn(v, sc)
	case *sqlparser.ParenExpr:
		return ex.compile(v.Expr, sc)
	case *sqlparser.UnaryExpr:
		return ex.compileUnary(v, sc)
	case *sqlparser.BinaryExpr:
		return ex.compileBinary(v, sc)
	case *sqlparser.FuncCall:
		return ex.compileFunc(v, sc)
	case *sqlparser.CaseExpr:
		return ex.compileCase(v, sc)
	case *sqlparser.BetweenExpr:
		return ex.compileBetween(v, sc)
	case *sqlparser.InExpr:
		return ex.compileIn(v, sc)
	case *sqlparser.IsNullExpr:
		val, err := ex.compile(v.Expr, sc)
		if err != nil {
			return nil, err
		}
		not := v.Not
		return func(row []Scalar) (Scalar, error) {
			s, err := val(row)
			if err != nil {
				return Scalar{}, err
			}
			return vexec.BoolScalar(s.IsNull() != not), nil
		}, nil
	case *sqlparser.ExistsExpr:
		return ex.compileExists(v, sc)
	case *sqlparser.SubqueryExpr:
		return ex.compileScalarSub(v, sc)
	case *sqlparser.ExtractExpr:
		return ex.compileExtract(v, sc)
	case *sqlparser.SubstringExpr:
		return ex.compileSubstring(v, sc)
	case *sqlparser.CastExpr:
		return ex.compileCast(v, sc)
	case *sqlparser.ParamRef:
		return nil, fmt.Errorf("unresolved template parameter ${%s}", v.Name)
	default:
		return nil, fmt.Errorf("%w: expression %T", ErrUnsupported, e)
	}
}

// compileColumn resolves a possibly qualified reference against the scope
// with the interpreters' rules: grouped carried references first, then the
// row layout, where unqualified lookups over same-named columns of
// different tables are ambiguous.
func (ex *executor) compileColumn(v *sqlparser.ColumnRef, sc *scope) (rowFn, error) {
	if sc.refs != nil {
		if slot, ok := sc.refs[refKey(v.Table, v.Column)]; ok {
			return func(row []Scalar) (Scalar, error) { return row[slot], nil }, nil
		}
	}
	idx, err := findColumn(sc.meta, v.Table, v.Column)
	if err == errColumnNotFound {
		if v.Table != "" {
			return nil, fmt.Errorf("unknown column %s.%s", v.Table, v.Column)
		}
		return nil, fmt.Errorf("unknown column %s", v.Column)
	}
	if err != nil {
		return nil, err
	}
	return func(row []Scalar) (Scalar, error) { return row[idx], nil }, nil
}

// errColumnNotFound distinguishes "not in this scope" from ambiguity.
var errColumnNotFound = fmt.Errorf("column not found")

func findColumn(meta []colMeta, table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, m := range meta {
		if m.name != name {
			continue
		}
		if table != "" && m.table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		return -1, errColumnNotFound
	}
	return found, nil
}

func (ex *executor) compileUnary(v *sqlparser.UnaryExpr, sc *scope) (rowFn, error) {
	val, err := ex.compile(v.Expr, sc)
	if err != nil {
		return nil, err
	}
	switch v.Op {
	case "NOT":
		return func(row []Scalar) (Scalar, error) {
			s, err := val(row)
			if err != nil {
				return Scalar{}, err
			}
			return vexec.TriScalar(sqlsem.Not(s.Tri())), nil
		}, nil
	case "-":
		return func(row []Scalar) (Scalar, error) {
			s, err := val(row)
			if err != nil {
				return Scalar{}, err
			}
			switch {
			case s.IsNull():
				return vexec.NullScalar(), nil
			case s.ScalarKind() == vexec.KindInt:
				return vexec.IntScalar(-s.Int()), nil
			default:
				return vexec.FloatScalar(-s.Float()), nil
			}
		}, nil
	case "+":
		return val, nil
	default:
		return nil, fmt.Errorf("unknown unary operator %q", v.Op)
	}
}

func (ex *executor) compileBinary(v *sqlparser.BinaryExpr, sc *scope) (rowFn, error) {
	switch v.Op {
	case "AND", "OR":
		l, err := ex.compile(v.Left, sc)
		if err != nil {
			return nil, deferToFallback(err)
		}
		r, err := ex.compile(v.Right, sc)
		if err != nil {
			return nil, deferToFallback(err)
		}
		and := v.Op == "AND"
		return func(row []Scalar) (Scalar, error) {
			// Both arms evaluate eagerly, like the vectorized executor's
			// whole-batch arms; arm errors defer the statement.
			ls, err := l(row)
			if err != nil {
				return Scalar{}, deferToFallback(err)
			}
			rs, err := r(row)
			if err != nil {
				return Scalar{}, deferToFallback(err)
			}
			if and {
				return vexec.TriScalar(sqlsem.And(ls.Tri(), rs.Tri())), nil
			}
			return vexec.TriScalar(sqlsem.Or(ls.Tri(), rs.Tri())), nil
		}, nil
	}

	// Date +/- INTERVAL with a calendar unit.
	if iv, ok := v.Right.(*sqlparser.IntervalLit); ok && (v.Op == "+" || v.Op == "-") {
		l, err := ex.compile(v.Left, sc)
		if err != nil {
			return nil, err
		}
		ns, err := vexec.ParseNumber(iv.Value)
		if err != nil {
			return nil, err
		}
		nv := ns.Int()
		if v.Op == "-" {
			nv = -nv
		}
		unit := iv.Unit
		return func(row []Scalar) (Scalar, error) {
			s, err := l(row)
			if err != nil {
				return Scalar{}, err
			}
			if s.IsNull() {
				return vexec.NullScalar(), nil
			}
			if s.ScalarKind() != vexec.KindDate {
				return Scalar{}, fmt.Errorf("interval arithmetic requires a date, got %s", s.ScalarKind())
			}
			_, days, _, _ := s.Payload()
			d, ok := vexec.AddInterval(days, nv, unit)
			if !ok {
				return Scalar{}, fmt.Errorf("unknown interval unit %q", unit)
			}
			return vexec.DateScalar(d), nil
		}, nil
	}

	l, err := ex.compile(v.Left, sc)
	if err != nil {
		return nil, err
	}
	r, err := ex.compile(v.Right, sc)
	if err != nil {
		return nil, err
	}
	switch op := v.Op; op {
	case "+", "-", "*", "/", "%", "||":
		return func(row []Scalar) (Scalar, error) {
			ls, err := l(row)
			if err != nil {
				return Scalar{}, err
			}
			rs, err := r(row)
			if err != nil {
				return Scalar{}, err
			}
			out, err := vexec.ArithScalar(op, ls, rs)
			if err != nil {
				return Scalar{}, errEval(v, err)
			}
			return out, nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(row []Scalar) (Scalar, error) {
			ls, err := l(row)
			if err != nil {
				return Scalar{}, err
			}
			rs, err := r(row)
			if err != nil {
				return Scalar{}, err
			}
			if ls.IsNull() || rs.IsNull() {
				return vexec.NullScalar(), nil
			}
			return vexec.BoolScalar(sqlsem.Compare(op, vexec.CompareScalars(ls, rs)) == sqlsem.True), nil
		}, nil
	case "LIKE", "NOT LIKE":
		negate := op == "NOT LIKE"
		return func(row []Scalar) (Scalar, error) {
			ls, err := l(row)
			if err != nil {
				return Scalar{}, err
			}
			rs, err := r(row)
			if err != nil {
				return Scalar{}, err
			}
			eitherNull := ls.IsNull() || rs.IsNull()
			matched := false
			if !eitherNull {
				matched = vexec.LikeMatch(ls.Render(), rs.Render())
			}
			return vexec.TriScalar(sqlsem.Like(eitherNull, matched, negate)), nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown binary operator %q", v.Op)
	}
}

func (ex *executor) compileCase(v *sqlparser.CaseExpr, sc *scope) (rowFn, error) {
	var operand rowFn
	var err error
	if v.Operand != nil {
		if operand, err = ex.compile(v.Operand, sc); err != nil {
			return nil, err
		}
	}
	conds := make([]rowFn, len(v.Whens))
	thens := make([]rowFn, len(v.Whens))
	for wi, w := range v.Whens {
		if conds[wi], err = ex.compile(w.When, sc); err != nil {
			return nil, deferToFallback(err)
		}
		if thens[wi], err = ex.compile(w.Then, sc); err != nil {
			return nil, deferToFallback(err)
		}
	}
	var elseFn rowFn
	if v.Else != nil {
		if elseFn, err = ex.compile(v.Else, sc); err != nil {
			return nil, deferToFallback(err)
		}
	}
	return func(row []Scalar) (Scalar, error) {
		// All arms evaluate eagerly (the vectorized executor computes every
		// arm over the whole batch); arm errors defer the statement.
		var opVal Scalar
		if operand != nil {
			var err error
			if opVal, err = operand(row); err != nil {
				return Scalar{}, err
			}
		}
		condVals := make([]Scalar, len(conds))
		thenVals := make([]Scalar, len(thens))
		for wi := range conds {
			var err error
			if condVals[wi], err = conds[wi](row); err != nil {
				return Scalar{}, deferToFallback(err)
			}
			if thenVals[wi], err = thens[wi](row); err != nil {
				return Scalar{}, deferToFallback(err)
			}
		}
		elseVal := vexec.NullScalar()
		if elseFn != nil {
			var err error
			if elseVal, err = elseFn(row); err != nil {
				return Scalar{}, deferToFallback(err)
			}
		}
		for wi := range condVals {
			var hit bool
			if operand != nil {
				hit = vexec.EqualScalars(opVal, condVals[wi])
			} else {
				hit = condVals[wi].Truthy()
			}
			if hit {
				return thenVals[wi], nil
			}
		}
		return elseVal, nil
	}, nil
}

func (ex *executor) compileBetween(v *sqlparser.BetweenExpr, sc *scope) (rowFn, error) {
	val, err := ex.compile(v.Expr, sc)
	if err != nil {
		return nil, err
	}
	lo, err := ex.compile(v.Lo, sc)
	if err != nil {
		return nil, err
	}
	hi, err := ex.compile(v.Hi, sc)
	if err != nil {
		return nil, err
	}
	not := v.Not
	return func(row []Scalar) (Scalar, error) {
		a, err := val(row)
		if err != nil {
			return Scalar{}, err
		}
		l, err := lo(row)
		if err != nil {
			return Scalar{}, err
		}
		h, err := hi(row)
		if err != nil {
			return Scalar{}, err
		}
		geLo := sqlsem.CompareNullable(">=", a.IsNull() || l.IsNull(), compareScalarsNonNull(a, l))
		leHi := sqlsem.CompareNullable("<=", a.IsNull() || h.IsNull(), compareScalarsNonNull(a, h))
		return vexec.TriScalar(sqlsem.Between(geLo, leHi, not)), nil
	}, nil
}

// compareScalarsNonNull compares two scalars when neither is NULL; with a
// NULL operand the result is unused (CompareNullable short-circuits to
// UNKNOWN) and zero is returned.
func compareScalarsNonNull(a, b Scalar) int {
	if a.IsNull() || b.IsNull() {
		return 0
	}
	return vexec.CompareScalars(a, b)
}

func (ex *executor) compileIn(v *sqlparser.InExpr, sc *scope) (rowFn, error) {
	if v.Subquery != nil {
		return ex.compileInSub(v, sc)
	}
	val, err := ex.compile(v.Expr, sc)
	if err != nil {
		return nil, err
	}
	items := make([]rowFn, len(v.List))
	for ii, item := range v.List {
		if items[ii], err = ex.compile(item, sc); err != nil {
			return nil, deferToFallback(err)
		}
	}
	not := v.Not
	return func(row []Scalar) (Scalar, error) {
		a, err := val(row)
		if err != nil {
			return Scalar{}, err
		}
		// The list items evaluate eagerly before the membership scan, like
		// the vectorized executor's item vectors; item errors defer.
		vals := make([]Scalar, len(items))
		for ii := range items {
			if vals[ii], err = items[ii](row); err != nil {
				return Scalar{}, deferToFallback(err)
			}
		}
		var found, listHasNull bool
		for _, s := range vals {
			if vexec.EqualScalars(a, s) {
				found = true
				break
			}
			if s.IsNull() {
				listHasNull = true
			}
		}
		t := sqlsem.In(a.IsNull(), found, listHasNull, false)
		if not {
			t = sqlsem.Not(t)
		}
		return vexec.TriScalar(t), nil
	}, nil
}

func (ex *executor) compileExtract(v *sqlparser.ExtractExpr, sc *scope) (rowFn, error) {
	val, err := ex.compile(v.From, sc)
	if err != nil {
		return nil, err
	}
	unit := v.Unit
	return func(row []Scalar) (Scalar, error) {
		s, err := val(row)
		if err != nil {
			return Scalar{}, err
		}
		if s.IsNull() {
			return vexec.NullScalar(), nil
		}
		if s.ScalarKind() != vexec.KindDate {
			return Scalar{}, errEval(v, fmt.Errorf("EXTRACT requires a date, got %s", s.ScalarKind()))
		}
		_, days, _, _ := s.Payload()
		y, m, d := vexec.DateParts(days)
		switch unit {
		case "YEAR":
			return vexec.IntScalar(int64(y)), nil
		case "MONTH":
			return vexec.IntScalar(int64(m)), nil
		default:
			return vexec.IntScalar(int64(d)), nil
		}
	}, nil
}

func (ex *executor) compileSubstring(v *sqlparser.SubstringExpr, sc *scope) (rowFn, error) {
	val, err := ex.compile(v.Expr, sc)
	if err != nil {
		return nil, err
	}
	start, err := ex.compile(v.Start, sc)
	if err != nil {
		return nil, err
	}
	var length rowFn
	if v.Length != nil {
		if length, err = ex.compile(v.Length, sc); err != nil {
			return nil, err
		}
	}
	return func(row []Scalar) (Scalar, error) {
		s, err := val(row)
		if err != nil {
			return Scalar{}, err
		}
		st, err := start(row)
		if err != nil {
			return Scalar{}, err
		}
		var lv Scalar
		if length != nil {
			if lv, err = length(row); err != nil {
				return Scalar{}, err
			}
		}
		if s.IsNull() {
			return vexec.NullScalar(), nil
		}
		str := s.Render()
		from := int(st.Int()) - 1
		if from < 0 {
			from = 0
		}
		if from > len(str) {
			from = len(str)
		}
		to := len(str)
		if length != nil {
			to = from + int(lv.Int())
			if to > len(str) {
				to = len(str)
			}
			if to < from {
				to = from
			}
		}
		return vexec.StringScalar(str[from:to]), nil
	}, nil
}

func (ex *executor) compileCast(v *sqlparser.CastExpr, sc *scope) (rowFn, error) {
	val, err := ex.compile(v.Expr, sc)
	if err != nil {
		return nil, err
	}
	// The target check is a data-shape property in the vectorized executor:
	// it fires per row after the NULL check, so an unknown target over an
	// all-NULL (or empty) input does not error. The closure mirrors that.
	target := strings.ToLower(v.Type)
	typeName := v.Type
	return func(row []Scalar) (Scalar, error) {
		s, err := val(row)
		if err != nil {
			return Scalar{}, err
		}
		if s.IsNull() {
			return vexec.NullScalar(), nil
		}
		switch target {
		case "integer", "int", "bigint", "smallint":
			return vexec.IntScalar(s.Int()), nil
		case "double", "float", "real", "decimal", "numeric":
			return vexec.FloatScalar(s.Float()), nil
		case "varchar", "char", "text", "string":
			return vexec.StringScalar(s.Render()), nil
		case "date":
			if s.ScalarKind() == vexec.KindDate {
				return s, nil
			}
			d, err := vexec.ParseDateDays(s.Render())
			if err != nil {
				return Scalar{}, fmt.Errorf("invalid date %q: %w", s.Render(), err)
			}
			return vexec.DateScalar(d), nil
		default:
			return Scalar{}, fmt.Errorf("unsupported cast target %q", typeName)
		}
	}, nil
}

func (ex *executor) compileFunc(v *sqlparser.FuncCall, sc *scope) (rowFn, error) {
	if v.IsAggregate() {
		if sc.aggs == nil {
			return nil, fmt.Errorf("aggregate %s used outside GROUP BY context", v.Name)
		}
		slot, ok := sc.aggs[v.SQL()]
		if !ok {
			return nil, fmt.Errorf("internal: aggregate %s was not precomputed", v.SQL())
		}
		return func(row []Scalar) (Scalar, error) { return row[slot], nil }, nil
	}
	args := make([]rowFn, len(v.Args))
	for ai, a := range v.Args {
		var err error
		if args[ai], err = ex.compile(a, sc); err != nil {
			return nil, err
		}
	}
	evalArgs := func(row []Scalar) ([]Scalar, error) {
		vals := make([]Scalar, len(args))
		for ai := range args {
			var err error
			if vals[ai], err = args[ai](row); err != nil {
				return nil, err
			}
		}
		return vals, nil
	}
	switch v.Name {
	case "abs":
		if len(args) != 1 {
			return nil, fmt.Errorf("abs expects 1 argument")
		}
		return func(row []Scalar) (Scalar, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Scalar{}, err
			}
			s := vals[0]
			if s.IsNull() {
				return vexec.NullScalar(), nil
			}
			f := s.Float()
			if f < 0 {
				f = -f
			}
			if s.ScalarKind() == vexec.KindInt {
				return vexec.IntScalar(int64(f)), nil
			}
			return vexec.FloatScalar(f), nil
		}, nil
	case "length", "char_length":
		if len(args) != 1 {
			return nil, fmt.Errorf("%s expects 1 argument", v.Name)
		}
		// No NULL check: the interpreters (and vexec) measure the rendered
		// value, and NULL renders as the 4-character string "NULL".
		return func(row []Scalar) (Scalar, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Scalar{}, err
			}
			return vexec.IntScalar(int64(len(vals[0].Render()))), nil
		}, nil
	case "upper", "lower":
		upper := v.Name == "upper"
		return func(row []Scalar) (Scalar, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Scalar{}, err
			}
			if upper {
				return vexec.StringScalar(strings.ToUpper(vals[0].Render())), nil
			}
			return vexec.StringScalar(strings.ToLower(vals[0].Render())), nil
		}, nil
	case "coalesce":
		return func(row []Scalar) (Scalar, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Scalar{}, err
			}
			for _, s := range vals {
				if !s.IsNull() {
					return s, nil
				}
			}
			return vexec.NullScalar(), nil
		}, nil
	case "round":
		if len(args) == 0 {
			return nil, fmt.Errorf("round expects at least 1 argument")
		}
		return func(row []Scalar) (Scalar, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return Scalar{}, err
			}
			f := vals[0].Float()
			scale := 0
			if len(vals) > 1 {
				scale = int(vals[1].Int())
			}
			mult := 1.0
			for j := 0; j < scale; j++ {
				mult *= 10
			}
			half := 0.5
			if f < 0 {
				half = -0.5
			}
			return vexec.FloatScalar(float64(int64(f*mult+half)) / mult), nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown function %q", v.Name)
	}
}
