package vexec

import (
	"errors"
	"fmt"
	"testing"

	"sqalpel/internal/sqlparser"
)

// mapCatalog is the test catalog: a plain name -> table map.
type mapCatalog map[string]*Table

func (m mapCatalog) VTable(name string) (*Table, error) {
	if t, ok := m[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("unknown table %q", name)
}

func intVec(vals ...int64) *Vector {
	v := NewVector(KindInt, len(vals))
	copy(v.Ints, vals)
	return v
}

func floatVec(vals ...float64) *Vector {
	v := NewVector(KindFloat, len(vals))
	copy(v.Floats, vals)
	return v
}

func strVec(vals ...string) *Vector {
	v := NewVector(KindString, len(vals))
	copy(v.Strs, vals)
	return v
}

func allNullVec(kind Kind, n int) *Vector {
	v := NewVector(kind, n)
	for i := 0; i < n; i++ {
		v.SetNull(i)
	}
	return v
}

func run(t *testing.T, cat Catalog, sql string, opts Options) *Result {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := Execute(cat, stmt, opts)
	if err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
	return res
}

func runErr(t *testing.T, cat Catalog, sql string, opts Options) error {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	_, err = Execute(cat, stmt, opts)
	return err
}

// seqCatalog builds a single-table catalog t(x int, y float, s string) with
// n rows: x = 0..n-1, y = float(x)/2, s = "s<x%5>".
func seqCatalog(n int) mapCatalog {
	xs := make([]int64, n)
	ys := make([]float64, n)
	ss := make([]string, n)
	for i := 0; i < n; i++ {
		xs[i] = int64(i)
		ys[i] = float64(i) / 2
		ss[i] = fmt.Sprintf("s%d", i%5)
	}
	return mapCatalog{"t": NewTable("t",
		TableColumn{Name: "x", Vec: intVec(xs...)},
		TableColumn{Name: "y", Vec: floatVec(ys...)},
		TableColumn{Name: "s", Vec: strVec(ss...)},
	)}
}

// TestFilterSkipsEmptyBatches drives a filter whose matches live in a single
// middle batch, so the surrounding batches are filtered to empty selections
// and must be skipped — including the batch that matches nothing at all (the
// empty selection vector must not read as "all rows live").
func TestFilterSkipsEmptyBatches(t *testing.T) {
	cat := seqCatalog(3000)
	opts := Options{BatchSize: 1024}

	res := run(t, cat, "SELECT count(*), sum(x) FROM t WHERE x >= 1500 AND x < 1510", opts)
	if got := res.Cols[0].Ints[0]; got != 10 {
		t.Errorf("count = %d, want 10", got)
	}
	if got := res.Cols[1].Ints[0]; got != 15045 {
		t.Errorf("sum = %d, want 15045", got)
	}

	// Zero matches anywhere: every batch ends with an empty selection.
	res = run(t, cat, "SELECT count(*) FROM t WHERE x < 0", opts)
	if got := res.Cols[0].Ints[0]; got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
	res = run(t, cat, "SELECT x FROM t WHERE x < 0", opts)
	if res.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", res.NumRows())
	}
}

// TestBatchBoundarySplits runs the same aggregation under batch sizes that
// split groups across batch boundaries in different places; the results must
// not depend on the batch size.
func TestBatchBoundarySplits(t *testing.T) {
	cat := seqCatalog(257)
	var want string
	for _, bs := range []int{1, 7, 64, 256, 257, 4096} {
		res := run(t, cat, "SELECT s, count(*) AS c, sum(x) AS sx FROM t GROUP BY s ORDER BY s", Options{BatchSize: bs})
		if res.NumRows() != 5 {
			t.Fatalf("batch size %d: groups = %d, want 5", bs, res.NumRows())
		}
		got := ""
		for i := 0; i < res.NumRows(); i++ {
			got += fmt.Sprintf("%s:%d:%d|", res.Cols[0].Strs[i], res.Cols[1].Ints[i], res.Cols[2].Ints[i])
		}
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("batch size %d changed the result: %s vs %s", bs, got, want)
		}
	}
}

// TestAllNullColumns exercises aggregation, filtering and grouping over a
// column that is entirely NULL.
func TestAllNullColumns(t *testing.T) {
	cat := mapCatalog{"t": NewTable("t",
		TableColumn{Name: "v", Vec: allNullVec(KindInt, 100)},
		TableColumn{Name: "x", Vec: intVec(seq(100)...)},
	)}
	opts := Options{BatchSize: 32}

	res := run(t, cat, "SELECT count(v), count(*), sum(v), avg(v), min(v) FROM t", opts)
	if got := res.Cols[0].Ints[0]; got != 0 {
		t.Errorf("count(v) = %d, want 0", got)
	}
	if got := res.Cols[1].Ints[0]; got != 100 {
		t.Errorf("count(*) = %d, want 100", got)
	}
	for c := 2; c <= 4; c++ {
		if !res.Cols[c].IsNull(0) {
			t.Errorf("column %d should be NULL over an all-NULL input", c)
		}
	}

	// Comparisons against NULL are false: no rows survive.
	res = run(t, cat, "SELECT count(*) FROM t WHERE v = 1 OR v <> 1", opts)
	if got := res.Cols[0].Ints[0]; got != 0 {
		t.Errorf("NULL comparisons kept %d rows", got)
	}
	res = run(t, cat, "SELECT count(*) FROM t WHERE v IS NULL", opts)
	if got := res.Cols[0].Ints[0]; got != 100 {
		t.Errorf("IS NULL kept %d rows, want 100", got)
	}

	// Grouping by the NULL column folds everything into one group.
	res = run(t, cat, "SELECT count(*) FROM t GROUP BY v", opts)
	if res.NumRows() != 1 || res.Cols[0].Ints[0] != 100 {
		t.Errorf("GROUP BY null column: %d groups", res.NumRows())
	}
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// TestJoinEdgeCases drives the hash join through empty sides, NULL keys and
// filtered inputs.
func TestJoinEdgeCases(t *testing.T) {
	left := NewTable("l",
		TableColumn{Name: "lk", Vec: intVec(1, 2, 2, 3)},
		TableColumn{Name: "lv", Vec: strVec("a", "b", "c", "d")},
	)
	rk := intVec(2, 2, 4, 0)
	rk.SetNull(3)
	right := NewTable("r",
		TableColumn{Name: "rk", Vec: rk},
		TableColumn{Name: "rv", Vec: strVec("x", "y", "z", "n")},
	)
	empty := NewTable("e", TableColumn{Name: "ek", Vec: intVec()})
	cat := mapCatalog{"l": left, "r": right, "e": empty}
	opts := Options{BatchSize: 2}

	// 2x2 matches for key 2.
	res := run(t, cat, "SELECT lv, rv FROM l, r WHERE lk = rk", opts)
	if res.NumRows() != 4 {
		t.Fatalf("join rows = %d, want 4", res.NumRows())
	}

	// Empty build/probe sides.
	res = run(t, cat, "SELECT lv FROM l, e WHERE lk = ek", opts)
	if res.NumRows() != 0 {
		t.Errorf("join with empty side: %d rows", res.NumRows())
	}

	// A filter that empties one side before the join.
	res = run(t, cat, "SELECT lv, rv FROM l, r WHERE lk = rk AND lk > 100", opts)
	if res.NumRows() != 0 {
		t.Errorf("join over emptied side: %d rows", res.NumRows())
	}

	// Cross join row count and the join-size guard.
	res = run(t, cat, "SELECT count(*) FROM l, r", opts)
	if got := res.Cols[0].Ints[0]; got != 16 {
		t.Errorf("cross join count = %d, want 16", got)
	}
	err := runErr(t, cat, "SELECT count(*) FROM l, r", Options{BatchSize: 2, MaxJoinRows: 8})
	if err == nil {
		t.Error("expected the join-size guard to fire")
	}
}

// TestIntFloatDuality locks in the SQL value semantics of integer division:
// exact quotients stay integers, inexact ones become floats — per row, not
// per vector.
func TestIntFloatDuality(t *testing.T) {
	cat := mapCatalog{"t": NewTable("t", TableColumn{Name: "x", Vec: intVec(6, 7)})}
	res := run(t, cat, "SELECT x / 2 AS h FROM t", Options{})
	k0, i0, _, _ := res.Cols[0].ValueAt(0)
	if k0 != KindInt || i0 != 3 {
		t.Errorf("6/2 = kind %v value %d, want int 3", k0, i0)
	}
	k1, _, f1, _ := res.Cols[0].ValueAt(1)
	if k1 != KindFloat || f1 != 3.5 {
		t.Errorf("7/2 = kind %v value %v, want float 3.5", k1, f1)
	}

	// The duality must survive aggregation: one inexact row makes the sum a
	// float, all-exact rows keep it an integer.
	res = run(t, cat, "SELECT sum(x / 2) FROM t", Options{})
	if k, _, f, _ := res.Cols[0].ValueAt(0); k != KindFloat || f != 6.5 {
		t.Errorf("sum = kind %v %v, want float 6.5", k, f)
	}
	res = run(t, cat, "SELECT sum(x / 1) FROM t", Options{})
	if k, i, _, _ := res.Cols[0].ValueAt(0); k != KindInt || i != 13 {
		t.Errorf("sum = kind %v %v, want int 13", k, i)
	}
}

// TestDistinctOrderLimit combines the epilogue stages over multiple batches.
func TestDistinctOrderLimit(t *testing.T) {
	cat := seqCatalog(100)
	opts := Options{BatchSize: 16}
	res := run(t, cat, "SELECT DISTINCT s FROM t ORDER BY s DESC LIMIT 3 OFFSET 1", opts)
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.NumRows())
	}
	want := []string{"s3", "s2", "s1"}
	for i, w := range want {
		if res.Cols[0].Strs[i] != w {
			t.Errorf("row %d = %q, want %q", i, res.Cols[0].Strs[i], w)
		}
	}
}

// TestUnsupportedStatements verifies the static subset check reports
// ErrUnsupported for the shapes the interpreter must handle instead.
func TestUnsupportedStatements(t *testing.T) {
	cat := seqCatalog(10)
	for _, sql := range []string{
		"SELECT x FROM t UNION SELECT x FROM t",
		"SELECT (SELECT max(b.x) FROM t b WHERE b.x = a.x) FROM t a",
		"SELECT a.x FROM t a WHERE EXISTS (SELECT 1 FROM t b WHERE b.x > a.x)",
	} {
		err := runErr(t, cat, sql, Options{})
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("%q: err = %v, want ErrUnsupported", sql, err)
		}
	}
	// Plain errors stay plain: unknown tables and columns are not fallback
	// material.
	if err := runErr(t, cat, "SELECT x FROM nope", Options{}); err == nil || errors.Is(err, ErrUnsupported) {
		t.Errorf("unknown table: err = %v", err)
	}
	if err := runErr(t, cat, "SELECT nope FROM t", Options{}); err == nil || errors.Is(err, ErrUnsupported) {
		t.Errorf("unknown column: err = %v", err)
	}
}

// TestSubqueriesAndOuterJoins covers the shapes that moved from the
// fallback list into the native subset: derived tables, LEFT joins,
// uncorrelated sub-queries (materialized once) and correlated ones
// (decorrelated into hash probes).
func TestSubqueriesAndOuterJoins(t *testing.T) {
	cat := seqCatalog(10) // x = 0..9
	cases := []struct {
		sql  string
		want []int64
	}{
		{"SELECT d.x FROM (SELECT x FROM t WHERE x < 3) d", []int64{0, 1, 2}},
		{"SELECT a.x FROM t a LEFT JOIN t b ON a.x = b.x AND b.x < 2 WHERE b.x IS NULL ORDER BY a.x LIMIT 3",
			[]int64{2, 3, 4}},
		{"SELECT x FROM t WHERE x IN (SELECT x FROM t WHERE x < 3)", []int64{0, 1, 2}},
		{"SELECT x FROM t WHERE x NOT IN (SELECT x FROM t WHERE x > 2) ORDER BY x", []int64{0, 1, 2}},
		{"SELECT x FROM t WHERE EXISTS (SELECT 1 FROM t b WHERE b.x > 100)", nil},
		{"SELECT x FROM t WHERE x < (SELECT min(x) + 2 FROM t)", []int64{0, 1}},
		// Correlated EXISTS: rows with a matching partner below them.
		{"SELECT a.x FROM t a WHERE EXISTS (SELECT 1 FROM t b WHERE b.x = a.x AND b.s = 's0')",
			[]int64{0, 5}},
		// Correlated NOT EXISTS over an equi key.
		{"SELECT a.x FROM t a WHERE NOT EXISTS (SELECT 1 FROM t b WHERE b.x = a.x AND b.x < 8)",
			[]int64{8, 9}},
		// Correlated scalar aggregate: count of same-label rows.
		{"SELECT a.x FROM t a WHERE (SELECT count(*) FROM t b WHERE b.s = a.s) = 2 ORDER BY a.x LIMIT 4",
			[]int64{0, 1, 2, 3}},
	}
	for _, tc := range cases {
		res := run(t, cat, tc.sql, Options{BatchSize: 4})
		if res.NumRows() != len(tc.want) {
			t.Errorf("%q: %d rows, want %d", tc.sql, res.NumRows(), len(tc.want))
			continue
		}
		for i, w := range tc.want {
			if _, got, _, _ := res.Cols[0].ValueAt(i); got != w {
				t.Errorf("%q row %d = %d, want %d", tc.sql, i, got, w)
			}
		}
	}
}

// TestStatsCounters sanity-checks the pipeline counters.
func TestStatsCounters(t *testing.T) {
	cat := seqCatalog(3000)
	res := run(t, cat, "SELECT s, count(*) FROM t WHERE x >= 10 GROUP BY s", Options{BatchSize: 1024})
	if res.Stats.RowsScanned != 3000 {
		t.Errorf("rows scanned = %d", res.Stats.RowsScanned)
	}
	if res.Stats.Batches != 3 {
		t.Errorf("batches = %d, want 3", res.Stats.Batches)
	}
	if res.Stats.FilterPasses == 0 || res.Stats.Groups != 5 {
		t.Errorf("filter passes = %d, groups = %d", res.Stats.FilterPasses, res.Stats.Groups)
	}
	if res.Stats.RowsReturned != 5 {
		t.Errorf("rows returned = %d", res.Stats.RowsReturned)
	}
}
