package vexec

import (
	"math"
	"sync/atomic"
	"testing"
)

// parCatalog builds a two-table catalog big enough to cross the morsel and
// parallel-join thresholds: f(x int, y float, s string, nk int-with-NULLs)
// with rows rows, and dim(k int, name string) with dims rows.
func parCatalog(rows, dims int) mapCatalog {
	x := NewVector(KindInt, rows)
	y := NewVector(KindFloat, rows)
	s := NewVector(KindString, rows)
	nk := NewVector(KindInt, rows)
	for i := 0; i < rows; i++ {
		x.Ints[i] = int64(i % (dims * 2))
		y.Floats[i] = float64(i%97) / 7 // non-integral floats: order-sensitive sums
		s.Strs[i] = "g" + string(rune('a'+i%23))
		if i%11 == 0 {
			nk.SetNull(i)
		} else {
			nk.Ints[i] = int64(i % 5)
		}
	}
	k := NewVector(KindInt, dims)
	name := NewVector(KindString, dims)
	for i := 0; i < dims; i++ {
		k.Ints[i] = int64(i)
		name.Strs[i] = "d" + string(rune('a'+i%19))
	}
	return mapCatalog{
		"f": NewTable("f",
			TableColumn{Name: "x", Vec: x},
			TableColumn{Name: "y", Vec: y},
			TableColumn{Name: "s", Vec: s},
			TableColumn{Name: "nk", Vec: nk},
		),
		"dim": NewTable("dim",
			TableColumn{Name: "k", Vec: k},
			TableColumn{Name: "name", Vec: name},
		),
	}
}

// scalarEqual is bitwise scalar equality (floats compare by bit pattern, so
// a reordered float sum cannot hide behind printf rounding).
func scalarEqual(a, b scalar) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindFloat:
		return math.Float64bits(a.f) == math.Float64bits(b.f)
	case KindString:
		return a.s == b.s
	default:
		return a.i == b.i
	}
}

// resultsIdentical reports whether two results agree bit for bit: columns,
// row order, row values and the execution counters.
func resultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Columns) != len(b.Columns) || a.NumRows() != b.NumRows() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, len(a.Columns), a.NumRows(), len(b.Columns), b.NumRows())
	}
	for c := range a.Cols {
		av, bv := a.Cols[c], b.Cols[c]
		for i := 0; i < a.NumRows(); i++ {
			if !scalarEqual(av.At(i), bv.At(i)) {
				t.Fatalf("%s: col %d row %d: %v vs %v", label, c, i, av.At(i), bv.At(i))
			}
		}
	}
	if a.Stats != b.Stats {
		t.Errorf("%s: stats diverge: %+v vs %+v", label, a.Stats, b.Stats)
	}
}

// TestParallelMatchesSerial runs the operator spectrum — multi-conjunct
// filters, typed and compound grouping, DISTINCT aggregates, HAVING,
// hash joins past the partitioned-build threshold, DISTINCT and ORDER BY
// epilogues — at Parallelism 1, 2 and 8. Every result must be bit-identical
// to the serial run, including the float sums (the morsel fold replays the
// serial accumulation order) and the execution counters.
func TestParallelMatchesSerial(t *testing.T) {
	cat := parCatalog(7000, 600)
	queries := []string{
		"SELECT count(*), sum(y), avg(y), min(s), max(x) FROM f",
		"SELECT x, count(*) AS c, sum(y) AS sy FROM f WHERE x > 3 AND y > 0.5 GROUP BY x",
		"SELECT s, sum(y), count(DISTINCT x) FROM f GROUP BY s",
		"SELECT x, s, avg(y) FROM f GROUP BY x, s HAVING count(*) > 2",
		"SELECT nk, count(*), sum(y) FROM f GROUP BY nk",
		"SELECT f.x, dim.name, f.y FROM f, dim WHERE f.x = dim.k AND f.y > 1",
		"SELECT count(*), sum(f.y) FROM f, dim WHERE f.x = dim.k",
		// Nullable join keys: NULL nk rows must be skipped identically by
		// the serial and the partitioned morsel-parallel join (probe-side
		// NULLs here: dim is the smaller build side).
		"SELECT count(*), sum(f.y) FROM f, dim WHERE f.nk = dim.k",
		"SELECT dim.name, count(*) FROM f, dim WHERE f.nk = dim.k GROUP BY dim.name ORDER BY 2 DESC, 1 LIMIT 5",
		// Build-side NULL keys: the self-join builds on b (nk nullable).
		"SELECT count(*), sum(a.y) FROM f a, f b WHERE a.x = b.nk",
		// NULL keys on BOTH sides — the case where dropping either
		// nullKeyRow guard would make NULL = NULL match and inflate the
		// count (a is filtered small, so it becomes the build side).
		"SELECT count(*), sum(b.y) FROM f a, f b WHERE a.y > 13 AND a.nk = b.nk",
		"SELECT dim.name, sum(f.y) FROM f, dim WHERE f.x = dim.k GROUP BY dim.name ORDER BY 2 DESC LIMIT 7",
		"SELECT DISTINCT s FROM f ORDER BY s",
		"SELECT DISTINCT x, s FROM f WHERE x < 40 ORDER BY x DESC, s LIMIT 25",
		"SELECT x, y FROM f WHERE s = 'gb' ORDER BY y DESC, x",
		"SELECT sum(x) FROM f WHERE x < 0", // empty input, global group
	}
	for _, sql := range queries {
		serial := run(t, cat, sql, Options{})
		for _, p := range []int{1, 2, 8} {
			par := run(t, cat, sql, Options{Parallelism: p})
			resultsIdentical(t, sql, serial, par)
		}
		// A batch size that misaligns morsel boundaries must not matter.
		odd := run(t, cat, sql, Options{Parallelism: 8, BatchSize: 333})
		small := run(t, cat, sql, Options{BatchSize: 333})
		resultsIdentical(t, sql+" [bs=333]", small, odd)
	}
}

// TestParallelJoinGuard confirms the join-size guard fires identically on
// the partitioned path.
func TestParallelJoinGuard(t *testing.T) {
	cat := parCatalog(7000, 600)
	sql := "SELECT count(*) FROM f, dim WHERE f.x = dim.k"
	serialErr := runErr(t, cat, sql, Options{MaxJoinRows: 10})
	parErr := runErr(t, cat, sql, Options{MaxJoinRows: 10, Parallelism: 8})
	if serialErr == nil || parErr == nil {
		t.Fatalf("join guard: serial=%v parallel=%v", serialErr, parErr)
	}
	// The cross-join guard divides before multiplying (nl*nr could wrap
	// before the comparison), so oversized products are rejected up front
	// without materializing index vectors.
	if err := runErr(t, cat, "SELECT count(*) FROM f, f f2", Options{MaxJoinRows: 1000}); err == nil {
		t.Error("cross-join guard did not fire")
	}
}

// TestSplitPipeline checks the morsel decomposition of operator chains.
func TestSplitPipeline(t *testing.T) {
	cat := parCatalog(100, 10)
	table, _ := cat.VTable("f")
	ex := &executor{cat: cat, opts: Options{BatchSize: 16}}
	scan := newScanOp(ex, table, "")
	src, passes, ok := splitPipeline(scan)
	if !ok || src.rows != 100 || !src.scan || len(passes) != 0 {
		t.Fatalf("scan split: ok=%v rows=%d scan=%v passes=%d", ok, src.rows, src.scan, len(passes))
	}
	if _, _, ok := splitPipeline(&dualOp{}); ok {
		t.Error("dual must not split")
	}
	consumed := newScanOp(ex, table, "")
	if _, err := consumed.next(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := splitPipeline(consumed); ok {
		t.Error("partially consumed scans must not split")
	}
}

// TestParallelFor exercises the morsel pool driver itself.
func TestParallelFor(t *testing.T) {
	for _, p := range []int{1, 3, 16} {
		var sum atomic.Int64
		hits := make([]int32, 1000)
		parallelFor(p, len(hits), func(i int) {
			atomic.AddInt32(&hits[i], 1)
			sum.Add(int64(i))
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("p=%d: index %d ran %d times", p, i, h)
			}
		}
		if want := int64(len(hits)) * int64(len(hits)-1) / 2; sum.Load() != want {
			t.Fatalf("p=%d: sum %d want %d", p, sum.Load(), want)
		}
	}
	// Zero work must not hang or spawn.
	parallelFor(4, 0, func(int) { t.Fatal("called") })
}
