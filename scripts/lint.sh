#!/usr/bin/env bash
# One-shot lint entrypoint: builds and runs the full static gate that CI
# enforces, in CI's order.
#
#   scripts/lint.sh              # gate the whole tree
#   scripts/lint.sh ./internal/plan/   # gate specific packages
#
# Steps:
#   1. go vet ./...         — standard vet suite (copylocks, atomic,
#                             printf, ...; nilness is an x/tools-only
#                             analyzer and would need network to fetch).
#   2. gofmt -l             — formatting gate.
#   3. sqalpel-vet          — the project analyzers (internal/lint):
#                             mapiterdet, lockmarshal, sqlsemroute,
#                             tracenilalloc, walack. Exit 2 on findings.
#   4. govulncheck          — informational only, skipped when the binary
#                             is not installed (it needs network anyway).
#
# sqalpel-vet is also usable through the standard vet driver:
#   go build -o bin/sqalpel-vet ./cmd/sqalpel-vet
#   go vet -vettool=$(pwd)/bin/sqalpel-vet ./...
set -u
cd "$(dirname "$0")/.."

targets=("$@")
if [ ${#targets[@]} -eq 0 ]; then
  targets=("./...")
fi

fail=0

echo "== go vet"
go vet "${targets[@]}" || fail=1

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
  echo "$badfmt"
  echo "gofmt: files above need formatting"
  fail=1
fi

echo "== sqalpel-vet"
mkdir -p bin
go build -o bin/sqalpel-vet ./cmd/sqalpel-vet || exit 1
./bin/sqalpel-vet "${targets[@]}" || fail=1

echo "== govulncheck (informational)"
if command -v govulncheck >/dev/null 2>&1; then
  govulncheck "${targets[@]}" || echo "govulncheck reported findings (non-blocking)"
else
  echo "govulncheck not installed; skipping"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
