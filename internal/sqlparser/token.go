// Package sqlparser implements a lexer and recursive-descent parser for the
// SQL dialect used throughout sqalpel: the subset of SQL-92 plus the common
// analytic extensions needed by TPC-H, the Star Schema Benchmark and the
// airtraffic workloads (joins, sub-queries, CASE expressions, EXISTS / IN /
// BETWEEN / LIKE predicates, arithmetic, aggregates, date literals and
// intervals, GROUP BY / HAVING / ORDER BY / LIMIT).
//
// The parser produces an AST (see ast.go) that the derive package walks to
// turn a baseline query into a sqalpel query-space grammar, and that the
// engine package compiles into executable plans.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies a lexical token.
type TokenKind int

// Token kinds produced by the lexer.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokOperator
	TokLParen
	TokRParen
	TokComma
	TokSemicolon
	TokDot
	TokParam // ${name} style parameter, used when parsing template text
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokOperator:
		return "operator"
	case TokLParen:
		return "("
	case TokRParen:
		return ")"
	case TokComma:
		return ","
	case TokSemicolon:
		return ";"
	case TokDot:
		return "."
	case TokParam:
		return "parameter"
	default:
		return "unknown"
	}
}

// Token is a single lexical token with its position in the input.
type Token struct {
	Kind TokenKind
	Text string // raw text; keywords are upper-cased, identifiers keep their case
	Pos  int    // byte offset in the input
	Line int    // 1-based line number
	Col  int    // 1-based column number
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords recognised by the lexer. Identifiers matching these (case
// insensitively) are classified as TokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "EXISTS": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true, "DISTINCT": true,
	"ALL": true, "ANY": true, "SOME": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "JOIN": true, "INNER": true,
	"LEFT": true, "RIGHT": true, "FULL": true, "OUTER": true, "CROSS": true,
	"ON": true, "USING": true, "UNION": true, "EXCEPT": true, "INTERSECT": true,
	"ASC": true, "DESC": true, "DATE": true, "INTERVAL": true, "YEAR": true,
	"MONTH": true, "DAY": true, "EXTRACT": true, "SUBSTRING": true, "FOR": true,
	"CAST": true, "TRUE": true, "FALSE": true, "TOP": true, "NULLS": true,
	"FIRST": true, "LAST": true, "WITH": true, "VALUES": true,
}

// aggregate function names; used by the parser and by derive to classify
// projection elements.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregateName reports whether name (any case) is a recognised SQL
// aggregate function name.
func IsAggregateName(name string) bool {
	return aggregateFuncs[strings.ToUpper(name)]
}

// IsKeyword reports whether the given word (any case) is a reserved keyword
// of the sqalpel SQL dialect.
func IsKeyword(word string) bool {
	return keywords[strings.ToUpper(word)]
}

// Lexer turns SQL text into a stream of tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over the given SQL text.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize lexes the whole input and returns the token slice terminated by a
// TokEOF token. It returns an error for unterminated strings or illegal
// characters.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peekByteAt(1) == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByteAt(1) == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token in the input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start, line, col := l.pos, l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start, Line: line, Col: col}, nil
	}
	c := l.peekByte()
	switch {
	case c == '(':
		l.advance()
		return Token{Kind: TokLParen, Text: "(", Pos: start, Line: line, Col: col}, nil
	case c == ')':
		l.advance()
		return Token{Kind: TokRParen, Text: ")", Pos: start, Line: line, Col: col}, nil
	case c == ',':
		l.advance()
		return Token{Kind: TokComma, Text: ",", Pos: start, Line: line, Col: col}, nil
	case c == ';':
		l.advance()
		return Token{Kind: TokSemicolon, Text: ";", Pos: start, Line: line, Col: col}, nil
	case c == '$' && l.peekByteAt(1) == '{':
		// ${name} template parameter (used by the grammar layer).
		l.advance()
		l.advance()
		var sb strings.Builder
		for l.pos < len(l.src) && l.peekByte() != '}' {
			sb.WriteByte(l.advance())
		}
		if l.pos >= len(l.src) {
			return Token{}, fmt.Errorf("line %d: unterminated ${...} parameter", line)
		}
		l.advance() // consume '}'
		return Token{Kind: TokParam, Text: sb.String(), Pos: start, Line: line, Col: col}, nil
	case c == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("line %d: unterminated string literal", line)
			}
			ch := l.advance()
			if ch == '\'' {
				// '' escapes a quote inside a string
				if l.peekByte() == '\'' {
					l.advance()
					sb.WriteByte('\'')
					continue
				}
				break
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: start, Line: line, Col: col}, nil
	case c == '"':
		// Double-quoted identifier.
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("line %d: unterminated quoted identifier", line)
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokIdent, Text: sb.String(), Pos: start, Line: line, Col: col}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peekByteAt(1))):
		var sb strings.Builder
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			ch := l.peekByte()
			if isDigit(ch) {
				sb.WriteByte(l.advance())
				continue
			}
			if ch == '.' && !seenDot && !seenExp {
				seenDot = true
				sb.WriteByte(l.advance())
				continue
			}
			if (ch == 'e' || ch == 'E') && !seenExp && isDigitOrSign(l.peekByteAt(1)) {
				seenExp = true
				sb.WriteByte(l.advance())
				if l.peekByte() == '+' || l.peekByte() == '-' {
					sb.WriteByte(l.advance())
				}
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: sb.String(), Pos: start, Line: line, Col: col}, nil
	case c == '.':
		l.advance()
		return Token{Kind: TokDot, Text: ".", Pos: start, Line: line, Col: col}, nil
	case isIdentStart(c):
		var sb strings.Builder
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			sb.WriteByte(l.advance())
		}
		word := sb.String()
		if IsKeyword(word) {
			return Token{Kind: TokKeyword, Text: strings.ToUpper(word), Pos: start, Line: line, Col: col}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start, Line: line, Col: col}, nil
	default:
		// Operators, possibly two characters.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=", "||":
			l.advance()
			l.advance()
			return Token{Kind: TokOperator, Text: two, Pos: start, Line: line, Col: col}, nil
		}
		switch c {
		case '=', '<', '>', '+', '-', '*', '/', '%':
			l.advance()
			return Token{Kind: TokOperator, Text: string(c), Pos: start, Line: line, Col: col}, nil
		}
		return Token{}, fmt.Errorf("line %d col %d: illegal character %q", line, col, string(c))
	}
}

func isDigitOrSign(c byte) bool {
	return isDigit(c) || c == '+' || c == '-'
}
