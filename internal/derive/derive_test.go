package derive

import (
	"strings"
	"testing"

	"sqalpel/internal/grammar"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/workload"
)

func TestFromSQLNationBaseline(t *testing.T) {
	g, err := FromSQL(workload.NationBaselineQuery, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.Start != "query" {
		t.Errorf("start = %q", g.Start)
	}
	proj := g.Rule("l_projection")
	if proj == nil || len(proj.Literals()) != 4 {
		t.Fatalf("l_projection should carry the 4 nation columns, got %+v", proj)
	}
	if g.Rule("l_tables") == nil {
		t.Fatal("expected l_tables rule")
	}
	rep := g.Check()
	if !rep.OK() {
		t.Errorf("derived grammar not clean: %v", rep)
	}
	// Every sentence must reference the nation table and parse as SQL.
	gen, err := grammar.NewGenerator(g, grammar.GeneratorOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s, err := gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s.SQL, "FROM nation") {
			t.Errorf("sentence %q lost the FROM clause", s.SQL)
		}
		if _, err := sqlparser.Parse(s.SQL); err != nil {
			t.Errorf("generated sentence does not parse: %v\n%s", err, s.SQL)
		}
	}
}

func TestBaselineReconstruction(t *testing.T) {
	// The largest template realised deterministically must be a query with
	// all projection elements and the filter of the baseline.
	g, err := FromSQL(workload.NationBaselineQuery, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := grammar.NewGenerator(g, grammar.GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := gen.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"n_nationkey", "n_name", "n_regionkey", "n_comment", "WHERE"} {
		if !strings.Contains(base.SQL, col) {
			t.Errorf("baseline %q misses %q", base.SQL, col)
		}
	}
	if _, err := sqlparser.Parse(base.SQL); err != nil {
		t.Errorf("baseline does not parse: %v", err)
	}
}

func TestJoinPathsKeptMandatory(t *testing.T) {
	q, _ := workload.TPCHQuery("Q3")
	g, err := FromSQL(q.SQL, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	jp := g.Rule("l_joinpath")
	if jp == nil {
		t.Fatal("expected join-path rule for Q3")
	}
	text := jp.Literals()[0].Text
	if !strings.Contains(text, "c_custkey = o_custkey") || !strings.Contains(text, "l_orderkey = o_orderkey") {
		t.Errorf("join path %q misses the join edges", text)
	}
	// Selection predicates must not be part of the join path.
	if strings.Contains(text, "BUILDING") {
		t.Errorf("join path %q should not contain selection predicates", text)
	}
	// Every generated sentence keeps the join path.
	gen, err := grammar.NewGenerator(g, grammar.GeneratorOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s, err := gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s.SQL, "c_custkey = o_custkey") {
			t.Errorf("sentence %q dropped the join path", s.SQL)
		}
	}
}

func TestJoinPathsOptional(t *testing.T) {
	q, _ := workload.TPCHQuery("Q3")
	opts := DefaultOptions()
	opts.ExplicitJoinPaths = false
	g, err := FromSQL(q.SQL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rule("l_joinpath") != nil {
		t.Error("join-path rule should be absent when ExplicitJoinPaths is off")
	}
	// The space without mandatory join paths is strictly larger.
	withJoins, err := Summary(q.SQL, DefaultOptions(), grammar.DefaultEnumerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	without, err := Summary(q.SQL, opts, grammar.DefaultEnumerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !without.Capped && !withJoins.Capped && without.Space <= withJoins.Space {
		t.Errorf("space without join paths (%d) should exceed space with (%d)", without.Space, withJoins.Space)
	}
}

func TestOrTermsSplit(t *testing.T) {
	q, _ := workload.TPCHQuery("Q19")
	g, err := FromSQL(q.SQL, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range g.Rules {
		if strings.HasPrefix(r.Name, "l_orterm") {
			found = true
			if len(r.Literals()) < 3 {
				t.Errorf("OR group %s should have at least 3 arms, got %d", r.Name, len(r.Literals()))
			}
		}
	}
	if !found {
		t.Error("Q19 should produce an OR-group rule")
	}
}

func TestGroupOrderLimitHandling(t *testing.T) {
	q, _ := workload.TPCHQuery("Q1")
	g, err := FromSQL(q.SQL, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Rule("l_projection").Literals()); got != 10 {
		t.Errorf("Q1 projection literals = %d, want 10", got)
	}
	if got := len(g.Rule("l_group").Literals()); got != 2 {
		t.Errorf("Q1 group literals = %d, want 2", got)
	}
	if got := len(g.Rule("l_order").Literals()); got != 2 {
		t.Errorf("Q1 order literals = %d, want 2", got)
	}
	if g.Rule("l_limit") != nil {
		t.Error("Q1 has no LIMIT, so no l_limit rule expected")
	}

	q3, _ := workload.TPCHQuery("Q3")
	g3, err := FromSQL(q3.SQL, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g3.Rule("l_limit") == nil {
		t.Error("Q3 has LIMIT 10, expected l_limit rule")
	}

	q11, _ := workload.TPCHQuery("Q11")
	g11, err := FromSQL(q11.SQL, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	having := g11.Rule("l_having")
	if having == nil || !strings.Contains(having.Literals()[0].Text, "HAVING") {
		t.Error("Q11 should derive an optional HAVING literal")
	}
}

func TestAllTPCHQueriesDerive(t *testing.T) {
	for _, q := range workload.TPCH() {
		g, err := FromSQL(q.SQL, DefaultOptions())
		if err != nil {
			t.Errorf("%s: derivation failed: %v", q.ID, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: derived grammar invalid: %v", q.ID, err)
		}
		sum, err := g.Space(grammar.EnumerateOptions{TemplateCap: 2000, LiteralOnce: true})
		if err != nil {
			t.Errorf("%s: space computation failed: %v", q.ID, err)
			continue
		}
		if sum.Templates == 0 {
			t.Errorf("%s: no templates derived", q.ID)
		}
		if !sum.Capped && sum.Space == 0 {
			t.Errorf("%s: empty query space", q.ID)
		}
	}
}

func TestSpaceVariesAcrossQueries(t *testing.T) {
	// The paper's Table 2 point: the space varies over orders of magnitude.
	// Q6 (simple) must be far smaller than Q1 (wide projection), and Q19
	// (OR groups) must be larger still.
	opts := grammar.EnumerateOptions{TemplateCap: 50000, LiteralOnce: true}
	q6, _ := workload.TPCHQuery("Q6")
	q1, _ := workload.TPCHQuery("Q1")
	q19, _ := workload.TPCHQuery("Q19")
	s6, err := Summary(q6.SQL, DefaultOptions(), opts)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Summary(q1.SQL, DefaultOptions(), opts)
	if err != nil {
		t.Fatal(err)
	}
	s19, err := Summary(q19.SQL, DefaultOptions(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if s6.Space >= s1.Space && !s1.Capped {
		t.Errorf("Q6 space (%d) should be smaller than Q1 space (%d)", s6.Space, s1.Space)
	}
	if !s19.Capped && !s1.Capped && s19.Space <= s1.Space {
		t.Errorf("Q19 space (%d) should exceed Q1 space (%d)", s19.Space, s1.Space)
	}
	if s6.Space < 2 {
		t.Errorf("even Q6 should have a handful of variants, got %d", s6.Space)
	}
}

func TestSetOperationsRejected(t *testing.T) {
	if _, err := FromSQL("SELECT a FROM t UNION SELECT b FROM u", DefaultOptions()); err == nil {
		t.Error("UNION baselines should be rejected")
	}
	if _, err := FromSQL("not sql at all", DefaultOptions()); err == nil {
		t.Error("invalid SQL should be rejected")
	}
}

func TestGeneratedSentencesParse(t *testing.T) {
	// Sample sentences from a few representative grammars and check they are
	// valid SQL (semantic validity is not guaranteed by design, syntactic
	// validity is).
	for _, id := range []string{"Q1", "Q3", "Q6", "Q12", "Q14"} {
		q, _ := workload.TPCHQuery(id)
		g, err := FromSQL(q.SQL, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		gen, err := grammar.NewGenerator(g, grammar.GeneratorOptions{Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for i := 0; i < 10; i++ {
			s, err := gen.Generate()
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if _, err := sqlparser.Parse(s.SQL); err != nil {
				t.Errorf("%s variant does not parse: %v\n%s", id, err, s.SQL)
			}
		}
	}
}

func TestColumnFamilyHeuristic(t *testing.T) {
	cases := []struct {
		sql  string
		join bool
	}{
		{"l_orderkey = o_orderkey", true},
		{"c_custkey = o_custkey", true},
		{"n1.n_nationkey = s_nationkey", true},
		{"l_quantity = 10", false},
		{"l_commitdate < l_receiptdate", false},
		{"l_orderkey = l_partkey", false},
	}
	for _, c := range cases {
		e, err := sqlparser.ParseExpr(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		if got := isJoinPredicate(e); got != c.join {
			t.Errorf("isJoinPredicate(%q) = %v, want %v", c.sql, got, c.join)
		}
	}
}

func TestSplitConjunctsAndDisjuncts(t *testing.T) {
	e, _ := sqlparser.ParseExpr("a = 1 AND b = 2 AND (c = 3 OR d = 4)")
	conj := splitConjuncts(e)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(conj))
	}
	dis := splitDisjuncts(conj[2])
	if len(dis) != 2 {
		t.Errorf("disjuncts = %d, want 2", len(dis))
	}
	single := splitDisjuncts(conj[0])
	if len(single) != 1 {
		t.Errorf("non-OR expression should yield one disjunct, got %d", len(single))
	}
}
