package sqlsem

import "testing"

func TestNotTruthTable(t *testing.T) {
	cases := map[Tri]Tri{True: False, False: True, Unknown: Unknown}
	for in, want := range cases {
		if got := Not(in); got != want {
			t.Errorf("NOT %s = %s, want %s", in, got, want)
		}
	}
}

func TestAndOrTruthTables(t *testing.T) {
	vals := []Tri{True, False, Unknown}
	andWant := map[[2]Tri]Tri{
		{True, True}: True, {True, False}: False, {True, Unknown}: Unknown,
		{False, True}: False, {False, False}: False, {False, Unknown}: False,
		{Unknown, True}: Unknown, {Unknown, False}: False, {Unknown, Unknown}: Unknown,
	}
	orWant := map[[2]Tri]Tri{
		{True, True}: True, {True, False}: True, {True, Unknown}: True,
		{False, True}: True, {False, False}: False, {False, Unknown}: Unknown,
		{Unknown, True}: True, {Unknown, False}: Unknown, {Unknown, Unknown}: Unknown,
	}
	for _, a := range vals {
		for _, b := range vals {
			if got := And(a, b); got != andWant[[2]Tri{a, b}] {
				t.Errorf("%s AND %s = %s, want %s", a, b, got, andWant[[2]Tri{a, b}])
			}
			if got := Or(a, b); got != orWant[[2]Tri{a, b}] {
				t.Errorf("%s OR %s = %s, want %s", a, b, got, orWant[[2]Tri{a, b}])
			}
			// De Morgan must hold in 3VL: NOT(a AND b) == NOT a OR NOT b.
			if Not(And(a, b)) != Or(Not(a), Not(b)) {
				t.Errorf("De Morgan violated for %s, %s", a, b)
			}
		}
	}
}

func TestAcceptCollapsesUnknownToFalse(t *testing.T) {
	if !True.Accept() {
		t.Error("TRUE must be accepted by filters")
	}
	if False.Accept() || Unknown.Accept() {
		t.Error("FALSE and UNKNOWN must both be rejected by filters")
	}
}

func TestCompareNullable(t *testing.T) {
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		if got := CompareNullable(op, true, 0); got != Unknown {
			t.Errorf("NULL %s x = %s, want UNKNOWN", op, got)
		}
	}
	cases := []struct {
		op   string
		c    int
		want Tri
	}{
		{"=", 0, True}, {"=", -1, False},
		{"<>", 0, False}, {"<>", 1, True},
		{"<", -1, True}, {"<", 0, False},
		{"<=", 0, True}, {"<=", 1, False},
		{">", 1, True}, {">", 0, False},
		{">=", 0, True}, {">=", -1, False},
	}
	for _, c := range cases {
		if got := CompareNullable(c.op, false, c.c); got != c.want {
			t.Errorf("op %s cmp %d = %s, want %s", c.op, c.c, got, c.want)
		}
	}
}

func TestLike(t *testing.T) {
	if got := Like(true, false, false); got != Unknown {
		t.Errorf("NULL LIKE p = %s, want UNKNOWN", got)
	}
	if got := Like(true, false, true); got != Unknown {
		t.Errorf("NULL NOT LIKE p = %s, want UNKNOWN", got)
	}
	if got := Like(false, true, false); got != True {
		t.Errorf("match LIKE = %s, want TRUE", got)
	}
	if got := Like(false, true, true); got != False {
		t.Errorf("match NOT LIKE = %s, want FALSE", got)
	}
	if got := Like(false, false, true); got != True {
		t.Errorf("no-match NOT LIKE = %s, want TRUE", got)
	}
}

func TestIn(t *testing.T) {
	cases := []struct {
		name                                string
		exprNull, found, listHasNull, empty bool
		want                                Tri
	}{
		{"empty list beats NULL probe", true, false, false, true, False},
		{"NULL probe", true, false, false, false, Unknown},
		{"NULL probe with NULL in list", true, false, true, false, Unknown},
		{"match", false, true, false, false, True},
		{"match despite NULL in list", false, true, true, false, True},
		{"no match, NULL in list", false, false, true, false, Unknown},
		{"no match, clean list", false, false, false, false, False},
	}
	for _, c := range cases {
		if got := In(c.exprNull, c.found, c.listHasNull, c.empty); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		geLo, leHi Tri
		negate     bool
		want       Tri
	}{
		{True, True, false, True},
		{True, False, false, False},
		{Unknown, Unknown, false, Unknown}, // NULL BETWEEN a AND b
		{Unknown, False, false, False},     // NULL bound but other side fails
		{Unknown, True, false, Unknown},
		{True, True, true, False},
		{Unknown, False, true, True}, // x NOT BETWEEN NULL AND hi with x > hi
		{Unknown, Unknown, true, Unknown},
	}
	for _, c := range cases {
		if got := Between(c.geLo, c.leHi, c.negate); got != c.want {
			t.Errorf("Between(%s, %s, negate=%v) = %s, want %s", c.geLo, c.leHi, c.negate, got, c.want)
		}
	}
}

func TestOfAndKnown(t *testing.T) {
	if Of(true) != True || Of(false) != False {
		t.Error("Of is broken")
	}
	if !True.Known() || !False.Known() || Unknown.Known() {
		t.Error("Known is broken")
	}
}
