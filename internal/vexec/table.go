package vexec

// TableColumn is one named, fully materialized typed column.
type TableColumn struct {
	Name string
	Vec  *Vector
}

// Table is a base table in vexec's typed columnar format. Instances are
// produced by the engine-level column-import shim, which decodes the boxed
// []Value storage of engine.Database into typed vectors once and caches the
// result. Construction is where the storage encodings happen: string
// columns up to DictMaxCardinality distinct values are dictionary-encoded,
// and per-block zone maps are computed for every column that admits them —
// both once per table version, amortized by the typed cache.
type Table struct {
	Name  string
	Cols  []TableColumn
	rows  int
	zones *zoneMap
}

// NewTable builds a table from typed columns; all vectors must have the same
// length.
func NewTable(name string, cols ...TableColumn) *Table {
	t := &Table{Name: name, Cols: cols}
	if len(cols) > 0 {
		t.rows = cols[0].Vec.Len()
	}
	for i, c := range t.Cols {
		t.Cols[i].Vec = dictEncode(c.Vec)
	}
	t.zones = buildZoneMap(t.Cols, t.rows)
	return t
}

// DictFor returns the dictionary of the named column, or nil when the
// column is absent or stored raw; used by tests and the explain surface to
// report encoding routes.
func (t *Table) DictFor(name string) *Dictionary {
	for _, c := range t.Cols {
		if c.Name == name {
			return c.Vec.Dict
		}
	}
	return nil
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// Catalog resolves table names to typed tables; the engine adapter
// implements it over an engine.Database plus a conversion cache.
type Catalog interface {
	// VTable returns the typed form of the named table (case insensitive) or
	// an error when the table does not exist or cannot be represented as
	// typed vectors.
	VTable(name string) (*Table, error)
}
