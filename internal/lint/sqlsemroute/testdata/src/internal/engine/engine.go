// Package engine is the sqlsemroute fixture: a miniature of the real
// nullable Value type and the two-valued expression shapes the analyzer
// must flag, plus the shapes it must leave alone.
package engine

// Kind discriminates the value representations; KindNull marks SQL NULL.
type Kind int

const (
	KindNull Kind = iota
	KindInt
	KindFloat
)

// Value is the nullable SQL value (a miniature of the real engine.Value).
type Value struct {
	Kind Kind
	I    int64
	F    float64
}

// Bool collapses NULL to false — legitimate only at a predicate consumer.
func (v Value) Bool() bool { return v.Kind == KindInt && v.I != 0 }

// rawEq is the NULL-blind, representation-sensitive shape: struct equality
// says NULL == NULL and 1 != 1.0.
func rawEq(a, b Value) bool {
	return a == b // want `raw == comparison of engine.Value`
}

func rawNeq(a, b Value) bool {
	return a != b // want `raw != comparison of engine.Value`
}

// collapsedAnd combines predicates after collapsing each to a bool,
// losing UNKNOWN before the connective.
func collapsedAnd(a, b Value) bool {
	return a.Bool() && b.Bool() // want `&& over Value.Bool\(\) collapses NULL to false`
}

func collapsedOr(a Value, other bool) bool {
	return other || a.Bool() // want `\|\| over Value.Bool\(\) collapses NULL to false`
}

// collapsedNot turns UNKNOWN into TRUE.
func collapsedNot(a Value) bool {
	return !a.Bool() // want `! over Value.Bool\(\) collapses NULL to false`
}

// kindCompare compares the discriminants, not the values: Kind has its own
// two-valued identity and is exempt.
func kindCompare(a, b Value) bool {
	return a.Kind == b.Kind
}

// plainBools: connectives over ordinary booleans are not the analyzer's
// business.
func plainBools(x, y bool) bool {
	return x && !y
}

// consumerCollapse is the blessed boundary shape, waived with a reason.
func consumerCollapse(conjuncts []Value) bool {
	for _, v := range conjuncts {
		//lint:nullsafe consumer collapse: the filter boundary rejects UNKNOWN rows, per SQL semantics
		if !v.Bool() {
			return false
		}
	}
	return true
}
