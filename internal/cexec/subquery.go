package cexec

import (
	"fmt"

	"sqalpel/internal/plan"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/sqlsem"
	"sqalpel/internal/trace"
	"sqalpel/internal/vexec"
)

// subState is the per-execution materialization of one nested sub-query,
// mirroring the vectorized executor's: uncorrelated sub-queries run
// exactly once (scalar value, EXISTS flag, membership set); correlated
// sub-queries are decorrelated per the plan's Apply recipe — the inner
// side materializes once, hashed by the inner correlation keys, and the
// compiled use-site closures probe that build per outer row.
//
// All states are built by prepareSubqueries before the enclosing
// pipeline's closures are compiled, and never mutated afterwards.
type subState struct {
	correlated bool

	// Uncorrelated materialization.
	scalarVal  Scalar          // first row of the first column; NULL when empty
	exists     bool            // any result rows
	set        map[string]bool // non-NULL first-column keys (AppendScalarKey)
	setHasNull bool            // the first column had a NULL row
	setEmpty   bool            // the result was entirely empty (no rows at all)

	// Correlated decorrelation.
	apply *applyState
}

// applyState is the hash build of one decorrelated correlated sub-query:
// groups in first-seen order with per-group inner-row chains in row order
// — the join tables' ordering discipline, which keeps ApplyFirst's "first
// matching row" identical to the interpreter's per-outer-row run.
type applyState struct {
	shape         plan.ApplyShape
	outerKeys     []sqlparser.Expr
	pairConjuncts []sqlparser.Expr

	inner  *rel             // dense inner-side rows
	groups map[string]int32 // encoded inner key -> group id
	lists  joinLists        // per-group inner-row chains in row order

	projVals  []Scalar // per inner row: the projected value (ApplyIn/ApplyFirst)
	groupVals []Scalar // per group: the aggregated projection (ApplyAgg)
	emptyVal  Scalar   // ApplyAgg value of an empty group (count 0, NULL sums)
}

// prepareSubqueries materializes the sub-query states of one SELECT core,
// numbering them along the same clause walk the trace layer's plan JSON
// uses so the sub-query spans land on plan-known operator ids.
func (ex *executor) prepareSubqueries(stmt *sqlparser.SelectStatement, prefix string) error {
	for k, s := range trace.CoreSubqueries(stmt) {
		if _, ok := ex.subs[s]; ok {
			continue
		}
		subPrefix := noTracePrefix
		if ex.traceOn(prefix) {
			subPrefix = trace.SubPrefix(prefix, k)
		}
		if err := ex.prepareSub(s, subPrefix); err != nil {
			return err
		}
	}
	return nil
}

// prepareSub materializes one sub-query state.
func (ex *executor) prepareSub(s *sqlparser.SelectStatement, subPrefix string) error {
	sp := ex.p.Sub(s)
	if sp == nil {
		return fmt.Errorf("%w: unplanned sub-query", ErrUnsupported)
	}
	st := &subState{correlated: ex.p.Correlated(s)}
	var tm trace.Timer
	if ex.traceOn(subPrefix) {
		tm = ex.tracer.Span(trace.SubOpID(subPrefix), trace.KindSubquery).Start()
	}
	if st.correlated {
		ap := ex.p.Apply(s)
		if ap == nil {
			// The verdict admits only decorrelatable correlated sites; a
			// missing recipe means the statement should not have reached here.
			return fmt.Errorf("%w: correlated sub-query without a decorrelation recipe", ErrUnsupported)
		}
		as, err := ex.buildApply(sp, ap, subPrefix)
		if err != nil {
			return err
		}
		st.apply = as
		tm.Done(int64(len(as.inner.rows)))
		ex.subs[s] = st
		return nil
	}

	ex.stats.SubqueryExecutions++
	res, err := ex.run(sp, subPrefix)
	if err != nil {
		// The interpreters reach a failing sub-query lazily (and possibly
		// never); defer so they decide whether the query errors.
		return deferToFallback(err)
	}
	n := res.NumRows()
	st.exists = n > 0
	st.scalarVal = vexec.NullScalar()
	if n > 0 && len(res.Cols) > 0 {
		// Scalar sites read the first row; extra rows are not an error, like
		// the interpreters.
		st.scalarVal = res.Cols[0][0]
	}
	st.set = map[string]bool{}
	if len(res.Cols) > 0 {
		col := res.Cols[0]
		var buf []byte
		for i := 0; i < n; i++ {
			sv := col[i]
			if sv.IsNull() {
				st.setHasNull = true
				continue
			}
			buf = vexec.AppendScalarKey(buf[:0], sv)
			st.set[string(buf)] = true
		}
	}
	st.setEmpty = len(st.set) == 0 && !st.setHasNull
	tm.Done(int64(n))
	ex.subs[s] = st
	return nil
}

// subFor looks up the prepared state of a sub-query use site; the states
// exist before use-site compilation starts.
func (ex *executor) subFor(s *sqlparser.SelectStatement) (*subState, error) {
	if st, ok := ex.subs[s]; ok {
		return st, nil
	}
	return nil, fmt.Errorf("%w: sub-query was not prepared", ErrUnsupported)
}

// scalarProjExpr returns the single projected expression of a scalar/IN
// sub-query; the plan verdict guarantees exactly one non-star item.
func scalarProjExpr(stmt *sqlparser.SelectStatement) (sqlparser.Expr, error) {
	for _, p := range stmt.Projection {
		if !p.Star {
			return p.Expr, nil
		}
	}
	return nil, fmt.Errorf("%w: sub-query projects no expression", ErrUnsupported)
}

// buildApply executes the decorrelation recipe: run the sub-query's own
// FROM pipeline with the correlation conjuncts stripped (InnerResidual
// replaces the plan's residual), hash the result by the inner keys, and
// precompute the per-row or per-group projection values the use-site
// shape consumes.
func (ex *executor) buildApply(sp *plan.Select, ap *plan.Apply, subPrefix string) (*applyState, error) {
	// Sub-queries nested inside the inner statement materialize first; the
	// inner pipeline's filters probe them.
	if err := ex.prepareSubqueries(sp.Stmt, subPrefix); err != nil {
		return nil, err
	}
	ex.stats.SubqueryExecutions++
	inner := *sp
	inner.VexecResidual = ap.InnerResidual
	pipe, err := ex.buildPipeline(&inner, subPrefix)
	if err != nil {
		return nil, deferToFallback(err)
	}
	var rows [][]Scalar
	if err := pipe.run(func(row []Scalar) error {
		rows = append(rows, row)
		return nil
	}); err != nil {
		return nil, deferToFallback(err)
	}
	b := &rel{meta: pipe.meta, rows: rows}

	as := &applyState{
		shape:         ap.Shape,
		outerKeys:     ap.OuterKeys,
		pairConjuncts: ap.PairConjuncts,
		inner:         b,
		groups:        map[string]int32{},
	}
	n := len(b.rows)
	keyCols, err := ex.evalKeyCols(b, ap.InnerKeys)
	if err != nil {
		return nil, deferToFallback(err)
	}
	as.lists = newJoinLists(n)
	rowGroup := make([]int32, n)
	var buf []byte
	for i := 0; i < n; i++ {
		rowGroup[i] = -1
		if nullKeyAt(keyCols, i) {
			// NULL = anything is UNKNOWN: the row can never match an outer key.
			continue
		}
		buf = encodeKeyAt(buf[:0], keyCols, i)
		g, ok := as.groups[string(buf)]
		if !ok {
			g = int32(len(as.groups))
			as.groups[string(buf)] = g
		}
		as.lists.insert(int(g), int32(i))
		rowGroup[i] = g
	}

	switch ap.Shape {
	case plan.ApplyExists:
		// Candidate presence decides; the projection is never evaluated.
	case plan.ApplyIn, plan.ApplyFirst:
		proj, err := scalarProjExpr(sp.Stmt)
		if err != nil {
			return nil, err
		}
		vals, err := ex.projectColDeferred(proj, &scope{meta: b.meta}, b.rows)
		if err != nil {
			return nil, err
		}
		as.projVals = vals
	case plan.ApplyAgg:
		if err := ex.buildApplyAgg(as, sp.Stmt, b, rowGroup); err != nil {
			return nil, err
		}
	}
	return as, nil
}

// projectColDeferred compiles and evaluates one expression over all rows
// with both compile and runtime errors deferred — the decorrelated inner
// projection is a context the interpreters reach per outer row, possibly
// never.
func (ex *executor) projectColDeferred(e sqlparser.Expr, sc *scope, rows [][]Scalar) ([]Scalar, error) {
	fn, err := ex.compile(e, sc)
	if err != nil {
		return nil, deferToFallback(err)
	}
	out := make([]Scalar, len(rows))
	for i, row := range rows {
		if out[i], err = fn(row); err != nil {
			return nil, deferToFallback(err)
		}
	}
	return out, nil
}

// buildApplyAgg folds the inner rows into one aggregate group per
// correlation key — the decorrelated image of "run the aggregated
// sub-query once per outer row" — and evaluates the sub-query's projection
// over the groups, plus once over an empty group for outer rows with no
// match (count 0, NULL sums).
func (ex *executor) buildApplyAgg(as *applyState, stmt *sqlparser.SelectStatement, b *rel, rowGroup []int32) error {
	proj, err := scalarProjExpr(stmt)
	if err != nil {
		return err
	}
	specs, err := collectAggregates(stmt)
	if err != nil {
		return deferToFallback(err)
	}
	carried := collectCarriedRefs(stmt)

	// Evaluate grouping keys (unused but evaluated, like the vectorized
	// executor's batch pass), aggregate arguments and carried references
	// over the whole inner side; everything here defers.
	rowSc := &scope{meta: b.meta}
	for _, g := range stmt.GroupBy {
		if _, err := ex.projectColDeferred(g, rowSc, b.rows); err != nil {
			return err
		}
	}
	argCols := make([][]Scalar, len(specs))
	for i, s := range specs {
		if s.call.Star {
			continue
		}
		if argCols[i], err = ex.projectColDeferred(s.call.Args[0], rowSc, b.rows); err != nil {
			return err
		}
	}
	refCols := make([][]Scalar, len(carried))
	for i, r := range carried {
		fn, cerr := ex.compileColumn(r, rowSc)
		if cerr != nil {
			return deferToFallback(cerr)
		}
		col := make([]Scalar, len(b.rows))
		for ri, row := range b.rows {
			if col[ri], cerr = fn(row); cerr != nil {
				return deferToFallback(cerr)
			}
		}
		refCols[i] = col
	}

	order := make([]*groupState, len(as.groups))
	n := len(b.rows)
	ex.stats.AggRows += int64(n)
	for i := 0; i < n; i++ {
		g := rowGroup[i]
		if g < 0 {
			continue
		}
		st := order[g]
		if st == nil {
			st = newGroupState(specs, carried)
			order[g] = st
			for ri, rc := range refCols {
				st.firsts[ri] = rc[i]
			}
		}
		st.rows++
		for ai := range specs {
			if specs[ai].call.Star {
				continue
			}
			st.accs[ai].Fold(argCols[ai][i], specs[ai].call.Distinct)
		}
	}
	ex.stats.Groups += int64(len(order))

	gRows, gsc, err := buildAggRows(specs, carried, order)
	if err != nil {
		return deferToFallback(err)
	}
	if as.groupVals, err = ex.projectColDeferred(proj, gsc, gRows); err != nil {
		return err
	}

	eRows, esc, err := buildAggRows(specs, carried, []*groupState{newGroupState(specs, carried)})
	if err != nil {
		return deferToFallback(err)
	}
	ev, err := ex.projectColDeferred(proj, esc, eRows)
	if err != nil {
		return err
	}
	as.emptyVal = ev[0]
	return nil
}

// applyProbe is the compiled probe of one correlated use site: evaluate
// the outer keys over the enclosing row, look the key group up, and filter
// the candidate chain through the pair conjuncts.
type applyProbe func(row []Scalar) ([]int32, error)

// compileApplyProbe builds the probe closure. Compile errors (outer keys,
// pair conjuncts) are folded into the closure and surface deferred at the
// first probing row — the vectorized executor evaluates these only when a
// batch actually probes.
func (ex *executor) compileApplyProbe(as *applyState, sc *scope) applyProbe {
	keyFns := make([]rowFn, len(as.outerKeys))
	var keyErr error
	for i, k := range as.outerKeys {
		if keyFns[i], keyErr = ex.compile(k, sc); keyErr != nil {
			break
		}
	}
	var pairFns []rowFn
	var pairErr error
	var pairSc *scope
	if len(as.pairConjuncts) > 0 {
		// Pair conjuncts see the outer row followed by the inner row — the
		// same layout the vectorized executor's pair batches carry.
		pairSc = &scope{meta: concatMeta(sc.meta, as.inner.meta)}
		pairFns = make([]rowFn, len(as.pairConjuncts))
		for i, c := range as.pairConjuncts {
			if pairFns[i], pairErr = ex.compile(c, pairSc); pairErr != nil {
				break
			}
		}
	}
	return func(row []Scalar) ([]int32, error) {
		if keyErr != nil {
			return nil, deferToFallback(keyErr)
		}
		keys := make([]Scalar, len(keyFns))
		for i, fn := range keyFns {
			var err error
			if keys[i], err = fn(row); err != nil {
				return nil, deferToFallback(err)
			}
		}
		// A NULL outer key matches nothing: equality with NULL is UNKNOWN.
		for _, k := range keys {
			if k.IsNull() {
				return nil, nil
			}
		}
		var buf []byte
		for _, k := range keys {
			buf = vexec.AppendScalarKey(buf, k)
			buf = append(buf, '|')
		}
		g, ok := as.groups[string(buf)]
		if !ok {
			return nil, nil
		}
		var cand []int32
		for r := as.lists.head[g]; r >= 0; r = as.lists.next[r] {
			cand = append(cand, r)
		}
		if len(pairFns) == 0 || len(cand) == 0 {
			return cand, nil
		}
		if pairErr != nil {
			return nil, deferToFallback(pairErr)
		}
		pass := make([]bool, len(cand))
		for i := range pass {
			pass[i] = true
		}
		// Every conjunct evaluates over every candidate pair, like the
		// vectorized executor's whole pair vectors.
		for _, fn := range pairFns {
			for k, c := range cand {
				v, err := fn(concatRow(row, as.inner.rows[c]))
				if err != nil {
					return nil, deferToFallback(err)
				}
				if pass[k] && (v.IsNull() || !v.Truthy()) {
					pass[k] = false
				}
			}
		}
		out := cand[:0]
		for k, c := range cand {
			if pass[k] {
				out = append(out, c)
			}
		}
		return out, nil
	}
}

// compileExists answers EXISTS/NOT EXISTS. Uncorrelated sites are a
// constant; correlated sites ask whether any candidate survives the key
// probe and the pair conjuncts. The result is always two-valued, like the
// interpreters'.
func (ex *executor) compileExists(v *sqlparser.ExistsExpr, sc *scope) (rowFn, error) {
	st, err := ex.subFor(v.Subquery)
	if err != nil {
		return nil, err
	}
	if !st.correlated {
		return constFn(vexec.BoolScalar(st.exists != v.Not)), nil
	}
	probe := ex.compileApplyProbe(st.apply, sc)
	not := v.Not
	return func(row []Scalar) (Scalar, error) {
		cand, err := probe(row)
		if err != nil {
			return Scalar{}, err
		}
		return vexec.BoolScalar((len(cand) > 0) != not), nil
	}, nil
}

// compileScalarSub answers a scalar sub-query site. Uncorrelated sites
// broadcast the materialized first-row value; ApplyAgg sites look their
// aggregate group up directly by outer key (falling back to the
// empty-group value); ApplyFirst sites take the first surviving
// candidate's projected value, NULL when none.
func (ex *executor) compileScalarSub(v *sqlparser.SubqueryExpr, sc *scope) (rowFn, error) {
	st, err := ex.subFor(v.Select)
	if err != nil {
		return nil, err
	}
	if !st.correlated {
		return constFn(st.scalarVal), nil
	}
	as := st.apply
	if as.shape == plan.ApplyAgg {
		keyFns := make([]rowFn, len(as.outerKeys))
		var keyErr error
		for i, k := range as.outerKeys {
			if keyFns[i], keyErr = ex.compile(k, sc); keyErr != nil {
				break
			}
		}
		return func(row []Scalar) (Scalar, error) {
			if keyErr != nil {
				return Scalar{}, deferToFallback(keyErr)
			}
			keys := make([]Scalar, len(keyFns))
			for i, fn := range keyFns {
				var err error
				if keys[i], err = fn(row); err != nil {
					return Scalar{}, deferToFallback(err)
				}
			}
			for _, k := range keys {
				if k.IsNull() {
					return as.emptyVal, nil
				}
			}
			var buf []byte
			for _, k := range keys {
				buf = vexec.AppendScalarKey(buf, k)
				buf = append(buf, '|')
			}
			if g, ok := as.groups[string(buf)]; ok {
				return as.groupVals[g], nil
			}
			return as.emptyVal, nil
		}, nil
	}
	probe := ex.compileApplyProbe(as, sc)
	return func(row []Scalar) (Scalar, error) {
		cand, err := probe(row)
		if err != nil {
			return Scalar{}, err
		}
		if len(cand) > 0 {
			return as.projVals[cand[0]], nil
		}
		return vexec.NullScalar(), nil
	}, nil
}

// compileInSub answers IN/NOT IN against a sub-query with the shared
// ternary membership semantics (sqlsem.In): an uncorrelated site probes
// the materialized set, a correlated site scans its candidate rows'
// projected values — the per-row image of the interpreter's membership
// set.
func (ex *executor) compileInSub(v *sqlparser.InExpr, sc *scope) (rowFn, error) {
	st, err := ex.subFor(v.Subquery)
	if err != nil {
		return nil, err
	}
	val, err := ex.compile(v.Expr, sc)
	if err != nil {
		return nil, err
	}
	not := v.Not
	if !st.correlated {
		return func(row []Scalar) (Scalar, error) {
			a, err := val(row)
			if err != nil {
				return Scalar{}, err
			}
			found := false
			if !a.IsNull() && len(st.set) > 0 {
				buf := vexec.AppendScalarKey(nil, a)
				found = st.set[string(buf)]
			}
			t := sqlsemIn(a.IsNull(), found, st.setHasNull, st.setEmpty, not)
			return vexec.TriScalar(t), nil
		}, nil
	}
	as := st.apply
	probe := ex.compileApplyProbe(as, sc)
	return func(row []Scalar) (Scalar, error) {
		a, err := val(row)
		if err != nil {
			return Scalar{}, err
		}
		cand, err := probe(row)
		if err != nil {
			return Scalar{}, err
		}
		var found, hasNull bool
		for _, c := range cand {
			s := as.projVals[c]
			if s.IsNull() {
				hasNull = true
				continue
			}
			if vexec.EqualScalars(a, s) {
				found = true
				break
			}
		}
		t := sqlsemIn(a.IsNull(), found, hasNull, len(cand) == 0, not)
		return vexec.TriScalar(t), nil
	}, nil
}

// sqlsemIn folds the shared ternary IN truth table and the optional NOT
// into one Tri, keeping the call sites symmetric with the interpreters'.
func sqlsemIn(exprNull, found, hasNull, empty, not bool) sqlsem.Tri {
	t := sqlsem.In(exprNull, found, hasNull, empty)
	if not {
		t = sqlsem.Not(t)
	}
	return t
}
