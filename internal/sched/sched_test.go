package sched

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqalpel/internal/metrics"
)

// countingTarget records how often each query executed.
type countingTarget struct {
	mu    sync.Mutex
	calls map[string]int
	delay time.Duration
}

func (c *countingTarget) Run(query string) (int, map[string]string, error) {
	c.mu.Lock()
	if c.calls == nil {
		c.calls = map[string]int{}
	}
	c.calls[query]++
	c.mu.Unlock()
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	if strings.Contains(query, "boom") {
		return 0, nil, errors.New("simulated failure")
	}
	return len(query), nil, nil
}

func (c *countingTarget) count(query string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[query]
}

// TestWorkerBudgetSharedWithQueryParallelism pins the shared-cap rule:
// the worker budget divides by the intra-query parallelism each measured
// execution spends, so measurement fan-out times morsel fan-out never
// exceeds the configured cap.
func TestWorkerBudgetSharedWithQueryParallelism(t *testing.T) {
	cases := []struct {
		workers, queryPar, want int
	}{
		{8, 1, 8},  // no intra-query parallelism: full fan-out
		{8, 4, 2},  // 2 concurrent measurements x 4 morsel workers = 8
		{8, 8, 1},  // the whole budget goes to one query at a time
		{4, 16, 1}, // intra-query demand above the budget still measures
		{0, 2, 0},  // default budget (GOMAXPROCS) also divides
	}
	for _, tc := range cases {
		s := New(Options{Workers: tc.workers, QueryParallelism: tc.queryPar})
		want := tc.want
		if want == 0 {
			want = runtime.GOMAXPROCS(0) / tc.queryPar
			if want < 1 {
				want = 1
			}
		}
		if got := s.Workers(); got != want {
			t.Errorf("Workers(%d)/QueryParallelism(%d) = %d workers, want %d",
				tc.workers, tc.queryPar, got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT 1", "SELECT 1"},
		{"  SELECT\n\t1 ;", "SELECT 1"},
		{"SELECT  a ,\n b FROM t", "SELECT a , b FROM t"},
		{"select 'A  B'", "select 'A  B'"}, // quoted content is preserved
		{"select 'A  B' ,  c", "select 'A  B' , c"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if Normalize("SELECT 'a b'") == Normalize("SELECT 'a  b'") {
		t.Error("queries differing inside a string literal must not conflate")
	}
}

func TestMeasureAlignsResultsWithCells(t *testing.T) {
	target := &countingTarget{}
	s := New(Options{Workers: 8})
	var cells []Cell
	for i := 0; i < 20; i++ {
		cells = append(cells, Cell{Target: "t", Runner: target, SQL: fmt.Sprintf("SELECT %02d", i), Runs: 1})
	}
	results := s.Measure(context.Background(), cells)
	if len(results) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(results), len(cells))
	}
	for i, r := range results {
		if r.Cell.SQL != cells[i].SQL {
			t.Errorf("result %d holds cell %q, want %q", i, r.Cell.SQL, cells[i].SQL)
		}
		if r.Measurement == nil || r.Measurement.Failed() {
			t.Errorf("result %d failed: %v", i, r.Measurement)
		}
		if r.Measurement.Rows != len(cells[i].SQL) {
			t.Errorf("result %d rows = %d, want %d", i, r.Measurement.Rows, len(cells[i].SQL))
		}
	}
}

func TestResultCacheDeduplicatesByTargetAndNormalizedSQL(t *testing.T) {
	target := &countingTarget{}
	s := New(Options{Workers: 4})
	cells := []Cell{
		{Target: "a", Runner: target, SQL: "SELECT 1", Runs: 2},
		{Target: "a", Runner: target, SQL: "  SELECT  1 ;", Runs: 2}, // same normalized identity
		{Target: "b", Runner: target, SQL: "SELECT 1", Runs: 2},      // other target measures again
	}
	results := s.Measure(context.Background(), cells)
	if got := target.count("SELECT 1") + target.count("  SELECT  1 ;"); got != 4 {
		t.Errorf("the duplicate cell should be served from cache; %d executions, want 4 (2 runs x 2 targets)", got)
	}
	// The replay is a tagged shallow copy of the shared cache entry, so a
	// cached timing (or trace) is never mistaken for a fresh execution.
	if results[0].Measurement.FromCache {
		t.Error("the measuring cell must not be marked FromCache")
	}
	if !results[1].Measurement.FromCache {
		t.Error("the duplicate cell's measurement should be marked FromCache")
	}
	fresh, replay := *results[0].Measurement, *results[1].Measurement
	replay.FromCache = false
	if !reflect.DeepEqual(fresh, replay) {
		t.Errorf("replay should match the cached measurement apart from the tag:\n fresh  %+v\n replay %+v", fresh, replay)
	}
	if results[0].Measurement == results[2].Measurement {
		t.Error("different targets must not share measurements")
	}
	measured, cached := s.Stats()
	if measured != 2 || cached != 1 {
		t.Errorf("stats = (%d measured, %d cached), want (2, 1)", measured, cached)
	}

	// A second round over the same cells is fully cached.
	s.Measure(context.Background(), cells)
	if got := target.count("SELECT 1") + target.count("  SELECT  1 ;"); got != 4 {
		t.Errorf("re-measuring cached cells executed queries: %d, want 4", got)
	}
}

func TestParallelAndSerialProduceSameOutcomes(t *testing.T) {
	var cells []Cell
	mk := func() []Cell {
		target := &countingTarget{}
		cells = nil
		for i := 0; i < 12; i++ {
			sql := fmt.Sprintf("SELECT %d", i)
			if i%5 == 0 {
				sql += " boom"
			}
			cells = append(cells, Cell{Target: "t", Runner: target, SQL: sql, Runs: 1})
		}
		return cells
	}
	serial := New(Options{Workers: 1}).Measure(context.Background(), mk())
	parallel := New(Options{Workers: 8}).Measure(context.Background(), mk())
	for i := range serial {
		if serial[i].Measurement.Failed() != parallel[i].Measurement.Failed() {
			t.Errorf("cell %d: failure disagrees between workers=1 and workers=8", i)
		}
		if serial[i].Measurement.Rows != parallel[i].Measurement.Rows {
			t.Errorf("cell %d: rows disagree between workers=1 and workers=8", i)
		}
	}
}

func TestCancelledMeasurementsFailAndAreNotCached(t *testing.T) {
	target := &countingTarget{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(Options{Workers: 2})
	results := s.Measure(ctx, []Cell{{Target: "t", Runner: target, SQL: "SELECT 1", Runs: 1}})
	if !results[0].Measurement.Failed() {
		t.Fatal("cancelled cell should come back failed")
	}
	measured, _ := s.Stats()
	if measured != 0 {
		t.Errorf("cancelled measurement should be evicted from the cache, measured = %d", measured)
	}
	// A later, live call measures for real.
	results = s.Measure(context.Background(), []Cell{{Target: "t", Runner: target, SQL: "SELECT 1", Runs: 1}})
	if results[0].Measurement.Failed() {
		t.Errorf("re-measure after cancellation failed: %s", results[0].Measurement.Err)
	}
}

// slowContextTarget blocks until its context is done.
type slowContextTarget struct{ aborted atomic.Bool }

func (s *slowContextTarget) Run(string) (int, map[string]string, error) {
	return 0, nil, errors.New("Run should not be used when RunContext exists")
}

func (s *slowContextTarget) RunContext(ctx context.Context, query string) (int, map[string]string, error) {
	<-ctx.Done()
	s.aborted.Store(true)
	return 0, nil, ctx.Err()
}

func TestTimeoutAbortsContextTargets(t *testing.T) {
	target := &slowContextTarget{}
	s := New(Options{Workers: 1, Timeout: 5 * time.Millisecond})
	start := time.Now()
	results := s.Measure(context.Background(), []Cell{{Target: "t", Runner: target, SQL: "SELECT sleep()", Runs: 3}})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout did not bound the run, took %s", elapsed)
	}
	if !results[0].Measurement.Failed() {
		t.Error("timed out measurement should be failed")
	}
	if !target.aborted.Load() {
		t.Error("target never observed the context deadline")
	}
	var _ metrics.ContextTarget = target // the scheduler relies on this path
}
