// Package sched implements the concurrent measurement scheduler of the
// sqalpel measurement plane. A round of the discriminative search produces a
// batch of (query, target) cells to measure; the scheduler fans the cells
// out across a configurable pool of workers, threads context cancellation
// and a per-repetition timeout through internal/metrics, and deduplicates
// work through a result cache keyed by (target, normalized SQL) — so
// re-measuring a morph whose SQL text collapses onto an already measured
// variant is free, and the same search can be re-entered without paying for
// completed cells again.
//
// The scheduler is deliberately deterministic at the edges: results come
// back positionally aligned with the submitted cells regardless of the
// completion order of the workers, which lets callers (the discriminative
// search, the experiment driver) produce bit-identical rankings at
// workers=1 and workers=N.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sqalpel/internal/metrics"
	"sqalpel/internal/plan"
)

// Options configure a scheduler.
type Options struct {
	// Workers is the total concurrency budget of the measurement plane;
	// values below 1 select runtime.GOMAXPROCS(0).
	Workers int
	// QueryParallelism is the intra-query morsel worker count each
	// measured execution may spend (see engine.ExecOptions.Parallelism).
	// The scheduler divides its worker budget by it — Workers/QueryParallelism
	// measurement workers, floored at 1 — so the two levels of parallelism
	// share one cap. With the floor in effect (QueryParallelism > Workers)
	// a single measurement still runs at a time, and that one execution's
	// own morsel fan-out is what exceeds the budget. 0 or 1 leaves the
	// budget to the measurement workers alone.
	QueryParallelism int
	// Timeout bounds a single query repetition; zero means no limit. It is
	// forwarded to metrics.Options.Timeout for every cell.
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueryParallelism > 1 {
		o.Workers = o.Workers / o.QueryParallelism
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	return o
}

// Cell is one unit of measurement work: a query to run on a named target.
type Cell struct {
	// Target is the name of the target system, the first dimension of the
	// result cache key.
	Target string
	// Runner executes the query. When Workers > 1 it must be safe for
	// concurrent use (the built-in engine targets are).
	Runner metrics.Target
	// SQL is the query text to measure.
	SQL string
	// CacheKey overrides the cache identity of the query; when empty,
	// Normalize(SQL) is used.
	CacheKey string
	// Runs and WarmupRuns configure the repetitions (see metrics.Options).
	Runs       int
	WarmupRuns int
}

func (c Cell) key() string {
	k := c.CacheKey
	if k == "" {
		k = Normalize(c.SQL)
	}
	// The repetition configuration is part of the identity: a 1-run probe
	// must not satisfy a later 10-run measurement of the same query.
	return fmt.Sprintf("%s\x00%d\x00%d\x00%s", c.Target, c.Runs, c.WarmupRuns, k)
}

// Result pairs a cell with its measurement.
type Result struct {
	// Cell is the submitted cell, returned for convenience.
	Cell Cell
	// Measurement is the outcome; shared with other cells that hit the same
	// cache entry, so treat it as read-only.
	Measurement *metrics.Measurement
	// Cached reports whether the measurement came from the result cache
	// instead of a fresh execution.
	Cached bool
}

// cacheEntry is a singleflight slot: the first worker to claim a key
// measures it and closes done; everyone else waits and shares the pointer.
type cacheEntry struct {
	done chan struct{}
	m    *metrics.Measurement
}

// Scheduler executes measurement cells on a worker pool with a result cache.
// It is safe for concurrent use.
type Scheduler struct {
	opts Options

	mu       sync.Mutex
	cache    map[string]*cacheEntry
	measured int
	hits     int
}

// New creates a scheduler.
func New(opts Options) *Scheduler {
	return &Scheduler{opts: opts.withDefaults(), cache: map[string]*cacheEntry{}}
}

// Workers returns the effective worker count.
func (s *Scheduler) Workers() int { return s.opts.Workers }

// Stats returns how many cells were freshly measured and how many were
// served from the result cache since the scheduler was created.
func (s *Scheduler) Stats() (measured, cached int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.measured, s.hits
}

// Measure runs every cell and returns the results positionally aligned with
// the input. Cells whose (target, normalized SQL) identity was measured
// before — in this call or a previous one — share the cached measurement.
// When the context is cancelled, the remaining cells are measured as failed
// with the context error and nothing new enters the cache.
func (s *Scheduler) Measure(ctx context.Context, cells []Cell) []Result {
	results := make([]Result, len(cells))
	if len(cells) == 0 {
		return results
	}
	workers := s.opts.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	indexes := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				results[i] = s.measureCell(ctx, cells[i])
			}
		}()
	}
	for i := range cells {
		indexes <- i
	}
	close(indexes)
	wg.Wait()
	return results
}

// measureCell measures one cell through the cache.
func (s *Scheduler) measureCell(ctx context.Context, c Cell) Result {
	key := c.key()
	for {
		s.mu.Lock()
		e, ok := s.cache[key]
		if !ok {
			e = &cacheEntry{done: make(chan struct{})}
			s.cache[key] = e
			s.measured++
			s.mu.Unlock()

			e.m = metrics.MeasureContext(ctx, c.Runner, c.SQL, metrics.Options{
				Runs:       c.Runs,
				WarmupRuns: c.WarmupRuns,
				Timeout:    s.opts.Timeout,
			})
			// A measurement aborted by cancellation says nothing about the
			// query; evict it — before waking the waiters, so they re-check
			// and measure for real with their own contexts — and a later
			// un-cancelled call starts fresh.
			if ctx.Err() != nil && e.m.Failed() {
				s.mu.Lock()
				delete(s.cache, key)
				s.measured--
				s.mu.Unlock()
			}
			close(e.done)
			return Result{Cell: c, Measurement: e.m}
		}
		s.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			// Don't block on someone else's measurement once our own
			// context is gone; this result is failed and never cached.
			return Result{Cell: c, Measurement: &metrics.Measurement{
				Err:   ctx.Err().Error(),
				Extra: map[string]string{},
			}}
		}
		// The claimer may have been cancelled and evicted its failed entry
		// before waking us; only adopt the measurement if it is still the
		// live cache entry, otherwise claim the key ourselves.
		s.mu.Lock()
		if cur, still := s.cache[key]; still && cur == e {
			s.hits++
			s.mu.Unlock()
			// Tag the replay on a shallow copy — the cached measurement is
			// shared read-only with other waiters — so its timings and trace
			// are never mistaken for a fresh execution.
			cp := *e.m
			cp.FromCache = true
			return Result{Cell: c, Measurement: &cp, Cached: true}
		}
		s.mu.Unlock()
	}
}

// Normalize canonicalises a SQL text for use as a cache key: whitespace runs
// outside single-quoted string literals collapse to a single space, and
// leading/trailing whitespace and a trailing semicolon are dropped. Letter
// case and everything inside quotes are preserved — string literals are
// case- and space-significant, so touching them would conflate semantically
// different queries. The definition is shared with the engines' plan cache
// (plan.Normalize), so a morph that collapses onto an already measured
// variant shares both the measurement and the logical plan.
func Normalize(sql string) string {
	return plan.Normalize(sql)
}
