package server

import (
	"fmt"
	"net/http"
	"sort"

	"sqalpel/internal/analytics"
	"sqalpel/internal/trace"
	"sqalpel/internal/webui"
)

// registerWebUI wires the server-side rendered HTML pages.
func (s *Server) registerWebUI() {
	renderer, err := webui.New()
	if err != nil {
		// The templates are compiled into the binary; failing to parse them
		// is a programming error.
		panic(err)
	}

	s.mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		dbms, platforms := s.catalog.Snapshot()
		data := webui.IndexData{
			Viewer:    s.viewer(r),
			Projects:  s.store.Projects(s.viewer(r)),
			DBMS:      dbms,
			Platforms: platforms,
		}
		renderHTML(w, renderer.Index(w, data))
	})

	s.mux.HandleFunc("GET /catalog", func(w http.ResponseWriter, r *http.Request) {
		dbms, platforms := s.catalog.Snapshot()
		data := webui.IndexData{Viewer: s.viewer(r), DBMS: dbms, Platforms: platforms}
		renderHTML(w, renderer.Index(w, data))
	})

	s.mux.HandleFunc("GET /projects/{id}", func(w http.ResponseWriter, r *http.Request) {
		p, viewer, ok := s.loadProject(w, r)
		if !ok {
			return
		}
		data := webui.ProjectData{
			Viewer:   viewer,
			Project:  p,
			Results:  s.store.Results(viewer, p.ID),
			Comments: s.store.Comments(viewer, p.ID),
			Tasks:    s.store.Tasks(viewer, p.ID),
		}
		renderHTML(w, renderer.Project(w, data))
	})

	s.mux.HandleFunc("GET /projects/{id}/experiments/{eid}/grammar", func(w http.ResponseWriter, r *http.Request) {
		p, _, ok := s.loadProject(w, r)
		if !ok {
			return
		}
		eid, err := pathInt(r, "eid")
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		exp := p.Experiment(eid)
		if exp == nil {
			http.NotFound(w, r)
			return
		}
		renderHTML(w, renderer.Grammar(w, webui.GrammarData{Project: p, Experiment: exp}))
	})

	s.mux.HandleFunc("GET /projects/{id}/experiments/{eid}/pool", func(w http.ResponseWriter, r *http.Request) {
		p, _, ok := s.loadProject(w, r)
		if !ok {
			return
		}
		eid, err := pathInt(r, "eid")
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		exp := p.Experiment(eid)
		if exp == nil {
			http.NotFound(w, r)
			return
		}
		renderHTML(w, renderer.Pool(w, webui.PoolData{Project: p, Experiment: exp}))
	})

	s.mux.HandleFunc("GET /projects/{id}/history", func(w http.ResponseWriter, r *http.Request) {
		p, viewer, ok := s.loadProject(w, r)
		if !ok {
			return
		}
		runs := s.projectRuns(p, viewer, "")
		targets := map[string]bool{}
		for _, run := range runs {
			targets[run.Target] = true
		}
		var names []string
		for t := range targets {
			names = append(names, t)
		}
		sort.Strings(names)
		target := r.URL.Query().Get("target")
		if target == "" && len(names) > 0 {
			target = names[0]
		}
		data := webui.HistoryData{
			Project: p,
			Target:  target,
			Targets: names,
			Points:  analytics.History(runs, target),
		}
		renderHTML(w, renderer.History(w, data))
	})

	s.mux.HandleFunc("GET /projects/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		p, viewer, ok := s.loadProject(w, r)
		if !ok {
			return
		}
		var qid int
		if _, err := fmt.Sscanf(r.URL.Query().Get("query"), "%d", &qid); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter query must be a query id"))
			return
		}
		// Latest traced result per target label; iteration order is insertion
		// order, so later submissions win.
		byLabel := map[string]*trace.QueryTrace{}
		sqlText := ""
		for _, res := range s.store.Results(viewer, p.ID) {
			if res.QueryID != qid || res.Trace == nil {
				continue
			}
			byLabel[res.DBMSKey+"@"+res.PlatformKey] = res.Trace
			if exp := p.Experiment(res.ExperimentID); exp != nil {
				if q := exp.Query(res.QueryID); q != nil {
					sqlText = q.SQL
				}
			}
		}
		labels := make([]string, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		traces := make([]*trace.QueryTrace, len(labels))
		for i, l := range labels {
			traces[i] = byLabel[l]
		}
		data := webui.TraceData{
			Project: p,
			QueryID: qid,
			SQL:     sqlText,
			Targets: labels,
			Rows:    trace.Compare(traces),
		}
		data.TargetA, data.TargetB, data.Ratios = webui.TraceRatios(labels, data.Rows)
		renderHTML(w, renderer.Trace(w, data))
	})

	s.mux.HandleFunc("GET /projects/{id}/diff", func(w http.ResponseWriter, r *http.Request) {
		p, viewer, ok := s.loadProject(w, r)
		if !ok {
			return
		}
		a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
		var idA, idB int
		if _, err := fmt.Sscanf(a, "%d", &idA); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter a must be a query id"))
			return
		}
		if _, err := fmt.Sscanf(b, "%d", &idB); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query parameter b must be a query id"))
			return
		}
		runs := s.projectRuns(p, viewer, "")
		d, err := analytics.Diff(runs, idA, idB)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		sqlA, sqlB := "", ""
		for _, run := range runs {
			if run.QueryID == idA {
				sqlA = run.SQL
			}
			if run.QueryID == idB {
				sqlB = run.SQL
			}
		}
		renderHTML(w, renderer.Diff(w, webui.DiffData{Project: p, Diff: d, SQLA: sqlA, SQLB: sqlB}))
	})
}

// renderHTML reports template execution failures; the header has usually
// been written already, so the error is only logged into the body.
func renderHTML(w http.ResponseWriter, err error) {
	if err != nil {
		fmt.Fprintf(w, "<!-- render error: %v -->", err)
	}
}
