// Package vexec is sqalpel's third execution paradigm: a batch-at-a-time
// vectorized executor in the VectorWise tradition, contrasting with the
// tuple-at-a-time interpreter (tuplestore) and the full-column materializing
// interpreter (columba) of internal/engine.
//
// Its distinguishing mechanics:
//
//   - Typed, unboxed columnar vectors ([]int64, []float64, []string) with
//     separate null bitmaps instead of boxed []Value cells. Numeric vectors
//     may carry a per-row int/float duality mask so the SQL value semantics
//     of internal/engine (exact integer arithmetic, int-preserving division)
//     are reproduced bit for bit.
//   - Selection vectors: filters shrink an index list over a batch instead
//     of copying payload columns; one pass per conjunct, like a column store,
//     but over fixed-size batches.
//   - A pull-based operator pipeline (scan -> filter -> hash join -> hash
//     aggregate -> order/limit -> project) processing fixed-size batches
//     (default 1024 rows) end to end, so intermediates stay cache resident.
//   - Allocation-free hashing: join, group-by and DISTINCT share one
//     open-addressing hash table (hashtable.go) with 64-bit hashes over the
//     unboxed payloads, typed fast paths for single-int and single-string
//     keys and a reusable []byte encoding for compound keys — group ids are
//     dense and in insertion order, which pins output order to the
//     interpreters'.
//   - Morsel-driven intra-query parallelism (parallel.go, enabled by
//     Options.Parallelism): scan->filter morsels, thread-local aggregation
//     states and partitioned hash-join builds fan across a bounded worker
//     pool, with every merge walking morsel order — results are
//     bit-identical at any worker count, float summation order included.
//
// The package depends only on internal/sqlparser and the shared logical
// plan of internal/plan: ExecutePlan compiles its pipeline straight from a
// pre-built plan's classified conjuncts and join steps (Execute plans on
// the fly for standalone use). It executes the dialect subset that
// vectorizes well (conjunctive filters, equi hash joins, hash aggregation,
// ordering, DISTINCT, LIMIT and the full scalar expression repertoire);
// statements using sub-queries, outer joins, derived tables or set
// operations carry a negative Vectorizable verdict on their plan and
// return ErrUnsupported, which the engine-level adapter (internal/engine's
// vektor family) turns into interpreter execution of the same plan. The
// conversion from the boxed []Value storage of engine.Database into typed
// vectors happens once per table data version in that adapter, not here.
package vexec
