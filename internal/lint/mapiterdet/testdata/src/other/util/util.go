// Package util is outside the determinism-critical marker set: the same
// shapes that fire in internal/plan must stay silent here.
package util

func emit(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
