// Package lockmarshal flags JSON marshalling and file I/O performed while
// a sync.Mutex / sync.RWMutex *write* lock is held in internal/repository.
// PR 5 fixed a data race of exactly this family: Store.Save snapshotted
// live pointers under the lock but marshalled them after releasing it, so
// concurrent mutators raced the encoder. The repository's rule since PR 7
// is that serialisation and disk writes under a write lock happen only at
// the two blessed seams — the WAL append path (logApply/metaLogApply:
// durability *requires* append+fsync under the same lock as the in-memory
// apply, so log order equals apply order) and the checkpoint path (the
// snapshot slices alias live objects, so marshalling must not outlive the
// lock). Anywhere else, I/O under a write lock is either a latency bug
// (every reader of the shard stalls behind an fsync) or the PR 5 race
// reborn with the lock on the wrong side.
//
// The analyzer tracks Lock/Unlock calls in source order (defer Unlock
// keeps the lock to the end) and flags I/O performed while a write lock
// *acquired in the same function* is held. It matches both direct stdlib
// I/O (encoding/json Marshal family, os file operations) and calls to
// package-local functions that themselves perform direct I/O — one hop,
// so helpers like writeFileAtomic and checkpointPartition count as I/O at
// their call sites. Helpers that run entirely under a caller-held lock
// (the repository's "Locked" suffix / "mu held" doc convention) are
// checked at the call that enters the critical section, not line by line
// inside — one annotation at the seam's entry documents the whole
// discipline. Calls to logApply/metaLogApply are exempt: they are the WAL
// discipline itself (walack enforces their use), and durability requires
// their append+fsync to happen under the same lock as the in-memory
// apply.
//
// Suppress deliberate sites with //lint:iolocked <reason>.
package lockmarshal

import (
	"go/ast"

	"sqalpel/internal/lint/analysis"
	"sqalpel/internal/lint/lintutil"
)

// Marker restricts the analyzer to the repository package.
const Marker = "internal/repository"

// Token is the suppression token: //lint:iolocked <reason>.
const Token = "iolocked"

var Analyzer = &analysis.Analyzer{
	Name: "lockmarshal",
	Doc: "flag json.Marshal / file I/O / fsync while a write lock is held in internal/repository " +
		"outside the blessed WAL and checkpoint seams; suppress with //lint:iolocked <reason>",
	Run: run,
}

// ioFuncs are the direct package-level I/O entry points.
var ioFuncs = map[string][]string{
	"encoding/json": {"Marshal", "MarshalIndent"},
	"os": {"WriteFile", "ReadFile", "Rename", "Remove", "RemoveAll", "Create", "Open",
		"OpenFile", "Mkdir", "MkdirAll", "ReadDir", "Stat"},
	"io": {"Copy", "ReadAll"},
}

// ioMethods are the direct method-call I/O entry points, keyed by
// (package marker, type name).
var ioMethods = []struct {
	marker, typ string
	names       []string
}{
	{"os", "File", []string{"Write", "WriteString", "Sync", "Truncate", "ReadFrom", "Read"}},
	{"encoding/json", "Encoder", []string{"Encode"}},
	{"bufio", "Writer", []string{"Flush"}},
	// The WAL writer and sink are I/O by definition: append frames, writes
	// and fsyncs one record.
	{Marker, "walWriter", []string{"append"}},
	{Marker, "walSink", []string{"Write", "Sync", "Close"}},
}

// exemptCallees are the WAL discipline itself: every mutator calls them
// under the shard/meta lock by design, and walack independently enforces
// that they are called. Flagging each caller would bury real findings
// under boilerplate annotations.
var exemptCallees = map[string]bool{"logApply": true, "metaLogApply": true}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PathMatches(pass.Pkg.Path(), Marker) {
		return nil, nil
	}
	sup := lintutil.NewSuppressions(pass.Fset, pass.Files)

	// First pass: package-local functions that perform direct I/O become
	// I/O callees themselves (one hop, no fixpoint — enough to catch
	// writeFileAtomic/checkpointPartition-style helpers without tainting
	// every mutator that calls logApply).
	localIO := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			directIO := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isDirectIO(pass, call) {
					directIO = true
				}
				return !directIO
			})
			if directIO {
				localIO[fd.Name.Name] = true
			}
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, sup, localIO, &lockState{}, fd.Body)
		}
	}
	return nil, nil
}

// lockState tracks the write locks held at the current source position.
type lockState struct {
	held []string // rendered receiver expressions, e.g. "sh.mu"
}

func (st *lockState) lock(recv string) { st.held = append(st.held, recv) }
func (st *lockState) unlock(recv string) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i] == recv {
			st.held = append(st.held[:i], st.held[i+1:]...)
			return
		}
	}
}

// checkBody walks statements in source order, updating lock state and
// flagging I/O calls made while any write lock is held.
func checkBody(pass *analysis.Pass, sup *lintutil.Suppressions, localIO map[string]bool, st *lockState, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure runs at an unknown time; analyse it with a copy of
			// the current lock state (conservative for immediately-invoked
			// and deferred closures, which dominate this package).
			inner := &lockState{held: append([]string(nil), st.held...)}
			checkBody(pass, sup, localIO, inner, n.Body)
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() releases at return — the lock stays held
			// for the rest of the function, so no state change. Any other
			// deferred call is walked normally.
			if recv, op := mutexOp(pass, n.Call); op == "Unlock" && recv != "" {
				return false
			}
			return true
		case *ast.CallExpr:
			if recv, op := mutexOp(pass, n); recv != "" {
				switch op {
				case "Lock":
					st.lock(recv)
				case "Unlock":
					st.unlock(recv)
				}
				return false
			}
			if len(st.held) > 0 && isIOCall(pass, localIO, n) {
				if !sup.Suppressed(pass.Fset, n.Pos(), Token) {
					pass.Reportf(n.Pos(),
						"%s while write lock %s is held: serialisation/I/O under a write lock stalls "+
							"every reader and risks the PR 5 marshal race; move it outside the critical "+
							"section or annotate //lint:%s <reason>",
						lintutil.ExprString(n.Fun), st.held[len(st.held)-1], Token)
				}
			}
		}
		return true
	})
}

// mutexOp matches calls of the form <expr>.Lock() / <expr>.Unlock() on a
// sync.Mutex or sync.RWMutex and returns the rendered receiver and the
// operation. RLock/RUnlock return "" — read locks admit concurrent
// readers, and marshalling under them is the PR 5 *fix*, not the bug.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (recv, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "Unlock" {
		return "", ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil || !lintutil.IsMutex(tv.Type) {
		return "", ""
	}
	return lintutil.ExprString(sel.X), name
}

// isDirectIO matches the stdlib I/O entry points and the WAL writer/sink
// methods.
func isDirectIO(pass *analysis.Pass, call *ast.CallExpr) bool {
	for pkg, names := range ioFuncs {
		if lintutil.IsPkgCall(pass.TypesInfo, call, pkg, names...) {
			return true
		}
	}
	for _, m := range ioMethods {
		if lintutil.IsMethodCall(pass.TypesInfo, call, m.marker, m.typ, m.names...) {
			return true
		}
	}
	// Interface method calls on a walSink value (IsMethodCall resolves the
	// interface method's receiver to the interface type itself).
	return false
}

// isIOCall additionally matches calls to package-local one-hop I/O
// helpers, minus the blessed WAL discipline callees.
func isIOCall(pass *analysis.Pass, localIO map[string]bool, call *ast.CallExpr) bool {
	if isDirectIO(pass, call) {
		return true
	}
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !lintutil.PathMatches(fn.Pkg().Path(), Marker) {
		return false
	}
	if exemptCallees[fn.Name()] {
		return false
	}
	return localIO[fn.Name()]
}
