// Package server implements the sqalpel web platform: a client/server
// application that manages users, the global DBMS and platform catalogs,
// public and private performance projects, experiments with their grammars
// and query pools, the contribution protocol used by the experiment driver
// (request a task — singly or as a leased batch via the request's `max`
// field — and report a result), the raw results table and the built-in
// analytics. JSON endpoints live under /api/; server-side rendered HTML
// pages (see webui.go) cover the demo's screens.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"sqalpel/internal/analytics"
	"sqalpel/internal/catalog"
	"sqalpel/internal/derive"
	"sqalpel/internal/grammar"
	"sqalpel/internal/pool"
	"sqalpel/internal/repository"
	"sqalpel/internal/trace"
)

// Server is the sqalpel platform server.
type Server struct {
	store   *repository.Store
	catalog *catalog.Catalog

	mu       sync.Mutex
	sessions map[string]string     // token -> nickname
	pools    map[string]*pool.Pool // "projectID:experimentID" -> live pool

	mux *http.ServeMux
}

// Options configure a server.
type Options struct {
	// Store is the repository backing the platform; a fresh one is created
	// when nil.
	Store *repository.Store
	// Catalog is the global DBMS/platform catalog; the bootstrap catalog is
	// used when nil.
	Catalog *catalog.Catalog
}

// New creates a server and registers all routes.
func New(opts Options) *Server {
	s := &Server{
		store:    opts.Store,
		catalog:  opts.Catalog,
		sessions: map[string]string{},
		pools:    map[string]*pool.Pool{},
		mux:      http.NewServeMux(),
	}
	if s.store == nil {
		s.store = repository.NewStore()
	}
	if s.catalog == nil {
		s.catalog = catalog.Bootstrap()
	}
	s.routes()
	return s
}

// Store exposes the backing repository (used by the daemon for persistence).
func (s *Server) Store() *repository.Store { return s.store }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	// Health and API.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("POST /api/register", s.handleRegister)
	s.mux.HandleFunc("POST /api/login", s.handleLogin)

	s.mux.HandleFunc("GET /api/catalog/dbms", s.handleListDBMS)
	s.mux.HandleFunc("POST /api/catalog/dbms", s.handleAddDBMS)
	s.mux.HandleFunc("GET /api/catalog/platforms", s.handleListPlatforms)
	s.mux.HandleFunc("POST /api/catalog/platforms", s.handleAddPlatform)

	s.mux.HandleFunc("GET /api/projects", s.handleListProjects)
	s.mux.HandleFunc("POST /api/projects", s.handleCreateProject)
	s.mux.HandleFunc("GET /api/projects/{id}", s.handleGetProject)
	s.mux.HandleFunc("POST /api/projects/{id}/visibility", s.handleVisibility)
	s.mux.HandleFunc("POST /api/projects/{id}/invite", s.handleInvite)
	s.mux.HandleFunc("POST /api/projects/{id}/experiments", s.handleAddExperiment)
	s.mux.HandleFunc("GET /api/projects/{id}/experiments/{eid}/queries", s.handleListQueries)
	s.mux.HandleFunc("POST /api/projects/{id}/experiments/{eid}/grow", s.handleGrowPool)
	s.mux.HandleFunc("GET /api/projects/{id}/results", s.handleListResults)
	s.mux.HandleFunc("GET /api/projects/{id}/results.csv", s.handleResultsCSV)
	s.mux.HandleFunc("POST /api/results/{rid}/hide", s.handleHideResult)
	s.mux.HandleFunc("GET /api/projects/{id}/comments", s.handleListComments)
	s.mux.HandleFunc("POST /api/projects/{id}/comments", s.handleAddComment)
	s.mux.HandleFunc("GET /api/projects/{id}/tasks", s.handleListTasks)
	s.mux.HandleFunc("GET /api/projects/{id}/analytics/history", s.handleHistory)
	s.mux.HandleFunc("GET /api/projects/{id}/analytics/components", s.handleComponents)
	s.mux.HandleFunc("GET /api/projects/{id}/analytics/speedup", s.handleSpeedup)
	s.mux.HandleFunc("GET /api/projects/{id}/analytics/diff", s.handleDiff)

	// Driver protocol (contributor-key authenticated).
	s.mux.HandleFunc("POST /api/task/request", s.handleTaskRequest)
	s.mux.HandleFunc("POST /api/task/complete", s.handleTaskComplete)

	// HTML pages.
	s.registerWebUI()
}

// --- helpers -----------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeJSON(r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func newToken() string {
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		panic(err)
	}
	return hex.EncodeToString(buf)
}

// viewer resolves the session token (if any) to a nickname; anonymous
// requests yield "".
func (s *Server) viewer(r *http.Request) string {
	token := r.Header.Get("X-Sqalpel-Token")
	if token == "" {
		auth := r.Header.Get("Authorization")
		if strings.HasPrefix(auth, "Bearer ") {
			token = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if token == "" {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[token]
}

// requireUser resolves the session or writes a 401.
func (s *Server) requireUser(w http.ResponseWriter, r *http.Request) (string, bool) {
	nick := s.viewer(r)
	if nick == "" {
		writeError(w, http.StatusUnauthorized, fmt.Errorf("authentication required"))
		return "", false
	}
	return nick, true
}

func pathInt(r *http.Request, name string) (int, error) {
	v, err := strconv.Atoi(r.PathValue(name))
	if err != nil {
		return 0, fmt.Errorf("invalid %s %q", name, r.PathValue(name))
	}
	return v, nil
}

// --- users ---------------------------------------------------------------

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Nickname string `json:"nickname"`
		Email    string `json:"email"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := s.store.RegisterUser(req.Nickname, req.Email); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	token := s.createSession(req.Nickname)
	writeJSON(w, http.StatusCreated, map[string]string{"nickname": req.Nickname, "token": token})
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Nickname string `json:"nickname"`
		Email    string `json:"email"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	u := s.store.User(req.Nickname)
	if u == nil || u.Email != req.Email {
		writeError(w, http.StatusUnauthorized, fmt.Errorf("unknown user or wrong email"))
		return
	}
	token := s.createSession(req.Nickname)
	writeJSON(w, http.StatusOK, map[string]string{"nickname": req.Nickname, "token": token})
}

func (s *Server) createSession(nickname string) string {
	token := newToken()
	s.mu.Lock()
	s.sessions[token] = nickname
	s.mu.Unlock()
	return token
}

// --- catalogs --------------------------------------------------------------

func (s *Server) handleListDBMS(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.catalog.ListDBMS())
}

func (s *Server) handleAddDBMS(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.requireUser(w, r); !ok {
		return
	}
	var d catalog.DBMS
	if err := decodeJSON(r, &d); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.catalog.AddDBMS(d); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, d)
}

func (s *Server) handleListPlatforms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.catalog.ListPlatforms())
}

func (s *Server) handleAddPlatform(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.requireUser(w, r); !ok {
		return
	}
	var p catalog.Platform
	if err := decodeJSON(r, &p); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.catalog.AddPlatform(p); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, p)
}

// --- projects ---------------------------------------------------------------

// projectView is the JSON representation of a project; contributor keys are
// never included (they are returned only to the owner at invitation time).
type projectView struct {
	ID           int              `json:"id"`
	Name         string           `json:"name"`
	Synopsis     string           `json:"synopsis"`
	Attribution  string           `json:"attribution"`
	Owner        string           `json:"owner"`
	Public       bool             `json:"public"`
	DBMSKeys     []string         `json:"dbms_keys"`
	PlatformKeys []string         `json:"platform_keys"`
	Contributors []string         `json:"contributors"`
	Experiments  []experimentView `json:"experiments"`
}

type experimentView struct {
	ID          int    `json:"id"`
	Title       string `json:"title"`
	BaselineSQL string `json:"baseline_sql"`
	GrammarText string `json:"grammar_text"`
	QueryCount  int    `json:"query_count"`
}

func toProjectView(p *repository.Project) projectView {
	v := projectView{
		ID: p.ID, Name: p.Name, Synopsis: p.Synopsis, Attribution: p.Attribution,
		Owner: p.Owner, Public: p.Public, DBMSKeys: p.DBMSKeys, PlatformKeys: p.PlatformKeys,
	}
	for _, c := range p.Contributors {
		v.Contributors = append(v.Contributors, c.Nickname)
	}
	for _, e := range p.Experiments {
		v.Experiments = append(v.Experiments, experimentView{
			ID: e.ID, Title: e.Title, BaselineSQL: e.BaselineSQL,
			GrammarText: e.GrammarText, QueryCount: len(e.Queries),
		})
	}
	return v
}

func (s *Server) handleListProjects(w http.ResponseWriter, r *http.Request) {
	viewer := s.viewer(r)
	var out []projectView
	for _, p := range s.store.Projects(viewer) {
		out = append(out, toProjectView(p))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateProject(w http.ResponseWriter, r *http.Request) {
	nick, ok := s.requireUser(w, r)
	if !ok {
		return
	}
	var req struct {
		Name        string `json:"name"`
		Synopsis    string `json:"synopsis"`
		Attribution string `json:"attribution"`
		Public      bool   `json:"public"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.store.CreateProject(nick, req.Name, req.Synopsis, req.Public)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Attribution != "" {
		_ = s.store.UpdateSynopsis(nick, p.ID, req.Synopsis, req.Attribution)
	}
	// The owner's own contributor key is returned so they can run the
	// driver themselves.
	writeJSON(w, http.StatusCreated, map[string]any{
		"project": toProjectView(s.store.Project(p.ID)),
		"key":     p.Contributors[0].Key,
	})
}

func (s *Server) loadProject(w http.ResponseWriter, r *http.Request) (*repository.Project, string, bool) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, "", false
	}
	viewer := s.viewer(r)
	p := s.store.Project(id)
	if p == nil || !s.store.CanView(viewer, id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("project %d not found", id))
		return nil, "", false
	}
	return p, viewer, true
}

func (s *Server) handleGetProject(w http.ResponseWriter, r *http.Request) {
	p, _, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, toProjectView(p))
}

func (s *Server) handleVisibility(w http.ResponseWriter, r *http.Request) {
	nick, ok := s.requireUser(w, r)
	if !ok {
		return
	}
	id, err := pathInt(r, "id")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Public bool `json:"public"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.SetVisibility(nick, id, req.Public); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"public": req.Public})
}

func (s *Server) handleInvite(w http.ResponseWriter, r *http.Request) {
	nick, ok := s.requireUser(w, r)
	if !ok {
		return
	}
	id, err := pathInt(r, "id")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Nickname string `json:"nickname"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := s.store.Invite(nick, id, req.Nickname)
	if err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"nickname": req.Nickname, "key": key})
}

// --- experiments and pools ----------------------------------------------------

func (s *Server) handleAddExperiment(w http.ResponseWriter, r *http.Request) {
	nick, ok := s.requireUser(w, r)
	if !ok {
		return
	}
	id, err := pathInt(r, "id")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Title       string `json:"title"`
		BaselineSQL string `json:"baseline_sql"`
		GrammarText string `json:"grammar_text"`
		SeedRandom  int    `json:"seed_random"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var g *grammar.Grammar
	switch {
	case req.GrammarText != "":
		g, err = grammar.Parse(req.GrammarText)
	case req.BaselineSQL != "":
		g, err = derive.FromSQL(req.BaselineSQL, derive.DefaultOptions())
	default:
		err = fmt.Errorf("an experiment needs a baseline_sql or a grammar_text")
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pl, err := pool.New(g, pool.Options{Seed: int64(id)*1000 + 7})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.SeedRandom > 0 {
		if _, err := pl.SeedRandom(req.SeedRandom); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	exp, err := s.store.AddExperiment(nick, id, req.Title, req.BaselineSQL, g.String())
	if err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	if err := s.store.ReplaceQueries(nick, id, exp.ID, poolRecords(pl)); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	s.pools[poolKey(id, exp.ID)] = pl
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"experiment_id": exp.ID,
		"grammar_text":  g.String(),
		"query_count":   pl.Size(),
	})
}

func poolKey(projectID, experimentID int) string {
	return fmt.Sprintf("%d:%d", projectID, experimentID)
}

func poolRecords(pl *pool.Pool) []repository.QueryRecord {
	var out []repository.QueryRecord
	for _, e := range pl.Entries() {
		var terms []string
		for _, lits := range e.Sentence().Literals {
			for _, l := range lits {
				terms = append(terms, l.Text)
			}
		}
		out = append(out, repository.QueryRecord{
			ID: e.ID, SQL: e.SQL, Strategy: string(e.Strategy),
			ParentID: e.ParentID, Components: e.Components, Terms: terms,
		})
	}
	return out
}

// livePool returns the in-memory pool of an experiment, rebuilding it from
// the stored grammar when the server was restarted since the experiment was
// created.
func (s *Server) livePool(p *repository.Project, exp *repository.Experiment) (*pool.Pool, error) {
	key := poolKey(p.ID, exp.ID)
	s.mu.Lock()
	pl, ok := s.pools[key]
	s.mu.Unlock()
	if ok {
		return pl, nil
	}
	g, err := grammar.Parse(exp.GrammarText)
	if err != nil {
		return nil, fmt.Errorf("stored grammar does not parse: %w", err)
	}
	pl, err = pool.New(g, pool.Options{Seed: int64(p.ID)*1000 + 7})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.pools[key] = pl
	s.mu.Unlock()
	return pl, nil
}

func (s *Server) handleGrowPool(w http.ResponseWriter, r *http.Request) {
	nick, ok := s.requireUser(w, r)
	if !ok {
		return
	}
	id, err := pathInt(r, "id")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	eid, err := pathInt(r, "eid")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.store.IsOwner(nick, id) {
		writeError(w, http.StatusForbidden, fmt.Errorf("only the project owner can grow the pool"))
		return
	}
	var req struct {
		Count      int      `json:"count"`
		Random     int      `json:"random"`
		Strategies []string `json:"strategies"`
		Include    []string `json:"include"`
		Exclude    []string `json:"exclude"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p := s.store.Project(id)
	exp := p.Experiment(eid)
	if exp == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %d", eid))
		return
	}
	pl, err := s.livePool(p, exp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	var strategies []pool.Strategy
	for _, st := range req.Strategies {
		strategies = append(strategies, pool.Strategy(st))
	}
	pl.SetSteering(pool.Steering{
		IncludeLiterals: req.Include,
		ExcludeLiterals: req.Exclude,
		Strategies:      strategies,
	})
	if req.Random > 0 {
		if _, err := pl.SeedRandom(req.Random); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if req.Count > 0 {
		pl.Grow(req.Count)
	}
	if err := s.store.ReplaceQueries(nick, id, eid, poolRecords(pl)); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"query_count": pl.Size()})
}

func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	p, _, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	eid, err := pathInt(r, "eid")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	exp := p.Experiment(eid)
	if exp == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %d", eid))
		return
	}
	writeJSON(w, http.StatusOK, exp.Queries)
}

// --- results, comments, tasks ------------------------------------------------

func (s *Server) handleListResults(w http.ResponseWriter, r *http.Request) {
	p, viewer, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.store.Results(viewer, p.ID))
}

func (s *Server) handleResultsCSV(w http.ResponseWriter, r *http.Request) {
	p, viewer, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	runs := s.projectRuns(p, viewer, "")
	w.Header().Set("Content-Type", "text/csv")
	if err := analytics.WriteCSV(w, runs); err != nil {
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleHideResult(w http.ResponseWriter, r *http.Request) {
	nick, ok := s.requireUser(w, r)
	if !ok {
		return
	}
	rid, err := pathInt(r, "rid")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Hidden bool `json:"hidden"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.HideResult(nick, rid, req.Hidden); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"hidden": req.Hidden})
}

func (s *Server) handleListComments(w http.ResponseWriter, r *http.Request) {
	p, viewer, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.store.Comments(viewer, p.ID))
}

func (s *Server) handleAddComment(w http.ResponseWriter, r *http.Request) {
	nick, ok := s.requireUser(w, r)
	if !ok {
		return
	}
	id, err := pathInt(r, "id")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Text string `json:"text"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.store.AddComment(nick, id, req.Text)
	if err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusCreated, c)
}

func (s *Server) handleListTasks(w http.ResponseWriter, r *http.Request) {
	p, viewer, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.store.Tasks(viewer, p.ID))
}

// --- driver protocol ----------------------------------------------------------

func (s *Server) handleTaskRequest(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Key          string `json:"key"`
		ExperimentID int    `json:"experiment_id"`
		DBMS         string `json:"dbms"`
		Platform     string `json:"platform"`
		// Max switches to batch leasing: with max > 1 up to that many tasks
		// are leased in one round trip and returned as {"tasks": [...]}.
		// Absent or 1 keeps the original single-task wire format.
		Max int `json:"max"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tasks, err := s.store.RequestTasks(req.Key, req.ExperimentID, req.DBMS, req.Platform, req.Max)
	if err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	if len(tasks) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if req.Max > 1 {
		writeJSON(w, http.StatusOK, map[string]any{"tasks": tasks})
		return
	}
	writeJSON(w, http.StatusOK, tasks[0])
}

func (s *Server) handleTaskComplete(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Key     string            `json:"key"`
		TaskID  int               `json:"task_id"`
		Seconds []float64         `json:"seconds"`
		Error   string            `json:"error"`
		Extra   map[string]string `json:"extra"`
		// Trace optionally carries the driver's per-operator span tree as a
		// trace.QueryTrace document; it is stored on the result row.
		Trace json.RawMessage `json:"trace"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var qt *trace.QueryTrace
	if len(req.Trace) > 0 && string(req.Trace) != "null" {
		parsed, err := trace.ParseTrace(req.Trace)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid trace: %w", err))
			return
		}
		qt = parsed
	}
	res, err := s.store.CompleteTaskTraced(req.TaskID, req.Key, req.Seconds, req.Error, req.Extra, qt)
	if err != nil {
		// A lost lease (expired and re-queued, or killed) is a normal race
		// in the multi-driver scenario, not an authorization failure; 409
		// tells the driver to drop the result and carry on.
		if errors.Is(err, repository.ErrLeaseLost) {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeError(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusCreated, res)
}

// --- analytics ------------------------------------------------------------------

// projectRuns converts the visible results of a project into analytics runs;
// target filters on the "dbms@platform" label when non-empty.
func (s *Server) projectRuns(p *repository.Project, viewer, target string) []analytics.Run {
	var runs []analytics.Run
	for _, res := range s.store.Results(viewer, p.ID) {
		exp := p.Experiment(res.ExperimentID)
		if exp == nil {
			continue
		}
		q := exp.Query(res.QueryID)
		if q == nil {
			continue
		}
		label := res.DBMSKey + "@" + res.PlatformKey
		if target != "" && label != target {
			continue
		}
		run := analytics.Run{
			QueryID:    q.ID,
			SQL:        q.SQL,
			Strategy:   q.Strategy,
			ParentID:   q.ParentID,
			Components: q.Components,
			Terms:      q.Terms,
			Target:     label,
			Error:      res.Error,
		}
		if !res.Failed() {
			run.Seconds = res.MinSeconds()
		}
		runs = append(runs, run)
	}
	return runs
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	p, viewer, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	target := r.URL.Query().Get("target")
	runs := s.projectRuns(p, viewer, "")
	writeJSON(w, http.StatusOK, analytics.History(runs, target))
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request) {
	p, viewer, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	target := r.URL.Query().Get("target")
	runs := s.projectRuns(p, viewer, "")
	writeJSON(w, http.StatusOK, analytics.Components(runs, target))
}

func (s *Server) handleSpeedup(w http.ResponseWriter, r *http.Request) {
	p, viewer, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	base := r.URL.Query().Get("base")
	other := r.URL.Query().Get("other")
	runs := s.projectRuns(p, viewer, "")
	writeJSON(w, http.StatusOK, analytics.Speedup(runs, base, other))
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	p, viewer, ok := s.loadProject(w, r)
	if !ok {
		return
	}
	a, errA := strconv.Atoi(r.URL.Query().Get("a"))
	b, errB := strconv.Atoi(r.URL.Query().Get("b"))
	if errA != nil || errB != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("a and b query ids are required"))
		return
	}
	runs := s.projectRuns(p, viewer, "")
	d, err := analytics.Diff(runs, a, b)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}
