package sqlsemroute_test

import (
	"testing"

	"sqalpel/internal/lint/analysistest"
	"sqalpel/internal/lint/sqlsemroute"
)

func TestSQLSemRoute(t *testing.T) {
	analysistest.Run(t, "testdata", sqlsemroute.Analyzer, "internal/engine")
}
