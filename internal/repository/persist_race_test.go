package repository

import (
	"fmt"
	"sync"
	"testing"
)

// TestSaveConcurrentWithMutators hammers Save against the mutators that
// write through the shared *Project/*Task/*Result pointers the snapshot
// holds. Before Save marshalled under the read lock, json.MarshalIndent ran
// after RUnlock and raced with AppendQueries/AddResult/RequestTask; run
// with -race this test pins the fix.
func TestSaveConcurrentWithMutators(t *testing.T) {
	s, pub, _ := fixture(t)
	ownerKey := s.Project(pub.ID).Contributors[0].Key
	dir := t.TempDir()

	const rounds = 50
	var wg sync.WaitGroup
	wg.Add(4)

	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := s.Save(dir); err != nil {
				t.Errorf("Save: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			err := s.AppendQueries("martin", pub.ID, 1, []QueryRecord{
				{ID: 100 + i, SQL: fmt.Sprintf("SELECT %d FROM nation", i), Strategy: "random", Components: 2},
			})
			if err != nil {
				t.Errorf("AppendQueries: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := s.AddResult(ownerKey, 1, 1, "columba-1.0", "laptop", []float64{0.1}, "", map[string]string{"i": fmt.Sprint(i)}); err != nil {
				t.Errorf("AddResult: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			// Task leasing mutates *Task fields (status, lease deadline)
			// reachable from the snapshot too.
			task, err := s.RequestTask(ownerKey, 1, "columba-1.0", "laptop")
			if err != nil {
				t.Errorf("RequestTask: %v", err)
				return
			}
			if task == nil {
				continue
			}
			if _, err := s.CompleteTask(task.ID, ownerKey, []float64{0.2}, "", nil); err != nil && err != ErrLeaseLost {
				t.Errorf("CompleteTask: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// The store must still round-trip cleanly after the stampede.
	if err := s.Save(dir); err != nil {
		t.Fatalf("final Save: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after concurrent saves: %v", err)
	}
	if loaded.Project(pub.ID) == nil {
		t.Error("loaded store lost the project")
	}
}
