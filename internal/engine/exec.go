package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sqalpel/internal/sqlparser"
)

// Mode selects the execution strategy of the executor.
type Mode int

// Execution modes.
const (
	// ModeRow is tuple-at-a-time execution: full-width scans, short-circuit
	// predicate evaluation, no intermediate materialisation, early exit on
	// LIMIT.
	ModeRow Mode = iota
	// ModeColumn is column-at-a-time execution: column pruning, one filter
	// pass per conjunct, materialised arithmetic intermediates with
	// overflow-guarding casts.
	ModeColumn
)

// Stats collects execution counters; they feed the open-ended key/value list
// the driver reports back to the platform.
type Stats struct {
	RowsScanned               int64
	TuplesMaterialized        int64
	IntermediatesMaterialized int64
	GuardCasts                int64
	FilterPasses              int64
	HashJoins                 int64
	LoopJoins                 int64
	SubqueryExecutions        int64
	Groups                    int64
	RowsReturned              int64
	// Batches counts the fixed-size batches processed by the vectorized
	// engine; the interpreters always report zero.
	Batches int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.RowsScanned += other.RowsScanned
	s.TuplesMaterialized += other.TuplesMaterialized
	s.IntermediatesMaterialized += other.IntermediatesMaterialized
	s.GuardCasts += other.GuardCasts
	s.FilterPasses += other.FilterPasses
	s.HashJoins += other.HashJoins
	s.LoopJoins += other.LoopJoins
	s.SubqueryExecutions += other.SubqueryExecutions
	s.Groups += other.Groups
	s.RowsReturned += other.RowsReturned
	s.Batches += other.Batches
}

// Map renders the stats as the key/value list reported to the platform.
func (s Stats) Map() map[string]int64 {
	return map[string]int64{
		"rows_scanned":               s.RowsScanned,
		"tuples_materialized":        s.TuplesMaterialized,
		"intermediates_materialized": s.IntermediatesMaterialized,
		"guard_casts":                s.GuardCasts,
		"filter_passes":              s.FilterPasses,
		"hash_joins":                 s.HashJoins,
		"loop_joins":                 s.LoopJoins,
		"subquery_executions":        s.SubqueryExecutions,
		"groups":                     s.Groups,
		"rows_returned":              s.RowsReturned,
		"batches":                    s.Batches,
	}
}

// executionLimits guard against runaway queries: generated query variants
// may drop join predicates and explode; the executor turns those into
// errors, matching the error entries of the paper's experiment history.
type executionLimits struct {
	maxJoinRows int
	deadline    time.Time
}

const defaultMaxJoinRows = 4_000_000

// executor runs one statement against a database.
type executor struct {
	db     *Database
	mode   Mode
	stats  *Stats
	limits executionLimits
	// guardCasts toggles the overflow-guard widening pass of ModeColumn;
	// disabling it models a newer engine version that removed the cost.
	guardCasts bool

	uncorrCache  map[*sqlparser.SelectStatement]*relation
	uncorrSets   map[*sqlparser.SelectStatement]map[string]bool
	correlated   map[*sqlparser.SelectStatement]bool
	deadlineTick int
}

func newExecutor(db *Database, mode Mode, limits executionLimits, guardCasts bool) *executor {
	if limits.maxJoinRows == 0 {
		limits.maxJoinRows = defaultMaxJoinRows
	}
	return &executor{
		db:          db,
		mode:        mode,
		stats:       &Stats{},
		limits:      limits,
		guardCasts:  guardCasts,
		uncorrCache: map[*sqlparser.SelectStatement]*relation{},
		uncorrSets:  map[*sqlparser.SelectStatement]map[string]bool{},
		correlated:  map[*sqlparser.SelectStatement]bool{},
	}
}

// checkDeadline returns an error when the execution deadline has passed; it
// only consults the clock every few hundred calls to stay cheap.
func (ex *executor) checkDeadline() error {
	if ex.limits.deadline.IsZero() {
		return nil
	}
	ex.deadlineTick++
	if ex.deadlineTick%512 != 0 {
		return nil
	}
	if time.Now().After(ex.limits.deadline) {
		return fmt.Errorf("query exceeded its time budget")
	}
	return nil
}

// executeSubquery runs a nested select; uncorrelated sub-queries are
// executed once and cached.
func (ex *executor) executeSubquery(stmt *sqlparser.SelectStatement, outer *scope) (*relation, error) {
	ex.stats.SubqueryExecutions++
	if !ex.isCorrelated(stmt) {
		if rel, ok := ex.uncorrCache[stmt]; ok {
			return rel, nil
		}
		rel, err := ex.executeSelect(stmt, nil)
		if err != nil {
			return nil, err
		}
		ex.uncorrCache[stmt] = rel
		return rel, nil
	}
	return ex.executeSelect(stmt, outer)
}

// subquerySet returns the set of first-column values produced by an IN
// sub-query, cached for uncorrelated sub-queries.
func (ex *executor) subquerySet(stmt *sqlparser.SelectStatement, outer *scope) (map[string]bool, error) {
	if !ex.isCorrelated(stmt) {
		if set, ok := ex.uncorrSets[stmt]; ok {
			return set, nil
		}
	}
	rel, err := ex.executeSubquery(stmt, outer)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	if len(rel.cols) > 0 {
		for _, v := range rel.cols[0].vals {
			if !v.IsNull() {
				set[v.Key()] = true
			}
		}
	}
	if !ex.isCorrelated(stmt) {
		ex.uncorrSets[stmt] = set
	}
	return set, nil
}

// executeSelect is the top of the interpreter.
func (ex *executor) executeSelect(stmt *sqlparser.SelectStatement, outer *scope) (*relation, error) {
	rel, err := ex.executeSelectCore(stmt, outer)
	if err != nil {
		return nil, err
	}
	// Set operations chain on the statement.
	for cur := stmt; cur.SetNext != nil; cur = cur.SetNext {
		right, err := ex.executeSelectCore(cur.SetNext, outer)
		if err != nil {
			return nil, err
		}
		rel, err = applySetOp(cur.SetOp, rel, right)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func applySetOp(op string, left, right *relation) (*relation, error) {
	if len(left.cols) != len(right.cols) {
		return nil, fmt.Errorf("set operation requires matching column counts (%d vs %d)", len(left.cols), len(right.cols))
	}
	rowKey := func(r *relation, i int) string {
		var sb strings.Builder
		for _, c := range r.cols {
			sb.WriteString(c.vals[i].Key())
			sb.WriteByte('|')
		}
		return sb.String()
	}
	switch op {
	case "UNION ALL":
		out := left.selectRows(allRows(left.numRows()))
		for i := 0; i < right.numRows(); i++ {
			for ci, c := range out.cols {
				c.vals = append(c.vals, right.cols[ci].vals[i])
			}
			out.n++
		}
		return out, nil
	case "UNION":
		seen := map[string]bool{}
		var keep []int
		for i := 0; i < left.numRows(); i++ {
			k := rowKey(left, i)
			if !seen[k] {
				seen[k] = true
				keep = append(keep, i)
			}
		}
		out := left.selectRows(keep)
		for i := 0; i < right.numRows(); i++ {
			k := rowKey(right, i)
			if !seen[k] {
				seen[k] = true
				for ci, c := range out.cols {
					c.vals = append(c.vals, right.cols[ci].vals[i])
				}
				out.n++
			}
		}
		return out, nil
	case "EXCEPT", "INTERSECT":
		rightKeys := map[string]bool{}
		for i := 0; i < right.numRows(); i++ {
			rightKeys[rowKey(right, i)] = true
		}
		var keep []int
		seen := map[string]bool{}
		for i := 0; i < left.numRows(); i++ {
			k := rowKey(left, i)
			if seen[k] {
				continue
			}
			seen[k] = true
			inRight := rightKeys[k]
			if (op == "EXCEPT" && !inRight) || (op == "INTERSECT" && inRight) {
				keep = append(keep, i)
			}
		}
		return left.selectRows(keep), nil
	default:
		return nil, fmt.Errorf("unknown set operation %q", op)
	}
}

func allRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (ex *executor) executeSelectCore(stmt *sqlparser.SelectStatement, outer *scope) (*relation, error) {
	if len(stmt.Projection) == 0 {
		return nil, fmt.Errorf("query has no projection")
	}

	// FROM + join graph + residual filter.
	input, residual, err := ex.buildFrom(stmt, outer)
	if err != nil {
		return nil, err
	}

	hasAgg := statementHasAggregates(stmt)
	grouped := len(stmt.GroupBy) > 0 || hasAgg

	// Early-exit opportunity for the row engine: plain scans with LIMIT and
	// no ordering can stop as soon as enough rows qualified.
	earlyLimit := 0
	if ex.mode == ModeRow && !grouped && !stmt.Distinct && len(stmt.OrderBy) == 0 && stmt.Limit != nil {
		earlyLimit = int(*stmt.Limit)
		if stmt.Offset != nil {
			earlyLimit += int(*stmt.Offset)
		}
	}

	filtered, err := ex.applyFilter(input, residual, outer, earlyLimit)
	if err != nil {
		return nil, err
	}

	var out *relation
	var sortKeys [][]Value
	if grouped {
		out, sortKeys, err = ex.projectGrouped(stmt, filtered, outer)
	} else {
		out, sortKeys, err = ex.projectRows(stmt, filtered, outer)
	}
	if err != nil {
		return nil, err
	}

	if stmt.Distinct {
		out, sortKeys = distinctRows(out, sortKeys)
	}

	if len(stmt.OrderBy) > 0 {
		out = sortRelation(out, sortKeys, stmt.OrderBy)
	}

	out = applyLimit(out, stmt.Limit, stmt.Offset)
	ex.stats.RowsReturned += int64(out.numRows())
	return out, nil
}

// buildFrom materialises the FROM clause: every comma-separated table
// expression is built, then stitched together preferring hash joins over the
// equi-join predicates found in WHERE; unconsumed predicates are returned as
// the residual filter.
func (ex *executor) buildFrom(stmt *sqlparser.SelectStatement, outer *scope) (*relation, []sqlparser.Expr, error) {
	conjuncts := liftCommonOrConjuncts(splitAnd(stmt.Where))
	if len(stmt.From) == 0 {
		// SELECT without FROM: a single empty row so expressions evaluate once.
		rel := newRelation()
		rel.n = 1
		return rel, conjuncts, nil
	}

	needed := ex.neededColumns(stmt)
	var rels []*relation
	for _, te := range stmt.From {
		r, err := ex.buildTableExpr(te, needed, outer)
		if err != nil {
			return nil, nil, err
		}
		rels = append(rels, r)
	}

	current := rels[0]
	remaining := rels[1:]
	for len(remaining) > 0 {
		// Find a relation connected to current through equi-join conjuncts.
		bestIdx := -1
		var joinConjuncts []int
		for ri, r := range remaining {
			var edges []int
			for ci, c := range conjuncts {
				if c == nil {
					continue
				}
				if isEquiJoinBetween(c, current, r) {
					edges = append(edges, ci)
				}
			}
			if len(edges) > 0 {
				bestIdx = ri
				joinConjuncts = edges
				break
			}
		}
		if bestIdx < 0 {
			// No join edge: cross product with the first remaining relation.
			joined, err := ex.crossJoin(current, remaining[0])
			if err != nil {
				return nil, nil, err
			}
			current = joined
			remaining = remaining[1:]
			continue
		}
		var leftExprs, rightExprs []sqlparser.Expr
		for _, ci := range joinConjuncts {
			l, r := equiJoinSides(conjuncts[ci], current, remaining[bestIdx])
			leftExprs = append(leftExprs, l)
			rightExprs = append(rightExprs, r)
			conjuncts[ci] = nil
		}
		joined, err := ex.hashJoin(current, remaining[bestIdx], leftExprs, rightExprs, outer)
		if err != nil {
			return nil, nil, err
		}
		current = joined
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}

	var residual []sqlparser.Expr
	for _, c := range conjuncts {
		if c != nil {
			residual = append(residual, c)
		}
	}
	return current, orderBySubqueryCost(residual), nil
}

// orderBySubqueryCost moves predicates that contain sub-queries behind the
// cheap ones, so correlated EXISTS probes (TPC-H Q21 style) only run for
// rows that survived the inexpensive filters. The relative order within each
// class is preserved.
func orderBySubqueryCost(conjuncts []sqlparser.Expr) []sqlparser.Expr {
	if len(conjuncts) < 2 {
		return conjuncts
	}
	var cheap, costly []sqlparser.Expr
	for _, c := range conjuncts {
		if len(sqlparser.Subqueries(c)) > 0 {
			costly = append(costly, c)
		} else {
			cheap = append(cheap, c)
		}
	}
	return append(cheap, costly...)
}

// buildTableExpr materialises one table expression.
func (ex *executor) buildTableExpr(te sqlparser.TableExpr, needed map[string]map[string]bool, outer *scope) (*relation, error) {
	switch t := te.(type) {
	case *sqlparser.TableName:
		table := ex.db.Table(t.Name)
		if table == nil {
			return nil, fmt.Errorf("unknown table %q", t.Name)
		}
		alias := t.Alias
		if alias == "" {
			alias = t.Name
		}
		var neededCols map[string]bool
		if ex.mode == ModeColumn {
			neededCols = needed[strings.ToLower(alias)]
		}
		copyCols := ex.mode == ModeRow
		return tableRelation(table, alias, neededCols, copyCols, ex.stats), nil
	case *sqlparser.DerivedTable:
		rel, err := ex.executeSelect(t.Select, nil)
		if err != nil {
			return nil, err
		}
		if t.Alias != "" {
			rel.renameTables(t.Alias)
		}
		return rel, nil
	case *sqlparser.JoinExpr:
		return ex.buildJoin(t, needed, outer)
	default:
		return nil, fmt.Errorf("unsupported table expression %T", te)
	}
}

func (ex *executor) buildJoin(j *sqlparser.JoinExpr, needed map[string]map[string]bool, outer *scope) (*relation, error) {
	left, err := ex.buildTableExpr(j.Left, needed, outer)
	if err != nil {
		return nil, err
	}
	right, err := ex.buildTableExpr(j.Right, needed, outer)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case "CROSS":
		return ex.crossJoin(left, right)
	case "INNER":
		conjuncts := splitAnd(j.On)
		var leftKeys, rightKeys []sqlparser.Expr
		var residual []sqlparser.Expr
		for _, c := range conjuncts {
			if isEquiJoinBetween(c, left, right) {
				l, r := equiJoinSides(c, left, right)
				leftKeys = append(leftKeys, l)
				rightKeys = append(rightKeys, r)
			} else {
				residual = append(residual, c)
			}
		}
		var joined *relation
		if len(leftKeys) > 0 {
			joined, err = ex.hashJoin(left, right, leftKeys, rightKeys, outer)
		} else {
			joined, err = ex.nestedLoopJoin(left, right, conjuncts, outer)
			residual = nil
		}
		if err != nil {
			return nil, err
		}
		if len(residual) > 0 {
			return ex.applyFilter(joined, residual, outer, 0)
		}
		return joined, nil
	case "LEFT", "RIGHT":
		if j.Kind == "RIGHT" {
			left, right = right, left
		}
		return ex.leftOuterJoin(left, right, splitAnd(j.On), outer)
	default:
		return nil, fmt.Errorf("unsupported join kind %q", j.Kind)
	}
}

// isEquiJoinBetween reports whether the conjunct is `a = b` with a resolving
// only in left and b only in right (or vice versa).
func isEquiJoinBetween(c sqlparser.Expr, left, right *relation) bool {
	be, ok := c.(*sqlparser.BinaryExpr)
	if !ok || be.Op != "=" {
		return false
	}
	lc, lok := be.Left.(*sqlparser.ColumnRef)
	rc, rok := be.Right.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return false
	}
	lInLeft, lInRight := resolvesIn(lc, left), resolvesIn(lc, right)
	rInLeft, rInRight := resolvesIn(rc, left), resolvesIn(rc, right)
	return (lInLeft && !lInRight && rInRight && !rInLeft) ||
		(rInLeft && !rInRight && lInRight && !lInLeft)
}

// equiJoinSides returns the expressions keyed on the left and right relation
// respectively, assuming isEquiJoinBetween returned true.
func equiJoinSides(c sqlparser.Expr, left, right *relation) (sqlparser.Expr, sqlparser.Expr) {
	be := c.(*sqlparser.BinaryExpr)
	lc := be.Left.(*sqlparser.ColumnRef)
	if resolvesIn(lc, left) {
		return be.Left, be.Right
	}
	return be.Right, be.Left
}

func resolvesIn(c *sqlparser.ColumnRef, rel *relation) bool {
	_, err := rel.findColumn(c.Table, c.Column)
	return err == nil
}

// hashJoin joins left and right on the given key expression lists.
func (ex *executor) hashJoin(left, right *relation, leftKeys, rightKeys []sqlparser.Expr, outer *scope) (*relation, error) {
	ex.stats.HashJoins++
	// Build on the smaller side.
	build, probe := right, left
	buildKeys, probeKeys := rightKeys, leftKeys
	swapped := false
	if left.numRows() < right.numRows() {
		build, probe = left, right
		buildKeys, probeKeys = leftKeys, rightKeys
		swapped = true
	}
	ht := map[string][]int{}
	bev := &evaluator{ex: ex, sc: &scope{rel: build, outer: outer}}
	for i := 0; i < build.numRows(); i++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, err
		}
		bev.sc.row = i
		key, err := joinKey(bev, buildKeys)
		if err != nil {
			return nil, err
		}
		ht[key] = append(ht[key], i)
	}
	var probeIdx, buildIdx []int
	pev := &evaluator{ex: ex, sc: &scope{rel: probe, outer: outer}}
	for i := 0; i < probe.numRows(); i++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, err
		}
		pev.sc.row = i
		key, err := joinKey(pev, probeKeys)
		if err != nil {
			return nil, err
		}
		for _, bi := range ht[key] {
			probeIdx = append(probeIdx, i)
			buildIdx = append(buildIdx, bi)
			if len(probeIdx) > ex.limits.maxJoinRows {
				return nil, fmt.Errorf("join result exceeds %d rows", ex.limits.maxJoinRows)
			}
		}
	}
	var leftIdx, rightIdx []int
	if swapped {
		leftIdx, rightIdx = buildIdx, probeIdx
	} else {
		leftIdx, rightIdx = probeIdx, buildIdx
	}
	out := left.selectRows(leftIdx)
	out.appendColumns(right.selectRows(rightIdx).cols)
	return out, nil
}

func joinKey(ev *evaluator, keys []sqlparser.Expr) (string, error) {
	var sb strings.Builder
	for _, k := range keys {
		v, err := ev.eval(k)
		if err != nil {
			return "", err
		}
		sb.WriteString(v.Key())
		sb.WriteByte('|')
	}
	return sb.String(), nil
}

// crossJoin builds the cartesian product, guarded by the join-size limit.
func (ex *executor) crossJoin(left, right *relation) (*relation, error) {
	ex.stats.LoopJoins++
	total := left.numRows() * right.numRows()
	if total > ex.limits.maxJoinRows {
		return nil, fmt.Errorf("cross product of %d x %d rows exceeds the %d row limit",
			left.numRows(), right.numRows(), ex.limits.maxJoinRows)
	}
	leftIdx := make([]int, 0, total)
	rightIdx := make([]int, 0, total)
	for i := 0; i < left.numRows(); i++ {
		for j := 0; j < right.numRows(); j++ {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, j)
		}
	}
	out := left.selectRows(leftIdx)
	out.appendColumns(right.selectRows(rightIdx).cols)
	return out, nil
}

// nestedLoopJoin joins with an arbitrary condition.
func (ex *executor) nestedLoopJoin(left, right *relation, conds []sqlparser.Expr, outer *scope) (*relation, error) {
	ex.stats.LoopJoins++
	joined, err := ex.crossJoin(left, right)
	if err != nil {
		return nil, err
	}
	return ex.applyFilter(joined, conds, outer, 0)
}

// leftOuterJoin implements LEFT [OUTER] JOIN with the ON condition applied
// as part of the match (so non-matching left rows survive null-extended).
func (ex *executor) leftOuterJoin(left, right *relation, conds []sqlparser.Expr, outer *scope) (*relation, error) {
	var leftKeys, rightKeys []sqlparser.Expr
	var residual []sqlparser.Expr
	for _, c := range conds {
		if isEquiJoinBetween(c, left, right) {
			l, r := equiJoinSides(c, left, right)
			leftKeys = append(leftKeys, l)
			rightKeys = append(rightKeys, r)
		} else {
			residual = append(residual, c)
		}
	}
	// Hash the right side by the equi keys (or a single bucket when none).
	ht := map[string][]int{}
	rev := &evaluator{ex: ex, sc: &scope{rel: right, outer: outer}}
	for i := 0; i < right.numRows(); i++ {
		rev.sc.row = i
		key := ""
		if len(rightKeys) > 0 {
			var err error
			key, err = joinKey(rev, rightKeys)
			if err != nil {
				return nil, err
			}
		}
		ht[key] = append(ht[key], i)
	}
	ex.stats.HashJoins++

	var leftIdx, rightIdx []int // rightIdx -1 means null-extended
	lev := &evaluator{ex: ex, sc: &scope{rel: left, outer: outer}}
	for i := 0; i < left.numRows(); i++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, err
		}
		lev.sc.row = i
		key := ""
		if len(leftKeys) > 0 {
			var err error
			key, err = joinKey(lev, leftKeys)
			if err != nil {
				return nil, err
			}
		}
		matched := false
		for _, ri := range ht[key] {
			ok := true
			if len(residual) > 0 {
				// Evaluate residual conditions over the combined row.
				pair := pairScope(left, i, right, ri, outer)
				pev := &evaluator{ex: ex, sc: pair}
				for _, c := range residual {
					v, err := pev.eval(c)
					if err != nil {
						return nil, err
					}
					if !v.Bool() {
						ok = false
						break
					}
				}
			}
			if ok {
				matched = true
				leftIdx = append(leftIdx, i)
				rightIdx = append(rightIdx, ri)
			}
		}
		if !matched {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, -1)
		}
	}

	out := left.selectRows(leftIdx)
	rightPart := &relation{n: len(rightIdx)}
	for _, c := range right.cols {
		vals := make([]Value, len(rightIdx))
		for i, ri := range rightIdx {
			if ri < 0 {
				vals[i] = Null()
			} else {
				vals[i] = c.vals[ri]
			}
		}
		rightPart.cols = append(rightPart.cols, &relColumn{table: c.table, name: c.name, vals: vals})
	}
	out.appendColumns(rightPart.cols)
	return out, nil
}

// pairScope builds a temporary scope exposing one row of the left relation
// and one row of the right relation simultaneously.
func pairScope(left *relation, li int, right *relation, ri int, outer *scope) *scope {
	pair := &relation{n: 1}
	for _, c := range left.cols {
		pair.cols = append(pair.cols, &relColumn{table: c.table, name: c.name, vals: []Value{c.vals[li]}})
	}
	for _, c := range right.cols {
		pair.cols = append(pair.cols, &relColumn{table: c.table, name: c.name, vals: []Value{c.vals[ri]}})
	}
	return &scope{rel: pair, row: 0, outer: outer}
}

// applyFilter filters the relation with the given conjuncts. The row engine
// evaluates all conjuncts per row with short-circuiting (and can stop early
// for LIMIT queries); the column engine makes one pass per conjunct,
// shrinking the selection vector each time.
func (ex *executor) applyFilter(rel *relation, conjuncts []sqlparser.Expr, outer *scope, earlyLimit int) (*relation, error) {
	if len(conjuncts) == 0 {
		return rel, nil
	}
	if ex.mode == ModeColumn {
		selection := allRows(rel.numRows())
		ev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}}
		for _, c := range conjuncts {
			ex.stats.FilterPasses++
			var next []int
			for _, ri := range selection {
				if err := ex.checkDeadline(); err != nil {
					return nil, err
				}
				ev.sc.row = ri
				v, err := ev.eval(c)
				if err != nil {
					return nil, err
				}
				if v.Bool() {
					next = append(next, ri)
				}
			}
			selection = next
			if len(selection) == 0 {
				break
			}
		}
		ex.stats.IntermediatesMaterialized += int64(len(selection))
		return rel.selectRows(selection), nil
	}

	// Row mode.
	ex.stats.FilterPasses++
	var keep []int
	ev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}}
	for ri := 0; ri < rel.numRows(); ri++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, err
		}
		ev.sc.row = ri
		ok := true
		for _, c := range conjuncts {
			v, err := ev.eval(c)
			if err != nil {
				return nil, err
			}
			if !v.Bool() {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, ri)
			if earlyLimit > 0 && len(keep) >= earlyLimit {
				break
			}
		}
	}
	return rel.selectRows(keep), nil
}

// projectRows computes the projection of a non-grouped query, returning the
// output relation plus the ORDER BY sort keys evaluated in the same context.
func (ex *executor) projectRows(stmt *sqlparser.SelectStatement, rel *relation, outer *scope) (*relation, [][]Value, error) {
	items, starCols := expandProjection(stmt, rel)
	out := &relation{n: rel.numRows()}
	for _, sc := range starCols {
		out.cols = append(out.cols, &relColumn{table: sc.table, name: sc.name, vals: nil})
	}
	for _, it := range items {
		if it.star {
			continue
		}
		out.cols = append(out.cols, &relColumn{table: "", name: it.name, vals: nil})
	}

	sortKeys := make([][]Value, rel.numRows())
	ev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}}
	for ri := 0; ri < rel.numRows(); ri++ {
		if err := ex.checkDeadline(); err != nil {
			return nil, nil, err
		}
		ev.sc.row = ri
		col := 0
		for _, sc := range starCols {
			out.cols[col].vals = append(out.cols[col].vals, sc.vals[ri])
			col++
		}
		for _, it := range items {
			if it.star {
				continue
			}
			v, err := ev.eval(it.expr)
			if err != nil {
				return nil, nil, err
			}
			out.cols[col].vals = append(out.cols[col].vals, v)
			col++
		}
		if len(stmt.OrderBy) > 0 {
			keys, err := ex.orderKeys(stmt, ev, out, ri, items)
			if err != nil {
				return nil, nil, err
			}
			sortKeys[ri] = keys
		}
	}
	return out, sortKeys, nil
}

// projectGrouped computes grouping, aggregation, HAVING and the projection
// of a grouped query.
func (ex *executor) projectGrouped(stmt *sqlparser.SelectStatement, rel *relation, outer *scope) (*relation, [][]Value, error) {
	// Build groups.
	type groupEntry struct {
		rows []int
	}
	var order []string
	groups := map[string]*groupEntry{}
	if len(stmt.GroupBy) == 0 {
		key := "all"
		groups[key] = &groupEntry{rows: allRows(rel.numRows())}
		order = append(order, key)
	} else {
		ev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}}
		for ri := 0; ri < rel.numRows(); ri++ {
			if err := ex.checkDeadline(); err != nil {
				return nil, nil, err
			}
			ev.sc.row = ri
			var sb strings.Builder
			for _, g := range stmt.GroupBy {
				v, err := ev.eval(g)
				if err != nil {
					return nil, nil, err
				}
				sb.WriteString(v.Key())
				sb.WriteByte('|')
			}
			key := sb.String()
			entry, ok := groups[key]
			if !ok {
				entry = &groupEntry{}
				groups[key] = entry
				order = append(order, key)
			}
			entry.rows = append(entry.rows, ri)
		}
	}
	ex.stats.Groups += int64(len(order))

	items, _ := expandProjection(stmt, rel)
	for _, it := range items {
		if it.star {
			return nil, nil, fmt.Errorf("SELECT * is not supported with GROUP BY or aggregates")
		}
	}
	out := &relation{}
	for _, it := range items {
		out.cols = append(out.cols, &relColumn{table: "", name: it.name, vals: nil})
	}

	var sortKeys [][]Value
	for _, key := range order {
		entry := groups[key]
		gev := &evaluator{ex: ex, sc: &scope{rel: rel, outer: outer}, group: entry.rows}
		if len(entry.rows) > 0 {
			gev.sc.row = entry.rows[0]
		}
		// HAVING filter.
		if stmt.Having != nil {
			v, err := gev.eval(stmt.Having)
			if err != nil {
				return nil, nil, err
			}
			if !v.Bool() {
				continue
			}
		}
		for i, it := range items {
			v, err := gev.eval(it.expr)
			if err != nil {
				return nil, nil, err
			}
			out.cols[i].vals = append(out.cols[i].vals, v)
		}
		out.n++
		if len(stmt.OrderBy) > 0 {
			keys, err := ex.orderKeys(stmt, gev, out, out.n-1, items)
			if err != nil {
				return nil, nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	return out, sortKeys, nil
}

// projectionItem is one resolved projection element.
type projectionItem struct {
	name string
	expr sqlparser.Expr
	star bool
}

// expandProjection resolves projection items: star items expand to the input
// columns, others get their output name from the alias, column name or
// rendered expression.
func expandProjection(stmt *sqlparser.SelectStatement, rel *relation) ([]projectionItem, []*relColumn) {
	var items []projectionItem
	var starCols []*relColumn
	for _, p := range stmt.Projection {
		if p.Star {
			items = append(items, projectionItem{star: true})
			for _, c := range rel.cols {
				if p.Qualifier == "" || strings.EqualFold(p.Qualifier, c.table) {
					starCols = append(starCols, c)
				}
			}
			continue
		}
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = strings.ToLower(p.Expr.SQL())
			}
		}
		items = append(items, projectionItem{name: strings.ToLower(name), expr: p.Expr})
	}
	return items, starCols
}

// orderKeys evaluates the ORDER BY expressions for the current output row.
// A bare column reference naming a projection alias sorts by that output
// column; everything else is evaluated in the current row/group context.
func (ex *executor) orderKeys(stmt *sqlparser.SelectStatement, ev *evaluator, out *relation, outRow int, items []projectionItem) ([]Value, error) {
	keys := make([]Value, len(stmt.OrderBy))
	for i, ob := range stmt.OrderBy {
		if cr, ok := ob.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			matched := false
			for ci, it := range items {
				if !it.star && it.name == strings.ToLower(cr.Column) {
					keys[i] = out.cols[itemColumn(items, len(out.cols), ci)].vals[outRow]
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		if num, ok := ob.Expr.(*sqlparser.NumberLit); ok {
			// ORDER BY <ordinal>.
			idx := int(parseNumber(num.Value).Int()) - 1
			if idx >= 0 && idx < len(out.cols) {
				keys[i] = out.cols[idx].vals[outRow]
				continue
			}
		}
		v, err := ev.eval(ob.Expr)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// itemColumn maps a projection item index to its output column index: star
// items expand to the full star block ahead of the computed columns, so a
// computed item's column sits after the star block at its non-star rank.
func itemColumn(items []projectionItem, numOutCols, itemIdx int) int {
	nonStar := 0
	for _, it := range items {
		if !it.star {
			nonStar++
		}
	}
	starWidth := numOutCols - nonStar
	rank := 0
	for i := 0; i < itemIdx; i++ {
		if !items[i].star {
			rank++
		}
	}
	return starWidth + rank
}

// distinctRows removes duplicate output rows (and their sort keys).
func distinctRows(rel *relation, sortKeys [][]Value) (*relation, [][]Value) {
	seen := map[string]bool{}
	var keep []int
	for i := 0; i < rel.numRows(); i++ {
		var sb strings.Builder
		for _, c := range rel.cols {
			sb.WriteString(c.vals[i].Key())
			sb.WriteByte('|')
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			keep = append(keep, i)
		}
	}
	out := rel.selectRows(keep)
	if sortKeys == nil {
		return out, nil
	}
	var keys [][]Value
	for _, i := range keep {
		if i < len(sortKeys) {
			keys = append(keys, sortKeys[i])
		}
	}
	return out, keys
}

// sortRelation sorts the output rows by the precomputed keys.
func sortRelation(rel *relation, keys [][]Value, orderBy []sqlparser.OrderItem) *relation {
	idx := allRows(rel.numRows())
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range orderBy {
			c := Compare(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if orderBy[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return rel.selectRows(idx)
}

// applyLimit applies LIMIT/OFFSET.
func applyLimit(rel *relation, limit, offset *int64) *relation {
	if limit == nil && offset == nil {
		return rel
	}
	start := 0
	if offset != nil {
		start = int(*offset)
	}
	end := rel.numRows()
	if limit != nil && start+int(*limit) < end {
		end = start + int(*limit)
	}
	if start > rel.numRows() {
		start = rel.numRows()
	}
	var keep []int
	for i := start; i < end; i++ {
		keep = append(keep, i)
	}
	return rel.selectRows(keep)
}

// liftCommonOrConjuncts looks at top-level OR conjuncts (the TPC-H Q19
// pattern) and lifts predicates that appear in every OR arm to the top
// level, so join edges buried inside the disjunction can still drive hash
// joins. The original OR is kept; the lifted predicates are logically
// implied by it, so the result is unchanged.
func liftCommonOrConjuncts(conjuncts []sqlparser.Expr) []sqlparser.Expr {
	out := append([]sqlparser.Expr(nil), conjuncts...)
	for _, c := range conjuncts {
		arms := splitOr(c)
		if len(arms) < 2 {
			continue
		}
		// Count predicate occurrences by canonical SQL text across arms.
		common := map[string]sqlparser.Expr{}
		for _, p := range splitAnd(unwrapParens(arms[0])) {
			common[p.SQL()] = p
		}
		for _, arm := range arms[1:] {
			present := map[string]bool{}
			for _, p := range splitAnd(unwrapParens(arm)) {
				present[p.SQL()] = true
			}
			for k := range common {
				if !present[k] {
					delete(common, k)
				}
			}
		}
		for _, p := range common {
			out = append(out, p)
		}
	}
	return out
}

func unwrapParens(e sqlparser.Expr) sqlparser.Expr {
	for {
		p, ok := e.(*sqlparser.ParenExpr)
		if !ok {
			return e
		}
		e = p.Expr
	}
}

// splitOr flattens a predicate into its top-level disjuncts.
func splitOr(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		if v.Op == "OR" {
			return append(splitOr(v.Left), splitOr(v.Right)...)
		}
	case *sqlparser.ParenExpr:
		return splitOr(v.Expr)
	}
	return []sqlparser.Expr{e}
}

// splitAnd flattens a predicate into its top-level conjuncts.
func splitAnd(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []sqlparser.Expr{e}
}

// statementHasAggregates reports whether the projection or HAVING of the
// statement uses aggregate functions.
func statementHasAggregates(stmt *sqlparser.SelectStatement) bool {
	for _, p := range stmt.Projection {
		if p.Expr != nil && sqlparser.HasAggregate(p.Expr) {
			return true
		}
	}
	if stmt.Having != nil && sqlparser.HasAggregate(stmt.Having) {
		return true
	}
	return false
}

// neededColumns computes, per table alias, the set of column names the
// statement references anywhere (including sub-queries); used for column
// pruning in column mode. Unqualified references are attributed to every
// base table that has a column of that name.
func (ex *executor) neededColumns(stmt *sqlparser.SelectStatement) map[string]map[string]bool {
	needed := map[string]map[string]bool{}
	add := func(alias, col string) {
		alias = strings.ToLower(alias)
		if needed[alias] == nil {
			needed[alias] = map[string]bool{}
		}
		needed[alias][strings.ToLower(col)] = true
	}

	// Gather the alias → base table mapping of this statement.
	aliases := map[string]*Table{}
	var gatherAliases func(te sqlparser.TableExpr)
	gatherAliases = func(te sqlparser.TableExpr) {
		switch t := te.(type) {
		case *sqlparser.TableName:
			alias := t.Alias
			if alias == "" {
				alias = t.Name
			}
			aliases[strings.ToLower(alias)] = ex.db.Table(t.Name)
		case *sqlparser.JoinExpr:
			gatherAliases(t.Left)
			gatherAliases(t.Right)
		}
	}
	for _, te := range stmt.From {
		gatherAliases(te)
	}

	var refs []*sqlparser.ColumnRef
	star := false
	var collectExpr func(e sqlparser.Expr)
	var collectStmt func(s *sqlparser.SelectStatement)
	collectExpr = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			switch v := x.(type) {
			case *sqlparser.ColumnRef:
				refs = append(refs, v)
			case *sqlparser.SubqueryExpr:
				collectStmt(v.Select)
			case *sqlparser.InExpr:
				if v.Subquery != nil {
					collectStmt(v.Subquery)
				}
			case *sqlparser.ExistsExpr:
				collectStmt(v.Subquery)
			}
			return true
		})
	}
	collectStmt = func(s *sqlparser.SelectStatement) {
		for _, p := range s.Projection {
			if p.Star {
				star = true
				continue
			}
			collectExpr(p.Expr)
		}
		collectExpr(s.Where)
		for _, g := range s.GroupBy {
			collectExpr(g)
		}
		collectExpr(s.Having)
		for _, o := range s.OrderBy {
			collectExpr(o.Expr)
		}
		for _, te := range s.From {
			switch t := te.(type) {
			case *sqlparser.DerivedTable:
				collectStmt(t.Select)
			case *sqlparser.JoinExpr:
				collectJoin(t, collectStmt, collectExpr)
			}
		}
		if s.SetNext != nil {
			collectStmt(s.SetNext)
		}
	}
	collectStmt(stmt)

	if star {
		for alias := range aliases {
			add(alias, "*")
		}
	}
	for _, r := range refs {
		if r.Table != "" {
			add(r.Table, r.Column)
			continue
		}
		for alias, table := range aliases {
			if table != nil && table.ColumnIndex(r.Column) >= 0 {
				add(alias, r.Column)
			}
		}
	}
	return needed
}

func collectJoin(j *sqlparser.JoinExpr, collectStmt func(*sqlparser.SelectStatement), collectExpr func(sqlparser.Expr)) {
	collectExpr(j.On)
	for _, side := range []sqlparser.TableExpr{j.Left, j.Right} {
		switch t := side.(type) {
		case *sqlparser.DerivedTable:
			collectStmt(t.Select)
		case *sqlparser.JoinExpr:
			collectJoin(t, collectStmt, collectExpr)
		}
	}
}

// isCorrelated reports whether the sub-query references columns it cannot
// resolve from its own FROM clauses (at any nesting depth); such sub-queries
// cannot be cached across outer rows.
func (ex *executor) isCorrelated(stmt *sqlparser.SelectStatement) bool {
	if v, ok := ex.correlated[stmt]; ok {
		return v
	}
	v := ex.analyzeCorrelation(stmt, map[string]bool{})
	ex.correlated[stmt] = v
	return v
}

// analyzeCorrelation walks the statement with the set of column keys
// available from enclosing FROM clauses; it returns true when any reference
// escapes.
func (ex *executor) analyzeCorrelation(stmt *sqlparser.SelectStatement, inherited map[string]bool) bool {
	avail := map[string]bool{}
	for k := range inherited {
		avail[k] = true
	}
	var addTable func(te sqlparser.TableExpr)
	addTable = func(te sqlparser.TableExpr) {
		switch t := te.(type) {
		case *sqlparser.TableName:
			alias := t.Alias
			if alias == "" {
				alias = t.Name
			}
			table := ex.db.Table(t.Name)
			if table == nil {
				return
			}
			for _, c := range table.Columns {
				avail[strings.ToLower(c.Name)] = true
				avail[strings.ToLower(alias)+"."+strings.ToLower(c.Name)] = true
			}
		case *sqlparser.DerivedTable:
			for _, p := range t.Select.Projection {
				name := p.Alias
				if name == "" {
					if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
						name = cr.Column
					}
				}
				if name != "" {
					avail[strings.ToLower(name)] = true
					if t.Alias != "" {
						avail[strings.ToLower(t.Alias)+"."+strings.ToLower(name)] = true
					}
				}
				if p.Star {
					// Approximate: expose the derived table's base columns.
					for _, te2 := range t.Select.From {
						addTable(te2)
					}
				}
			}
		case *sqlparser.JoinExpr:
			addTable(t.Left)
			addTable(t.Right)
		}
	}
	for _, te := range stmt.From {
		addTable(te)
	}

	escaped := false
	checkRef := func(r *sqlparser.ColumnRef) {
		key := strings.ToLower(r.Column)
		if r.Table != "" {
			key = strings.ToLower(r.Table) + "." + strings.ToLower(r.Column)
		}
		if !avail[key] {
			escaped = true
		}
	}
	var checkExpr func(e sqlparser.Expr)
	checkExpr = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			switch v := x.(type) {
			case *sqlparser.ColumnRef:
				checkRef(v)
			case *sqlparser.SubqueryExpr:
				if ex.analyzeCorrelation(v.Select, avail) {
					escaped = true
				}
			case *sqlparser.InExpr:
				if v.Subquery != nil && ex.analyzeCorrelation(v.Subquery, avail) {
					escaped = true
				}
			case *sqlparser.ExistsExpr:
				if ex.analyzeCorrelation(v.Subquery, avail) {
					escaped = true
				}
			}
			return true
		})
	}
	for _, p := range stmt.Projection {
		checkExpr(p.Expr)
	}
	checkExpr(stmt.Where)
	for _, g := range stmt.GroupBy {
		checkExpr(g)
	}
	checkExpr(stmt.Having)
	for _, o := range stmt.OrderBy {
		checkExpr(o.Expr)
	}
	for _, te := range stmt.From {
		if d, ok := te.(*sqlparser.DerivedTable); ok {
			if ex.analyzeCorrelation(d.Select, map[string]bool{}) {
				escaped = true
			}
		}
	}
	if stmt.SetNext != nil && ex.analyzeCorrelation(stmt.SetNext, inherited) {
		escaped = true
	}
	return escaped
}
