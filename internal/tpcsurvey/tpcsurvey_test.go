package tpcsurvey

import (
	"strings"
	"testing"
)

func TestCensusMatchesPaperTable1(t *testing.T) {
	rows := Census()
	if len(rows) != 14 {
		t.Fatalf("census rows = %d, want 14", len(rows))
	}
	byName := map[string]Entry{}
	for _, e := range rows {
		byName[e.Benchmark] = e
	}
	checks := map[string]int{
		"TPC-C":           368,
		"TPC-E":           77,
		"TPC-H <= SF-300": 252,
		"TPC-DS":          1,
		"TPC-DI":          0,
		"TPCx-IoT":        1,
	}
	for name, want := range checks {
		if byName[name].Reports != want {
			t.Errorf("%s reports = %d, want %d", name, byName[name].Reports, want)
		}
	}
	if !strings.Contains(strings.Join(byName["TPC-C"].Systems, ","), "Oracle") {
		t.Error("TPC-C systems should include Oracle")
	}
}

func TestAggregates(t *testing.T) {
	if TotalReports() != 368+0+1+77+252+4+6+9+1+0+4+0+0+1 {
		t.Errorf("total reports = %d", TotalReports())
	}
	missing := BenchmarksWithoutResults()
	if len(missing) != 4 {
		t.Errorf("benchmarks without results = %v, want 4", missing)
	}
	if len(DistinctSystems()) < 10 {
		t.Errorf("distinct systems = %d, want >= 10", len(DistinctSystems()))
	}
}

func TestRender(t *testing.T) {
	out := Render()
	for _, want := range []string{"TPC-C", "368", "benchmarks without public results: 4", "systems reported"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Census returns a copy.
	rows := Census()
	rows[0].Reports = 99999
	if Census()[0].Reports == 99999 {
		t.Error("Census must return a copy")
	}
}
