package repository

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sqalpel/internal/trace"
)

// ErrLeaseLost marks completions that arrive after the task's lease is no
// longer valid — expired, killed or already re-queued. The work itself was
// fine, the slot has just moved on; drivers treat this as "skip and carry
// on" rather than a fatal error, and the server maps it to 409 Conflict.
var ErrLeaseLost = errors.New("task lease no longer valid")

// TaskStatus tracks the execution status of a queued query.
type TaskStatus string

// Task statuses.
const (
	TaskRunning TaskStatus = "running"
	TaskDone    TaskStatus = "done"
	TaskFailed  TaskStatus = "failed"
	TaskTimeout TaskStatus = "timeout"
	TaskKilled  TaskStatus = "killed"
)

// Task is one entry of the execution queue: a query handed to a contributor
// for a specific DBMS + platform combination. The queue lets the owner kill
// stuck queries and automatically requeues tasks whose results were not
// delivered within the timeout interval. Tasks live on the shard of their
// project, and a batch lease is made durable as a single WAL record before
// any task of the batch is handed out — so a recovered store either knows
// the whole lease or never granted it, and a query slot can never be
// double-leased across a crash.
type Task struct {
	ID             int        `json:"id"`
	ProjectID      int        `json:"project_id"`
	ExperimentID   int        `json:"experiment_id"`
	QueryID        int        `json:"query_id"`
	SQL            string     `json:"sql"`
	ContributorKey string     `json:"contributor_key"`
	DBMSKey        string     `json:"dbms_key"`
	PlatformKey    string     `json:"platform_key"`
	Status         TaskStatus `json:"status"`
	Assigned       time.Time  `json:"assigned"`
	Deadline       time.Time  `json:"deadline"`
	Finished       time.Time  `json:"finished,omitempty"`
}

// Active reports whether the task still occupies its query/dbms/platform
// slot.
func (t *Task) Active() bool { return t.Status == TaskRunning || t.Status == TaskDone }

// RequestTask hands the next unmeasured query of the experiment to the
// contributor for the given DBMS + platform combination. It returns nil
// (and no error) when nothing is left to do.
func (s *Store) RequestTask(contributorKey string, experimentID int, dbmsKey, platformKey string) (*Task, error) {
	tasks, err := s.RequestTasks(contributorKey, experimentID, dbmsKey, platformKey, 1)
	if err != nil || len(tasks) == 0 {
		return nil, err
	}
	return tasks[0], nil
}

// RequestTasks leases up to max unmeasured queries of the experiment to the
// contributor for the given DBMS + platform combination in one round trip —
// the batch protocol concurrent drivers use to keep their worker pools fed.
// Every leased task carries a deadline; leases that are not completed in
// time expire and their queries are handed out again (see ExpireTasks).
// Leasing holds the project's shard lock for the whole batch, so two
// concurrent drivers draining the same experiment never receive the same
// query — while drivers on other shards proceed unblocked. An empty slice
// (and no error) means nothing is left to do.
func (s *Store) RequestTasks(contributorKey string, experimentID int, dbmsKey, platformKey string, max int) ([]*Task, error) {
	if max < 1 {
		max = 1
	}
	p, _, err := s.FindContributor(contributorKey)
	if err != nil {
		return nil, err
	}
	sh := s.shardFor(p.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.expireTasksLocked()
	e := p.Experiment(experimentID)
	if e == nil {
		return nil, fmt.Errorf("unknown experiment %d in project %q", experimentID, p.Name)
	}
	// Collect query ids already covered for this DBMS+platform combination:
	// either a delivered result or an active task.
	covered := map[int]bool{}
	for _, r := range sh.results {
		if r.ProjectID == p.ID && r.ExperimentID == experimentID && r.DBMSKey == dbmsKey && r.PlatformKey == platformKey {
			covered[r.QueryID] = true
		}
	}
	for _, t := range sh.tasks {
		if t.ProjectID == p.ID && t.ExperimentID == experimentID && t.DBMSKey == dbmsKey && t.PlatformKey == platformKey && t.Active() {
			covered[t.QueryID] = true
		}
	}
	var batch []*Task
	for _, q := range e.Queries {
		if len(batch) >= max {
			break
		}
		if covered[q.ID] {
			continue
		}
		batch = append(batch, &Task{
			ID:             int(s.nextTaskID.Add(1)),
			ProjectID:      p.ID,
			ExperimentID:   experimentID,
			QueryID:        q.ID,
			SQL:            q.SQL,
			ContributorKey: contributorKey,
			DBMSKey:        dbmsKey,
			PlatformKey:    platformKey,
			Status:         TaskRunning,
			Assigned:       s.now(),
			Deadline:       s.now().Add(s.TaskTimeout),
		})
	}
	if len(batch) == 0 {
		//lint:acked empty lease: nothing was assigned, so there is nothing a crash could erase
		return nil, nil
	}
	// One WAL record per batch: the lease is durable before any task is
	// handed out, so a crash either forgets the whole batch (the driver
	// never saw it either — the request did not return) or remembers every
	// lease in it.
	if err := sh.logApply(opTaskLease, batch); err != nil {
		return nil, err
	}
	// Hand out copies: the stored tasks keep mutating under the shard lock
	// (completion, expiry) while the caller serialises its lease.
	leased := make([]*Task, len(batch))
	for i, t := range batch {
		clone := *sh.tasks[t.ID]
		leased[i] = &clone
	}
	return leased, nil
}

// CompleteTask reports the outcome of a task and records the result row.
// Completions into a lease that is no longer running — expired (expiry is
// evaluated here too, not only on request, so a single stalled driver
// cannot sneak a stale result in), killed, or already completed — are
// rejected with an error wrapping ErrLeaseLost.
func (s *Store) CompleteTask(taskID int, contributorKey string, seconds []float64, errMsg string, extra map[string]string) (*Result, error) {
	return s.CompleteTaskTraced(taskID, contributorKey, seconds, errMsg, extra, nil)
}

// CompleteTaskTraced is CompleteTask with an optional per-operator trace
// attached to the recorded result; nil records an untraced result. The
// status flip and the result row are one atomic WAL record: recovery can
// never observe a completed lease without its measurement, which is what
// makes "a crash loses no acknowledged result" provable.
func (s *Store) CompleteTaskTraced(taskID int, contributorKey string, seconds []float64, errMsg string, extra map[string]string, qt *trace.QueryTrace) (*Result, error) {
	sh := s.shardWithTask(taskID)
	if sh == nil {
		return nil, fmt.Errorf("unknown task %d", taskID)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.expireTasksLocked()
	task := sh.tasks[taskID]
	if task == nil {
		return nil, fmt.Errorf("unknown task %d", taskID)
	}
	if task.ContributorKey != contributorKey {
		return nil, fmt.Errorf("task %d belongs to a different contributor", taskID)
	}
	if task.Status != TaskRunning {
		return nil, fmt.Errorf("task %d is %s, not running: %w", taskID, task.Status, ErrLeaseLost)
	}
	p := sh.projects[task.ProjectID]
	if p == nil {
		return nil, fmt.Errorf("unknown project %d", task.ProjectID)
	}
	r, err := s.buildResultLocked(sh, p, contributorKey, task.ExperimentID, task.QueryID, task.DBMSKey, task.PlatformKey, seconds, errMsg, extra, qt)
	if err != nil {
		return nil, err
	}
	status := TaskDone
	if errMsg != "" {
		status = TaskFailed
	}
	rec := walTaskComplete{TaskID: taskID, Status: status, Finished: s.now(), Result: r}
	if err := sh.logApply(opTaskComplete, rec); err != nil {
		return nil, err
	}
	return sh.results[len(sh.results)-1], nil
}

// shardWithTask returns the shard holding the task, or nil. Task ids are
// globally unique, so at most one shard matches.
func (s *Store) shardWithTask(taskID int) *shard {
	for _, sh := range s.shards {
		sh.mu.RLock()
		_, ok := sh.tasks[taskID]
		sh.mu.RUnlock()
		if ok {
			return sh
		}
	}
	return nil
}

// KillTask marks a running task as killed so the query can be handed out
// again; only the project owner may kill tasks.
func (s *Store) KillTask(requester string, taskID int) error {
	sh := s.shardWithTask(taskID)
	if sh == nil {
		return fmt.Errorf("unknown task %d", taskID)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	task := sh.tasks[taskID]
	if task == nil {
		return fmt.Errorf("unknown task %d", taskID)
	}
	if sh.roleOfLocked(requester, task.ProjectID) != RoleOwner {
		return fmt.Errorf("only the project owner can kill tasks")
	}
	if task.Status != TaskRunning {
		return fmt.Errorf("task %d is not running", taskID)
	}
	return sh.logApply(opTaskKill, walTaskKill{TaskID: taskID, Finished: s.now()})
}

// ExpireTasks requeues every running task whose deadline passed; it returns
// the number of tasks expired.
func (s *Store) ExpireTasks() int {
	expired := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		expired += sh.expireTasksLocked()
		sh.mu.Unlock()
	}
	return expired
}

// expireTasksLocked requeues the shard's overdue running tasks; the caller
// holds the shard lock. Expiry is derived state — deadlines are persisted
// with the lease, so a recovered store re-expires overdue leases on the
// next request without needing expiry records in the log.
func (sh *shard) expireTasksLocked() int {
	now := sh.store.now()
	expired := 0
	for _, t := range sh.tasks {
		if t.Status == TaskRunning && now.After(t.Deadline) {
			t.Status = TaskTimeout
			t.Finished = now
			expired++
		}
	}
	return expired
}

// Tasks returns the tasks of a project visible to the viewer, sorted by id.
func (s *Store) Tasks(viewer string, projectID int) []*Task {
	sh := s.shardFor(projectID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.roleOfLocked(viewer, projectID) == RoleNone {
		return nil
	}
	var out []*Task
	for _, t := range sh.tasks {
		if t.ProjectID == projectID {
			clone := *t
			out = append(out, &clone)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
