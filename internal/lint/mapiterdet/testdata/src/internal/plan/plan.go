// Package plan is the mapiterdet fixture: each function isolates one
// iteration idiom the analyzer must flag, exempt, or honour a suppression
// for.
package plan

import "sort"

// liftCommonOrConjuncts re-introduces the historical PR 6 bug shape: the
// conjuncts common to every OR arm are collected into a set, then emitted
// by ranging the set — so the lifted predicate order (and with it the plan
// and the EXPLAIN plan-JSON golden) changes run to run. The regression
// test asserts the analyzer catches exactly this.
func liftCommonOrConjuncts(arms [][]string) []string {
	common := map[string]bool{}
	for _, p := range arms[0] {
		common[p] = true
	}
	var lifted []string
	for sql := range common { // want `iteration over map common in determinism-critical package`
		lifted = append(lifted, sql)
	}
	return lifted
}

// emitSorted is the PR 6 fix shape: collect in map order, then give the
// result a total order before it escapes. Exempt without annotation.
func emitSorted(common map[string]bool) []string {
	var lifted []string
	for sql := range common {
		lifted = append(lifted, sql)
	}
	sort.Strings(lifted)
	return lifted
}

// copySet builds a map from a map: assignment through a map index cannot
// observe iteration order. Exempt without annotation.
func copySet(src map[string]bool) map[string]bool {
	dst := map[string]bool{}
	for k := range src {
		dst[k] = true
	}
	return dst
}

// intersect carries a justified suppression: the deletion filter is
// order-insensitive.
func intersect(common, present map[string]bool) {
	//lint:ordered set intersection by deletion; no order-dependent output escapes
	for k := range common {
		if !present[k] {
			delete(common, k)
		}
	}
}

// bareToken shows that a token without a reason is inert: the suppression
// scheme demands every waiver document why.
func bareToken(m map[string]int) int {
	total := 0
	//lint:ordered
	for _, v := range m { // want `iteration over map m in determinism-critical package`
		total += v
	}
	return total
}

// closureScope: the sort blesses only ranges in the same function body —
// a closure that escapes carries its map order with it.
func closureScope(m map[string]bool) func() []string {
	fn := func() []string {
		var out []string
		for k := range m { // want `iteration over map m in determinism-critical package`
			out = append(out, k)
		}
		return out
	}
	var primer []string
	for k := range m {
		primer = append(primer, k)
	}
	sort.Strings(primer)
	return fn
}
