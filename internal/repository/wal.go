package repository

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// The write-ahead log makes every repository mutation durable before it is
// applied in memory: the mutator validates its inputs, encodes one logical
// record describing the state change (ids pre-assigned, so replay never
// re-runs allocation logic), appends the record to the owning partition's
// log, syncs it to stable storage, and only then applies it — through the
// very same apply switch recovery replays with, so the live path and the
// recovery path cannot drift apart.
//
// On disk a record is framed as
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// with the payload a JSON-encoded walRecord. The CRC and the length prefix
// make torn tail writes (a crash mid-append) and bit corruption detectable:
// recovery drops everything from the first invalid record on and boots from
// what provably hit the disk.

// WAL operation codes. Meta-partition records cover the global user table;
// every other record belongs to the shard of its project.
const (
	opUser           = "user"            // meta: User
	opProject        = "project"         // Project (created fully formed)
	opVisibility     = "visibility"      // walVisibility
	opSynopsis       = "synopsis"        // walSynopsis
	opCatalogs       = "catalogs"        // walCatalogs
	opInvite         = "invite"          // walInvite
	opExperiment     = "experiment"      // walExperiment
	opQueriesReplace = "queries-replace" // walQueries
	opQueriesAppend  = "queries-append"  // walQueries
	opResult         = "result"          // Result
	opResultHide     = "result-hide"     // walResultMod
	opResultDelete   = "result-delete"   // walResultMod
	opComment        = "comment"         // Comment
	opTaskLease      = "task-lease"      // []*Task (one record per leased batch)
	opTaskComplete   = "task-complete"   // walTaskComplete (status flip + result, atomically)
	opTaskKill       = "task-kill"       // walTaskKill
)

// walRecord is the JSON payload of one framed log entry. LSNs are
// per-partition, strictly consecutive, and recorded in snapshots so replay
// can skip records a snapshot already covers — compaction that crashes
// between the snapshot rename and the log rewrite therefore never
// double-applies.
type walRecord struct {
	LSN  uint64          `json:"lsn"`
	Op   string          `json:"op"`
	Data json.RawMessage `json:"data"`
}

// Small record payloads (the larger ops marshal the model structs directly).
type walVisibility struct {
	ProjectID int  `json:"project_id"`
	Public    bool `json:"public"`
}

type walSynopsis struct {
	ProjectID   int    `json:"project_id"`
	Synopsis    string `json:"synopsis"`
	Attribution string `json:"attribution"`
}

type walCatalogs struct {
	ProjectID    int      `json:"project_id"`
	DBMSKeys     []string `json:"dbms_keys"`
	PlatformKeys []string `json:"platform_keys"`
}

type walInvite struct {
	ProjectID   int          `json:"project_id"`
	Contributor *Contributor `json:"contributor"`
}

type walExperiment struct {
	ProjectID  int         `json:"project_id"`
	Experiment *Experiment `json:"experiment"`
}

type walQueries struct {
	ProjectID    int           `json:"project_id"`
	ExperimentID int           `json:"experiment_id"`
	Queries      []QueryRecord `json:"queries"`
}

type walResultMod struct {
	ResultID int  `json:"result_id"`
	Hidden   bool `json:"hidden,omitempty"`
}

type walTaskComplete struct {
	TaskID   int        `json:"task_id"`
	Status   TaskStatus `json:"status"`
	Finished time.Time  `json:"finished"`
	Result   *Result    `json:"result"`
}

type walTaskKill struct {
	TaskID   int       `json:"task_id"`
	Finished time.Time `json:"finished"`
}

// walSink is the durability seam of the log: when Write+Sync return, the
// bytes must survive a crash. Production sinks are append-only files;
// tests inject recording, failing and torn-write sinks through it to
// simulate kill -9 at arbitrary byte positions.
type walSink interface {
	io.Writer
	Sync() error
	Close() error
}

// walSinkFactory opens the sink for a partition's log file. The default
// appends to a real file; tests substitute in-memory sinks.
type walSinkFactory func(path string) (walSink, error)

// fileSink is the production walSink: an append-only file fsynced per
// record.
type fileSink struct{ f *os.File }

func openFileSink(path string) (walSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return fileSink{f: f}, nil
}

func (fs fileSink) Write(p []byte) (int, error) { return fs.f.Write(p) }
func (fs fileSink) Sync() error                 { return fs.f.Sync() }
func (fs fileSink) Close() error                { return fs.f.Close() }

// walWriter appends framed records to a sink. It is guarded by the owning
// partition's mutex: appends happen under the same lock as the in-memory
// apply, so log order always equals apply order.
type walWriter struct {
	sink walSink
	lsn  uint64 // last appended LSN

	// broken latches the first write/sync failure: the file may now end in
	// partial garbage, so appending more records after it would put them
	// beyond recovery's reach (replay stops at the first bad frame). The
	// partition rejects further mutations until a checkpoint rewrites the
	// log from the records that are provably intact.
	broken error
}

// frameRecord encodes a record with its length + CRC header.
func frameRecord(rec walRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("encoding wal record: %w", err)
	}
	frame := make([]byte, walHeaderSize+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[walHeaderSize:], body)
	return frame, nil
}

const walHeaderSize = 8

// maxWALRecord bounds the decoded length prefix so a corrupt header cannot
// trigger a gigantic allocation during recovery.
const maxWALRecord = 64 << 20

// append frames the record, writes it in a single call and syncs the sink.
// The record only counts as appended — and the caller may only apply it —
// when append returns nil.
func (w *walWriter) append(rec walRecord) error {
	if w.broken != nil {
		return fmt.Errorf("wal unavailable after earlier write failure: %w", w.broken)
	}
	frame, err := frameRecord(rec)
	if err != nil {
		return err
	}
	if _, err := w.sink.Write(frame); err != nil {
		w.broken = err
		return fmt.Errorf("appending wal record: %w", err)
	}
	if err := w.sink.Sync(); err != nil {
		w.broken = err
		return fmt.Errorf("syncing wal: %w", err)
	}
	w.lsn = rec.LSN
	return nil
}

// decodeWAL decodes the framed records of one log image. It stops at the
// first torn or corrupt record — short header, short payload, length out of
// range, CRC mismatch, undecodable JSON, or an LSN break — logging a
// warning and returning everything before it, so a crash mid-append or a
// flipped bit costs at most the unacknowledged tail, never the boot.
func decodeWAL(data []byte, name string, logf func(string, ...any)) []walRecord {
	var recs []walRecord
	off := 0
	for off < len(data) {
		if len(data)-off < walHeaderSize {
			logf("repository: %s: dropping torn wal tail (%d trailing bytes)", name, len(data)-off)
			break
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length <= 0 || length > maxWALRecord {
			logf("repository: %s: dropping corrupt wal tail at offset %d (implausible record length %d)", name, off, length)
			break
		}
		if len(data)-off-walHeaderSize < length {
			logf("repository: %s: dropping torn wal record at offset %d (%d of %d payload bytes)", name, off, len(data)-off-walHeaderSize, length)
			break
		}
		body := data[off+walHeaderSize : off+walHeaderSize+length]
		if crc32.ChecksumIEEE(body) != sum {
			logf("repository: %s: dropping corrupt wal tail at offset %d (checksum mismatch)", name, off)
			break
		}
		var rec walRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			logf("repository: %s: dropping corrupt wal tail at offset %d (%v)", name, off, err)
			break
		}
		if n := len(recs); n > 0 && rec.LSN != recs[n-1].LSN+1 {
			logf("repository: %s: dropping wal tail at offset %d (lsn %d after %d)", name, off, rec.LSN, recs[n-1].LSN)
			break
		}
		recs = append(recs, rec)
		off += walHeaderSize + length
	}
	return recs
}
