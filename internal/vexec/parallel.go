package vexec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sqalpel/internal/sqlparser"
	"sqalpel/internal/trace"
)

// This file implements morsel-driven intra-query parallelism. The unit of
// work is a morsel: one BatchSize window of a random-access row source (a
// base-table scan or a materialized intermediate). Morsels fan out across
// a bounded worker pool; every merge step walks the morsel results in
// morsel-index order, never in completion order, so the output of each
// parallel operator is bit-identical to its serial twin at any worker
// count:
//
//   - scan→filter pipelines window the source per morsel, filter with
//     thread-local counters and concatenate the surviving batches in
//     morsel order — exactly the batch sequence the serial pipeline emits;
//   - hash aggregation discovers groups per morsel in thread-local typed
//     hash tables, merges them into the global table in morsel order
//     (reproducing the serial first-seen group order), then folds every
//     group's rows in global row order — so even the float sums, whose
//     addition order is observable, match the serial fold bit for bit;
//   - hash joins partition the build side by key hash, build the partition
//     tables concurrently (each partition preserves build-row insertion
//     order), and probe morsel-wise, concatenating the match pairs in
//     morsel order — the serial probe order.
//
// Workers never touch the executor's shared stats; they accumulate local
// Stats that the coordinating goroutine sums in morsel order afterwards.

// parallelism returns the morsel worker cap of this execution; 1 means
// every operator runs its serial twin.
func (ex *executor) parallelism() int {
	if ex.opts.Parallelism > 1 {
		return ex.opts.Parallelism
	}
	return 1
}

// parallelFor runs fn(i) for every i in [0, n) on at most p goroutines
// pulling indices from a shared counter; it returns when all n calls are
// done. fn must confine its writes to per-index state.
func parallelFor(p, n int, fn func(int)) {
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// add accumulates another stats record, the merge step of thread-local
// morsel counters.
func (s *Stats) add(o Stats) {
	s.RowsScanned += o.RowsScanned
	s.Batches += o.Batches
	s.FilterPasses += o.FilterPasses
	s.HashJoins += o.HashJoins
	s.JoinBuildRows += o.JoinBuildRows
	s.JoinProbeRows += o.JoinProbeRows
	s.LoopJoins += o.LoopJoins
	s.Groups += o.Groups
	s.AggRows += o.AggRows
	s.RowsReturned += o.RowsReturned
	s.BlocksSkipped += o.BlocksSkipped
}

// --- morsel sources -----------------------------------------------------------

// morselSource is a random-access row source the morsel driver windows:
// either a base-table scan or the re-emission of a dense materialized
// batch. Windows are zero-copy vector slices, like the serial operators'.
type morselSource struct {
	cols  []*Vector
	meta  []colMeta
	rows  int
	scan  bool        // base-table scan: windows count into RowsScanned
	span  *trace.Span // the scan's span; nil when tracing is off
	table *Table      // zone-map owner; nil for materialized intermediates
	zones []ZonePred  // compiled zone predicates; empty disables skipping
}

func (s *scanOp) morselSource() morselSource {
	cols := make([]*Vector, len(s.table.Cols))
	for i, c := range s.table.Cols {
		cols[i] = c.Vec
	}
	return morselSource{cols: cols, meta: s.meta, rows: s.table.NumRows(),
		scan: true, span: s.span, table: s.table, zones: s.zones}
}

func (m *matOp) morselSource() morselSource {
	return morselSource{cols: m.b.cols, meta: m.b.meta, rows: m.b.n}
}

// window builds the zero-copy batch of rows [lo, hi).
func (src *morselSource) window(lo, hi int) *Batch {
	b := &Batch{n: hi - lo, meta: src.meta}
	b.cols = make([]*Vector, len(src.cols))
	for i, c := range src.cols {
		b.cols[i] = c.Slice(lo, hi)
	}
	return b
}

// numMorsels returns how many BatchSize windows cover the source.
func (src *morselSource) numMorsels(bs int) int {
	return (src.rows + bs - 1) / bs
}

// morselBounds returns the row range of morsel m.
func (src *morselSource) morselBounds(m, bs int) (lo, hi int) {
	lo = m * bs
	hi = lo + bs
	if hi > src.rows {
		hi = src.rows
	}
	return lo, hi
}

// filterLayer is one filterOp of a decomposed pipeline: its conjuncts plus
// its trace span, kept separate per layer so pushed-down and residual
// filters stay attributable to their own operator ids under parallelism.
type filterLayer struct {
	conjuncts []sqlparser.Expr
	span      *trace.Span
}

// filterMorsel applies the filter layers to one kept run of a morsel in
// application order; like the serial filter stack, a layer that empties
// the batch stops the remaining layers from running. When d is non-nil it
// accumulates the per-layer span deltas at d[1:] (d[0] is the source
// window's delta, filled by the caller) — accumulates, because zone-map
// skipping can split one morsel into several kept runs, each entering the
// filter stack as its own batch. A layer's delta is recorded exactly when
// the layer runs, which is the serial filterOp's per-entering-batch
// accounting, so merged traces match the serial ones bit for bit.
func filterMorsel(ex *executor, b *Batch, layers []filterLayer, st *Stats, d []trace.SpanDelta) error {
	var t0 time.Time
	if d != nil {
		t0 = time.Now()
	}
	for li := range layers {
		if err := applyConjuncts(ex, b, layers[li].conjuncts, st); err != nil {
			return err
		}
		if d != nil {
			now := time.Now()
			d[li+1].WallNS += now.Sub(t0).Nanoseconds()
			d[li+1].Rows += int64(b.Len())
			d[li+1].Batches++
			t0 = now
		}
		if b.Len() == 0 {
			return nil
		}
	}
	return nil
}

// mergeMorselDeltas folds the morsel-local span deltas into the source and
// layer spans, in morsel order; deltas is nil when tracing is off.
func mergeMorselDeltas(src *morselSource, layers []filterLayer, deltas [][]trace.SpanDelta) {
	for _, d := range deltas {
		if d == nil {
			continue
		}
		src.span.Merge(d[0])
		for li := range layers {
			layers[li].span.Merge(d[li+1])
		}
	}
}

// splitPipeline decomposes a scan→filter pipeline into its morsel source
// and the filter layers applied above it, in application order. ok is
// false for pipelines the morsel driver cannot fan out (FROM-less inputs,
// partially consumed operators, non-dense rewinds).
func splitPipeline(op operator) (morselSource, []filterLayer, bool) {
	var layers []filterLayer
	for {
		switch o := op.(type) {
		case *filterOp:
			// This filter runs after everything below it: what is already
			// collected came from operators above, so prepend.
			layers = append([]filterLayer{{conjuncts: o.conjuncts, span: o.span}}, layers...)
			op = o.child
		case *scanOp:
			if o.pos != 0 {
				return morselSource{}, nil, false
			}
			return o.morselSource(), layers, true
		case *matOp:
			if o.pos != 0 || o.b.sel != nil {
				return morselSource{}, nil, false
			}
			return o.morselSource(), layers, true
		default:
			return morselSource{}, nil, false
		}
	}
}

// --- parallel scan→filter materialization -------------------------------------

// materializeOp drains a pipeline into one dense batch like materialize,
// but fans morsel-splittable pipelines across the worker pool first.
func (ex *executor) materializeOp(op operator) (*Batch, error) {
	p := ex.parallelism()
	bs := ex.opts.BatchSize
	if p <= 1 {
		return materialize(op)
	}
	src, layers, ok := splitPipeline(op)
	if !ok || src.rows <= bs {
		return materialize(op)
	}
	nm := src.numMorsels(bs)
	outs := make([][]*Batch, nm)
	errs := make([]error, nm)
	stats := make([]Stats, nm)
	var deltas [][]trace.SpanDelta
	if ex.tracer != nil {
		deltas = make([][]trace.SpanDelta, nm)
	}
	parallelFor(p, nm, func(m int) {
		lo, hi := src.morselBounds(m, bs)
		if err := ex.checkDeadline(); err != nil {
			errs[m] = err
			return
		}
		var d []trace.SpanDelta
		if deltas != nil {
			d = make([]trace.SpanDelta, len(layers)+1)
			deltas[m] = d
		}
		st := &stats[m]
		// Morsels start on BatchSize boundaries, which are block-aligned
		// whenever zones are attached, so the kept runs here are exactly
		// the batches the serial scan emits for this window.
		runs, skipped := keptRuns(nil, src.table, src.zones, lo, hi)
		if skipped > 0 {
			st.BlocksSkipped += skipped
			if d != nil {
				d[0].BlocksSkipped += skipped
			}
		}
		for _, run := range runs {
			var t0 time.Time
			if d != nil {
				t0 = time.Now()
			}
			b := src.window(run[0], run[1])
			if src.scan {
				st.RowsScanned += int64(run[1] - run[0])
			}
			st.Batches++
			if d != nil {
				d[0].WallNS += time.Since(t0).Nanoseconds()
				d[0].Rows += int64(run[1] - run[0])
				d[0].Batches++
			}
			if err := filterMorsel(ex, b, layers, st, d); err != nil {
				errs[m] = err
				return
			}
			if b.Len() > 0 {
				outs[m] = append(outs[m], b)
			}
		}
	})
	for _, st := range stats {
		ex.stats.add(st)
	}
	mergeMorselDeltas(&src, layers, deltas)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var batches []*Batch
	for _, mb := range outs {
		batches = append(batches, mb...)
	}
	if len(batches) == 0 {
		out := &Batch{n: 0, meta: src.meta}
		out.cols = make([]*Vector, len(src.meta))
		for i := range out.cols {
			out.cols[i] = NewNullVector(0)
		}
		return out, nil
	}
	if len(batches) == 1 {
		return batches[0].compact(), nil
	}
	return concatBatches(batches), nil
}

// --- parallel hash aggregation ------------------------------------------------

// aggMorsel is the thread-local state of one aggregation morsel: the
// evaluated key/argument/reference vectors over the surviving rows plus
// the local group table.
type aggMorsel struct {
	n         int
	keyVecs   []*Vector
	argVecs   []*Vector
	refVecs   []*Vector
	table     *hashTable
	rowGroups []int32
	firstRows []int32 // local group -> first surviving row
	stats     Stats
	deltas    []trace.SpanDelta // per-layer span deltas; nil when tracing is off
	err       error
}

// parallelHashAggregate is the morsel-parallel twin of the serial
// hashAggregate loop, in three phases. Phase 1 (parallel): every morsel
// filters its window, evaluates the key/arg/ref expressions and assigns
// thread-local group ids. Phase 2 (serial, morsel order): the local tables
// merge into one global table — visiting local groups in local insertion
// order reproduces the serial first-seen group order exactly — and every
// row is bucketed under its global group in global row order. Phase 3
// (parallel over groups): each group folds its rows in that order, which
// is the serial fold order, so order-sensitive accumulations (float sums)
// come out bit-identical to the serial path at any worker count.
func (ex *executor) parallelHashAggregate(src morselSource, layers []filterLayer, stmt *sqlparser.SelectStatement, specs []aggSpec, carried []*sqlparser.ColumnRef) (*aggResult, error) {
	p := ex.parallelism()
	bs := ex.opts.BatchSize
	grouped := len(stmt.GroupBy) > 0
	nm := src.numMorsels(bs)
	morsels := make([]aggMorsel, nm)
	parallelFor(p, nm, func(m int) {
		mo := &morsels[m]
		lo, hi := src.morselBounds(m, bs)
		if err := ex.checkDeadline(); err != nil {
			mo.err = err
			return
		}
		if ex.tracer != nil {
			mo.deltas = make([]trace.SpanDelta, len(layers)+1)
		}
		runs, skipped := keptRuns(nil, src.table, src.zones, lo, hi)
		if skipped > 0 {
			mo.stats.BlocksSkipped += skipped
			if mo.deltas != nil {
				mo.deltas[0].BlocksSkipped += skipped
			}
		}
		// Filter each kept run as its own batch — the serial scan's batch
		// segmentation — then stitch the survivors into one dense batch for
		// the element-wise key/argument evaluation below.
		var kept []*Batch
		for _, run := range runs {
			var t0 time.Time
			if mo.deltas != nil {
				t0 = time.Now()
			}
			b := src.window(run[0], run[1])
			if src.scan {
				mo.stats.RowsScanned += int64(run[1] - run[0])
			}
			mo.stats.Batches++
			if mo.deltas != nil {
				mo.deltas[0].WallNS += time.Since(t0).Nanoseconds()
				mo.deltas[0].Rows += int64(run[1] - run[0])
				mo.deltas[0].Batches++
			}
			if err := filterMorsel(ex, b, layers, &mo.stats, mo.deltas); err != nil {
				mo.err = err
				return
			}
			if b.Len() > 0 {
				kept = append(kept, b)
			}
		}
		var b *Batch
		switch len(kept) {
		case 0:
			return
		case 1:
			b = kept[0]
		default:
			b = concatBatches(kept)
		}
		n := b.Len()
		mo.n = n
		mo.stats.AggRows += int64(n)
		var err error
		mo.keyVecs, mo.argVecs, mo.refVecs, err = aggBatchVectors(ex, b, stmt, specs, carried)
		if err != nil {
			mo.err = err
			return
		}
		if grouped {
			mo.table = newHashTable(64)
			kc := mo.table.prepare(mo.keyVecs)
			mo.rowGroups = make([]int32, n)
			for j := 0; j < n; j++ {
				g, isNew := kc.getOrInsert(mo.table, mo.keyVecs, j)
				mo.rowGroups[j] = int32(g)
				if isNew {
					mo.firstRows = append(mo.firstRows, int32(j))
				}
			}
		}
	})
	for m := range morsels {
		ex.stats.add(morsels[m].stats)
		if morsels[m].deltas != nil {
			src.span.Merge(morsels[m].deltas[0])
			for li := range layers {
				layers[li].span.Merge(morsels[m].deltas[li+1])
			}
		}
	}
	for m := range morsels {
		if morsels[m].err != nil {
			return nil, morsels[m].err
		}
	}

	// Phase 2: merge the thread-local tables in morsel order.
	var order []*aggState
	var rowsOf [][]int64 // per global group: rows packed as morsel<<32|row
	if grouped {
		global := newHashTable(64)
		var buf []byte
		remaps := make([][]int32, len(morsels))
		for m := range morsels {
			mo := &morsels[m]
			if mo.n == 0 {
				continue
			}
			remap := make([]int32, mo.table.numGroups())
			remaps[m] = remap
			for lg := 0; lg < mo.table.numGroups(); lg++ {
				var g int
				var isNew bool
				g, isNew, buf = global.getOrInsertKeyOf(mo.table, lg, buf)
				remap[lg] = int32(g)
				if isNew {
					st := newAggState(specs, carried)
					j := int(mo.firstRows[lg])
					for ri, rv := range mo.refVecs {
						st.firsts[ri] = rv.At(j)
					}
					order = append(order, st)
				}
			}
		}
		// Bucket every row under its global group in global row order,
		// sized exactly up front so the fill pass never reallocates.
		counts := make([]int, len(order))
		for m := range morsels {
			for _, lg := range morsels[m].rowGroups {
				counts[remaps[m][lg]]++
			}
		}
		rowsOf = make([][]int64, len(order))
		for g, c := range counts {
			rowsOf[g] = make([]int64, 0, c)
		}
		for m := range morsels {
			for j, lg := range morsels[m].rowGroups {
				g := remaps[m][lg]
				rowsOf[g] = append(rowsOf[g], int64(m)<<32|int64(j))
			}
		}
	} else {
		// Aggregates without GROUP BY form one global group even over an
		// empty input; its carried references resolve against the first
		// surviving row overall.
		st := newAggState(specs, carried)
		order = []*aggState{st}
		total := 0
		for m := range morsels {
			total += morsels[m].n
		}
		rowsOf = [][]int64{make([]int64, 0, total)}
		first := true
		for m := range morsels {
			mo := &morsels[m]
			for j := 0; j < mo.n; j++ {
				if first {
					for ri, rv := range mo.refVecs {
						st.firsts[ri] = rv.At(j)
					}
					first = false
				}
				rowsOf[0] = append(rowsOf[0], int64(m)<<32|int64(j))
			}
		}
	}

	// Phase 3: fold every group's rows in global row order.
	parallelFor(p, len(order), func(g int) {
		st := order[g]
		for _, packed := range rowsOf[g] {
			mo := &morsels[packed>>32]
			j := int(packed & 0xffffffff)
			st.rows++
			for ai := range specs {
				if specs[ai].call.Star {
					continue
				}
				st.accs[ai].fold(mo.argVecs[ai].At(j), specs[ai].call.Distinct)
			}
		}
	})
	ex.stats.Groups += int64(len(order))
	return buildAggResult(specs, carried, order)
}

// --- parallel hash join -------------------------------------------------------

// parallelJoinPairs is the partitioned twin of joinPairs: build rows are
// routed to 2^k partitions by key hash, the partition tables build
// concurrently (each preserving build-row insertion order — a key lives in
// exactly one partition, so its match chain is the serial one), and the
// probe side fans out morsel-wise with the pair chunks concatenated in
// morsel order.
func (ex *executor) parallelJoinPairs(nBuild, nProbe int, bVecs, pVecs []*Vector) ([]int, []int, error) {
	p := ex.parallelism()
	bs := ex.opts.BatchSize
	mode, class, dict := jointMode(bVecs, pVecs)

	nPart := 1
	bits := uint(0)
	for nPart < p && nPart < 64 {
		nPart *= 2
		bits++
	}

	// Route every build row to its key-hash partition, caching the hashes
	// so the build workers never re-hash (byte mode still re-encodes at
	// insertion for the arena compare, but pays the FNV pass only once).
	hashes := make([]uint64, nBuild)
	nbm := (nBuild + bs - 1) / bs
	parallelFor(p, nbm, func(m int) {
		kc := keyCoder{mode: mode}
		lo := m * bs
		hi := lo + bs
		if hi > nBuild {
			hi = nBuild
		}
		for i := lo; i < hi; i++ {
			hashes[i] = kc.hash(bVecs, i)
		}
	})
	// Bucket the row indices per partition (exact-sized, in row order) so
	// each build worker walks only its own rows.
	counts := make([]int, nPart)
	for _, h := range hashes {
		counts[h>>(64-bits)]++
	}
	buckets := make([][]int32, nPart)
	for pt, c := range counts {
		buckets[pt] = make([]int32, 0, c)
	}
	for i, h := range hashes {
		pt := h >> (64 - bits)
		buckets[pt] = append(buckets[pt], int32(i))
	}

	// Build the partition tables concurrently; next is shared but each row
	// index belongs to exactly one partition worker.
	tables := make([]*hashTable, nPart)
	lists := make([]joinLists, nPart)
	buildRows := make([]int64, nPart)
	next := make([]int32, nBuild)
	for i := range next {
		next[i] = -1
	}
	parallelFor(p, nPart, func(pt int) {
		rows := buckets[pt]
		ht := newHashTable(len(rows))
		ht.setMode(mode, class, dict)
		kc := keyCoder{mode: mode}
		jl := joinLists{next: next}
		var inserted int64
		for _, i := range rows {
			if nullKeyRow(bVecs, int(i)) {
				// NULL join keys never match (see nullKeyRow); the serial
				// joinPairs skips them identically.
				continue
			}
			inserted++
			g, isNew := kc.getOrInsertHashed(ht, bVecs, int(i), hashes[i])
			jl.insert(g, i, isNew)
		}
		tables[pt] = ht
		lists[pt] = jl
		buildRows[pt] = inserted
	})
	for _, n := range buildRows {
		ex.stats.JoinBuildRows += n
	}

	// Probe morsel-wise; chunks concatenate in morsel order, which is the
	// serial probe order. The join-size guard is a running total shared by
	// all probe workers (checked after every probe row's match chain), so
	// the serial path's memory bound holds under parallelism too: an
	// over-limit join stops allocating within one chain per worker of
	// crossing the limit. The error condition — total matches exceed
	// MaxJoinRows — is the serial one, so it fires identically at every
	// worker count.
	type pairChunk struct {
		probe, build []int
		probed       int64 // non-NULL-key probe rows, for JoinProbeRows
		err          error
	}
	npm := (nProbe + bs - 1) / bs
	chunks := make([]pairChunk, npm)
	maxRows := ex.opts.MaxJoinRows
	var matches atomic.Int64
	parallelFor(p, npm, func(m int) {
		kc := keyCoder{mode: mode}
		ch := &chunks[m]
		if err := ex.checkDeadline(); err != nil {
			ch.err = err
			return
		}
		lo := m * bs
		hi := lo + bs
		if hi > nProbe {
			hi = nProbe
		}
		for i := lo; i < hi; i++ {
			if nullKeyRow(pVecs, i) {
				continue
			}
			ch.probed++
			h := kc.hash(pVecs, i)
			pt := h >> (64 - bits)
			g := kc.lookupHashed(tables[pt], pVecs, i, h)
			if g < 0 {
				continue
			}
			before := len(ch.probe)
			for r := lists[pt].head[g]; r >= 0; r = next[r] {
				ch.probe = append(ch.probe, i)
				ch.build = append(ch.build, int(r))
			}
			if added := len(ch.probe) - before; added > 0 {
				if matches.Add(int64(added)) > int64(maxRows) {
					ch.err = fmt.Errorf("join result exceeds %d rows", maxRows)
					return
				}
			}
		}
	})
	total := 0
	for m := range chunks {
		if chunks[m].err != nil {
			return nil, nil, chunks[m].err
		}
		ex.stats.JoinProbeRows += chunks[m].probed
		total += len(chunks[m].probe)
	}
	probeIdx := make([]int, 0, total)
	buildIdx := make([]int, 0, total)
	for m := range chunks {
		probeIdx = append(probeIdx, chunks[m].probe...)
		buildIdx = append(buildIdx, chunks[m].build...)
	}
	return probeIdx, buildIdx, nil
}
