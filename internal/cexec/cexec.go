// Package cexec is the fourth execution paradigm next to the row
// interpreter, the column interpreter and the batch-vectorized executor:
// a data-centric compiled engine ("fusil"). Instead of interpreting an
// expression tree per row (tuplestore), per column (columba) or per batch
// (vektor), it compiles each plan pipeline once into a chain of Go
// closures — scan, pushed-down filters and residual filters fused into a
// single push loop with no pull-based batch handoffs — and then runs the
// query by calling those closures row by row. Pipeline breakers (joins,
// aggregation, DISTINCT, sort) materialize, exactly where a query-
// compiling system would end one pipeline and start the next.
//
// The engine shares the vectorized kernel's scalar algebra through
// vexec's exported scalar surface (arithmetic, comparison, LIKE, key
// encoding, aggregate accumulation), so the two executors agree on every
// value operation by construction. Everything above the scalars —
// expression compilation, filter placement, join discipline, aggregation
// order, the epilogue — mirrors the vectorized executor operation for
// operation, including where runtime errors defer the statement to the
// interpreters (ErrUnsupported) and where they surface as query errors.
// The differential suites hold all engines to bit-identical answers.
package cexec

import (
	"fmt"
	"strings"
	"time"

	"sqalpel/internal/plan"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/trace"
	"sqalpel/internal/vexec"
)

// Scalar is the boxed SQL value rows are made of, shared with the
// vectorized kernel so both engines use one value algebra.
type Scalar = vexec.Scalar

// Catalog is the typed-table provider, shared with vexec: the engine
// adapter decodes boxed storage once and serves both executors from the
// same cache.
type Catalog = vexec.Catalog

// ErrUnsupported marks statements (or runtime value shapes) outside the
// compiled subset; the engine-level adapter falls back to the interpreter
// when it sees this error. It is vexec's sentinel: the compiled engine
// supports exactly the vectorizable subset, and sharing the sentinel lets
// the shared scalar kernels (numeric literal parsing) defer through both
// engines identically.
var ErrUnsupported = vexec.ErrUnsupported

const defaultMaxJoinRows = 4_000_000

// Options configure one execution.
type Options struct {
	// MaxJoinRows guards intermediate join sizes (default 4,000,000).
	MaxJoinRows int
	// Deadline aborts the query when passed; zero means no deadline.
	Deadline time.Time
	// Tracer collects per-operator spans keyed by the plan's operator ids;
	// nil disables tracing. The compiled engine attributes a fused
	// pipeline's wall time to its source operator and row counts to every
	// operator the rows passed through, on the same ids the other engines
	// use.
	Tracer *trace.Tracer
}

// Stats are the execution counters of one run. The join, aggregation and
// sub-query counters are defined identically to the interpreters' and the
// vectorized executor's; the compiled paradigm has no batches, so its
// signature is ClosuresCompiled/PipelinesFused instead of a batch count.
type Stats struct {
	RowsScanned  int64
	HashJoins    int64
	LoopJoins    int64
	Groups       int64
	RowsReturned int64
	// JoinBuildRows/JoinProbeRows count the non-NULL-key rows inserted
	// into and probed against hash-join tables.
	JoinBuildRows int64
	JoinProbeRows int64
	// AggRows counts the rows folded into groups by hash aggregation.
	AggRows int64
	// SubqueryExecutions counts the sub-query plans materialized: once
	// per uncorrelated sub-query and once per decorrelated correlated
	// sub-query.
	SubqueryExecutions int64
	// ClosuresCompiled counts the expression nodes compiled into closures.
	ClosuresCompiled int64
	// PipelinesFused counts the fused push loops executed (one per
	// pipeline between breakers, including nested statements).
	PipelinesFused int64
	// BlocksSkipped counts zone-map blocks the fused scan proved
	// unsatisfiable under its pushed-down conjuncts and stepped over.
	BlocksSkipped int64
}

// Result is a finished query: named output columns of boxed scalars.
type Result struct {
	Columns []string
	Cols    [][]Scalar
	Stats   Stats
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return len(r.Cols[0])
}

// colMeta names one column of a compiled pipeline's row layout: the table
// alias it came from (empty for computed columns) and the column name,
// both lower case — the same resolution metadata the vectorized batches
// carry.
type colMeta struct {
	table string
	name  string
}

// rel is a materialized intermediate: the row set at a pipeline breaker.
type rel struct {
	meta []colMeta
	rows [][]Scalar
}

// rowFn is one compiled expression: evaluate over a pipeline row.
type rowFn func(row []Scalar) (Scalar, error)

// scope is the compile-time resolution context of one pipeline: the row
// layout, plus — in grouped context, where rows are groups — the slots of
// the precomputed aggregates and carried first-row references.
type scope struct {
	meta []colMeta
	aggs map[string]int // canonical aggregate SQL -> group-row slot
	refs map[string]int // column reference key -> group-row slot
}

// executor runs one statement.
type executor struct {
	cat   Catalog
	opts  Options
	stats Stats
	p     *plan.Plan
	// subs holds the per-execution sub-query states, keyed by the nested
	// statement; built before the enclosing pipeline's closures run and
	// read-only afterwards.
	subs   map[*sqlparser.SelectStatement]*subState
	tracer *trace.Tracer
}

// noTracePrefix marks execution contexts without an operator id — the
// operands of explicit JOIN trees and nested statements the prefix walk
// does not enumerate — mirroring the other engines' untraced prefix.
const noTracePrefix = "\x00"

// traceOn reports whether spans should be emitted for the given prefix.
func (ex *executor) traceOn(prefix string) bool {
	return ex.tracer != nil && !strings.HasPrefix(prefix, noTracePrefix)
}

// ExecutePlan compiles and runs a planned SELECT against the catalog. The
// compiled subset is exactly the vectorizable subset: the plan's verdict
// was computed once and routes both engines.
func ExecutePlan(cat Catalog, p *plan.Plan, opts Options) (*Result, error) {
	if opts.MaxJoinRows <= 0 {
		opts.MaxJoinRows = defaultMaxJoinRows
	}
	if !p.Vectorizable {
		return nil, fmt.Errorf("%w: %s", ErrUnsupported, p.NotVectorizableReason)
	}
	ex := &executor{
		cat:    cat,
		opts:   opts,
		p:      p,
		subs:   map[*sqlparser.SelectStatement]*subState{},
		tracer: opts.Tracer,
	}
	res, err := ex.run(p.Root, "")
	if err != nil {
		return nil, err
	}
	res.Stats = ex.stats
	return res, nil
}

// checkDeadline aborts overdue queries; called periodically from the
// compiled loops.
func (ex *executor) checkDeadline() error {
	if ex.opts.Deadline.IsZero() {
		return nil
	}
	if time.Now().After(ex.opts.Deadline) {
		return fmt.Errorf("query exceeded its time budget")
	}
	return nil
}
