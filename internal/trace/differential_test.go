package trace_test

import (
	"testing"
	"time"

	"sqalpel/internal/datagen"
	"sqalpel/internal/engine"
	"sqalpel/internal/trace"
	"sqalpel/internal/workload"
)

// TestSpanIDsSubsetOfPlan runs every TPC-H query on all six engines with
// tracing enabled and checks the cross-paradigm contract: every span id an
// engine emits must be an operator id of the query's EXPLAIN plan-JSON. The
// subset direction is deliberate — an engine may skip operators its
// execution strategy folds away (the interpreters fold pushdown filters into
// the residual filter; untraced join-tree internals emit nothing) but may
// never invent ids the plan does not declare, or cross-engine comparison
// would silently misalign.
func TestSpanIDsSubsetOfPlan(t *testing.T) {
	db := datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.001, Seed: 11})
	reg := engine.NewRegistry()
	opts := engine.ExecOptions{Timeout: time.Minute}
	for _, q := range workload.TPCH() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			doc, err := reg.Explain(db, q.SQL)
			if err != nil {
				t.Fatal(err)
			}
			planIDs := doc.OperatorIDs()
			for _, key := range reg.Keys() {
				eng := reg.Get(key)
				tr := trace.NewTracer()
				o := opts
				o.Tracer = tr
				if _, err := eng.Execute(db, q.SQL, o); err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				qt := tr.Trace(key)
				if len(qt.Spans) == 0 {
					t.Errorf("%s: traced execution produced no spans", key)
				}
				for _, sp := range qt.Spans {
					if !planIDs[sp.OpID] {
						t.Errorf("%s: span id %q not among the plan's operator ids", key, sp.OpID)
					}
				}
			}
		})
	}
}

// TestVektorTraceParallelismDeterminism pins the morsel-merge discipline:
// the vektor engines' span Rows, Batches and Calls must be bit-identical at
// 1 and 8 morsel workers, because workers accumulate SpanDelta values per
// morsel and the coordinator merges them in morsel order. Wall time and
// allocation are timing-dependent and deliberately not compared.
func TestVektorTraceParallelismDeterminism(t *testing.T) {
	db := datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.002, Seed: 11})
	for _, eng := range []engine.Engine{
		engine.NewVektorEngine(),
		engine.NewVektorEngineWithOptions(engine.VektorOptions{Version: "2.0", BatchSize: 4096}),
	} {
		key := engine.EngineKey(eng.Name(), eng.Version())
		for _, q := range workload.TPCH() {
			traces := map[int]*trace.QueryTrace{}
			for _, workers := range []int{1, 8} {
				tr := trace.NewTracer()
				if _, err := eng.Execute(db, q.SQL, engine.ExecOptions{
					Timeout: time.Minute, Parallelism: workers, Tracer: tr,
				}); err != nil {
					t.Fatalf("%s %s workers=%d: %v", key, q.ID, workers, err)
				}
				traces[workers] = tr.Trace(key)
			}
			serial, parallel := traces[1], traces[8]
			if len(serial.Spans) != len(parallel.Spans) {
				t.Errorf("%s %s: %d spans at workers=1 vs %d at workers=8", key, q.ID, len(serial.Spans), len(parallel.Spans))
				continue
			}
			for i := range serial.Spans {
				s, p := serial.Spans[i], parallel.Spans[i]
				if s.OpID != p.OpID || s.Rows != p.Rows || s.Batches != p.Batches || s.Calls != p.Calls {
					t.Errorf("%s %s: span %s diverges across worker counts:\n workers=1: %+v\n workers=8: %+v",
						key, q.ID, s.OpID, s, p)
				}
			}
		}
	}
}

// TestDisabledTracerZeroAlloc proves the zero-cost contract of the disabled
// seam: every operation an operator performs when no tracer is installed —
// span lookup on the nil tracer, starting and closing a Timer on the nil
// span, merging a delta — allocates nothing.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *trace.Tracer
	opID := trace.ScanID("", 0)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Span(opID, trace.KindScan)
		tm := sp.Start()
		tm.Done(1024)
		sp.Merge(trace.SpanDelta{WallNS: 5, Rows: 1024, Batches: 1})
		_ = tr.Trace("none")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates: %.1f allocs/op, want 0", allocs)
	}
}
