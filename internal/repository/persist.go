package repository

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// On-disk layout. A data directory holds a CURRENT pointer file naming the
// active generation directory; each generation contains one snapshot set
// and one write-ahead log per partition ("meta" for the user table,
// "sNNN" for each project shard):
//
//	<dir>/CURRENT                 -> "gen-000003"
//	<dir>/gen-000003/meta.wal
//	<dir>/gen-000003/meta.snap.<lsn>.json
//	<dir>/gen-000003/s000.wal
//	<dir>/gen-000003/s000.snap.<lsn>.json
//	...
//
// Snapshot files are written atomically (temp file + rename) and named by
// the log sequence number they cover, so replay skips records a snapshot
// already contains. Checkpoints keep the two newest snapshots per
// partition and rewrite the log down to the records the older one still
// needs — a corrupt newest snapshot therefore falls back to the previous
// one plus a longer replay. Generations make shard-count changes and
// legacy migration crash-safe: a new layout is written completely before
// CURRENT flips to it, and stale generations are pruned afterwards.
// A pre-WAL store (a single <dir>/sqalpel.json) is detected when no
// CURRENT exists and migrated transparently.

// snapshot is the on-disk JSON representation of one partition (and, for
// legacy stores, of the whole store in a single document).
type snapshot struct {
	Users    []*User    `json:"users,omitempty"`
	Projects []*Project `json:"projects,omitempty"`
	Results  []*Result  `json:"results,omitempty"`
	Comments []*Comment `json:"comments,omitempty"`
	Tasks    []*Task    `json:"tasks,omitempty"`

	NextProjectID int `json:"next_project_id,omitempty"`
	NextResultID  int `json:"next_result_id,omitempty"`
	NextCommentID int `json:"next_comment_id,omitempty"`
	NextTaskID    int `json:"next_task_id,omitempty"`

	TaskTimeoutSeconds int       `json:"task_timeout_seconds,omitempty"`
	SavedAt            time.Time `json:"saved_at"`

	// WALLSN is the log sequence number this snapshot covers: replay skips
	// records with lsn <= WALLSN. Zero for legacy stores and fresh
	// generations.
	WALLSN uint64 `json:"wal_lsn,omitempty"`
}

const (
	currentFile  = "CURRENT"
	legacyFile   = "sqalpel.json"
	migratedFile = "sqalpel.json.migrated"
	partMeta     = "meta"
	// keepSnapshots is how many snapshot generations a checkpoint retains
	// per partition; the log keeps every record the oldest retained
	// snapshot still needs, so recovery can fall back across one corrupt
	// snapshot.
	keepSnapshots = 2
)

func shardPartName(i int) string { return fmt.Sprintf("s%03d", i) }

func walPath(genDir, part string) string { return filepath.Join(genDir, part+".wal") }

func snapPath(genDir, part string, lsn uint64) string {
	return filepath.Join(genDir, fmt.Sprintf("%s.snap.%d.json", part, lsn))
}

// partSnapshots lists the partition's snapshot files, newest (highest lsn)
// first.
func partSnapshots(genDir, part string) []uint64 {
	entries, err := os.ReadDir(genDir)
	if err != nil {
		return nil
	}
	var lsns []uint64
	prefix := part + ".snap."
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".json"), 10, 64)
		if err != nil {
			continue
		}
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	return lsns
}

// partitionNames lists the partitions present in a generation directory,
// meta first, shards in ascending order.
func partitionNames(genDir string) []string {
	entries, err := os.ReadDir(genDir)
	if err != nil {
		return nil
	}
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		base := name
		if strings.HasSuffix(name, ".wal") {
			base = strings.TrimSuffix(name, ".wal")
		} else if i := strings.Index(name, ".snap."); i >= 0 {
			base = name[:i]
		} else {
			continue
		}
		seen[base] = true
	}
	var parts []string
	for p := range seen {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	// "meta" sorts after "s..." alphabetically only when shards are
	// lowercase s — it does not; sort puts "meta" before "s000" already.
	return parts
}

// writeFileAtomic writes data via a temp file + rename and fsyncs both the
// file and (best effort) the containing directory.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so renames inside it are durable; best
// effort, some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// metaSnapshotLocked builds the meta partition's image; metaMu held. The
// global id counters ride in the meta snapshot.
func (s *Store) metaSnapshotLocked() snapshot {
	snap := snapshot{
		NextProjectID:      s.nextProjectID,
		NextResultID:       int(s.nextResultID.Load()) + 1,
		NextCommentID:      int(s.nextCommentID.Load()) + 1,
		NextTaskID:         int(s.nextTaskID.Load()) + 1,
		TaskTimeoutSeconds: int(s.TaskTimeout.Seconds()),
		SavedAt:            s.now(),
	}
	if s.metaWAL != nil {
		snap.WALLSN = s.metaWAL.lsn
	}
	for _, u := range s.users {
		snap.Users = append(snap.Users, u)
	}
	return snap
}

// metaLogApply mirrors shard.logApply for the meta partition; metaMu held.
func (s *Store) metaLogApply(op string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("encoding %s record: %w", op, err)
	}
	rec := walRecord{Op: op, Data: data}
	if s.metaWAL != nil {
		rec.LSN = s.metaWAL.lsn + 1
		if err := s.metaWAL.append(rec); err != nil {
			return err
		}
	}
	return s.applyMeta(rec)
}

// applyMeta mutates the meta partition from one decoded record; metaMu
// held (or single-threaded recovery).
func (s *Store) applyMeta(rec walRecord) error {
	switch rec.Op {
	case opUser:
		var u User
		if err := json.Unmarshal(rec.Data, &u); err != nil {
			return fmt.Errorf("decoding %s record: %w", rec.Op, err)
		}
		s.users[u.Nickname] = &u
	default:
		return fmt.Errorf("unknown meta wal op %q", rec.Op)
	}
	return nil
}

// Save persists the store to dir. On the store's own data directory (a
// store opened with Open) it runs a checkpoint: every partition snapshots
// its state under its own lock and compacts its log — there is no
// stop-the-world pass over the whole store. On any other directory (or an
// in-memory store) it exports a complete new generation of snapshots.
func (s *Store) Save(dir string) error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.dir != "" && filepath.Clean(dir) == filepath.Clean(s.dir) {
		return s.checkpointLocked()
	}
	//lint:iolocked persistMu serialises whole-store persistence only (no reader ever takes it); the export must not interleave with another Save
	_, err := s.writeGeneration(dir, nil)
	return err
}

// Checkpoint snapshots every partition and compacts the write-ahead logs
// of a durable store; it is what the daemon runs periodically.
func (s *Store) Checkpoint() error {
	if s.dir == "" {
		return fmt.Errorf("checkpoint requires a store opened with Open")
	}
	return s.Save(s.dir)
}

// checkpointLocked snapshots and compacts each partition in place, one
// partition lock at a time; persistMu held.
func (s *Store) checkpointLocked() error {
	// Meta partition.
	s.metaMu.Lock()
	//lint:iolocked checkpoint seam: the snapshot aliases live objects, so marshal+swap must finish under the partition lock
	err := checkpointPartition(s.gen, partMeta, s.metaSnapshotLocked(), s.metaWAL, s.sinks, s.logf)
	s.metaMu.Unlock()
	if err != nil {
		return err
	}
	// Shards.
	for i, sh := range s.shards {
		sh.mu.Lock()
		//lint:iolocked checkpoint seam: the snapshot aliases live objects, so marshal+swap must finish under the shard lock
		err := checkpointPartition(s.gen, shardPartName(i), sh.snapshotLocked(), sh.wal, s.sinks, s.logf)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// checkpointPartition writes a snapshot of one partition at its current
// LSN, prunes old snapshots down to keepSnapshots, and rewrites the log to
// the records the oldest retained snapshot still needs. The partition lock
// is held throughout, so no append can interleave with the log rewrite;
// other partitions stay fully available. Marshalling happens under the
// lock too — the snapshot slices alias the live objects.
func checkpointPartition(genDir, part string, snap snapshot, wal *walWriter, sinks walSinkFactory, logf func(string, ...any)) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s snapshot: %w", part, err)
	}
	if err := writeFileAtomic(snapPath(genDir, part, snap.WALLSN), data); err != nil {
		return fmt.Errorf("writing %s snapshot: %w", part, err)
	}
	// Prune snapshots beyond the retention window.
	lsns := partSnapshots(genDir, part)
	for i, lsn := range lsns {
		if i >= keepSnapshots {
			_ = os.Remove(snapPath(genDir, part, lsn))
		}
	}
	// Compact the log: keep every record the oldest retained snapshot may
	// still need for replay.
	var keepAfter uint64
	if n := len(lsns); n > 0 {
		if n > keepSnapshots {
			n = keepSnapshots
		}
		keepAfter = lsns[n-1]
	}
	path := walPath(genDir, part)
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("reading %s wal for compaction: %w", part, err)
	}
	var kept []byte
	for _, rec := range decodeWAL(raw, part+".wal", logf) {
		if rec.LSN <= keepAfter {
			continue
		}
		frame, err := frameRecord(rec)
		if err != nil {
			return err
		}
		kept = append(kept, frame...)
	}
	if len(kept) == len(raw) && (wal == nil || wal.broken == nil) {
		return nil // nothing to drop; keep the append handle as is
	}
	if wal != nil && wal.sink != nil {
		if err := wal.sink.Close(); err != nil {
			return fmt.Errorf("closing %s wal: %w", part, err)
		}
	}
	if err := writeFileAtomic(path, kept); err != nil {
		return fmt.Errorf("rewriting %s wal: %w", part, err)
	}
	if wal != nil {
		sink, err := sinks(path)
		if err != nil {
			return fmt.Errorf("reopening %s wal: %w", part, err)
		}
		wal.sink = sink
		// The rewrite kept exactly the records that were provably intact, so
		// a partition disabled by a failed append is healthy again.
		wal.broken = nil
	}
	return nil
}

// writeGeneration exports the full store as a brand-new generation in dir
// and flips CURRENT to it; persistMu held. When attach is non-nil it is
// called per partition with the new log path so Open can wire up the
// write-ahead sinks of the generation it just created. Old generations
// and a migrated legacy file are pruned afterwards — only once the new
// generation is complete and CURRENT points at it, so a crash at any
// earlier instant leaves the previous state authoritative.
func (s *Store) writeGeneration(dir string, attach func(part, walFile string) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("creating store directory: %w", err)
	}
	seq := 1
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if n, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "gen-")); err == nil && n >= seq {
				seq = n + 1
			}
		}
	}
	genName := fmt.Sprintf("gen-%06d", seq)
	genDir := filepath.Join(dir, genName)
	if err := os.MkdirAll(genDir, 0o755); err != nil {
		return "", fmt.Errorf("creating generation directory: %w", err)
	}

	write := func(part string, snap snapshot) error {
		snap.WALLSN = 0
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding %s snapshot: %w", part, err)
		}
		if err := writeFileAtomic(snapPath(genDir, part, 0), data); err != nil {
			return fmt.Errorf("writing %s snapshot: %w", part, err)
		}
		if attach != nil {
			if err := attach(part, walPath(genDir, part)); err != nil {
				return err
			}
		}
		return nil
	}

	s.metaMu.RLock()
	metaSnap := s.metaSnapshotLocked()
	err := write(partMeta, metaSnap)
	s.metaMu.RUnlock()
	if err != nil {
		return "", err
	}
	for i, sh := range s.shards {
		sh.mu.RLock()
		snap := sh.snapshotLocked()
		err := write(shardPartName(i), snap)
		sh.mu.RUnlock()
		if err != nil {
			return "", err
		}
	}

	if err := writeFileAtomic(filepath.Join(dir, currentFile), []byte(genName+"\n")); err != nil {
		return "", fmt.Errorf("writing CURRENT: %w", err)
	}
	// The new generation is authoritative; prune everything stale.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "gen-") && e.Name() != genName {
				_ = os.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
	}
	if _, err := os.Stat(filepath.Join(dir, legacyFile)); err == nil {
		_ = os.Rename(filepath.Join(dir, legacyFile), filepath.Join(dir, migratedFile))
	}
	return genDir, nil
}
