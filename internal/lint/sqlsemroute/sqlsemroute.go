// Package sqlsemroute flags expression-level two-valued treatment of
// nullable SQL values in the executor packages. internal/sqlsem is the
// single source of ternary truth (PR 5): comparisons over NULL must yield
// UNKNOWN, boolean connectives must follow the three-valued truth tables,
// and UNKNOWN may collapse to "row rejected" only at a predicate consumer.
// Before PR 5 every paradigm had hand-rolled flattenings of exactly the
// shapes this analyzer matches — NULL = x evaluating to FALSE instead of
// UNKNOWN, AND/OR over collapsed booleans — and all five engines agreed on
// the wrong answers, so the differential oracle was blind to the bug.
//
// Two shapes are flagged in internal/engine, internal/vexec and
// internal/cexec:
//
//   - v1 == v2 / v1 != v2 where either operand is an engine.Value: Go
//     struct equality compares the raw {Kind,I,F,S} fields, which is both
//     NULL-blind (NULL == NULL is true) and representation-sensitive
//     (1 != 1.0); route through sqlsem.CompareNullable or compare the
//     fields you mean explicitly;
//   - b1 && b2 / b1 || b2 / !b where an operand is a Value.Bool() call:
//     Bool() collapses NULL to false *inside* the expression, which is the
//     consumer collapse applied in the wrong place — combine Tri values
//     with sqlsem.And/Or/Not and collapse at the filter via Accept.
//
// Suppress deliberate sites with //lint:nullsafe <reason> (e.g. a consumer
// collapse that really is the filter boundary).
package sqlsemroute

import (
	"go/ast"
	"go/token"

	"sqalpel/internal/lint/analysis"
	"sqalpel/internal/lint/lintutil"
)

// Markers lists the executor packages that must route ternary logic
// through internal/sqlsem.
var Markers = []string{
	"internal/engine",
	"internal/vexec",
	"internal/cexec",
}

// ValueMarker/ValueType locate the nullable SQL value type.
const (
	ValueMarker = "internal/engine"
	ValueType   = "Value"
)

// Token is the suppression token: //lint:nullsafe <reason>.
const Token = "nullsafe"

var Analyzer = &analysis.Analyzer{
	Name: "sqlsemroute",
	Doc: "flag raw ==/!= over engine.Value and &&/||/! over Value.Bool() in executor packages: " +
		"ternary NULL logic must route through internal/sqlsem; suppress with //lint:nullsafe <reason>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PathMatchesAny(pass.Pkg.Path(), Markers...) {
		return nil, nil
	}
	sup := lintutil.NewSuppressions(pass.Fset, pass.Files)
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ:
				if isValue(pass, n.X) || isValue(pass, n.Y) {
					report(pass, sup, n.OpPos,
						"raw %s comparison of engine.Value compares struct fields two-valuedly "+
							"(NULL-blind, representation-sensitive); use sqlsem.CompareNullable via the "+
							"value comparison helpers, or compare the intended fields explicitly", n.Op)
				}
			case token.LAND, token.LOR:
				if isValueBoolCall(pass, n.X) || isValueBoolCall(pass, n.Y) {
					report(pass, sup, n.OpPos,
						"%s over Value.Bool() collapses NULL to false inside the expression; "+
							"combine sqlsem.Tri values with sqlsem.And/Or and collapse only at the "+
							"predicate consumer (Tri.Accept)", n.Op)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.NOT && isValueBoolCall(pass, n.X) {
				report(pass, sup, n.OpPos,
					"! over Value.Bool() collapses NULL to false before negating, turning UNKNOWN "+
						"into TRUE; use sqlsem.Not on the Tri value instead")
			}
		}
		return true
	})
	return nil, nil
}

func report(pass *analysis.Pass, sup *lintutil.Suppressions, pos token.Pos, format string, args ...any) {
	if sup.Suppressed(pass.Fset, pos, Token) {
		return
	}
	pass.Reportf(pos, format+" (or annotate //lint:"+Token+" <reason>)", args...)
}

// isValue reports whether the expression's type is engine.Value. Untyped
// nils and non-Value operands (including Kind, which has its own identity)
// do not match.
func isValue(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	return lintutil.NamedIn(tv.Type, ValueMarker, ValueType)
}

// isValueBoolCall matches <engine.Value>.Bool() call expressions.
func isValueBoolCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return lintutil.IsMethodCall(pass.TypesInfo, call, ValueMarker, ValueType, "Bool")
}
