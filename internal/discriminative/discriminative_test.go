package discriminative

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"sqalpel/internal/grammar"
	"sqalpel/internal/metrics"
	"sqalpel/internal/pool"
	"sqalpel/internal/workload"
)

// fakeTarget simulates a DBMS whose execution time depends on the query
// text: a base cost plus a per-term surcharge, so discriminative queries
// demonstrably exist between two differently tuned fakes.
type fakeTarget struct {
	base       time.Duration
	perComment time.Duration // surcharge when the query touches n_comment
	perFilter  time.Duration // surcharge when the query has a WHERE clause
	failOn     string
}

func (f *fakeTarget) Run(query string) (int, map[string]string, error) {
	if f.failOn != "" && strings.Contains(query, f.failOn) {
		return 0, nil, errors.New("simulated failure")
	}
	d := f.base
	if strings.Contains(query, "n_comment") {
		d += f.perComment
	}
	if strings.Contains(query, "WHERE") {
		d += f.perFilter
	}
	time.Sleep(d)
	return 1, map[string]string{"fake": "yes"}, nil
}

func newNationPool(t *testing.T) *pool.Pool {
	t.Helper()
	g, err := grammar.Parse(workload.NationSampleGrammar)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pool.New(g, pool.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SeedRandom(8); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSearchRequiresTwoTargets(t *testing.T) {
	p := newNationPool(t)
	_, err := New(p, map[string]metrics.Target{"only": &fakeTarget{}}, Options{})
	if err == nil {
		t.Error("expected error with a single target")
	}
}

func TestSearchFindsDiscriminativeQueries(t *testing.T) {
	p := newNationPool(t)
	// System A is slow on n_comment, system B is slow on filtered queries.
	// The surcharges dwarf scheduler noise so the assertions below stay
	// stable even when the suite runs under heavy parallel load.
	targets := map[string]metrics.Target{
		"sysA": &fakeTarget{base: 200 * time.Microsecond, perComment: 10 * time.Millisecond},
		"sysB": &fakeTarget{base: 200 * time.Microsecond, perFilter: 10 * time.Millisecond},
	}
	s, err := New(p, targets, Options{Runs: 1, GrowPerRound: 4, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	outcomes := s.Run("sysA", "sysB", 2)
	if len(outcomes) < 9 {
		t.Fatalf("expected at least the seeded entries measured, got %d", len(outcomes))
	}
	// Queries better on sysA should avoid n_comment, queries better on sysB
	// should avoid WHERE.
	betterA := s.Better("sysA", "sysB", 3)
	betterB := s.Better("sysB", "sysA", 3)
	if len(betterA) == 0 || len(betterB) == 0 {
		t.Fatalf("expected discriminative queries in both directions (A: %d, B: %d)", len(betterA), len(betterB))
	}
	// Queries with a clear advantage (well above timing noise) must reflect
	// the cost model: sysA hates n_comment, sysB hates the filter. Queries
	// containing both terms have ratios near 1 and are not checked.
	for _, f := range betterA {
		if f.Ratio > 2 && strings.Contains(f.Outcome.Entry.SQL, "n_comment") {
			t.Errorf("query clearly better on sysA should avoid n_comment: %s", f.Outcome.Entry.SQL)
		}
		if f.Ratio <= 1 {
			t.Errorf("finding ratio %f should exceed 1", f.Ratio)
		}
	}
	for _, f := range betterB {
		if f.Ratio > 2 && strings.Contains(f.Outcome.Entry.SQL, "WHERE") {
			t.Errorf("query clearly better on sysB should avoid the filter: %s", f.Outcome.Entry.SQL)
		}
	}
	if betterA[0].Ratio < 2 && betterB[0].Ratio < 2 {
		t.Error("expected at least one clearly discriminative query")
	}
	// Findings are sorted by descending ratio.
	for i := 1; i < len(betterA); i++ {
		if betterA[i].Ratio > betterA[i-1].Ratio {
			t.Error("findings not sorted")
		}
	}
	if !strings.Contains(s.Summary("sysA", "sysB"), "pool") {
		t.Errorf("summary = %q", s.Summary("sysA", "sysB"))
	}
}

func TestSearchGrowsThePool(t *testing.T) {
	p := newNationPool(t)
	before := p.Size()
	targets := map[string]metrics.Target{
		"a": &fakeTarget{base: 50 * time.Microsecond, perComment: 500 * time.Microsecond},
		"b": &fakeTarget{base: 50 * time.Microsecond},
	}
	s, _ := New(p, targets, Options{Runs: 1, GrowPerRound: 5})
	s.Run("a", "b", 2)
	if p.Size() <= before {
		t.Errorf("pool did not grow: %d -> %d", before, p.Size())
	}
	// Every pool entry has been measured after Run.
	if len(s.Outcomes()) != p.Size() {
		t.Errorf("outcomes %d != pool size %d", len(s.Outcomes()), p.Size())
	}
}

func TestErrorsAreTracked(t *testing.T) {
	p := newNationPool(t)
	targets := map[string]metrics.Target{
		"ok":    &fakeTarget{base: 10 * time.Microsecond},
		"picky": &fakeTarget{base: 10 * time.Microsecond, failOn: "count(*)"},
	}
	s, _ := New(p, targets, Options{Runs: 1, GrowPerRound: 2})
	s.Run("ok", "picky", 1)
	sawError := false
	for _, o := range s.Outcomes() {
		if strings.Contains(o.Entry.SQL, "count(*)") {
			if !o.Failed() {
				t.Errorf("count(*) query should have failed on the picky target")
			}
			sawError = true
			if !math.IsNaN(o.Ratio("ok", "picky")) {
				t.Error("ratio of a failed outcome should be NaN")
			}
		}
	}
	if sawError && len(s.Errors()) == 0 {
		t.Error("Errors() should report the failed outcomes")
	}
	// Failed outcomes never appear among the discriminative findings.
	for _, f := range s.Better("ok", "picky", 0) {
		if f.Outcome.Failed() {
			t.Error("failed outcome reported as a finding")
		}
	}
}

func TestOutcomeRatioAndSeconds(t *testing.T) {
	p := newNationPool(t)
	// The gap between the two fakes is large enough that scheduler noise
	// (e.g. when the whole benchmark suite runs in parallel) cannot flip the
	// comparison.
	targets := map[string]metrics.Target{
		"fast": &fakeTarget{base: 100 * time.Microsecond},
		"slow": &fakeTarget{base: 25 * time.Millisecond},
	}
	s, _ := New(p, targets, Options{Runs: 2})
	o := s.MeasureEntry(p.Baseline())
	if o.Failed() {
		t.Fatalf("unexpected failure: %+v", o)
	}
	r := o.Ratio("slow", "fast")
	if math.IsNaN(r) || r < 2 {
		t.Errorf("slow/fast ratio = %f, want clearly above 2", r)
	}
	if o.Seconds("fast") <= 0 || math.IsNaN(o.Seconds("missing")) == false {
		t.Error("Seconds accessor wrong")
	}
	// Measuring the same entry twice reuses the outcome.
	again := s.MeasureEntry(p.Baseline())
	if again != o {
		t.Error("MeasureEntry should cache outcomes")
	}
}

// TestMatrixThreeTargets measures three differently tuned fakes and checks
// that the pairwise discrimination matrix covers every ordered pair and
// surfaces the separations the fakes are built to show.
func TestMatrixThreeTargets(t *testing.T) {
	p := newNationPool(t)
	// The gaps between the tiers stay well above timer resolution so the
	// assertions hold under the race detector on a loaded box.
	targets := map[string]metrics.Target{
		"fast":   &fakeTarget{base: 50 * time.Microsecond},
		"steady": &fakeTarget{base: 5 * time.Millisecond},
		"picky":  &fakeTarget{base: 50 * time.Microsecond, perComment: 20 * time.Millisecond},
	}
	s, err := New(p, targets, Options{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.MeasurePending()

	cells := s.Matrix()
	if len(cells) != 6 {
		t.Fatalf("matrix cells = %d, want 6 ordered pairs", len(cells))
	}
	seen := map[string]MatrixCell{}
	for _, c := range cells {
		if c.Fast == c.Slow {
			t.Fatalf("matrix contains a diagonal cell %q", c.Fast)
		}
		seen[c.Fast+">"+c.Slow] = c
		if c.Best != nil && c.Best.Ratio <= 1 {
			t.Errorf("%s>%s best ratio = %v, want > 1", c.Fast, c.Slow, c.Best.Ratio)
		}
		if (c.Best == nil) != (c.Count == 0) {
			t.Errorf("%s>%s: best/count disagree", c.Fast, c.Slow)
		}
	}
	// Everything beats the uniformly slow target.
	for _, fast := range []string{"fast", "picky"} {
		c := seen[fast+">steady"]
		if c.Count == 0 {
			t.Errorf("%s should beat steady on some query", fast)
		}
	}
}

func TestRatioZeroTimesSymmetric(t *testing.T) {
	mk := func(a, b time.Duration) *Outcome {
		return &Outcome{ByTarget: map[string]*metrics.Measurement{
			"a": {Runs: []time.Duration{a}},
			"b": {Runs: []time.Duration{b}},
		}}
	}
	// A zero wall-clock time is below the clock's resolution; the ratio must
	// be NaN whichever side it appears on (it used to be 0 for ta == 0 but
	// NaN for tb == 0).
	if r := mk(0, time.Millisecond).Ratio("a", "b"); !math.IsNaN(r) {
		t.Errorf("Ratio with zero numerator = %v, want NaN", r)
	}
	if r := mk(time.Millisecond, 0).Ratio("a", "b"); !math.IsNaN(r) {
		t.Errorf("Ratio with zero denominator = %v, want NaN", r)
	}
	if r := mk(0, 0).Ratio("a", "b"); !math.IsNaN(r) {
		t.Errorf("Ratio with both zero = %v, want NaN", r)
	}
	if r := mk(2*time.Millisecond, time.Millisecond).Ratio("a", "b"); math.Abs(r-2) > 1e-9 {
		t.Errorf("Ratio = %v, want 2", r)
	}
	// Symmetry: swapping the arguments inverts the ratio or stays NaN.
	if ra, rb := mk(0, time.Millisecond).Ratio("a", "b"), mk(0, time.Millisecond).Ratio("b", "a"); math.IsNaN(ra) != math.IsNaN(rb) {
		t.Errorf("zero-time handling is asymmetric: %v vs %v", ra, rb)
	}
}

// simTarget is a deterministic simulator: instead of sleeping it reports
// its cost through metrics.SimulatedDurationKey, so two runs of the same
// search measure bit-identical timings whatever the scheduling order.
type simTarget struct {
	base       time.Duration
	perComment time.Duration
	perFilter  time.Duration
}

func (f *simTarget) Run(query string) (int, map[string]string, error) {
	d := f.base
	if strings.Contains(query, "n_comment") {
		d += f.perComment
	}
	if strings.Contains(query, "WHERE") {
		d += f.perFilter
	}
	// A per-query fingerprint keeps ratios distinct so rankings have no ties.
	for _, r := range query {
		d += time.Duration(r % 17)
	}
	return 1, map[string]string{metrics.SimulatedDurationKey: fmt.Sprintf("%d", d.Nanoseconds())}, nil
}

// searchFindings runs one full guided search at the given parallelism and
// returns the identifying trace: pool SQL texts plus the ranked finding ids
// in both directions.
func searchFindings(t *testing.T, workers int) (poolSQL []string, better []int) {
	t.Helper()
	p := newNationPool(t)
	targets := map[string]metrics.Target{
		"sysA": &simTarget{base: 200 * time.Microsecond, perComment: 12 * time.Millisecond},
		"sysB": &simTarget{base: 200 * time.Microsecond, perFilter: 12 * time.Millisecond},
	}
	s, err := New(p, targets, Options{Runs: 1, GrowPerRound: 4, TopK: 2, Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	s.Run("sysA", "sysB", 2)
	for _, e := range p.Entries() {
		poolSQL = append(poolSQL, e.SQL)
	}
	for _, f := range append(s.Better("sysA", "sysB", 0), s.Better("sysB", "sysA", 0)...) {
		better = append(better, f.Outcome.Entry.ID)
	}
	return poolSQL, better
}

func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	// The guided walk must be a pure function of the pool seed: fanning the
	// measurements across 8 workers may only change wall-clock, never the
	// findings. The fake targets' surcharges dwarf scheduler noise so the
	// rankings are stable.
	serialPool, serialBetter := searchFindings(t, 1)
	parallelPool, parallelBetter := searchFindings(t, 8)
	if len(serialPool) != len(parallelPool) {
		t.Fatalf("pool diverged: %d vs %d entries", len(serialPool), len(parallelPool))
	}
	for i := range serialPool {
		if serialPool[i] != parallelPool[i] {
			t.Errorf("pool entry %d diverged:\n workers=1: %s\n workers=8: %s", i+1, serialPool[i], parallelPool[i])
		}
	}
	if len(serialBetter) != len(parallelBetter) {
		t.Fatalf("findings diverged: %v vs %v", serialBetter, parallelBetter)
	}
	for i := range serialBetter {
		if serialBetter[i] != parallelBetter[i] {
			t.Fatalf("finding order diverged: %v vs %v", serialBetter, parallelBetter)
		}
	}
}

func TestSearchResultCacheAcrossDuplicateSQL(t *testing.T) {
	p := newNationPool(t)
	targets := map[string]metrics.Target{
		"sysA": &fakeTarget{base: 100 * time.Microsecond},
		"sysB": &fakeTarget{base: 100 * time.Microsecond},
	}
	s, err := New(p, targets, Options{Runs: 1, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.MeasurePending()
	measured, _ := s.Scheduler().Stats()
	if want := p.Size() * 2; measured != want {
		t.Errorf("measured %d cells, want %d", measured, want)
	}
	// Re-measuring the same pool is free.
	before, _ := s.Scheduler().Stats()
	s.MeasureEntry(p.Baseline())
	after, _ := s.Scheduler().Stats()
	if after != before {
		t.Errorf("already measured entry triggered %d new measurements", after-before)
	}
}

func TestRunContextCancellation(t *testing.T) {
	p := newNationPool(t)
	targets := map[string]metrics.Target{
		"sysA": &fakeTarget{base: time.Millisecond},
		"sysB": &fakeTarget{base: time.Millisecond},
	}
	s, err := New(p, targets, Options{Runs: 1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := p.Size()
	s.RunContext(ctx, "sysA", "sysB", 3)
	if p.Size() != before {
		t.Errorf("cancelled run grew the pool from %d to %d", before, p.Size())
	}
}

func TestCancelledMeasurementsAreRetried(t *testing.T) {
	p := newNationPool(t)
	targets := map[string]metrics.Target{
		"sysA": &fakeTarget{base: 100 * time.Microsecond},
		"sysB": &fakeTarget{base: 100 * time.Microsecond},
	}
	s, err := New(p, targets, Options{Runs: 1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.MeasurePendingContext(ctx)
	if n := len(s.Outcomes()); n != 0 {
		t.Fatalf("cancelled run recorded %d outcomes; they would never be re-measured", n)
	}
	// A later, un-cancelled call measures everything for real.
	s.MeasurePending()
	if n := len(s.Outcomes()); n != p.Size() {
		t.Fatalf("retry measured %d of %d entries", n, p.Size())
	}
	for _, o := range s.Outcomes() {
		if o.Failed() {
			t.Errorf("entry #%d still failed after the retry: %+v", o.Entry.ID, o.ByTarget)
		}
	}
}
