// Package trace is the tracenilalloc fixture stub: the Tracer/Span seam
// and the allocating id/prefix constructors, shaped like the real
// internal/trace surface.
package trace

import "strconv"

// Kind labels a span's operator family.
type Kind string

const (
	KindScan Kind = "scan"
	KindSort Kind = "sort"
)

// Tracer collects spans; a nil Tracer means tracing is disabled.
type Tracer struct{ spans map[string]*Span }

// Span is one operator's measurement.
type Span struct{}

// Span returns the span for an operator id (nil-safe on the Tracer, but
// the id argument has usually already allocated by the time it runs).
func (t *Tracer) Span(id string, kind Kind) *Span {
	if t == nil {
		return nil
	}
	return &Span{}
}

// Start begins timing (nil-safe consumer).
func (s *Span) Start() Timer { return Timer{} }

// Timer measures one operator activation.
type Timer struct{}

// Done records the elapsed time (nil-safe consumer).
func (tm Timer) Done(rows int64) {}

// ScanID is an allocating operator-id constructor.
func ScanID(prefix string, idx int) string { return prefix + "scan" + strconv.Itoa(idx) }

// SortID is an allocating operator-id constructor.
func SortID(prefix string) string { return prefix + "sort" }

// SubPrefix derives the id prefix of a sub-query's operators.
func SubPrefix(prefix string, k int) string { return prefix + "sub" + strconv.Itoa(k) + "." }
