package pool

import (
	"strings"
	"testing"

	"sqalpel/internal/derive"
	"sqalpel/internal/grammar"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/workload"
)

func nationPool(t *testing.T, opts Options) *Pool {
	t.Helper()
	g, err := grammar.Parse(workload.NationSampleGrammar)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPoolSeedsBaseline(t *testing.T) {
	p := nationPool(t, Options{Seed: 3})
	if p.Size() != 1 {
		t.Fatalf("new pool size = %d, want 1", p.Size())
	}
	base := p.Baseline()
	if base.Strategy != StrategyBaseline || base.ParentID != 0 {
		t.Errorf("baseline entry = %+v", base)
	}
	if !strings.Contains(base.SQL, "FROM nation") {
		t.Errorf("baseline SQL = %q", base.SQL)
	}
	if base.Components < 5 {
		t.Errorf("baseline should use the largest template, components = %d", base.Components)
	}
	if p.Entry(1) != base || p.Entry(0) != nil || p.Entry(99) != nil {
		t.Error("Entry lookup wrong")
	}
}

func TestSeedRandomDeduplicates(t *testing.T) {
	p := nationPool(t, Options{Seed: 5})
	added, err := p.SeedRandom(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) == 0 {
		t.Fatal("no random entries added")
	}
	seen := map[string]bool{}
	for _, e := range p.Entries() {
		if seen[e.SQL] {
			t.Errorf("duplicate SQL in pool: %s", e.SQL)
		}
		seen[e.SQL] = true
	}
	// All entries parse.
	for _, e := range p.Entries() {
		if _, err := sqlparser.Parse(e.SQL); err != nil {
			t.Errorf("pool entry does not parse: %v\n%s", err, e.SQL)
		}
	}
}

func TestAlterChangesOneLiteral(t *testing.T) {
	p := nationPool(t, Options{Seed: 7})
	// The baseline uses every literal of every class, so it cannot be
	// altered; seed a few random variants first.
	if _, err := p.SeedRandom(5); err != nil {
		t.Fatal(err)
	}
	e, err := p.Alter()
	if err != nil {
		t.Fatal(err)
	}
	if e.Strategy != StrategyAlter {
		t.Errorf("strategy = %s", e.Strategy)
	}
	if e.ParentID == 0 {
		t.Error("alter entries must record their parent")
	}
	parent := p.Entry(e.ParentID)
	if parent == nil {
		t.Fatal("parent not in pool")
	}
	if e.Components != parent.Components {
		t.Errorf("alter should keep the component count: %d vs %d", e.Components, parent.Components)
	}
	if e.SQL == parent.SQL {
		t.Error("alter produced an identical query")
	}
}

func TestExpandAndPruneChangeSize(t *testing.T) {
	p := nationPool(t, Options{Seed: 11})
	if _, err := p.SeedRandom(5); err != nil {
		t.Fatal(err)
	}
	exp, err := p.Expand()
	if err == nil {
		parent := p.Entry(exp.ParentID)
		if exp.Components != parent.Components+1 {
			t.Errorf("expand should add one component: %d -> %d", parent.Components, exp.Components)
		}
	}
	pr, err := p.Prune()
	if err != nil {
		t.Fatalf("prune failed: %v", err)
	}
	parent := p.Entry(pr.ParentID)
	if pr.Components != parent.Components-1 {
		t.Errorf("prune should drop one component: %d -> %d", parent.Components, pr.Components)
	}
	if pr.Strategy != StrategyPrune {
		t.Errorf("strategy = %s", pr.Strategy)
	}
}

func TestGrowMixesStrategies(t *testing.T) {
	p := nationPool(t, Options{Seed: 13})
	added := p.Grow(15)
	if len(added) < 5 {
		t.Fatalf("grow added only %d entries", len(added))
	}
	strategies := map[Strategy]bool{}
	for _, e := range added {
		strategies[e.Strategy] = true
		if e.ParentID == 0 {
			t.Error("morphed entries must have parents")
		}
	}
	if len(strategies) < 2 {
		t.Errorf("grow should mix strategies, saw %v", strategies)
	}
	// The pool never exceeds its size cap and never duplicates.
	if p.Size() > DefaultMaxSize {
		t.Error("pool exceeded cap")
	}
}

func TestGrowRespectsStrategySteering(t *testing.T) {
	p := nationPool(t, Options{Seed: 17, Steering: Steering{Strategies: []Strategy{StrategyPrune}}})
	added := p.Grow(5)
	for _, e := range added {
		if e.Strategy != StrategyPrune {
			t.Errorf("steered grow produced %s entry", e.Strategy)
		}
	}
}

func TestSteeringExcludeInclude(t *testing.T) {
	p := nationPool(t, Options{
		Seed:     19,
		Steering: Steering{ExcludeLiterals: []string{"n_comment"}},
	})
	added, err := p.SeedRandom(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range added {
		if strings.Contains(e.SQL, "n_comment") {
			t.Errorf("excluded literal appeared in %q", e.SQL)
		}
	}
	added2 := p.Grow(10)
	for _, e := range added2 {
		if strings.Contains(e.SQL, "n_comment") {
			t.Errorf("excluded literal appeared after morphing in %q", e.SQL)
		}
	}

	pInc := nationPool(t, Options{
		Seed:     23,
		Steering: Steering{IncludeLiterals: []string{"WHERE n_name = 'BRAZIL'"}},
	})
	addedInc, err := pInc.SeedRandom(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range addedInc {
		if !strings.Contains(e.SQL, "BRAZIL") {
			t.Errorf("included literal missing from %q", e.SQL)
		}
	}
}

func TestPoolCap(t *testing.T) {
	p := nationPool(t, Options{Seed: 29, MaxSize: 3})
	p.SeedRandom(50)
	p.Grow(50)
	if p.Size() > 3 {
		t.Errorf("pool size %d exceeds cap 3", p.Size())
	}
}

func TestPoolOnDerivedTPCHGrammar(t *testing.T) {
	q1, _ := workload.TPCHQuery("Q1")
	g, err := derive.FromSQL(q1.SQL, derive.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(g, Options{Seed: 31, Enumerate: grammar.EnumerateOptions{TemplateCap: 3000, LiteralOnce: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SeedRandom(10); err != nil {
		t.Fatal(err)
	}
	added := p.Grow(20)
	if len(added) < 10 {
		t.Fatalf("grow on Q1 grammar added only %d entries", len(added))
	}
	for _, e := range p.Entries() {
		if _, err := sqlparser.Parse(e.SQL); err != nil {
			t.Errorf("entry does not parse: %v\n%s", err, e.SQL)
		}
		if !strings.Contains(e.SQL, "FROM lineitem") {
			t.Errorf("entry lost the FROM clause: %s", e.SQL)
		}
	}
	// The baseline keeps all ten projection elements.
	if p.Baseline().Components < 10 {
		t.Errorf("Q1 baseline components = %d, want >= 10", p.Baseline().Components)
	}
}

func TestDeterministicPools(t *testing.T) {
	p1 := nationPool(t, Options{Seed: 37})
	p2 := nationPool(t, Options{Seed: 37})
	p1.SeedRandom(5)
	p2.SeedRandom(5)
	p1.Grow(10)
	p2.Grow(10)
	e1, e2 := p1.Entries(), p2.Entries()
	if len(e1) != len(e2) {
		t.Fatalf("pool sizes differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].SQL != e2[i].SQL || e1[i].Strategy != e2[i].Strategy {
			t.Fatalf("entry %d differs: %q vs %q", i, e1[i].SQL, e2[i].SQL)
		}
	}
}
