package repository

import (
	"fmt"
	"testing"
)

// BenchmarkRepositoryShards measures the lease+complete hot path of the
// durable store under 8 concurrent drivers, each draining its own project,
// for growing shard counts. Projects map to shards by id, so with one shard
// every driver contends on a single partition lock and a single WAL; with
// eight shards the drivers never share either. Sinks skip fsync so the
// benchmark isolates the locking and logging overhead rather than the disk
// (a production store pays one fsync per record on top, identical across
// shard counts). One op is one completed measurement, i.e. two WAL records
// plus its share of a batched lease.
func BenchmarkRepositoryShards(b *testing.B) {
	const drivers = 8
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d/drivers=%d", shards, drivers), func(b *testing.B) {
			dir := b.TempDir()
			s, err := open(dir, shards, quietLogf, nosyncFactory)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.RegisterUser("martin", "martin@example.org"); err != nil {
				b.Fatal(err)
			}
			perDriver := (b.N + drivers - 1) / drivers
			type lane struct {
				expID int
				key   string
			}
			lanes := make([]lane, drivers)
			for i := range lanes {
				p, err := s.CreateProject("martin", fmt.Sprintf("bench-%d", i), "", true)
				if err != nil {
					b.Fatal(err)
				}
				e, err := s.AddExperiment("martin", p.ID, "exp", "SELECT 1", "")
				if err != nil {
					b.Fatal(err)
				}
				qs := make([]QueryRecord, perDriver)
				for q := range qs {
					qs[q] = QueryRecord{ID: q + 1, SQL: "SELECT 1"}
				}
				if err := s.ReplaceQueries("martin", p.ID, e.ID, qs); err != nil {
					b.Fatal(err)
				}
				lanes[i] = lane{e.ID, p.Contributors[0].Key}
			}
			b.ResetTimer()
			done := make(chan error, drivers)
			for i := range lanes {
				go func(ln lane) {
					completed := 0
					for completed < perDriver {
						tasks, err := s.RequestTasks(ln.key, ln.expID, "columba-1.0", "laptop", 32)
						if err != nil {
							done <- err
							return
						}
						if len(tasks) == 0 {
							break
						}
						for _, task := range tasks {
							if _, err := s.CompleteTask(task.ID, ln.key, []float64{0.1}, "", nil); err != nil {
								done <- err
								return
							}
							completed++
						}
					}
					done <- nil
				}(lanes[i])
			}
			for range lanes {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
