package grammar

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DefaultTemplateCap is the hard system limit on the number of distinct
// templates derived from a grammar, mirroring the paper's ">100K" cap in the
// TPC-H query-space table.
const DefaultTemplateCap = 100000

// DefaultMaxDepth bounds the number of structural expansion steps along one
// derivation path, which keeps recursive grammars finite. Non-recursive
// grammars derived from even very wide baseline queries stay well below it.
const DefaultMaxDepth = 400

// Template is one query template: the expansion of the start rule in which
// only keywords (literal text coming from structural rules) and references
// to lexical token classes remain. Following the paper, the order of lexical
// tokens is ignored; a template is therefore identified by its keyword
// skeleton plus the multiset of lexical class occurrences.
type Template struct {
	// Elements is one representative element sequence for the template
	// (literal text plus references to lexical rules only). It is used to
	// realise concrete sentences.
	Elements []Element
	// Counts maps lexical class (rule name) to the number of occurrences in
	// the template.
	Counts map[string]int
}

// Signature returns the canonical identity of the template: the keyword
// skeleton with lexical references replaced by their class name, plus the
// sorted class counts. Two templates that differ only in the order of
// lexical tokens share a signature.
func (t *Template) Signature() string {
	var kw []string
	for _, e := range t.Elements {
		if !e.IsRef() {
			kw = append(kw, strings.ToUpper(e.Text))
		}
	}
	classes := make([]string, 0, len(t.Counts))
	for c := range t.Counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var counts []string
	for _, c := range classes {
		counts = append(counts, fmt.Sprintf("%s=%d", c, t.Counts[c]))
	}
	return strings.Join(kw, " ") + " | " + strings.Join(counts, ",")
}

// Size returns the number of lexical token slots in the template; the paper
// uses this as the "number of components" of a query.
func (t *Template) Size() int {
	n := 0
	for _, c := range t.Counts {
		n += c
	}
	return n
}

// Text renders the template with ${class} placeholders.
func (t *Template) Text() string {
	parts := make([]string, 0, len(t.Elements))
	for _, e := range t.Elements {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, " ")
}

// Combinations returns the number of concrete queries this template yields
// under the literal-once rule with order ignored: the product over lexical
// classes of C(classSize, occurrences). Templates requesting more
// occurrences of a class than it has literals yield zero.
func (t *Template) Combinations(classSizes map[string]int) uint64 {
	total := uint64(1)
	for class, occ := range t.Counts {
		n := classSizes[class]
		c := binomial(n, occ)
		if c == 0 {
			return 0
		}
		total = satMul(total, c)
	}
	return total
}

// OrderedCombinations returns the number of concrete queries when the order
// of lexical tokens is considered significant: the product of falling
// factorials n*(n-1)*...*(n-k+1). It exists for the ablation benchmark that
// quantifies how much the paper's order-insensitive counting shrinks the
// space.
func (t *Template) OrderedCombinations(classSizes map[string]int) uint64 {
	total := uint64(1)
	for class, occ := range t.Counts {
		n := classSizes[class]
		if occ > n {
			return 0
		}
		for i := 0; i < occ; i++ {
			total = satMul(total, uint64(n-i))
		}
	}
	return total
}

// binomial computes C(n, k) with saturation at math.MaxUint64.
func binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k == 0 || k == n {
		return 1
	}
	if k > n-k {
		k = n - k
	}
	result := uint64(1)
	for i := 1; i <= k; i++ {
		// result = result * (n - k + i) / i, keeping exact integer math.
		result = satMul(result, uint64(n-k+i))
		if result != math.MaxUint64 {
			result /= uint64(i)
		}
	}
	return result
}

// satMul multiplies with saturation at math.MaxUint64.
func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

// satAdd adds with saturation at math.MaxUint64.
func satAdd(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

// EnumerateOptions control template enumeration.
type EnumerateOptions struct {
	// TemplateCap is the hard limit on the number of distinct templates;
	// zero means DefaultTemplateCap.
	TemplateCap int
	// MaxDepth bounds the number of structural expansion steps along a
	// single derivation path; zero means DefaultMaxDepth. Small values make
	// recursive grammars terminate quickly at the cost of missing deep
	// derivations.
	MaxDepth int
	// MaxStar bounds how many times a starred reference may repeat beyond
	// what the literal-once rule already enforces; zero means "limited only
	// by literal capacity".
	MaxStar int
	// LiteralOnce enforces the paper's rule that a literal is used at most
	// once per query. Enumerations with the rule disabled (used by the
	// ablation bench) bound starred repetitions by MaxStar or 3.
	LiteralOnce bool
	// OrderSensitive switches space counting to ordered enumeration; it only
	// affects SpaceSize, not the template set.
	OrderSensitive bool
}

func (o EnumerateOptions) withDefaults() EnumerateOptions {
	if o.TemplateCap == 0 {
		o.TemplateCap = DefaultTemplateCap
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	return o
}

// DefaultEnumerateOptions returns the options used by the platform: paper
// semantics (literal-once, order-insensitive) with the default cap.
func DefaultEnumerateOptions() EnumerateOptions {
	return EnumerateOptions{LiteralOnce: true}
}

// Enumeration is the result of enumerating a grammar's query space.
type Enumeration struct {
	// Templates are the distinct templates found, in discovery order.
	Templates []*Template
	// Capped is true when the template cap stopped the enumeration early;
	// counts are then lower bounds (the paper reports these as ">100K").
	Capped bool
	// Space is the total number of concrete queries across all templates
	// (saturating at MaxUint64).
	Space uint64
	// Tags is the total number of lexical literals defined by the grammar.
	Tags int
}

// TemplateCount returns the number of distinct templates.
func (e *Enumeration) TemplateCount() int { return len(e.Templates) }

// spaceSaturated is the single definition of the saturation condition; the
// accessors and the formatter all share it.
func spaceSaturated(space uint64) bool { return space == math.MaxUint64 }

// SpaceSaturated reports whether the space count hit the uint64 saturation
// ceiling; the count is then a lower bound, not an exact number.
func (e *Enumeration) SpaceSaturated() bool { return spaceSaturated(e.Space) }

// SaturatedSpaceLabel is how saturated space counts are reported to humans:
// the uint64 ceiling (~1.8e19) as a lower bound, never as an exact figure.
const SaturatedSpaceLabel = ">= 1.8e19 (saturated)"

// FormatSpace renders a space count for display, reporting saturated counts
// as a lower bound instead of silently misreporting MaxUint64 as exact.
func FormatSpace(space uint64) string {
	if spaceSaturated(space) {
		return SaturatedSpaceLabel
	}
	return fmt.Sprintf("%d", space)
}

// Enumerate derives the query space of the grammar: all distinct templates
// (up to the cap) and the total space size. The grammar must validate.
func (g *Grammar) Enumerate(opts EnumerateOptions) (*Enumeration, error) {
	opts = opts.withDefaults()
	norm, err := g.Normalize()
	if err != nil {
		return nil, err
	}
	classSizes := norm.LexicalClasses()

	enum := &Enumeration{Tags: len(norm.Literals())}
	seen := map[string]bool{}
	lex := map[string]bool{}
	for _, r := range norm.LexicalRules() {
		lex[r.Name] = true
	}

	// withinCapacity prunes derivation paths whose lexical reference counts
	// already exceed the literal-once capacity of a class: counts only grow
	// as expansion proceeds, so every completion would be invalid too.
	withinCapacity := func(elems []Element) bool {
		if !opts.LiteralOnce {
			return true
		}
		counts := map[string]int{}
		for _, e := range elems {
			if e.IsRef() && lex[e.Ref] && e.Kind == RefRequired {
				counts[e.Ref]++
				if counts[e.Ref] > classSizes[e.Ref] {
					return false
				}
			}
		}
		return true
	}

	// emit records one completed derivation; it returns false when the
	// template cap has been reached and the enumeration should stop.
	emit := func(elems []Element) bool {
		tpl := buildTemplate(elems)
		if opts.LiteralOnce && !fitsCapacity(tpl, classSizes) {
			return true
		}
		sig := tpl.Signature()
		if seen[sig] {
			return true
		}
		seen[sig] = true
		enum.Templates = append(enum.Templates, tpl)
		if len(enum.Templates) >= opts.TemplateCap {
			enum.Capped = true
			return false
		}
		return true
	}

	// expand walks one derivation path depth-first, expanding the first
	// non-terminal element; it returns false when the enumeration should
	// stop entirely (cap reached).
	var expand func(elems []Element, depth int) bool
	expand = func(elems []Element, depth int) bool {
		idx := -1
		for i, e := range elems {
			if e.IsRef() && !lex[e.Ref] {
				idx = i
				break
			}
			if e.IsRef() && lex[e.Ref] && e.Kind != RefRequired {
				idx = i
				break
			}
		}
		if idx < 0 {
			return emit(elems)
		}
		if depth > opts.MaxDepth {
			// Too deep: drop this derivation path but keep enumerating.
			enum.Capped = true
			return true
		}
		target := elems[idx]
		prefix := elems[:idx]
		suffix := elems[idx+1:]

		tryVariant := func(middle []Element) bool {
			v := make([]Element, 0, len(prefix)+len(middle)+len(suffix))
			v = append(v, prefix...)
			v = append(v, middle...)
			v = append(v, suffix...)
			if !withinCapacity(v) {
				return true
			}
			return expand(v, depth+1)
		}

		switch target.Kind {
		case RefOptional:
			if !tryVariant(nil) {
				return false
			}
			return tryVariant([]Element{{Ref: target.Ref, Kind: RefRequired}})
		case RefStar:
			// Zero or more required occurrences. The repetition bound is the
			// total literal capacity reachable from the referenced rule (the
			// literal-once rule caps deeper anyway) or MaxStar when literal
			// reuse is allowed.
			maxRep := norm.literalCapacity(target.Ref)
			if !opts.LiteralOnce {
				maxRep = 3
			}
			if opts.MaxStar > 0 && maxRep > opts.MaxStar {
				maxRep = opts.MaxStar
			}
			for rep := 0; rep <= maxRep; rep++ {
				middle := make([]Element, 0, rep)
				for i := 0; i < rep; i++ {
					middle = append(middle, Element{Ref: target.Ref, Kind: RefRequired})
				}
				if !tryVariant(middle) {
					return false
				}
			}
			return true
		default: // RefRequired on a structural rule
			rule := norm.Rule(target.Ref)
			for _, alt := range rule.Alternatives {
				if !tryVariant(alt.Elements) {
					return false
				}
			}
			return true
		}
	}

	start := norm.Rule(norm.Start)
	if start == nil {
		return nil, fmt.Errorf("start rule %q not defined", norm.Start)
	}
	for _, alt := range start.Alternatives {
		if !expand(alt.Elements, 0) {
			break
		}
	}

	for _, tpl := range enum.Templates {
		var c uint64
		if opts.OrderSensitive {
			c = tpl.OrderedCombinations(classSizes)
		} else {
			c = tpl.Combinations(classSizes)
		}
		enum.Space = satAdd(enum.Space, c)
	}
	return enum, nil
}

// buildTemplate collects the lexical class counts of a fully expanded
// element sequence.
func buildTemplate(elems []Element) *Template {
	tpl := &Template{Counts: map[string]int{}}
	for _, e := range elems {
		if e.IsRef() {
			tpl.Counts[e.Ref]++
		}
		tpl.Elements = append(tpl.Elements, e)
	}
	return tpl
}

// fitsCapacity reports whether the template respects the literal-once rule:
// no lexical class is referenced more often than it has literals.
func fitsCapacity(t *Template, classSizes map[string]int) bool {
	for class, occ := range t.Counts {
		if occ > classSizes[class] {
			return false
		}
	}
	return true
}

// literalCapacity returns the total number of literals reachable from the
// given rule; it bounds star repetitions under the literal-once rule.
func (g *Grammar) literalCapacity(name string) int {
	seen := map[string]bool{}
	var walk func(string) int
	walk = func(n string) int {
		if seen[n] {
			return 0
		}
		seen[n] = true
		r := g.Rule(n)
		if r == nil {
			return 0
		}
		if r.IsLexical() {
			return len(r.Literals())
		}
		total := 0
		for _, a := range r.Alternatives {
			for _, ref := range a.References() {
				total += walk(ref)
			}
		}
		return total
	}
	cap := walk(name)
	if cap < 1 {
		return 1
	}
	return cap
}

// SpaceSummary is the per-grammar row of the paper's Table 2: number of
// lexical tags, number of distinct templates and total space size.
type SpaceSummary struct {
	Tags      int
	Templates int
	Space     uint64
	Capped    bool
}

// Saturated reports that Space hit the uint64 ceiling and is a lower bound;
// display layers must not print it as an exact count (FormatSpace handles
// this).
func (s SpaceSummary) Saturated() bool { return spaceSaturated(s.Space) }

// String renders the summary the way the paper prints it: capped entries are
// shown as ">cap –", saturated spaces as a lower bound.
func (s SpaceSummary) String() string {
	if s.Capped {
		return fmt.Sprintf("%d >%d –", s.Tags, s.Templates)
	}
	return fmt.Sprintf("%d %d %s", s.Tags, s.Templates, FormatSpace(s.Space))
}

// Space computes the space summary of the grammar with the given options.
func (g *Grammar) Space(opts EnumerateOptions) (SpaceSummary, error) {
	enum, err := g.Enumerate(opts)
	if err != nil {
		return SpaceSummary{}, err
	}
	return SpaceSummary{
		Tags:      enum.Tags,
		Templates: enum.TemplateCount(),
		Space:     enum.Space,
		Capped:    enum.Capped,
	}, nil
}
