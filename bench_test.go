// Benchmarks that regenerate every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each benchmark
// prepares its workload outside the timed loop and reports the headline
// numbers of the corresponding artefact through b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the paper's story end to end:
//
//	Table 1   BenchmarkTable1TPCSurvey
//	Table 2   BenchmarkTable2QuerySpace
//	Figure 1  BenchmarkFigure1SampleGrammar
//	Figure 2  BenchmarkFigure2DominantComponents
//	Figure 3  BenchmarkFigure3Speedup
//	Figure 4  BenchmarkFigure4Differentials
//	Figure 5  BenchmarkFigure5GrammarPage
//	Figure 6  BenchmarkFigure6PoolPage
//	Figure 7  BenchmarkFigure7ExperimentHistory
//	ablations BenchmarkAblation*
//	substrate BenchmarkEnginesTPCH, BenchmarkParadigmsScanAggregation
package sqalpel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sqalpel/internal/analytics"
	"sqalpel/internal/core"
	"sqalpel/internal/datagen"
	"sqalpel/internal/derive"
	"sqalpel/internal/discriminative"
	"sqalpel/internal/engine"
	"sqalpel/internal/grammar"
	"sqalpel/internal/metrics"
	"sqalpel/internal/plan"
	"sqalpel/internal/pool"
	"sqalpel/internal/server"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/tpcsurvey"
	"sqalpel/internal/trace"
	"sqalpel/internal/vexec"
	"sqalpel/internal/workload"
)

// --- shared fixtures ---------------------------------------------------------

var (
	tpchSmallOnce sync.Once
	tpchSmall     *engine.Database // SF 0.005, the "1x" instance
	tpchLargeOnce sync.Once
	tpchLarge     *engine.Database // SF 0.05, the "10x" instance
)

func smallTPCH() *engine.Database {
	tpchSmallOnce.Do(func() {
		tpchSmall = datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.005, Seed: 11})
	})
	return tpchSmall
}

func largeTPCH() *engine.Database {
	tpchLargeOnce.Do(func() {
		tpchLarge = datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.05, Seed: 11})
	})
	return tpchLarge
}

// q1Project builds a measured Q1 project on the given database with both
// engines as targets; it is the workhorse behind the Figure 2/3/4/7 benches.
func q1Project(b *testing.B, db *engine.Database, runs int) *core.Project {
	b.Helper()
	q1, _ := workload.TPCHQuery("Q1")
	project, err := core.NewProject("q1", q1.SQL, core.ProjectOptions{Runs: runs, Pool: pool.Options{Seed: 17}})
	if err != nil {
		b.Fatal(err)
	}
	project.AddEngineTarget("columba-1.0", engine.NewColEngine(), db)
	project.AddEngineTarget("tuplestore-1.0", engine.NewRowEngine(), db)
	if err := project.SeedPool(10); err != nil {
		b.Fatal(err)
	}
	project.GrowPool(10)
	if err := project.MeasureAll(); err != nil {
		b.Fatal(err)
	}
	return project
}

// --- Table 1 -------------------------------------------------------------------

// BenchmarkTable1TPCSurvey regenerates the TPC benchmark census of Table 1.
func BenchmarkTable1TPCSurvey(b *testing.B) {
	var rendered string
	for i := 0; i < b.N; i++ {
		rendered = tpcsurvey.Render()
	}
	if !strings.Contains(rendered, "TPC-C") {
		b.Fatal("census rendering broken")
	}
	b.ReportMetric(float64(tpcsurvey.TotalReports()), "reports")
	b.ReportMetric(float64(len(tpcsurvey.BenchmarksWithoutResults())), "benchmarks_without_results")
}

// --- Table 2 -------------------------------------------------------------------

// BenchmarkTable2QuerySpace regenerates the TPC-H query-space table: for each
// of the 22 queries the baseline is converted into a grammar and its space is
// enumerated. The per-query sub-benchmarks report the tag, template and space
// counts the paper tabulates.
func BenchmarkTable2QuerySpace(b *testing.B) {
	enumOpts := grammar.EnumerateOptions{TemplateCap: grammar.DefaultTemplateCap, LiteralOnce: true}
	for _, id := range workload.TPCHIDs() {
		q, _ := workload.TPCHQuery(id)
		b.Run(id, func(b *testing.B) {
			var sum grammar.SpaceSummary
			var err error
			for i := 0; i < b.N; i++ {
				sum, err = derive.Summary(q.SQL, derive.DefaultOptions(), enumOpts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sum.Tags), "tags")
			b.ReportMetric(float64(sum.Templates), "templates")
			if sum.Capped {
				b.ReportMetric(1, "capped")
			} else {
				b.ReportMetric(float64(sum.Space), "space")
			}
		})
	}
}

// --- Figure 1 ------------------------------------------------------------------

// BenchmarkFigure1SampleGrammar parses the paper's sample grammar, checks it,
// enumerates its space and generates concrete sentences from it.
func BenchmarkFigure1SampleGrammar(b *testing.B) {
	var space grammar.SpaceSummary
	for i := 0; i < b.N; i++ {
		g, err := grammar.Parse(workload.NationSampleGrammar)
		if err != nil {
			b.Fatal(err)
		}
		if rep := g.Check(); !rep.OK() {
			b.Fatalf("grammar not clean: %v", rep)
		}
		space, err = g.Space(grammar.DefaultEnumerateOptions())
		if err != nil {
			b.Fatal(err)
		}
		gen, err := grammar.NewGenerator(g, grammar.GeneratorOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gen.Generate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(space.Templates), "templates")
	b.ReportMetric(float64(space.Space), "space")
}

// --- Figure 2 ------------------------------------------------------------------

// BenchmarkFigure2DominantComponents reproduces the dominant-component
// analysis: Q1 variants are measured on the column engine and the marginal
// cost of every lexical term is computed. The paper's observation is that the
// sum_charge expression (two multiplications with overflow-guarding casts) is
// by far the most expensive component; the benchmark reports its rank and its
// marginal cost relative to the mean term.
func BenchmarkFigure2DominantComponents(b *testing.B) {
	// Build a Q1 pool whose variants differ mostly in projection terms
	// (prune and alter morphs), then measure every variant on the column
	// engine only — the paired-difference attribution needs exactly these
	// one-term-apart variants.
	q1, _ := workload.TPCHQuery("Q1")
	g, err := derive.FromSQL(q1.SQL, derive.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	pl, err := pool.New(g, pool.Options{Seed: 29, Steering: pool.Steering{
		Strategies: []pool.Strategy{pool.StrategyPrune, pool.StrategyAlter},
	}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pl.SeedRandom(6); err != nil {
		b.Fatal(err)
	}
	pl.Grow(24)
	target := &core.EngineTarget{Engine: engine.NewColEngine(), DB: smallTPCH(), Timeout: time.Minute}
	var runs []analytics.Run
	for _, e := range pl.Entries() {
		m := metrics.Measure(target, e.SQL, metrics.Options{Runs: 2})
		var terms []string
		for _, lits := range e.Sentence().Literals {
			for _, l := range lits {
				terms = append(terms, l.Text)
			}
		}
		run := analytics.Run{
			QueryID: e.ID, SQL: e.SQL, Strategy: string(e.Strategy), ParentID: e.ParentID,
			Components: e.Components, Terms: terms, Target: "columba-1.0",
		}
		if m.Failed() {
			run.Error = m.Err
		} else {
			run.Seconds = m.Min().Seconds()
		}
		runs = append(runs, run)
	}
	b.ResetTimer()
	var comps []analytics.Component
	for i := 0; i < b.N; i++ {
		comps = analytics.Components(runs, "columba-1.0")
	}
	b.StopTimer()
	if len(comps) == 0 {
		b.Fatal("no components")
	}
	rank := -1
	for i, c := range comps {
		if strings.Contains(c.Term, "sum_charge") {
			rank = i + 1
			break
		}
	}
	if rank < 0 {
		b.Fatal("sum_charge term not present in the analysis")
	}
	b.ReportMetric(float64(rank), "sum_charge_rank")
	b.ReportMetric(comps[0].Delta*1000, "dominant_delta_ms")
}

// --- Figure 3 ------------------------------------------------------------------

// BenchmarkFigure3Speedup reproduces the relative-speedup figure: the Q1
// variants are measured on the column engine over a small instance and an
// instance ten times larger; the per-variant slowdown factors and their
// spread around the baseline query's factor are reported.
func BenchmarkFigure3Speedup(b *testing.B) {
	q1, _ := workload.TPCHQuery("Q1")
	project, err := core.NewProject("q1-scale", q1.SQL, core.ProjectOptions{Runs: 2, Pool: pool.Options{Seed: 23}})
	if err != nil {
		b.Fatal(err)
	}
	project.AddEngineTarget("sf1", engine.NewColEngine(), smallTPCH())
	project.AddEngineTarget("sf10", engine.NewColEngine(), largeTPCH())
	if err := project.SeedPool(8); err != nil {
		b.Fatal(err)
	}
	project.GrowPool(8)
	if err := project.MeasureAll(); err != nil {
		b.Fatal(err)
	}
	runs := project.Runs()
	b.ResetTimer()
	var sum analytics.SpeedupSummary
	for i := 0; i < b.N; i++ {
		sum = analytics.Speedup(runs, "sf1", "sf10")
	}
	b.StopTimer()
	if len(sum.Points) == 0 {
		b.Fatal("no speedup points")
	}
	b.ReportMetric(sum.BaselineFactor, "baseline_factor")
	b.ReportMetric(sum.Min, "min_factor")
	b.ReportMetric(sum.Median, "median_factor")
	b.ReportMetric(sum.Max, "max_factor")
	b.ReportMetric(float64(len(sum.Points)), "variants")
}

// --- Figure 4 ------------------------------------------------------------------

// BenchmarkFigure4Differentials reproduces the query-differential page: the
// syntactic difference between the baseline Q1 and one of its pruned variants
// plus the per-system timings.
func BenchmarkFigure4Differentials(b *testing.B) {
	project := q1Project(b, smallTPCH(), 2)
	runs := project.Runs()
	// Pick the baseline and the first morphed variant.
	other := 0
	for _, e := range project.Pool().Entries() {
		if e.ID != 1 {
			other = e.ID
			break
		}
	}
	b.ResetTimer()
	var d analytics.Differential
	var err error
	for i := 0; i < b.N; i++ {
		d, err = analytics.Diff(runs, 1, other)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(d.OnlyA)+len(d.OnlyB)), "differing_tokens")
	b.ReportMetric(float64(len(d.Times)), "targets_compared")
}

// --- Figures 5, 6, 7: the platform pages ----------------------------------------

// platformFixture builds a running platform with one measured project and
// returns the base URL plus the project id.
func platformFixture(b *testing.B) (*httptest.Server, int, int) {
	b.Helper()
	srv := httptest.NewServer(server.New(server.Options{}))
	b.Cleanup(srv.Close)

	post := func(path, token string, body map[string]any) map[string]any {
		payload, _ := json.Marshal(body)
		req, _ := http.NewRequest("POST", srv.URL+path, bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set("X-Sqalpel-Token", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		out := map[string]any{}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode >= 400 {
			b.Fatalf("POST %s: %d %v", path, resp.StatusCode, out)
		}
		return out
	}

	token := post("/api/register", "", map[string]any{"nickname": "bench", "email": "bench@example.org"})["token"].(string)
	created := post("/api/projects", token, map[string]any{"name": "bench-project", "public": true})
	pid := int(created["project"].(map[string]any)["id"].(float64))
	key := created["key"].(string)
	exp := post(fmt.Sprintf("/api/projects/%d/experiments", pid), token, map[string]any{
		"title": "nation", "baseline_sql": workload.NationBaselineQuery, "seed_random": 6,
	})
	eid := int(exp["experiment_id"].(float64))

	// Contribute results through the driver protocol using a real engine.
	db := smallTPCH()
	target := &core.EngineTarget{Engine: engine.NewColEngine(), DB: db, Timeout: 10 * time.Second}
	for {
		resp := post("/api/task/request", "", map[string]any{
			"key": key, "experiment_id": eid, "dbms": "columba-1.0", "platform": "laptop",
		})
		if _, ok := resp["id"]; !ok {
			break
		}
		taskID := int(resp["id"].(float64))
		sql := resp["sql"].(string)
		start := time.Now()
		_, _, err := target.Run(sql)
		secs := time.Since(start).Seconds()
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		post("/api/task/complete", "", map[string]any{
			"key": key, "task_id": taskID, "seconds": []float64{secs}, "error": errMsg,
		})
	}
	return srv, pid, eid
}

func fetch(b *testing.B, url string) string {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(data)
}

// BenchmarkFigure5GrammarPage renders the "query sqalpel" page: the baseline
// query and its derived grammar.
func BenchmarkFigure5GrammarPage(b *testing.B) {
	srv, pid, eid := platformFixture(b)
	url := fmt.Sprintf("%s/projects/%d/experiments/%d/grammar", srv.URL, pid, eid)
	b.ResetTimer()
	var page string
	for i := 0; i < b.N; i++ {
		page = fetch(b, url)
	}
	if !strings.Contains(page, "Derived grammar") {
		b.Fatal("grammar page incomplete")
	}
	b.ReportMetric(float64(len(page)), "page_bytes")
}

// BenchmarkFigure6PoolPage renders the query-pool page with its strategy
// colour coding.
func BenchmarkFigure6PoolPage(b *testing.B) {
	srv, pid, eid := platformFixture(b)
	url := fmt.Sprintf("%s/projects/%d/experiments/%d/pool", srv.URL, pid, eid)
	b.ResetTimer()
	var page string
	for i := 0; i < b.N; i++ {
		page = fetch(b, url)
	}
	if !strings.Contains(page, "Query pool") {
		b.Fatal("pool page incomplete")
	}
	b.ReportMetric(float64(strings.Count(page, "<tr>")), "pool_rows")
}

// BenchmarkFigure7ExperimentHistory reproduces the experiment-history figure:
// per-query execution times annotated with the morph action, the provenance
// edge and the component count, with failed queries flagged as errors.
func BenchmarkFigure7ExperimentHistory(b *testing.B) {
	project := q1Project(b, smallTPCH(), 2)
	runs := project.Runs()
	b.ResetTimer()
	var points []analytics.HistoryPoint
	for i := 0; i < b.N; i++ {
		points = analytics.History(runs, "columba-1.0")
	}
	b.StopTimer()
	if len(points) == 0 {
		b.Fatal("empty history")
	}
	morphs, errors := 0, 0
	for _, p := range points {
		if p.ParentID != 0 {
			morphs++
		}
		if p.IsError {
			errors++
		}
	}
	b.ReportMetric(float64(len(points)), "queries")
	b.ReportMetric(float64(morphs), "morphed_queries")
	b.ReportMetric(float64(errors), "error_queries")
}

// --- substrate: the two engines on the TPC-H power run ---------------------------

// BenchmarkEnginesTPCH runs all 22 TPC-H queries on each engine; the
// per-engine wall-clock comparison is the raw material every discriminative
// experiment builds on. The power run uses a smaller instance than the
// figure benchmarks so the correlated sub-query queries stay affordable.
func BenchmarkEnginesTPCH(b *testing.B) {
	db := datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.002, Seed: 11})
	engines := []engine.Engine{
		engine.NewRowEngine(),
		engine.NewColEngine(),
		engine.NewColEngineWithOptions(engine.ColEngineOptions{Version: "2.0", DisableGuardCasts: true}),
		engine.NewVektorEngine(),
		engine.NewVektorEngineWithOptions(engine.VektorOptions{Version: "2.0", BatchSize: 4096}),
		engine.NewFusilEngine(),
	}
	for _, eng := range engines {
		eng := eng
		b.Run(engine.EngineKey(eng.Name(), eng.Version()), func(b *testing.B) {
			opts := engine.ExecOptions{Timeout: time.Minute}
			for i := 0; i < b.N; i++ {
				for _, q := range workload.TPCH() {
					if _, err := eng.Execute(db, q.SQL, opts); err != nil {
						b.Fatalf("%s: %v", q.ID, err)
					}
				}
			}
		})
	}
}

// BenchmarkTraceOverhead quantifies the per-operator tracing seam. The
// "seam-disabled" sub-benchmark drives the exact operations an operator
// performs when no tracer is installed — nil-tracer span lookup, Timer
// start/stop, delta merge — and must report 0 B/op and 0 allocs/op: that is
// the zero-cost contract the engines rely on to leave tracing compiled in.
// The query sub-benchmarks measure a full vektor Q6 with tracing off and on;
// their difference is the price of -trace, recorded in EXPERIMENTS.md.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("seam-disabled", func(b *testing.B) {
		var tr *trace.Tracer
		opID := trace.ScanID("", 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Span(opID, trace.KindScan)
			tm := sp.Start()
			tm.Done(1024)
			sp.Merge(trace.SpanDelta{WallNS: 5, Rows: 1024, Batches: 1})
		}
	})

	db := smallTPCH()
	q6, _ := workload.TPCHQuery("Q6")
	eng := engine.NewVektorEngine()
	b.Run("query-disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Execute(db, q6.SQL, engine.ExecOptions{Timeout: time.Minute}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := trace.NewTracer()
			if _, err := eng.Execute(db, q6.SQL, engine.ExecOptions{Timeout: time.Minute, Tracer: tr}); err != nil {
				b.Fatal(err)
			}
			if qt := tr.Trace("vektor-1.0"); len(qt.Spans) == 0 {
				b.Fatal("traced execution produced no spans")
			}
		}
	})
}

// BenchmarkEnginesQ1 isolates the paper's flagship query on both engines and
// on the improved column-engine release (the guard-cast ablation at the
// engine level).
func BenchmarkEnginesQ1(b *testing.B) {
	db := smallTPCH()
	q1, _ := workload.TPCHQuery("Q1")
	engines := []engine.Engine{
		engine.NewRowEngine(),
		engine.NewColEngine(),
		engine.NewColEngineWithOptions(engine.ColEngineOptions{Version: "2.0", DisableGuardCasts: true}),
		engine.NewVektorEngine(),
	}
	for _, eng := range engines {
		eng := eng
		b.Run(engine.EngineKey(eng.Name(), eng.Version()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Execute(db, q1.SQL, engine.ExecOptions{Timeout: time.Minute}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanCache quantifies the shared logical-plan layer: the same
// query executed with the plan cache on (front end paid once, repetitions
// reuse the plan) versus re-parsed and re-analyzed on every execution — the
// pre-plan behaviour. The instance is deliberately tiny so the front-end
// share of the measurement is visible; Q19's OR-of-conjuncts predicate makes
// it the analysis-heaviest TPC-H query. A third sub-benchmark isolates the
// pure front-end cost per execution.
func BenchmarkPlanCache(b *testing.B) {
	db := datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.0002, Seed: 11})
	q19, _ := workload.TPCHQuery("Q19")
	opts := engine.ExecOptions{Timeout: time.Minute}

	b.Run("cached", func(b *testing.B) {
		eng := engine.NewColEngine()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Execute(db, q19.SQL, opts); err != nil {
				b.Fatal(err)
			}
		}
		if pc, ok := eng.(engine.PlanCached); ok {
			_, misses := pc.PlanCacheStats()
			b.ReportMetric(float64(misses), "plans_built")
		}
	})
	b.Run("replan-every-run", func(b *testing.B) {
		eng := engine.NewColEngine()
		eng.(engine.PlanCached).SetPlanCache(nil)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Execute(db, q19.SQL, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("frontend-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Build(db, q19.SQL); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParadigmsScanAggregation compares the four execution paradigms
// head to head on the scan-heavy aggregation queries the vectorized engine
// is built for (TPC-H Q1 and Q6 plus SSB Q1.1): tuple-at-a-time
// interpretation, column-at-a-time interpretation with materialised boxed
// intermediates, batch-vectorized execution over typed vectors with
// selection vectors, and compiled execution through fused closure
// pipelines. The per-paradigm speedup over columba is the headline number
// of the vektor subsystem.
func BenchmarkParadigmsScanAggregation(b *testing.B) {
	tpch := smallTPCH()
	ssb := datagen.SSB(datagen.SSBOptions{ScaleFactor: 0.002})
	q1, _ := workload.TPCHQuery("Q1")
	q6, _ := workload.TPCHQuery("Q6")
	var ssbQ11 workload.Query
	for _, q := range workload.SSB() {
		if q.ID == "SSB-Q1.1" {
			ssbQ11 = q
		}
	}
	cases := []struct {
		name string
		db   *engine.Database
		sql  string
	}{
		{"TPCH-Q1", tpch, q1.SQL},
		{"TPCH-Q6", tpch, q6.SQL},
		{"SSB-Q1.1", ssb, ssbQ11.SQL},
	}
	paradigms := []struct {
		name string
		eng  engine.Engine
	}{
		{"tuple-at-a-time", engine.NewRowEngine()},
		{"column-at-a-time", engine.NewColEngine()},
		{"batch-vectorized", engine.NewVektorEngine()},
		{"compiled", engine.NewFusilEngine()},
	}
	for _, tc := range cases {
		for _, p := range paradigms {
			tc, p := tc, p
			b.Run(tc.name+"/"+p.name, func(b *testing.B) {
				var rows int
				for i := 0; i < b.N; i++ {
					res, err := p.eng.Execute(tc.db, tc.sql, engine.ExecOptions{Timeout: time.Minute})
					if err != nil {
						b.Fatal(err)
					}
					rows = res.NumRows()
				}
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// --- vexec hash paths -------------------------------------------------------------

// vexecBenchCatalog is a typed vexec catalog (also implementing the planner's
// schema view) with a fact table f(ik int, sk string, v float) and a dimension
// table d(ik int, sk string, dv int); ik/sk cycle over `dims` distinct keys.
type vexecBenchCatalog map[string]*vexec.Table

func (c vexecBenchCatalog) VTable(name string) (*vexec.Table, error) {
	if t, ok := c[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("unknown table %q", name)
}

func (c vexecBenchCatalog) TableColumns(name string) ([]string, bool) {
	t, ok := c[name]
	if !ok {
		return nil, false
	}
	out := make([]string, len(t.Cols))
	for i, col := range t.Cols {
		out[i] = col.Name
	}
	return out, true
}

func newVexecBenchCatalog(rows, dims int) vexecBenchCatalog {
	ik := vexec.NewVector(vexec.KindInt, rows)
	sk := vexec.NewVector(vexec.KindString, rows)
	v := vexec.NewVector(vexec.KindFloat, rows)
	for i := 0; i < rows; i++ {
		ik.Ints[i] = int64(i % dims)
		sk.Strs[i] = fmt.Sprintf("key-%d", i%dims)
		v.Floats[i] = float64(i) / 3
	}
	dik := vexec.NewVector(vexec.KindInt, dims)
	dsk := vexec.NewVector(vexec.KindString, dims)
	dv := vexec.NewVector(vexec.KindInt, dims)
	for i := 0; i < dims; i++ {
		dik.Ints[i] = int64(i)
		dsk.Strs[i] = fmt.Sprintf("key-%d", i)
		dv.Ints[i] = int64(i * 7)
	}
	return vexecBenchCatalog{
		"f": vexec.NewTable("f",
			vexec.TableColumn{Name: "ik", Vec: ik},
			vexec.TableColumn{Name: "sk", Vec: sk},
			vexec.TableColumn{Name: "v", Vec: v},
		),
		"d": vexec.NewTable("d",
			vexec.TableColumn{Name: "ik", Vec: dik},
			vexec.TableColumn{Name: "sk", Vec: dsk},
			vexec.TableColumn{Name: "dv", Vec: dv},
		),
	}
}

// BenchmarkVexecHashPaths isolates the hash-heavy vexec operators — hash
// join, hash aggregation and DISTINCT — on single-int, single-string and
// compound keys. The typed single-key paths hash unboxed vector payloads
// directly; the compound path encodes rows into a reusable byte buffer. The
// allocation counts are the headline numbers: none of the paths builds a
// per-row string key. Plans are prebuilt so the loop measures pure execution.
func BenchmarkVexecHashPaths(b *testing.B) {
	cat := newVexecBenchCatalog(20000, 400)
	cases := []struct {
		name string
		sql  string
	}{
		{"join/typed-int", "SELECT count(*) FROM f, d WHERE f.ik = d.ik"},
		{"join/typed-string", "SELECT count(*) FROM f, d WHERE f.sk = d.sk"},
		{"join/compound", "SELECT count(*) FROM f, d WHERE f.ik = d.ik AND f.sk = d.sk"},
		{"agg/typed-int", "SELECT ik, count(*), sum(v) FROM f GROUP BY ik"},
		{"agg/typed-string", "SELECT sk, count(*) FROM f GROUP BY sk"},
		{"agg/compound", "SELECT ik, sk, count(*) FROM f GROUP BY ik, sk"},
		{"distinct/typed-int", "SELECT DISTINCT ik FROM f"},
		{"distinct/compound", "SELECT DISTINCT ik, sk FROM f"},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			stmt, err := sqlparser.Parse(tc.sql)
			if err != nil {
				b.Fatal(err)
			}
			p, err := plan.BuildStmt(cat, stmt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vexec.ExecutePlan(cat, p, vexec.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVexecParallelism measures morsel-driven intra-query parallelism
// on a scan-heavy aggregation and a fact-dimension join at 1, 2, 4 and 8
// morsel workers. The results are bit-identical at every worker count (the
// morsel merges replay the serial order), so the sub-benchmark wall-clocks
// divide directly into the scaling column of EXPERIMENTS.md.
func BenchmarkVexecParallelism(b *testing.B) {
	cat := newVexecBenchCatalog(200000, 1000)
	for _, tc := range []struct {
		name string
		sql  string
	}{
		{"agg", "SELECT ik, count(*), sum(v), avg(v) FROM f WHERE v > 100 GROUP BY ik"},
		{"join", "SELECT count(*), sum(f.v) FROM f, d WHERE f.ik = d.ik AND d.dv > 70"},
	} {
		stmt, err := sqlparser.Parse(tc.sql)
		if err != nil {
			b.Fatal(err)
		}
		p, err := plan.BuildStmt(cat, stmt)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := vexec.ExecutePlan(cat, p, vexec.Options{Parallelism: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStringEncodings isolates the storage-encoding fast paths of the
// typed data layer: string equality, prefix LIKE and IN over a
// low-cardinality dictionary-encoded key (the predicates evaluate on
// integer codes, not strings), a dictionary-keyed group-by, and selective
// range scans over a clustered column where zone maps prove most blocks
// unsatisfiable and the scan never reads them. Plans are prebuilt so the
// loop measures pure execution; allocation counts are reported because the
// scan-frame reuse and code-domain predicates are allocation ablations too.
func BenchmarkStringEncodings(b *testing.B) {
	cat := newVexecBenchCatalog(200000, 64)
	cases := []struct {
		name string
		sql  string
	}{
		{"filter/string-eq", "SELECT count(*) FROM f WHERE sk = 'key-7'"},
		{"filter/like-prefix", "SELECT count(*) FROM f WHERE sk LIKE 'key-1%'"},
		{"filter/in-list", "SELECT count(*) FROM f WHERE sk IN ('key-3', 'key-5', 'key-9')"},
		{"agg/dict-key", "SELECT sk, count(*), sum(v) FROM f GROUP BY sk"},
		{"zonescan/narrow", "SELECT count(*), sum(v) FROM f WHERE v >= 33000 AND v < 33400"},
		{"zonescan/empty", "SELECT count(*) FROM f WHERE v < -1"},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			stmt, err := sqlparser.Parse(tc.sql)
			if err != nil {
				b.Fatal(err)
			}
			p, err := plan.BuildStmt(cat, stmt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vexec.ExecutePlan(cat, p, vexec.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablations --------------------------------------------------------------------

// BenchmarkAblationLiteralOnce quantifies how much the paper's literal-once
// rule shrinks the query space compared to allowing literal repetition.
func BenchmarkAblationLiteralOnce(b *testing.B) {
	q3, _ := workload.TPCHQuery("Q3")
	g, err := derive.FromSQL(q3.SQL, derive.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var withRule, withoutRule grammar.SpaceSummary
	for i := 0; i < b.N; i++ {
		withRule, err = g.Space(grammar.EnumerateOptions{TemplateCap: 20000, LiteralOnce: true})
		if err != nil {
			b.Fatal(err)
		}
		withoutRule, err = g.Space(grammar.EnumerateOptions{TemplateCap: 20000, LiteralOnce: false})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(withRule.Templates), "templates_literal_once")
	b.ReportMetric(float64(withoutRule.Templates), "templates_repetition")
}

// BenchmarkAblationOrdered quantifies the effect of the order-insensitive
// counting the paper adopts (optimizers normalise expression lists) versus
// counting ordered variants.
func BenchmarkAblationOrdered(b *testing.B) {
	q1, _ := workload.TPCHQuery("Q1")
	g, err := derive.FromSQL(q1.SQL, derive.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var unordered, ordered grammar.SpaceSummary
	for i := 0; i < b.N; i++ {
		unordered, err = g.Space(grammar.EnumerateOptions{TemplateCap: 20000, LiteralOnce: true})
		if err != nil {
			b.Fatal(err)
		}
		ordered, err = g.Space(grammar.EnumerateOptions{TemplateCap: 20000, LiteralOnce: true, OrderSensitive: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(unordered.Space), "space_unordered")
	b.ReportMetric(float64(ordered.Space), "space_ordered")
}

// BenchmarkAblationGuidedVsRandom compares the paper's guided morphing walk
// against blind random sampling of the space: after the same number of
// measurements, how extreme is the best discriminative ratio each approach
// found between the two engines?
func BenchmarkAblationGuidedVsRandom(b *testing.B) {
	q1, _ := workload.TPCHQuery("Q1")
	db := smallTPCH()
	targets := func() map[string]*core.EngineTarget {
		return map[string]*core.EngineTarget{
			"columba-1.0":    {Engine: engine.NewColEngine(), DB: db, Timeout: 30 * time.Second},
			"tuplestore-1.0": {Engine: engine.NewRowEngine(), DB: db, Timeout: 30 * time.Second},
		}
	}

	bestRatio := func(s *discriminative.Search) float64 {
		best := 1.0
		for _, dir := range [][2]string{{"columba-1.0", "tuplestore-1.0"}, {"tuplestore-1.0", "columba-1.0"}} {
			if f := s.Better(dir[0], dir[1], 1); len(f) > 0 && f[0].Ratio > best {
				best = f[0].Ratio
			}
		}
		return best
	}

	var guidedBest, randomBest float64
	for i := 0; i < b.N; i++ {
		// Guided: seed a small pool, then let the search morph the extremes.
		guidedGrammar, err := derive.FromSQL(q1.SQL, derive.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		guidedPool, err := pool.New(guidedGrammar, pool.Options{Seed: 41})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := guidedPool.SeedRandom(5); err != nil {
			b.Fatal(err)
		}
		tg := targets()
		guidedSearch, err := discriminative.New(guidedPool, map[string]metrics.Target{
			"columba-1.0": tg["columba-1.0"], "tuplestore-1.0": tg["tuplestore-1.0"],
		}, discriminative.Options{Runs: 1, GrowPerRound: 5, TopK: 2})
		if err != nil {
			b.Fatal(err)
		}
		guidedSearch.Run("columba-1.0", "tuplestore-1.0", 3)
		guidedBest = bestRatio(guidedSearch)

		// Random: the same total number of queries, all sampled blindly.
		randomGrammar, err := derive.FromSQL(q1.SQL, derive.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		randomPool, err := pool.New(randomGrammar, pool.Options{Seed: 41})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := randomPool.SeedRandom(guidedPool.Size() - 1); err != nil {
			b.Fatal(err)
		}
		tg2 := targets()
		randomSearch, err := discriminative.New(randomPool, map[string]metrics.Target{
			"columba-1.0": tg2["columba-1.0"], "tuplestore-1.0": tg2["tuplestore-1.0"],
		}, discriminative.Options{Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		randomSearch.MeasurePending()
		randomBest = bestRatio(randomSearch)
	}
	b.ReportMetric(guidedBest, "guided_best_ratio")
	b.ReportMetric(randomBest, "random_best_ratio")
}

// BenchmarkSchedulerWorkers regenerates the serial-vs-parallel wall-clock
// table of EXPERIMENTS.md: the same TPC-H Q1 demo pool is measured on the
// three engine paradigms with 1, 2, 4 and 8 measurement workers. The pool
// and therefore the work are identical in every variant — the pool seed
// drives the walk and the scheduler only changes the fan-out — so the
// sub-benchmark wall-clocks divide directly into the speedup column.
func BenchmarkSchedulerWorkers(b *testing.B) {
	q1, _ := workload.TPCHQuery("Q1")
	db := smallTPCH()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				project, err := core.NewProject("sched-q1", q1.SQL, core.ProjectOptions{
					Runs:        1,
					Parallelism: workers,
					Timeout:     30 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				project.AddEngineTarget("columba-1.0", engine.NewColEngine(), db)
				project.AddEngineTarget("tuplestore-1.0", engine.NewRowEngine(), db)
				project.AddEngineTarget("vektor-1.0", engine.NewVektorEngine(), db)
				if err := project.SeedPool(8); err != nil {
					b.Fatal(err)
				}
				project.GrowPool(8)
				b.StartTimer()
				if err := project.MeasureAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
