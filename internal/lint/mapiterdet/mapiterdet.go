// Package mapiterdet flags ranges over Go maps in determinism-critical
// packages. Go randomises map iteration order per run, so any map range
// whose body emits into an ordered structure makes plans, traces,
// fingerprints or rankings differ run to run — the exact bug class of the
// planner's liftCommonOrConjuncts, which emitted lifted OR-common
// predicates in map order and made Q19's plan (and the EXPLAIN golden)
// flap until PR 6 fixed it by emitting in first-arm syntactic order.
//
// Two idioms are recognised as order-insensitive and allowed without
// annotation:
//
//   - set/copy building: a body consisting solely of an assignment through
//     a map index (dst[k] = v) cannot observe iteration order;
//   - collect-then-sort: a body consisting solely of s = append(s, x) is
//     allowed when the same function later passes s to a sort call —
//     the order produced by the range never escapes.
//
// Everything else needs either a refactor to sorted iteration or an inline
// //lint:ordered <reason> justification.
package mapiterdet

import (
	"go/ast"
	"go/types"

	"sqalpel/internal/lint/analysis"
	"sqalpel/internal/lint/lintutil"
)

// Markers lists the determinism-critical packages: the planner (plans feed
// the plan cache and the EXPLAIN goldens), the trace plane (span documents
// are differentially compared bit for bit), the fuzzer (fingerprints must
// be stable across runs) and the discriminative ranking (findings must not
// depend on iteration order).
var Markers = []string{
	"internal/plan",
	"internal/trace",
	"internal/fuzzdiff",
	"internal/discriminative",
}

// Token is the suppression token: //lint:ordered <reason>.
const Token = "ordered"

var Analyzer = &analysis.Analyzer{
	Name: "mapiterdet",
	Doc: "flag map iteration in determinism-critical packages (plan, trace, fuzzdiff, discriminative) " +
		"unless the body is an order-insensitive set build, a collect-then-sort, or carries //lint:ordered <reason>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PathMatchesAny(pass.Pkg.Path(), Markers...) {
		return nil, nil
	}
	sup := lintutil.NewSuppressions(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, sup, fd.Body)
		}
	}
	return nil, nil
}

// checkFunc scans one function body (function literals form their own
// scope: a sort in the enclosing function cannot bless a range inside a
// closure that escapes).
func checkFunc(pass *analysis.Pass, sup *lintutil.Suppressions, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, sup, fl.Body)
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if setBuildBody(pass, rng.Body) {
			return true
		}
		if target, ok := collectBody(rng); ok && sortedAfter(pass, body, rng, target) {
			return true
		}
		if sup.Suppressed(pass.Fset, rng.Pos(), Token) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"iteration over map %s in determinism-critical package: map order is random per run; "+
				"iterate sorted keys, sort the collected result, or annotate //lint:%s <reason>",
			lintutil.ExprString(rng.X), Token)
		return true
	})
}

// setBuildBody reports whether the body is exactly one assignment through a
// map index expression — an order-insensitive set/copy build.
func setBuildBody(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	as, ok := body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return false
	}
	idx, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[idx.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// collectBody reports whether the body is exactly s = append(s, ...) and
// returns the textual form of s.
func collectBody(rng *ast.RangeStmt) (string, bool) {
	if len(rng.Body.List) != 1 {
		return "", false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return "", false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	target := lintutil.ExprString(as.Lhs[0])
	if target != lintutil.ExprString(call.Args[0]) {
		return "", false
	}
	return target, true
}

// sortNames are the sort entry points that bless a collect-then-sort.
var sortNames = map[string][]string{
	"sort":   {"Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable"},
	"slices": {"Sort", "SortFunc", "SortStableFunc"},
}

// sortedAfter reports whether, lexically after the range statement in the
// same function body, the collected slice is passed to a sort call.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		for pkg, names := range sortNames {
			if lintutil.IsPkgCall(pass.TypesInfo, call, pkg, names...) &&
				len(call.Args) > 0 && lintutil.ExprString(call.Args[0]) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
