package lockmarshal_test

import (
	"testing"

	"sqalpel/internal/lint/analysistest"
	"sqalpel/internal/lint/lockmarshal"
)

func TestLockMarshal(t *testing.T) {
	analysistest.Run(t, "testdata", lockmarshal.Analyzer, "internal/repository")
}
