// Package sysload captures the CPU load averages the experiment driver
// reports alongside each measurement, mirroring the paper's use of the
// Linux 1/5/15-minute load averages as an indication of processor load
// during a run. On systems without /proc/loadavg a portable fallback based
// on the Go runtime is used so the reporting shape stays identical.
// Sampling is read-only and safe for concurrent use, so the scheduler's
// measurement workers can sample around overlapping runs.
package sysload

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Load is a snapshot of the system load.
type Load struct {
	// Avg1, Avg5 and Avg15 are the 1, 5 and 15 minute load averages.
	Avg1  float64
	Avg5  float64
	Avg15 float64
	// Source documents where the numbers came from: "proc" for
	// /proc/loadavg, "runtime" for the portable fallback.
	Source string
}

// String renders the load the way `uptime` does.
func (l Load) String() string {
	return fmt.Sprintf("%.2f %.2f %.2f (%s)", l.Avg1, l.Avg5, l.Avg15, l.Source)
}

// Map returns the load as the key/value pairs attached to experiment
// results.
func (l Load) Map() map[string]string {
	return map[string]string{
		"load_avg_1":  fmt.Sprintf("%.2f", l.Avg1),
		"load_avg_5":  fmt.Sprintf("%.2f", l.Avg5),
		"load_avg_15": fmt.Sprintf("%.2f", l.Avg15),
		"load_source": l.Source,
	}
}

// procLoadavgPath is a variable so tests can point it at a fixture.
var procLoadavgPath = "/proc/loadavg"

// Sample captures the current load.
func Sample() Load {
	if l, ok := fromProc(); ok {
		return l
	}
	return fromRuntime()
}

// fromProc parses /proc/loadavg when available.
func fromProc() (Load, bool) {
	data, err := os.ReadFile(procLoadavgPath)
	if err != nil {
		return Load{}, false
	}
	return ParseProcLoadavg(string(data))
}

// ParseProcLoadavg parses the /proc/loadavg format: "0.42 0.36 0.30 1/123 456".
func ParseProcLoadavg(content string) (Load, bool) {
	fields := strings.Fields(content)
	if len(fields) < 3 {
		return Load{}, false
	}
	a1, err1 := strconv.ParseFloat(fields[0], 64)
	a5, err2 := strconv.ParseFloat(fields[1], 64)
	a15, err3 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return Load{}, false
	}
	return Load{Avg1: a1, Avg5: a5, Avg15: a15, Source: "proc"}, true
}

// fromRuntime approximates load from the number of running goroutines
// relative to the number of CPUs; it keeps the reporting pipeline working on
// platforms without /proc.
func fromRuntime() Load {
	load := float64(runtime.NumGoroutine()) / float64(runtime.NumCPU())
	return Load{Avg1: load, Avg5: load, Avg15: load, Source: "runtime"}
}
