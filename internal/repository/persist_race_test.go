package repository

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sqalpel/internal/trace"
)

// sampleTrace builds a small but representative QueryTrace for persistence
// tests.
func sampleTrace(i int) *trace.QueryTrace {
	return &trace.QueryTrace{
		SchemaVersion: trace.SchemaVersion,
		Engine:        "vektor-1.0",
		Spans: []trace.Span{
			{OpID: "scan.0", Kind: trace.KindScan, WallNS: int64(1000 + i), Rows: 59986, Batches: 59},
			{OpID: "filter.0", Kind: trace.KindFilter, WallNS: int64(500 + i), Rows: 114, Batches: 59},
			{OpID: "aggregate", Kind: trace.KindAgg, WallNS: 200, Rows: 4, Calls: 1, AllocBytes: 2048},
		},
	}
}

// TestSaveConcurrentWithMutators hammers Save against the mutators that
// write through the shared *Project/*Task/*Result pointers the snapshot
// holds. Before Save marshalled under the read lock, json.MarshalIndent ran
// after RUnlock and raced with AppendQueries/AddResult/RequestTask; run
// with -race this test pins the fix.
func TestSaveConcurrentWithMutators(t *testing.T) {
	s, pub, _ := fixture(t)
	ownerKey := s.Project(pub.ID).Contributors[0].Key
	dir := t.TempDir()

	const rounds = 50
	var wg sync.WaitGroup
	wg.Add(5)

	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := s.Save(dir); err != nil {
				t.Errorf("Save: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			err := s.AppendQueries("martin", pub.ID, 1, []QueryRecord{
				{ID: 100 + i, SQL: fmt.Sprintf("SELECT %d FROM nation", i), Strategy: "random", Components: 2},
			})
			if err != nil {
				t.Errorf("AppendQueries: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := s.AddResult(ownerKey, 1, 1, "columba-1.0", "laptop", []float64{0.1}, "", map[string]string{"i": fmt.Sprint(i)}); err != nil {
				t.Errorf("AddResult: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		// Trace-bearing submissions walk the same shared *Result pointers the
		// snapshot marshals; appending them during Save exercises the
		// trace field under -race too.
		for i := 0; i < rounds; i++ {
			if _, err := s.AddResultTraced(ownerKey, 1, 1, "vektor-1.0", "laptop", []float64{0.05}, "", nil, sampleTrace(i)); err != nil {
				t.Errorf("AddResultTraced: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			// Task leasing mutates *Task fields (status, lease deadline)
			// reachable from the snapshot too.
			task, err := s.RequestTask(ownerKey, 1, "columba-1.0", "laptop")
			if err != nil {
				t.Errorf("RequestTask: %v", err)
				return
			}
			if task == nil {
				continue
			}
			if _, err := s.CompleteTask(task.ID, ownerKey, []float64{0.2}, "", nil); err != nil && err != ErrLeaseLost {
				t.Errorf("CompleteTask: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// The store must still round-trip cleanly after the stampede.
	if err := s.Save(dir); err != nil {
		t.Fatalf("final Save: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after concurrent saves: %v", err)
	}
	if loaded.Project(pub.ID) == nil {
		t.Error("loaded store lost the project")
	}
}

// TestTraceSurvivesSaveLoad pins the persistence of operator traces: a
// trace-bearing result must come back span for span after a Save/Load round
// trip, and untraced results must stay untraced.
func TestTraceSurvivesSaveLoad(t *testing.T) {
	s, pub, _ := fixture(t)
	ownerKey := s.Project(pub.ID).Contributors[0].Key
	dir := t.TempDir()

	want := sampleTrace(7)
	traced, err := s.AddResultTraced(ownerKey, 1, 1, "vektor-1.0", "laptop", []float64{0.05, 0.04}, "", nil, want)
	if err != nil {
		t.Fatal(err)
	}
	untraced, err := s.AddResult(ownerKey, 1, 1, "columba-1.0", "laptop", []float64{0.2}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var gotTraced, gotUntraced *Result
	for _, r := range loaded.Results("martin", pub.ID) {
		switch r.ID {
		case traced.ID:
			gotTraced = r
		case untraced.ID:
			gotUntraced = r
		}
	}
	if gotTraced == nil || gotUntraced == nil {
		t.Fatal("results lost in the round trip")
	}
	if gotTraced.Trace == nil {
		t.Fatal("trace lost in the round trip")
	}
	if !reflect.DeepEqual(gotTraced.Trace, want) {
		t.Errorf("trace changed in the round trip:\n got %+v\nwant %+v", gotTraced.Trace, want)
	}
	if gotUntraced.Trace != nil {
		t.Errorf("untraced result grew a trace: %+v", gotUntraced.Trace)
	}
}
