package core

import (
	"context"
	"testing"
	"time"

	"sqalpel/internal/sched"
	"sqalpel/internal/workload"
)

// TestPlanCacheUnderSchedulerParallelism drives the shared plan cache the
// way production does: a sched.Scheduler worker pool fanning measurement
// cells — the same queries across all six registry engines — out
// concurrently. Run under -race in CI, it is the scheduler-level half of
// the plan-cache concurrency satellite. Every cell must measure cleanly and
// the shared cache must have been exercised.
func TestPlanCacheUnderSchedulerParallelism(t *testing.T) {
	p, err := NewProject("plancache", workload.NationBaselineQuery, ProjectOptions{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys := p.AddRegistryTargets(smallTPCH)
	if len(keys) != 6 {
		t.Fatalf("registry targets = %d, want 6", len(keys))
	}

	queries := []string{}
	for _, id := range []string{"Q1", "Q3", "Q6", "Q14"} {
		q, qerr := workload.TPCHQuery(id)
		if qerr != nil {
			t.Fatal(qerr)
		}
		queries = append(queries, q.SQL)
	}

	s := sched.New(sched.Options{Workers: 8, Timeout: time.Minute})
	var cells []sched.Cell
	for _, sql := range queries {
		for _, key := range keys {
			cells = append(cells, sched.Cell{
				Target: key,
				Runner: p.targets[key],
				SQL:    sql,
				Runs:   2,
			})
		}
	}
	results := s.Measure(context.Background(), cells)
	for i, r := range results {
		if r.Measurement.Failed() {
			t.Errorf("cell %d (%s): %s", i, cells[i].Target, r.Measurement.Err)
		}
	}

	hits, misses := p.PlanCacheStats()
	if misses == 0 {
		t.Error("plan cache reported zero misses for a cold start")
	}
	// 4 queries × 6 engines × (2 runs + plan lookups) — everything past the
	// first lookup per query must hit the shared cache.
	if hits == 0 {
		t.Error("scheduler parallelism never hit the shared plan cache")
	}
	if misses != uint64(len(queries)) {
		t.Errorf("plans built = %d, want one per distinct query (%d)", misses, len(queries))
	}
}
