// Package repository implements the data model of the sqalpel platform: the
// GitHub-like organisation of performance projects the paper describes.
//
// It covers user registration (nickname + email, with the email never
// exposed through the API), public and private projects with owner /
// contributor / reader roles, contributor keys that identify the source of
// results without disclosing the contributor's identity, experiments with
// their grammar and query pool, the task queue, the raw results table with
// owner moderation (hide / remove suspicious results), and project
// comments.
//
// The store is sharded by project id: every project — with its experiments,
// results, comments and tasks — lives on one of N shards with its own lock
// and its own write-ahead log, while a small meta partition holds the
// global user table. Task leasing, result appends and persistence on
// different shards never contend on a shared lock.
//
// Durability is write-ahead: a store opened with Open appends a
// CRC-checksummed record of every mutation to the owning partition's log
// and syncs it to disk before the mutation returns, so a crash — at any
// instant — loses at most mutations that were never acknowledged. Open
// recovers by loading the newest valid snapshot of each partition,
// replaying the log tail, dropping a torn or corrupt trailing record
// instead of refusing to boot, and migrating a legacy single-file
// sqalpel.json store transparently. Save snapshots and compacts the logs;
// NewStore builds a purely in-memory store with the same API.
//
// The task queue (queue.go) is the distributed half of the concurrent
// measurement plane: tasks are leased — singly or in batches — with a
// deadline per lease, expired leases re-queue their query automatically,
// and late completions into an expired lease are rejected. One query /
// DBMS / platform slot therefore yields exactly one result no matter how
// many concurrent drivers drain the experiment, or how often the platform
// crashes and recovers in between. The Store is safe for concurrent use.
package repository

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqalpel/internal/trace"
)

// Role is the relationship of a user to a project.
type Role string

// Roles.
const (
	RoleOwner       Role = "owner"
	RoleContributor Role = "contributor"
	RoleReader      Role = "reader"
	RoleNone        Role = "none"
)

// User is a registered platform user.
type User struct {
	// Nickname is the unique public identifier.
	Nickname string `json:"nickname"`
	// Email is used only for legal interaction with the registered user and
	// is never exposed in the interface.
	Email   string    `json:"email"`
	Created time.Time `json:"created"`
}

// Contributor is an invitation of a user into a project, carrying the
// anonymous key the experiment driver uses to submit results.
type Contributor struct {
	Nickname string    `json:"nickname"`
	Key      string    `json:"key"`
	Invited  time.Time `json:"invited"`
}

// QueryRecord is one query of an experiment's pool as stored by the
// platform.
type QueryRecord struct {
	ID         int      `json:"id"`
	SQL        string   `json:"sql"`
	Strategy   string   `json:"strategy"`
	ParentID   int      `json:"parent_id"`
	Components int      `json:"components"`
	Terms      []string `json:"terms,omitempty"`
}

// Experiment is one experiment of a project: a baseline query, the grammar
// derived from it and the query pool.
type Experiment struct {
	ID          int           `json:"id"`
	Title       string        `json:"title"`
	BaselineSQL string        `json:"baseline_sql"`
	GrammarText string        `json:"grammar_text"`
	Queries     []QueryRecord `json:"queries"`
	Created     time.Time     `json:"created"`
}

// Query returns the query with the given id, or nil.
func (e *Experiment) Query(id int) *QueryRecord {
	for i := range e.Queries {
		if e.Queries[i].ID == id {
			return &e.Queries[i]
		}
	}
	return nil
}

// Project is a performance project.
type Project struct {
	ID int `json:"id"`
	// Name is unique across the platform.
	Name     string `json:"name"`
	Synopsis string `json:"synopsis"`
	// Attribution credits the database generator developers, as the paper
	// requires of a project synopsis.
	Attribution string `json:"attribution"`
	Owner       string `json:"owner"`
	Public      bool   `json:"public"`
	// DBMSKeys and PlatformKeys reference the global catalogs.
	DBMSKeys     []string       `json:"dbms_keys"`
	PlatformKeys []string       `json:"platform_keys"`
	Contributors []*Contributor `json:"contributors"`
	Experiments  []*Experiment  `json:"experiments"`
	Created      time.Time      `json:"created"`
}

// Experiment returns the experiment with the given id, or nil.
func (p *Project) Experiment(id int) *Experiment {
	for _, e := range p.Experiments {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// contributor returns the contributor entry of a nickname, or nil.
func (p *Project) contributor(nickname string) *Contributor {
	for _, c := range p.Contributors {
		if c.Nickname == nickname {
			return c
		}
	}
	return nil
}

// Result is one row of the raw results table.
type Result struct {
	ID           int `json:"id"`
	ProjectID    int `json:"project_id"`
	ExperimentID int `json:"experiment_id"`
	QueryID      int `json:"query_id"`
	// ContributorKey identifies the source without disclosing the identity.
	ContributorKey string `json:"contributor_key"`
	DBMSKey        string `json:"dbms_key"`
	PlatformKey    string `json:"platform_key"`
	// Seconds are the wall-clock times of the individual repetitions.
	Seconds []float64         `json:"seconds,omitempty"`
	Error   string            `json:"error,omitempty"`
	Extra   map[string]string `json:"extra,omitempty"`
	// Trace is the per-operator span tree the driver captured alongside the
	// timings; nil when the submission was measured without tracing. It
	// persists through the WAL and snapshots with the rest of the result
	// row.
	Trace *trace.QueryTrace `json:"trace,omitempty"`
	// Hidden results are only visible to the owner and contributors; the
	// owner uses this to keep dubious measurements private until clarified.
	Hidden  bool      `json:"hidden"`
	Created time.Time `json:"created"`
}

// Failed reports whether the result captured an error.
func (r *Result) Failed() bool { return r.Error != "" }

// MinSeconds returns the fastest repetition or 0.
func (r *Result) MinSeconds() float64 {
	if len(r.Seconds) == 0 {
		return 0
	}
	min := r.Seconds[0]
	for _, s := range r.Seconds[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// Comment is a registered user's remark on a project.
type Comment struct {
	ID        int       `json:"id"`
	ProjectID int       `json:"project_id"`
	Author    string    `json:"author"`
	Text      string    `json:"text"`
	Created   time.Time `json:"created"`
}

// DefaultShards is the shard count used by NewStore and by Open when the
// caller does not request a specific one.
const DefaultShards = 8

// Store is the sharded repository; it is safe for concurrent use. Projects
// are distributed over shards by id, the user table lives on a meta
// partition, and result / comment / task ids come from global atomic
// counters so ids stay unique across shards without a shared lock.
type Store struct {
	// meta partition: the global user table and project-id allocation
	// (project creation is serialised on metaMu so project names stay
	// unique across the whole platform).
	metaMu        sync.RWMutex
	users         map[string]*User
	nextProjectID int
	metaWAL       *walWriter

	shards []*shard

	nextResultID  atomic.Int64 // last assigned result id
	nextCommentID atomic.Int64 // last assigned comment id
	nextTaskID    atomic.Int64 // last assigned task id

	// persistMu serialises Save/export/checkpoint runs against each other;
	// individual partitions stay writable while the others persist.
	persistMu sync.Mutex
	// dir is the data directory of a durable store ("" for in-memory).
	dir string
	// gen is the current generation directory of a durable store.
	gen string
	// sinks opens the WAL sink for a partition log file; tests inject
	// crash-simulating sinks here.
	sinks walSinkFactory

	// TaskTimeout is the interval after which an assigned task that has not
	// reported back is considered stuck and requeued.
	TaskTimeout time.Duration

	// now allows tests to control time.
	now func() time.Time

	// logf reports recovery warnings (torn records, corrupt snapshots).
	logf func(format string, args ...any)
}

// NewStore returns an empty in-memory store with DefaultShards shards and
// no durability; use Open for a WAL-backed store.
func NewStore() *Store { return NewStoreShards(DefaultShards) }

// NewStoreShards returns an empty in-memory store with the given shard
// count (minimum 1).
func NewStoreShards(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{
		users:         map[string]*User{},
		nextProjectID: 1,
		TaskTimeout:   10 * time.Minute,
		now:           time.Now,
		logf:          defaultLogf,
		sinks:         openFileSink,
	}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, newShard(s, i))
	}
	return s
}

// Shards returns the shard count of the store.
func (s *Store) Shards() int { return len(s.shards) }

// --- users ---------------------------------------------------------------

// RegisterUser adds a user with a unique nickname and a syntactically valid
// email address.
func (s *Store) RegisterUser(nickname, email string) (*User, error) {
	nickname = strings.TrimSpace(nickname)
	if nickname == "" {
		return nil, fmt.Errorf("nickname must not be empty")
	}
	if !validEmail(email) {
		return nil, fmt.Errorf("invalid email address %q", email)
	}
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if _, exists := s.users[nickname]; exists {
		return nil, fmt.Errorf("nickname %q is already taken", nickname)
	}
	u := &User{Nickname: nickname, Email: email, Created: s.now()}
	if err := s.metaLogApply(opUser, u); err != nil {
		return nil, err
	}
	return s.users[nickname], nil
}

func validEmail(email string) bool {
	at := strings.Index(email, "@")
	if at <= 0 || at == len(email)-1 {
		return false
	}
	domain := email[at+1:]
	return strings.Contains(domain, ".") && !strings.ContainsAny(email, " \t\n")
}

// User returns the user with the given nickname, or nil.
func (s *Store) User(nickname string) *User {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	return s.users[nickname]
}

// Users returns all users sorted by nickname.
func (s *Store) Users() []*User {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	out := make([]*User, 0, len(s.users))
	for _, u := range s.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nickname < out[j].Nickname })
	return out
}

// --- projects and access control ------------------------------------------

// CreateProject creates a project owned by the given user. Creation is
// serialised on the meta partition so the platform-wide name-uniqueness
// check and the project-id allocation stay race-free across shards.
func (s *Store) CreateProject(owner, name, synopsis string, public bool) (*Project, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("project name must not be empty")
	}
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if s.users[owner] == nil {
		return nil, fmt.Errorf("unknown user %q", owner)
	}
	// Lock order is always meta before shard, so scanning the shards while
	// holding metaMu cannot deadlock.
	for _, sh := range s.shards {
		sh.mu.RLock()
		dup := sh.projectByNameLocked(name)
		sh.mu.RUnlock()
		if dup != nil {
			return nil, fmt.Errorf("project name %q is already taken", name)
		}
	}
	p := &Project{
		ID:       s.nextProjectID,
		Name:     name,
		Synopsis: synopsis,
		Owner:    owner,
		Public:   public,
		Created:  s.now(),
	}
	// The owner is implicitly also a contributor with a key.
	p.Contributors = append(p.Contributors, &Contributor{Nickname: owner, Key: newKey(), Invited: s.now()})
	sh := s.shardFor(p.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.logApply(opProject, p); err != nil {
		return nil, err
	}
	s.nextProjectID++
	return sh.projects[p.ID], nil
}

// newKey generates a contributor key.
func newKey() string {
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		// crypto/rand failing is unrecoverable for key generation.
		panic(err)
	}
	return hex.EncodeToString(buf)
}

// Project returns the project with the given id, or nil.
func (s *Store) Project(id int) *Project {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.projects[id]
}

// ProjectByName returns the project with the given name, or nil.
func (s *Store) ProjectByName(name string) *Project {
	for _, sh := range s.shards {
		sh.mu.RLock()
		p := sh.projectByNameLocked(name)
		sh.mu.RUnlock()
		if p != nil {
			return p
		}
	}
	return nil
}

// RoleOf returns the viewer's role for a project. Unregistered or unrelated
// users get RoleReader on public projects and RoleNone on private ones.
func (s *Store) RoleOf(nickname string, projectID int) Role {
	sh := s.shardFor(projectID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.roleOfLocked(nickname, projectID)
}

// CanView reports whether the viewer may read the project description and
// visible results.
func (s *Store) CanView(nickname string, projectID int) bool {
	return s.RoleOf(nickname, projectID) != RoleNone
}

// CanContribute reports whether the user may submit results.
func (s *Store) CanContribute(nickname string, projectID int) bool {
	r := s.RoleOf(nickname, projectID)
	return r == RoleOwner || r == RoleContributor
}

// IsOwner reports whether the user moderates the project.
func (s *Store) IsOwner(nickname string, projectID int) bool {
	return s.RoleOf(nickname, projectID) == RoleOwner
}

// Projects returns the projects visible to the viewer, sorted by id.
func (s *Store) Projects(viewer string) []*Project {
	var out []*Project
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, p := range sh.projects {
			if sh.roleOfLocked(viewer, id) != RoleNone {
				out = append(out, p)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetVisibility switches a project between public and private; only the
// owner may do this.
func (s *Store) SetVisibility(requester string, projectID int, public bool) error {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.roleOfLocked(requester, projectID) != RoleOwner {
		return fmt.Errorf("only the project owner can change visibility")
	}
	return sh.logApply(opVisibility, walVisibility{ProjectID: projectID, Public: public})
}

// UpdateSynopsis updates the project synopsis and attribution; owner only.
func (s *Store) UpdateSynopsis(requester string, projectID int, synopsis, attribution string) error {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.roleOfLocked(requester, projectID) != RoleOwner {
		return fmt.Errorf("only the project owner can edit the synopsis")
	}
	return sh.logApply(opSynopsis, walSynopsis{ProjectID: projectID, Synopsis: synopsis, Attribution: attribution})
}

// ReferenceCatalogs records which DBMS and platform catalog entries the
// project uses; owner only.
func (s *Store) ReferenceCatalogs(requester string, projectID int, dbmsKeys, platformKeys []string) error {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.roleOfLocked(requester, projectID) != RoleOwner {
		return fmt.Errorf("only the project owner can edit catalog references")
	}
	return sh.logApply(opCatalogs, walCatalogs{
		ProjectID:    projectID,
		DBMSKeys:     append([]string(nil), dbmsKeys...),
		PlatformKeys: append([]string(nil), platformKeys...),
	})
}

// Invite adds a registered user as contributor and returns the contributor
// key to hand to them. There is no limit on the number of contributors.
func (s *Store) Invite(requester string, projectID int, nickname string) (string, error) {
	if s.User(nickname) == nil {
		return "", fmt.Errorf("unknown user %q", nickname)
	}
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.roleOfLocked(requester, projectID) != RoleOwner {
		return "", fmt.Errorf("only the project owner can invite contributors")
	}
	p := sh.projects[projectID]
	if c := p.contributor(nickname); c != nil {
		//lint:acked idempotent re-invite: the contributor already exists durably; no state changes
		return c.Key, nil
	}
	c := &Contributor{Nickname: nickname, Key: newKey(), Invited: s.now()}
	if err := sh.logApply(opInvite, walInvite{ProjectID: projectID, Contributor: c}); err != nil {
		return "", err
	}
	return c.Key, nil
}

// FindContributor resolves a contributor key to its project and nickname.
func (s *Store) FindContributor(key string) (*Project, string, error) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, p := range sh.projects {
			for _, c := range p.Contributors {
				if c.Key == key {
					sh.mu.RUnlock()
					return p, c.Nickname, nil
				}
			}
		}
		sh.mu.RUnlock()
	}
	return nil, "", fmt.Errorf("unknown contributor key")
}

// --- experiments and the query pool ----------------------------------------

// AddExperiment adds an experiment to a project; owner only.
func (s *Store) AddExperiment(requester string, projectID int, title, baselineSQL, grammarText string) (*Experiment, error) {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.roleOfLocked(requester, projectID) != RoleOwner {
		return nil, fmt.Errorf("only the project owner can add experiments")
	}
	p := sh.projects[projectID]
	e := &Experiment{
		ID:          len(p.Experiments) + 1,
		Title:       title,
		BaselineSQL: baselineSQL,
		GrammarText: grammarText,
		Created:     s.now(),
	}
	if err := sh.logApply(opExperiment, walExperiment{ProjectID: projectID, Experiment: e}); err != nil {
		return nil, err
	}
	return p.Experiment(e.ID), nil
}

// ReplaceQueries replaces the query pool snapshot of an experiment; owner
// only (the owner moderates pool growth).
func (s *Store) ReplaceQueries(requester string, projectID, experimentID int, queries []QueryRecord) error {
	return s.updateQueries(opQueriesReplace, requester, projectID, experimentID, queries)
}

// AppendQueries appends new queries to the pool snapshot; owner only.
func (s *Store) AppendQueries(requester string, projectID, experimentID int, queries []QueryRecord) error {
	return s.updateQueries(opQueriesAppend, requester, projectID, experimentID, queries)
}

func (s *Store) updateQueries(op string, requester string, projectID, experimentID int, queries []QueryRecord) error {
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.roleOfLocked(requester, projectID) != RoleOwner {
		return fmt.Errorf("only the project owner can manage the query pool")
	}
	if sh.projects[projectID].Experiment(experimentID) == nil {
		return fmt.Errorf("unknown experiment %d", experimentID)
	}
	return sh.logApply(op, walQueries{ProjectID: projectID, ExperimentID: experimentID, Queries: queries})
}

// --- results ----------------------------------------------------------------

// AddResult records a measurement submitted with a contributor key.
func (s *Store) AddResult(contributorKey string, experimentID, queryID int, dbmsKey, platformKey string, seconds []float64, errMsg string, extra map[string]string) (*Result, error) {
	return s.AddResultTraced(contributorKey, experimentID, queryID, dbmsKey, platformKey, seconds, errMsg, extra, nil)
}

// AddResultTraced is AddResult with an optional per-operator trace attached
// to the result row; nil records an untraced result.
func (s *Store) AddResultTraced(contributorKey string, experimentID, queryID int, dbmsKey, platformKey string, seconds []float64, errMsg string, extra map[string]string, qt *trace.QueryTrace) (*Result, error) {
	p, _, err := s.FindContributor(contributorKey)
	if err != nil {
		return nil, err
	}
	sh := s.shardFor(p.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.addResultLocked(sh, p.ID, contributorKey, experimentID, queryID, dbmsKey, platformKey, seconds, errMsg, extra, qt)
}

// addResultLocked validates and records a result on a shard whose lock the
// caller holds.
func (s *Store) addResultLocked(sh *shard, projectID int, contributorKey string, experimentID, queryID int, dbmsKey, platformKey string, seconds []float64, errMsg string, extra map[string]string, qt *trace.QueryTrace) (*Result, error) {
	p := sh.projects[projectID]
	if p == nil {
		return nil, fmt.Errorf("unknown project %d", projectID)
	}
	r, err := s.buildResultLocked(sh, p, contributorKey, experimentID, queryID, dbmsKey, platformKey, seconds, errMsg, extra, qt)
	if err != nil {
		return nil, err
	}
	if err := sh.logApply(opResult, r); err != nil {
		return nil, err
	}
	return sh.results[len(sh.results)-1], nil
}

// buildResultLocked validates the submission against the project and
// allocates the result row without recording it; shard lock held.
func (s *Store) buildResultLocked(sh *shard, p *Project, contributorKey string, experimentID, queryID int, dbmsKey, platformKey string, seconds []float64, errMsg string, extra map[string]string, qt *trace.QueryTrace) (*Result, error) {
	e := p.Experiment(experimentID)
	if e == nil {
		return nil, fmt.Errorf("unknown experiment %d in project %q", experimentID, p.Name)
	}
	if e.Query(queryID) == nil {
		return nil, fmt.Errorf("unknown query %d in experiment %d", queryID, experimentID)
	}
	return &Result{
		ID:             int(s.nextResultID.Add(1)),
		ProjectID:      p.ID,
		ExperimentID:   experimentID,
		QueryID:        queryID,
		ContributorKey: contributorKey,
		DBMSKey:        dbmsKey,
		PlatformKey:    platformKey,
		Seconds:        append([]float64(nil), seconds...),
		Error:          errMsg,
		Extra:          extra,
		Trace:          qt,
		Created:        s.now(),
	}, nil
}

// Results returns the results of a project visible to the viewer: hidden
// results are only shown to the owner and contributors.
func (s *Store) Results(viewer string, projectID int) []*Result {
	sh := s.shardFor(projectID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	role := sh.roleOfLocked(viewer, projectID)
	if role == RoleNone {
		return nil
	}
	var out []*Result
	for _, r := range sh.results {
		if r.ProjectID != projectID {
			continue
		}
		if r.Hidden && role == RoleReader {
			continue
		}
		out = append(out, r)
	}
	return out
}

// HideResult toggles the hidden flag of a result; owner only.
func (s *Store) HideResult(requester string, resultID int, hidden bool) error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, r := range sh.results {
			if r.ID == resultID {
				if sh.roleOfLocked(requester, r.ProjectID) != RoleOwner {
					sh.mu.Unlock()
					return fmt.Errorf("only the project owner can moderate results")
				}
				err := sh.logApply(opResultHide, walResultMod{ResultID: resultID, Hidden: hidden})
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}
	return fmt.Errorf("unknown result %d", resultID)
}

// DeleteResult removes a result, e.g. when a re-run is required; owner only.
func (s *Store) DeleteResult(requester string, resultID int) error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, r := range sh.results {
			if r.ID == resultID {
				if sh.roleOfLocked(requester, r.ProjectID) != RoleOwner {
					sh.mu.Unlock()
					return fmt.Errorf("only the project owner can moderate results")
				}
				err := sh.logApply(opResultDelete, walResultMod{ResultID: resultID})
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}
	return fmt.Errorf("unknown result %d", resultID)
}

// --- comments ---------------------------------------------------------------

// AddComment attaches a comment to a project; any registered user who can
// view the project may comment.
func (s *Store) AddComment(author string, projectID int, text string) (*Comment, error) {
	if s.User(author) == nil {
		return nil, fmt.Errorf("unknown user %q", author)
	}
	if strings.TrimSpace(text) == "" {
		return nil, fmt.Errorf("empty comment")
	}
	sh := s.shardFor(projectID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.roleOfLocked(author, projectID) == RoleNone {
		return nil, fmt.Errorf("user %q cannot view project %d", author, projectID)
	}
	c := &Comment{ID: int(s.nextCommentID.Add(1)), ProjectID: projectID, Author: author, Text: text, Created: s.now()}
	if err := sh.logApply(opComment, c); err != nil {
		return nil, err
	}
	return sh.comments[len(sh.comments)-1], nil
}

// Comments returns the comments of a project visible to the viewer.
func (s *Store) Comments(viewer string, projectID int) []*Comment {
	sh := s.shardFor(projectID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.roleOfLocked(viewer, projectID) == RoleNone {
		return nil
	}
	var out []*Comment
	for _, c := range sh.comments {
		if c.ProjectID == projectID {
			out = append(out, c)
		}
	}
	return out
}
