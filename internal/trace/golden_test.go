package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sqalpel/internal/datagen"
	"sqalpel/internal/engine"
	"sqalpel/internal/workload"
)

// Regenerate the golden EXPLAIN files after an intentional plan-JSON change:
//
//	go test ./internal/trace/ -run TestExplainGoldenTPCH -update
var update = flag.Bool("update", false, "rewrite the golden EXPLAIN files")

// TestExplainGoldenTPCH pins the EXPLAIN plan-JSON of all 22 TPC-H queries.
// The document is a pure function of the logical plan — independent of scale
// factor, engine and execution — so any diff here is a real change to the
// operator-id scheme or the plan rendering, which also invalidates archived
// traces keyed by those ids. Bump trace.SchemaVersion for incompatible
// changes and regenerate with -update.
func TestExplainGoldenTPCH(t *testing.T) {
	db := datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.001, Seed: 11})
	reg := engine.NewRegistry()
	for _, q := range workload.TPCH() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			doc, err := reg.ExplainJSON(db, q.SQL)
			if err != nil {
				t.Fatal(err)
			}
			doc = append(doc, '\n')
			path := filepath.Join("testdata", "explain", q.ID+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, doc, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate: go test ./internal/trace/ -run TestExplainGoldenTPCH -update): %v", err)
			}
			if !bytes.Equal(want, doc) {
				t.Errorf("EXPLAIN plan-JSON drifted from %s;\nif intentional, regenerate with -update\ngot:\n%s\nwant:\n%s", path, doc, want)
			}
		})
	}
}
