// Package sqlsem is the single source of truth for SQL's three-valued
// (ternary) logic, shared by every execution paradigm: the row and column
// interpreters of internal/engine and the batch-vectorized executor of
// internal/vexec all route their boolean connectives, comparisons, LIKE,
// IN and BETWEEN through the truth tables defined here, so the engines
// cannot drift apart on NULL handling.
//
// The contract, in one paragraph: inside an expression NULL means UNKNOWN
// and propagates through comparisons, LIKE, NOT, AND, OR, BETWEEN and IN
// exactly as the SQL standard prescribes (NOT UNKNOWN = UNKNOWN,
// UNKNOWN AND FALSE = FALSE, UNKNOWN OR TRUE = TRUE, everything else
// involving UNKNOWN stays UNKNOWN). Only the *consumers* of a predicate —
// WHERE/HAVING filters, join conditions and CASE WHEN arms — collapse
// UNKNOWN to "row rejected" / "arm not taken"; that collapse happens at the
// filter, never inside the expression, so a projected predicate surfaces as
// NULL while the same predicate in a WHERE clause merely drops the row.
package sqlsem

// Tri is a three-valued logic value: True, False or Unknown (SQL NULL).
type Tri uint8

// The three truth values. Unknown is the zero value on purpose: a Tri
// derived from a NULL slot without further work is already correct.
const (
	Unknown Tri = iota
	False
	True
)

func (t Tri) String() string {
	switch t {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "UNKNOWN"
	}
}

// Of lifts a two-valued boolean into the ternary domain.
func Of(b bool) Tri {
	if b {
		return True
	}
	return False
}

// Known reports whether the value is True or False (not Unknown).
func (t Tri) Known() bool { return t != Unknown }

// Accept is the predicate-consumer collapse: filters, join conditions and
// CASE WHEN arms take a row/arm only when the predicate is definitely True;
// False and Unknown both reject. This is the only place UNKNOWN legally
// becomes two-valued.
func (t Tri) Accept() bool { return t == True }

// Not is ternary negation: NOT UNKNOWN = UNKNOWN.
func Not(t Tri) Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// And is ternary conjunction: FALSE dominates, otherwise UNKNOWN taints.
//
//	AND      | TRUE    FALSE  UNKNOWN
//	TRUE     | TRUE    FALSE  UNKNOWN
//	FALSE    | FALSE   FALSE  FALSE
//	UNKNOWN  | UNKNOWN FALSE  UNKNOWN
func And(a, b Tri) Tri {
	if a == False || b == False {
		return False
	}
	if a == Unknown || b == Unknown {
		return Unknown
	}
	return True
}

// Or is ternary disjunction: TRUE dominates, otherwise UNKNOWN taints.
//
//	OR       | TRUE   FALSE   UNKNOWN
//	TRUE     | TRUE   TRUE    TRUE
//	FALSE    | TRUE   FALSE   UNKNOWN
//	UNKNOWN  | TRUE   UNKNOWN UNKNOWN
func Or(a, b Tri) Tri {
	if a == True || b == True {
		return True
	}
	if a == Unknown || b == Unknown {
		return Unknown
	}
	return False
}

// Compare maps a comparison operator and a three-way comparison outcome
// (c < 0, c == 0, c > 0 as from a compare function that only ran because
// both operands were non-NULL) to a truth value. Callers must route NULL
// operands to Unknown instead of calling this; CompareNullable does both.
// An operator outside the SQL six is an internal invariant violation and
// panics — as the single source of truth, silently returning FALSE here
// would make every engine uniformly wrong, which the differential fuzzer
// (agreement-based) could never detect.
func Compare(op string, c int) Tri {
	var ok bool
	switch op {
	case "=":
		ok = c == 0
	case "<>":
		ok = c != 0
	case "<":
		ok = c < 0
	case "<=":
		ok = c <= 0
	case ">":
		ok = c > 0
	case ">=":
		ok = c >= 0
	default:
		panic("sqlsem: unknown comparison operator " + op)
	}
	return Of(ok)
}

// CompareNullable is the full comparison semantics: any NULL operand makes
// the comparison UNKNOWN, otherwise the operator is applied to the compare
// outcome.
func CompareNullable(op string, eitherNull bool, c int) Tri {
	if eitherNull {
		return Unknown
	}
	return Compare(op, c)
}

// Like is the LIKE / NOT LIKE semantics: a NULL string or NULL pattern
// yields UNKNOWN (and NOT UNKNOWN stays UNKNOWN); otherwise the match
// result, negated for NOT LIKE.
func Like(eitherNull, matched, negate bool) Tri {
	if eitherNull {
		return Unknown
	}
	if negate {
		return Of(!matched)
	}
	return Of(matched)
}

// In is the IN-list / IN-subquery semantics, derived from the expansion
// x IN (a, b, …) ≡ x = a OR x = b OR …:
//
//   - an empty list (only possible with sub-queries) is FALSE even for a
//     NULL probe — the empty OR is FALSE;
//   - a NULL probe against a non-empty list is UNKNOWN;
//   - a found match is TRUE regardless of NULLs elsewhere in the list;
//   - no match with a NULL in the list is UNKNOWN (the x = NULL disjunct);
//   - otherwise FALSE.
//
// NOT IN is Not(In(...)), applied by the caller.
func In(exprNull, found, listHasNull, listEmpty bool) Tri {
	if listEmpty {
		return False
	}
	if exprNull {
		return Unknown
	}
	if found {
		return True
	}
	if listHasNull {
		return Unknown
	}
	return False
}

// Between is the BETWEEN semantics, derived from the expansion
// x BETWEEN lo AND hi ≡ x >= lo AND x <= hi under ternary AND — so a NULL
// bound can still produce a definite FALSE when the other bound already
// fails. NOT BETWEEN negates ternarily.
func Between(geLo, leHi Tri, negate bool) Tri {
	t := And(geLo, leHi)
	if negate {
		return Not(t)
	}
	return t
}
