// Package vexec is sqalpel's third execution paradigm: a batch-at-a-time
// vectorized executor in the VectorWise tradition, contrasting with the
// tuple-at-a-time interpreter (tuplestore) and the full-column materializing
// interpreter (columba) of internal/engine.
//
// Its distinguishing mechanics:
//
//   - Typed, unboxed columnar vectors ([]int64, []float64, []string) with
//     separate null bitmaps instead of boxed []Value cells. Numeric vectors
//     may carry a per-row int/float duality mask so the SQL value semantics
//     of internal/engine (exact integer arithmetic, int-preserving division)
//     are reproduced bit for bit.
//   - Selection vectors: filters shrink an index list over a batch instead
//     of copying payload columns; one pass per conjunct, like a column store,
//     but over fixed-size batches.
//   - A pull-based operator pipeline (scan -> filter -> hash join -> hash
//     aggregate -> order/limit -> project) processing fixed-size batches
//     (default 1024 rows) end to end, so intermediates stay cache resident.
//
// The package depends only on internal/sqlparser. It executes the dialect
// subset that vectorizes well (conjunctive filters, equi hash joins, hash
// aggregation, ordering, DISTINCT, LIMIT and the full scalar expression
// repertoire); statements using sub-queries, outer joins, derived tables or
// set operations return ErrUnsupported so the engine-level adapter
// (internal/engine's vektor family) can fall back to the interpreter. The
// conversion from the boxed []Value storage of engine.Database into typed
// vectors happens once per table in that adapter, not here.
package vexec
