package vexec

import (
	"strings"

	"sqalpel/internal/sqlparser"
)

// ZoneBlockRows is the zone-map block granularity. Both shipped batch sizes
// (1024 and 4096) are multiples of it, which is what lets the serial scan,
// the morsel-parallel scan and cexec's fused loop make identical skip
// decisions: a block never straddles a batch or morsel boundary.
const ZoneBlockRows = 1024

// zoneClass says which payload domain a column's zone bounds live in. A
// column is zoneNone when its values cannot be bounded in a way that agrees
// with compareScalars for every literal: integers at or beyond 2^52 (where
// the float64 image of a comparison could disagree with the exact int64
// comparison the row path uses), float columns containing NaN, and string
// columns too wide to bound cheaply are all excluded rather than risk a
// skip decision the row-at-a-time semantics would contradict.
type zoneClass uint8

const (
	zoneNone  zoneClass = iota
	zoneInt             // Int/Bool/Date payloads, all |v| < 2^52
	zoneFloat           // Float payloads (including int/float duality), NaN-free
	zoneStr             // String payloads, raw or dictionary-coded
)

// zoneEntry is one column's statistics over one ZoneBlockRows-row block.
// The min/max fields of the column's class are set only when nonNull > 0.
type zoneEntry struct {
	nonNull    int
	minI, maxI int64
	minF, maxF float64
	minS, maxS string
}

// zoneMap holds per-block statistics for every supported column of a table,
// built once per table version alongside dictionary encoding.
type zoneMap struct {
	classes []zoneClass
	blocks  [][]zoneEntry // per column; nil when the class is zoneNone
}

// maxExactInt is the first magnitude at which float64 can no longer
// represent every integer; columns reaching it are left unzoned so the
// float-domain satisfiability test can never disagree with the exact
// integer comparison used row-at-a-time.
const maxExactInt = int64(1) << 52

func numBlocks(rows int) int {
	if rows <= 0 {
		return 0
	}
	return (rows + ZoneBlockRows - 1) / ZoneBlockRows
}

// buildZoneMap computes block statistics for every column that admits them.
func buildZoneMap(cols []TableColumn, rows int) *zoneMap {
	zm := &zoneMap{classes: make([]zoneClass, len(cols)), blocks: make([][]zoneEntry, len(cols))}
	nb := numBlocks(rows)
	for c, col := range cols {
		v := col.Vec
		if v == nil || v.Len() != rows || nb == 0 {
			continue
		}
		class, entries := buildColumnZones(v, nb)
		zm.classes[c] = class
		zm.blocks[c] = entries
	}
	return zm
}

func buildColumnZones(v *Vector, nb int) (zoneClass, []zoneEntry) {
	var class zoneClass
	switch v.Kind {
	case KindInt, KindBool, KindDate:
		class = zoneInt
	case KindFloat:
		class = zoneFloat
	case KindString:
		class = zoneStr
	default:
		return zoneNone, nil
	}
	entries := make([]zoneEntry, nb)
	for b := 0; b < nb; b++ {
		lo := b * ZoneBlockRows
		hi := lo + ZoneBlockRows
		if hi > v.Len() {
			hi = v.Len()
		}
		e := &entries[b]
		for i := lo; i < hi; i++ {
			if v.IsNull(i) {
				continue
			}
			switch class {
			case zoneInt:
				x := v.Ints[i]
				if x >= maxExactInt || x <= -maxExactInt {
					return zoneNone, nil
				}
				if e.nonNull == 0 || x < e.minI {
					e.minI = x
				}
				if e.nonNull == 0 || x > e.maxI {
					e.maxI = x
				}
			case zoneFloat:
				x := v.Floats[i]
				if x != x { // NaN defeats ordered bounds
					return zoneNone, nil
				}
				if e.nonNull == 0 || x < e.minF {
					e.minF = x
				}
				if e.nonNull == 0 || x > e.maxF {
					e.maxF = x
				}
			case zoneStr:
				s := v.StrAt(i)
				if e.nonNull == 0 || s < e.minS {
					e.minS = s
				}
				if e.nonNull == 0 || s > e.maxS {
					e.maxS = s
				}
			}
			e.nonNull++
		}
	}
	return class, entries
}

// boundScalars returns the block's min/max as scalars in the column's
// payload domain, matching what compareScalars would see row-at-a-time.
func (e *zoneEntry) boundScalars(class zoneClass, kind Kind) (lo, hi scalar) {
	switch class {
	case zoneInt:
		return scalar{kind: kind, i: e.minI}, scalar{kind: kind, i: e.maxI}
	case zoneFloat:
		return scalar{kind: KindFloat, f: e.minF}, scalar{kind: KindFloat, f: e.maxF}
	default:
		return scalar{kind: KindString, s: e.minS}, scalar{kind: KindString, s: e.maxS}
	}
}

// ZonePred is a compiled block-satisfiability test for one pushed-down
// conjunct: test reports whether ANY row of the block could make the
// conjunct true. All compiled forms are null-rejecting (a NULL operand
// yields UNKNOWN, which a filter discards), so an all-NULL block is always
// skippable under any compiled predicate.
type ZonePred struct {
	col  int
	test func(e *zoneEntry, class zoneClass, kind Kind) bool
}

// ZonePreds compiles the pushed-down conjuncts of a scan over this table
// into block-satisfiability predicates. Conjuncts that do not have a
// supported shape (column-vs-literal comparison, BETWEEN, literal IN list,
// LIKE with a literal prefix) or that reference unzoned columns compile to
// nothing — the scan simply cannot skip on them. alias is the scan's
// binding name for unqualified/qualified column resolution.
func (t *Table) ZonePreds(alias string, conjuncts []sqlparser.Expr) []ZonePred {
	if t.zones == nil {
		return nil
	}
	var out []ZonePred
	for _, e := range conjuncts {
		if p, ok := t.zonePredFor(alias, e); ok {
			out = append(out, p)
		}
	}
	return out
}

// BlockMayMatch reports whether block b could contain a row satisfying all
// compiled predicates; a false return is a proof the block cannot, so the
// scan may skip it without changing results.
func (t *Table) BlockMayMatch(preds []ZonePred, b int) bool {
	for _, p := range preds {
		e := &t.zones.blocks[p.col][b]
		if !p.test(e, t.zones.classes[p.col], t.Cols[p.col].Vec.Kind) {
			return false
		}
	}
	return true
}

// NumZoneBlocks returns how many zone blocks cover the table's rows.
func (t *Table) NumZoneBlocks() int { return numBlocks(t.rows) }

// zoneColumn resolves a conjunct-side expression to a zoned column index.
func (t *Table) zoneColumn(alias string, e sqlparser.Expr) (int, bool) {
	e = stripParens(e)
	cr, ok := e.(*sqlparser.ColumnRef)
	if !ok {
		return 0, false
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, alias) {
		return 0, false
	}
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, cr.Column) {
			if t.zones.classes[i] == zoneNone {
				return 0, false
			}
			return i, true
		}
	}
	return 0, false
}

func stripParens(e sqlparser.Expr) sqlparser.Expr {
	for {
		p, ok := e.(*sqlparser.ParenExpr)
		if !ok {
			return e
		}
		e = p.Expr
	}
}

// zoneLiteral evaluates a literal expression to a scalar, mirroring
// constVec's literal handling. ok is false for anything non-literal.
func zoneLiteral(e sqlparser.Expr) (scalar, bool) {
	switch v := stripParens(e).(type) {
	case *sqlparser.NumberLit:
		s, err := parseNumberScalar(v.Value)
		if err != nil {
			return scalar{}, false
		}
		return s, true
	case *sqlparser.StringLit:
		return scalar{kind: KindString, s: v.Value}, true
	case *sqlparser.BoolLit:
		if v.Value {
			return scalar{kind: KindBool, i: 1}, true
		}
		return scalar{kind: KindBool, i: 0}, true
	case *sqlparser.NullLit:
		return nullScalar, true
	case *sqlparser.DateLit:
		days, err := parseDate(v.Value)
		if err != nil {
			return scalar{}, false
		}
		return scalar{kind: KindDate, i: days}, true
	case *sqlparser.UnaryExpr:
		if v.Op != "-" && v.Op != "+" {
			return scalar{}, false
		}
		s, ok := zoneLiteral(v.Expr)
		if !ok || s.isNull() || s.kind == KindString {
			return scalar{}, false
		}
		if v.Op == "-" {
			s.i, s.f = -s.i, -s.f
		}
		return s, true
	default:
		return scalar{}, false
	}
}

// zoneComparable rejects literal/column pairings whose zone test could
// disagree with the row path: a numeric literal against a string column
// compares in the float domain row-at-a-time (ParseFloat-or-zero), and
// that mapping is not monotonic in string order, so string bounds prove
// nothing about it.
func zoneComparable(class zoneClass, lit scalar) bool {
	if lit.isNull() {
		return true // handled specially: conjunct is UNKNOWN everywhere
	}
	if class == zoneStr && lit.kind != KindString {
		return false
	}
	return true
}

// zonePredFor compiles one conjunct; ok is false when the shape or the
// operand domains are unsupported.
func (t *Table) zonePredFor(alias string, e sqlparser.Expr) (ZonePred, bool) {
	switch v := stripParens(e).(type) {
	case *sqlparser.BinaryExpr:
		op := v.Op
		col, okc := t.zoneColumn(alias, v.Left)
		litExpr := v.Right
		if !okc {
			// mirrored form: literal OP column
			if op == "LIKE" || op == "NOT LIKE" {
				return ZonePred{}, false
			}
			col, okc = t.zoneColumn(alias, v.Right)
			litExpr = v.Left
			op = flipCmp(op)
		}
		if !okc {
			return ZonePred{}, false
		}
		if op == "LIKE" {
			return t.likePred(col, litExpr)
		}
		switch op {
		case "=", "<>", "<", "<=", ">", ">=":
		default:
			return ZonePred{}, false
		}
		lit, okl := zoneLiteral(litExpr)
		if !okl || !zoneComparable(t.zones.classes[col], lit) {
			return ZonePred{}, false
		}
		cmpOp := op
		return ZonePred{col: col, test: func(e *zoneEntry, class zoneClass, kind Kind) bool {
			if e.nonNull == 0 || lit.isNull() {
				return false
			}
			lo, hi := e.boundScalars(class, kind)
			switch cmpOp {
			case "=":
				return compareScalars(lo, lit) <= 0 && compareScalars(hi, lit) >= 0
			case "<>":
				return !(compareScalars(lo, lit) == 0 && compareScalars(hi, lit) == 0)
			case "<":
				return compareScalars(lo, lit) < 0
			case "<=":
				return compareScalars(lo, lit) <= 0
			case ">":
				return compareScalars(hi, lit) > 0
			case ">=":
				return compareScalars(hi, lit) >= 0
			}
			return true
		}}, true
	case *sqlparser.BetweenExpr:
		if v.Not {
			return ZonePred{}, false
		}
		col, okc := t.zoneColumn(alias, v.Expr)
		if !okc {
			return ZonePred{}, false
		}
		blo, okl := zoneLiteral(v.Lo)
		bhi, okh := zoneLiteral(v.Hi)
		if !okl || !okh {
			return ZonePred{}, false
		}
		class := t.zones.classes[col]
		if !zoneComparable(class, blo) || !zoneComparable(class, bhi) {
			return ZonePred{}, false
		}
		return ZonePred{col: col, test: func(e *zoneEntry, class zoneClass, kind Kind) bool {
			if e.nonNull == 0 || blo.isNull() || bhi.isNull() {
				// a NULL bound makes BETWEEN at best UNKNOWN for every row
				return false
			}
			lo, hi := e.boundScalars(class, kind)
			return compareScalars(hi, blo) >= 0 && compareScalars(lo, bhi) <= 0
		}}, true
	case *sqlparser.InExpr:
		if v.Not || v.Subquery != nil {
			return ZonePred{}, false
		}
		col, okc := t.zoneColumn(alias, v.Expr)
		if !okc {
			return ZonePred{}, false
		}
		class := t.zones.classes[col]
		items := make([]scalar, 0, len(v.List))
		for _, it := range v.List {
			lit, okl := zoneLiteral(it)
			if !okl || !zoneComparable(class, lit) {
				return ZonePred{}, false
			}
			if lit.isNull() {
				continue // a NULL item can only ever contribute UNKNOWN
			}
			items = append(items, lit)
		}
		return ZonePred{col: col, test: func(e *zoneEntry, class zoneClass, kind Kind) bool {
			if e.nonNull == 0 {
				return false
			}
			lo, hi := e.boundScalars(class, kind)
			for _, lit := range items {
				if compareScalars(lo, lit) <= 0 && compareScalars(hi, lit) >= 0 {
					return true
				}
			}
			return false
		}}, true
	default:
		return ZonePred{}, false
	}
}

// likePred compiles `col LIKE 'prefix…'` into a string-range test over the
// literal prefix (the longest leading run with no wildcard). Every string
// matching the pattern starts with the prefix, so it lies in
// [prefix, nextPrefix(prefix)) under byte-wise ordering — the same ordering
// strings.Compare and the zone bounds use.
func (t *Table) likePred(col int, patExpr sqlparser.Expr) (ZonePred, bool) {
	if t.zones.classes[col] != zoneStr {
		return ZonePred{}, false
	}
	lit, ok := zoneLiteral(patExpr)
	if !ok || lit.kind != KindString {
		return ZonePred{}, false
	}
	prefix := likePrefix(lit.s)
	if prefix == "" {
		return ZonePred{}, false
	}
	upper := nextPrefix(prefix)
	return ZonePred{col: col, test: func(e *zoneEntry, class zoneClass, kind Kind) bool {
		if e.nonNull == 0 {
			return false
		}
		if e.maxS < prefix {
			return false
		}
		if upper != "" && e.minS >= upper {
			return false
		}
		return true
	}}, true
}

// likePrefix returns the wildcard-free leading run of a LIKE pattern.
func likePrefix(pat string) string {
	for i := 0; i < len(pat); i++ {
		if pat[i] == '%' || pat[i] == '_' {
			return pat[:i]
		}
	}
	return pat
}

// nextPrefix is the smallest string strictly greater than every string with
// the given prefix, or "" when no such bound exists (all-0xff prefixes).
func nextPrefix(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op // "=", "<>" are symmetric; others rejected upstream
	}
}
