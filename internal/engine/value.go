// Package engine implements the in-memory SQL execution substrate sqalpel
// runs experiments against. It provides a relational storage layer
// (Database/Table with column-major storage), a query executor covering the
// SQL dialect of internal/sqlparser (joins, sub-queries, grouping,
// aggregation, ordering), and four execution back-ends with genuinely
// different performance profiles:
//
//   - RowEngine: a tuple-at-a-time interpreter that carries full rows,
//     evaluates predicates with short-circuiting and avoids intermediate
//     materialisation — the classic row store profile.
//   - ColEngine: a column-at-a-time engine that prunes unused columns,
//     filters with one pass per conjunct, and materialises every arithmetic
//     intermediate as a full vector with an overflow-guarding widening pass —
//     the profile of MonetDB-style systems the paper reports on.
//   - VektorEngine: a batch-vectorized engine (see internal/vexec) working
//     on typed unboxed vectors with selection vectors and fixed-size batch
//     pipelines — the VectorWise-style profile; statements outside its
//     subset fall back to the column interpreter.
//   - FusilEngine: a data-centric compiled engine (see internal/cexec) that
//     fuses each plan pipeline into a chain of Go closures and pushes rows
//     through with no batch handoffs — the HyPer-style profile; it covers
//     the same subset as the vectorized engine with the same fallback.
//
// The engines stand in for the external DBMSs the paper drives over JDBC:
// discriminative benchmarking needs systems that accept the same dialect
// but disagree on performance, which is exactly what they provide.
package engine

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime value kinds.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	default:
		return "unknown"
	}
}

// Value is a runtime SQL value. Dates are stored as days since 1970-01-01.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// NewBool wraps a boolean.
func NewBool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// NewInt wraps an integer.
func NewInt(i int64) Value { return Value{Kind: KindInt, I: i} }

// NewFloat wraps a float.
func NewFloat(f float64) Value { return Value{Kind: KindFloat, F: f} }

// NewString wraps a string.
func NewString(s string) Value { return Value{Kind: KindString, S: s} }

// NewDate wraps a date given as days since the Unix epoch.
func NewDate(days int64) Value { return Value{Kind: KindDate, I: days} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool returns the truth value; NULL and non-boolean values are false.
func (v Value) Bool() bool {
	switch v.Kind {
	case KindBool, KindInt, KindDate:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// Float converts the value to float64 for numeric operations.
func (v Value) Float() float64 {
	switch v.Kind {
	case KindInt, KindBool, KindDate:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindString:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	default:
		return 0
	}
}

// Int converts the value to int64.
func (v Value) Int() int64 {
	switch v.Kind {
	case KindInt, KindBool, KindDate:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindString:
		i, _ := strconv.ParseInt(v.S, 10, 64)
		return i
	default:
		return 0
	}
}

// String renders the value the way result tables print it.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'f', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return FormatDate(v.I)
	default:
		return "?"
	}
}

// isNumeric reports whether the value participates in numeric arithmetic.
func (v Value) isNumeric() bool {
	return v.Kind == KindInt || v.Kind == KindFloat || v.Kind == KindBool
}

// Compare returns -1, 0 or 1 comparing a and b with SQL semantics; NULL
// compares less than everything (only relevant for ordering).
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	// String comparison only when both sides are strings.
	if a.Kind == KindString && b.Kind == KindString {
		return strings.Compare(a.S, b.S)
	}
	// Dates compare by their day number; mixed date/number comparisons use
	// the numeric path.
	af, bf := a.Float(), b.Float()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality; comparisons involving NULL are false.
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Key returns a string usable as a hash key for grouping and hash joins.
// Unlike String it keeps the kind separate so 1 and '1' do not collide, but
// normalises int/float so join keys of mixed numeric types match.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00N"
	case KindString:
		return "\x01" + v.S
	case KindDate:
		return "\x02" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return "\x03" + strconv.FormatInt(int64(v.F), 10)
		}
		return "\x03" + strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return "\x03" + strconv.FormatInt(v.I, 10)
	}
}

// Arithmetic performs +, -, *, / and % with numeric promotion. Date plus or
// minus an integer treats the integer as a number of days. Any NULL operand
// yields NULL; division by zero yields NULL.
func Arithmetic(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	// Date arithmetic with day counts.
	if a.Kind == KindDate && b.isNumeric() {
		switch op {
		case "+":
			return NewDate(a.I + b.Int()), nil
		case "-":
			return NewDate(a.I - b.Int()), nil
		}
	}
	if a.Kind == KindDate && b.Kind == KindDate && op == "-" {
		return NewInt(a.I - b.I), nil
	}
	if a.Kind == KindString || b.Kind == KindString {
		if op == "||" {
			return NewString(a.String() + b.String()), nil
		}
		return Value{}, fmt.Errorf("cannot apply %q to %s and %s", op, a.Kind, b.Kind)
	}
	if op == "||" {
		return NewString(a.String() + b.String()), nil
	}
	// Integer-preserving arithmetic when both sides are integers and the
	// operation stays exact.
	if a.Kind == KindInt && b.Kind == KindInt {
		switch op {
		case "+":
			return NewInt(a.I + b.I), nil
		case "-":
			return NewInt(a.I - b.I), nil
		case "*":
			return NewInt(a.I * b.I), nil
		case "%":
			if b.I == 0 {
				return Null(), nil
			}
			return NewInt(a.I % b.I), nil
		case "/":
			if b.I == 0 {
				return Null(), nil
			}
			if a.I%b.I == 0 {
				return NewInt(a.I / b.I), nil
			}
			return NewFloat(float64(a.I) / float64(b.I)), nil
		}
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case "+":
		return NewFloat(af + bf), nil
	case "-":
		return NewFloat(af - bf), nil
	case "*":
		return NewFloat(af * bf), nil
	case "/":
		if bf == 0 {
			return Null(), nil
		}
		return NewFloat(af / bf), nil
	case "%":
		if bf == 0 {
			return Null(), nil
		}
		return NewFloat(float64(int64(af) % int64(bf))), nil
	default:
		return Value{}, fmt.Errorf("unknown arithmetic operator %q", op)
	}
}

// epoch is the reference day zero for date values.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// ParseDate converts an ISO yyyy-mm-dd string into days since the epoch.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("invalid date %q: %w", s, err)
	}
	return int64(t.Sub(epoch).Hours() / 24), nil
}

// MustParseDate is ParseDate for literals known to be valid; it panics on
// malformed input and exists for generators and tests.
func MustParseDate(s string) int64 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatDate renders days since the epoch as yyyy-mm-dd.
func FormatDate(days int64) string {
	return epoch.AddDate(0, 0, int(days)).Format("2006-01-02")
}

// DateParts returns the year, month and day of a date value given in days
// since the epoch.
func DateParts(days int64) (year, month, day int) {
	t := epoch.AddDate(0, 0, int(days))
	return t.Year(), int(t.Month()), t.Day()
}

// AddInterval adds n units (DAY, MONTH or YEAR) to a date given in days
// since the epoch.
func AddInterval(days int64, n int64, unit string) (int64, error) {
	t := epoch.AddDate(0, 0, int(days))
	switch strings.ToUpper(unit) {
	case "DAY":
		t = t.AddDate(0, 0, int(n))
	case "MONTH":
		t = t.AddDate(0, int(n), 0)
	case "YEAR":
		t = t.AddDate(int(n), 0, 0)
	default:
		return 0, fmt.Errorf("unknown interval unit %q", unit)
	}
	return int64(t.Sub(epoch).Hours() / 24), nil
}

// Like implements the SQL LIKE operator with % and _ wildcards.
func Like(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Dynamic-programming free recursive matcher with memo-free greedy
	// handling of '%': standard two-pointer algorithm.
	var si, pi int
	var starP, starS = -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
