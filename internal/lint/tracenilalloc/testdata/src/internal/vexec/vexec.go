// Package vexec is the tracenilalloc fixture executor: every guard form
// the analyzer recognises, and the unguarded shapes it must flag.
package vexec

import "internal/trace"

type executor struct {
	tracer *trace.Tracer
}

// traceOn is the executors' guard-helper idiom.
func (ex *executor) traceOn(prefix string) bool {
	return ex.tracer != nil && prefix != "\x00"
}

// directGuard: the plain nil-check dominates the calls.
func (ex *executor) directGuard(prefix string) {
	if ex.tracer != nil {
		ex.tracer.Span(trace.ScanID(prefix, 0), trace.KindScan).Start()
	}
}

// helperGuard: the traceOn helper counts as the nil-check.
func (ex *executor) helperGuard(prefix string) {
	var tm trace.Timer
	if ex.traceOn(prefix) {
		tm = ex.tracer.Span(trace.SortID(prefix), trace.KindSort).Start()
	}
	tm.Done(0)
}

// conjoinedGuard: the nil-check may be one conjunct of the condition.
func (ex *executor) conjoinedGuard(prefix string, n int) {
	if ex.tracer != nil && n > 0 {
		ex.tracer.Span(trace.ScanID(prefix, n), trace.KindScan)
	}
}

// earlyOut: an inverted guard whose body returns protects the rest.
func (ex *executor) earlyOut(prefix string) {
	if ex.tracer == nil {
		return
	}
	ex.tracer.Span(trace.ScanID(prefix, 1), trace.KindScan)
}

// invertedHelper: !traceOn + return is the same dominance.
func (ex *executor) invertedHelper(prefix string) {
	if !ex.traceOn(prefix) {
		return
	}
	ex.tracer.Span(trace.SortID(prefix), trace.KindSort)
}

// elseGuard: the else branch of a nil-equals condition is the traced arm.
func (ex *executor) elseGuard(prefix string) {
	if ex.tracer == nil {
		return
	} else {
		ex.tracer.Span(trace.SortID(prefix), trace.KindSort)
	}
}

// unguardedSpan allocates the id and consults the tracer on every call,
// traced or not — the disabled-path regression the analyzer exists for.
func (ex *executor) unguardedSpan(prefix string) {
	ex.tracer.Span(trace.ScanID(prefix, 0), trace.KindScan) // want `ex.tracer.Span outside a tracer nil-check` `trace.ScanID outside a tracer nil-check`
}

// unguardedPrefix: a prefix derivation alone is still an allocation.
func (ex *executor) unguardedPrefix(prefix string, k int) string {
	return trace.SubPrefix(prefix, k) // want `trace.SubPrefix outside a tracer nil-check`
}

// wrongGuard: a condition unrelated to the tracer does not count.
func (ex *executor) wrongGuard(prefix string, n int) {
	if n > 0 {
		ex.tracer.Span(trace.ScanID(prefix, n), trace.KindScan) // want `ex.tracer.Span outside a tracer nil-check` `trace.ScanID outside a tracer nil-check`
	}
}

// suppressed documents a deliberate once-per-query allocation.
func (ex *executor) suppressed(prefix string, k int) string {
	//lint:tracealloc constructed once at prepare time, not on the per-row path
	return trace.SubPrefix(prefix, k)
}

// nilSafeConsumers: Start/Done run unguarded by design and are not
// matched.
func (ex *executor) nilSafeConsumers(sp *trace.Span) {
	tm := sp.Start()
	tm.Done(42)
}
