// Package driver is the Go counterpart of the paper's sqalpel.py experiment
// driver: a small client that is locally controlled through a configuration
// file, asks the platform web server for a task from a project's query pool,
// executes it against the locally available DBMS (five repetitions by
// default), and reports the wall-clock times, the CPU load averages around
// the run and an open-ended key/value list of extra indicators back to the
// server. The contributor is identified only by a separately supplied key.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sqalpel/internal/metrics"
	"sqalpel/internal/repository"
)

// Config is the locally controlled driver configuration.
type Config struct {
	// Server is the base URL of the sqalpel platform.
	Server string
	// Key is the contributor key identifying the source of the results
	// without disclosing the contributor's identity.
	Key string
	// DBMS and Platform are the catalog keys of the system and host used.
	DBMS     string
	Platform string
	// Experiment is the experiment id within the contributor's project.
	Experiment int
	// Runs is the number of repetitions per query (default 5).
	Runs int
	// Timeout bounds a single query execution.
	Timeout time.Duration
}

// ParseConfig parses the driver configuration format: one `key = value` pair
// per line, with '#' comments, mirroring the paper's description of a simple
// local configuration file.
func ParseConfig(text string) (Config, error) {
	cfg := Config{Runs: metrics.DefaultRuns, Timeout: time.Minute}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return cfg, fmt.Errorf("line %d: expected key = value, got %q", lineNo+1, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		switch strings.ToLower(key) {
		case "server":
			cfg.Server = val
		case "key":
			cfg.Key = val
		case "dbms":
			cfg.DBMS = val
		case "platform", "host":
			cfg.Platform = val
		case "experiment":
			n, err := strconv.Atoi(val)
			if err != nil {
				return cfg, fmt.Errorf("line %d: experiment must be a number", lineNo+1)
			}
			cfg.Experiment = n
		case "runs":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("line %d: runs must be a positive number", lineNo+1)
			}
			cfg.Runs = n
		case "timeout_seconds":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("line %d: timeout_seconds must be a positive number", lineNo+1)
			}
			cfg.Timeout = time.Duration(n) * time.Second
		default:
			return cfg, fmt.Errorf("line %d: unknown configuration key %q", lineNo+1, key)
		}
	}
	return cfg, cfg.Validate()
}

// LoadConfig reads and parses a configuration file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	return ParseConfig(string(data))
}

// Validate checks that the mandatory fields are present.
func (c Config) Validate() error {
	switch {
	case c.Server == "":
		return fmt.Errorf("driver config: server is required")
	case c.Key == "":
		return fmt.Errorf("driver config: key is required")
	case c.DBMS == "":
		return fmt.Errorf("driver config: dbms is required")
	case c.Platform == "":
		return fmt.Errorf("driver config: platform is required")
	case c.Experiment <= 0:
		return fmt.Errorf("driver config: experiment is required")
	}
	return nil
}

// Client talks to the platform server.
type Client struct {
	cfg  Config
	http *http.Client
}

// NewClient builds a client from a validated configuration.
func NewClient(cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Client{cfg: cfg, http: &http.Client{Timeout: 2 * cfg.Timeout}}, nil
}

// Config returns the client configuration.
func (c *Client) Config() Config { return c.cfg }

func (c *Client) post(path string, body any, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Post(strings.TrimSuffix(c.cfg.Server, "/")+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return resp.StatusCode, fmt.Errorf("server returned %d: %s", resp.StatusCode, apiErr.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding server response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

// RequestTask asks the server for the next query to run. It returns nil when
// the pool is exhausted for this DBMS + platform combination.
func (c *Client) RequestTask() (*repository.Task, error) {
	req := map[string]any{
		"key":           c.cfg.Key,
		"experiment_id": c.cfg.Experiment,
		"dbms":          c.cfg.DBMS,
		"platform":      c.cfg.Platform,
	}
	var task repository.Task
	status, err := c.post("/api/task/request", req, &task)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &task, nil
}

// Report sends a finished measurement back to the server.
func (c *Client) Report(taskID int, m *metrics.Measurement) error {
	req := map[string]any{
		"key":     c.cfg.Key,
		"task_id": taskID,
		"seconds": m.Seconds(),
		"error":   m.Err,
		"extra":   m.Extra,
	}
	_, err := c.post("/api/task/complete", req, nil)
	return err
}

// RunOnce requests one task, measures it on the target and reports the
// result. It returns false when no task was available.
func (c *Client) RunOnce(target metrics.Target) (bool, error) {
	task, err := c.RequestTask()
	if err != nil {
		return false, err
	}
	if task == nil {
		return false, nil
	}
	m := metrics.Measure(target, task.SQL, metrics.Options{Runs: c.cfg.Runs})
	if err := c.Report(task.ID, m); err != nil {
		return true, err
	}
	return true, nil
}

// RunAll keeps requesting and measuring tasks until the pool is exhausted or
// maxTasks have been processed (0 means no limit). It returns the number of
// tasks processed.
func (c *Client) RunAll(target metrics.Target, maxTasks int) (int, error) {
	done := 0
	for maxTasks == 0 || done < maxTasks {
		more, err := c.RunOnce(target)
		if err != nil {
			return done, err
		}
		if !more {
			return done, nil
		}
		done++
	}
	return done, nil
}
