// Package analysis is a self-contained, dependency-free re-implementation
// of the core of golang.org/x/tools/go/analysis: the Analyzer/Pass/
// Diagnostic contract project-specific checkers program against. The build
// environment pins the pure standard library (no module proxy), so the
// x/tools framework cannot be vendored — this package mirrors its shape
// closely enough that the analyzers in internal/lint/... could be ported to
// the real framework by changing one import line.
//
// The deliberate omissions versus x/tools: no Facts (none of sqalpel's
// analyzers need cross-package state), no Requires graph (the suite is
// flat), and no SSA — the checkers work on the AST plus go/types info the
// loader provides.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (used in diagnostics and in
// suppression comments), a doc string, and the Run function applied once
// per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, CLI flags and the
	// per-analyzer suppression token (//lint:<token>).
	Name string
	// Doc is the analyzer's documentation: the invariant it enforces, the
	// historical violation that motivated it, and the suppression token.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. The returned value is ignored by this suite (x/tools
	// uses it for inter-analyzer results) but kept for signature parity.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one package's syntax and type information to an analyzer,
// mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. Category is the
// reporting analyzer's name, filled in by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Inspect walks every file of the pass in depth-first order, calling f for
// each node; f returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
