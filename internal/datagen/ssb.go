package datagen

import (
	"fmt"

	"sqalpel/internal/engine"
)

// SSBOptions parameterise the Star Schema Benchmark generator.
type SSBOptions struct {
	// ScaleFactor follows the SSB convention: SF 1 is roughly 6 million
	// lineorder rows.
	ScaleFactor float64
	Seed        uint64
}

func (o SSBOptions) scaled(n, min int) int {
	v := int(float64(n) * o.ScaleFactor)
	if v < min {
		return min
	}
	return v
}

var ssbRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// SSB generates a Star Schema Benchmark database: a lineorder fact table
// with dates, customer, supplier and part dimension tables.
func SSB(opts SSBOptions) *engine.Database {
	if opts.ScaleFactor <= 0 {
		opts.ScaleFactor = 0.001
	}
	r := newRNG(opts.Seed + 7)
	db := engine.NewDatabase(fmt.Sprintf("ssb-sf%g", opts.ScaleFactor))

	// dates dimension: 7 years of days (1992-1998).
	dates := engine.NewTable("dates",
		engine.Column{Name: "d_datekey", Type: engine.TypeInt},
		engine.Column{Name: "d_date", Type: engine.TypeDate},
		engine.Column{Name: "d_year", Type: engine.TypeInt},
		engine.Column{Name: "d_month", Type: engine.TypeInt},
		engine.Column{Name: "d_weeknuminyear", Type: engine.TypeInt},
	)
	start := engine.MustParseDate("1992-01-01")
	end := engine.MustParseDate("1998-12-31")
	var dateKeys []int64
	for d := start; d <= end; d++ {
		y, m, day := engine.DateParts(d)
		key := int64(y*10000 + m*100 + day)
		dateKeys = append(dateKeys, key)
		dates.MustAppendRow(
			engine.NewInt(key),
			engine.NewDate(d),
			engine.NewInt(int64(y)),
			engine.NewInt(int64(m)),
			engine.NewInt(int64((d-start)/7%53)+1),
		)
	}
	db.AddTable(dates)

	// customer dimension.
	numCustomer := opts.scaled(30000, 15)
	customer := engine.NewTable("customer",
		engine.Column{Name: "c_custkey", Type: engine.TypeInt},
		engine.Column{Name: "c_name", Type: engine.TypeString},
		engine.Column{Name: "c_city", Type: engine.TypeString},
		engine.Column{Name: "c_nation", Type: engine.TypeString},
		engine.Column{Name: "c_region", Type: engine.TypeString},
	)
	for i := 1; i <= numCustomer; i++ {
		region := r.Pick(ssbRegions)
		nation := nations[r.Intn(len(nations))].name
		customer.MustAppendRow(
			engine.NewInt(int64(i)),
			engine.NewString(fmt.Sprintf("Customer#%08d", i)),
			engine.NewString(fmt.Sprintf("%s %d", nation[:min(5, len(nation))], r.Range(0, 9))),
			engine.NewString(nation),
			engine.NewString(region),
		)
	}
	db.AddTable(customer)

	// supplier dimension.
	numSupplier := opts.scaled(2000, 10)
	supplier := engine.NewTable("supplier",
		engine.Column{Name: "s_suppkey", Type: engine.TypeInt},
		engine.Column{Name: "s_name", Type: engine.TypeString},
		engine.Column{Name: "s_city", Type: engine.TypeString},
		engine.Column{Name: "s_nation", Type: engine.TypeString},
		engine.Column{Name: "s_region", Type: engine.TypeString},
	)
	for i := 1; i <= numSupplier; i++ {
		region := r.Pick(ssbRegions)
		nation := nations[r.Intn(len(nations))].name
		supplier.MustAppendRow(
			engine.NewInt(int64(i)),
			engine.NewString(fmt.Sprintf("Supplier#%08d", i)),
			engine.NewString(fmt.Sprintf("%s %d", nation[:min(5, len(nation))], r.Range(0, 9))),
			engine.NewString(nation),
			engine.NewString(region),
		)
	}
	db.AddTable(supplier)

	// part dimension.
	numPart := opts.scaled(200000, 20)
	part := engine.NewTable("part",
		engine.Column{Name: "p_partkey", Type: engine.TypeInt},
		engine.Column{Name: "p_name", Type: engine.TypeString},
		engine.Column{Name: "p_mfgr", Type: engine.TypeString},
		engine.Column{Name: "p_category", Type: engine.TypeString},
		engine.Column{Name: "p_brand", Type: engine.TypeString},
		engine.Column{Name: "p_color", Type: engine.TypeString},
	)
	for i := 1; i <= numPart; i++ {
		mfgr := r.Range(1, 5)
		cat := r.Range(1, 5)
		part.MustAppendRow(
			engine.NewInt(int64(i)),
			engine.NewString(r.Pick(partColors)+" "+r.Pick(partColors)),
			engine.NewString(fmt.Sprintf("MFGR#%d", mfgr)),
			engine.NewString(fmt.Sprintf("MFGR#%d%d", mfgr, cat)),
			engine.NewString(fmt.Sprintf("MFGR#%d%d%02d", mfgr, cat, r.Range(1, 40))),
			engine.NewString(r.Pick(partColors)),
		)
	}
	db.AddTable(part)

	// lineorder fact table.
	numLineorder := opts.scaled(6000000, 100)
	lineorder := engine.NewTable("lineorder",
		engine.Column{Name: "lo_orderkey", Type: engine.TypeInt},
		engine.Column{Name: "lo_linenumber", Type: engine.TypeInt},
		engine.Column{Name: "lo_custkey", Type: engine.TypeInt},
		engine.Column{Name: "lo_partkey", Type: engine.TypeInt},
		engine.Column{Name: "lo_suppkey", Type: engine.TypeInt},
		engine.Column{Name: "lo_orderdate", Type: engine.TypeInt},
		engine.Column{Name: "lo_quantity", Type: engine.TypeInt},
		engine.Column{Name: "lo_extendedprice", Type: engine.TypeFloat},
		engine.Column{Name: "lo_discount", Type: engine.TypeInt},
		engine.Column{Name: "lo_revenue", Type: engine.TypeFloat},
		engine.Column{Name: "lo_supplycost", Type: engine.TypeFloat},
	)
	for i := 1; i <= numLineorder; i++ {
		price := float64(r.Range(100, 100000)) / 10
		discount := r.Range(0, 10)
		lineorder.MustAppendRow(
			engine.NewInt(int64(i/4+1)),
			engine.NewInt(int64(i%7+1)),
			engine.NewInt(int64(r.Range(1, numCustomer))),
			engine.NewInt(int64(r.Range(1, numPart))),
			engine.NewInt(int64(r.Range(1, numSupplier))),
			engine.NewInt(dateKeys[r.Intn(len(dateKeys))]),
			engine.NewInt(int64(r.Range(1, 50))),
			engine.NewFloat(price),
			engine.NewInt(int64(discount)),
			engine.NewFloat(price*(1-float64(discount)/100)),
			engine.NewFloat(price*0.6),
		)
	}
	db.AddTable(lineorder)
	return db
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
