package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sqalpel/internal/plan"
	"sqalpel/internal/trace"
)

// Result is the outcome of executing a query.
type Result struct {
	// Columns are the output column names in order.
	Columns []string
	// Rows are the output rows.
	Rows [][]Value
	// Stats are the execution counters of the run.
	Stats Stats
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return len(r.Rows) }

// String renders a compact tabular form, used by examples and debugging.
func (r *Result) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, " | "))
	sb.WriteString("\n")
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		sb.WriteString(strings.Join(parts, " | "))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fingerprint returns an order-insensitive hashable summary of the result,
// used by tests to check that two engines agree.
func (r *Result) Fingerprint() string {
	lines := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			// Round floats so the two engines' different summation orders do
			// not produce spurious mismatches.
			if v.Kind == KindFloat {
				parts[i] = fmt.Sprintf("%.4f", v.F)
			} else {
				parts[i] = v.String()
			}
		}
		lines = append(lines, strings.Join(parts, "|"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// ExecOptions control one execution.
type ExecOptions struct {
	// Timeout aborts the query after the given duration; zero means no
	// timeout.
	Timeout time.Duration
	// MaxJoinRows overrides the guard on intermediate join sizes; zero keeps
	// the default.
	MaxJoinRows int
	// Parallelism caps the intra-query morsel workers of engines that
	// support them (the vektor family); 0 falls back to the engine's
	// configured default, 1 forces serial execution. Results are identical
	// at every setting — only wall-clock changes.
	Parallelism int
	// Tracer collects per-operator spans keyed by the plan's operator ids
	// (internal/trace); nil disables tracing at zero cost.
	Tracer *trace.Tracer
}

// Engine is a database system under test: it accepts SQL text and executes
// it against a Database. The two implementations (RowEngine and ColEngine)
// model the two systems the paper compares.
type Engine interface {
	// Name returns the engine's product name.
	Name() string
	// Version returns the engine version string.
	Version() string
	// Dialect returns the SQL dialect tag used to select dialect-specific
	// grammar literals.
	Dialect() string
	// Execute runs the query against the database.
	Execute(db *Database, sql string, opts ExecOptions) (*Result, error)
}

// PlanCached is implemented by engines that execute through the shared
// logical-plan layer. Setting a cache shares plans across repetitions (and,
// when the same cache is handed to several engines, across engines); setting
// nil disables caching so every execution re-plans.
type PlanCached interface {
	// SetPlanCache installs the plan cache (nil disables caching).
	SetPlanCache(c *plan.Cache)
	// PlanCacheStats returns the cache's hit/miss counters; zeros when
	// caching is disabled.
	PlanCacheStats() (hits, misses uint64)
}

// planFor resolves the logical plan of the query: from the cache when one is
// installed — keyed by the database identity, its schema/data version and
// the normalized SQL, so repetitions pay zero parse/analysis work — or by
// building fresh.
func planFor(cache *plan.Cache, db *Database, sql string) (*plan.Plan, error) {
	if cache == nil {
		return plan.Build(db, sql)
	}
	return cache.GetOrBuild(plan.Key(db, db.Version(), sql), func() (*plan.Plan, error) {
		return plan.Build(db, sql)
	})
}

// baseEngine carries the shared execution logic of both interpreters.
type baseEngine struct {
	name       string
	version    string
	dialect    string
	mode       Mode
	guardCasts bool
	plans      *plan.Cache
}

func (e *baseEngine) Name() string    { return e.name }
func (e *baseEngine) Version() string { return e.version }
func (e *baseEngine) Dialect() string { return e.dialect }

// SetPlanCache implements PlanCached.
func (e *baseEngine) SetPlanCache(c *plan.Cache) { e.plans = c }

// PlanCacheStats implements PlanCached.
func (e *baseEngine) PlanCacheStats() (hits, misses uint64) {
	if e.plans == nil {
		return 0, 0
	}
	return e.plans.Stats()
}

// Execute plans (or fetches the cached plan of) the query and runs it.
func (e *baseEngine) Execute(db *Database, sql string, opts ExecOptions) (*Result, error) {
	p, err := planFor(e.plans, db, sql)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.name, err)
	}
	return e.ExecutePlan(db, p, opts)
}

// ExecutePlan runs an already planned query; the vektor adapter uses it to
// fall back to the interpreter without re-planning.
func (e *baseEngine) ExecutePlan(db *Database, p *plan.Plan, opts ExecOptions) (*Result, error) {
	limits := executionLimits{maxJoinRows: opts.MaxJoinRows}
	if opts.Timeout > 0 {
		limits.deadline = time.Now().Add(opts.Timeout)
	}
	ex := newExecutor(db, e.mode, limits, e.guardCasts, p)
	if opts.Tracer != nil {
		ex.tracer = opts.Tracer
		ex.subPrefix = trace.SubqueryPrefixes(p.Root.Stmt, "")
	}
	rel, err := ex.executeSelect(p.Root, nil, "")
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.name, err)
	}
	res := &Result{Columns: rel.columnNames(), Stats: *ex.stats}
	res.Rows = make([][]Value, rel.numRows())
	for i := 0; i < rel.numRows(); i++ {
		row := make([]Value, len(rel.cols))
		for c := range rel.cols {
			row[c] = rel.cols[c].vals[i]
		}
		res.Rows[i] = row
	}
	return res, nil
}

// RowEngine options and constructor.

// NewRowEngine returns the tuple-at-a-time engine ("tuplestore 1.0"): full
// width scans, short-circuit filters, no intermediate materialisation, early
// LIMIT exit.
func NewRowEngine() Engine {
	return &baseEngine{name: "tuplestore", version: "1.0", dialect: "tuplestore", mode: ModeRow, plans: plan.NewCache(0)}
}

// ColEngineOptions tune the column engine variant.
type ColEngineOptions struct {
	// Version overrides the reported version string.
	Version string
	// DisableGuardCasts models the newer engine release that no longer pays
	// the overflow-guarding widening pass on multiplications.
	DisableGuardCasts bool
}

// NewColEngine returns the column-at-a-time engine ("columba 1.0") with the
// overflow-guard materialisation behaviour the paper describes for MonetDB.
func NewColEngine() Engine {
	return &baseEngine{name: "columba", version: "1.0", dialect: "columba", mode: ModeColumn, guardCasts: true, plans: plan.NewCache(0)}
}

// NewColEngineWithOptions returns a tuned column engine variant, used to
// compare two versions of the same system.
func NewColEngineWithOptions(opts ColEngineOptions) Engine {
	version := opts.Version
	if version == "" {
		version = "2.0"
	}
	return &baseEngine{
		name:       "columba",
		version:    version,
		dialect:    "columba",
		mode:       ModeColumn,
		guardCasts: !opts.DisableGuardCasts,
		plans:      plan.NewCache(0),
	}
}

// Registry maps engine keys ("name-version") to constructed engines, the way
// the platform's DBMS catalog refers to them. All engines registered in one
// registry share one plan cache: a measurement cell that runs the same query
// on six engines pays the front-end analysis once.
type Registry struct {
	engines map[string]Engine
	order   []string
	plans   *plan.Cache
}

// NewRegistry returns a registry pre-populated with the built-in engines:
// the four execution paradigms (tuple-at-a-time, column-at-a-time,
// batch-vectorized, data-centric compiled), the middle two in two releases
// each, all sharing one plan cache.
func NewRegistry() *Registry {
	r := &Registry{engines: map[string]Engine{}, plans: plan.NewCache(0)}
	r.Register(NewRowEngine())
	r.Register(NewColEngine())
	r.Register(NewColEngineWithOptions(ColEngineOptions{Version: "2.0", DisableGuardCasts: true}))
	r.Register(NewVektorEngine())
	r.Register(NewVektorEngineWithOptions(VektorOptions{Version: "2.0", BatchSize: 4096}))
	r.Register(NewFusilEngine())
	return r
}

// Register adds an engine under its canonical key, attaching the registry's
// shared plan cache when the engine supports one.
func (r *Registry) Register(e Engine) {
	key := EngineKey(e.Name(), e.Version())
	if _, exists := r.engines[key]; !exists {
		r.order = append(r.order, key)
	}
	r.engines[key] = e
	if pc, ok := e.(PlanCached); ok && r.plans != nil {
		pc.SetPlanCache(r.plans)
	}
}

// PlanCache returns the registry's shared plan cache.
func (r *Registry) PlanCache() *plan.Cache { return r.plans }

// Explain resolves the query's logical plan through the registry's shared
// plan cache and renders the EXPLAIN plan-JSON document. The document is a
// pure function of the plan, so it holds for every registered engine; its
// operator ids are the ones execution traces key their spans by.
func (r *Registry) Explain(db *Database, sql string) (*trace.PlanDoc, error) {
	p, err := planFor(r.plans, db, sql)
	if err != nil {
		return nil, err
	}
	return trace.Explain(p, sql), nil
}

// ExplainJSON renders the EXPLAIN plan-JSON document as indented JSON, the
// form the explain subcommand prints and the golden files pin.
func (r *Registry) ExplainJSON(db *Database, sql string) ([]byte, error) {
	doc, err := r.Explain(db, sql)
	if err != nil {
		return nil, err
	}
	return doc.JSON()
}

// EngineRoute is one engine's execution route for a statement: the
// paradigm that will actually run it and, for the verdict-routed engines
// (vectorized, compiled) that fall back, the plan's reason.
type EngineRoute struct {
	Engine   string // registry key
	Paradigm string // the paradigm that will execute the statement
	Fallback bool   // a verdict-routed engine routes to its interpreter
	Reason   string // the plan's NotVectorizableReason when Fallback
}

// Routes reports, without executing, how each registered engine would run
// the statement — from the shared plan's precomputed verdict, the same
// bit Execute routes on. The interpreters always run natively; the
// vectorized and compiled engines support exactly the vectorizable subset
// and fall back to the column interpreter outside it.
func (r *Registry) Routes(db *Database, sql string) ([]EngineRoute, error) {
	p, err := planFor(r.plans, db, sql)
	if err != nil {
		return nil, err
	}
	routes := make([]EngineRoute, 0, len(r.order))
	for _, key := range r.order {
		rt := EngineRoute{Engine: key}
		switch e := r.engines[key].(type) {
		case *vektorEngine:
			if p.Vectorizable {
				rt.Paradigm = "batch-vectorized"
			} else {
				rt.Paradigm = "column-at-a-time interpreter (fallback)"
				rt.Fallback = true
				rt.Reason = p.NotVectorizableReason
			}
		case *fusilEngine:
			if p.Vectorizable {
				rt.Paradigm = "data-centric compiled"
			} else {
				rt.Paradigm = "column-at-a-time interpreter (fallback)"
				rt.Fallback = true
				rt.Reason = p.NotVectorizableReason
			}
		case *baseEngine:
			if e.mode == ModeRow {
				rt.Paradigm = "tuple-at-a-time interpreter"
			} else {
				rt.Paradigm = "column-at-a-time interpreter"
			}
		default:
			rt.Paradigm = "unknown"
		}
		routes = append(routes, rt)
	}
	return routes, nil
}

// EngineKey builds the canonical registry key of an engine.
func EngineKey(name, version string) string {
	return strings.ToLower(name) + "-" + version
}

// Get returns the engine registered under the key, or nil.
func (r *Registry) Get(key string) Engine {
	return r.engines[strings.ToLower(key)]
}

// Keys lists the registered engine keys in registration order.
func (r *Registry) Keys() []string {
	return append([]string(nil), r.order...)
}

// Engines lists the registered engines in registration order.
func (r *Registry) Engines() []Engine {
	out := make([]Engine, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.engines[k])
	}
	return out
}
