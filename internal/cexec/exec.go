package cexec

import (
	"fmt"
	"strings"
	"time"

	"sqalpel/internal/plan"
	"sqalpel/internal/sqlparser"
	"sqalpel/internal/trace"
	"sqalpel/internal/vexec"
)

// This file builds and runs the compiled pipelines: the fused
// scan→filter→consume push loops, the materializing inputs (derived
// tables, explicit JOIN trees) and the join breakers. The operator
// topology — which conjuncts run below the joins, the join order, where
// intermediates materialize — is the vectorized executor's, read from the
// same plan; only the execution style differs (one compiled loop per
// pipeline instead of a pull-based operator chain).

// cond is one compiled filter conjunct. Compile errors are carried, not
// raised: the vectorized executor only evaluates filter conjuncts when
// rows actually flow through them, so a conjunct over a column that does
// not exist must not fail a query whose pipeline is empty. The error
// surfaces (deferred to the interpreter) at the first row instead.
type cond struct {
	fn  rowFn
	err error
}

func (ex *executor) compileConds(exprs []sqlparser.Expr, sc *scope) []cond {
	out := make([]cond, len(exprs))
	for i, e := range exprs {
		out[i].fn, out[i].err = ex.compile(e, sc)
	}
	return out
}

// passConds applies compiled conjuncts to one row with two-valued truth
// (NULL fails). Conjunct errors — compile-time and runtime alike — defer
// the statement to the interpreter; later conjuncts are not evaluated for
// rows an earlier conjunct already rejected, matching the vectorized
// executor's shrinking selection.
func passConds(conds []cond, row []Scalar) (bool, error) {
	for i := range conds {
		if conds[i].err != nil {
			return false, deferToFallback(conds[i].err)
		}
		v, err := conds[i].fn(row)
		if err != nil {
			return false, deferToFallback(err)
		}
		if v.IsNull() || !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

// pipeline is one compiled push loop: run drives every source row through
// the fused filters into consume.
type pipeline struct {
	meta []colMeta
	run  func(consume func(row []Scalar) error) error
}

// run executes one SELECT core under the given trace prefix.
func (ex *executor) run(sp *plan.Select, prefix string) (*Result, error) {
	stmt := sp.Stmt
	if len(stmt.Projection) == 0 {
		return nil, fmt.Errorf("query has no projection")
	}
	// Materialize the statement's sub-query states before its pipeline is
	// compiled: the use-site closures bind them read-only.
	if err := ex.prepareSubqueries(stmt, prefix); err != nil {
		return nil, err
	}
	pipe, err := ex.buildPipeline(sp, prefix)
	if err != nil {
		return nil, err
	}
	if sp.Grouped {
		return ex.runGrouped(stmt, pipe, prefix)
	}
	return ex.runRows(stmt, pipe, prefix)
}

// runRel executes a nested SELECT core and re-frames its projected output
// as a materialized relation carrying the given schema — the shape derived
// tables and sub-query materialization consume.
func (ex *executor) runRel(sp *plan.Select, schema []plan.ColumnMeta, prefix string) (*rel, error) {
	res, err := ex.run(sp, prefix)
	if err != nil {
		return nil, err
	}
	n := res.NumRows()
	meta := make([]colMeta, len(res.Cols))
	for i := range res.Cols {
		if i < len(schema) {
			meta[i] = colMeta{table: schema[i].Table, name: schema[i].Name}
		} else if i < len(res.Columns) {
			meta[i] = colMeta{name: strings.ToLower(res.Columns[i])}
		}
	}
	rows := make([][]Scalar, n)
	for r := 0; r < n; r++ {
		row := make([]Scalar, len(res.Cols))
		for c := range res.Cols {
			row[c] = res.Cols[c][r]
		}
		rows[r] = row
	}
	return &rel{meta: meta, rows: rows}, nil
}

// buildPipeline compiles the FROM/WHERE part of one SELECT core into a
// push loop. A single plain-table input becomes the fully fused hot path:
// scan, pushed-down conjuncts and residual conjuncts in one loop with no
// intermediate. Derived tables, JOIN trees and multi-input FROMs
// materialize their inputs (the same pipeline breakers the vectorized
// executor has), and only the final residual pass stays fused.
func (ex *executor) buildPipeline(sp *plan.Select, prefix string) (*pipeline, error) {
	if len(sp.From) == 0 {
		residual := ex.compileConds(sp.VexecResidual, &scope{})
		var span *trace.Span
		if len(sp.VexecResidual) > 0 && ex.traceOn(prefix) {
			span = ex.tracer.Span(trace.FilterID(prefix), trace.KindFilter)
		}
		return &pipeline{run: func(consume func([]Scalar) error) error {
			ex.stats.PipelinesFused++
			t0 := time.Now()
			ok, err := passConds(residual, []Scalar{})
			if err != nil {
				return err
			}
			if span != nil {
				d := trace.SpanDelta{WallNS: time.Since(t0).Nanoseconds()}
				if ok {
					d.Rows = 1
				}
				span.Merge(d)
			}
			if !ok {
				return nil
			}
			return consume([]Scalar{})
		}}, nil
	}

	if len(sp.From) == 1 && sp.From[0].Join == nil && sp.From[0].Derived == nil {
		return ex.fusedScanPipeline(sp, prefix)
	}

	// General shape: build every input first (derived sub-plans run here,
	// in FROM order, like the vectorized executor's buildInput pass), then
	// apply the pushed-down conjuncts per input, then stitch the join steps.
	raw := make([]*rel, len(sp.From))
	for i, in := range sp.From {
		r, err := ex.inputRel(in, i, prefix)
		if err != nil {
			return nil, err
		}
		raw[i] = r
	}
	rels := make([]*rel, len(raw))
	for i, r := range raw {
		f, err := ex.pushdownRel(r, sp.VexecPushdown[i], i, prefix)
		if err != nil {
			return nil, err
		}
		rels[i] = f
	}
	cur := rels[0]
	for k, step := range sp.JoinSteps {
		var tm trace.Timer
		if ex.traceOn(prefix) {
			kind := trace.KindHashJoin
			if step.Cross {
				kind = trace.KindCross
			}
			tm = ex.tracer.Span(trace.JoinID(prefix, k), kind).Start()
		}
		var err error
		if step.Cross {
			cur, err = ex.crossJoinRel(cur, rels[step.Right])
		} else {
			cur, err = ex.hashJoinRel(cur, rels[step.Right], step.LeftKeys, step.RightKeys)
		}
		if err != nil {
			return nil, err
		}
		tm.Done(int64(len(cur.rows)))
	}

	residual := ex.compileConds(sp.VexecResidual, &scope{meta: cur.meta})
	var resSpan *trace.Span
	if len(sp.VexecResidual) > 0 && ex.traceOn(prefix) {
		resSpan = ex.tracer.Span(trace.FilterID(prefix), trace.KindFilter)
	}
	src := cur
	return &pipeline{meta: cur.meta, run: func(consume func([]Scalar) error) error {
		ex.stats.PipelinesFused++
		t0 := time.Now()
		var out int64
		for i, row := range src.rows {
			if i&1023 == 0 {
				if err := ex.checkDeadline(); err != nil {
					return err
				}
			}
			ok, err := passConds(residual, row)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			out++
			if err := consume(row); err != nil {
				return err
			}
		}
		if resSpan != nil {
			resSpan.Merge(trace.SpanDelta{WallNS: time.Since(t0).Nanoseconds(), Rows: out})
		}
		return nil
	}}, nil
}

// fusedScanPipeline is the compiled engine's signature shape: one table,
// its pushed-down conjuncts and the residual conjuncts fused into a single
// loop — no batches, no handoffs, no intermediate materialization.
func (ex *executor) fusedScanPipeline(sp *plan.Select, prefix string) (*pipeline, error) {
	in := sp.From[0]
	table, err := ex.cat.VTable(in.Table)
	if err != nil {
		return nil, err
	}
	meta := scanMeta(table, in.Alias)
	sc := &scope{meta: meta}
	pushdown := ex.compileConds(sp.VexecPushdown[0], sc)
	residual := ex.compileConds(sp.VexecResidual, sc)
	zones := table.ZonePreds(in.Alias, sp.VexecPushdown[0])

	var scanSpan, pushSpan, resSpan *trace.Span
	if ex.traceOn(prefix) {
		scanSpan = ex.tracer.Span(trace.ScanID(prefix, 0), trace.KindScan)
		if len(sp.VexecPushdown[0]) > 0 {
			pushSpan = ex.tracer.Span(trace.PushFilterID(prefix, 0), trace.KindFilter)
		}
		if len(sp.VexecResidual) > 0 {
			resSpan = ex.tracer.Span(trace.FilterID(prefix), trace.KindFilter)
		}
	}

	return &pipeline{meta: meta, run: func(consume func([]Scalar) error) error {
		ex.stats.PipelinesFused++
		nr := table.NumRows()
		nc := len(table.Cols)
		t0 := time.Now()
		var pushed, out, visited, skipped int64
		for i := 0; i < nr; {
			// Block boundaries double as the deadline-check cadence; the
			// skip jump keeps i on boundaries, so every block is tested
			// exactly once.
			if i%vexec.ZoneBlockRows == 0 {
				if err := ex.checkDeadline(); err != nil {
					return err
				}
				if len(zones) > 0 && !table.BlockMayMatch(zones, i/vexec.ZoneBlockRows) {
					skipped++
					i += vexec.ZoneBlockRows
					continue
				}
			}
			row := make([]Scalar, nc)
			for c := 0; c < nc; c++ {
				row[c] = table.Cols[c].Vec.At(i)
			}
			i++
			visited++
			ex.stats.RowsScanned++
			ok, err := passConds(pushdown, row)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			pushed++
			ok, err = passConds(residual, row)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			out++
			if err := consume(row); err != nil {
				return err
			}
		}
		ex.stats.BlocksSkipped += skipped
		if scanSpan != nil {
			scanSpan.Merge(trace.SpanDelta{WallNS: time.Since(t0).Nanoseconds(), Rows: visited, BlocksSkipped: skipped})
		}
		if pushSpan != nil {
			pushSpan.Merge(trace.SpanDelta{Rows: pushed})
		}
		if resSpan != nil {
			resSpan.Merge(trace.SpanDelta{Rows: out})
		}
		return nil
	}}, nil
}

func scanMeta(t *vexec.Table, alias string) []colMeta {
	if alias == "" {
		alias = t.Name
	}
	meta := make([]colMeta, len(t.Cols))
	for i, c := range t.Cols {
		meta[i] = colMeta{table: strings.ToLower(alias), name: strings.ToLower(c.Name)}
	}
	return meta
}

// inputRel materializes one planned FROM input. idx is the input's FROM
// position, keying its trace span; the operands of explicit JOIN trees
// pass -1 (the whole tree is traced as one input operator).
func (ex *executor) inputRel(in *plan.Input, idx int, prefix string) (*rel, error) {
	switch {
	case in.Join != nil:
		var tm trace.Timer
		if ex.traceOn(prefix) && idx >= 0 {
			tm = ex.tracer.Span(trace.InputID(prefix, idx), trace.KindJoinTree).Start()
		}
		r, err := ex.buildJoinRel(in.Join)
		if err != nil {
			return nil, err
		}
		tm.Done(int64(len(r.rows)))
		return r, nil
	case in.Derived != nil:
		// A derived table runs its sub-plan to completion and feeds the
		// result in as a materialized input, renamed to the derived alias.
		// Only top-level FROM positions have an operator id; operands of
		// explicit JOIN trees run untraced, like the interpreters.
		childPrefix := noTracePrefix
		var tm trace.Timer
		if idx >= 0 && ex.traceOn(prefix) {
			childPrefix = trace.DerivedPrefix(prefix, idx)
			tm = ex.tracer.Span(trace.InputID(prefix, idx), trace.KindDerived).Start()
		}
		r, err := ex.runRel(in.Derived, in.Schema, childPrefix)
		if err != nil {
			return nil, err
		}
		tm.Done(int64(len(r.rows)))
		return r, nil
	default:
		table, err := ex.cat.VTable(in.Table)
		if err != nil {
			return nil, err
		}
		meta := scanMeta(table, in.Alias)
		var span *trace.Span
		if ex.traceOn(prefix) && idx >= 0 {
			span = ex.tracer.Span(trace.ScanID(prefix, idx), trace.KindScan)
		}
		nr := table.NumRows()
		nc := len(table.Cols)
		t0 := time.Now()
		rows := make([][]Scalar, nr)
		for i := 0; i < nr; i++ {
			if i&1023 == 0 {
				if err := ex.checkDeadline(); err != nil {
					return nil, err
				}
			}
			row := make([]Scalar, nc)
			for c := 0; c < nc; c++ {
				row[c] = table.Cols[c].Vec.At(i)
			}
			rows[i] = row
		}
		ex.stats.RowsScanned += int64(nr)
		if span != nil {
			span.Merge(trace.SpanDelta{WallNS: time.Since(t0).Nanoseconds(), Rows: int64(nr)})
		}
		return &rel{meta: meta, rows: rows}, nil
	}
}

// pushdownRel applies one input's pushed-down conjuncts. Conjunct errors
// defer (passConds); the span records surviving rows, like the vectorized
// executor's pushdown filter.
func (ex *executor) pushdownRel(r *rel, conjuncts []sqlparser.Expr, idx int, prefix string) (*rel, error) {
	if len(conjuncts) == 0 {
		return r, nil
	}
	conds := ex.compileConds(conjuncts, &scope{meta: r.meta})
	var span *trace.Span
	if ex.traceOn(prefix) {
		span = ex.tracer.Span(trace.PushFilterID(prefix, idx), trace.KindFilter)
	}
	t0 := time.Now()
	keep := make([][]Scalar, 0, len(r.rows))
	for _, row := range r.rows {
		ok, err := passConds(conds, row)
		if err != nil {
			return nil, err
		}
		if ok {
			keep = append(keep, row)
		}
	}
	if span != nil {
		span.Merge(trace.SpanDelta{WallNS: time.Since(t0).Nanoseconds(), Rows: int64(len(keep))})
	}
	return &rel{meta: r.meta, rows: keep}, nil
}

// buildJoinRel materializes an explicit JOIN tree whose ON condition the
// plan already classified. The operands carry no operator ids of their own
// (idx -1): the whole tree is traced as one input operator.
func (ex *executor) buildJoinRel(j *plan.Join) (*rel, error) {
	left, err := ex.inputRel(j.Left, -1, noTracePrefix)
	if err != nil {
		return nil, err
	}
	right, err := ex.inputRel(j.Right, -1, noTracePrefix)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case "CROSS":
		return ex.crossJoinRel(left, right)
	case "INNER":
		if len(j.LeftKeys) == 0 {
			// Arbitrary join condition: cartesian product plus a filter over
			// every conjunct.
			ex.stats.LoopJoins++
			joined, err := ex.crossJoinRel(left, right)
			if err != nil {
				return nil, err
			}
			return ex.applyFilterRel(joined, j.AllConds)
		}
		joined, err := ex.hashJoinRel(left, right, j.LeftKeys, j.RightKeys)
		if err != nil {
			return nil, err
		}
		if len(j.Residual) > 0 {
			return ex.applyFilterRel(joined, j.Residual)
		}
		return joined, nil
	case "LEFT":
		return ex.leftJoinRel(left, right, j.LeftKeys, j.RightKeys, j.Residual)
	default:
		return nil, fmt.Errorf("%w: %s join", ErrUnsupported, j.Kind)
	}
}

// applyFilterRel filters a materialized relation conjunct by conjunct with
// two-valued truth. Unlike the streamed passConds path, the conjuncts here
// ARE evaluated over empty relations (the vectorized executor's
// materialized filters behave the same), so compile errors surface —
// deferred — regardless of row count; conjuncts after one that empties the
// relation are not reached.
func (ex *executor) applyFilterRel(r *rel, conjuncts []sqlparser.Expr) (*rel, error) {
	rows := r.rows
	sc := &scope{meta: r.meta}
	for _, e := range conjuncts {
		fn, err := ex.compile(e, sc)
		if err != nil {
			return nil, deferToFallback(err)
		}
		keep := make([][]Scalar, 0, len(rows))
		for _, row := range rows {
			v, err := fn(row)
			if err != nil {
				return nil, deferToFallback(err)
			}
			if !v.IsNull() && v.Truthy() {
				keep = append(keep, row)
			}
		}
		rows = keep
		if len(rows) == 0 {
			break
		}
	}
	return &rel{meta: r.meta, rows: rows}, nil
}

// evalKeyCols evaluates join-key expressions column at a time over a
// relation. Key errors are plain: the vectorized executor evaluates its
// key vectors outside any deferring context.
func (ex *executor) evalKeyCols(r *rel, keys []sqlparser.Expr) ([][]Scalar, error) {
	sc := &scope{meta: r.meta}
	out := make([][]Scalar, len(keys))
	for ki, k := range keys {
		fn, err := ex.compile(k, sc)
		if err != nil {
			return nil, err
		}
		col := make([]Scalar, len(r.rows))
		for i, row := range r.rows {
			if col[i], err = fn(row); err != nil {
				return nil, err
			}
		}
		out[ki] = col
	}
	return out, nil
}

// nullKeyAt reports whether any key column is NULL at row i.
func nullKeyAt(cols [][]Scalar, i int) bool {
	for _, c := range cols {
		if c[i].IsNull() {
			return true
		}
	}
	return false
}

// encodeKeyAt appends row i's composite key: one scalar encoding per
// column, each '|'-terminated — byte-identical to the vectorized
// executor's row-key encoding, so grouping and join bucketing agree.
func encodeKeyAt(buf []byte, cols [][]Scalar, i int) []byte {
	for _, c := range cols {
		buf = vexec.AppendScalarKey(buf, c[i])
		buf = append(buf, '|')
	}
	return buf
}

// joinLists is a bucketed linked-list index: head/tail per group id, next
// per row, preserving insertion order within each group.
type joinLists struct {
	head []int32
	tail []int32
	next []int32
}

func newJoinLists(nRows int) joinLists {
	return joinLists{next: make([]int32, nRows)}
}

// insert appends row i to group g, growing the group arrays as needed.
func (jl *joinLists) insert(g int, i int32) {
	for g >= len(jl.head) {
		jl.head = append(jl.head, -1)
		jl.tail = append(jl.tail, -1)
	}
	if jl.head[g] < 0 {
		jl.head[g] = i
	} else {
		jl.next[jl.tail[g]] = i
	}
	jl.tail[g] = i
	jl.next[i] = -1
}

// hashJoinRel is the inner equi-join breaker: build on the smaller side,
// probe in the larger side's order, NULL keys match nothing on either
// side. Matches per probe row come in build insertion order — the same
// order the vectorized executor and the interpreters emit.
func (ex *executor) hashJoinRel(left, right *rel, leftKeys, rightKeys []sqlparser.Expr) (*rel, error) {
	ex.stats.HashJoins++
	build, probe := right, left
	bk, pk := rightKeys, leftKeys
	swapped := false
	if len(left.rows) < len(right.rows) {
		build, probe = left, right
		bk, pk = leftKeys, rightKeys
		swapped = true
	}
	bCols, err := ex.evalKeyCols(build, bk)
	if err != nil {
		return nil, err
	}
	pCols, err := ex.evalKeyCols(probe, pk)
	if err != nil {
		return nil, err
	}

	groups := map[string]int32{}
	jl := newJoinLists(len(build.rows))
	var buildRows int64
	var buf []byte
	for i := range build.rows {
		if nullKeyAt(bCols, i) {
			continue
		}
		buildRows++
		buf = encodeKeyAt(buf[:0], bCols, i)
		g, ok := groups[string(buf)]
		if !ok {
			g = int32(len(groups))
			groups[string(buf)] = g
		}
		jl.insert(int(g), int32(i))
	}

	var probeIdx, buildIdx []int32
	var probeRows int64
	for i := range probe.rows {
		if nullKeyAt(pCols, i) {
			continue
		}
		probeRows++
		buf = encodeKeyAt(buf[:0], pCols, i)
		g, ok := groups[string(buf)]
		if !ok {
			continue
		}
		for r := jl.head[g]; r >= 0; r = jl.next[r] {
			probeIdx = append(probeIdx, int32(i))
			buildIdx = append(buildIdx, r)
			if len(probeIdx) > ex.opts.MaxJoinRows {
				return nil, fmt.Errorf("join result exceeds %d rows", ex.opts.MaxJoinRows)
			}
		}
	}
	ex.stats.JoinBuildRows += buildRows
	ex.stats.JoinProbeRows += probeRows
	if err := ex.checkDeadline(); err != nil {
		return nil, err
	}

	leftIdx, rightIdx := probeIdx, buildIdx
	if swapped {
		leftIdx, rightIdx = buildIdx, probeIdx
	}
	out := &rel{meta: concatMeta(left.meta, right.meta), rows: make([][]Scalar, len(leftIdx))}
	for k := range leftIdx {
		out.rows[k] = concatRow(left.rows[leftIdx[k]], right.rows[rightIdx[k]])
	}
	return out, nil
}

// crossJoinRel is the cartesian breaker, guarded against blowups.
func (ex *executor) crossJoinRel(left, right *rel) (*rel, error) {
	ex.stats.LoopJoins++
	nl, nr := len(left.rows), len(right.rows)
	if nl > 0 && nr > 0 && nl > ex.opts.MaxJoinRows/nr {
		return nil, fmt.Errorf("cross product of %d x %d rows exceeds the %d row limit", nl, nr, ex.opts.MaxJoinRows)
	}
	rows := make([][]Scalar, 0, nl*nr)
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			rows = append(rows, concatRow(left.rows[i], right.rows[j]))
		}
	}
	return &rel{meta: concatMeta(left.meta, right.meta), rows: rows}, nil
}

// leftJoinRel preserves every left row: matched rows pair with their
// candidates (bucket insertion order), unmatched rows null-extend the right
// side. Residual ON conjuncts filter candidate pairs with two-valued
// truth, their errors deferring — the vectorized executor evaluates them
// over a conditional pair batch the interpreters' row loop may never
// build.
func (ex *executor) leftJoinRel(left, right *rel, leftKeys, rightKeys []sqlparser.Expr, residual []sqlparser.Expr) (*rel, error) {
	nl, nr := len(left.rows), len(right.rows)
	var rCols, lCols [][]Scalar
	var err error
	if len(rightKeys) > 0 {
		if rCols, err = ex.evalKeyCols(right, rightKeys); err != nil {
			return nil, err
		}
		if lCols, err = ex.evalKeyCols(left, leftKeys); err != nil {
			return nil, err
		}
	}

	// Build buckets over the right side; keyless LEFT JOIN uses one bucket.
	buckets := map[string][]int32{}
	var buildRows int64
	var buf []byte
	for i := 0; i < nr; i++ {
		key := ""
		if rCols != nil {
			if nullKeyAt(rCols, i) {
				continue
			}
			buf = encodeKeyAt(buf[:0], rCols, i)
			key = string(buf)
		}
		buildRows++
		buckets[key] = append(buckets[key], int32(i))
	}
	ex.stats.HashJoins++
	ex.stats.JoinBuildRows += buildRows
	ex.stats.JoinProbeRows += int64(nl)

	// Collect every left row's candidate pairs.
	var candL, candR []int32
	off := make([]int32, nl+1)
	for i := 0; i < nl; i++ {
		keyNull := false
		key := ""
		if lCols != nil {
			if nullKeyAt(lCols, i) {
				keyNull = true
			} else {
				buf = encodeKeyAt(buf[:0], lCols, i)
				key = string(buf)
			}
		}
		if !keyNull {
			for _, ri := range buckets[key] {
				candL = append(candL, int32(i))
				candR = append(candR, ri)
			}
		}
		off[i+1] = int32(len(candL))
	}

	pass := make([]bool, len(candL))
	for i := range pass {
		pass[i] = true
	}
	if len(residual) > 0 && len(candL) > 0 {
		sc := &scope{meta: concatMeta(left.meta, right.meta)}
		for _, e := range residual {
			fn, err := ex.compile(e, sc)
			if err != nil {
				return nil, deferToFallback(err)
			}
			// Every conjunct evaluates over every candidate pair (the
			// vectorized executor computes whole pair vectors), not just the
			// still-passing ones.
			for k := range pass {
				v, err := fn(concatRow(left.rows[candL[k]], right.rows[candR[k]]))
				if err != nil {
					return nil, deferToFallback(err)
				}
				if pass[k] && (v.IsNull() || !v.Truthy()) {
					pass[k] = false
				}
			}
		}
	}

	out := &rel{meta: concatMeta(left.meta, right.meta)}
	nullRight := make([]Scalar, len(right.meta))
	for i := 0; i < nl; i++ {
		matched := false
		for k := off[i]; k < off[i+1]; k++ {
			if pass[k] {
				out.rows = append(out.rows, concatRow(left.rows[i], right.rows[candR[k]]))
				matched = true
			}
		}
		if !matched {
			out.rows = append(out.rows, concatRow(left.rows[i], nullRight))
		}
	}
	return out, nil
}

func concatMeta(a, b []colMeta) []colMeta {
	out := make([]colMeta, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func concatRow(a, b []Scalar) []Scalar {
	out := make([]Scalar, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}
