package vexec

import "sqalpel/internal/sqlsem"

// This file is the exported scalar surface of the vectorized kernel: the
// boxed value type, its kernels (arithmetic, comparison, LIKE, key
// encoding, date math) and the aggregate accumulator, re-exported for the
// compiled engine (internal/cexec). The compiled paradigm fuses pipelines
// into row-at-a-time closures instead of batch operators, but both engines
// must agree bit for bit on every value operation — sharing one
// implementation is what makes that a theorem instead of a test suite.

// Scalar is the exported face of the executor's boxed value: one SQL value
// as it crosses block boundaries. The zero value is SQL NULL.
type Scalar = scalar

// NullScalar returns SQL NULL.
func NullScalar() Scalar { return nullScalar }

// IntScalar boxes an integer.
func IntScalar(i int64) Scalar { return scalar{kind: KindInt, i: i} }

// FloatScalar boxes a float.
func FloatScalar(f float64) Scalar { return scalar{kind: KindFloat, f: f} }

// StringScalar boxes a string.
func StringScalar(s string) Scalar { return scalar{kind: KindString, s: s} }

// BoolScalar boxes a boolean.
func BoolScalar(b bool) Scalar {
	if b {
		return scalar{kind: KindBool, i: 1}
	}
	return scalar{kind: KindBool, i: 0}
}

// DateScalar boxes a date as days since 1970-01-01.
func DateScalar(days int64) Scalar { return scalar{kind: KindDate, i: days} }

// IsNull reports SQL NULL.
func (s Scalar) IsNull() bool { return s.isNull() }

// ScalarKind returns the value's kind.
func (s Scalar) ScalarKind() Kind { return s.kind }

// Payload decomposes the value into its kind and payload slots, the same
// shape Vector.ValueAt reports.
func (s Scalar) Payload() (Kind, int64, float64, string) { return s.kind, s.i, s.f, s.s }

// Int returns the value coerced to an integer (truncating floats), zero
// for non-numeric kinds.
func (s Scalar) Int() int64 { return s.intVal() }

// Float returns the value coerced to a float, zero for non-numeric kinds.
func (s Scalar) Float() float64 { return s.floatVal() }

// Render returns the value's string rendering (the interpreters' display
// form, used by || and the string functions).
func (s Scalar) Render() string { return s.render() }

// Truthy is the two-valued truth of the value: NULL is false — the
// predicate-consumer collapse filters and CASE WHEN arms apply.
func (s Scalar) Truthy() bool {
	switch s.kind {
	case KindBool, KindInt, KindDate:
		return s.i != 0
	case KindFloat:
		return s.f != 0
	default:
		return false
	}
}

// Tri lifts the value into the shared ternary-logic domain: NULL is
// UNKNOWN.
func (s Scalar) Tri() sqlsem.Tri {
	if s.isNull() {
		return sqlsem.Unknown
	}
	return sqlsem.Of(s.Truthy())
}

// TriScalar lowers a ternary truth value into a boolean Scalar: UNKNOWN
// becomes NULL.
func TriScalar(t sqlsem.Tri) Scalar {
	switch t {
	case sqlsem.True:
		return BoolScalar(true)
	case sqlsem.False:
		return BoolScalar(false)
	default:
		return nullScalar
	}
}

// ArithScalar applies an arithmetic/concatenation operator with the
// engines' shared promotion rules (integer-preserving division, date day
// arithmetic, NULL on division by zero).
func ArithScalar(op string, a, b Scalar) (Scalar, error) { return arithScalar(op, a, b) }

// CompareScalars orders two non-NULL scalars; the caller owns NULL
// handling (predicates lift to UNKNOWN, sorts place NULL below
// everything).
func CompareScalars(a, b Scalar) int { return compareScalars(a, b) }

// EqualScalars is SQL equality: NULL never equals anything.
func EqualScalars(a, b Scalar) bool { return equalScalars(a, b) }

// LikeMatch reports whether s matches the SQL LIKE pattern p.
func LikeMatch(s, p string) bool { return likeMatch(s, p) }

// AppendScalarKey appends the value's hash-key encoding (matching
// engine.Value.Key: kind-classed, with int-valued floats normalized to
// integer digits). Multi-column keys append one encoding per column, each
// terminated by '|' — byte-identical to the vectorized executor's row-key
// encoding.
func AppendScalarKey(buf []byte, s Scalar) []byte { return appendScalarKey(buf, s) }

// ParseNumber parses a numeric literal with the executor's exact-integer
// rule; unparsable literals report ErrUnsupported so the statement defers
// to the interpreter.
func ParseNumber(s string) (Scalar, error) { return parseNumberScalar(s) }

// ParseDateDays converts an ISO date string to days since the epoch.
func ParseDateDays(s string) (int64, error) { return parseDate(s) }

// DateParts splits an epoch day count into calendar year, month, day.
func DateParts(days int64) (year, month, day int) { return dateParts(days) }

// AddInterval applies calendar interval arithmetic to an epoch day count;
// ok is false for unknown units.
func AddInterval(days, n int64, unit string) (int64, bool) { return addInterval(days, n, unit) }

// AggAccum is the exported aggregate accumulator: one (aggregate, group)
// fold state with the interpreters' exact semantics (int-preserving sums,
// DISTINCT sets over key encodings, NULL results for empty inputs).
type AggAccum struct {
	acc aggAcc
}

// NewAggAccum allocates an accumulator; distinct enables the DISTINCT set.
func NewAggAccum(distinct bool) *AggAccum {
	a := &AggAccum{}
	a.acc.sumIsInt = true
	if distinct {
		a.acc.distinct = newByteKeyTable(8)
	}
	return a
}

// Fold adds one value (NULLs are skipped, DISTINCT duplicates too).
func (a *AggAccum) Fold(v Scalar, distinct bool) { a.acc.fold(v, distinct) }

// Finalize produces the aggregate's value. groupRows is the group's total
// row count (what count(*) reports).
func (a *AggAccum) Finalize(name string, star bool, groupRows int64) (Scalar, error) {
	return a.acc.finalize(name, star, groupRows)
}
