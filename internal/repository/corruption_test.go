package repository

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

// Corruption-recovery suite: beyond clean kill -9 prefixes, the store must
// also boot from media-level damage — truncated tails, flipped bits in
// payload or checksum, empty files — and fall back across a corrupt
// snapshot to the previous one plus a longer replay. Corruption never
// costs more than the unacknowledged tail, and never the boot.

// logCollector captures recovery warnings so tests can assert that damage
// is reported, not silently swallowed.
type logCollector struct {
	mu    sync.Mutex
	lines []string
}

func (l *logCollector) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logCollector) contains(substr string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.lines {
		if strings.Contains(line, substr) {
			return true
		}
	}
	return false
}

// corruptibleStore builds a durable store with a few acknowledged results
// and returns its directory, the shard WAL path and the acknowledged ids in
// order.
func corruptibleStore(t *testing.T) (dir, wal string, g *goldenRun) {
	t.Helper()
	dir = t.TempDir()
	s, err := open(dir, 1, quietLogf, nosyncFactory)
	if err != nil {
		t.Fatal(err)
	}
	g = runGoldenWorkload(t, s)
	wal = walPath(s.gen, shardPartName(0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, wal, g
}

// reopenAndCount boots the damaged store and returns the recovered result
// ids.
func reopenAndCount(t *testing.T, dir string, g *goldenRun, logf func(string, ...any)) []int {
	t.Helper()
	s, err := open(dir, 1, logf, nosyncFactory)
	if err != nil {
		t.Fatalf("recovery from damaged store failed: %v", err)
	}
	defer s.Close()
	assertNoDoubleLease(t, s, g)
	return resultIDs(s, g)
}

func TestRecoveryFromTruncatedTail(t *testing.T) {
	dir, wal, g := corruptibleStore(t)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	logs := &logCollector{}
	got := reopenAndCount(t, dir, g, logs.logf)
	// The truncated final record was a completion: exactly its result is
	// gone, everything before it survives.
	want := g.resultsAt[len(g.resultsAt)-2]
	if !sameIDs(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if !logs.contains("torn wal") {
		t.Fatalf("truncated tail not reported; warnings: %v", logs.lines)
	}
}

func TestRecoveryFromBitFlippedPayload(t *testing.T) {
	dir, wal, g := corruptibleStore(t)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	offs := walFrameOffsets(t, data)
	// Flip one payload bit inside the last record.
	start := offs[len(offs)-2]
	data[start+walHeaderSize+4] ^= 0x40
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	logs := &logCollector{}
	got := reopenAndCount(t, dir, g, logs.logf)
	want := g.resultsAt[len(g.resultsAt)-2]
	if !sameIDs(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if !logs.contains("checksum mismatch") {
		t.Fatalf("bit flip not reported as checksum mismatch; warnings: %v", logs.lines)
	}
}

func TestRecoveryFromBitFlippedChecksum(t *testing.T) {
	dir, wal, g := corruptibleStore(t)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	offs := walFrameOffsets(t, data)
	// Flip a bit in the CRC field of a mid-log record: that record and
	// everything after it are dropped — the log has no way to tell whether
	// the payload or the checksum is the damaged half.
	k := len(offs) / 2
	start := offs[k-1]
	data[start+5] ^= 0x01
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	logs := &logCollector{}
	got := reopenAndCount(t, dir, g, logs.logf)
	want := g.resultsAt[k-1]
	if !sameIDs(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if !logs.contains("checksum mismatch") {
		t.Fatalf("flipped CRC not reported; warnings: %v", logs.lines)
	}
}

func TestRecoveryFromZeroLengthWAL(t *testing.T) {
	dir, wal, g := corruptibleStore(t)
	if err := os.WriteFile(wal, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got := reopenAndCount(t, dir, g, quietLogf)
	if len(got) != 0 {
		t.Fatalf("zero-length wal recovered %v results, want none (no snapshot was ever taken)", got)
	}
	// The meta partition is intact: users survive, the store is usable.
	s, err := open(dir, 1, quietLogf, nosyncFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.User(g.owner) == nil {
		t.Fatal("user table lost")
	}
	if _, err := s.CreateProject(g.owner, "fresh-start", "", true); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptSnapshotFallsBackToPrevious damages the newest snapshot of a
// twice-checkpointed partition: recovery must adopt the previous snapshot
// and replay the longer log tail, ending at the exact same state.
func TestCorruptSnapshotFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	s, err := open(dir, 1, quietLogf, nosyncFactory)
	if err != nil {
		t.Fatal(err)
	}
	g := runGoldenWorkload(t, s)
	if err := s.Checkpoint(); err != nil { // snapshot 1 (covers the workload)
		t.Fatal(err)
	}
	// More acknowledged work after the first checkpoint.
	r, err := s.AddResult(g.ownerKey, g.expID, 2, g.dbms, "cloud", []float64{0.9}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // snapshot 2 (covers everything)
		t.Fatal(err)
	}
	want := append(append([]int(nil), g.resultsAt[len(g.resultsAt)-1]...), r.ID)
	genDir := s.gen
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	part := shardPartName(0)
	lsns := partSnapshots(genDir, part)
	if len(lsns) < 2 {
		t.Fatalf("expected two retained snapshots, have %v", lsns)
	}
	if err := os.WriteFile(snapPath(genDir, part, lsns[0]), []byte("{ corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}

	logs := &logCollector{}
	got := reopenAndCount(t, dir, g, logs.logf)
	if !sameIDs(got, want) {
		t.Fatalf("fallback recovery got results %v, want %v", got, want)
	}
	if !logs.contains("falling back to the previous snapshot") {
		t.Fatalf("snapshot fallback not reported; warnings: %v", logs.lines)
	}
}

// TestAllSnapshotsCorruptReplaysFullLog destroys every snapshot of the
// partition: as long as the log retains the full history, recovery replays
// it from scratch.
func TestAllSnapshotsCorruptReplaysFullLog(t *testing.T) {
	dir, _, g := corruptibleStore(t)
	// Locate the generation via CURRENT; no checkpoint ran, so the log holds
	// the complete history and snapshots only the (empty) boot state.
	cur, err := os.ReadFile(dir + "/" + currentFile)
	if err != nil {
		t.Fatal(err)
	}
	genDir := dir + "/" + strings.TrimSpace(string(cur))
	for _, lsn := range partSnapshots(genDir, shardPartName(0)) {
		if err := os.WriteFile(snapPath(genDir, shardPartName(0), lsn), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	logs := &logCollector{}
	got := reopenAndCount(t, dir, g, logs.logf)
	want := g.resultsAt[len(g.resultsAt)-1]
	if !sameIDs(got, want) {
		t.Fatalf("full-log replay got results %v, want %v", got, want)
	}
	if !logs.contains("replaying the full log") {
		t.Fatalf("full replay not reported; warnings: %v", logs.lines)
	}
}

// failingSink starts failing writes on demand; the partition must reject
// the mutation, leave memory untouched, and refuse further appends until a
// checkpoint rewrites the log.
type failingSink struct {
	fail *bool
}

func (f failingSink) Write(p []byte) (int, error) {
	if *f.fail {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}
func (f failingSink) Sync() error  { return nil }
func (f failingSink) Close() error { return nil }

func TestFailedAppendRejectsMutationAndLatches(t *testing.T) {
	dir := t.TempDir()
	fail := false
	factory := func(path string) (walSink, error) {
		if strings.HasSuffix(path, shardPartName(0)+".wal") {
			return failingSink{fail: &fail}, nil
		}
		return nosyncFactory(path)
	}
	s, err := open(dir, 1, quietLogf, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.RegisterUser("martin", "martin@example.org"); err != nil {
		t.Fatal(err)
	}
	p, err := s.CreateProject("martin", "flaky-disk", "", true)
	if err != nil {
		t.Fatal(err)
	}
	fail = true
	if _, err := s.AddExperiment("martin", p.ID, "exp", "SELECT 1", ""); err == nil {
		t.Fatal("append on failing disk must surface an error")
	}
	if got := s.Project(p.ID); len(got.Experiments) != 0 {
		t.Fatal("failed append leaked into memory")
	}
	fail = false
	// The partition stays latched even after the disk recovers: the file may
	// end in garbage, so appending past it would strand the new records.
	if _, err := s.AddExperiment("martin", p.ID, "exp", "SELECT 1", ""); err == nil ||
		!strings.Contains(err.Error(), "wal unavailable") {
		t.Fatalf("latched partition accepted a mutation: %v", err)
	}
	// A checkpoint rewrites the log from the provably intact records and
	// heals the partition.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddExperiment("martin", p.ID, "exp", "SELECT 1", ""); err != nil {
		t.Fatalf("checkpoint did not heal the partition: %v", err)
	}
}
