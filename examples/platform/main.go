// platform demonstrates the full SaaS workflow of the paper's demo: it
// starts the sqalpel platform server in-process on a durable write-ahead-
// logged store, registers a project owner and a contributor, creates a
// public project with an experiment derived from a TPC-H baseline query,
// grows the query pool, lets two concurrent experiment drivers crowd-source
// the task queue in leased batches against two local engines, fetches the
// analytics (experiment history, speedup, CSV) from the platform — and then
// "restarts" the platform by reopening the store from disk, showing that
// every collected measurement survived.
//
// Run with:
//
//	go run ./examples/platform
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"sqalpel/internal/core"
	"sqalpel/internal/datagen"
	"sqalpel/internal/driver"
	"sqalpel/internal/engine"
	"sqalpel/internal/repository"
	"sqalpel/internal/server"
	"sqalpel/internal/workload"
)

func main() {
	// 1. Start the platform (in-process; `cmd/sqalpeld` runs the same server
	//    standalone) on a durable store: every mutation is appended and
	//    fsynced to its shard's write-ahead log before the API call returns.
	dataDir, err := os.MkdirTemp("", "sqalpel-platform-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	store, err := repository.Open(dataDir, 4)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(server.New(server.Options{Store: store}))
	defer srv.Close()
	fmt.Printf("platform running at %s (durable store in %s)\n", srv.URL, dataDir)

	// 2. The project owner registers and creates a public project with one
	//    experiment derived from TPC-H Q6.
	token := apiPost(srv.URL+"/api/register", "", map[string]any{
		"nickname": "martin", "email": "martin@example.org",
	})["token"].(string)

	q6, _ := workload.TPCHQuery("Q6")
	created := apiPost(srv.URL+"/api/projects", token, map[string]any{
		"name":        "tpch-q6-forecast",
		"synopsis":    "Forecasting revenue change: which systems handle the Q6 variants best?",
		"attribution": "TPC-H inspired deterministic data generator",
		"public":      true,
	})
	projectID := int(created["project"].(map[string]any)["id"].(float64))
	ownerKey := created["key"].(string)

	exp := apiPost(fmt.Sprintf("%s/api/projects/%d/experiments", srv.URL, projectID), token, map[string]any{
		"title": "Q6 variants", "baseline_sql": q6.SQL, "seed_random": 6,
	})
	experimentID := int(exp["experiment_id"].(float64))
	fmt.Printf("created project %d with experiment %d (%v queries)\n",
		projectID, experimentID, exp["query_count"])

	// 3. The owner grows the pool with the morphing strategies.
	grown := apiPost(fmt.Sprintf("%s/api/projects/%d/experiments/%d/grow", srv.URL, projectID, experimentID), token, map[string]any{
		"count": 8,
	})
	fmt.Printf("pool grown to %v queries\n", grown["query_count"])

	// 4. Two experiment drivers crowd-source the queue concurrently, one per
	//    engine: each leases tasks in batches and measures them on its own
	//    worker pool. The server's per-lease deadlines guarantee that no
	//    query is measured twice however many drivers join in.
	db := datagen.TPCH(datagen.TPCHOptions{ScaleFactor: 0.01})
	var wg sync.WaitGroup
	for _, dbms := range []struct {
		key string
		eng engine.Engine
	}{
		{"columba-1.0", engine.NewColEngine()},
		{"tuplestore-1.0", engine.NewRowEngine()},
	} {
		cfg := driver.Config{
			Server: srv.URL, Key: ownerKey, DBMS: dbms.key, Platform: "laptop",
			Experiment: experimentID, Runs: 3, Timeout: 30 * time.Second,
			Workers: 2, Batch: 4,
		}
		client, err := driver.NewClient(cfg)
		if err != nil {
			log.Fatal(err)
		}
		target := &core.EngineTarget{Engine: dbms.eng, DB: db, Timeout: cfg.Timeout}
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			n, err := client.RunAll(target, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("driver finished %d tasks on %s\n", n, key)
		}(dbms.key)
	}
	wg.Wait()

	// 5. Fetch the analytics the platform renders.
	history := apiGet(fmt.Sprintf("%s/api/projects/%d/analytics/history?target=columba-1.0@laptop", srv.URL, projectID))
	fmt.Printf("\nexperiment history on columba-1.0@laptop: %d measured queries\n", countJSONArray(history))

	speedup := apiGet(fmt.Sprintf("%s/api/projects/%d/analytics/speedup?base=columba-1.0@laptop&other=tuplestore-1.0@laptop", srv.URL, projectID))
	fmt.Printf("speedup summary (row store time / column store time): %s\n", compactJSON(speedup, 240))

	csv := apiGet(fmt.Sprintf("%s/api/projects/%d/results.csv", srv.URL, projectID))
	fmt.Printf("\nfirst lines of the CSV export:\n%s\n", firstLines(string(csv), 5))

	fmt.Printf("project page: %s/projects/%d (open in a browser while the server runs)\n", srv.URL, projectID)

	// 6. Restart the platform: close the store and recover it from disk.
	//    Recovery reads the newest snapshot of each shard plus the replay of
	//    its log tail — the same path that runs after kill -9 — so every
	//    measurement the drivers were acknowledged for is still there.
	collected := len(store.Results("martin", projectID))
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	reopened, err := repository.Open(dataDir, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Printf("\nafter restart: recovered %d of %d results from the write-ahead log\n",
		len(reopened.Results("martin", projectID)), collected)
}

// apiPost sends a JSON POST and decodes the JSON answer.
func apiPost(url, token string, body map[string]any) map[string]any {
	payload, _ := json.Marshal(body)
	req, _ := http.NewRequest("POST", url, bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("X-Sqalpel-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("POST %s failed: %d %v", url, resp.StatusCode, out)
	}
	return out
}

// apiGet fetches a URL body.
func apiGet(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return data
}

func countJSONArray(data []byte) int {
	var arr []any
	if err := json.Unmarshal(data, &arr); err != nil {
		return 0
	}
	return len(arr)
}

func compactJSON(data []byte, max int) string {
	s := string(data)
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}

func firstLines(s string, n int) string {
	out := ""
	count := 0
	for _, line := range bytes.Split([]byte(s), []byte("\n")) {
		out += string(line) + "\n"
		count++
		if count >= n {
			break
		}
	}
	return out
}
