package trace

import (
	"strconv"
	"strings"

	"sqalpel/internal/sqlparser"
)

// Operator ids are a pure function of the logical plan's structure, so every
// engine labels the same logical operator identically and the EXPLAIN
// plan-JSON can be produced without executing anything. Within one SELECT
// core (prefix P, empty at the root):
//
//	P + "scan.<i>"    base-table FROM input i
//	P + "input.<i>"   derived-table or explicit-join FROM input i
//	P + "filter.<i>"  pushed-down filter over input i (vectorized engines)
//	P + "join.<k>"    join step k of the plan's join order
//	P + "filter"      residual post-join filter
//	P + "aggregate"   grouping/aggregation
//	P + "project"     projection
//	P + "distinct"    duplicate elimination
//	P + "sort"        ORDER BY
//	P + "limit"       LIMIT/OFFSET
//	P + "sub.<k>"     k-th nested sub-query of the core's clauses
//	P + "set.<j>"     j-th set-operation branch (j counts from 1)
//
// Nested plans extend the prefix: the ops of derived input i live under
// P+"input.<i>.", of sub-query k under P+"sub.<k>.", of set branch j under
// P+"set.<j>.".

// ScanID is the id of base-table FROM input i.
func ScanID(prefix string, i int) string { return prefix + "scan." + strconv.Itoa(i) }

// InputID is the id of a derived-table or join-tree FROM input i.
func InputID(prefix string, i int) string { return prefix + "input." + strconv.Itoa(i) }

// PushFilterID is the id of the pushed-down filter over FROM input i.
func PushFilterID(prefix string, i int) string { return prefix + "filter." + strconv.Itoa(i) }

// JoinID is the id of join step k.
func JoinID(prefix string, k int) string { return prefix + "join." + strconv.Itoa(k) }

// FilterID is the id of the residual post-join filter.
func FilterID(prefix string) string { return prefix + "filter" }

// AggID is the id of the aggregation operator.
func AggID(prefix string) string { return prefix + "aggregate" }

// ProjectID is the id of the projection operator.
func ProjectID(prefix string) string { return prefix + "project" }

// DistinctID is the id of the duplicate-elimination operator.
func DistinctID(prefix string) string { return prefix + "distinct" }

// SortID is the id of the ORDER BY operator.
func SortID(prefix string) string { return prefix + "sort" }

// LimitID is the id of the LIMIT/OFFSET operator.
func LimitID(prefix string) string { return prefix + "limit" }

// SubID is the id of the core's k-th nested sub-query.
func SubID(prefix string, k int) string { return prefix + "sub." + strconv.Itoa(k) }

// SetID is the id of the core's j-th set-operation branch (j from 1).
func SetID(prefix string, j int) string { return prefix + "set." + strconv.Itoa(j) }

// DerivedPrefix is the id prefix of the plan nested under derived input i.
func DerivedPrefix(prefix string, i int) string { return InputID(prefix, i) + "." }

// SubPrefix is the id prefix of the plan nested under sub-query k.
func SubPrefix(prefix string, k int) string { return SubID(prefix, k) + "." }

// SetPrefix is the id prefix of the plan nested under set branch j.
func SetPrefix(prefix string, j int) string { return SetID(prefix, j) + "." }

// SubOpID recovers the sub-query operator id from its prefix.
func SubOpID(prefix string) string { return strings.TrimSuffix(prefix, ".") }

// SubqueryPrefixes maps every traceable nested SELECT statement reachable
// from stmt to its operator-id prefix. Enumeration is deterministic and
// purely syntactic — the same walk Explain performs — so the executors'
// runtime span ids always match the plan-JSON ids: within one core,
// sub-queries are numbered across the clauses in projection, WHERE,
// GROUP BY, HAVING, ORDER BY order; derived tables keep their FROM
// position; set branches count from 1. Statements nested inside explicit
// JOIN trees are not enumerated (and not traced).
func SubqueryPrefixes(stmt *sqlparser.SelectStatement, prefix string) map[*sqlparser.SelectStatement]string {
	m := map[*sqlparser.SelectStatement]string{}
	addStatementPrefixes(m, stmt, prefix)
	return m
}

// addStatementPrefixes walks one statement chain: the head core plus its
// set-operation branches.
func addStatementPrefixes(m map[*sqlparser.SelectStatement]string, stmt *sqlparser.SelectStatement, prefix string) {
	addCorePrefixes(m, stmt, prefix)
	j := 1
	for cur := stmt; cur.SetNext != nil; cur = cur.SetNext {
		addCorePrefixes(m, cur.SetNext, SetPrefix(prefix, j))
		j++
	}
}

// addCorePrefixes registers the sub-queries of one SELECT core and recurses
// into them and into the core's derived tables.
func addCorePrefixes(m map[*sqlparser.SelectStatement]string, stmt *sqlparser.SelectStatement, prefix string) {
	for i, te := range stmt.From {
		if dt, ok := te.(*sqlparser.DerivedTable); ok {
			addStatementPrefixes(m, dt.Select, DerivedPrefix(prefix, i))
		}
	}
	k := 0
	for _, sub := range CoreSubqueries(stmt) {
		p := SubPrefix(prefix, k)
		m[sub] = p
		k++
		addStatementPrefixes(m, sub, p)
	}
}

// CoreSubqueries enumerates the sub-query statements embedded in one core's
// expression clauses, in syntactic order. Explain and SubqueryPrefixes share
// this walk, which is what keeps runtime ids and plan-JSON ids aligned.
func CoreSubqueries(stmt *sqlparser.SelectStatement) []*sqlparser.SelectStatement {
	var subs []*sqlparser.SelectStatement
	clause := func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		subs = append(subs, sqlparser.Subqueries(e)...)
	}
	for _, p := range stmt.Projection {
		clause(p.Expr)
	}
	clause(stmt.Where)
	for _, g := range stmt.GroupBy {
		clause(g)
	}
	clause(stmt.Having)
	for _, o := range stmt.OrderBy {
		clause(o.Expr)
	}
	return subs
}
