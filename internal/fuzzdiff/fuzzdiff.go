// Package fuzzdiff turns the paper's query-space machinery into a standing
// correctness oracle: a grammar-driven differential fuzzer. A sqalpel
// grammar over NULL-rich tables (datagen.Fuzz) is derived into hundreds of
// concrete queries with the pool's morphing strategies (seeded and
// reproducible, exactly like an experiment walk), every query is executed
// on all registry engines — four paradigms, six engines, one shared plan
// layer — and the results are compared bit for bit. Any disagreement is a
// semantics bug in one of the paradigms: the discriminative search ranks
// performance *ratios*, so engines that silently disagree on answers would
// poison findings. The ternary NULL logic contract (internal/sqlsem) is the
// primary target: the grammar leans heavily on comparisons, LIKE, IN,
// BETWEEN, CASE and the boolean connectives over nullable columns, plus
// sub-query shapes — scalar aggregates, (NOT) EXISTS, NULL-bearing IN
// sets, and correlated WHERE sub-queries over nullable correlation keys —
// so the sub-query materialization and decorrelation paths of all four
// paradigms face the same NULL-rich data.
package fuzzdiff

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"sqalpel/internal/datagen"
	"sqalpel/internal/engine"
	"sqalpel/internal/grammar"
	"sqalpel/internal/pool"
)

// GrammarSource is the sqalpel grammar spanning the fuzzer's query space
// over the datagen.Fuzz schema (fact table t: id, k non-NULL; a, b, f, s,
// d, g nullable — dimension table dim: dk, label, w). Predicate and
// projection literals are chosen to stress three-valued logic: NULL probes,
// NULL list members, NULL bounds, NULL-condition CASE arms.
const GrammarSource = `
query:
	SELECT id, ${l_proj} AS p FROM t $[filter] ORDER BY id $[l_limit]
	SELECT id, ${l_proj} AS p, ${l_proj} AS q FROM t $[filter] ORDER BY id
	SELECT ${l_agg} AS v, COUNT(*) AS n FROM t $[filter]
	SELECT g, COUNT(*) AS n, ${l_agg} AS v FROM t $[filter] GROUP BY g ORDER BY g
	SELECT k, ${l_agg} AS v FROM t $[filter] GROUP BY k HAVING COUNT(*) > 5 ORDER BY k
	SELECT t.id, label, ${l_proj} AS p FROM t, dim WHERE k = dk AND ${l_pred} ORDER BY t.id
	SELECT t.id, w, ${l_proj} AS p FROM t, dim WHERE a = w AND ${l_pred} ORDER BY t.id
	SELECT t.id, label FROM t LEFT JOIN dim ON a = w $[filter] ORDER BY t.id
	SELECT id FROM t WHERE ${l_pred} ORDER BY id
	SELECT DISTINCT a, s FROM t $[filter]
	SELECT a FROM t WHERE ${l_pred} UNION SELECT a FROM t WHERE ${l_pred}

filter:
	WHERE ${l_pred}
	WHERE ${l_pred} AND ${l_pred}
	WHERE ${l_pred} OR ${l_pred}
	WHERE NOT (${l_pred})

l_pred:
	a = 2
	a = b
	a <> g
	a < 5
	b > 0
	b <= -10
	f > 120.5
	f < 33.25
	s = 'beta'
	s = 'zeta'
	s LIKE 'a%'
	s LIKE '%o'
	s LIKE 'br%'
	s NOT LIKE '%l%'
	s IN ('alpha', 'gamma', 'dora')
	s IN ('beta', 'zeta', NULL)
	s NOT IN ('alto', NULL)
	s >= 'delta'
	s < 'bravo'
	s IS NULL
	s IS NOT NULL
	a IS NULL
	d IS NOT NULL
	a IN (1, 3, 5)
	a IN (2, 4, NULL)
	a NOT IN (1, 9, NULL)
	b BETWEEN -10 AND 10
	a BETWEEN 2 AND 6
	a NOT BETWEEN 2 AND 4
	a BETWEEN g AND 8
	d >= DATE '1998-06-01'
	d < DATE '1999-01-01'
	NOT (a = 3)
	NOT (s LIKE 'b%')
	(a = 2) OR (s = 'beta')
	(a > 1) AND (b < 20)
	(a IS NULL) OR (b > 25)
	a + b > 5
	a IN (SELECT w FROM dim)
	g NOT IN (SELECT w FROM dim)
	g IN (SELECT dk FROM dim WHERE w > 10)
	a > (SELECT MIN(w) FROM dim)
	b < (SELECT AVG(w) FROM dim)
	f >= (SELECT MAX(w) FROM dim WHERE dk < 5)
	EXISTS (SELECT 1 FROM dim WHERE w > 40)
	NOT EXISTS (SELECT 1 FROM dim WHERE w > 900)
	EXISTS (SELECT 1 FROM dim WHERE dk = k)
	NOT EXISTS (SELECT 1 FROM dim WHERE dk = a)
	EXISTS (SELECT 1 FROM dim WHERE dk = k AND w > 20)
	a = (SELECT MAX(w) FROM dim WHERE dk = k)
	b > (SELECT SUM(w) FROM dim WHERE dk = a)
	g IN (SELECT w FROM dim WHERE dk = k)

l_proj:
	NOT (a = 2)
	a = b
	a <> 3
	s LIKE 'a%'
	s NOT LIKE 'g%'
	a IN (1, 3, NULL)
	a NOT IN (2, NULL)
	b BETWEEN 0 AND 25
	a NOT BETWEEN 2 AND 4
	(a = 2) AND (s = 'beta')
	(a = 2) OR (s = 'beta')
	(a IS NULL) AND (b > 0)
	CASE WHEN a > 5 THEN 'hi' WHEN a IS NULL THEN 'nil' ELSE 'lo' END
	CASE WHEN s LIKE 'a%' THEN NULL ELSE s END
	COALESCE(a, b, -1)
	a + (SELECT MIN(w) FROM dim)
	a + b
	f * 2
	b - g
	s || '_x'
	EXTRACT(YEAR FROM d)

l_agg:
	SUM(a)
	SUM(b + g)
	COUNT(a)
	COUNT(s)
	AVG(f)
	MIN(s)
	MAX(d)
	MIN(f)
	SUM(CASE WHEN a IS NULL THEN 1 ELSE 0 END)

l_limit:
	LIMIT 25
	LIMIT 100
`

// Options configure one fuzzer run.
type Options struct {
	// Seed drives both the data generator and the query derivation; the
	// same seed reproduces the identical run. Zero selects 1.
	Seed int64
	// Queries is the number of distinct derived queries to execute; zero
	// selects 500.
	Queries int
	// Rows is the fact-table size; zero selects the datagen default (400).
	Rows int
}

// EngineOutcome is one engine's answer to one query: an exact result
// fingerprint, or the error it raised.
type EngineOutcome struct {
	Engine      string
	Fingerprint string
	Err         string
}

// Divergence is a query on which the engines disagreed — the fuzzer's
// entire reason to exist. Outcomes are in registry order.
type Divergence struct {
	SQL      string
	Outcomes []EngineOutcome
}

// Report summarises a fuzzer run.
type Report struct {
	Seed int64
	Rows int
	// Derived is the number of distinct queries the pool derived from the
	// grammar (after key-based deduplication).
	Derived int
	// Executed is the number of queries run on every engine.
	Executed int
	// AgreedErrors counts queries every engine rejected with the same
	// error — legal agreement, typically never seen with this grammar.
	AgreedErrors int
	// Divergences lists every disagreement; an empty slice is the pass
	// verdict.
	Divergences []Divergence
}

// Run derives queries from the grammar and differentially executes them on
// all registry engines. It only returns an error for infrastructure
// failures (grammar parse, pool construction); semantic disagreements are
// reported in Report.Divergences.
func Run(opts Options) (*Report, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Queries <= 0 {
		opts.Queries = 500
	}

	g, err := grammar.Parse(GrammarSource)
	if err != nil {
		return nil, fmt.Errorf("parsing fuzz grammar: %w", err)
	}
	p, err := pool.New(g, pool.Options{Seed: opts.Seed, MaxSize: opts.Queries})
	if err != nil {
		return nil, fmt.Errorf("building query pool: %w", err)
	}
	// Derive sqalpel-style: seed a random batch across templates, then walk
	// the space with the morphing strategies (alter/expand/prune) until the
	// target count is reached or the walk stalls. The pool dedupes by
	// sentence key, so every entry is a distinct query.
	if _, err := p.SeedRandom(opts.Queries / 2); err != nil {
		return nil, fmt.Errorf("seeding query pool: %w", err)
	}
	for p.Size() < opts.Queries {
		if added := p.Grow(opts.Queries - p.Size()); len(added) == 0 {
			break
		}
	}

	db := datagen.Fuzz(datagen.FuzzOptions{Rows: opts.Rows, Seed: uint64(opts.Seed)})
	reg := engine.NewRegistry()
	keys := reg.Keys()

	rep := &Report{Seed: opts.Seed, Rows: db.Table("t").NumRows(), Derived: p.Size()}
	for _, entry := range p.Entries() {
		ordered := totallyOrdered(entry.SQL)
		outcomes := make([]EngineOutcome, 0, len(keys))
		for _, key := range keys {
			e := reg.Get(key)
			oc := EngineOutcome{Engine: key}
			res, err := e.Execute(db, entry.SQL, engine.ExecOptions{})
			if err != nil {
				oc.Err = normalizeError(e.Name(), err)
			} else if ordered {
				oc.Fingerprint = OrderedFingerprint(res)
			} else {
				oc.Fingerprint = Fingerprint(res)
			}
			outcomes = append(outcomes, oc)
		}
		rep.Executed++
		agree := true
		for _, oc := range outcomes[1:] {
			if oc.Fingerprint != outcomes[0].Fingerprint || oc.Err != outcomes[0].Err {
				agree = false
				break
			}
		}
		if !agree {
			rep.Divergences = append(rep.Divergences, Divergence{SQL: entry.SQL, Outcomes: outcomes})
			continue
		}
		if outcomes[0].Err != "" {
			rep.AgreedErrors++
		}
	}
	return rep, nil
}

// totallyOrdered reports whether the grammar guarantees a total row order
// for the query: single-table templates ordered by the unique id column
// (a dim sub-query in the predicate does not break that). Join templates
// sort by t.id but can carry ties (several matches per left row), so they
// fall back to the multiset fingerprint.
func totallyOrdered(sql string) bool {
	return strings.Contains(sql, "ORDER BY id") &&
		!strings.Contains(sql, "FROM t, dim") &&
		!strings.Contains(sql, "JOIN dim")
}

// Fingerprint encodes a result exactly: every value keeps its kind and, for
// floats, its full bit pattern, so two engines only share a fingerprint
// when their answers are bit-identical. Rows are sorted (the fingerprint is
// a multiset identity) because not every derived query carries a total
// ORDER BY; column names stay positional. For queries whose ORDER BY is
// provably total the fuzzer uses OrderedFingerprint instead, so row-order
// divergences stay visible.
func Fingerprint(r *engine.Result) string {
	lines := fingerprintRows(r)
	sort.Strings(lines)
	return strings.Join(r.Columns, ",") + "\n" + strings.Join(lines, "\n")
}

// OrderedFingerprint is Fingerprint without the row sort: engines must
// agree on row order too. Used for queries with a total ORDER BY.
func OrderedFingerprint(r *engine.Result) string {
	lines := fingerprintRows(r)
	return strings.Join(r.Columns, ",") + "\n" + strings.Join(lines, "\n")
}

func fingerprintRows(r *engine.Result) []string {
	lines := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			switch v.Kind {
			case engine.KindNull:
				parts[i] = "null"
			case engine.KindFloat:
				parts[i] = "float:" + strconv.FormatUint(math.Float64bits(v.F), 16)
			default:
				parts[i] = v.Kind.String() + ":" + v.String()
			}
		}
		lines = append(lines, strings.Join(parts, "|"))
	}
	return lines
}

// normalizeError strips the engine-name prefix Execute attaches, so two
// engines failing for the same underlying reason compare equal.
func normalizeError(name string, err error) string {
	msg := err.Error()
	if rest, ok := strings.CutPrefix(msg, name+": "); ok {
		return rest
	}
	return msg
}

// Describe renders a compact human-readable summary of a divergence, used
// by tests and the experiment log.
func (d Divergence) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", d.SQL)
	for _, oc := range d.Outcomes {
		if oc.Err != "" {
			fmt.Fprintf(&sb, "  %-16s ERROR: %s\n", oc.Engine, oc.Err)
			continue
		}
		sum := oc.Fingerprint
		if len(sum) > 120 {
			sum = sum[:120] + "…"
		}
		fmt.Fprintf(&sb, "  %-16s %s\n", oc.Engine, strings.ReplaceAll(sum, "\n", " / "))
	}
	return sb.String()
}
