// Package grammar implements the sqalpel query-space grammar: a small
// EBNF-like domain specific language that describes a (potentially very
// large) space of SQL queries derived from a baseline query.
//
// A grammar is a list of named rules. Each rule has one or more
// alternatives; an alternative is free-format text with embedded references
// to other rules:
//
//	${name}   a required reference
//	$[name]   an optional reference
//	${name}*  a repeated reference (zero or more occurrences)
//
// Rules are split into two kinds during normalisation: lexical rules, whose
// alternatives contain no references and therefore only govern alternative
// text snippets (literals), and structural rules. By convention lexical rule
// names start with "l_", mirroring the paper's examples, but any rule with
// only literal alternatives is treated as lexical.
//
// Alternatives of lexical rules may be prefixed with "@dialect " to restrict
// a snippet to a specific SQL dialect (e.g. "@monetdb" or "@mssql"); see
// Dialect handling in generate.go.
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// RefKind distinguishes the three reference syntaxes.
type RefKind int

// Reference kinds.
const (
	RefRequired RefKind = iota // ${name}
	RefOptional                // $[name]
	RefStar                    // ${name}*
)

func (k RefKind) String() string {
	switch k {
	case RefRequired:
		return "required"
	case RefOptional:
		return "optional"
	case RefStar:
		return "repeated"
	default:
		return "unknown"
	}
}

// Element is one piece of an alternative: either literal text or a reference
// to another rule.
type Element struct {
	// Text holds literal text when Ref is empty.
	Text string
	// Ref is the referenced rule name; empty for literal text elements.
	Ref  string
	Kind RefKind
}

// IsRef reports whether the element is a rule reference.
func (e Element) IsRef() bool { return e.Ref != "" }

// String renders the element back in grammar syntax.
func (e Element) String() string {
	if !e.IsRef() {
		return e.Text
	}
	switch e.Kind {
	case RefOptional:
		return "$[" + e.Ref + "]"
	case RefStar:
		return "${" + e.Ref + "}*"
	default:
		return "${" + e.Ref + "}"
	}
}

// Alternative is one production alternative of a rule.
type Alternative struct {
	// Dialect restricts the alternative to a named SQL dialect; empty means
	// the alternative applies to every dialect.
	Dialect string
	// Elements is the parsed sequence of literal snippets and references.
	Elements []Element
	// Line is the 1-based line number of the alternative in the grammar
	// source. The paper differentiates repeated literals by their line
	// number; this is that identity.
	Line int
}

// Text renders the alternative in grammar syntax (without the dialect tag).
func (a Alternative) Text() string {
	parts := make([]string, 0, len(a.Elements))
	for _, e := range a.Elements {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, " ")
}

// References returns the rule names referenced by this alternative, in
// order, including duplicates.
func (a Alternative) References() []string {
	var refs []string
	for _, e := range a.Elements {
		if e.IsRef() {
			refs = append(refs, e.Ref)
		}
	}
	return refs
}

// IsLexical reports whether the alternative contains no references.
func (a Alternative) IsLexical() bool {
	for _, e := range a.Elements {
		if e.IsRef() {
			return false
		}
	}
	return true
}

// Rule is a named grammar rule with one or more alternatives.
type Rule struct {
	Name         string
	Alternatives []Alternative
	// Line is the line number of the rule header in the grammar source.
	Line int
}

// IsLexical reports whether every alternative of the rule is literal-only.
func (r *Rule) IsLexical() bool {
	if len(r.Alternatives) == 0 {
		return false
	}
	for _, a := range r.Alternatives {
		if !a.IsLexical() {
			return false
		}
	}
	return true
}

// Literals returns the literal snippets of a lexical rule, one per
// alternative, each paired with its source line number (the paper's literal
// identity). For non-lexical rules it returns only the literal-only
// alternatives.
func (r *Rule) Literals() []Literal {
	var lits []Literal
	for _, a := range r.Alternatives {
		if a.IsLexical() {
			lits = append(lits, Literal{Rule: r.Name, Text: a.Text(), Line: a.Line, Dialect: a.Dialect})
		}
	}
	return lits
}

// Literal is one literal snippet of a lexical rule.
type Literal struct {
	Rule    string
	Text    string
	Line    int
	Dialect string
}

// Grammar is a parsed sqalpel query-space grammar.
type Grammar struct {
	// Rules in definition order.
	Rules []*Rule
	// Start is the name of the start rule; by default the first rule.
	Start string

	index map[string]*Rule
}

// New creates an empty grammar with the given start rule name.
func New(start string) *Grammar {
	return &Grammar{Start: start, index: map[string]*Rule{}}
}

// AddRule appends a rule. Adding a rule with an existing name merges the
// alternatives into the existing rule.
func (g *Grammar) AddRule(r *Rule) {
	if g.index == nil {
		g.index = map[string]*Rule{}
	}
	if existing, ok := g.index[r.Name]; ok {
		existing.Alternatives = append(existing.Alternatives, r.Alternatives...)
		return
	}
	g.Rules = append(g.Rules, r)
	g.index[r.Name] = r
	if g.Start == "" {
		g.Start = r.Name
	}
}

// Rule returns the rule with the given name, or nil.
func (g *Grammar) Rule(name string) *Rule {
	if g.index == nil {
		return nil
	}
	return g.index[name]
}

// RuleNames returns all rule names in definition order.
func (g *Grammar) RuleNames() []string {
	names := make([]string, 0, len(g.Rules))
	for _, r := range g.Rules {
		names = append(names, r.Name)
	}
	return names
}

// LexicalRules returns the rules classified as lexical, in definition order.
func (g *Grammar) LexicalRules() []*Rule {
	var out []*Rule
	for _, r := range g.Rules {
		if r.IsLexical() {
			out = append(out, r)
		}
	}
	return out
}

// StructuralRules returns the rules that are not lexical.
func (g *Grammar) StructuralRules() []*Rule {
	var out []*Rule
	for _, r := range g.Rules {
		if !r.IsLexical() {
			out = append(out, r)
		}
	}
	return out
}

// Literals returns every literal of every lexical rule.
func (g *Grammar) Literals() []Literal {
	var lits []Literal
	for _, r := range g.LexicalRules() {
		lits = append(lits, r.Literals()...)
	}
	return lits
}

// String renders the grammar in its source syntax.
func (g *Grammar) String() string {
	var sb strings.Builder
	for i, r := range g.Rules {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(r.Name)
		sb.WriteString(":\n")
		for _, a := range r.Alternatives {
			sb.WriteString("\t")
			if a.Dialect != "" {
				sb.WriteString("@" + a.Dialect + " ")
			}
			sb.WriteString(a.Text())
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// Clone returns a deep copy of the grammar.
func (g *Grammar) Clone() *Grammar {
	out := New(g.Start)
	for _, r := range g.Rules {
		nr := &Rule{Name: r.Name, Line: r.Line}
		nr.Alternatives = append(nr.Alternatives, r.Alternatives...)
		out.AddRule(nr)
	}
	return out
}

// Parse parses a grammar in the sqalpel source syntax:
//
//	rulename:
//	    alternative one
//	    alternative two
//
// A rule header is a line ending in ':'; subsequent indented (or simply
// non-header) lines up to the next header are its alternatives. Blank lines
// and lines starting with '#' are ignored.
func Parse(src string) (*Grammar, error) {
	g := New("")
	var current *Rule
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if isRuleHeader(line) {
			name := strings.TrimSpace(strings.TrimSuffix(trimmed, ":"))
			if name == "" {
				return nil, fmt.Errorf("line %d: empty rule name", lineNo+1)
			}
			if !validRuleName(name) {
				return nil, fmt.Errorf("line %d: invalid rule name %q", lineNo+1, name)
			}
			current = &Rule{Name: name, Line: lineNo + 1}
			g.AddRule(current)
			// AddRule may have merged into an existing rule; keep appending
			// alternatives to the canonical one.
			current = g.Rule(name)
			continue
		}
		if current == nil {
			return nil, fmt.Errorf("line %d: alternative %q before any rule header", lineNo+1, trimmed)
		}
		alt, err := parseAlternative(trimmed, lineNo+1)
		if err != nil {
			return nil, err
		}
		current.Alternatives = append(current.Alternatives, alt)
	}
	if len(g.Rules) == 0 {
		return nil, fmt.Errorf("grammar contains no rules")
	}
	for _, r := range g.Rules {
		if len(r.Alternatives) == 0 {
			return nil, fmt.Errorf("rule %q has no alternatives", r.Name)
		}
	}
	return g, nil
}

// isRuleHeader reports whether the line is a rule header. A header is an
// unindented line of the form "name:"; an alternative may legitimately end
// in ':' only if it is indented.
func isRuleHeader(line string) bool {
	if len(line) == 0 {
		return false
	}
	if line[0] == ' ' || line[0] == '\t' {
		return false
	}
	trimmed := strings.TrimSpace(line)
	if !strings.HasSuffix(trimmed, ":") {
		return false
	}
	return validRuleName(strings.TrimSuffix(trimmed, ":"))
}

func validRuleName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseAlternative splits an alternative line into literal and reference
// elements. The optional "@dialect " prefix is peeled off first.
func parseAlternative(text string, line int) (Alternative, error) {
	alt := Alternative{Line: line}
	if strings.HasPrefix(text, "@") {
		sp := strings.IndexAny(text, " \t")
		if sp < 0 {
			return alt, fmt.Errorf("line %d: dialect tag %q without a snippet", line, text)
		}
		alt.Dialect = strings.ToLower(text[1:sp])
		text = strings.TrimSpace(text[sp:])
	}
	elems, err := parseElements(text, line)
	if err != nil {
		return alt, err
	}
	alt.Elements = elems
	return alt, nil
}

func parseElements(text string, line int) ([]Element, error) {
	var elems []Element
	var lit strings.Builder
	flush := func() {
		s := strings.TrimSpace(lit.String())
		if s != "" {
			elems = append(elems, Element{Text: s})
		}
		lit.Reset()
	}
	i := 0
	for i < len(text) {
		if text[i] == '$' && i+1 < len(text) && (text[i+1] == '{' || text[i+1] == '[') {
			open := text[i+1]
			closeCh := byte('}')
			kind := RefRequired
			if open == '[' {
				closeCh = ']'
				kind = RefOptional
			}
			end := strings.IndexByte(text[i+2:], closeCh)
			if end < 0 {
				return nil, fmt.Errorf("line %d: unterminated reference in %q", line, text)
			}
			name := strings.TrimSpace(text[i+2 : i+2+end])
			if !validRuleName(name) {
				return nil, fmt.Errorf("line %d: invalid rule reference %q", line, name)
			}
			flush()
			i = i + 2 + end + 1
			if kind == RefRequired && i < len(text) && text[i] == '*' {
				kind = RefStar
				i++
			}
			elems = append(elems, Element{Ref: name, Kind: kind})
			continue
		}
		lit.WriteByte(text[i])
		i++
	}
	flush()
	if len(elems) == 0 {
		return nil, fmt.Errorf("line %d: empty alternative", line)
	}
	return elems, nil
}

// Fuse merges the alternatives of rule src into rule dst and removes src,
// rewriting references. The paper mentions rule fusion as the manual lever a
// project owner has to shrink the search space.
func (g *Grammar) Fuse(dst, src string) error {
	d, s := g.Rule(dst), g.Rule(src)
	if d == nil {
		return fmt.Errorf("fuse: unknown destination rule %q", dst)
	}
	if s == nil {
		return fmt.Errorf("fuse: unknown source rule %q", src)
	}
	if d == s {
		return fmt.Errorf("fuse: cannot fuse rule %q into itself", dst)
	}
	d.Alternatives = append(d.Alternatives, s.Alternatives...)
	// Rewrite references to src so they point at dst.
	for _, r := range g.Rules {
		for ai := range r.Alternatives {
			for ei := range r.Alternatives[ai].Elements {
				if r.Alternatives[ai].Elements[ei].Ref == src {
					r.Alternatives[ai].Elements[ei].Ref = dst
				}
			}
		}
	}
	// Remove src from the rule list and index.
	out := g.Rules[:0]
	for _, r := range g.Rules {
		if r.Name != src {
			out = append(out, r)
		}
	}
	g.Rules = out
	delete(g.index, src)
	if g.Start == src {
		g.Start = dst
	}
	return nil
}

// LexicalClasses returns, for every lexical rule, the number of literals it
// offers, keyed by rule name. The result is deterministic (sorted keys are
// available through sortedKeys).
func (g *Grammar) LexicalClasses() map[string]int {
	out := map[string]int{}
	for _, r := range g.LexicalRules() {
		out[r.Name] = len(r.Literals())
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
