package grammar

import (
	"strings"
	"testing"
)

// figure1 is the sample grammar of the paper's Figure 1 (seven rules over
// the TPC-H nation table).
const figure1 = `
query:
	SELECT ${projection} FROM ${l_tables} $[l_filter]
projection:
	${l_count}
	${l_column} ${columnlist}*
l_tables:
	nation
columnlist:
	, ${l_column}
l_column:
	n_nationkey
	n_name
	n_regionkey
	n_comment
l_count:
	count(*)
l_filter:
	WHERE n_name = 'BRAZIL'
`

func mustParseGrammar(t *testing.T, src string) *Grammar {
	t.Helper()
	g, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse grammar failed: %v", err)
	}
	return g
}

func TestParseFigure1(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	if len(g.Rules) != 7 {
		t.Fatalf("rule count = %d, want 7", len(g.Rules))
	}
	if g.Start != "query" {
		t.Errorf("start = %q, want query", g.Start)
	}
	col := g.Rule("l_column")
	if col == nil || len(col.Alternatives) != 4 {
		t.Fatalf("l_column should have 4 alternatives, got %+v", col)
	}
	if !col.IsLexical() {
		t.Error("l_column should be lexical")
	}
	q := g.Rule("query")
	if q.IsLexical() {
		t.Error("query should be structural")
	}
	// The query rule has one alternative with refs projection, l_tables and
	// an optional l_filter.
	refs := q.Alternatives[0].References()
	want := []string{"projection", "l_tables", "l_filter"}
	if len(refs) != len(want) {
		t.Fatalf("query references = %v, want %v", refs, want)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("reference %d = %q, want %q", i, refs[i], want[i])
		}
	}
	// The optional filter must have kind RefOptional.
	var filterKind RefKind = -1
	for _, e := range q.Alternatives[0].Elements {
		if e.Ref == "l_filter" {
			filterKind = e.Kind
		}
	}
	if filterKind != RefOptional {
		t.Errorf("l_filter kind = %v, want optional", filterKind)
	}
	// columnlist is starred in the projection rule.
	var starKind RefKind = -1
	for _, e := range g.Rule("projection").Alternatives[1].Elements {
		if e.Ref == "columnlist" {
			starKind = e.Kind
		}
	}
	if starKind != RefStar {
		t.Errorf("columnlist kind = %v, want star", starKind)
	}
}

func TestParseErrorsGrammar(t *testing.T) {
	bad := []string{
		"",
		"   \n\n",
		"rule without colon\n\tx",
		"q:\n", // no alternatives
		"q:\n\t${unterminated",
		"q:\n\t@dialectonly",
		"1bad:\n\tx",
		"\talternative before header",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should have failed", src)
		}
	}
}

func TestParseDialectTags(t *testing.T) {
	g := mustParseGrammar(t, `
q:
	SELECT ${l_limit} x FROM t
l_limit:
	@monetdb LIMIT 10
	@mssql TOP 10
	ALL
`)
	lits := g.Rule("l_limit").Literals()
	if len(lits) != 3 {
		t.Fatalf("literal count = %d, want 3", len(lits))
	}
	if lits[0].Dialect != "monetdb" || lits[1].Dialect != "mssql" || lits[2].Dialect != "" {
		t.Errorf("dialects = %q %q %q", lits[0].Dialect, lits[1].Dialect, lits[2].Dialect)
	}
}

func TestCheckMissingAndDead(t *testing.T) {
	g := mustParseGrammar(t, `
q:
	SELECT ${missing} FROM ${l_t}
l_t:
	nation
orphan:
	unreachable ${l_t}
`)
	rep := g.Check()
	if len(rep.Missing) != 1 || rep.Missing[0] != "missing" {
		t.Errorf("missing = %v, want [missing]", rep.Missing)
	}
	if len(rep.Dead) != 1 || rep.Dead[0] != "orphan" {
		t.Errorf("dead = %v, want [orphan]", rep.Dead)
	}
	if rep.OK() {
		t.Error("report with missing rules should not be OK")
	}
	if g.Validate() == nil {
		t.Error("Validate should fail with missing rules")
	}
	if !strings.Contains(rep.String(), "missing") {
		t.Errorf("report string %q should mention missing rules", rep.String())
	}
}

func TestCheckRecursive(t *testing.T) {
	g := mustParseGrammar(t, `
expr:
	${l_lit}
	${expr} + ${l_lit}
l_lit:
	1
	2
`)
	rep := g.Check()
	if len(rep.Recursive) != 1 || rep.Recursive[0] != "expr" {
		t.Errorf("recursive = %v, want [expr]", rep.Recursive)
	}
	if !rep.OK() {
		t.Errorf("recursive grammars are valid, got %v", rep)
	}
}

func TestCheckCleanGrammar(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	rep := g.Check()
	if !rep.OK() || len(rep.Dead) != 0 || len(rep.Recursive) != 0 {
		t.Errorf("figure 1 grammar should be clean, got %v", rep)
	}
	if rep.String() != "grammar ok" {
		t.Errorf("clean report string = %q", rep.String())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate failed: %v", err)
	}
}

func TestNormalizeDropsDeadAndSplitsMixed(t *testing.T) {
	g := mustParseGrammar(t, `
q:
	SELECT ${proj} FROM t
proj:
	a
	b
	${l_agg}
l_agg:
	count(*)
	sum(x)
dead:
	never used
`)
	norm, err := g.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Rule("dead") != nil {
		t.Error("dead rule should be dropped")
	}
	// proj mixes two literal alternatives with a referencing one, so the
	// literals should move into proj_lit.
	helper := norm.Rule("proj_lit")
	if helper == nil {
		t.Fatal("expected proj_lit helper rule")
	}
	if !helper.IsLexical() || len(helper.Literals()) != 2 {
		t.Errorf("proj_lit = %+v, want 2 literals", helper)
	}
}

func TestStringRoundTrip(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	g2 := mustParseGrammar(t, g.String())
	if len(g2.Rules) != len(g.Rules) {
		t.Fatalf("round trip rule count = %d, want %d", len(g2.Rules), len(g.Rules))
	}
	if g.String() != g2.String() {
		t.Errorf("grammar rendering is not a fixed point:\n%s\n---\n%s", g.String(), g2.String())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	c := g.Clone()
	c.Rule("l_column").Alternatives = c.Rule("l_column").Alternatives[:1]
	if len(g.Rule("l_column").Alternatives) != 4 {
		t.Error("mutating the clone must not affect the original")
	}
}

func TestFuse(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	if err := g.Fuse("l_column", "l_count"); err != nil {
		t.Fatal(err)
	}
	if g.Rule("l_count") != nil {
		t.Error("fused rule should be removed")
	}
	if got := len(g.Rule("l_column").Literals()); got != 5 {
		t.Errorf("fused literal count = %d, want 5", got)
	}
	// References to l_count must now point at l_column.
	for _, a := range g.Rule("projection").Alternatives {
		for _, e := range a.Elements {
			if e.Ref == "l_count" {
				t.Error("stale reference to fused rule")
			}
		}
	}
	if err := g.Fuse("l_column", "l_column"); err == nil {
		t.Error("self fuse should fail")
	}
	if err := g.Fuse("nosuch", "l_column"); err == nil {
		t.Error("fuse into unknown rule should fail")
	}
	if err := g.Fuse("l_column", "nosuch"); err == nil {
		t.Error("fuse from unknown rule should fail")
	}
}

func TestEnumerateFigure1(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	enum, err := g.Enumerate(DefaultEnumerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if enum.Capped {
		t.Error("figure 1 grammar should not hit the cap")
	}
	// Expected templates: count(*) or 1..4 columns, each with and without
	// the optional filter: (1 + 4) * 2 = 10 templates.
	if got := enum.TemplateCount(); got != 10 {
		for _, tpl := range enum.Templates {
			t.Logf("template: %s", tpl.Signature())
		}
		t.Fatalf("template count = %d, want 10", got)
	}
	// Space: for k columns there are C(4,k) literal choices; count(*) has 1.
	// Sum over filter present/absent: 2 * (1 + C(4,1)+C(4,2)+C(4,3)+C(4,4))
	// = 2 * (1 + 4 + 6 + 4 + 1) = 32.
	if enum.Space != 32 {
		t.Errorf("space = %d, want 32", enum.Space)
	}
	if enum.Tags != 7 {
		t.Errorf("tags = %d, want 7 (6 nation literals + count)", enum.Tags)
	}
}

func TestEnumerateLiteralOnceRule(t *testing.T) {
	g := mustParseGrammar(t, `
q:
	SELECT ${l_col} ${extra}*
extra:
	, ${l_col}
l_col:
	a
	b
`)
	enum, err := g.Enumerate(DefaultEnumerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	// l_col has 2 literals, so templates with 3+ occurrences are pruned:
	// 1 or 2 columns → 2 templates; space = C(2,1)+C(2,2) = 3.
	if got := enum.TemplateCount(); got != 2 {
		t.Errorf("template count = %d, want 2", got)
	}
	if enum.Space != 3 {
		t.Errorf("space = %d, want 3", enum.Space)
	}

	// Without the literal-once rule repetitions up to 3 are allowed and
	// counted with replacement-free falling products disabled; the space
	// grows.
	loose, err := g.Enumerate(EnumerateOptions{LiteralOnce: false})
	if err != nil {
		t.Fatal(err)
	}
	if loose.TemplateCount() <= enum.TemplateCount() {
		t.Errorf("without literal-once: %d templates, want more than %d",
			loose.TemplateCount(), enum.TemplateCount())
	}
}

func TestEnumerateCap(t *testing.T) {
	// A grammar with many independent optional parts explodes; a small cap
	// must stop it and set Capped.
	src := "q:\n\tSELECT x"
	for i := 0; i < 16; i++ {
		src += " $[l_opt" + string(rune('a'+i)) + "]"
	}
	src += "\n"
	for i := 0; i < 16; i++ {
		name := "l_opt" + string(rune('a'+i))
		src += name + ":\n\topt" + string(rune('a'+i)) + "\n"
	}
	g := mustParseGrammar(t, src)
	enum, err := g.Enumerate(EnumerateOptions{TemplateCap: 100, LiteralOnce: true})
	if err != nil {
		t.Fatal(err)
	}
	if !enum.Capped {
		t.Error("expected the enumeration to be capped")
	}
	if enum.TemplateCount() > 400 {
		t.Errorf("capped enumeration returned %d templates", enum.TemplateCount())
	}
}

func TestEnumerateRecursiveGrammarTerminates(t *testing.T) {
	g := mustParseGrammar(t, `
expr:
	${l_lit}
	(${expr} + ${expr})
l_lit:
	1
	2
	3
`)
	enum, err := g.Enumerate(EnumerateOptions{TemplateCap: 500, MaxDepth: 6, LiteralOnce: true})
	if err != nil {
		t.Fatal(err)
	}
	if enum.TemplateCount() == 0 {
		t.Error("recursive grammar should still yield templates")
	}
	for _, tpl := range enum.Templates {
		if tpl.Counts["l_lit"] > 3 {
			t.Errorf("template %s violates the literal-once rule", tpl.Signature())
		}
	}
}

func TestTemplateCombinations(t *testing.T) {
	tpl := &Template{Counts: map[string]int{"l_col": 2, "l_f": 1}}
	sizes := map[string]int{"l_col": 4, "l_f": 3}
	if got := tpl.Combinations(sizes); got != 6*3 {
		t.Errorf("combinations = %d, want 18", got)
	}
	if got := tpl.OrderedCombinations(sizes); got != 12*3 {
		t.Errorf("ordered combinations = %d, want 36", got)
	}
	over := &Template{Counts: map[string]int{"l_col": 5}}
	if got := over.Combinations(sizes); got != 0 {
		t.Errorf("over-capacity combinations = %d, want 0", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{4, 0, 1}, {4, 4, 1}, {4, 2, 6}, {10, 3, 120}, {52, 5, 2598960},
		{3, 5, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestSpaceSummaryString(t *testing.T) {
	s := SpaceSummary{Tags: 10, Templates: 40, Space: 9207}
	if s.String() != "10 40 9207" {
		t.Errorf("summary = %q", s.String())
	}
	capped := SpaceSummary{Tags: 99, Templates: 100000, Capped: true}
	if !strings.Contains(capped.String(), ">") {
		t.Errorf("capped summary should use the > notation, got %q", capped.String())
	}
}

func TestGeneratorBaselineAndRandom(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	gen, err := NewGenerator(g, GeneratorOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	base, err := gen.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(base.SQL, "SELECT ") || !strings.Contains(base.SQL, "FROM nation") {
		t.Errorf("baseline = %q", base.SQL)
	}
	// The baseline realises the largest template: all 4 columns + filter.
	if base.Components() < 5 {
		t.Errorf("baseline components = %d, want >= 5", base.Components())
	}
	for i := 0; i < 50; i++ {
		s, err := gen.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s.SQL, "FROM nation") {
			t.Errorf("generated query %q lacks FROM nation", s.SQL)
		}
		if strings.Contains(s.SQL, "${") {
			t.Errorf("generated query %q contains unexpanded references", s.SQL)
		}
		// literal-once: no duplicated column names in the projection.
		cols := s.Literals["l_column"]
		seen := map[string]bool{}
		for _, c := range cols {
			if seen[c.Text] {
				t.Errorf("query %q repeats literal %q", s.SQL, c.Text)
			}
			seen[c.Text] = true
		}
	}
}

func TestGeneratorDeterministicSeed(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	gen1, _ := NewGenerator(g, GeneratorOptions{Seed: 7})
	gen2, _ := NewGenerator(g, GeneratorOptions{Seed: 7})
	for i := 0; i < 10; i++ {
		s1, err1 := gen1.Generate()
		s2, err2 := gen2.Generate()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if s1.SQL != s2.SQL {
			t.Fatalf("same seed produced different sentences: %q vs %q", s1.SQL, s2.SQL)
		}
	}
}

func TestGeneratorDialect(t *testing.T) {
	src := `
q:
	SELECT ${l_col} FROM t ${l_limit}
l_col:
	a
l_limit:
	@monetdb LIMIT 10
	@mssql TOP 10
`
	g := mustParseGrammar(t, src)
	gen, err := NewGenerator(g, GeneratorOptions{Dialect: "monetdb"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.SQL, "LIMIT 10") {
		t.Errorf("monetdb dialect should use LIMIT, got %q", s.SQL)
	}
	genMS, err := NewGenerator(g, GeneratorOptions{Dialect: "mssql"})
	if err != nil {
		t.Fatal(err)
	}
	s, err = genMS.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.SQL, "TOP 10") {
		t.Errorf("mssql dialect should use TOP, got %q", s.SQL)
	}
	// Generic dialect has no literal for l_limit at all → realisation error.
	genNone, err := NewGenerator(g, GeneratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := genNone.Baseline(); err == nil {
		t.Error("generic dialect should fail to realise the dialect-only class")
	}
}

func TestRealizationsExhaustive(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	gen, err := NewGenerator(g, GeneratorOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	keys := map[string]bool{}
	for _, tpl := range gen.Templates() {
		sents, err := gen.Realizations(tpl, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(sents)
		for _, s := range sents {
			if keys[s.Key()] {
				t.Errorf("duplicate sentence key %q", s.Key())
			}
			keys[s.Key()] = true
		}
	}
	// Must equal the counted space size (32 for figure 1).
	if total != 32 {
		t.Errorf("exhaustive realisations = %d, want 32", total)
	}
}

func TestRealizationsLimit(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	gen, _ := NewGenerator(g, GeneratorOptions{})
	// Pick a template with two column slots: it has C(4,2)=6 realisations.
	var twoCols *Template
	for _, tpl := range gen.Templates() {
		if tpl.Counts["l_column"] == 2 {
			twoCols = tpl
			break
		}
	}
	if twoCols == nil {
		t.Fatal("no two-column template found")
	}
	sents, err := gen.Realizations(twoCols, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sents) != 2 {
		t.Errorf("limited realisations = %d, want 2", len(sents))
	}
}

func TestSentenceKeyOrderInsensitive(t *testing.T) {
	tpl := &Template{
		Elements: []Element{{Text: "SELECT"}, {Ref: "l_column", Kind: RefRequired}, {Text: ","}, {Ref: "l_column", Kind: RefRequired}},
		Counts:   map[string]int{"l_column": 2},
	}
	a := Literal{Rule: "l_column", Text: "n_name", Line: 10}
	b := Literal{Rule: "l_column", Text: "n_comment", Line: 11}
	s1 := &Sentence{Template: tpl, Literals: map[string][]Literal{"l_column": {a, b}}}
	s2 := &Sentence{Template: tpl, Literals: map[string][]Literal{"l_column": {b, a}}}
	if s1.Key() != s2.Key() {
		t.Errorf("keys should be order-insensitive: %q vs %q", s1.Key(), s2.Key())
	}
}

func TestJoinSQL(t *testing.T) {
	got := JoinSQL([]string{"SELECT", "n_name", ",", "n_comment", "FROM", "nation"})
	want := "SELECT n_name, n_comment FROM nation"
	if got != want {
		t.Errorf("JoinSQL = %q, want %q", got, want)
	}
	got = JoinSQL([]string{"SELECT", "count(", "*", ")", "FROM", "t"})
	if got != "SELECT count(*) FROM t" {
		t.Errorf("JoinSQL = %q", got)
	}
}

func TestLexicalClassesAndLiterals(t *testing.T) {
	g := mustParseGrammar(t, figure1)
	classes := g.LexicalClasses()
	if classes["l_column"] != 4 || classes["l_count"] != 1 || classes["l_tables"] != 1 || classes["l_filter"] != 1 {
		t.Errorf("classes = %v", classes)
	}
	if len(g.Literals()) != 7 {
		t.Errorf("literal count = %d, want 7", len(g.Literals()))
	}
	// Literal identity is the line number.
	lits := g.Rule("l_column").Literals()
	seenLines := map[int]bool{}
	for _, l := range lits {
		if seenLines[l.Line] {
			t.Errorf("duplicate literal line %d", l.Line)
		}
		seenLines[l.Line] = true
	}
}
