// Package tracenilalloc protects the proven zero-allocation disabled path
// of the engine.ExecOptions.Tracer seam. PR 6's contract — pinned by
// TestDisabledTracerZeroAlloc and the seam-disabled benchmark — is that an
// execution with no tracer installed performs no tracing work at all: the
// hot paths reduce to one nil pointer comparison. Operator-id strings
// (trace.ScanID, trace.FilterID, ... — each a string concatenation, i.e.
// an allocation) and Tracer.Span calls must therefore only be reachable
// inside a block dominated by a tracer nil-check, or the disabled path
// silently regrows allocations that no test of the *traced* path would
// ever catch.
//
// The analyzer recognises three guard forms in internal/engine,
// internal/vexec and internal/cexec:
//
//	if ex.tracer != nil { ... }            // direct nil-check
//	if ex.traceOn(prefix) { ... }          // the executors' guard helpers
//	if ex.tracer == nil { return }         // early-out; the rest is guarded
//
// (&&-conjoined guards and else-branches of inverted guards count too.)
// Calls to trace id constructors (names ending in ID or Prefix from
// internal/trace) and to Tracer.Span outside any such region are flagged.
// Nil-safe span *consumers* (Span.Start, Timer.Done, Span.Merge) are
// deliberately exempt — they are designed to run unguarded.
//
// Suppress deliberate sites with //lint:tracealloc <reason>.
package tracenilalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sqalpel/internal/lint/analysis"
	"sqalpel/internal/lint/lintutil"
)

// Markers lists the engine packages carrying the trace seam.
var Markers = []string{
	"internal/engine",
	"internal/vexec",
	"internal/cexec",
}

// TraceMarker locates the trace package.
const TraceMarker = "internal/trace"

// Token is the suppression token: //lint:tracealloc <reason>.
const Token = "tracealloc"

// guardFuncs are the executors' boolean guard helpers: engine.traced,
// vexec/cexec.traceOn (each wraps the nil-check plus the untraced-prefix
// convention).
var guardFuncs = map[string]bool{"traceOn": true, "traced": true, "traceEnabled": true}

var Analyzer = &analysis.Analyzer{
	Name: "tracenilalloc",
	Doc: "flag trace id construction and Tracer.Span calls not dominated by a tracer nil-check " +
		"in executor packages (protects the 0-alloc disabled trace path); suppress with //lint:tracealloc <reason>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PathMatchesAny(pass.Pkg.Path(), Markers...) {
		return nil, nil
	}
	sup := lintutil.NewSuppressions(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walkStmts(pass, sup, fd.Body.List, false)
			}
		}
	}
	return nil, nil
}

// walkStmts processes a statement list in source order. guarded means a
// tracer nil-check dominates the current position; an inverted guard whose
// body terminates upgrades the rest of the list.
func walkStmts(pass *analysis.Pass, sup *lintutil.Suppressions, stmts []ast.Stmt, guarded bool) {
	for _, s := range stmts {
		guarded = walkStmt(pass, sup, s, guarded)
	}
}

// walkStmt processes one statement and returns the guard state for the
// statements after it.
func walkStmt(pass *analysis.Pass, sup *lintutil.Suppressions, s ast.Stmt, guarded bool) bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			checkNode(pass, sup, s.Init, guarded)
		}
		checkNode(pass, sup, s.Cond, guarded)
		pos := posGuard(pass, s.Cond)
		neg := negGuard(pass, s.Cond)
		walkStmts(pass, sup, s.Body.List, guarded || pos)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			walkStmts(pass, sup, e.List, guarded || neg)
		case *ast.IfStmt:
			walkStmt(pass, sup, e, guarded || neg)
		}
		if neg && terminates(s.Body) {
			return true
		}
		return guarded
	case *ast.BlockStmt:
		walkStmts(pass, sup, s.List, guarded)
		return guarded
	case *ast.ForStmt:
		if s.Init != nil {
			checkNode(pass, sup, s.Init, guarded)
		}
		if s.Cond != nil {
			checkNode(pass, sup, s.Cond, guarded)
		}
		if s.Post != nil {
			checkNode(pass, sup, s.Post, guarded)
		}
		walkStmts(pass, sup, s.Body.List, guarded)
		return guarded
	case *ast.RangeStmt:
		checkNode(pass, sup, s.X, guarded)
		walkStmts(pass, sup, s.Body.List, guarded)
		return guarded
	case *ast.SwitchStmt:
		if s.Init != nil {
			checkNode(pass, sup, s.Init, guarded)
		}
		if s.Tag != nil {
			checkNode(pass, sup, s.Tag, guarded)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					checkNode(pass, sup, e, guarded)
				}
				walkStmts(pass, sup, cc.Body, guarded)
			}
		}
		return guarded
	case *ast.TypeSwitchStmt:
		walkTypeSwitch(pass, sup, s, guarded)
		return guarded
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					checkNode(pass, sup, cc.Comm, guarded)
				}
				walkStmts(pass, sup, cc.Body, guarded)
			}
		}
		return guarded
	default:
		checkNode(pass, sup, s, guarded)
		return guarded
	}
}

func walkTypeSwitch(pass *analysis.Pass, sup *lintutil.Suppressions, s *ast.TypeSwitchStmt, guarded bool) {
	if s.Init != nil {
		checkNode(pass, sup, s.Init, guarded)
	}
	checkNode(pass, sup, s.Assign, guarded)
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			walkStmts(pass, sup, cc.Body, guarded)
		}
	}
}

// checkNode flags matched trace calls under the given guard state;
// function literals inherit the state of their creation site (closures on
// the trace paths are built inside guards).
func checkNode(pass *analysis.Pass, sup *lintutil.Suppressions, n ast.Node, guarded bool) {
	if guarded {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if matchedTraceCall(pass, call) && !sup.Suppressed(pass.Fset, call.Pos(), Token) {
			pass.Reportf(call.Pos(),
				"%s outside a tracer nil-check: the disabled-trace path must stay allocation-free "+
					"(guard with `if <tracer> != nil` / traceOn, or annotate //lint:%s <reason>)",
				lintutil.ExprString(call.Fun), Token)
		}
		return true
	})
}

// matchedTraceCall matches Tracer.Span and the allocating id/prefix
// constructors of the trace package.
func matchedTraceCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if lintutil.IsMethodCall(pass.TypesInfo, call, TraceMarker, "Tracer", "Span") {
		return true
	}
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !lintutil.PathMatches(fn.Pkg().Path(), TraceMarker) {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return strings.HasSuffix(fn.Name(), "ID") || strings.HasSuffix(fn.Name(), "Prefix")
}

// posGuard reports whether the condition establishes "tracer is non-nil":
// a `x != nil` with x of tracer type, a guard-helper call, or an
// &&-conjunction containing either.
func posGuard(pass *analysis.Pass, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return posGuard(pass, e.X) || posGuard(pass, e.Y)
		}
		if e.Op == token.NEQ {
			return nilCheckOnTracer(pass, e)
		}
	case *ast.CallExpr:
		if fn := lintutil.CalleeFunc(pass.TypesInfo, e); fn != nil && guardFuncs[fn.Name()] {
			return true
		}
	}
	return false
}

// negGuard reports whether the condition establishes "tracer is nil" (so
// the else branch / post-early-return code is guarded): `x == nil`,
// !posGuard, or an ||-disjunction containing either.
func negGuard(pass *analysis.Pass, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return negGuard(pass, e.X) || negGuard(pass, e.Y)
		}
		if e.Op == token.EQL {
			return nilCheckOnTracer(pass, e)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return posGuard(pass, e.X)
		}
	}
	return false
}

// nilCheckOnTracer reports whether one side is nil and the other is a
// *trace.Tracer-typed expression.
func nilCheckOnTracer(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isTracer := func(x ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[ast.Unparen(x)]
		return ok && tv.Type != nil && lintutil.NamedIn(tv.Type, TraceMarker, "Tracer")
	}
	return (isNil(e.X) && isTracer(e.Y)) || (isNil(e.Y) && isTracer(e.X))
}

// terminates reports whether the block always leaves the enclosing
// statement list (return / branch / panic as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
