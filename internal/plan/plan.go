// Package plan is the shared logical-plan layer of the execution substrate:
// the paradigm-neutral front end that all three executor stacks (the
// tuple-at-a-time and column-at-a-time interpreters in internal/engine and
// the batch-vectorized kernel in internal/vexec) consume instead of
// re-walking the raw AST on every execution.
//
// A Plan is built once per (schema, normalized SQL) and captures everything
// the engines previously re-derived on each Execute call:
//
//   - name resolution of every FROM item against the catalog, including the
//     output schemas of derived tables and set-operation branches,
//   - WHERE conjunct splitting with the common-OR lift (the TPC-H Q19
//     pattern), classified into hash-join edges, single-input pushdowns and
//     residual filters, plus the greedy join order as explicit JoinSteps,
//   - column pruning (the per-alias needed-column sets of the column
//     engine),
//   - constant folding of integer literal arithmetic in filter predicates,
//   - sub-query classification (correlated or cacheable) for every nested
//     SELECT reachable from the statement,
//   - a precomputed Vectorizable verdict with the reason a statement is
//     outside the vectorized subset, replacing the probe-and-fallback the
//     vektor adapter used to pay at runtime.
//
// Plans are immutable after Build and safe for concurrent use; the Cache in
// this package shares them between repetitions, engines and scheduler
// workers, keyed by the same quote-aware normalized SQL (Normalize) the
// measurement scheduler's result cache uses and invalidated by the
// catalog's schema/data version.
package plan

import (
	"sqalpel/internal/sqlparser"
)

// Catalog supplies the schema information name resolution runs against. The
// engine's Database implements it; unknown tables resolve to no columns so
// execution reports the error exactly where it used to.
type Catalog interface {
	// TableColumns returns the column names of a base table in declaration
	// order, or false when the table does not exist.
	TableColumns(name string) ([]string, bool)
}

// ColumnMeta names one column of a resolved schema: the table alias it
// belongs to (empty for computed columns) and the column name, both lower
// case — the same naming metadata the executors' intermediate relations and
// batches carry.
type ColumnMeta struct {
	Table string
	Name  string
}

// Class is the role a WHERE conjunct plays in the plan.
type Class int

// Conjunct classes.
const (
	// ClassResidual conjuncts are evaluated after the joins.
	ClassResidual Class = iota
	// ClassJoin conjuncts are equi-join edges consumed by a JoinStep.
	ClassJoin
	// ClassPushdown conjuncts resolve entirely within one FROM input (or
	// reference no columns at all) and may be evaluated below the joins;
	// the interpreters still treat them as residual filters, the vectorized
	// executor pushes them into the input pipeline.
	ClassPushdown
)

// Conjunct is one WHERE conjunct after splitting and the common-OR lift.
type Conjunct struct {
	Expr sqlparser.Expr
	// Class is the conjunct's role.
	Class Class
	// Input is the FROM-input index a ClassPushdown conjunct belongs to.
	Input int
}

// JoinStep is one step of the greedy join order stitching the FROM inputs
// together: join the accumulated left side with input Right, either through
// the extracted equi-join keys or as a cross product when no edge connects
// the remaining inputs.
type JoinStep struct {
	// Right indexes Select.From.
	Right int
	// Cross marks a cartesian product (no equi-join edge was found).
	Cross bool
	// LeftKeys/RightKeys are the join key expressions, resolved on the
	// accumulated left side and on the right input respectively.
	LeftKeys  []sqlparser.Expr
	RightKeys []sqlparser.Expr
}

// Input is one resolved FROM item: a base table, a derived table or an
// explicit join tree.
type Input struct {
	// Table and Alias name a base table input (Alias defaults to Table).
	Table string
	Alias string
	// Derived is the sub-plan of a derived table (Alias renames its output
	// when non-empty).
	Derived *Select
	// Join is the root of an explicit JOIN tree.
	Join *Join
	// Schema is the input's resolved output schema.
	Schema []ColumnMeta
}

// Join is one node of an explicit JOIN tree with its ON condition already
// classified. RIGHT joins are normalized at build time: the sides are
// swapped and the kind becomes "LEFT", mirroring the interpreter.
type Join struct {
	// Kind is "CROSS", "INNER" or "LEFT".
	Kind string
	// Left and Right are the join operands.
	Left  *Input
	Right *Input
	// LeftKeys/RightKeys are the equi-join key pairs extracted from ON.
	LeftKeys  []sqlparser.Expr
	RightKeys []sqlparser.Expr
	// Residual are the non-equi ON conjuncts applied after the hash join.
	Residual []sqlparser.Expr
	// AllConds are all ON conjuncts; INNER joins without equi keys evaluate
	// them over the cross product (the nested-loop path), and LEFT joins
	// without keys match on them per row pair.
	AllConds []sqlparser.Expr
	// Schema is the join's output schema (left columns then right columns).
	Schema []ColumnMeta
}

// Select is the logical plan of one SELECT core (one link of a set-operation
// chain).
type Select struct {
	// Stmt is the parsed statement this plan was built from; the executors
	// still read the projection, grouping, ordering and limit clauses from
	// it (those are positional and need no resolution pass).
	Stmt *sqlparser.SelectStatement
	// From are the resolved FROM items.
	From []*Input
	// Conjuncts are the WHERE conjuncts after splitting, the common-OR lift
	// and constant folding, in canonical order, each classified.
	Conjuncts []Conjunct
	// JoinSteps is the greedy join order over From.
	JoinSteps []JoinStep
	// Residual are the non-join conjuncts in the interpreters' evaluation
	// order: original order with sub-query-bearing predicates moved last.
	Residual []sqlparser.Expr
	// VexecPushdown are the conjuncts the vectorized executor evaluates
	// below the joins, per FROM input.
	VexecPushdown [][]sqlparser.Expr
	// VexecResidual are the conjuncts the vectorized executor evaluates
	// after the joins (non-join, non-pushdown).
	VexecResidual []sqlparser.Expr
	// Grouped reports whether the query groups or aggregates.
	Grouped bool
	// EarlyLimit is LIMIT+OFFSET when a plain scan may stop early (no
	// grouping, DISTINCT or ORDER BY); zero otherwise. Only the row engine
	// exploits it.
	EarlyLimit int
	// Needed are the per-alias column sets referenced anywhere in the
	// statement — the column engine's pruning input.
	Needed map[string]map[string]bool
	// Schema is the joined FROM schema in join order.
	Schema []ColumnMeta
	// OutSchema is the statement's output schema (star columns expanded,
	// computed columns with an empty table tag).
	OutSchema []ColumnMeta
	// SetNext chains the plan of the next set-operation branch; the
	// operator is Stmt.SetOp.
	SetNext *Select
}

// ApplyShape classifies how a decorrelated sub-query's per-group result is
// consumed at its use site.
type ApplyShape int

// Apply shapes.
const (
	// ApplyExists answers EXISTS/NOT EXISTS: any matching inner row decides.
	ApplyExists ApplyShape = iota
	// ApplyIn answers IN/NOT IN: three-valued membership among the matching
	// inner rows' projected values.
	ApplyIn
	// ApplyFirst answers a scalar sub-query without aggregation: the first
	// matching inner row's projected value, NULL when none matches.
	ApplyFirst
	// ApplyAgg answers a scalar aggregated sub-query: the aggregates folded
	// over the matching inner rows, with the empty-group value (count 0,
	// NULL sums) when none matches.
	ApplyAgg
)

// Apply is the decorrelation recipe of one correlated sub-query: the
// plan-level proof that its correlation predicates form an equi-join between
// the enclosing query (outer side) and the sub-query's own FROM pipeline
// (inner side). Executors that do not want to re-run the sub-query per outer
// row build the inner side once per execution, hash it by InnerKeys, and
// probe it with OuterKeys — turning the correlated sub-query into a join.
type Apply struct {
	// Shape is the use-site classification.
	Shape ApplyShape
	// OuterKeys/InnerKeys are the equi-correlation key pairs: OuterKeys
	// resolve in the enclosing query's joined FROM schema, InnerKeys in the
	// sub-query's own.
	OuterKeys []sqlparser.Expr
	InnerKeys []sqlparser.Expr
	// InnerResidual are the sub-query WHERE conjuncts that resolve entirely
	// within the sub-query's own FROM schema; they filter the inner side
	// before it is hashed (they replace the sub-plan's VexecResidual, whose
	// correlation conjuncts the probe has consumed).
	InnerResidual []sqlparser.Expr
	// PairConjuncts are the remaining conjuncts referencing the outer scope
	// in non-equi form (TPC-H Q21's l2.l_suppkey <> l1.l_suppkey); they are
	// evaluated per candidate (outer, inner) row pair after the key probe.
	PairConjuncts []sqlparser.Expr
}

// Plan is the shared logical plan of one query text against one catalog.
type Plan struct {
	// Root is the top-level SELECT plan.
	Root *Select
	// Vectorizable reports whether the statement is inside the vectorized
	// subset; when false, NotVectorizableReason says why and the vektor
	// adapter routes straight to the interpreter without probing.
	Vectorizable          bool
	NotVectorizableReason string

	// subs maps every nested SELECT reachable through expressions
	// (scalar/IN/EXISTS sub-queries) to its plan.
	subs map[*sqlparser.SelectStatement]*Select
	// correlated caches the correlation verdict per nested SELECT.
	correlated map[*sqlparser.SelectStatement]bool
	// apply maps each decorrelatable correlated sub-query to its recipe.
	apply map[*sqlparser.SelectStatement]*Apply
}

// Sub returns the plan of a nested SELECT reached through an expression, or
// nil when the statement is not part of this plan.
func (p *Plan) Sub(stmt *sqlparser.SelectStatement) *Select { return p.subs[stmt] }

// Correlated reports whether the nested SELECT references columns it cannot
// resolve from its own FROM clauses; uncorrelated sub-queries are executed
// once and cached by the executors.
func (p *Plan) Correlated(stmt *sqlparser.SelectStatement) bool { return p.correlated[stmt] }

// Apply returns the decorrelation recipe of a correlated sub-query, or nil
// when the sub-query is uncorrelated or not decorrelatable (in which case
// the plan's Vectorizable verdict is false with the reason).
func (p *Plan) Apply(stmt *sqlparser.SelectStatement) *Apply { return p.apply[stmt] }
