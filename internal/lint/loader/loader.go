// Package loader turns Go packages into the parsed-and-type-checked form
// the analyzers consume, using only the standard library and the go
// command. It replaces golang.org/x/tools/go/packages (unavailable in this
// build environment) with two loading modes:
//
//   - LoadPackages: module mode. `go list -deps -export -json` enumerates
//     the requested packages plus their dependency closure; packages of the
//     main module are parsed and type-checked from source in dependency
//     order, while standard-library dependencies are imported from the
//     compiler export data the go command just produced. No network, no
//     third-party modules.
//   - LoadFixtures: analysistest mode. Packages live under a
//     testdata/src/<importpath> tree, import each other by those relative
//     paths, and may import the standard library; the loader resolves
//     fixture imports against the tree and everything else through one
//     batched `go list -export` call.
//
// Both modes produce *Package values carrying the FileSet, the syntax
// trees (with comments — the suppression scanner needs them), the
// *types.Package and a fully populated *types.Info.
package loader

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errors holds type-checking errors. The analyzers run regardless —
	// a finding in a broken package is still a finding — but drivers
	// surface these so a typo cannot silently shrink coverage.
	Errors []error
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Imports    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs the go command and decodes its JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(args, " "), msg)
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// exportImporter imports packages from compiler export data files, keyed by
// import path. It wraps go/importer's gc importer with a lookup into the
// files `go list -export` reported.
func exportImporter(fset *token.FileSet, exportFiles map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// combinedImporter resolves module-internal imports from the already
// type-checked set and everything else from export data.
type combinedImporter struct {
	local  map[string]*types.Package
	export types.Importer
}

func (ci *combinedImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ci.local[path]; ok {
		return p, nil
	}
	return ci.export.Import(path)
}

// parseDirFiles parses the named files (absolute or dir-relative) with
// comments attached.
func parseDirFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck runs go/types over the parsed files, collecting (not aborting
// on) type errors.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	info := newInfo()
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, fset, files, info)
	return pkg, info, errs
}

// LoadPackages loads the main-module packages matched by the patterns
// (e.g. "./...") rooted at dir, type-checked against their full dependency
// closure. Only main-module packages are returned; dependencies are
// imported from export data.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	byPath := map[string]*listedPackage{}
	exportFiles := map[string]string{}
	for _, p := range listed {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
		if p.Error != nil && p.Module != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
	}

	fset := token.NewFileSet()
	ci := &combinedImporter{local: map[string]*types.Package{}, export: exportImporter(fset, exportFiles)}

	var out []*Package
	checked := map[string]bool{}
	var check func(p *listedPackage) error
	check = func(p *listedPackage) error {
		if checked[p.ImportPath] {
			return nil
		}
		checked[p.ImportPath] = true
		// Module-internal dependencies first, so the combined importer can
		// hand them out; everything else comes from export data.
		for _, imp := range p.Imports {
			if dep := byPath[imp]; dep != nil && dep.Module != nil {
				if err := check(dep); err != nil {
					return err
				}
			}
		}
		files, err := parseDirFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return err
		}
		tpkg, info, errs := typeCheck(fset, p.ImportPath, files, ci)
		ci.local[p.ImportPath] = tpkg
		out = append(out, &Package{
			Path:   p.ImportPath,
			Dir:    p.Dir,
			Fset:   fset,
			Files:  files,
			Types:  tpkg,
			Info:   info,
			Errors: errs,
		})
		return nil
	}
	for _, p := range listed {
		if p.Module == nil || p.Standard {
			continue
		}
		if err := check(p); err != nil {
			return nil, err
		}
	}
	// Keep only the pattern roots in the result: dependencies were loaded
	// solely to type-check them.
	roots := out[:0]
	for _, p := range out {
		if lp := byPath[p.Path]; lp != nil && !lp.DepOnly {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Path < roots[j].Path })
	return roots, nil
}

// stdExports caches export-data locations for standard-library packages
// across LoadFixtures calls within one process (the analyzer tests all
// need the same handful of packages).
var stdExports = struct {
	sync.Mutex
	files map[string]string
}{files: map[string]string{}}

// stdExportFiles ensures export data exists for the given stdlib import
// paths (plus their dependency closures) and returns the cached map.
func stdExportFiles(paths []string) (map[string]string, error) {
	stdExports.Lock()
	defer stdExports.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := stdExports.files[p]; !ok && p != "unsafe" {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		listed, err := goList("", append([]string{"-deps", "-export"}, missing...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				stdExports.files[p.ImportPath] = p.Export
			}
		}
	}
	return stdExports.files, nil
}

// fixtureImporter resolves imports for testdata packages: paths that exist
// as directories under the fixture root load (and type-check) as fixtures,
// everything else imports from standard-library export data.
type fixtureImporter struct {
	root    string
	fset    *token.FileSet
	loaded  map[string]*Package
	loading map[string]bool
	std     types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return fi.std.Import(path)
}

// load parses and type-checks one fixture package by its import path.
func (fi *fixtureImporter) load(path string) (*Package, error) {
	if p, ok := fi.loaded[path]; ok {
		return p, nil
	}
	if fi.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	fi.loading[path] = true
	defer delete(fi.loading, path)

	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %q: no Go files in %s", path, dir)
	}
	files, err := parseDirFiles(fi.fset, dir, names)
	if err != nil {
		return nil, err
	}
	tpkg, info, errs := typeCheck(fi.fset, path, files, fi)
	p := &Package{Path: path, Dir: dir, Fset: fi.fset, Files: files, Types: tpkg, Info: info, Errors: errs}
	fi.loaded[path] = p
	return p, nil
}

// LoadFixtures loads analysistest packages from root (a testdata/src
// directory) by their tree-relative import paths.
func LoadFixtures(root string, paths ...string) ([]*Package, error) {
	// One pass over the whole tree to collect the stdlib imports any
	// fixture mentions, so a single go list call covers them all.
	var stdPaths []string
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if perr != nil {
			return perr
		}
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if seen[ip] {
				continue
			}
			seen[ip] = true
			if st, serr := os.Stat(filepath.Join(root, filepath.FromSlash(ip))); serr == nil && st.IsDir() {
				continue // fixture-local import
			}
			stdPaths = append(stdPaths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	exports, err := stdExportFiles(stdPaths)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	fi := &fixtureImporter{
		root:    root,
		fset:    fset,
		loaded:  map[string]*Package{},
		loading: map[string]bool{},
		std:     exportImporter(fset, exports),
	}
	var out []*Package
	for _, p := range paths {
		pkg, err := fi.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
