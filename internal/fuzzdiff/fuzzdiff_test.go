package fuzzdiff

import (
	"strings"
	"testing"

	"sqalpel/internal/engine"
	"sqalpel/internal/grammar"
)

// TestDifferentialFuzz is the standing correctness oracle: at least 500
// distinct grammar-derived queries over NULL-rich data, executed on all
// six registry engines, must agree bit for bit. This is also the CI smoke
// gate (fixed seed, bounded size).
func TestDifferentialFuzz(t *testing.T) {
	rep, err := Run(Options{Seed: 42, Queries: 520})
	if err != nil {
		t.Fatalf("fuzzer failed to run: %v", err)
	}
	t.Logf("seed=%d rows=%d derived=%d executed=%d agreed-errors=%d divergences=%d",
		rep.Seed, rep.Rows, rep.Derived, rep.Executed, rep.AgreedErrors, len(rep.Divergences))
	if rep.Executed < 500 {
		t.Errorf("executed %d queries, want >= 500 (grammar space too small?)", rep.Executed)
	}
	for i, d := range rep.Divergences {
		if i >= 10 {
			t.Errorf("… and %d more divergences", len(rep.Divergences)-10)
			break
		}
		t.Errorf("engines diverge:\n%s", d.Describe())
	}
	// The grammar is designed to produce only valid queries; every engine
	// erroring in unison would hide coverage, so keep it visible.
	if rep.AgreedErrors > rep.Executed/10 {
		t.Errorf("%d/%d queries errored on every engine — grammar coverage collapsing", rep.AgreedErrors, rep.Executed)
	}
}

// TestFuzzReproducible pins seeded determinism: the same seed must derive
// the same queries and the same report counts.
func TestFuzzReproducible(t *testing.T) {
	a, err := Run(Options{Seed: 7, Queries: 60, Rows: 120})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Seed: 7, Queries: 60, Rows: 120})
	if err != nil {
		t.Fatal(err)
	}
	if a.Derived != b.Derived || a.Executed != b.Executed || a.AgreedErrors != b.AgreedErrors {
		t.Errorf("same seed produced different runs: %+v vs %+v", a, b)
	}
}

// TestGrammarCoversTernaryConstructs guards the grammar against losing the
// constructs the NULL-semantics contract is about.
func TestGrammarCoversTernaryConstructs(t *testing.T) {
	g, err := grammar.Parse(GrammarSource)
	if err != nil {
		t.Fatalf("grammar does not parse: %v", err)
	}
	var all string
	for _, lit := range g.Literals() {
		all += lit.Text + "\n"
	}
	for _, want := range []string{"NOT (", "LIKE", "NOT LIKE", "IN (", "NOT IN", "BETWEEN", "NOT BETWEEN", "NULL)", "CASE WHEN", "IS NULL", "IS NOT NULL"} {
		if !strings.Contains(all, want) {
			t.Errorf("grammar literals lost construct %q", want)
		}
	}
	// The sub-query shapes: uncorrelated IN/scalar/EXISTS plus correlated
	// WHERE sub-queries over both non-NULL (k) and nullable (a) keys.
	for _, want := range []string{
		"IN (SELECT", "NOT IN (SELECT",
		"> (SELECT MIN", "EXISTS (SELECT", "NOT EXISTS (SELECT",
		"WHERE dk = k", "WHERE dk = a",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("grammar literals lost sub-query shape %q", want)
		}
	}
	// The dictionary-routed shapes over the low-cardinality string key s:
	// equality on present and absent values, prefix LIKE, IN lists with
	// present/absent/NULL members, and code-order range comparisons — the
	// predicates the typed engines answer on dictionary codes and prune
	// with string zone maps, which the differential run checks against the
	// interpreters' raw-string answers.
	for _, want := range []string{
		"s = 'beta'", "s = 'zeta'", "s LIKE 'br%'",
		"s IN ('alpha'", "s IN ('beta', 'zeta', NULL)", "s NOT IN ('alto', NULL)",
		"s >= 'delta'", "s < 'bravo'",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("grammar literals lost dictionary-string shape %q", want)
		}
	}
}

// TestFingerprintExactness makes sure the fingerprint distinguishes what
// engines must not confuse: NULL vs false, and floats by bit pattern.
func TestFingerprintExactness(t *testing.T) {
	mk := func(v engine.Value) string {
		return Fingerprint(&engine.Result{Columns: []string{"c"}, Rows: [][]engine.Value{{v}}})
	}
	if mk(engine.Null()) == mk(engine.NewBool(false)) {
		t.Error("fingerprint confuses NULL with false")
	}
	// Runtime addition (constant folding would make these equal): 0.1+0.2
	// differs from 0.3 in the last bit, and the fingerprint must see it.
	a, b := 0.1, 0.2
	if mk(engine.NewFloat(a+b)) == mk(engine.NewFloat(0.3)) {
		t.Error("fingerprint rounds floats (0.1+0.2 vs 0.3 must differ)")
	}
	if mk(engine.NewInt(1)) == mk(engine.NewBool(true)) {
		t.Error("fingerprint confuses int 1 with bool true")
	}
}
