// Package repository is the walack fixture: mutation methods that
// acknowledge success with and without a preceding WAL append, plus the
// idioms the analyzer must accept.
package repository

import "errors"

type shard struct {
	wal      *walWriter
	projects map[int]string
}

type walWriter struct{ frames [][]byte }

func (w *walWriter) append(rec []byte) error {
	w.frames = append(w.frames, rec)
	return nil
}

// logApply is the WAL seam: append+fsync, then apply in memory.
func (sh *shard) logApply(op string, payload []byte) error {
	return sh.wal.append(payload)
}

// goodMutate is the canonical shape: append first (in the if init), then
// acknowledge.
func (sh *shard) goodMutate(id int, name string) error {
	if err := sh.logApply("set", []byte(name)); err != nil {
		return err
	}
	sh.projects[id] = name
	return nil
}

// tailMutate returns the append's error directly: the append is the ack.
func (sh *shard) tailMutate(id int, name string) error {
	sh.projects[id] = name
	return sh.logApply("set", []byte(name))
}

// earlyAck mutates in memory and acknowledges before the append ever
// runs — the crash-erases-an-acked-mutation bug.
func (sh *shard) earlyAck(id int, name string) error {
	if _, ok := sh.projects[id]; ok {
		sh.projects[id] = name
		return nil // want `success return before WAL append`
	}
	return sh.logApply("set", []byte(name))
}

// multiResult: the nil in error position is what acknowledges.
func (sh *shard) multiResult(id int) (string, error) {
	if name, ok := sh.projects[id]; ok {
		return name, nil // want `success return before WAL append`
	}
	if err := sh.logApply("touch", nil); err != nil {
		return "", err
	}
	return sh.projects[id], nil
}

// branchNoLeak: an append inside one branch must not bless the join
// point — the other branch never appended.
func (sh *shard) branchNoLeak(id int, durable bool) error {
	if durable {
		if err := sh.logApply("set", nil); err != nil {
			return err
		}
	}
	sh.projects[id] = "x"
	return nil // want `success return before WAL append`
}

// errReturn: returning a non-nil error is not an ack.
func (sh *shard) errReturn(id int) error {
	if sh.projects == nil {
		return errors.New("no projects")
	}
	return sh.logApply("touch", nil)
}

// noSeam functions (no logApply anywhere) are not mutation paths and are
// never examined.
func (sh *shard) lookup(id int) (string, error) {
	return sh.projects[id], nil
}

// deliberateAck documents a path that mutates nothing durable.
func (sh *shard) deliberateAck(batch []int) error {
	if len(batch) == 0 {
		//lint:acked empty batch: nothing was assigned, so there is nothing a crash could erase
		return nil
	}
	return sh.logApply("lease", nil)
}
