package sqlparser

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, sql string) *SelectStatement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q) failed: %v", sql, err)
	}
	return stmt
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, b FROM t WHERE a >= 10 AND b <> 'x''y'")
	if err != nil {
		t.Fatalf("Tokenize failed: %v", err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "SELECT" {
		t.Errorf("first token = %+v, want SELECT keyword", toks[0])
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Errorf("last token should be EOF, got %v", kinds[len(kinds)-1])
	}
	// find the escaped string literal
	found := false
	for _, tok := range toks {
		if tok.Kind == TokString && tok.Text == "x'y" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped string literal not found in %v", toks)
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("SELECT 1 -- trailing comment\n/* block\ncomment */ , 2")
	if err != nil {
		t.Fatalf("Tokenize failed: %v", err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TokEOF {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"SELECT", "1", ",", "2"}
	if len(texts) != len(want) {
		t.Fatalf("got tokens %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []string{"1", "3.14", "0.05", ".5", "1e6", "2.5E-3"}
	for _, c := range cases {
		toks, err := Tokenize(c)
		if err != nil {
			t.Fatalf("Tokenize(%q) failed: %v", c, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Text != c {
			t.Errorf("Tokenize(%q) = %+v, want number %q", c, toks[0], c)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{"'unterminated", "\"unterminated", "SELECT ${oops", "SELECT a ? b"}
	for _, c := range cases {
		if _, err := Tokenize(c); err == nil {
			t.Errorf("Tokenize(%q) should have failed", c)
		}
	}
}

func TestTokenizeLineNumbers(t *testing.T) {
	toks, err := Tokenize("SELECT\n  a\nFROM t")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 {
		t.Errorf("token %q line = %d, want 2", toks[1].Text, toks[1].Line)
	}
	if toks[2].Line != 3 {
		t.Errorf("token %q line = %d, want 3", toks[2].Text, toks[2].Line)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT n_name, n_regionkey FROM nation WHERE n_name = 'BRAZIL'")
	if len(stmt.Projection) != 2 {
		t.Fatalf("projection count = %d, want 2", len(stmt.Projection))
	}
	if len(stmt.From) != 1 {
		t.Fatalf("from count = %d, want 1", len(stmt.From))
	}
	tn, ok := stmt.From[0].(*TableName)
	if !ok || tn.Name != "nation" {
		t.Errorf("from = %#v, want nation", stmt.From[0])
	}
	be, ok := stmt.Where.(*BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("where = %#v, want equality", stmt.Where)
	}
}

func TestParseStar(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM nation")
	if !stmt.Projection[0].Star {
		t.Error("expected star projection")
	}
	stmt = mustParse(t, "SELECT n.* FROM nation n")
	if !stmt.Projection[0].Star || stmt.Projection[0].Qualifier != "n" {
		t.Errorf("expected qualified star, got %+v", stmt.Projection[0])
	}
}

func TestParseCountStar(t *testing.T) {
	stmt := mustParse(t, "SELECT count(*) FROM nation")
	f, ok := stmt.Projection[0].Expr.(*FuncCall)
	if !ok || !f.Star || f.Name != "count" {
		t.Fatalf("projection = %#v, want count(*)", stmt.Projection[0].Expr)
	}
	if !f.IsAggregate() {
		t.Error("count should be an aggregate")
	}
}

func TestParseAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT l_returnflag AS flag, sum(l_quantity) total FROM lineitem l")
	if stmt.Projection[0].Alias != "flag" {
		t.Errorf("alias = %q, want flag", stmt.Projection[0].Alias)
	}
	if stmt.Projection[1].Alias != "total" {
		t.Errorf("alias = %q, want total", stmt.Projection[1].Alias)
	}
	tn := stmt.From[0].(*TableName)
	if tn.Alias != "l" {
		t.Errorf("table alias = %q, want l", tn.Alias)
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT l_returnflag, count(*) FROM lineitem
		WHERE l_quantity > 10 GROUP BY l_returnflag HAVING count(*) > 5
		ORDER BY l_returnflag DESC LIMIT 10 OFFSET 2`)
	if len(stmt.GroupBy) != 1 {
		t.Errorf("group by count = %d, want 1", len(stmt.GroupBy))
	}
	if stmt.Having == nil {
		t.Error("expected HAVING clause")
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Errorf("order by = %+v, want single DESC item", stmt.OrderBy)
	}
	if stmt.Limit == nil || *stmt.Limit != 10 {
		t.Errorf("limit = %v, want 10", stmt.Limit)
	}
	if stmt.Offset == nil || *stmt.Offset != 2 {
		t.Errorf("offset = %v, want 2", stmt.Offset)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c - d / 2")
	if err != nil {
		t.Fatal(err)
	}
	// Should parse as (a + (b*c)) - (d/2).
	top, ok := e.(*BinaryExpr)
	if !ok || top.Op != "-" {
		t.Fatalf("top op = %#v, want -", e)
	}
	l := top.Left.(*BinaryExpr)
	if l.Op != "+" {
		t.Errorf("left op = %s, want +", l.Op)
	}
	if l.Right.(*BinaryExpr).Op != "*" {
		t.Errorf("nested op = %s, want *", l.Right.(*BinaryExpr).Op)
	}
	if top.Right.(*BinaryExpr).Op != "/" {
		t.Errorf("right op = %s, want /", top.Right.(*BinaryExpr).Op)
	}
}

func TestParseBooleanPrecedence(t *testing.T) {
	e, err := ParseExpr("a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*BinaryExpr)
	if top.Op != "OR" {
		t.Fatalf("top op = %s, want OR", top.Op)
	}
	if top.Right.(*BinaryExpr).Op != "AND" {
		t.Errorf("right op = %s, want AND", top.Right.(*BinaryExpr).Op)
	}
}

func TestParsePredicates(t *testing.T) {
	e, err := ParseExpr("l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*BetweenExpr); !ok {
		t.Errorf("expected BetweenExpr, got %#v", e)
	}

	e, err = ParseExpr("n_name NOT IN ('FRANCE', 'GERMANY')")
	if err != nil {
		t.Fatal(err)
	}
	in, ok := e.(*InExpr)
	if !ok || !in.Not || len(in.List) != 2 {
		t.Errorf("expected NOT IN with two items, got %#v", e)
	}

	e, err = ParseExpr("p_type LIKE '%BRASS'")
	if err != nil {
		t.Fatal(err)
	}
	if be, ok := e.(*BinaryExpr); !ok || be.Op != "LIKE" {
		t.Errorf("expected LIKE, got %#v", e)
	}

	e, err = ParseExpr("p_type NOT LIKE 'MEDIUM POLISHED%'")
	if err != nil {
		t.Fatal(err)
	}
	if be, ok := e.(*BinaryExpr); !ok || be.Op != "NOT LIKE" {
		t.Errorf("expected NOT LIKE, got %#v", e)
	}

	e, err = ParseExpr("c_comment IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if is, ok := e.(*IsNullExpr); !ok || !is.Not {
		t.Errorf("expected IS NOT NULL, got %#v", e)
	}
}

func TestParseSubqueries(t *testing.T) {
	stmt := mustParse(t, `SELECT s_name FROM supplier WHERE s_suppkey IN (
		SELECT ps_suppkey FROM partsupp WHERE ps_availqty > 100)`)
	in, ok := stmt.Where.(*InExpr)
	if !ok || in.Subquery == nil {
		t.Fatalf("expected IN subquery, got %#v", stmt.Where)
	}

	stmt = mustParse(t, `SELECT c_name FROM customer WHERE EXISTS (
		SELECT * FROM orders WHERE o_custkey = c_custkey)`)
	if _, ok := stmt.Where.(*ExistsExpr); !ok {
		t.Fatalf("expected EXISTS, got %#v", stmt.Where)
	}

	stmt = mustParse(t, `SELECT c_name FROM customer WHERE NOT EXISTS (
		SELECT * FROM orders WHERE o_custkey = c_custkey)`)
	ex, ok := stmt.Where.(*ExistsExpr)
	if !ok || !ex.Not {
		t.Fatalf("expected NOT EXISTS, got %#v", stmt.Where)
	}

	stmt = mustParse(t, `SELECT p_partkey FROM part WHERE p_size = (
		SELECT max(p_size) FROM part)`)
	be, ok := stmt.Where.(*BinaryExpr)
	if !ok {
		t.Fatalf("expected comparison, got %#v", stmt.Where)
	}
	if _, ok := be.Right.(*SubqueryExpr); !ok {
		t.Errorf("expected scalar subquery, got %#v", be.Right)
	}
}

func TestParseDerivedTable(t *testing.T) {
	stmt := mustParse(t, `SELECT avg(total) FROM (
		SELECT o_custkey, sum(o_totalprice) AS total FROM orders GROUP BY o_custkey) t`)
	d, ok := stmt.From[0].(*DerivedTable)
	if !ok {
		t.Fatalf("expected derived table, got %#v", stmt.From[0])
	}
	if d.Alias != "t" {
		t.Errorf("alias = %q, want t", d.Alias)
	}
	if len(d.Select.GroupBy) != 1 {
		t.Errorf("inner group by missing")
	}
}

func TestParseExplicitJoins(t *testing.T) {
	stmt := mustParse(t, `SELECT n_name, r_name FROM nation JOIN region ON n_regionkey = r_regionkey`)
	j, ok := stmt.From[0].(*JoinExpr)
	if !ok || j.Kind != "INNER" || j.On == nil {
		t.Fatalf("expected inner join with ON, got %#v", stmt.From[0])
	}

	stmt = mustParse(t, `SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x CROSS JOIN c`)
	outer, ok := stmt.From[0].(*JoinExpr)
	if !ok || outer.Kind != "CROSS" {
		t.Fatalf("expected cross join at top, got %#v", stmt.From[0])
	}
	inner, ok := outer.Left.(*JoinExpr)
	if !ok || inner.Kind != "LEFT" {
		t.Fatalf("expected left join nested, got %#v", outer.Left)
	}
}

func TestParseCase(t *testing.T) {
	e, err := ParseExpr(`CASE WHEN o_orderpriority = '1-URGENT' THEN 1 ELSE 0 END`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*CaseExpr)
	if !ok || len(c.Whens) != 1 || c.Else == nil {
		t.Fatalf("expected searched case, got %#v", e)
	}

	e, err = ParseExpr(`CASE n_name WHEN 'BRAZIL' THEN 1 WHEN 'FRANCE' THEN 2 END`)
	if err != nil {
		t.Fatal(err)
	}
	c = e.(*CaseExpr)
	if c.Operand == nil || len(c.Whens) != 2 {
		t.Fatalf("expected simple case with two arms, got %#v", e)
	}
}

func TestParseDateArithmetic(t *testing.T) {
	e, err := ParseExpr("o_orderdate < DATE '1995-03-15' + INTERVAL '3' MONTH")
	if err != nil {
		t.Fatal(err)
	}
	be := e.(*BinaryExpr)
	add, ok := be.Right.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("expected date + interval, got %#v", be.Right)
	}
	if _, ok := add.Left.(*DateLit); !ok {
		t.Errorf("expected date literal, got %#v", add.Left)
	}
	if iv, ok := add.Right.(*IntervalLit); !ok || iv.Unit != "MONTH" {
		t.Errorf("expected month interval, got %#v", add.Right)
	}
}

func TestParseExtractSubstringCast(t *testing.T) {
	e, err := ParseExpr("EXTRACT(YEAR FROM l_shipdate)")
	if err != nil {
		t.Fatal(err)
	}
	if ex, ok := e.(*ExtractExpr); !ok || ex.Unit != "YEAR" {
		t.Fatalf("expected extract year, got %#v", e)
	}

	e, err = ParseExpr("SUBSTRING(c_phone FROM 1 FOR 2)")
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := e.(*SubstringExpr); !ok || s.Length == nil {
		t.Fatalf("expected substring with length, got %#v", e)
	}

	e, err = ParseExpr("substring(c_phone, 1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*SubstringExpr); !ok {
		t.Fatalf("expected substring (call style), got %#v", e)
	}

	e, err = ParseExpr("CAST(l_quantity AS integer)")
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := e.(*CastExpr); !ok || c.Type != "integer" {
		t.Fatalf("expected cast to integer, got %#v", e)
	}

	e, err = ParseExpr("CAST(l_extendedprice AS decimal(15, 2))")
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := e.(*CastExpr); !ok || c.Type != "decimal" {
		t.Fatalf("expected cast to decimal, got %#v", e)
	}
}

func TestParseUnionAndSetOps(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v")
	if stmt.SetOp != "UNION ALL" || stmt.SetNext == nil {
		t.Fatalf("first set op = %q, want UNION ALL", stmt.SetOp)
	}
	if stmt.SetNext.SetOp != "UNION" || stmt.SetNext.SetNext == nil {
		t.Fatalf("second set op = %q, want UNION", stmt.SetNext.SetOp)
	}
}

func TestParseDistinctAndTop(t *testing.T) {
	stmt := mustParse(t, "SELECT DISTINCT n_regionkey FROM nation")
	if !stmt.Distinct {
		t.Error("expected DISTINCT")
	}
	stmt = mustParse(t, "SELECT TOP 5 n_name FROM nation")
	if stmt.Limit == nil || *stmt.Limit != 5 {
		t.Errorf("TOP 5 should set limit, got %v", stmt.Limit)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a IN (",
		"SELECT a FROM t JOIN u",
		"SELECT a b c FROM t",
		"SELECT CASE END FROM t",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t; SELECT b FROM u",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should have failed", sql)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	// Parsing the rendered SQL again must give the identical rendering
	// (canonical form fixed point).
	queries := []string{
		"SELECT count(*) FROM nation",
		"SELECT n_name, n_regionkey FROM nation WHERE n_name = 'BRAZIL'",
		"SELECT l_returnflag, sum(l_quantity) AS sum_qty FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY GROUP BY l_returnflag ORDER BY l_returnflag",
		"SELECT s_name FROM supplier, nation WHERE s_nationkey = n_nationkey AND n_name = 'GERMANY'",
		"SELECT o_orderpriority, count(*) AS order_count FROM orders WHERE EXISTS (SELECT * FROM lineitem WHERE l_orderkey = o_orderkey) GROUP BY o_orderpriority",
		"SELECT sum(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END) / sum(volume) AS mkt_share FROM (SELECT n_name AS nation, l_extendedprice AS volume FROM lineitem, supplier, nation WHERE l_suppkey = s_suppkey AND s_nationkey = n_nationkey) all_nations",
		"SELECT c_custkey FROM customer WHERE SUBSTRING(c_phone FROM 1 FOR 2) IN ('13', '31') AND c_acctbal > 0.00",
		"SELECT * FROM a LEFT JOIN b ON a.x = b.x",
		"SELECT DISTINCT p_brand FROM part WHERE p_size IN (1, 2, 3) AND p_type NOT LIKE 'SMALL%'",
	}
	for _, q := range queries {
		stmt1 := mustParse(t, q)
		r1 := stmt1.SQL()
		stmt2 := mustParse(t, r1)
		r2 := stmt2.SQL()
		if r1 != r2 {
			t.Errorf("round trip not a fixed point:\n first: %s\nsecond: %s", r1, r2)
		}
	}
}

func TestWalkAndHelpers(t *testing.T) {
	e, err := ParseExpr("sum(l_extendedprice * (1 - l_discount) * (1 + l_tax))")
	if err != nil {
		t.Fatal(err)
	}
	cols := ColumnsIn(e)
	if len(cols) != 3 {
		t.Errorf("ColumnsIn = %v, want 3 columns", cols)
	}
	if !HasAggregate(e) {
		t.Error("HasAggregate should be true for sum(...)")
	}
	e2, _ := ParseExpr("l_extendedprice * l_discount")
	if HasAggregate(e2) {
		t.Error("HasAggregate should be false without aggregates")
	}
	e3, _ := ParseExpr("x IN (SELECT y FROM t) AND EXISTS (SELECT 1 FROM u) AND z = (SELECT max(w) FROM v)")
	if got := len(Subqueries(e3)); got != 3 {
		t.Errorf("Subqueries = %d, want 3", got)
	}
}

func TestColumnsInDeduplicates(t *testing.T) {
	e, _ := ParseExpr("a + a + b.a")
	cols := ColumnsIn(e)
	if len(cols) != 2 {
		t.Errorf("ColumnsIn = %v, want 2 (a and b.a)", cols)
	}
}

func TestKeywordClassification(t *testing.T) {
	if !IsKeyword("select") || !IsKeyword("SELECT") {
		t.Error("select should be a keyword in any case")
	}
	if IsKeyword("lineitem") {
		t.Error("lineitem should not be a keyword")
	}
	if !IsAggregateName("Sum") || IsAggregateName("substring") {
		t.Error("aggregate classification wrong")
	}
}

// TestParsePropertyTokenizeNeverPanics feeds random printable strings to the
// tokenizer; it must either produce tokens or return an error, never panic,
// and every non-EOF token must carry non-empty text.
func TestParsePropertyTokenizeNeverPanics(t *testing.T) {
	f := func(s string) bool {
		clean := strings.Map(func(r rune) rune {
			if r < 32 || r > 126 {
				return ' '
			}
			return r
		}, s)
		toks, err := Tokenize(clean)
		if err != nil {
			return true
		}
		for _, tok := range toks {
			if tok.Kind != TokEOF && tok.Text == "" && tok.Kind != TokString && tok.Kind != TokIdent && tok.Kind != TokParam {
				return false
			}
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParsePropertyRenderedSQLReparses checks that any successfully parsed
// query from a generator of small random queries re-parses after rendering.
func TestParsePropertyRenderedSQLReparses(t *testing.T) {
	cols := []string{"n_nationkey", "n_name", "n_regionkey", "n_comment"}
	ops := []string{"=", "<>", "<", ">", "<=", ">="}
	f := func(colIdx, opIdx uint8, limit uint8, desc bool) bool {
		col := cols[int(colIdx)%len(cols)]
		op := ops[int(opIdx)%len(ops)]
		sql := "SELECT " + col + " FROM nation WHERE n_nationkey " + op + " 5"
		if desc {
			sql += " ORDER BY " + col + " DESC"
		}
		if limit > 0 {
			sql += " LIMIT " + strconvItoa(int(limit))
		}
		stmt, err := Parse(sql)
		if err != nil {
			return false
		}
		stmt2, err := Parse(stmt.SQL())
		if err != nil {
			return false
		}
		return stmt.SQL() == stmt2.SQL()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func strconvItoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}
