package catalog

import "testing"

func TestBootstrapCatalog(t *testing.T) {
	c := Bootstrap()
	if len(c.ListDBMS()) < 3 {
		t.Errorf("bootstrap DBMS entries = %d, want >= 3", len(c.ListDBMS()))
	}
	if len(c.ListPlatforms()) < 3 {
		t.Errorf("bootstrap platform entries = %d, want >= 3", len(c.ListPlatforms()))
	}
	d, ok := c.DBMS("columba-1.0")
	if !ok || d.Dialect != "columba" {
		t.Errorf("columba-1.0 lookup = %+v, %v", d, ok)
	}
	if _, ok := c.DBMS("oracle-23"); ok {
		t.Error("unknown DBMS should not resolve")
	}
	p, ok := c.Platform("xeon-e5-4657l")
	if !ok || p.MemoryGB != 1024 {
		t.Errorf("xeon lookup = %+v, %v", p, ok)
	}
}

func TestAddAndValidate(t *testing.T) {
	c := New()
	if err := c.AddDBMS(DBMS{Name: "", Version: "1"}); err == nil {
		t.Error("missing name should fail")
	}
	if err := c.AddDBMS(DBMS{Name: "x", Version: ""}); err == nil {
		t.Error("missing version should fail")
	}
	if err := c.AddPlatform(Platform{}); err == nil {
		t.Error("missing platform name should fail")
	}
	if err := c.AddDBMS(DBMS{Name: "MonetDB", Version: "11.39", Vendor: "CWI", Dialect: "monetdb"}); err != nil {
		t.Fatal(err)
	}
	if d, ok := c.DBMS("monetdb-11.39"); !ok || d.Vendor != "CWI" {
		t.Errorf("lookup after add failed: %+v %v", d, ok)
	}
	// Updating an entry replaces it.
	c.AddDBMS(DBMS{Name: "MonetDB", Version: "11.39", Vendor: "MonetDB Solutions", Dialect: "monetdb"})
	if d, _ := c.DBMS("monetdb-11.39"); d.Vendor != "MonetDB Solutions" {
		t.Errorf("update did not replace entry: %+v", d)
	}
	if len(c.ListDBMS()) != 1 {
		t.Errorf("duplicate keys should not multiply entries")
	}
}

func TestSnapshotRestore(t *testing.T) {
	c := Bootstrap()
	dbms, platforms := c.Snapshot()
	c2 := New()
	c2.Restore(dbms, platforms)
	if len(c2.ListDBMS()) != len(dbms) || len(c2.ListPlatforms()) != len(platforms) {
		t.Error("restore lost entries")
	}
	if _, ok := c2.DBMS("tuplestore-1.0"); !ok {
		t.Error("restored catalog misses tuplestore")
	}
}

func TestKeys(t *testing.T) {
	d := DBMS{Name: "Columba", Version: "2.0"}
	if d.Key() != "columba-2.0" {
		t.Errorf("key = %q", d.Key())
	}
	p := Platform{Name: "Laptop"}
	if p.Key() != "laptop" {
		t.Errorf("key = %q", p.Key())
	}
}
