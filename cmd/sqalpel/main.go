// Command sqalpel is the experiment driver, the Go counterpart of the
// paper's sqalpel.py: it reads a local configuration file, asks the platform
// server for tasks from a project's query pool, runs them against the local
// DBMS (here: one of the built-in engines over a generated data set) and
// reports the measurements back.
//
// Usage:
//
//	sqalpel -config sqalpel.conf -dataset tpch -sf 0.01 -max 0
//
// The configuration file format is documented in internal/driver:
//
//	server  = http://localhost:8080
//	key     = <contributor key>
//	dbms    = columba-1.0
//	platform = laptop
//	experiment = 1
//	runs = 5
//	workers = 4
//
// With workers > 1 (from the configuration file or the -workers flag) the
// driver leases tasks in batches and measures them concurrently, so several
// drivers can crowd-source one experiment without double-measuring.
//
// The explain subcommand renders the EXPLAIN plan-JSON of a query — the
// stable, engine-independent physical plan document whose operator ids the
// execution traces key their spans by — followed by the per-engine
// execution routes (which paradigm actually runs the statement, and why
// the vectorized/compiled engines fall back to the interpreter when they
// do), and with -run executes the query on every built-in engine with
// tracing enabled and prints the span tables:
//
//	sqalpel explain -dataset tpch -sf 0.01 -run "SELECT count(*) FROM lineitem"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sqalpel/internal/core"
	"sqalpel/internal/datagen"
	"sqalpel/internal/driver"
	"sqalpel/internal/engine"
	"sqalpel/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		runExplain(os.Args[2:])
		return
	}
	configPath := flag.String("config", "sqalpel.conf", "driver configuration file")
	dataset := flag.String("dataset", "tpch", "local data set to run against: tpch, ssb or airtraffic")
	sf := flag.Float64("sf", 0.01, "scale factor of the local data set")
	maxTasks := flag.Int("max", 0, "maximum number of tasks to process (0 = until the pool is exhausted)")
	workers := flag.Int("workers", 0, "concurrent measurement workers (0 = take from the config file)")
	batch := flag.Int("batch", 0, "tasks to lease per request (0 = worker count)")
	flag.Parse()

	cfg, err := driver.LoadConfig(*configPath)
	if err != nil {
		log.Fatalf("loading configuration: %v", err)
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	client, err := driver.NewClient(cfg)
	if err != nil {
		log.Fatal(err)
	}

	db, err := datagen.NamedDatabase(*dataset, *sf)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engineForKey(cfg.DBMS)
	if err != nil {
		log.Fatal(err)
	}
	target := &core.EngineTarget{Engine: eng, DB: db, Timeout: cfg.Timeout}

	fmt.Printf("sqalpel driver: %s on %s, data set %s sf %g, %d runs per query, %d workers\n",
		cfg.DBMS, cfg.Platform, *dataset, *sf, cfg.Runs, cfg.Workers)
	start := time.Now()
	n, err := client.RunAll(target, *maxTasks)
	if err != nil {
		log.Fatalf("after %d tasks: %v", n, err)
	}
	fmt.Printf("processed %d tasks in %s\n", n, time.Since(start).Round(time.Millisecond))
}

// runExplain implements the explain subcommand: print the query's EXPLAIN
// plan-JSON, and with -run execute it on the selected engines with tracing
// enabled and print the per-operator span tables keyed to the plan ids.
func runExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	dataset := fs.String("dataset", "tpch", "local data set to plan against: tpch, ssb or airtraffic")
	sf := fs.Float64("sf", 0.01, "scale factor of the local data set")
	run := fs.Bool("run", false, "also execute the query on the selected engines with tracing enabled")
	engines := fs.String("engines", "", "comma-separated engine keys for -run (default: all built-in engines)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: sqalpel explain [flags] <sql>")
	}
	sql := fs.Arg(0)

	db, err := datagen.NamedDatabase(*dataset, *sf)
	if err != nil {
		log.Fatal(err)
	}
	reg := engine.NewRegistry()
	doc, err := reg.ExplainJSON(db, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(doc))

	// The per-engine verdict: which paradigm actually runs the statement.
	// The interpreters always run natively; the vectorized and compiled
	// engines route on the plan's verdict and report why they fall back.
	routes, err := reg.Routes(db, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexecution routes:")
	for _, rt := range routes {
		if rt.Fallback {
			fmt.Printf("  %-16s %s: %s\n", rt.Engine, rt.Paradigm, rt.Reason)
			continue
		}
		fmt.Printf("  %-16s %s\n", rt.Engine, rt.Paradigm)
	}

	if !*run {
		return
	}
	keys := reg.Keys()
	if *engines != "" {
		keys = strings.Split(*engines, ",")
	}
	for _, key := range keys {
		eng := reg.Get(strings.TrimSpace(key))
		if eng == nil {
			log.Fatalf("unknown engine %q; available: %s", key, strings.Join(reg.Keys(), ", "))
		}
		tr := trace.NewTracer()
		res, err := eng.Execute(db, sql, engine.ExecOptions{Tracer: tr})
		if err != nil {
			fmt.Printf("\n%s: error: %v\n", key, err)
			continue
		}
		qt := tr.Trace(engine.EngineKey(eng.Name(), eng.Version()))
		fmt.Printf("\n%s: %d rows", key, res.NumRows())
		if res.Stats.BlocksSkipped > 0 {
			fmt.Printf(" (zone maps skipped %d blocks)", res.Stats.BlocksSkipped)
		}
		fmt.Println()
		fmt.Printf("%-28s %-12s %12s %10s %8s %8s\n", "operator", "kind", "wall (ms)", "rows", "batches", "skipped")
		for _, sp := range qt.Spans {
			fmt.Printf("%-28s %-12s %12.3f %10d %8d %8d\n",
				sp.OpID, sp.Kind, float64(sp.WallNS)/1e6, sp.Rows, sp.Batches, sp.BlocksSkipped)
		}
	}
}

// engineForKey maps a DBMS catalog key to a built-in engine.
func engineForKey(key string) (engine.Engine, error) {
	reg := engine.NewRegistry()
	if e := reg.Get(key); e != nil {
		return e, nil
	}
	// Accept bare names without a version.
	for _, e := range reg.Engines() {
		if strings.EqualFold(e.Name(), key) {
			return e, nil
		}
	}
	return nil, fmt.Errorf("unknown DBMS %q; available: %s", key, strings.Join(reg.Keys(), ", "))
}
