package grammar

import (
	"math"
	"strings"
	"testing"
)

// TestFormatSpaceSaturation locks in the saturation-reporting contract:
// space counts that hit the uint64 ceiling are reported as a lower bound,
// never as an exact number.
func TestFormatSpaceSaturation(t *testing.T) {
	if got := FormatSpace(12345); got != "12345" {
		t.Errorf("FormatSpace(12345) = %q", got)
	}
	if got := FormatSpace(math.MaxUint64); got != SaturatedSpaceLabel {
		t.Errorf("FormatSpace(MaxUint64) = %q, want %q", got, SaturatedSpaceLabel)
	}
	if !strings.Contains(SaturatedSpaceLabel, "1.8e19") || !strings.Contains(SaturatedSpaceLabel, "saturated") {
		t.Errorf("saturated label %q must name the bound and the saturation", SaturatedSpaceLabel)
	}
}

// TestSaturatedSummaryString makes sure a saturated (but uncapped) summary
// renders the lower bound, and that the saturating arithmetic actually pins
// counts to the ceiling rather than wrapping.
func TestSaturatedSummaryString(t *testing.T) {
	s := SpaceSummary{Tags: 3, Templates: 7, Space: math.MaxUint64}
	if !s.Saturated() {
		t.Error("SpaceSummary.Saturated() = false at the ceiling")
	}
	if got := s.String(); !strings.Contains(got, SaturatedSpaceLabel) {
		t.Errorf("saturated summary rendered as %q", got)
	}
	if satMul(math.MaxUint64/2, 4) != math.MaxUint64 {
		t.Error("satMul did not saturate")
	}
	if satAdd(math.MaxUint64, 1) != math.MaxUint64 {
		t.Error("satAdd did not saturate")
	}
	e := &Enumeration{Space: math.MaxUint64}
	if !e.SpaceSaturated() {
		t.Error("SpaceSaturated() = false at the ceiling")
	}
}
