package plan

import (
	"fmt"
	"strings"

	"sqalpel/internal/sqlparser"
)

// Build parses and plans a query against the catalog. Parse failures are
// reported as "parse error: ..." so engine-level wrapping reproduces the
// historical message format.
func Build(cat Catalog, sql string) (*Plan, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("parse error: %w", err)
	}
	return BuildStmt(cat, stmt)
}

// BuildStmt plans an already parsed statement against the catalog.
func BuildStmt(cat Catalog, stmt *sqlparser.SelectStatement) (*Plan, error) {
	b := &builder{
		cat: cat,
		p: &Plan{
			subs:       map[*sqlparser.SelectStatement]*Select{},
			correlated: map[*sqlparser.SelectStatement]bool{},
			apply:      map[*sqlparser.SelectStatement]*Apply{},
		},
	}
	root, err := b.buildChain(stmt)
	if err != nil {
		return nil, err
	}
	b.p.Root = root
	b.p.Vectorizable, b.p.NotVectorizableReason = b.verdict()
	return b.p, nil
}

// builder carries the shared state of one Build.
type builder struct {
	cat Catalog
	p   *Plan
}

// buildChain plans a statement and its set-operation continuations.
func (b *builder) buildChain(stmt *sqlparser.SelectStatement) (*Select, error) {
	head, err := b.buildSelect(stmt)
	if err != nil {
		return nil, err
	}
	cur := head
	for s := stmt; s.SetNext != nil; s = s.SetNext {
		next, err := b.buildSelect(s.SetNext)
		if err != nil {
			return nil, err
		}
		cur.SetNext = next
		cur = next
	}
	return head, nil
}

// buildSelect plans one SELECT core.
func (b *builder) buildSelect(stmt *sqlparser.SelectStatement) (*Select, error) {
	sp := &Select{Stmt: stmt}

	// Plan every sub-query reachable through the statement's expressions, so
	// the executors can look their plans (and correlation verdicts) up by
	// statement pointer instead of re-analyzing.
	if err := b.registerSubqueries(stmt); err != nil {
		return nil, err
	}

	// FROM items, resolved against the catalog.
	for _, te := range stmt.From {
		in, err := b.buildInput(te)
		if err != nil {
			return nil, err
		}
		sp.From = append(sp.From, in)
	}

	// WHERE conjuncts: fold constants, split, lift the common-OR predicates.
	where := FoldExpr(stmt.Where)
	raw := liftCommonOrConjuncts(splitAnd(where))
	sp.Conjuncts = make([]Conjunct, len(raw))
	for i, c := range raw {
		sp.Conjuncts[i] = Conjunct{Expr: c, Class: ClassResidual}
	}

	if len(sp.From) > 0 {
		b.classifyPushdowns(sp)
		b.planJoins(sp)
	}

	// Interpreter residual: every non-join conjunct in original order, with
	// sub-query-bearing predicates moved behind the cheap ones (stable).
	if len(sp.From) == 0 {
		// FROM-less SELECT: the interpreters evaluate the conjuncts as-is.
		for _, c := range sp.Conjuncts {
			sp.Residual = append(sp.Residual, c.Expr)
			sp.VexecResidual = append(sp.VexecResidual, c.Expr)
		}
	} else {
		var cheap, costly []sqlparser.Expr
		for _, c := range sp.Conjuncts {
			if c.Class == ClassJoin {
				continue
			}
			if len(sqlparser.Subqueries(c.Expr)) > 0 {
				costly = append(costly, c.Expr)
			} else {
				cheap = append(cheap, c.Expr)
			}
		}
		sp.Residual = append(cheap, costly...)

		sp.VexecPushdown = make([][]sqlparser.Expr, len(sp.From))
		for _, c := range sp.Conjuncts {
			switch c.Class {
			case ClassPushdown:
				sp.VexecPushdown[c.Input] = append(sp.VexecPushdown[c.Input], c.Expr)
			case ClassResidual:
				sp.VexecResidual = append(sp.VexecResidual, c.Expr)
			}
		}
	}

	// Joined schema in join order: From[0], then each step's right input.
	if len(sp.From) > 0 {
		sp.Schema = append(sp.Schema, sp.From[0].Schema...)
		for _, step := range sp.JoinSteps {
			sp.Schema = append(sp.Schema, sp.From[step.Right].Schema...)
		}
	}

	sp.Grouped = len(stmt.GroupBy) > 0 || statementHasAggregates(stmt)
	if !sp.Grouped && !stmt.Distinct && len(stmt.OrderBy) == 0 && stmt.Limit != nil {
		sp.EarlyLimit = int(*stmt.Limit)
		if stmt.Offset != nil {
			sp.EarlyLimit += int(*stmt.Offset)
		}
	}

	sp.Needed = b.neededColumns(stmt)
	sp.OutSchema = outSchema(stmt, sp.Schema)
	return sp, nil
}

// buildInput resolves one FROM item.
func (b *builder) buildInput(te sqlparser.TableExpr) (*Input, error) {
	switch t := te.(type) {
	case *sqlparser.TableName:
		alias := t.Alias
		if alias == "" {
			alias = t.Name
		}
		in := &Input{Table: t.Name, Alias: alias}
		if cols, ok := b.cat.TableColumns(t.Name); ok {
			for _, c := range cols {
				in.Schema = append(in.Schema, ColumnMeta{Table: strings.ToLower(alias), Name: strings.ToLower(c)})
			}
		}
		return in, nil
	case *sqlparser.DerivedTable:
		sub, err := b.buildChain(t.Select)
		if err != nil {
			return nil, err
		}
		in := &Input{Derived: sub, Alias: t.Alias}
		schema := append([]ColumnMeta(nil), sub.OutSchema...)
		if t.Alias != "" {
			for i := range schema {
				schema[i].Table = strings.ToLower(t.Alias)
			}
		}
		in.Schema = schema
		return in, nil
	case *sqlparser.JoinExpr:
		j, err := b.buildJoin(t)
		if err != nil {
			return nil, err
		}
		return &Input{Join: j, Schema: j.Schema}, nil
	default:
		return nil, fmt.Errorf("unsupported table expression %T", te)
	}
}

// buildJoin resolves an explicit JOIN tree node, classifying its ON
// condition into equi-join keys and residual predicates.
func (b *builder) buildJoin(j *sqlparser.JoinExpr) (*Join, error) {
	left, err := b.buildInput(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := b.buildInput(j.Right)
	if err != nil {
		return nil, err
	}
	kind := j.Kind
	if kind == "RIGHT" {
		// The interpreter implements RIGHT as LEFT with swapped sides; the
		// plan normalizes the same way so all executors agree on the
		// output column order.
		left, right = right, left
		kind = "LEFT"
	}
	out := &Join{Kind: kind, Left: left, Right: right}
	out.Schema = append(append([]ColumnMeta(nil), left.Schema...), right.Schema...)
	if kind == "CROSS" {
		return out, nil
	}
	conds := splitAnd(j.On)
	out.AllConds = conds
	for _, c := range conds {
		if isEquiJoinBetween(c, left.Schema, right.Schema) {
			l, r := equiJoinSides(c, left.Schema)
			out.LeftKeys = append(out.LeftKeys, l)
			out.RightKeys = append(out.RightKeys, r)
		} else {
			out.Residual = append(out.Residual, c)
		}
	}
	return out, nil
}

// classifyPushdowns marks conjuncts that resolve entirely within a single
// FROM input (the vectorized executor evaluates them below the joins; the
// result set is provably identical). Constant predicates go to input 0.
// Conjuncts carrying sub-queries contribute the sub-queries' free
// (correlated) references on top of their own: the probe site must see
// those columns, so the conjunct may only be pushed to an input that
// provides them.
func (b *builder) classifyPushdowns(sp *Select) {
	for ci := range sp.Conjuncts {
		c := &sp.Conjuncts[ci]
		refs := b.effectiveRefs(c.Expr)
		if len(refs) == 0 {
			c.Class = ClassPushdown
			c.Input = 0
			continue
		}
		target := -1
		for ii, in := range sp.From {
			if refsResolve(refs, in.Schema) {
				if target >= 0 {
					target = -2 // resolves in several inputs: leave residual
					break
				}
				target = ii
			}
		}
		if target >= 0 {
			c.Class = ClassPushdown
			c.Input = target
		}
	}
}

// planJoins replays the executors' greedy join-order search statically:
// starting from the first FROM input, repeatedly join the first remaining
// input connected to the accumulated schema through an equi-join conjunct;
// fall back to a cross product with the first remaining input when no edge
// exists. Consumed conjuncts become ClassJoin.
func (b *builder) planJoins(sp *Select) {
	accum := append([]ColumnMeta(nil), sp.From[0].Schema...)
	remaining := make([]int, 0, len(sp.From)-1)
	for i := 1; i < len(sp.From); i++ {
		remaining = append(remaining, i)
	}
	for len(remaining) > 0 {
		bestIdx := -1
		var edges []int
		for ri, fi := range remaining {
			var found []int
			for ci := range sp.Conjuncts {
				c := &sp.Conjuncts[ci]
				if c.Class == ClassJoin {
					continue
				}
				if isEquiJoinBetween(c.Expr, accum, sp.From[fi].Schema) {
					found = append(found, ci)
				}
			}
			if len(found) > 0 {
				bestIdx = ri
				edges = found
				break
			}
		}
		if bestIdx < 0 {
			fi := remaining[0]
			sp.JoinSteps = append(sp.JoinSteps, JoinStep{Right: fi, Cross: true})
			accum = append(accum, sp.From[fi].Schema...)
			remaining = remaining[1:]
			continue
		}
		fi := remaining[bestIdx]
		step := JoinStep{Right: fi}
		for _, ci := range edges {
			c := &sp.Conjuncts[ci]
			l, r := equiJoinSides(c.Expr, accum)
			step.LeftKeys = append(step.LeftKeys, l)
			step.RightKeys = append(step.RightKeys, r)
			c.Class = ClassJoin
		}
		sp.JoinSteps = append(sp.JoinSteps, step)
		accum = append(accum, sp.From[fi].Schema...)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
}

// registerSubqueries plans every nested SELECT reachable through the
// statement's expressions and records its correlation verdict.
func (b *builder) registerSubqueries(stmt *sqlparser.SelectStatement) error {
	var firstErr error
	register := func(s *sqlparser.SelectStatement) {
		if s == nil || b.p.subs[s] != nil {
			return
		}
		sub, err := b.buildChain(s)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		b.p.subs[s] = sub
		b.p.correlated[s] = b.analyzeCorrelation(s, map[string]bool{})
	}
	collect := func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			switch v := x.(type) {
			case *sqlparser.SubqueryExpr:
				register(v.Select)
			case *sqlparser.InExpr:
				register(v.Subquery)
			case *sqlparser.ExistsExpr:
				register(v.Subquery)
			}
			return true
		})
	}
	for _, p := range stmt.Projection {
		collect(p.Expr)
	}
	collect(stmt.Where)
	for _, g := range stmt.GroupBy {
		collect(g)
	}
	collect(stmt.Having)
	for _, o := range stmt.OrderBy {
		collect(o.Expr)
	}
	var walkTE func(te sqlparser.TableExpr)
	walkTE = func(te sqlparser.TableExpr) {
		if j, ok := te.(*sqlparser.JoinExpr); ok {
			collect(j.On)
			walkTE(j.Left)
			walkTE(j.Right)
		}
	}
	for _, te := range stmt.From {
		walkTE(te)
	}
	return firstErr
}

// --- schema resolution -------------------------------------------------------

// schemaFind resolves a possibly qualified column reference against a schema
// with the executors' ambiguity rules: unqualified lookups matching columns
// of the same name under different aliases are ambiguous.
func schemaFind(meta []ColumnMeta, table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, m := range meta {
		if m.Name != name {
			continue
		}
		if table != "" && m.Table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("column not found")
	}
	return found, nil
}

func resolvesIn(c *sqlparser.ColumnRef, meta []ColumnMeta) bool {
	_, err := schemaFind(meta, c.Table, c.Column)
	return err == nil
}

func allRefsResolve(e sqlparser.Expr, meta []ColumnMeta) bool {
	for _, c := range sqlparser.ColumnsIn(e) {
		if !resolvesIn(c, meta) {
			return false
		}
	}
	return true
}

func refsResolve(refs []*sqlparser.ColumnRef, meta []ColumnMeta) bool {
	for _, c := range refs {
		if !resolvesIn(c, meta) {
			return false
		}
	}
	return true
}

// isEquiJoinBetween reports whether the conjunct is `a = b` with a resolving
// only in the left schema and b only in the right (or vice versa).
func isEquiJoinBetween(c sqlparser.Expr, left, right []ColumnMeta) bool {
	be, ok := c.(*sqlparser.BinaryExpr)
	if !ok || be.Op != "=" {
		return false
	}
	lc, lok := be.Left.(*sqlparser.ColumnRef)
	rc, rok := be.Right.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return false
	}
	lInLeft, lInRight := resolvesIn(lc, left), resolvesIn(lc, right)
	rInLeft, rInRight := resolvesIn(rc, left), resolvesIn(rc, right)
	return (lInLeft && !lInRight && rInRight && !rInLeft) ||
		(rInLeft && !rInRight && lInRight && !lInLeft)
}

// equiJoinSides returns the expressions keyed on the left and right side
// respectively, assuming isEquiJoinBetween returned true.
func equiJoinSides(c sqlparser.Expr, left []ColumnMeta) (sqlparser.Expr, sqlparser.Expr) {
	be := c.(*sqlparser.BinaryExpr)
	lc := be.Left.(*sqlparser.ColumnRef)
	if resolvesIn(lc, left) {
		return be.Left, be.Right
	}
	return be.Right, be.Left
}

// --- predicate helpers -------------------------------------------------------

// splitAnd flattens a predicate into its top-level conjuncts.
func splitAnd(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []sqlparser.Expr{e}
}

// splitOr flattens a predicate into its top-level disjuncts.
func splitOr(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		if v.Op == "OR" {
			return append(splitOr(v.Left), splitOr(v.Right)...)
		}
	case *sqlparser.ParenExpr:
		return splitOr(v.Expr)
	}
	return []sqlparser.Expr{e}
}

func unwrapParens(e sqlparser.Expr) sqlparser.Expr {
	for {
		p, ok := e.(*sqlparser.ParenExpr)
		if !ok {
			return e
		}
		e = p.Expr
	}
}

// liftCommonOrConjuncts lifts predicates occurring in every arm of a
// top-level OR to the top level (the TPC-H Q19 pattern), so join edges
// buried in the disjunction can still drive hash joins. The original OR is
// kept; the lifted predicates are logically implied by it.
func liftCommonOrConjuncts(conjuncts []sqlparser.Expr) []sqlparser.Expr {
	out := append([]sqlparser.Expr(nil), conjuncts...)
	for _, c := range conjuncts {
		arms := splitOr(c)
		if len(arms) < 2 {
			continue
		}
		firstArm := splitAnd(unwrapParens(arms[0]))
		common := map[string]bool{}
		for _, p := range firstArm {
			common[p.SQL()] = true
		}
		for _, arm := range arms[1:] {
			present := map[string]bool{}
			for _, p := range splitAnd(unwrapParens(arm)) {
				present[p.SQL()] = true
			}
			//lint:ordered set intersection by deletion; emission below walks the first arm's syntactic order, never this map
			for k := range common {
				if !present[k] {
					delete(common, k)
				}
			}
		}
		// Emit in the first arm's syntactic order (a map range here would
		// make the plan — and the EXPLAIN plan-JSON — nondeterministic).
		for _, p := range firstArm {
			if key := p.SQL(); common[key] {
				delete(common, key)
				out = append(out, p)
			}
		}
	}
	return out
}

// statementHasAggregates reports whether the projection or HAVING uses
// aggregate functions.
func statementHasAggregates(stmt *sqlparser.SelectStatement) bool {
	for _, p := range stmt.Projection {
		if p.Expr != nil && sqlparser.HasAggregate(p.Expr) {
			return true
		}
	}
	return stmt.Having != nil && sqlparser.HasAggregate(stmt.Having)
}

// --- projection & output schema ----------------------------------------------

// outSchema computes the statement's output schema against the joined input
// schema: star items expand to the matching input columns ahead of the
// computed items, which carry an empty table tag — mirroring the
// interpreters' projection layout.
func outSchema(stmt *sqlparser.SelectStatement, input []ColumnMeta) []ColumnMeta {
	var stars []ColumnMeta
	var computed []ColumnMeta
	for _, p := range stmt.Projection {
		if p.Star {
			for _, m := range input {
				if p.Qualifier == "" || strings.EqualFold(p.Qualifier, m.Table) {
					stars = append(stars, m)
				}
			}
			continue
		}
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = strings.ToLower(p.Expr.SQL())
			}
		}
		computed = append(computed, ColumnMeta{Table: "", Name: strings.ToLower(name)})
	}
	return append(stars, computed...)
}

// --- column pruning ----------------------------------------------------------

// neededColumns computes, per table alias, the set of column names the
// statement references anywhere (including sub-queries); the column engine
// prunes its scans to these. Unqualified references are attributed to every
// base table that has a column of that name.
func (b *builder) neededColumns(stmt *sqlparser.SelectStatement) map[string]map[string]bool {
	needed := map[string]map[string]bool{}
	add := func(alias, col string) {
		alias = strings.ToLower(alias)
		if needed[alias] == nil {
			needed[alias] = map[string]bool{}
		}
		needed[alias][strings.ToLower(col)] = true
	}

	// Alias → base table column set of this statement.
	aliases := map[string]map[string]bool{}
	var gatherAliases func(te sqlparser.TableExpr)
	gatherAliases = func(te sqlparser.TableExpr) {
		switch t := te.(type) {
		case *sqlparser.TableName:
			alias := t.Alias
			if alias == "" {
				alias = t.Name
			}
			var set map[string]bool
			if cols, ok := b.cat.TableColumns(t.Name); ok {
				set = map[string]bool{}
				for _, c := range cols {
					set[strings.ToLower(c)] = true
				}
			}
			aliases[strings.ToLower(alias)] = set
		case *sqlparser.JoinExpr:
			gatherAliases(t.Left)
			gatherAliases(t.Right)
		}
	}
	for _, te := range stmt.From {
		gatherAliases(te)
	}

	var refs []*sqlparser.ColumnRef
	star := false
	var collectExpr func(e sqlparser.Expr)
	var collectStmt func(s *sqlparser.SelectStatement)
	collectExpr = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			switch v := x.(type) {
			case *sqlparser.ColumnRef:
				refs = append(refs, v)
			case *sqlparser.SubqueryExpr:
				collectStmt(v.Select)
			case *sqlparser.InExpr:
				if v.Subquery != nil {
					collectStmt(v.Subquery)
				}
			case *sqlparser.ExistsExpr:
				collectStmt(v.Subquery)
			}
			return true
		})
	}
	var collectJoin func(j *sqlparser.JoinExpr)
	collectJoin = func(j *sqlparser.JoinExpr) {
		collectExpr(j.On)
		for _, side := range []sqlparser.TableExpr{j.Left, j.Right} {
			switch t := side.(type) {
			case *sqlparser.DerivedTable:
				collectStmt(t.Select)
			case *sqlparser.JoinExpr:
				collectJoin(t)
			}
		}
	}
	collectStmt = func(s *sqlparser.SelectStatement) {
		for _, p := range s.Projection {
			if p.Star {
				star = true
				continue
			}
			collectExpr(p.Expr)
		}
		collectExpr(s.Where)
		for _, g := range s.GroupBy {
			collectExpr(g)
		}
		collectExpr(s.Having)
		for _, o := range s.OrderBy {
			collectExpr(o.Expr)
		}
		for _, te := range s.From {
			switch t := te.(type) {
			case *sqlparser.DerivedTable:
				collectStmt(t.Select)
			case *sqlparser.JoinExpr:
				collectJoin(t)
			}
		}
		if s.SetNext != nil {
			collectStmt(s.SetNext)
		}
	}
	collectStmt(stmt)

	if star {
		//lint:ordered add() fills the needed map-of-sets; insertion order cannot be observed
		for alias := range aliases {
			add(alias, "*")
		}
	}
	for _, r := range refs {
		if r.Table != "" {
			add(r.Table, r.Column)
			continue
		}
		//lint:ordered add() fills the needed map-of-sets; insertion order cannot be observed
		for alias, cols := range aliases {
			if cols != nil && cols[strings.ToLower(r.Column)] {
				add(alias, r.Column)
			}
		}
	}
	return needed
}

// --- correlation -------------------------------------------------------------

// analyzeCorrelation walks the statement with the set of column keys
// available from enclosing FROM clauses; it returns true when any reference
// escapes — such sub-queries cannot be cached across outer rows.
func (b *builder) analyzeCorrelation(stmt *sqlparser.SelectStatement, inherited map[string]bool) bool {
	avail := map[string]bool{}
	for k := range inherited {
		avail[k] = true
	}
	var addTable func(te sqlparser.TableExpr)
	addTable = func(te sqlparser.TableExpr) {
		switch t := te.(type) {
		case *sqlparser.TableName:
			alias := t.Alias
			if alias == "" {
				alias = t.Name
			}
			cols, ok := b.cat.TableColumns(t.Name)
			if !ok {
				return
			}
			for _, c := range cols {
				avail[strings.ToLower(c)] = true
				avail[strings.ToLower(alias)+"."+strings.ToLower(c)] = true
			}
		case *sqlparser.DerivedTable:
			for _, p := range t.Select.Projection {
				name := p.Alias
				if name == "" {
					if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
						name = cr.Column
					}
				}
				if name != "" {
					avail[strings.ToLower(name)] = true
					if t.Alias != "" {
						avail[strings.ToLower(t.Alias)+"."+strings.ToLower(name)] = true
					}
				}
				if p.Star {
					// Approximate: expose the derived table's base columns.
					for _, te2 := range t.Select.From {
						addTable(te2)
					}
				}
			}
		case *sqlparser.JoinExpr:
			addTable(t.Left)
			addTable(t.Right)
		}
	}
	for _, te := range stmt.From {
		addTable(te)
	}

	escaped := false
	checkRef := func(r *sqlparser.ColumnRef) {
		key := strings.ToLower(r.Column)
		if r.Table != "" {
			key = strings.ToLower(r.Table) + "." + strings.ToLower(r.Column)
		}
		if !avail[key] {
			escaped = true
		}
	}
	var checkExpr func(e sqlparser.Expr)
	checkExpr = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			switch v := x.(type) {
			case *sqlparser.ColumnRef:
				checkRef(v)
			case *sqlparser.SubqueryExpr:
				if b.analyzeCorrelation(v.Select, avail) {
					escaped = true
				}
			case *sqlparser.InExpr:
				if v.Subquery != nil && b.analyzeCorrelation(v.Subquery, avail) {
					escaped = true
				}
			case *sqlparser.ExistsExpr:
				if b.analyzeCorrelation(v.Subquery, avail) {
					escaped = true
				}
			}
			return true
		})
	}
	for _, p := range stmt.Projection {
		checkExpr(p.Expr)
	}
	checkExpr(stmt.Where)
	for _, g := range stmt.GroupBy {
		checkExpr(g)
	}
	checkExpr(stmt.Having)
	for _, o := range stmt.OrderBy {
		checkExpr(o.Expr)
	}
	for _, te := range stmt.From {
		if d, ok := te.(*sqlparser.DerivedTable); ok {
			if b.analyzeCorrelation(d.Select, map[string]bool{}) {
				escaped = true
			}
		}
	}
	if stmt.SetNext != nil && b.analyzeCorrelation(stmt.SetNext, inherited) {
		escaped = true
	}
	return escaped
}

// effectiveRefs returns a predicate's outer-level column references plus the
// free (correlated) references of every sub-query it carries — the set of
// columns that must be in scope wherever the predicate is evaluated.
func (b *builder) effectiveRefs(e sqlparser.Expr) []*sqlparser.ColumnRef {
	refs := append([]*sqlparser.ColumnRef(nil), sqlparser.ColumnsIn(e)...)
	for _, s := range sqlparser.Subqueries(e) {
		b.collectFreeRefs(s, map[string]bool{}, &refs)
	}
	return refs
}

// collectFreeRefs appends the column references of the statement (and its
// nested sub-queries) that do not resolve against the statement's own FROM
// scope — the references through which a sub-query is correlated with its
// enclosing query. The scope construction mirrors analyzeCorrelation; the
// difference is reporting the escaping references instead of a verdict.
func (b *builder) collectFreeRefs(stmt *sqlparser.SelectStatement, inherited map[string]bool, out *[]*sqlparser.ColumnRef) {
	avail := map[string]bool{}
	for k := range inherited {
		avail[k] = true
	}
	var addTable func(te sqlparser.TableExpr)
	addTable = func(te sqlparser.TableExpr) {
		switch t := te.(type) {
		case *sqlparser.TableName:
			alias := t.Alias
			if alias == "" {
				alias = t.Name
			}
			cols, ok := b.cat.TableColumns(t.Name)
			if !ok {
				return
			}
			for _, c := range cols {
				avail[strings.ToLower(c)] = true
				avail[strings.ToLower(alias)+"."+strings.ToLower(c)] = true
			}
		case *sqlparser.DerivedTable:
			for _, p := range t.Select.Projection {
				name := p.Alias
				if name == "" {
					if cr, ok := p.Expr.(*sqlparser.ColumnRef); ok {
						name = cr.Column
					}
				}
				if name != "" {
					avail[strings.ToLower(name)] = true
					if t.Alias != "" {
						avail[strings.ToLower(t.Alias)+"."+strings.ToLower(name)] = true
					}
				}
				if p.Star {
					for _, te2 := range t.Select.From {
						addTable(te2)
					}
				}
			}
		case *sqlparser.JoinExpr:
			addTable(t.Left)
			addTable(t.Right)
		}
	}
	for _, te := range stmt.From {
		addTable(te)
	}

	var checkExpr func(e sqlparser.Expr)
	checkExpr = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
			switch v := x.(type) {
			case *sqlparser.ColumnRef:
				key := strings.ToLower(v.Column)
				if v.Table != "" {
					key = strings.ToLower(v.Table) + "." + strings.ToLower(v.Column)
				}
				if !avail[key] {
					*out = append(*out, v)
				}
			case *sqlparser.SubqueryExpr:
				b.collectFreeRefs(v.Select, avail, out)
			case *sqlparser.InExpr:
				if v.Subquery != nil {
					b.collectFreeRefs(v.Subquery, avail, out)
				}
			case *sqlparser.ExistsExpr:
				b.collectFreeRefs(v.Subquery, avail, out)
			}
			return true
		})
	}
	for _, p := range stmt.Projection {
		checkExpr(p.Expr)
	}
	checkExpr(stmt.Where)
	for _, g := range stmt.GroupBy {
		checkExpr(g)
	}
	checkExpr(stmt.Having)
	for _, o := range stmt.OrderBy {
		checkExpr(o.Expr)
	}
	for _, te := range stmt.From {
		if d, ok := te.(*sqlparser.DerivedTable); ok {
			b.collectFreeRefs(d.Select, map[string]bool{}, out)
		}
	}
	if stmt.SetNext != nil {
		b.collectFreeRefs(stmt.SetNext, inherited, out)
	}
}

// --- vectorizable verdict ----------------------------------------------------

// verdict computes the plan-level vectorizable/compilable verdict by
// walking the built plan tree. Unlike the AST-only probe it replaced, it
// rules on what the vectorized executor can actually run — derived tables,
// LEFT outer joins and sub-queries included — and records the Apply
// decorrelation recipe for every correlated sub-query it accepts. The
// remaining reasons name exactly the shape the decorrelator provably
// cannot handle.
func (b *builder) verdict() (bool, string) {
	if r := b.checkSelect(b.p.Root); r != "" {
		return false, r
	}
	return true, ""
}

// subSite is one sub-query use site with its consumption shape.
type subSite struct {
	stmt  *sqlparser.SelectStatement
	shape ApplyShape
}

// subSites lists the direct sub-query use sites of an expression.
func subSites(e sqlparser.Expr) []subSite {
	if e == nil {
		return nil
	}
	var sites []subSite
	sqlparser.WalkExprs(e, func(x sqlparser.Expr) bool {
		switch v := x.(type) {
		case *sqlparser.SubqueryExpr:
			sites = append(sites, subSite{stmt: v.Select, shape: ApplyFirst})
		case *sqlparser.InExpr:
			if v.Subquery != nil {
				sites = append(sites, subSite{stmt: v.Subquery, shape: ApplyIn})
			}
		case *sqlparser.ExistsExpr:
			sites = append(sites, subSite{stmt: v.Subquery, shape: ApplyExists})
		}
		return true
	})
	return sites
}

// checkSelect rules on one SELECT core of the plan tree, returning the
// first not-vectorizable reason or "".
func (b *builder) checkSelect(sp *Select) string {
	if sp == nil {
		return ""
	}
	if sp.SetNext != nil {
		return "set operations"
	}
	for _, in := range sp.From {
		if r := b.checkPlanInput(in); r != "" {
			return r
		}
	}
	stmt := sp.Stmt
	// Correlated sub-queries are executable only as decorrelated probes in
	// the WHERE pipeline, where the outer rows being filtered are in scope;
	// in grouped or projected positions there is no outer batch to probe
	// with. Uncorrelated sub-queries run standalone and may appear anywhere.
	check := func(e sqlparser.Expr, inWhere bool) string {
		for _, site := range subSites(e) {
			subPlan := b.p.subs[site.stmt]
			if subPlan == nil {
				return "sub-queries"
			}
			if b.p.correlated[site.stmt] {
				if !inWhere {
					return "correlated sub-queries outside WHERE"
				}
				if r := b.computeApply(sp, site); r != "" {
					return r
				}
			}
			if r := b.checkSelect(subPlan); r != "" {
				return r
			}
		}
		return ""
	}
	for _, p := range stmt.Projection {
		if r := check(p.Expr, false); r != "" {
			return r
		}
	}
	if r := check(stmt.Where, true); r != "" {
		return r
	}
	for _, g := range stmt.GroupBy {
		if r := check(g, false); r != "" {
			return r
		}
	}
	if r := check(stmt.Having, false); r != "" {
		return r
	}
	for _, o := range stmt.OrderBy {
		if r := check(o.Expr, false); r != "" {
			return r
		}
	}
	return ""
}

func (b *builder) checkPlanInput(in *Input) string {
	switch {
	case in.Derived != nil:
		return b.checkSelect(in.Derived)
	case in.Join != nil:
		return b.checkPlanJoin(in.Join)
	}
	return ""
}

func (b *builder) checkPlanJoin(j *Join) string {
	if j.Kind != "CROSS" && j.Kind != "INNER" && j.Kind != "LEFT" {
		return j.Kind + " outer joins"
	}
	// A sub-query inside an ON condition has no probe site in the
	// vectorized pipeline: ON conditions run inside the join operator.
	for _, c := range j.AllConds {
		if len(sqlparser.Subqueries(c)) > 0 {
			return "sub-queries in JOIN conditions"
		}
	}
	if r := b.checkPlanInput(j.Left); r != "" {
		return r
	}
	return b.checkPlanInput(j.Right)
}

// computeApply proves one correlated WHERE sub-query decorrelatable against
// its host SELECT and records the Apply recipe, or returns the reason it is
// not. host is the SELECT whose WHERE directly contains the use site.
func (b *builder) computeApply(host *Select, site subSite) string {
	subPlan := b.p.subs[site.stmt]
	stmt := subPlan.Stmt
	if stmt.SetNext != nil {
		return "set operations"
	}
	if len(stmt.OrderBy) > 0 || stmt.Limit != nil || stmt.Offset != nil {
		return "correlated sub-queries with ORDER BY or LIMIT"
	}
	if len(subPlan.From) == 0 {
		return "correlated FROM-less sub-queries"
	}
	shape := site.shape
	if subPlan.Grouped {
		if shape != ApplyFirst {
			return "correlated aggregated sub-queries outside a scalar position"
		}
		if len(stmt.GroupBy) > 0 || stmt.Having != nil {
			return "correlated sub-queries with GROUP BY or HAVING"
		}
		shape = ApplyAgg
	}
	// Projection constraints. Scalar and IN sites consume a single value per
	// inner row that must be computable from the inner schema alone. EXISTS
	// never consumes the projection, so it is restricted to items whose
	// evaluation provably cannot fail (the interpreters do evaluate them).
	switch shape {
	case ApplyFirst, ApplyAgg, ApplyIn:
		if len(stmt.Projection) != 1 || stmt.Projection[0].Star {
			return "correlated sub-queries projecting more than one value"
		}
		if !allRefsResolve(stmt.Projection[0].Expr, subPlan.Schema) {
			return "correlated sub-queries projecting enclosing-scope columns"
		}
	case ApplyExists:
		for _, p := range stmt.Projection {
			if p.Star {
				continue
			}
			switch v := p.Expr.(type) {
			case *sqlparser.ColumnRef:
				if !resolvesIn(v, subPlan.Schema) && !resolvesIn(v, host.Schema) {
					return "correlated EXISTS projecting unresolvable columns"
				}
			case *sqlparser.NumberLit, *sqlparser.StringLit, *sqlparser.NullLit, *sqlparser.BoolLit, *sqlparser.DateLit:
			default:
				return "correlated EXISTS with computed projections"
			}
		}
	}
	// Partition the sub-query's residual conjuncts: inner-only filters,
	// equi-correlation key pairs, and per-pair predicates spanning both
	// sides. Anything else defeats decorrelation.
	ap := &Apply{Shape: shape}
	for _, c := range subPlan.VexecResidual {
		if refsResolve(b.effectiveRefs(c), subPlan.Schema) {
			ap.InnerResidual = append(ap.InnerResidual, c)
			continue
		}
		if inner, outer, ok := correlationKeySides(c, subPlan.Schema, host.Schema); ok {
			ap.InnerKeys = append(ap.InnerKeys, inner)
			ap.OuterKeys = append(ap.OuterKeys, outer)
			continue
		}
		if !pairConjunctOK(c, subPlan.Schema, host.Schema) {
			return "correlated sub-queries whose correlation is not an equi-join"
		}
		ap.PairConjuncts = append(ap.PairConjuncts, c)
	}
	if len(ap.InnerKeys) == 0 {
		return "correlated sub-queries without an equi-join correlation predicate"
	}
	if shape == ApplyAgg && len(ap.PairConjuncts) > 0 {
		return "correlated aggregated sub-queries with non-equi correlation predicates"
	}
	b.p.apply[site.stmt] = ap
	return ""
}

// correlationKeySides recognizes `inner = outer` equi-correlation: one side
// resolving in the sub-query's own schema, the other only in the enclosing
// query's. Returns the (inner, outer) key expressions.
func correlationKeySides(c sqlparser.Expr, inner, outer []ColumnMeta) (sqlparser.Expr, sqlparser.Expr, bool) {
	be, ok := c.(*sqlparser.BinaryExpr)
	if !ok || be.Op != "=" {
		return nil, nil, false
	}
	lc, lok := be.Left.(*sqlparser.ColumnRef)
	rc, rok := be.Right.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return nil, nil, false
	}
	lIn, rIn := resolvesIn(lc, inner), resolvesIn(rc, inner)
	lOut, rOut := resolvesIn(lc, outer), resolvesIn(rc, outer)
	if lIn && !rIn && rOut {
		return be.Left, be.Right, true
	}
	if rIn && !lIn && lOut {
		return be.Right, be.Left, true
	}
	return nil, nil, false
}

// pairConjunctOK reports whether every column the predicate references
// resolves on exactly one side of the decorrelated pair — the probe
// evaluates it over a combined (outer row, inner row) batch, where a column
// visible on both sides would be ambiguous and one visible on neither
// escapes the pair's scope entirely.
func pairConjunctOK(c sqlparser.Expr, inner, outer []ColumnMeta) bool {
	if len(sqlparser.Subqueries(c)) > 0 {
		return false
	}
	for _, r := range sqlparser.ColumnsIn(c) {
		if resolvesIn(r, inner) == resolvesIn(r, outer) {
			return false
		}
	}
	return true
}
