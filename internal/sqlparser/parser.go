package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SQL SELECT statement (a trailing semicolon is
// allowed) and returns its AST.
func Parse(sql string) (*SelectStatement, error) {
	toks, err := Tokenize(sql)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokSemicolon {
		p.next()
	}
	if p.cur().Kind != TokEOF {
		return nil, p.errorf("unexpected %s after end of statement", p.cur())
	}
	return stmt, nil
}

// ParseExpr parses a single scalar or boolean expression, used by the engine
// to evaluate snippets and by tests.
func ParseExpr(src string) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, p.errorf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("line %d col %d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *Parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *Parser) expect(kind TokenKind) (Token, error) {
	if p.cur().Kind != kind {
		return Token{}, p.errorf("expected %s, found %s", kind, p.cur())
	}
	return p.next(), nil
}

// parseSelect parses SELECT ... [set-op SELECT ...].
func (p *Parser) parseSelect() (*SelectStatement, error) {
	stmt, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isKeyword("UNION"):
			p.next()
			op = "UNION"
			if p.acceptKeyword("ALL") {
				op = "UNION ALL"
			}
		case p.isKeyword("EXCEPT"):
			p.next()
			op = "EXCEPT"
		case p.isKeyword("INTERSECT"):
			p.next()
			op = "INTERSECT"
		default:
			return stmt, nil
		}
		rhs, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		// Chain on the last statement in the set-op list.
		tail := stmt
		for tail.SetNext != nil {
			tail = tail.SetNext
		}
		tail.SetOp = op
		tail.SetNext = rhs
	}
}

func (p *Parser) parseSelectCore() (*SelectStatement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStatement{}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	// TOP n (SQL Server dialect) is accepted and translated into LIMIT.
	if p.acceptKeyword("TOP") {
		numTok, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(numTok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid TOP count %q", numTok.Text)
		}
		stmt.Limit = &n
	}

	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Projection = append(stmt.Projection, item)
		if p.cur().Kind == TokComma {
			p.next()
			continue
		}
		break
	}

	if p.acceptKeyword("FROM") {
		from, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		stmt.From = from
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.isKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if p.cur().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.isKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			// NULLS FIRST/LAST is accepted and ignored.
			if p.acceptKeyword("NULLS") {
				if !p.acceptKeyword("FIRST") && !p.acceptKeyword("LAST") {
					return nil, p.errorf("expected FIRST or LAST after NULLS")
				}
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.cur().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		numTok, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(numTok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid LIMIT %q", numTok.Text)
		}
		stmt.Limit = &n
	}
	if p.acceptKeyword("OFFSET") {
		numTok, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(numTok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid OFFSET %q", numTok.Text)
		}
		stmt.Offset = &n
	}
	return stmt, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// `*`
	if p.cur().Kind == TokOperator && p.cur().Text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	// `t.*`
	if p.cur().Kind == TokIdent && p.peek().Kind == TokDot {
		// Look two tokens ahead for '*'.
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == TokOperator && p.toks[p.pos+2].Text == "*" {
			qual := p.next().Text
			p.next() // dot
			p.next() // star
			return SelectItem{Star: true, Qualifier: qual}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.parseAliasName()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.cur().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseAliasName() (string, error) {
	t := p.cur()
	if t.Kind == TokIdent {
		p.next()
		return t.Text, nil
	}
	// Allow non-reserved-looking keywords as aliases is intentionally not
	// supported; aliases must be plain identifiers.
	return "", p.errorf("expected alias name, found %s", t)
}

func (p *Parser) parseFromList() ([]TableExpr, error) {
	var list []TableExpr
	for {
		t, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, t)
		if p.cur().Kind == TokComma {
			p.next()
			continue
		}
		return list, nil
	}
}

func (p *Parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		kind := ""
		switch {
		case p.isKeyword("JOIN"):
			kind = "INNER"
			p.next()
		case p.isKeyword("INNER"):
			p.next()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = "INNER"
		case p.isKeyword("LEFT"), p.isKeyword("RIGHT"), p.isKeyword("FULL"):
			kind = p.next().Text
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		case p.isKeyword("CROSS"):
			p.next()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = "CROSS"
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		join := &JoinExpr{Kind: kind, Left: left, Right: right}
		if kind != "CROSS" {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = on
		}
		left = join
	}
}

func (p *Parser) parseTablePrimary() (TableExpr, error) {
	if p.cur().Kind == TokLParen {
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		d := &DerivedTable{Select: sub}
		if p.acceptKeyword("AS") {
			alias, err := p.parseAliasName()
			if err != nil {
				return nil, err
			}
			d.Alias = alias
		} else if p.cur().Kind == TokIdent {
			d.Alias = p.next().Text
		}
		return d, nil
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	t := &TableName{Name: nameTok.Text}
	if p.acceptKeyword("AS") {
		alias, err := p.parseAliasName()
		if err != nil {
			return nil, err
		}
		t.Alias = alias
	} else if p.cur().Kind == TokIdent {
		t.Alias = p.next().Text
	}
	return t, nil
}

// Expression parsing with classic precedence climbing:
// OR < AND < NOT < comparison/predicates < additive < multiplicative < unary.

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		// NOT EXISTS (...) is kept as an ExistsExpr with Not set, the
		// canonical form used by derive and the engine.
		if p.peek().Kind == TokKeyword && p.peek().Text == "EXISTS" {
			p.next()
			p.next()
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &ExistsExpr{Not: true, Subquery: sub}, nil
		}
		p.next()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	if p.isKeyword("EXISTS") {
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &ExistsExpr{Subquery: sub}, nil
	}
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates: IS [NOT] NULL, [NOT] BETWEEN, [NOT] IN, [NOT] LIKE.
	for {
		switch {
		case p.isKeyword("IS"):
			p.next()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Not: not, Expr: left}
		case p.isKeyword("NOT") && (p.peek().Kind == TokKeyword && (p.peek().Text == "BETWEEN" || p.peek().Text == "IN" || p.peek().Text == "LIKE" || p.peek().Text == "EXISTS")):
			p.next()
			switch {
			case p.isKeyword("BETWEEN"):
				var err error
				left, err = p.parseBetween(left, true)
				if err != nil {
					return nil, err
				}
			case p.isKeyword("IN"):
				var err error
				left, err = p.parseIn(left, true)
				if err != nil {
					return nil, err
				}
			case p.isKeyword("LIKE"):
				p.next()
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BinaryExpr{Op: "NOT LIKE", Left: left, Right: pat}
			case p.isKeyword("EXISTS"):
				p.next()
				if _, err := p.expect(TokLParen); err != nil {
					return nil, err
				}
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
				left = &ExistsExpr{Not: true, Subquery: sub}
			}
		case p.isKeyword("BETWEEN"):
			var err error
			left, err = p.parseBetween(left, false)
			if err != nil {
				return nil, err
			}
		case p.isKeyword("IN"):
			var err error
			left, err = p.parseIn(left, false)
			if err != nil {
				return nil, err
			}
		case p.isKeyword("LIKE"):
			p.next()
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "LIKE", Left: left, Right: pat}
		case p.cur().Kind == TokOperator && isComparisonOp(p.cur().Text):
			op := p.next().Text
			if op == "!=" {
				op = "<>"
			}
			// ANY/SOME/ALL quantified comparisons degrade to the sub-query
			// itself: the engine treats them as scalar comparisons which is
			// sufficient for the workloads covered.
			if p.isKeyword("ANY") || p.isKeyword("SOME") || p.isKeyword("ALL") {
				p.next()
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func isComparisonOp(op string) bool {
	switch op {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *Parser) parseBetween(left Expr, not bool) (Expr, error) {
	if err := p.expectKeyword("BETWEEN"); err != nil {
		return nil, err
	}
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{Not: not, Expr: left, Lo: lo, Hi: hi}, nil
}

func (p *Parser) parseIn(left Expr, not bool) (Expr, error) {
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	in := &InExpr{Not: not, Expr: left}
	if p.isKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		in.Subquery = sub
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if p.cur().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOperator && (p.cur().Text == "+" || p.cur().Text == "-" || p.cur().Text == "||") {
		op := p.next().Text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOperator && (p.cur().Text == "*" || p.cur().Text == "/" || p.cur().Text == "%") {
		op := p.next().Text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.cur().Kind == TokOperator && (p.cur().Text == "-" || p.cur().Text == "+") {
		op := p.next().Text
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, Expr: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumberLit{Value: t.Text}, nil
	case TokString:
		p.next()
		return &StringLit{Value: t.Text}, nil
	case TokParam:
		p.next()
		return &ParamRef{Name: t.Text}, nil
	case TokLParen:
		p.next()
		if p.isKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Select: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &ParenExpr{Expr: e}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &NullLit{}, nil
		case "TRUE":
			p.next()
			return &BoolLit{Value: true}, nil
		case "FALSE":
			p.next()
			return &BoolLit{Value: false}, nil
		case "DATE":
			p.next()
			s, err := p.expect(TokString)
			if err != nil {
				return nil, err
			}
			return &DateLit{Value: s.Text}, nil
		case "INTERVAL":
			p.next()
			v, err := p.expect(TokString)
			if err != nil {
				return nil, err
			}
			unitTok := p.cur()
			if unitTok.Kind != TokKeyword || (unitTok.Text != "YEAR" && unitTok.Text != "MONTH" && unitTok.Text != "DAY") {
				return nil, p.errorf("expected YEAR, MONTH or DAY after INTERVAL, found %s", unitTok)
			}
			p.next()
			return &IntervalLit{Value: v.Text, Unit: unitTok.Text}, nil
		case "CASE":
			return p.parseCase()
		case "EXTRACT":
			return p.parseExtract()
		case "SUBSTRING":
			return p.parseSubstring()
		case "CAST":
			return p.parseCast()
		default:
			return nil, p.errorf("unexpected keyword %s in expression", t.Text)
		}
	case TokIdent:
		// Function call or column reference.
		if p.peek().Kind == TokLParen {
			return p.parseFuncCall()
		}
		p.next()
		if p.cur().Kind == TokDot {
			p.next()
			colTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: colTok.Text}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

func (p *Parser) parseFuncCall() (Expr, error) {
	nameTok := p.next()
	name := strings.ToLower(nameTok.Text)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: name}
	if p.cur().Kind == TokOperator && p.cur().Text == "*" {
		p.next()
		f.Star = true
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptKeyword("DISTINCT") {
		f.Distinct = true
	}
	if p.cur().Kind != TokRParen {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, a)
			if p.cur().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !p.isKeyword("WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.isKeyword("WHEN") {
		p.next()
		when, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{When: when, Then: then})
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE expression requires at least one WHEN arm")
	}
	return c, nil
}

func (p *Parser) parseExtract() (Expr, error) {
	if err := p.expectKeyword("EXTRACT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	unitTok := p.cur()
	if unitTok.Kind != TokKeyword || (unitTok.Text != "YEAR" && unitTok.Text != "MONTH" && unitTok.Text != "DAY") {
		return nil, p.errorf("expected YEAR, MONTH or DAY in EXTRACT, found %s", unitTok)
	}
	p.next()
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return &ExtractExpr{Unit: unitTok.Text, From: from}, nil
}

func (p *Parser) parseSubstring() (Expr, error) {
	if err := p.expectKeyword("SUBSTRING"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s := &SubstringExpr{Expr: e}
	if p.acceptKeyword("FROM") {
		start, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Start = start
		if p.acceptKeyword("FOR") {
			length, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Length = length
		}
	} else if p.cur().Kind == TokComma {
		// substring(x, start [, length]) function-call style.
		p.next()
		start, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Start = start
		if p.cur().Kind == TokComma {
			p.next()
			length, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Length = length
		}
	} else {
		return nil, p.errorf("expected FROM or ',' in SUBSTRING")
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseCast() (Expr, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	// The type name may be an identifier (integer, varchar) or the DATE
	// keyword, optionally with a parenthesised precision which is ignored.
	var typ string
	switch p.cur().Kind {
	case TokIdent:
		typ = strings.ToLower(p.next().Text)
	case TokKeyword:
		typ = strings.ToLower(p.next().Text)
	default:
		return nil, p.errorf("expected type name in CAST, found %s", p.cur())
	}
	if p.cur().Kind == TokLParen {
		p.next()
		if _, err := p.expect(TokNumber); err != nil {
			return nil, err
		}
		if p.cur().Kind == TokComma {
			p.next()
			if _, err := p.expect(TokNumber); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return &CastExpr{Expr: e, Type: typ}, nil
}
