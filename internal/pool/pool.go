// Package pool implements the sqalpel query pool: the working set of query
// variants derived from a project's grammar. The pool is seeded with the
// baseline query (and optionally a batch of random templates) and then grown
// with the three morphing strategies of the paper — alter, expand and prune
// — under the fine-grained steering controls the project owner has
// (strategy selection, lexical include/exclude lists, a hard size cap).
//
// Growth is deterministic: every random choice draws from the pool's seeded
// RNG, entries are deduplicated by their order-insensitive sentence key and
// numbered in insertion order. A Pool is therefore deliberately not safe
// for concurrent mutation — the concurrent search (internal/discriminative
// with internal/sched) parallelises measurement only and keeps all pool
// growth on one goroutine, which is what makes search results reproducible
// at any worker count.
package pool

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sqalpel/internal/grammar"
)

// Strategy identifies how a pool entry came to be.
type Strategy string

// The pool growth strategies. Baseline and Random describe seeding; Alter,
// Expand and Prune are the paper's morphing strategies.
const (
	StrategyBaseline Strategy = "baseline"
	StrategyRandom   Strategy = "random"
	StrategyAlter    Strategy = "alter"
	StrategyExpand   Strategy = "expand"
	StrategyPrune    Strategy = "prune"
)

// MorphStrategies are the strategies usable by Grow.
var MorphStrategies = []Strategy{StrategyAlter, StrategyExpand, StrategyPrune}

// Entry is one query in the pool.
type Entry struct {
	// ID is the pool-local identifier, assigned in insertion order from 1.
	ID int
	// SQL is the concrete query text.
	SQL string
	// Strategy records how the entry was created.
	Strategy Strategy
	// ParentID is the entry this one was morphed from; zero for seeds. It is
	// the provenance the experiment-history visualisation draws as dashed
	// morph edges.
	ParentID int
	// Components is the number of lexical components in the query (the node
	// size in the history plot).
	Components int

	sentence *grammar.Sentence
}

// Sentence exposes the underlying grammar sentence.
func (e *Entry) Sentence() *grammar.Sentence { return e.sentence }

// Steering is the fine-grained control the project owner has over pool
// growth.
type Steering struct {
	// IncludeLiterals lists literal texts that must appear in every newly
	// generated query (substring match on the literal text).
	IncludeLiterals []string
	// ExcludeLiterals lists literal texts that must not appear.
	ExcludeLiterals []string
	// Strategies restricts Grow to a subset of the morphing strategies;
	// empty means all three.
	Strategies []Strategy
}

func (s Steering) allowedStrategies() []Strategy {
	if len(s.Strategies) == 0 {
		return MorphStrategies
	}
	return s.Strategies
}

// allows reports whether the sentence respects the include/exclude lists.
func (s Steering) allows(sent *grammar.Sentence) bool {
	for _, excl := range s.ExcludeLiterals {
		if excl != "" && strings.Contains(sent.SQL, excl) {
			return false
		}
	}
	for _, incl := range s.IncludeLiterals {
		if incl != "" && !strings.Contains(sent.SQL, incl) {
			return false
		}
	}
	return true
}

// Options configure a pool.
type Options struct {
	// Seed drives the deterministic random choices.
	Seed int64
	// MaxSize caps the pool, mirroring the platform's hard limit on derived
	// queries; zero means 10000.
	MaxSize int
	// Dialect selects dialect-tagged literals.
	Dialect string
	// Steering is the initial steering configuration; it can be replaced
	// later with SetSteering.
	Steering Steering
	// Enumerate overrides the grammar enumeration options.
	Enumerate grammar.EnumerateOptions
}

// DefaultMaxSize is the default pool cap.
const DefaultMaxSize = 10000

// Pool is the query pool of one experiment.
type Pool struct {
	gen     *grammar.Generator
	rng     *rand.Rand
	entries []*Entry
	byKey   map[string]*Entry
	maxSize int
	steer   Steering
}

// New creates a pool over the grammar and seeds it with the baseline query
// (the deterministic realisation of the largest template).
func New(g *grammar.Grammar, opts Options) (*Pool, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MaxSize == 0 {
		opts.MaxSize = DefaultMaxSize
	}
	gen, err := grammar.NewGenerator(g, grammar.GeneratorOptions{
		Seed:      opts.Seed,
		Dialect:   opts.Dialect,
		Enumerate: opts.Enumerate,
	})
	if err != nil {
		return nil, err
	}
	p := &Pool{
		gen:     gen,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		byKey:   map[string]*Entry{},
		maxSize: opts.MaxSize,
		steer:   opts.Steering,
	}
	base, err := gen.Baseline()
	if err != nil {
		return nil, fmt.Errorf("seeding pool with baseline: %w", err)
	}
	p.add(base, StrategyBaseline, 0)
	return p, nil
}

// SetSteering replaces the steering configuration.
func (p *Pool) SetSteering(s Steering) { p.steer = s }

// Steering returns the current steering configuration.
func (p *Pool) Steering() Steering { return p.steer }

// Size returns the number of entries in the pool.
func (p *Pool) Size() int { return len(p.entries) }

// Entries returns the pool entries in insertion order.
func (p *Pool) Entries() []*Entry {
	return append([]*Entry(nil), p.entries...)
}

// Entry returns the entry with the given id, or nil.
func (p *Pool) Entry(id int) *Entry {
	if id < 1 || id > len(p.entries) {
		return nil
	}
	return p.entries[id-1]
}

// Baseline returns the seed entry.
func (p *Pool) Baseline() *Entry { return p.entries[0] }

// Generator exposes the underlying sentence generator.
func (p *Pool) Generator() *grammar.Generator { return p.gen }

// add inserts a sentence unless it is already known or the cap is reached;
// it returns the entry (existing or new) and whether it was newly added.
func (p *Pool) add(sent *grammar.Sentence, strategy Strategy, parent int) (*Entry, bool) {
	key := sent.Key()
	if existing, ok := p.byKey[key]; ok {
		return existing, false
	}
	if len(p.entries) >= p.maxSize {
		return nil, false
	}
	e := &Entry{
		ID:         len(p.entries) + 1,
		SQL:        sent.SQL,
		Strategy:   strategy,
		ParentID:   parent,
		Components: sent.Components(),
		sentence:   sent,
	}
	p.entries = append(p.entries, e)
	p.byKey[key] = e
	return e, true
}

// SeedRandom adds up to n random sentences from randomly chosen templates,
// honouring the steering lists. It returns the entries actually added.
func (p *Pool) SeedRandom(n int) ([]*Entry, error) {
	var added []*Entry
	attempts := 0
	for len(added) < n && attempts < n*20+20 {
		attempts++
		sent, err := p.gen.Generate()
		if err != nil {
			return added, err
		}
		if !p.steer.allows(sent) {
			continue
		}
		if e, ok := p.add(sent, StrategyRandom, 0); ok {
			added = append(added, e)
		}
	}
	return added, nil
}

// pickSource selects a random existing entry to morph from.
func (p *Pool) pickSource() *Entry {
	return p.entries[p.rng.Intn(len(p.entries))]
}

// Alter picks a query from the pool and replaces one literal with another
// literal of the same lexical class; the result is added unless already
// known.
func (p *Pool) Alter() (*Entry, error) {
	for attempt := 0; attempt < 20; attempt++ {
		if e, err := p.AlterFrom(p.pickSource()); err == nil {
			return e, nil
		}
	}
	return nil, fmt.Errorf("alter: no new variant found")
}

// AlterFrom morphs a specific pool entry by swapping one literal; the guided
// discriminative search uses it to focus on interesting queries.
func (p *Pool) AlterFrom(src *Entry) (*Entry, error) {
	for attempt := 0; attempt < 20; attempt++ {
		sent := src.sentence
		// Candidate classes: used in the sentence and with spare literals.
		var classes []string
		for class, used := range sent.Literals {
			if len(p.allowedLiterals(class)) > len(used) {
				classes = append(classes, class)
			}
		}
		if len(classes) == 0 {
			continue
		}
		sort.Strings(classes)
		class := classes[p.rng.Intn(len(classes))]
		used := sent.Literals[class]
		usedLines := map[int]bool{}
		for _, l := range used {
			usedLines[l.Line] = true
		}
		var spare []grammar.Literal
		for _, l := range p.allowedLiterals(class) {
			if !usedLines[l.Line] {
				spare = append(spare, l)
			}
		}
		if len(spare) == 0 {
			continue
		}
		replacement := spare[p.rng.Intn(len(spare))]
		victim := p.rng.Intn(len(used))

		chosen := map[string][]grammar.Literal{}
		for c, lits := range sent.Literals {
			chosen[c] = append([]grammar.Literal(nil), lits...)
		}
		chosen[class][victim] = replacement
		morphed, err := p.gen.Materialize(sent.Template, chosen)
		if err != nil {
			return nil, err
		}
		if !p.steer.allows(morphed) {
			continue
		}
		if e, ok := p.add(morphed, StrategyAlter, src.ID); ok {
			return e, nil
		}
	}
	return nil, fmt.Errorf("alter: no new variant found")
}

// Expand takes a query from the pool and moves it to a slightly larger
// template (one more lexical component), keeping the existing literals and
// adding a random one for the new slot.
func (p *Pool) Expand() (*Entry, error) {
	return p.resize(+1, StrategyExpand)
}

// Prune is the reverse of Expand: it moves a query to a template with one
// lexical component fewer, the preferred way to identify the contribution of
// sub-expressions in complex queries.
func (p *Pool) Prune() (*Entry, error) {
	return p.resize(-1, StrategyPrune)
}

// ExpandFrom expands a specific entry by one lexical component.
func (p *Pool) ExpandFrom(src *Entry) (*Entry, error) {
	return p.resizeFrom(src, +1, StrategyExpand)
}

// PruneFrom prunes a specific entry by one lexical component.
func (p *Pool) PruneFrom(src *Entry) (*Entry, error) {
	return p.resizeFrom(src, -1, StrategyPrune)
}

// resize implements Expand (+1) and Prune (-1) from random sources.
func (p *Pool) resize(delta int, strategy Strategy) (*Entry, error) {
	for attempt := 0; attempt < 20; attempt++ {
		if e, err := p.resizeFrom(p.pickSource(), delta, strategy); err == nil {
			return e, nil
		}
	}
	return nil, fmt.Errorf("%s: no new variant found", strategy)
}

// resizeFrom implements ExpandFrom (+1) and PruneFrom (-1).
func (p *Pool) resizeFrom(src *Entry, delta int, strategy Strategy) (*Entry, error) {
	templates := p.gen.Templates()
	for attempt := 0; attempt < 20; attempt++ {
		sent := src.sentence
		targetSize := sent.Template.Size() + delta
		// Collect templates of the target size whose class counts differ
		// from the source in the right direction.
		var candidates []*grammar.Template
		for _, t := range templates {
			if t.Size() != targetSize {
				continue
			}
			if delta > 0 && !covers(t.Counts, sent.Template.Counts) {
				continue
			}
			if delta < 0 && !covers(sent.Template.Counts, t.Counts) {
				continue
			}
			candidates = append(candidates, t)
		}
		if len(candidates) == 0 {
			continue
		}
		target := candidates[p.rng.Intn(len(candidates))]

		chosen := map[string][]grammar.Literal{}
		ok := true
		for class, occ := range target.Counts {
			existing := sent.Literals[class]
			if len(existing) > occ {
				existing = existing[:occ]
			}
			chosen[class] = append([]grammar.Literal(nil), existing...)
			for len(chosen[class]) < occ {
				lit, found := p.randomUnusedLiteral(class, chosen[class])
				if !found {
					ok = false
					break
				}
				chosen[class] = append(chosen[class], lit)
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		morphed, err := p.gen.Materialize(target, chosen)
		if err != nil {
			return nil, err
		}
		if !p.steer.allows(morphed) {
			continue
		}
		if e, ok := p.add(morphed, strategy, src.ID); ok {
			return e, nil
		}
	}
	return nil, fmt.Errorf("%s: no new variant found", strategy)
}

// covers reports whether counts a dominate counts b (a[c] >= b[c] for all c).
func covers(a, b map[string]int) bool {
	for c, n := range b {
		if a[c] < n {
			return false
		}
	}
	return true
}

// allowedLiterals filters the class literals through the steering lists.
func (p *Pool) allowedLiterals(class string) []grammar.Literal {
	all := p.gen.ClassLiterals(class)
	if len(p.steer.ExcludeLiterals) == 0 {
		return all
	}
	var out []grammar.Literal
	for _, l := range all {
		excluded := false
		for _, excl := range p.steer.ExcludeLiterals {
			if excl != "" && strings.Contains(l.Text, excl) {
				excluded = true
				break
			}
		}
		if !excluded {
			out = append(out, l)
		}
	}
	return out
}

func (p *Pool) randomUnusedLiteral(class string, used []grammar.Literal) (grammar.Literal, bool) {
	usedLines := map[int]bool{}
	for _, l := range used {
		usedLines[l.Line] = true
	}
	var spare []grammar.Literal
	for _, l := range p.allowedLiterals(class) {
		if !usedLines[l.Line] {
			spare = append(spare, l)
		}
	}
	if len(spare) == 0 {
		return grammar.Literal{}, false
	}
	return spare[p.rng.Intn(len(spare))], true
}

// Grow runs the guided random walk: it repeatedly applies one of the allowed
// morphing strategies until n new entries were added (or progress stalls)
// and returns the new entries.
func (p *Pool) Grow(n int) []*Entry {
	var added []*Entry
	stalls := 0
	strategies := p.steer.allowedStrategies()
	for len(added) < n && stalls < 3*n+10 && len(p.entries) < p.maxSize {
		strategy := strategies[p.rng.Intn(len(strategies))]
		var e *Entry
		var err error
		switch strategy {
		case StrategyAlter:
			e, err = p.Alter()
		case StrategyExpand:
			e, err = p.Expand()
		case StrategyPrune:
			e, err = p.Prune()
		default:
			err = fmt.Errorf("unknown strategy %q", strategy)
		}
		if err != nil || e == nil {
			stalls++
			continue
		}
		added = append(added, e)
	}
	return added
}
