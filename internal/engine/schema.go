package engine

import (
	"fmt"
	"sort"
	"strings"
)

// ColumnType is the declared type of a table column.
type ColumnType uint8

// Column types.
const (
	TypeInt ColumnType = iota
	TypeFloat
	TypeString
	TypeDate
)

func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "integer"
	case TypeFloat:
		return "double"
	case TypeString:
		return "varchar"
	case TypeDate:
		return "date"
	default:
		return "unknown"
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColumnType
}

// Table is a base table with column-major storage. Every mutation bumps the
// table's data version, which invalidates derived caches (typed-column
// imports, logical plans) keyed on it.
type Table struct {
	Name    string
	Columns []Column

	cols    [][]Value
	rows    int
	byName  map[string]int
	version uint64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, columns ...Column) *Table {
	t := &Table{Name: name, Columns: columns, byName: map[string]int{}}
	t.cols = make([][]Value, len(columns))
	for i, c := range columns {
		t.byName[strings.ToLower(c.Name)] = i
	}
	return t
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.Columns) }

// ColumnIndex returns the index of the named column (case insensitive) or -1.
func (t *Table) ColumnIndex(name string) int {
	if idx, ok := t.byName[strings.ToLower(name)]; ok {
		return idx
	}
	return -1
}

// AppendRow adds one row; the number of values must match the column count
// and each value must be compatible with the declared column type (NULLs are
// always accepted).
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("table %s: row has %d values, want %d", t.Name, len(vals), len(t.Columns))
	}
	for i, v := range vals {
		if v.IsNull() {
			continue
		}
		if !typeCompatible(t.Columns[i].Type, v.Kind) {
			return fmt.Errorf("table %s: column %s expects %s, got %s",
				t.Name, t.Columns[i].Name, t.Columns[i].Type, v.Kind)
		}
	}
	for i, v := range vals {
		t.cols[i] = append(t.cols[i], v)
	}
	t.rows++
	t.version++
	return nil
}

// SetValue overwrites the value at (row, col) in place, type-checked against
// the declared column type, and bumps the data version so caches built over
// the old contents are invalidated.
func (t *Table) SetValue(row, col int, v Value) error {
	if row < 0 || row >= t.rows || col < 0 || col >= len(t.Columns) {
		return fmt.Errorf("table %s: position (%d,%d) out of range", t.Name, row, col)
	}
	if !v.IsNull() && !typeCompatible(t.Columns[col].Type, v.Kind) {
		return fmt.Errorf("table %s: column %s expects %s, got %s",
			t.Name, t.Columns[col].Name, t.Columns[col].Type, v.Kind)
	}
	t.cols[col][row] = v
	t.version++
	return nil
}

// Version returns the table's data version: it increases on every mutation
// (append or in-place update), never decreases, and is the invalidation hook
// shared by the plan cache and the vektor typed-column cache.
func (t *Table) Version() uint64 { return t.version }

// MustAppendRow is AppendRow that panics on schema mismatch; used by data
// generators whose schemas are statically correct.
func (t *Table) MustAppendRow(vals ...Value) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

func typeCompatible(ct ColumnType, k Kind) bool {
	switch ct {
	case TypeInt:
		return k == KindInt || k == KindBool
	case TypeFloat:
		return k == KindFloat || k == KindInt
	case TypeString:
		return k == KindString
	case TypeDate:
		return k == KindDate
	default:
		return false
	}
}

// Value returns the value at (row, col).
func (t *Table) Value(row, col int) Value { return t.cols[col][row] }

// ColumnValues returns the backing slice of a column; callers must not
// modify it.
func (t *Table) ColumnValues(col int) []Value { return t.cols[col] }

// Row materialises a single row; mostly used by tests.
func (t *Table) Row(row int) []Value {
	out := make([]Value, len(t.Columns))
	for c := range t.Columns {
		out[c] = t.cols[c][row]
	}
	return out
}

// EstimatedBytes returns a rough size of the table payload, used by the
// catalog pages of the platform.
func (t *Table) EstimatedBytes() int64 {
	var total int64
	for c := range t.Columns {
		for _, v := range t.cols[c] {
			switch v.Kind {
			case KindString:
				total += int64(len(v.S)) + 16
			default:
				total += 16
			}
		}
	}
	return total
}

// Database is a named collection of tables.
type Database struct {
	Name   string
	tables map[string]*Table
	// version accumulates schema changes (tables added or replaced); a
	// replaced table folds its data version in so the combined Version()
	// stays strictly monotonic.
	version uint64
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: map[string]*Table{}}
}

// AddTable registers a table; an existing table with the same name is
// replaced.
func (d *Database) AddTable(t *Table) {
	key := strings.ToLower(t.Name)
	if old, ok := d.tables[key]; ok {
		// Fold the replaced table's data version into the schema version so
		// Version() cannot repeat a value it reported before the swap.
		d.version += old.version
	}
	d.version++
	d.tables[key] = t
}

// Version returns the database's combined schema/data version: it changes
// whenever a table is added, replaced or mutated, and never repeats. Plan
// caches key on it so a schema or data bump invalidates every cached plan
// of this database.
func (d *Database) Version() uint64 {
	v := d.version
	for _, t := range d.tables {
		v += t.version
	}
	return v
}

// TableColumns returns the column names of the named table in declaration
// order; it implements the logical planner's catalog interface
// (plan.Catalog).
func (d *Database) TableColumns(name string) ([]string, bool) {
	t := d.Table(name)
	if t == nil {
		return nil, false
	}
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out, true
}

// Table returns the named table (case insensitive) or nil.
func (d *Database) Table(name string) *Table {
	return d.tables[strings.ToLower(name)]
}

// Tables returns all tables sorted by name.
func (d *Database) Tables() []*Table {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Table, 0, len(names))
	for _, n := range names {
		out = append(out, d.tables[n])
	}
	return out
}

// TotalRows returns the sum of row counts over all tables.
func (d *Database) TotalRows() int {
	total := 0
	for _, t := range d.tables {
		total += t.rows
	}
	return total
}

// Describe renders a short textual schema summary.
func (d *Database) Describe() string {
	var sb strings.Builder
	for _, t := range d.Tables() {
		fmt.Fprintf(&sb, "%s(%d rows):", t.Name, t.rows)
		for i, c := range t.Columns {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " %s %s", c.Name, c.Type)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
