// Package trace is the per-operator observability plane shared by all three
// execution paradigms. It provides three things:
//
//   - a stable operator-id scheme derived purely from the logical plan
//     (ids.go), so the row interpreter, the column interpreter and the
//     batch-vectorized executor label the same logical operator with the
//     same id;
//   - EXPLAIN plan-JSON (explain.go): a schema-versioned JSON rendering of
//     the physical plan keyed by those operator ids;
//   - the Tracer/Span runtime seam: per-operator wall time, row counts,
//     batch counts and coordinator-side allocation deltas, collected into
//     one QueryTrace per execution and comparable across engines because
//     the span ids come from the shared plan.
//
// The seam is zero-cost when disabled: every operator holds a *Span that is
// nil when no Tracer is installed, and the hot paths guard on that nil with
// no allocation and no function call. Morsel-parallel operators never write
// spans from workers; they accumulate SpanDelta values per morsel and merge
// them in morsel order on the coordinator, the same discipline the parallel
// executor uses for its Stats, so traces are bit-identical at every worker
// count.
package trace

import (
	"encoding/json"
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// SchemaVersion versions both the plan-JSON document and the QueryTrace wire
// form. Bump it when the operator-id scheme or the span fields change
// incompatibly; golden files regenerate against the new version.
const SchemaVersion = 1

// MeasurementExtraKey is the reserved extra key through which an execution
// target hands its serialized QueryTrace to metrics.MeasureContext (the same
// reserved-key pattern as metrics.SimulatedDurationKey). The measurement
// layer consumes the key into Measurement.Trace instead of recording it.
const MeasurementExtraKey = "sqalpel_trace_json"

// Span kinds, matching the plan-JSON operator kinds.
const (
	KindScan     = "scan"
	KindDerived  = "derived"
	KindJoinTree = "join-tree"
	KindFilter   = "filter"
	KindHashJoin = "hash-join"
	KindCross    = "cross-join"
	KindAgg      = "aggregate"
	KindProject  = "project"
	KindDistinct = "distinct"
	KindSort     = "sort"
	KindLimit    = "limit"
	KindSubquery = "subquery"
	KindSet      = "set"
)

// Span accumulates the counters of one operator over one traced execution.
// Operators that run once per query (joins, aggregation, sort) record Calls
// and wall time per application; streaming operators (scan, filter) record
// Rows and Batches per batch. A span is owned by a single execution and
// written without synchronization — morsel workers contribute through
// SpanDelta merges on the coordinator instead.
type Span struct {
	OpID string `json:"op"`
	Kind string `json:"kind"`
	// WallNS is the cumulative wall time spent in the operator, inclusive
	// of nested work (a sub-query evaluated inside a filter predicate
	// counts under both its own span and the filter's).
	WallNS int64 `json:"wall_ns"`
	// Rows is the operator's cumulative output row count.
	Rows int64 `json:"rows"`
	// Batches counts the batches (or morsels) a streaming operator
	// processed; zero for one-shot operators and for the interpreters.
	Batches int64 `json:"batches,omitempty"`
	// Calls counts one-shot applications and sub-query evaluations.
	Calls int64 `json:"calls,omitempty"`
	// AllocBytes is the coordinator's view of heap bytes allocated during
	// one-shot applications; approximate under concurrency and absent for
	// streaming operators.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// BlocksSkipped counts the zone-map blocks a scan proved unsatisfiable
	// and never visited; zero for engines without zone maps. Deterministic
	// at every worker count (the skip decision depends only on the table's
	// block statistics and the pushed-down conjuncts).
	BlocksSkipped int64 `json:"blocks_skipped,omitempty"`
}

// SpanDelta is a thread-local span contribution accumulated by one morsel
// worker and merged into the shared Span by the coordinator, in morsel
// order.
type SpanDelta struct {
	WallNS        int64
	Rows          int64
	Batches       int64
	BlocksSkipped int64
}

// Merge folds a morsel-local delta into the span; safe on a nil span so
// callers can merge unconditionally.
func (s *Span) Merge(d SpanDelta) {
	if s == nil {
		return
	}
	s.WallNS += d.WallNS
	s.Rows += d.Rows
	s.Batches += d.Batches
	s.BlocksSkipped += d.BlocksSkipped
}

// Timer measures one one-shot operator application: wall time plus the
// coordinator's view of heap allocation. A Timer started from a nil span is
// inert, so call sites need no second nil-check.
type Timer struct {
	span  *Span
	start time.Time
	alloc int64
}

// Start opens a timing window on the span; on a nil span it returns an
// inert Timer without touching the clock.
func (s *Span) Start() Timer {
	if s == nil {
		return Timer{}
	}
	return Timer{span: s, start: time.Now(), alloc: heapAllocBytes()}
}

// Done closes the window, attributing the elapsed wall time, the allocation
// delta and the given output row count to the span.
func (t Timer) Done(rows int64) {
	if t.span == nil {
		return
	}
	t.span.WallNS += time.Since(t.start).Nanoseconds()
	t.span.AllocBytes += heapAllocBytes() - t.alloc
	t.span.Rows += rows
	t.span.Calls++
}

// heapAllocBytes reads the runtime's cumulative heap allocation counter;
// only called on the enabled-trace path.
func heapAllocBytes() int64 {
	s := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s[:])
	return int64(s[0].Value.Uint64())
}

// Tracer collects the operator spans of one execution. A nil *Tracer is the
// disabled state: Span returns nil, operators see nil spans, and the hot
// paths reduce to one pointer comparison.
type Tracer struct {
	mu    sync.Mutex
	spans map[string]*Span
}

// NewTracer returns an empty, enabled tracer for one execution.
func NewTracer() *Tracer {
	return &Tracer{spans: map[string]*Span{}}
}

// Span returns the span registered under the operator id, creating it on
// first sight. On a nil tracer it returns nil, which is what disables the
// whole seam.
func (t *Tracer) Span(opID, kind string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.spans[opID]
	if !ok {
		sp = &Span{OpID: opID, Kind: kind}
		t.spans[opID] = sp
	}
	return sp
}

// Reset drops all collected spans; the vektor adapter calls it before
// re-running a query on the interpreter fallback so an aborted vectorized
// attempt cannot pollute the interpreter's trace.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = map[string]*Span{}
}

// Trace snapshots the collected spans into a QueryTrace, sorted by operator
// id so traces of different engines align row by row.
func (t *Tracer) Trace(engine string) *QueryTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	qt := &QueryTrace{SchemaVersion: SchemaVersion, Engine: engine}
	for _, sp := range t.spans {
		qt.Spans = append(qt.Spans, *sp)
	}
	sort.Slice(qt.Spans, func(a, b int) bool { return qt.Spans[a].OpID < qt.Spans[b].OpID })
	return qt
}

// QueryTrace is the serializable operator-span tree of one execution,
// keyed by the plan's operator ids.
type QueryTrace struct {
	SchemaVersion int    `json:"schema_version"`
	Engine        string `json:"engine,omitempty"`
	Spans         []Span `json:"spans"`
}

// JSON renders the trace compactly for the measurement extra channel and
// the driver wire format.
func (qt *QueryTrace) JSON() ([]byte, error) { return json.Marshal(qt) }

// ParseTrace decodes a QueryTrace from its JSON form.
func ParseTrace(data []byte) (*QueryTrace, error) {
	var qt QueryTrace
	if err := json.Unmarshal(data, &qt); err != nil {
		return nil, err
	}
	return &qt, nil
}

// Span returns the span with the given operator id, or nil.
func (qt *QueryTrace) Span(opID string) *Span {
	if qt == nil {
		return nil
	}
	for i := range qt.Spans {
		if qt.Spans[i].OpID == opID {
			return &qt.Spans[i]
		}
	}
	return nil
}

// CompareRow aligns the spans of several traces on one operator id; Spans
// is parallel to the traces handed to Compare, nil where a trace has no
// span for the operator.
type CompareRow struct {
	OpID  string
	Kind  string
	Spans []*Span
}

// Compare aligns several traces (typically one per engine) by operator id:
// the union of all ids, sorted, one row per id. Nil traces are allowed and
// contribute no spans.
func Compare(traces []*QueryTrace) []CompareRow {
	byID := map[string]*CompareRow{}
	var ids []string
	for ti, qt := range traces {
		if qt == nil {
			continue
		}
		for i := range qt.Spans {
			sp := &qt.Spans[i]
			row, ok := byID[sp.OpID]
			if !ok {
				row = &CompareRow{OpID: sp.OpID, Kind: sp.Kind, Spans: make([]*Span, len(traces))}
				byID[sp.OpID] = row
				ids = append(ids, sp.OpID)
			}
			row.Spans[ti] = sp
		}
	}
	sort.Strings(ids)
	out := make([]CompareRow, 0, len(ids))
	for _, id := range ids {
		out = append(out, *byID[id])
	}
	return out
}
